// Quickstart: the end-to-end pipeline in ~40 lines — generate a small HPC
// malware database on the simulated machine, train a J48 detector on the
// paper's 16 counters, evaluate malware-vs-benign accuracy, and price the
// trained model in FPGA resources.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// 5% of the paper's 3,070-sample database: ~150 samples, ~2,400 rows
	// of 16 HPC features sampled every 10 ms.
	tbl, err := core.GenerateDataset(core.DatasetConfig{Seed: 42, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d rows x %d HPC features\n",
		tbl.NumInstances(), tbl.NumAttributes())

	// Train/evaluate with the paper's 70/30 protocol and synthesize the
	// trained tree to hardware.
	res, err := core.RunDetector(tbl, core.DetectorConfig{
		Classifier: "J48",
		Binary:     true,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("detector:  %s on %d features\n", res.Classifier, len(res.Features))
	fmt.Printf("accuracy:  %.2f%% (malware vs benign)\n", res.Eval.Accuracy()*100)
	fmt.Printf("hardware:  %d LUT-equivalents, %d cycles (%.0f ns at 100 MHz)\n",
		res.HW.EquivLUTs, res.HW.Cycles, res.HW.LatencyNs)
	fmt.Printf("confusion (rows = actual benign/malware):\n%s", res.Eval.Confusion)
}

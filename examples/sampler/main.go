// Sampler: the raw measurement channel. Runs one malware sample inside an
// isolated container on the simulated Haswell-like machine, reads the 16
// paper HPC events through the 8-counter multiplexed PMU every 10 ms, and
// prints the per-window text records the paper's pipeline stored before
// merging them into a CSV — including the time-running fractions that
// reveal counter multiplexing.
//
// Run with: go run ./examples/sampler
// It accepts the shared observability flags (-v, -listen, -metrics-out,
// -trace-out, -cpuprofile, ...), consistent with the hpcmal CLI.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/obsflag"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	of := obsflag.Add(flag.CommandLine)
	flag.Parse()
	if err := of.Setup(); err != nil {
		log.Fatal(err)
	}
	prog, err := workload.NewSample(workload.Rootkit, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample: %s (class %s), %d behaviour phases\n",
		prog.Name, prog.Class, len(prog.Phases))
	for _, ph := range prog.Phases {
		fmt.Printf("  phase %-10s IPC %.2f  dwell ~%.0f ms\n",
			ph.Name, ph.IPC, ph.MeanDwell*1000)
	}

	cfg := trace.DefaultConfig()
	cfg.WindowsPerSample = 8
	ctr, err := trace.NewContainer(cfg, prog, 2024)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := ctr.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncollected %d windows at %.0f ms period (events: %d on %d counters)\n",
		len(tr.Records), cfg.SamplePeriod*1000, len(tr.Events), 8)
	fmt.Println("\nwindow 0 readings (value, fraction of window the event held a counter):")
	for _, rd := range tr.Records[0].Readings {
		fmt.Printf("  %-24s %14.0f   running %.0f%%\n",
			rd.Name, rd.Value, rd.TimeRunningFrac*100)
	}

	fmt.Println("\nper-sample text file (the paper's intermediate format):")
	if err := tr.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := of.Finish(); err != nil {
		log.Fatal(err)
	}
}

// Multiclass: classify malware into its five families (plus benign) with
// the paper's three multiclass learners, then show the thesis's headline
// result — PCA-assisted classification with per-class custom feature sets
// beats a single reduced feature set.
//
// Run with: go run ./examples/multiclass
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/ml/eval"
	"repro/internal/workload"
)

func main() {
	tbl, err := core.GenerateDataset(core.DatasetConfig{Seed: 7, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}

	// Figure 17/18: MLR, MLP and SVM on the 6-class problem.
	fmt.Println("multiclass classification (16 features):")
	for _, name := range core.MulticlassNames() {
		res, err := core.RunDetector(tbl, core.DetectorConfig{
			Classifier: name, Binary: false, Seed: 7, SkipHardware: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := name
		if name == "Logistic" {
			label = "MLR"
		}
		fmt.Printf("  %-4s avg %.1f%%  per-class:", label, res.Eval.Accuracy()*100)
		for c := 0; c < workload.NumClasses; c++ {
			fmt.Printf(" %s=%.0f%%", workload.Class(c), res.Eval.Confusion.Recall(c)*100)
		}
		fmt.Println()
	}

	// Table 2: PCA-derived custom feature sets per family.
	custom, common, err := core.CustomFeatureSets(tbl, 8, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPCA custom features per family (Table 2):")
	for _, c := range workload.MalwareClasses() {
		fmt.Printf("  %-9s %s\n", c, strings.Join(custom[c.String()], ", "))
	}
	fmt.Printf("  common:   %s\n", strings.Join(common, ", "))

	// Figure 19: PCA-assisted MLR vs MLR on one global reduced set.
	train, test, err := tbl.SplitBySample(0.7, 7)
	if err != nil {
		log.Fatal(err)
	}
	assisted, err := core.TrainPCAAssisted(train, 8, 0.95, 7)
	if err != nil {
		log.Fatal(err)
	}
	testRows := make([][]float64, len(test.Instances))
	for i := range test.Instances {
		testRows[i] = test.Instances[i].Features
	}
	aRes, err := eval.Evaluate(assisted, testRows, test.ClassLabels(), workload.NumClasses)
	if err != nil {
		log.Fatal(err)
	}

	global8, err := core.GlobalTopFeatures(train, 8, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	uniform, err := core.TrainUniformAssisted(train, global8, 7)
	if err != nil {
		log.Fatal(err)
	}
	uRes, err := eval.Evaluate(uniform, testRows, test.ClassLabels(), workload.NumClasses)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nPCA-assisted MLR (custom 8/class): %.1f%%\n", aRes.Accuracy()*100)
	fmt.Printf("normal MLR (one global top-8):     %.1f%%\n", uRes.Accuracy()*100)
	fmt.Printf("delta: %+.1f%% (paper reports ~+7%%)\n",
		(aRes.Accuracy()-uRes.Accuracy())*100)
}

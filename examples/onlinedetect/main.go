// Online detection: train a detector once, then monitor fresh program
// executions in real time — per-window verdicts over the 10 ms HPC stream
// are smoothed by a sliding majority vote so that one noisy window never
// raises an alarm but sustained malicious behaviour alarms within tens of
// milliseconds. This is the run-time deployment the paper's
// embedded-systems motivation aims at.
//
// While monitoring, the example serves its own live telemetry (the same
// /metrics, /events and /debug/pprof endpoints as `hpcmal serve`) and
// finishes by scraping its own /metrics — the Prometheus view of the
// detection run it just performed.
//
// Run with: go run ./examples/onlinedetect
// It accepts the shared observability flags (-v, -listen, -trace-out,
// -cpuprofile, ...); without -listen it picks a free local port.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/ml/ensemble"
	"repro/internal/ml/mlp"
	"repro/internal/obs"
	"repro/internal/obsflag"
	"repro/internal/online"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	of := obsflag.Add(flag.CommandLine)
	flag.Parse()
	if of.Listen == "" {
		of.Listen = "127.0.0.1:0"
	}
	if err := of.Setup(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live telemetry on %s\n\n", of.Server().URL())
	// Train a bagged-tree detector (an ensemble, per the follow-up work
	// the thesis builds on).
	tbl, err := core.GenerateDataset(core.DatasetConfig{Seed: 5, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	rows := make([][]float64, len(tbl.Instances))
	for i := range tbl.Instances {
		rows[i] = tbl.Instances[i].Features
	}
	// The dataset is ~89% malware; an accuracy-trained detector would vote
	// "malware" on most benign windows and the smoother would alarm on
	// everything. Deployment rebalances the operating point: train on a
	// class-balanced resample (all benign windows + an equal share of
	// malware windows), trading some malware-window recall — which the
	// sliding vote wins back — for a quiet benign profile.
	labels := tbl.BinaryLabels()
	var bx [][]float64
	var by []int
	for i, l := range labels {
		if l == 0 {
			bx = append(bx, rows[i])
			by = append(by, 0)
		}
	}
	nBenign := len(bx)
	// Stride-sample the malware rows so every family is represented in
	// the balanced set (rows are grouped by class).
	nMalware := len(labels) - nBenign
	stride := nMalware / nBenign
	if stride < 1 {
		stride = 1
	}
	seen := 0
	for i, l := range labels {
		if l != 1 {
			continue
		}
		if seen%stride == 0 && len(bx) < 2*nBenign {
			bx = append(bx, rows[i])
			by = append(by, 1)
		}
		seen++
	}
	detector := &ensemble.Bagging{
		Base: func() ml.Classifier {
			m := mlp.New()
			m.Seed = 5
			m.Epochs = 40
			return m
		},
		N:    7,
		Seed: 5,
	}
	if err := detector.Train(bx, by, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained bagged-MLP detector on a balanced resample (%d windows)\n", len(bx))

	// Monitor fresh executions (seeds the detector never saw) — several
	// per class, so the alarm-latency histogram the online package feeds
	// has a real distribution to summarize.
	cfg := trace.DefaultConfig()
	cfg.WindowsPerSample = 32
	const perClass = 4

	fmt.Printf("\n%-10s %s\n", "class", "detected")
	for _, class := range workload.AllClasses() {
		traces, err := trace.CollectBatch(cfg, class, perClass, func(i int) uint64 {
			return 0xdeadbeef + uint64(class)*100 + uint64(i)
		}, 0)
		if err != nil {
			log.Fatal(err)
		}
		results, err := online.MonitorAll(detector, traces,
			online.WithSmoother(func() online.Smoother {
				return &online.MajorityVoter{Window: 8, Threshold: 0.6}
			}),
			online.WithSamplePeriod(cfg.SamplePeriod))
		if err != nil {
			log.Fatal(err)
		}
		detected := 0
		for _, res := range results {
			if res.Detected {
				detected++
			}
		}
		fmt.Printf("%-10s %d/%d\n", class, detected, perClass)
	}

	// Every Monitor call observed its first-alarm window into the shared
	// online.alarm_latency_windows histogram; summarize the distribution
	// instead of per-trace prints.
	h := obs.DefaultRegistry.Snapshot().Histograms[online.AlarmLatencyMetric]
	if h.Count == 0 {
		fmt.Println("\nno alarms raised")
		of.Finish()
		return
	}
	ms := func(windows float64) float64 { return windows * cfg.SamplePeriod * 1000 }
	fmt.Printf("\ndetection latency over %d alarms (windows are %v ms):\n",
		h.Count, cfg.SamplePeriod*1000)
	fmt.Printf("  p50 %5.1f ms   p90 %5.1f ms   max %5.1f ms\n",
		ms(h.Quantile(0.5)), ms(h.Quantile(0.9)), ms(h.Max))
	fmt.Println("\n(one noisy window never alarms: the vote needs 5 of 8)")

	// Scrape our own /metrics: the same numbers, as a Prometheus scraper
	// (or `curl host:port/metrics`) would see them live.
	resp, err := http.Get(of.Server().URL() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("\nself-scrape of /metrics (online_* series):")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "online_") &&
			!strings.Contains(line, "_bucket") {
			fmt.Println("  " + line)
		}
	}

	if err := of.Finish(); err != nil {
		log.Fatal(err)
	}
}

// FPGA cost study: train every classifier on the same reduced-feature
// detection task, lower each trained model to a hardware dataflow design,
// and print the area/latency/accuracy-per-area trade-off the paper's
// Figures 14-16 report — the case for deploying simple rule-based
// detectors (OneR, JRip) in embedded/real-time systems.
//
// Run with: go run ./examples/fpgacost
// It accepts the shared observability flags (-v, -listen, -metrics-out,
// -trace-out, -cpuprofile, ...), consistent with the hpcmal CLI.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/obsflag"
)

func main() {
	of := obsflag.Add(flag.CommandLine)
	flag.Parse()
	if err := of.Setup(); err != nil {
		log.Fatal(err)
	}
	tbl, err := core.GenerateDataset(core.DatasetConfig{Seed: 11, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	top8, err := core.GlobalTopFeaturesBinary(tbl, 8, 0.95)
	if err != nil {
		log.Fatal(err)
	}

	type entry struct {
		name string
		res  *core.DetectorResult
		fom  float64
	}
	var entries []entry
	for _, name := range core.ClassifierNames() {
		res, err := core.RunDetector(tbl, core.DetectorConfig{
			Classifier: name, Binary: true, Features: top8, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		entries = append(entries, entry{
			name: name,
			res:  res,
			fom:  hw.AccuracyPerArea(res.Eval.Accuracy(), res.HW),
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].fom > entries[j].fom })

	fmt.Println("classifier   acc%    LUTeq   DSP  BRAM  cycles  ns@100MHz  acc%/kLUT")
	for _, e := range entries {
		r := e.res.HW
		fmt.Printf("%-11s  %5.1f  %6d  %4d  %4d  %6d  %9.0f  %9.1f\n",
			e.name, e.res.Eval.Accuracy()*100, r.EquivLUTs,
			r.Area.DSP, r.Area.BRAM, r.Cycles, r.LatencyNs, e.fom)
	}
	fmt.Printf("\nbest accuracy/area: %s — the paper's conclusion: simple rule\n"+
		"classifiers beat neural networks for embedded deployment\n", entries[0].name)
	if err := of.Finish(); err != nil {
		log.Fatal(err)
	}
}

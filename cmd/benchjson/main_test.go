package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkFig13/J48-8   	     100	  12345 ns/op	        93.50 acc%	      64 B/op	       2 allocs/op
BenchmarkNopLogger-8   	100000000	         1.23 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	1.234s
pkg: repro/internal/obs
BenchmarkCounterAdd-8  	 5000000	        21.0 ns/op
garbage line
`
	doc := parse(bufio.NewScanner(strings.NewReader(in)))
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("header = %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(doc.Benchmarks))
	}
	fig := doc.Benchmarks[0]
	if fig.Pkg != "repro" || fig.Name != "BenchmarkFig13/J48" || fig.Procs != 8 {
		t.Errorf("fig13 identity = %+v", fig)
	}
	if fig.NsPerOp != 12345 || fig.BytesPerOp != 64 || fig.AllocsPerOp != 2 {
		t.Errorf("fig13 stats = %+v", fig)
	}
	if fig.Custom["acc%"] != 93.5 {
		t.Errorf("fig13 custom = %+v", fig.Custom)
	}
	nop := doc.Benchmarks[1]
	if nop.NsPerOp != 1.23 || nop.AllocsPerOp != 0 {
		t.Errorf("nop = %+v", nop)
	}
	if doc.Benchmarks[2].Pkg != "repro/internal/obs" {
		t.Errorf("second pkg = %+v", doc.Benchmarks[2])
	}
}

func TestDiffDocs(t *testing.T) {
	base := File{Benchmarks: []Benchmark{
		{Pkg: "repro", Name: "BenchmarkStable", NsPerOp: 100},
		{Pkg: "repro", Name: "BenchmarkFaster", NsPerOp: 100},
		{Pkg: "repro", Name: "BenchmarkGone", NsPerOp: 50},
	}}
	cur := File{Benchmarks: []Benchmark{
		{Pkg: "repro", Name: "BenchmarkStable", NsPerOp: 115},
		{Pkg: "repro", Name: "BenchmarkFaster", NsPerOp: 40},
		{Pkg: "repro", Name: "BenchmarkNew", NsPerOp: 10},
	}}

	report, regressed := diffDocs(base, cur, 20)
	if regressed {
		t.Fatalf("+15%% within a 20%% threshold regressed:\n%s", report)
	}
	for _, want := range []string{
		"ok       repro BenchmarkStable",
		"faster   repro BenchmarkFaster",
		"new      repro BenchmarkNew",
		"missing  repro BenchmarkGone",
		"2 compared, threshold 20%: ok",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// Past the threshold the diff fails.
	report, regressed = diffDocs(base, File{Benchmarks: []Benchmark{
		{Pkg: "repro", Name: "BenchmarkStable", NsPerOp: 121},
	}}, 20)
	if !regressed || !strings.Contains(report, "REGRESS  repro BenchmarkStable") {
		t.Fatalf("+21%% did not regress:\n%s", report)
	}

	// New and missing benchmarks alone never fail the gate, and zero
	// baselines are skipped rather than divided by.
	report, regressed = diffDocs(
		File{Benchmarks: []Benchmark{{Pkg: "p", Name: "BenchmarkZero"}}},
		File{Benchmarks: []Benchmark{
			{Pkg: "p", Name: "BenchmarkZero", NsPerOp: 999},
			{Pkg: "p", Name: "BenchmarkNew", NsPerOp: 1},
		}}, 20)
	if regressed || !strings.Contains(report, "0 compared") {
		t.Fatalf("structural-only diff regressed:\n%s", report)
	}
}

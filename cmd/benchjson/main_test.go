package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkFig13/J48-8   	     100	  12345 ns/op	        93.50 acc%	      64 B/op	       2 allocs/op
BenchmarkNopLogger-8   	100000000	         1.23 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	1.234s
pkg: repro/internal/obs
BenchmarkCounterAdd-8  	 5000000	        21.0 ns/op
garbage line
`
	doc := parse(bufio.NewScanner(strings.NewReader(in)))
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("header = %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(doc.Benchmarks))
	}
	fig := doc.Benchmarks[0]
	if fig.Pkg != "repro" || fig.Name != "BenchmarkFig13/J48" || fig.Procs != 8 {
		t.Errorf("fig13 identity = %+v", fig)
	}
	if fig.NsPerOp != 12345 || fig.BytesPerOp != 64 || fig.AllocsPerOp != 2 {
		t.Errorf("fig13 stats = %+v", fig)
	}
	if fig.Custom["acc%"] != 93.5 {
		t.Errorf("fig13 custom = %+v", fig.Custom)
	}
	nop := doc.Benchmarks[1]
	if nop.NsPerOp != 1.23 || nop.AllocsPerOp != 0 {
		t.Errorf("nop = %+v", nop)
	}
	if doc.Benchmarks[2].Pkg != "repro/internal/obs" {
		t.Errorf("second pkg = %+v", doc.Benchmarks[2])
	}
}

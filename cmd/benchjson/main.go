// Command benchjson normalizes `go test -bench` output into stable JSON
// so benchmark runs can be committed and diffed across PRs:
//
//	go test -bench=. -benchmem ./... | go run ./cmd/benchjson -o bench.json
//
// Each benchmark line becomes one record with its package, base name
// (the -N GOMAXPROCS suffix split off), ns/op, B/op, allocs/op, and any
// custom metrics (the repository's benchmarks report headline accuracy
// and area figures that way). `make bench` wraps this; the committed
// BENCH_baseline.json is the trajectory seed future PRs diff against.
//
// With -diff, benchjson instead compares the run on stdin against a
// committed baseline and exits non-zero when any shared benchmark's
// ns/op regressed by more than -threshold percent (default 20):
//
//	go test -bench=. ./... | go run ./cmd/benchjson -diff BENCH_baseline.json
//
// `make bench-diff` wraps that as the perf regression gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one normalized benchmark result.
type Benchmark struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Custom      map[string]float64 `json:"custom,omitempty"`
}

// File is the normalized document.
type File struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	diff := flag.String("diff", "", "baseline JSON `file` to compare against; exits 1 on regression")
	threshold := flag.Float64("threshold", 20, "ns/op regression `percent` that fails a -diff")
	flag.Parse()

	doc := parse(bufio.NewScanner(os.Stdin))
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		a, b := doc.Benchmarks[i], doc.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Name < b.Name
	})

	if *diff != "" {
		raw, err := os.ReadFile(*diff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base File
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *diff, err)
			os.Exit(1)
		}
		report, regressed := diffDocs(base, doc, *threshold)
		fmt.Print(report)
		if regressed {
			os.Exit(1)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks normalized\n", len(doc.Benchmarks))
}

// diffDocs compares a fresh run against a committed baseline, benchmark
// by benchmark, and reports ns/op deltas. A benchmark regresses when its
// ns/op exceeds the baseline by more than threshold percent; benchmarks
// present on only one side are reported but never fail the diff (the
// suite grows every PR, and CI machines differ from the baseline host).
func diffDocs(base, cur File, threshold float64) (string, bool) {
	key := func(b Benchmark) string { return b.Pkg + " " + b.Name }
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[key(b)] = b
	}
	var sb strings.Builder
	regressed := false
	compared := 0
	for _, b := range cur.Benchmarks {
		old, ok := baseline[key(b)]
		if !ok {
			fmt.Fprintf(&sb, "  new      %-60s %12.1f ns/op\n", key(b), b.NsPerOp)
			continue
		}
		delete(baseline, key(b))
		if old.NsPerOp <= 0 {
			continue
		}
		compared++
		pct := (b.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		verdict := "ok"
		if pct > threshold {
			verdict, regressed = "REGRESS", true
		} else if pct < -threshold {
			verdict = "faster"
		}
		fmt.Fprintf(&sb, "  %-8s %-60s %12.1f -> %12.1f ns/op (%+.1f%%)\n",
			verdict, key(b), old.NsPerOp, b.NsPerOp, pct)
	}
	missing := make([]string, 0, len(baseline))
	for k := range baseline {
		missing = append(missing, k)
	}
	sort.Strings(missing)
	for _, k := range missing {
		fmt.Fprintf(&sb, "  missing  %s\n", k)
	}
	status := "ok"
	if regressed {
		status = "REGRESSION"
	}
	fmt.Fprintf(&sb, "benchjson diff: %d compared, threshold %.0f%%: %s\n",
		compared, threshold, status)
	return sb.String(), regressed
}

func parse(sc *bufio.Scanner) File {
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	doc := File{Benchmarks: []Benchmark{}}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(pkg, line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	return doc
}

// parseBench decodes one result line of the standard bench format:
//
//	BenchmarkName-8   100   12345 ns/op   64 B/op   2 allocs/op   93.5 acc%
func parseBench(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Pkg: pkg, Name: fields[0]}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// The rest alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			fallthrough
		default:
			if b.Custom == nil {
				b.Custom = map[string]float64{}
			}
			b.Custom[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}

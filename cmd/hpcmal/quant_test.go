package main

import "testing"

func TestCmdQuant(t *testing.T) {
	if err := cmdQuant([]string{"-scale", "0.01", "-cv", "3",
		"-classifier", "J48"}); err != nil {
		t.Fatal(err)
	}
	// JSON output over the full registry at int16.
	if err := cmdQuant([]string{"-scale", "0.01", "-cv", "2",
		"-classifier", "Logistic", "-precision", "int16", "-json"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuant([]string{"-precision", "float64"}); err == nil {
		t.Fatal("accepted float64 precision")
	}
	if err := cmdQuant([]string{"-precision", "int4"}); err == nil {
		t.Fatal("accepted unknown precision")
	}
	if err := cmdQuant([]string{"-classifier", "RandomForest",
		"-scale", "0.01"}); err == nil {
		t.Fatal("accepted unknown classifier")
	}
}

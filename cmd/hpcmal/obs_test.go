package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
)

func readRunSnapshot(t *testing.T, path string) obs.RunSnapshot {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.RunSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot %s is not valid JSON: %v", path, err)
	}
	return snap
}

// TestReproMetricsOut is the acceptance scenario: flags after the
// positional experiment ID must still parse, and the metrics file must
// carry per-stage spans, the pipeline counters, and at least one
// histogram.
func TestReproMetricsOut(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	if err := cmdRepro([]string{"fig13", "-scale", "0.01", "-quiet",
		"-metrics-out", metrics}); err != nil {
		t.Fatal(err)
	}
	snap := readRunSnapshot(t, metrics)

	// pmu.multiplex_rotations is absent here by design: the CLI's default
	// trace config leaves Multiplex at its zero value, so the dataset is
	// measured without rotation (the ablation turns it on explicitly).
	for _, c := range []string{
		"trace.windows_simulated", "trace.containers_provisioned",
		"dataset.rows_generated", "ml.models_trained",
		"pmu.measurements",
	} {
		if snap.Counters[c] <= 0 {
			t.Errorf("counter %s = %d, want > 0", c, snap.Counters[c])
		}
	}
	if len(snap.Histograms) == 0 {
		t.Error("snapshot has no histograms")
	}
	if h := snap.Histograms["trace.window_sim_seconds"]; h.Count == 0 {
		t.Error("trace.window_sim_seconds histogram is empty")
	}
	found := false
	for _, sp := range snap.Spans {
		if sp.Name == "experiment.fig13" {
			found = true
			if len(sp.Children) == 0 {
				t.Error("experiment.fig13 span has no children (expected dataset.generate)")
			}
		}
	}
	if !found {
		t.Errorf("no experiment.fig13 span in %+v", snap.Spans)
	}

	// A manifest lands alongside the metrics file.
	man, err := obs.ReadManifest(obs.ManifestPathFor(metrics))
	if err != nil {
		t.Fatal(err)
	}
	if man.Command != "repro" || man.Config["experiments"] != "fig13" {
		t.Errorf("manifest = %+v", man)
	}
	if len(man.Stages) == 0 {
		t.Error("manifest has no stages")
	}
}

// TestSameSeedRunsSnapshotIdentically proves the determinism claim: two
// in-process runs with the same seed produce identical counters (the
// wall-clock histograms and span durations are explicitly exempt).
func TestSameSeedRunsSnapshotIdentically(t *testing.T) {
	dir := t.TempDir()
	run := func(path string) obs.RunSnapshot {
		if err := cmdRepro([]string{"table1", "-scale", "0.01", "-seed", "7",
			"-quiet", "-metrics-out", path}); err != nil {
			t.Fatal(err)
		}
		return readRunSnapshot(t, path)
	}
	a := run(filepath.Join(dir, "a.json"))
	b := run(filepath.Join(dir, "b.json"))
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Errorf("same-seed counters differ:\n%v\n%v", a.Counters, b.Counters)
	}
	// Histogram shapes (counts per bucket) of deterministic histograms
	// must match too; wall-time histograms only need equal total counts.
	for name, ha := range a.Histograms {
		hb, ok := b.Histograms[name]
		if !ok {
			t.Errorf("histogram %s missing from second run", name)
			continue
		}
		if ha.Count != hb.Count {
			t.Errorf("histogram %s count %d vs %d", name, ha.Count, hb.Count)
		}
	}
}

// TestGenWritesManifest checks the dataset generator's audit trail.
func TestGenWritesManifest(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.csv")
	if err := cmdGen([]string{"-scale", "0.01", "-seed", "5", "-out", out, "-quiet"}); err != nil {
		t.Fatal(err)
	}
	man, err := obs.ReadManifest(obs.ManifestPathFor(out))
	if err != nil {
		t.Fatal(err)
	}
	if man.Tool != "hpcmal" || man.Command != "gen" {
		t.Errorf("manifest identity = %s/%s", man.Tool, man.Command)
	}
	if man.Seed != 5 || man.Scale != 0.01 {
		t.Errorf("manifest seed/scale = %d/%v", man.Seed, man.Scale)
	}
	if man.Rows <= 0 || man.Samples <= 0 {
		t.Errorf("manifest rows/samples = %d/%d", man.Rows, man.Samples)
	}
	if len(man.Outputs) != 1 || man.Outputs[0] != out {
		t.Errorf("manifest outputs = %v", man.Outputs)
	}
	stageSeen := false
	for _, s := range man.Stages {
		if s.Name == "dataset.generate" {
			stageSeen = true
		}
	}
	if !stageSeen {
		t.Errorf("manifest stages %+v missing dataset.generate", man.Stages)
	}
	if man.WallSeconds <= 0 || man.GoVersion == "" {
		t.Errorf("manifest wall/go = %v/%q", man.WallSeconds, man.GoVersion)
	}
	// Every manifest records the producing binary's build identity.
	if man.Build == nil || man.Build.GoVersion == "" {
		t.Errorf("manifest build info = %+v", man.Build)
	}
}

// TestGenTraceOut drives the shared -trace-out flag through a real
// subcommand: the export must be Chrome trace-event JSON with the
// pipeline's spans as complete events.
func TestGenTraceOut(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.csv")
	traceOut := filepath.Join(dir, "trace.json")
	if err := cmdGen([]string{"-scale", "0.01", "-seed", "5", "-out", out,
		"-quiet", "-trace-out", traceOut}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var exported struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Dur   float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &exported); err != nil {
		t.Fatalf("-trace-out is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range exported.TraceEvents {
		if ev.Name == "dataset.generate" && ev.Phase == "X" {
			found = true
		}
	}
	if !found {
		t.Errorf("no dataset.generate X event in %s", data)
	}
}

// TestCollectWritesManifest checks the per-sample collector's manifest.
func TestCollectWritesManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	if err := cmdCollect([]string{"-dir", dir, "-perclass", "1", "-seed", "3", "-quiet"}); err != nil {
		t.Fatal(err)
	}
	man, err := obs.ReadManifest(filepath.Join(dir, "collect.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Samples != 6 || man.Rows != 6*16 {
		t.Errorf("manifest samples/rows = %d/%d, want 6/96", man.Samples, man.Rows)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdGenCSVAndARFF(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "d.csv")
	if err := cmdGen([]string{"-scale", "0.01", "-seed", "1", "-out", csvPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "branch-instructions,") {
		t.Fatalf("csv header wrong: %.80s", data)
	}
	arffPath := filepath.Join(dir, "d.arff")
	if err := cmdGen([]string{"-scale", "0.01", "-out", arffPath, "-arff", "-binary"}); err != nil {
		t.Fatal(err)
	}
	adata, _ := os.ReadFile(arffPath)
	if !strings.Contains(string(adata), "@RELATION") ||
		!strings.Contains(string(adata), "{benign,malware}") {
		t.Fatal("arff output malformed")
	}
}

func TestCmdTrainGeneratedAndFromCSV(t *testing.T) {
	if err := cmdTrain([]string{"-classifier", "OneR", "-scale", "0.01", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	// Multiclass path.
	if err := cmdTrain([]string{"-classifier", "Logistic", "-binary=false",
		"-scale", "0.01", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	// From CSV.
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "d.csv")
	if err := cmdGen([]string{"-scale", "0.01", "-out", csvPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrain([]string{"-classifier", "NaiveBayes", "-data", csvPath}); err != nil {
		t.Fatal(err)
	}
	// Unknown classifier errors.
	if err := cmdTrain([]string{"-classifier", "RandomForest", "-scale", "0.01"}); err == nil {
		t.Fatal("accepted unknown classifier")
	}
}

func TestCmdPCA(t *testing.T) {
	if err := cmdPCA([]string{"-scale", "0.01", "-k", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdReproSingle(t *testing.T) {
	if err := cmdRepro([]string{"-scale", "0.01", "table1", "fig6"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRepro([]string{"-scale", "0.01", "fig99"}); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}

func TestCmdCollectAndMerge(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	if err := cmdCollect([]string{"-dir", dir, "-perclass", "1", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*.txt"))
	if len(matches) != 6 {
		t.Fatalf("collected %d files, want 6", len(matches))
	}
	out := filepath.Join(t.TempDir(), "merged.csv")
	if err := cmdMerge([]string{"-dir", dir, "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	// 6 samples x 16 windows + header.
	if lines != 6*16+1 {
		t.Fatalf("merged csv has %d lines", lines)
	}
	// Merging an empty dir errors.
	if err := cmdMerge([]string{"-dir", t.TempDir(), "-out", out}); err == nil {
		t.Fatal("accepted empty trace dir")
	}
}

package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/ingest"
)

// TestFleetgenAgainstServe is the fleet e2e: a pure-ingest serve
// (-replay=false) absorbs a small fleetgen run, every window lands in a
// per-tenant scoreboard behind /api/v1/tenants, and the deprecated
// alias paths still answer with a Deprecation header.
func TestFleetgenAgainstServe(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, errc := startServe(t, ctx, []string{
		"-scale", "0.01", "-replay=false", "-quiet"})

	if err := cmdFleetgen([]string{
		"-addr", srv.Addr(), "-tenants", "2", "-endpoints", "2",
		"-batch", "8", "-rounds", "3", "-windows", "16"}); err != nil {
		t.Fatalf("fleetgen: %v", err)
	}

	getJSON := func(path string, out any) (int, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == 200 && out != nil {
			if err := json.Unmarshal(body, out); err != nil {
				t.Fatalf("%s not JSON: %v\n%s", path, err, body)
			}
		}
		return resp.StatusCode, resp.Header
	}

	// Both tenants exist, fully drained, with classified windows.
	var tl struct {
		Tenants []ingest.TenantSummary `json:"tenants"`
	}
	if code, _ := getJSON("/api/v1/tenants", &tl); code != 200 {
		t.Fatalf("/api/v1/tenants = %d", code)
	}
	if len(tl.Tenants) != 2 {
		t.Fatalf("tenants = %+v", tl.Tenants)
	}
	for _, ts := range tl.Tenants {
		if ts.WindowsProcessed != 2*3*8 || ts.Queued != 0 {
			t.Fatalf("tenant %s = %+v", ts.ID, ts)
		}
	}

	// Per-tenant quality scored every labeled window; drift is armed.
	var q struct {
		Observed int64 `json:"observed"`
	}
	if code, _ := getJSON("/api/v1/tenants/tenant-00/quality", &q); code != 200 || q.Observed != 48 {
		t.Fatalf("tenant quality = %d observed=%d", code, q.Observed)
	}
	if code, _ := getJSON("/api/v1/tenants/tenant-00/drift", nil); code != 200 {
		t.Fatalf("tenant drift = %d", code)
	}

	// Fleet stats expose the sustained rate and latency percentiles.
	var st ingest.Stats
	if code, _ := getJSON("/api/v1/ingest", &st); code != 200 {
		t.Fatalf("/api/v1/ingest = %d", code)
	}
	if st.WindowsProcessed != 2*2*3*8 || st.Tenants != 2 || st.WindowsPerSec <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.VerdictLatencyP99MS < st.VerdictLatencyP50MS {
		t.Fatalf("latency percentiles inverted: %+v", st)
	}

	// A deprecated alias answers identically to its successor, stamped.
	respLegacy, err := http.Get(srv.URL() + "/quality")
	if err != nil {
		t.Fatal(err)
	}
	legacyBody, _ := io.ReadAll(respLegacy.Body)
	respLegacy.Body.Close()
	if dep := respLegacy.Header.Get(httpapi.DeprecationHeader); dep != "true" {
		t.Fatalf("/quality Deprecation = %q", dep)
	}
	if link := respLegacy.Header.Get("Link"); !strings.Contains(link, "/api/v1/quality") {
		t.Fatalf("/quality Link = %q", link)
	}
	respV1, err := http.Get(srv.URL() + "/api/v1/quality")
	if err != nil {
		t.Fatal(err)
	}
	v1Body, _ := io.ReadAll(respV1.Body)
	respV1.Body.Close()
	if string(legacyBody) != string(v1Body) {
		t.Fatalf("alias body differs:\n--- /quality\n%s\n--- /api/v1/quality\n%s", legacyBody, v1Body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exit: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("serve did not exit")
	}
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// cmdFleetgen is the fleet load generator: it simulates
// tenants × endpoints hosts, each collecting HPC windows from the
// workload families and POSTing them as batches to a serve daemon's
// /api/v1/ingest, then reports sustained windows/sec and request/
// verdict latency percentiles — the load-test harness behind the
// ingest benchmarks.
func cmdFleetgen(args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	fs := flag.NewFlagSet("fleetgen", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "serve daemon address (host:port)")
	tenants := fs.Int("tenants", 4, "simulated tenants")
	endpoints := fs.Int("endpoints", 8, "simulated endpoints per tenant")
	batch := fs.Int("batch", 64, "windows per ingest request")
	rounds := fs.Int("rounds", 10, "batches each endpoint sends")
	windows := fs.Int("windows", 64, "HPC windows collected per endpoint workload run")
	seed := fs.Uint64("seed", 1, "random seed for the simulated workloads")
	ndjson := fs.Bool("ndjson", false, "send NDJSON streams instead of JSON batches")
	traceparent := fs.Bool("traceparent", true, "stamp a sampled W3C traceparent on every request so client and server latency join on trace id")
	dropOldest := fs.Bool("drop-oldest", false, "opt tenants into drop-oldest overflow instead of 429 backpressure")
	readyTimeout := fs.Duration("ready-timeout", 60*time.Second, "how long to wait for the daemon's /readyz")
	drainTimeout := fs.Duration("drain-timeout", 60*time.Second, "how long to wait for the server to classify everything sent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tenants < 1 || *endpoints < 1 || *batch < 1 || *rounds < 1 {
		return fmt.Errorf("fleetgen: -tenants, -endpoints, -batch and -rounds must be >= 1")
	}
	base := "http://" + *addr
	client := &http.Client{Timeout: 30 * time.Second}

	// The fleet's traffic: every endpoint runs one workload family and
	// replays its collected windows. Pre-generate everything before
	// timing starts so measured throughput is pure ingest+detect.
	cfg := trace.DefaultConfig()
	cfg.WindowsPerSample = *windows
	classes := workload.AllClasses()
	type endpointLoad struct {
		tenant   string
		endpoint string
		windows  []ingest.Window
	}
	var loads []endpointLoad
	for t := 0; t < *tenants; t++ {
		tenantID := fmt.Sprintf("tenant-%02d", t)
		for e := 0; e < *endpoints; e++ {
			class := classes[(t*(*endpoints)+e)%len(classes)]
			tr, err := trace.CollectSample(cfg, class,
				*seed^(uint64(t)*1000003+uint64(e)*1009+1)*0x9e3779b97f4a7c15)
			if err != nil {
				return fmt.Errorf("fleetgen: collecting %s windows: %w", class, err)
			}
			label := 0
			if class.IsMalware() {
				label = 1
			}
			ws := make([]ingest.Window, len(tr.Records))
			epID := fmt.Sprintf("%s-ep-%02d", class, e)
			for i := range tr.Records {
				lbl := label
				ws[i] = ingest.Window{
					Endpoint: epID,
					Label:    &lbl,
					Values:   tr.Records[i].Values(),
				}
			}
			loads = append(loads, endpointLoad{tenant: tenantID, endpoint: epID, windows: ws})
		}
	}

	if err := waitReady(ctx, client, base, *readyTimeout); err != nil {
		return err
	}

	overflow := ""
	if *dropOldest {
		overflow = ingest.OverflowDropOldest
	}
	fmt.Printf("fleetgen: %d tenants × %d endpoints → %s, %d rounds × %d windows (%s)\n",
		*tenants, *endpoints, base, *rounds, *batch,
		map[bool]string{true: "ndjson", false: "json"}[*ndjson])

	var (
		acceptedTotal atomic.Int64
		droppedTotal  atomic.Int64
		retriesTotal  atomic.Int64
		stampedTotal  atomic.Int64
		joinedTotal   atomic.Int64 // receipts echoing our stamped trace id
		mu            sync.Mutex
		latencies     []float64 // request round-trip, milliseconds
		firstErr      error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for _, ld := range loads {
		wg.Add(1)
		go func(ld endpointLoad) {
			defer wg.Done()
			var local []float64
			next := 0
			for r := 0; r < *rounds && ctx.Err() == nil; r++ {
				ws := make([]ingest.Window, *batch)
				for i := range ws {
					ws[i] = ld.windows[next%len(ld.windows)]
					next++
				}
				res, retries, rtt, joined, err := postWindows(ctx, client, base, ld.tenant, overflow, ws, *ndjson, *traceparent)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("fleetgen: %s/%s: %w", ld.tenant, ld.endpoint, err)
					}
					mu.Unlock()
					return
				}
				acceptedTotal.Add(int64(res.Accepted))
				droppedTotal.Add(int64(res.Dropped))
				retriesTotal.Add(int64(retries))
				if *traceparent {
					stampedTotal.Add(1)
					if joined {
						joinedTotal.Add(1)
					}
				}
				local = append(local, rtt)
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(ld)
	}
	wg.Wait()
	sendWall := time.Since(start)
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Wait until the server has classified everything it accepted, so
	// the reported server-side rate is ingest-to-verdict, not just
	// ingest-to-queue.
	stats, err := waitDrain(ctx, client, base, *drainTimeout)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	clientRate := float64(acceptedTotal.Load()) / sendWall.Seconds()
	fmt.Printf("client: %d windows accepted (%d dropped) in %.2fs — %.0f windows/s, %d retries after 429\n",
		acceptedTotal.Load(), droppedTotal.Load(), sendWall.Seconds(), clientRate, retriesTotal.Load())
	fmt.Printf("client: request rtt p50 %.2f ms, p99 %.2f ms over %d requests\n",
		percentile(latencies, 0.50), percentile(latencies, 0.99), len(latencies))
	if *traceparent {
		fmt.Printf("client: %d traceparents stamped, %d joined by the server (inspect via /api/v1/traces)\n",
			stampedTotal.Load(), joinedTotal.Load())
	}
	fmt.Printf("server: %d windows classified from %d tenants in %.2fs — %.0f windows/s sustained, verdict latency p50 %.2f ms p99 %.2f ms\n",
		stats.WindowsProcessed, stats.Tenants, wall.Seconds(),
		stats.WindowsPerSec, stats.VerdictLatencyP50MS, stats.VerdictLatencyP99MS)
	return nil
}

// postWindows sends one batch (retrying on 429 per its Retry-After) and
// returns the receipt, the retry count, the final round-trip in ms, and
// whether the server's receipt joined the stamped trace id.
func postWindows(ctx context.Context, client *http.Client, base, tenant, overflow string,
	ws []ingest.Window, ndjson, stamp bool) (ingest.Accepted, int, float64, bool, error) {
	var body bytes.Buffer
	var contentType string
	if ndjson {
		contentType = "application/x-ndjson"
		enc := json.NewEncoder(&body)
		for i := range ws {
			if err := enc.Encode(&ws[i]); err != nil {
				return ingest.Accepted{}, 0, 0, false, err
			}
		}
	} else {
		contentType = "application/json"
		if err := json.NewEncoder(&body).Encode(ingest.Batch{Overflow: overflow, Windows: ws}); err != nil {
			return ingest.Accepted{}, 0, 0, false, err
		}
	}
	raw := body.Bytes()
	// One fresh sampled context per batch, held across 429 retries: the
	// retried request is the same logical trace.
	var tc obs.TraceContext
	if stamp {
		tc = obs.NewTraceContext()
	}
	for retries := 0; ; retries++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/api/v1/ingest", bytes.NewReader(raw))
		if err != nil {
			return ingest.Accepted{}, retries, 0, false, err
		}
		req.Header.Set("Content-Type", contentType)
		req.Header.Set(ingest.TenantHeader, tenant)
		if stamp {
			req.Header.Set(ingest.TraceparentHeader, tc.Traceparent())
		}
		if ndjson && overflow != "" {
			// NDJSON bodies carry no batch envelope; pass the policy by query.
			q := req.URL.Query()
			q.Set("tenant", tenant)
			req.URL.RawQuery = q.Encode()
		}
		t0 := time.Now()
		resp, err := client.Do(req)
		rtt := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			return ingest.Accepted{}, retries, rtt, false, err
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return ingest.Accepted{}, retries, rtt, false, err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var res ingest.Accepted
			if err := json.Unmarshal(payload, &res); err != nil {
				return ingest.Accepted{}, retries, rtt, false, err
			}
			return res, retries, rtt, stamp && res.TraceID == tc.TraceID(), nil
		case http.StatusTooManyRequests:
			// Explicit backpressure: honor Retry-After and resend.
			delay := time.Second
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				delay = time.Duration(secs) * time.Second
			}
			select {
			case <-ctx.Done():
				return ingest.Accepted{}, retries, rtt, false, ctx.Err()
			case <-time.After(delay):
			}
		default:
			return ingest.Accepted{}, retries, rtt, false,
				fmt.Errorf("ingest returned %d: %s", resp.StatusCode, bytes.TrimSpace(payload))
		}
	}
}

// waitReady polls /readyz until the daemon reports ready.
func waitReady(ctx context.Context, client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleetgen: %s/readyz not ready after %s", base, timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// waitDrain polls the ingest stats until the server's queues are empty.
func waitDrain(ctx context.Context, client *http.Client, base string, timeout time.Duration) (ingest.Stats, error) {
	deadline := time.Now().Add(timeout)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/v1/ingest", nil)
		if err != nil {
			return ingest.Stats{}, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return ingest.Stats{}, err
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return ingest.Stats{}, err
		}
		var stats ingest.Stats
		if err := json.Unmarshal(payload, &stats); err != nil {
			return ingest.Stats{}, fmt.Errorf("fleetgen: bad stats payload: %w (%s)", err, bytes.TrimSpace(payload))
		}
		if stats.Queued == 0 {
			return stats, nil
		}
		if time.Now().After(deadline) {
			return stats, fmt.Errorf("fleetgen: server still has %d queued windows after %s", stats.Queued, timeout)
		}
		select {
		case <-ctx.Done():
			return stats, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// percentile returns the q-quantile of values in ms (0 when empty).
func percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/infer"
	"repro/internal/ml"
	"repro/internal/ml/eval"
	"repro/internal/workload"
)

// cmdQuant runs `hpcmal quant`: for every registry classifier, it cross
// validates the quantized fixed-point program against its float64 twin
// and prints the agreement / macro-F1 delta table. This is the
// command-line face of eval.CrossValidateQuant — the out-of-sample
// counterpart of the compile-time agreement number /api/v1/models
// reports.
func cmdQuant(args []string) error {
	fs := flag.NewFlagSet("quant", flag.ExitOnError)
	scale := fs.Float64("scale", 0.05, "dataset scale")
	seed := fs.Uint64("seed", 1, "random seed")
	folds := fs.Int("cv", 5, "stratified CV folds")
	binary := fs.Bool("binary", true, "malware-vs-benign (false = 6-class)")
	precision := fs.String("precision", "int8", "quantized precision: int8 or int16")
	name := fs.String("classifier", "", "single classifier instead of the full registry")
	jsonOut := fs.Bool("json", false, "emit the reports as a JSON array")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := of.setup(); err != nil {
		return err
	}
	prec, err := infer.ParsePrecision(*precision)
	if err != nil {
		return fmt.Errorf("quant: %w", err)
	}
	if prec == infer.Float64 {
		return fmt.Errorf("quant: -precision must be int8 or int16")
	}
	tbl, err := core.GenerateDataset(core.DatasetConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	rows := make([][]float64, len(tbl.Instances))
	for i := range tbl.Instances {
		rows[i] = tbl.Instances[i].Features
	}
	labels, numClasses := tbl.BinaryLabels(), 2
	if !*binary {
		labels, numClasses = tbl.ClassLabels(), workload.NumClasses
	}
	names := core.ClassifierNames()
	if *name != "" {
		if _, err := core.NewClassifier(*name, *seed); err != nil {
			return err
		}
		names = []string{*name}
	}
	var reports []*eval.QuantReport
	if !*jsonOut {
		fmt.Printf("%d-fold CV, %d rows, %s vs float64\n", *folds, len(rows), prec)
		fmt.Printf("%-12s %10s %10s %10s %9s\n",
			"classifier", "agreement", "float-F1", "quant-F1", "delta-F1")
	}
	for _, n := range names {
		factory := func() ml.Classifier {
			c, _ := core.NewClassifier(n, *seed)
			return c
		}
		rep, err := eval.CrossValidateQuant(
			factory, rows, labels, numClasses, *folds, *seed, prec)
		if err != nil {
			if strings.Contains(err.Error(), "quantize") ||
				strings.Contains(err.Error(), "capacity") {
				fmt.Fprintf(os.Stderr, "quant: skipping %s: %v\n", n, err)
				continue
			}
			return err
		}
		reports = append(reports, rep)
		if !*jsonOut {
			fmt.Printf("%-12s %10.4f %10.4f %10.4f %+9.4f\n",
				rep.Classifier, rep.Agreement,
				rep.FloatMacroF1, rep.QuantMacroF1, rep.DeltaF1)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	}
	of.manifest.Config["precision"] = prec.String()
	of.manifest.Config["cv_folds"] = fmt.Sprint(*folds)
	if err := of.writeManifest("", *seed, *scale, nil,
		tbl.NumInstances(), 0); err != nil {
		return err
	}
	return of.finish()
}

package main

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// TestSpark pins the sparkline renderer: fixed width, self-scaled, flat
// series render low, and empty input renders blank instead of panicking.
func TestSpark(t *testing.T) {
	if got := spark(nil, 10); got != strings.Repeat(" ", 10) {
		t.Errorf("empty spark = %q", got)
	}
	ramp := spark([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(ramp) != 8 {
		t.Fatalf("spark width = %d runes (%q)", utf8.RuneCountInString(ramp), ramp)
	}
	runes := []rune(ramp)
	if runes[0] != sparkRunes[0] || runes[7] != sparkRunes[len(sparkRunes)-1] {
		t.Errorf("ramp spark = %q, want %c..%c", ramp, sparkRunes[0], sparkRunes[len(sparkRunes)-1])
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("ramp spark not monotonic: %q", ramp)
		}
	}
	flat := spark([]float64{5, 5, 5}, 6)
	for _, r := range flat {
		if r != sparkRunes[0] {
			t.Errorf("flat spark = %q, want all %c", flat, sparkRunes[0])
		}
	}
	// More points than columns resamples rather than truncating.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	if got := spark(long, 12); utf8.RuneCountInString(got) != 12 {
		t.Errorf("resampled spark width = %q", got)
	}
}

package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"unicode/utf8"

	"repro/internal/ingest"
)

// TestSpark pins the sparkline renderer: fixed width, self-scaled, flat
// series render low, and empty input renders blank instead of panicking.
func TestSpark(t *testing.T) {
	if got := spark(nil, 10); got != strings.Repeat(" ", 10) {
		t.Errorf("empty spark = %q", got)
	}
	ramp := spark([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(ramp) != 8 {
		t.Fatalf("spark width = %d runes (%q)", utf8.RuneCountInString(ramp), ramp)
	}
	runes := []rune(ramp)
	if runes[0] != sparkRunes[0] || runes[7] != sparkRunes[len(sparkRunes)-1] {
		t.Errorf("ramp spark = %q, want %c..%c", ramp, sparkRunes[0], sparkRunes[len(sparkRunes)-1])
	}
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("ramp spark not monotonic: %q", ramp)
		}
	}
	flat := spark([]float64{5, 5, 5}, 6)
	for _, r := range flat {
		if r != sparkRunes[0] {
			t.Errorf("flat spark = %q, want all %c", flat, sparkRunes[0])
		}
	}
	// More points than columns resamples rather than truncating.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	if got := spark(long, 12); utf8.RuneCountInString(got) != 12 {
		t.Errorf("resampled spark width = %q", got)
	}
}

// TestTopTenantPanel pins the per-tenant ingest panel: the first frame
// has no deltas so rates print "-", the second frame computes windows/s
// and 429/s from counter deltas, and a daemon without the tenants
// endpoint yields no panel at all.
func TestTopTenantPanel(t *testing.T) {
	var frame atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/tenants" {
			http.NotFound(w, r)
			return
		}
		// Second frame: counters advanced by 100 windows / 5 rejections.
		n := frame.Load() * 100
		json.NewEncoder(w).Encode(map[string]any{
			"tenants": []ingest.TenantSummary{{
				ID: "tenant-00", Queued: 7, QueueCap: 64,
				WindowsProcessed: 500 + n, BatchesRejected: 2 + n/20, Alarms: 3,
			}},
		})
	}))
	defer ts.Close()

	c := &topClient{base: ts.URL, hc: ts.Client()}
	first := c.tenantPanel()
	for _, want := range []string{"ingest tenants (1):", "tenant-00", "7/64", "windows/s", "429/s"} {
		if !strings.Contains(first, want) {
			t.Fatalf("first frame missing %q:\n%s", want, first)
		}
	}
	if !strings.Contains(first, "-") {
		t.Fatalf("first frame should show '-' rates (no prior sample):\n%s", first)
	}

	frame.Store(1)
	second := c.tenantPanel()
	if strings.Contains(second, " - ") {
		t.Fatalf("second frame still has placeholder rates:\n%s", second)
	}
	// 100 windows and 5 rejections over a sub-second gap: both rates are
	// positive, and the non-rate columns carry through.
	if !strings.Contains(second, "tenant-00") || !strings.Contains(second, "7/64") {
		t.Fatalf("second frame = %s", second)
	}

	// No tenants endpoint (e.g. a bare telemetry server): panel omitted.
	bare := httptest.NewServer(http.HandlerFunc(http.NotFound))
	defer bare.Close()
	cb := &topClient{base: bare.URL, hc: bare.Client()}
	if got := cb.tenantPanel(); got != "" {
		t.Fatalf("panel against a daemon without tenants = %q", got)
	}
}

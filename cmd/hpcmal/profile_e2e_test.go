package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/profile"
)

// TestServeContinuousProfiling is the acceptance path for the continuous
// profiler: under `serve` with a fast cycle, (1) interval captures land
// in the ring and list on /api/v1/profiles, (2) a firing alert rule
// triggers a pinned CPU capture retrievable by trigger filter, (3) the
// raw blob downloads as gzipped pprof and ?summary=1 parses, (4) the
// runtime/metrics gauges answer range queries from the tsdb, and (5)
// the incident dump embeds the triggering profile's metadata.
func TestServeContinuousProfiling(t *testing.T) {
	dir := t.TempDir()
	rulesPath := filepath.Join(dir, "rules.json")
	if err := os.WriteFile(rulesPath, []byte(`[
		{"name": "replay-started", "metric": "online.monitors", "op": ">", "threshold": 0,
		 "severity": "info", "msg": "traces are being monitored"}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	incidents := filepath.Join(dir, "incidents")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, errc := startServe(t, ctx, []string{
		"-scale", "0.01", "-perclass", "1", "-windows", "16",
		"-profile-interval", "300ms", "-profile-duty", "100ms",
		"-scrape-interval", "50ms",
		"-rules", rulesPath, "-alert-interval", "100ms",
		"-incident-dir", incidents, "-quiet"})

	getBody := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header
	}

	type listResp struct {
		Profiles []profile.CaptureInfo `json:"profiles"`
		Stats    profile.Stats         `json:"stats"`
	}
	pollList := func(path string, ok func(listResp) bool, what string) listResp {
		t.Helper()
		deadline := time.Now().Add(120 * time.Second)
		for {
			code, body, _ := getBody(path)
			var lr listResp
			if code == 200 {
				if err := json.Unmarshal([]byte(body), &lr); err != nil {
					t.Fatalf("%s not JSON: %v\n%s", path, err, body)
				}
				if ok(lr) {
					return lr
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: %s (last: %d %s)", path, what, code, body)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// (1) The background sampler fills the ring with interval captures of
	// every type.
	all := pollList("/api/v1/profiles", func(lr listResp) bool {
		types := map[string]bool{}
		for _, c := range lr.Profiles {
			types[c.Type] = true
		}
		return types["cpu"] && types["heap"] && types["goroutine"]
	}, "interval captures never covered cpu+heap+goroutine")
	if all.Stats.Captures == 0 || all.Stats.RingBytes == 0 {
		t.Fatalf("stats = %+v", all.Stats)
	}

	// (2) The firing alert rule triggers a pinned CPU capture.
	alert := pollList("/api/v1/profiles?type=cpu&trigger=alert", func(lr listResp) bool {
		return len(lr.Profiles) > 0
	}, "no alert-triggered cpu capture")
	cap0 := alert.Profiles[0]
	if !cap0.Pinned || cap0.Trigger != "alert" {
		t.Fatalf("alert capture = %+v, want pinned trigger=alert", cap0)
	}

	// (3) Raw download is a gzipped pprof blob; ?summary=1 is parsed JSON.
	code, blob, hdr := getBody("/api/v1/profiles/" + cap0.ID)
	if code != 200 || hdr.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("download = %d %q", code, hdr.Get("Content-Type"))
	}
	if len(blob) < 2 || blob[0] != 0x1f || blob[1] != 0x8b {
		t.Fatalf("capture blob missing gzip magic: % x", blob[:2])
	}
	code, body, _ := getBody("/api/v1/profiles/" + cap0.ID + "?summary=1")
	if code != 200 {
		t.Fatalf("summary = %d %s", code, body)
	}
	var info profile.CaptureInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != cap0.ID || info.Summary == nil || info.Summary.SampleType != "cpu" {
		t.Fatalf("summary = %+v", info)
	}

	// (4) runtime/metrics gauges are scraped into the tsdb and answer
	// range queries — the same series alert rules can watch.
	deadline := time.Now().Add(120 * time.Second)
	for {
		code, body, _ := getBody("/api/v1/query_range?metric=runtime.goroutines&from=now-2m&to=now&agg=max")
		if code == 200 {
			var qr struct {
				Points []struct {
					V float64 `json:"v"`
				} `json:"points"`
			}
			if err := json.Unmarshal([]byte(body), &qr); err != nil {
				t.Fatalf("query_range not JSON: %v\n%s", err, body)
			}
			if len(qr.Points) > 0 && qr.Points[len(qr.Points)-1].V >= 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("runtime.goroutines never queryable: %d %s", code, body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// (5) The incident dump embeds the triggering profile's metadata.
	var files []string
	for len(files) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no incident dump written")
		}
		files, _ = filepath.Glob(filepath.Join(incidents, "incident-*.json"))
		time.Sleep(50 * time.Millisecond)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var inc struct {
		Profile *profile.CaptureInfo `json:"profile"`
	}
	if err := json.Unmarshal(raw, &inc); err != nil {
		t.Fatalf("incident not JSON: %v", err)
	}
	if inc.Profile == nil || inc.Profile.Type != "cpu" {
		t.Fatalf("incident %s missing embedded cpu profile: %s", files[0], raw)
	}

	// The labeled captures family renders on /metrics under load.
	if _, metrics, _ := getBody("/metrics"); !strings.Contains(metrics, `profile_captures_total{type="cpu",trigger="interval"}`) {
		t.Error("/metrics missing profile_captures_total interval series")
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exit: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("serve did not exit")
	}
}

// TestServeProfilerDisabled: -profile-interval 0 leaves no profiler
// attached, so the API reports 404 instead of an empty ring.
func TestServeProfilerDisabled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, errc := startServe(t, ctx, []string{
		"-scale", "0.01", "-perclass", "1", "-windows", "8",
		"-profile-interval", "0", "-quiet"})
	resp, err := http.Get(srv.URL() + "/api/v1/profiles")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "profile-interval") {
		t.Fatalf("disabled profiler: %d %s", resp.StatusCode, body)
	}
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exit: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("serve did not exit")
	}
}

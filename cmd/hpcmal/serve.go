package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/alert"
	"repro/internal/core"
	"repro/internal/flightrec"
	"repro/internal/infer"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/profile"
	"repro/internal/quality"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tsdb"
	"repro/internal/workload"
)

// serveReady, when non-nil, receives the telemetry server once `serve`
// is accepting requests. Tests hook it to learn the bound port.
var serveReady func(*telemetry.Server)

// serveStarted, when non-nil, receives the server as soon as it is
// listening but before the detector trains — the window where /readyz
// must answer 503. It runs synchronously on the serve goroutine, so a
// test hook can probe the not-ready state without racing training.
var serveStarted func(*telemetry.Server)

// printVersion implements `hpcmal -version`: the same build identity the
// run manifests and /buildinfo report.
func printVersion() {
	bi := obs.Build()
	fmt.Printf("hpcmal %s\n", bi.String())
	if bi.Module != "" {
		fmt.Printf("module %s\n", bi.Module)
	}
}

// cmdServe runs the online detector as a long-lived daemon: it trains a
// detector once, then replays freshly collected traces through
// online.MonitorAll round after round, publishing alarms and window
// verdicts to the live /events stream and all instruments to /metrics.
// SIGINT/SIGTERM trigger a graceful shutdown: the signal context
// propagates into the parallel monitoring pool (in-flight traces finish,
// unclaimed ones are skipped) and the telemetry server drains.
func cmdServe(args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runServe(ctx, args)
}

func runServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	classifier := fs.String("classifier", "J48", "detector classifier (see `hpcmal list`)")
	precision := fs.String("precision", "float64", "inference numeric domain: float64, int16, or int8 (fixed-point quantized programs mirroring the hw datapath widths)")
	scale := fs.Float64("scale", 0.05, "training dataset scale")
	seed := fs.Uint64("seed", 1, "random seed")
	perClass := fs.Int("perclass", 2, "fresh traces to monitor per class per round")
	windows := fs.Int("windows", 32, "sampling windows per monitored trace")
	rounds := fs.Int("rounds", 0, "replay rounds before exiting (0 = run until SIGINT/SIGTERM)")
	interval := fs.Duration("interval", 0, "pause between replay rounds")
	rulesPath := fs.String("rules", "", "alert rule JSON `file` evaluated against the metric registry (see README)")
	alertInterval := fs.Duration("alert-interval", 2*time.Second, "alert-rule evaluation interval")
	incidentDir := fs.String("incident-dir", "", "write flight-recorder incident dumps to `dir` on alarms, firing alerts and panics")
	scrapeInterval := fs.Duration("scrape-interval", time.Second, "metric-history scrape period for /api/v1/query_range and the dashboard")
	replay := fs.Bool("replay", true, "run the self-generated labeled replay loop (false = pure fleet-ingest server: train, mount /api/v1/ingest, wait for traffic)")
	ingestQueue := fs.Int("ingest-queue", 16384, "per-tenant ingest queue capacity in windows (full queues answer 429 + Retry-After)")
	ingestShards := fs.Int("ingest-shards", 0, "detection pipeline shards for the ingest service (0 = the -parallel worker bound)")
	traceSample := fs.Float64("trace-sample", 0.05, "request-tracing head-sample probability in [0,1] (0 = record only explicitly-sampled traceparents; negative disables tracing)")
	traceSlow := fs.Duration("trace-slow", 100*time.Millisecond, "tail-keep request traces at least this slow end to end")
	traceBudget := fs.Int64("trace-budget", 4<<20, "retained request-trace ring budget in `bytes`")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prec, err := infer.ParsePrecision(*precision)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	var rules []alert.Rule
	if *rulesPath != "" {
		raw, err := os.ReadFile(*rulesPath)
		if err != nil {
			return fmt.Errorf("serve: reading -rules: %w", err)
		}
		if rules, err = alert.ParseRules(raw); err != nil {
			return err
		}
	}
	// A telemetry daemon without its server would be pointless; default
	// the shared -listen flag instead of requiring it.
	if of.Listen == "" {
		of.Listen = "127.0.0.1:0"
	}
	// The readiness gate must exist before setup starts the listener so
	// /readyz never reports a default-ready window: the daemon is ready
	// once the detector is trained AND the history scraper is running.
	// The store itself is built after setup — setup resets the registry,
	// which would orphan a store built earlier — so the gate reads it
	// through an atomic pointer (Running is nil-safe).
	var trained atomic.Bool
	var storePtr atomic.Pointer[tsdb.Store]
	var ingestUp atomic.Bool
	of.ReadyFn = func() (bool, string) {
		if !trained.Load() {
			return false, "detector not trained yet"
		}
		if !storePtr.Load().Running() {
			return false, "metric-history scraper not running"
		}
		if !ingestUp.Load() {
			return false, "ingest service not mounted yet"
		}
		return true, ""
	}
	if err := of.setup(); err != nil {
		return err
	}
	srv := of.Server()

	// Request tracing: head-sample at ingest entry, tail-keep slow /
	// errored / alarm-coincident traces in a byte-budgeted ring served by
	// /api/v1/traces. A nil tracer (negative -trace-sample) threads
	// through every layer as "off" with zero per-window cost.
	var reqTracer *obs.ReqTracer
	if *traceSample >= 0 {
		reqTracer = obs.NewReqTracer(obs.ReqTracerConfig{
			HeadRatio:     *traceSample,
			SlowThreshold: *traceSlow,
			MaxBytes:      *traceBudget,
			Registry:      obs.DefaultRegistry,
		})
	}
	srv.SetReqTracer(reqTracer)

	// Embedded time-series store: scrape the registry into bounded rings
	// for the whole daemon lifetime, feeding the range-query API, the
	// dashboard, /alerts/history and incident pre-trigger history. The
	// profiler's runtime/metrics collector rides the scrape as a
	// PreScrape hook, so GC pause / goroutine / sched-latency gauges are
	// refreshed at scrape cadence and become range-queryable, alertable
	// series like everything else.
	store := tsdb.New(tsdb.Config{Interval: *scrapeInterval,
		PreScrape: of.RuntimeCollector().Update})
	storePtr.Store(store)
	go store.Run(ctx)
	srv.SetStore(store)
	fmt.Printf("telemetry on %s (/metrics /events /dashboard /healthz /readyz /api/v1/{ingest,tenants,traces,profiles,quality,drift,alerts,alerts/history,series,query_range,manifest,models,buildinfo} /debug/flightrecorder /debug/pprof)\n", srv.URL())
	if serveStarted != nil {
		serveStarted(srv)
	}

	// Train the detector once, up front.
	sp := obs.StartSpan("serve.train")
	tbl, err := core.GenerateDataset(core.DatasetConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	clf, err := core.NewClassifier(*classifier, *seed)
	if err != nil {
		return err
	}
	rows := make([][]float64, len(tbl.Instances))
	for i := range tbl.Instances {
		rows[i] = tbl.Instances[i].Features
	}
	if err := clf.Train(rows, tbl.BinaryLabels(), 2); err != nil {
		return err
	}
	sp.End()
	trained.Store(true)
	obs.Log().Info("detector trained", "classifier", *classifier,
		"rows", tbl.NumInstances())

	// Model-quality observability: sketch the training distribution into
	// the manifest, then score and drift-check the labeled replay live.
	base, err := quality.CaptureBaseline(tbl.Attributes, rows, 16)
	if err != nil {
		return err
	}
	if of.manifest.Baseline, err = base.JSON(); err != nil {
		return err
	}
	board := quality.NewScoreboard(quality.Config{})
	driftDet, err := quality.NewDriftDetector(base, quality.DriftConfig{})
	if err != nil {
		return err
	}
	// Incident dumps embed the last five minutes of metric history, so a
	// dump shows the decay leading up to the trigger, not just its moment.
	rec := flightrec.New(flightrec.Config{Dir: *incidentDir, Manifest: of.manifest,
		History: func() any { return store.RecentHistory(5 * time.Minute) },
		// Incidents embed the most recent tail-kept request trace, tying
		// the dump to the exact request whose stages led to the trigger.
		Trace: func() any {
			if snap, ok := reqTracer.LastKept(""); ok {
				return snap
			}
			return nil
		},
		// And the CPU profile nearest the trigger (the profiler pins
		// alert/alarm-triggered captures), so the dump names the
		// functions that were hot when the incident began.
		Profile: func() any {
			if info, ok := of.Profiler().Latest(profile.TypeCPU); ok {
				return info
			}
			return nil
		}})
	defer rec.DumpOnPanic()
	// Alarms trip the recorder via the bus; firing alert rules via the
	// engine's hook (each dump named after the rule that fired).
	go rec.Watch(ctx, obs.DefaultBus, online.EventAlarm)
	eng := alert.New(rules, alert.WithOnFire(func(st alert.RuleStatus) {
		rec.TryDump("alert-" + st.Rule.Name)
	}))
	go eng.Run(ctx, *alertInterval)
	srv.SetQuality(func() any { return board.Snapshot() })
	srv.SetDrift(func() any { return driftDet.Snapshot() })
	srv.SetAlerts(func() any { return eng.Snapshot() })
	srv.SetFlightRecorder(func() any { return rec.Snapshot() })
	obs.Log().Info("model-quality observability armed",
		"alert_rules", len(rules), "incident_dir", *incidentDir)

	// Fleet ingest: mount the sharded per-tenant detection service on the
	// versioned API. Remote endpoints POST window batches; the replay loop
	// below stays the self-generated labeled traffic source.
	svc, err := ingest.New(ingest.Config{
		Classifier:  clf,
		Events:      tbl.Attributes,
		Baseline:    base,
		Shards:      *ingestShards,
		QueueCap:    *ingestQueue,
		Tracer:      reqTracer,
		Precision:   prec,
		Calibration: rows,
	})
	if err != nil {
		return err
	}
	svc.Start(ctx)
	srv.SetIngest(svc.Handler())
	// The deployed-program catalog: /api/v1/models serves the ingest
	// program's spec (precision, widths, scale table, agreement) and the
	// dashboard's models panel links to it.
	srv.SetModels(func() []telemetry.ModelInfo {
		spec, ok := svc.ProgramSpec()
		if !ok {
			return nil
		}
		return []telemetry.ModelInfo{{Name: spec.Classifier, Spec: spec}}
	})
	ingestUp.Store(true)
	obs.Log().Info("fleet ingest mounted", "shards", svc.Stats().Shards,
		"queue_cap", *ingestQueue, "program", svc.Program(), "precision", prec.String())
	if serveReady != nil {
		serveReady(srv)
	}

	cfg := trace.DefaultConfig()
	cfg.WindowsPerSample = *windows
	classes := workload.AllClasses()
	round, alarms := 0, 0
	if !*replay {
		// Pure ingest server: all traffic arrives over POST /api/v1/ingest
		// (fleetgen or real endpoints). Hold until signalled.
		obs.Log().Info("replay disabled; serving fleet ingest until signal")
		<-ctx.Done()
	}
loop:
	for ; *replay && (*rounds == 0 || round < *rounds); round++ {
		rsp := obs.StartSpan("serve.round")
		for _, class := range classes {
			if ctx.Err() != nil {
				rsp.End()
				break loop
			}
			// Fresh executions every round: seeds the detector never saw.
			traces, err := trace.CollectBatch(cfg, class, *perClass, func(i int) uint64 {
				return *seed ^ (uint64(round)*1000003+uint64(class)*1009+uint64(i)+1)*0x9e3779b97f4a7c15
			}, 0)
			if err != nil {
				rsp.End()
				return err
			}
			// The replay is labeled — serve collects each trace knowing its
			// class — so every window scores the scoreboard, feeds drift
			// detection, and lands in the flight recorder's ring.
			actual := 0
			if class.IsMalware() {
				actual = 1
			}
			observer := func(o online.WindowObservation) {
				board.Observe(actual, o.Pred, o.Score)
				driftDet.Observe(o.Values)
				rec.RecordWindow(flightrec.WindowRecord{Sample: o.Sample,
					Class: o.Class, Window: o.Window, Predicted: o.Pred,
					Score: o.Score, Values: o.Values})
			}
			results, err := online.MonitorAll(clf, traces,
				online.WithSamplePeriod(cfg.SamplePeriod),
				online.WithContext(ctx),
				online.WithWindowObserver(observer),
				online.WithReqTracer(reqTracer))
			if err != nil {
				if ctx.Err() != nil {
					// Cancelled mid-round by a signal: not a failure.
					rsp.End()
					break loop
				}
				rsp.End()
				return err
			}
			for _, res := range results {
				if res != nil && res.Detected {
					alarms++
				}
			}
		}
		rsp.End()
		// Rotate the sliding windows once per replay round: the scoreboard
		// and drift detector report over the last 8 rounds.
		board.Advance()
		driftDet.Advance()
		obs.Log().Info("replay round complete", "round", round+1,
			"alarms_total", alarms)
		if *rounds == 0 || round+1 < *rounds {
			select {
			case <-ctx.Done():
				break loop
			case <-time.After(*interval):
			}
		}
	}
	if ctx.Err() != nil {
		obs.Log().Info("signal received, shutting down")
	}
	ist := svc.Stats()
	fmt.Printf("monitored %d rounds, %d alarms raised; ingest: %d windows from %d tenants (%.0f windows/s, p99 %.2f ms)\n",
		round, alarms, ist.WindowsProcessed, ist.Tenants, ist.WindowsPerSec, ist.VerdictLatencyP99MS)

	of.manifest.Config["classifier"] = *classifier
	of.manifest.Config["precision"] = prec.String()
	of.manifest.Config["rounds"] = fmt.Sprint(round)
	of.manifest.Config["ingest_windows"] = fmt.Sprint(ist.WindowsProcessed)
	of.manifest.Config["ingest_tenants"] = fmt.Sprint(ist.Tenants)
	if *rulesPath != "" {
		of.manifest.Config["rules"] = *rulesPath
	}
	if *incidentDir != "" {
		of.manifest.Config["incident_dir"] = *incidentDir
	}
	if err := of.writeManifest("", *seed, *scale, nil, 0, 0); err != nil {
		return err
	}
	// finish() drains the telemetry server gracefully (open /events
	// streams are closed, in-flight scrapes complete).
	return of.finish()
}

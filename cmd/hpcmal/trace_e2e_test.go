package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTracingE2EAcrossServe is the tracing acceptance test: fleetgen
// ingests with stamped traceparents into a serve daemon tracing every
// request, a tail-kept trace comes back from /api/v1/traces/{id} with
// the full enqueue→dequeue→infer→quality waterfall whose summed stage
// durations bound the ingest-to-verdict latency, and the OpenMetrics
// scrape carries trace-id exemplars on the ingest latency histogram.
func TestTracingE2EAcrossServe(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// -trace-slow 1ns: every committed trace is tail-kept as slow, so
	// the assertion below never races ring eviction.
	srv, errc := startServe(t, ctx, []string{
		"-scale", "0.01", "-replay=false", "-quiet",
		"-trace-sample", "1", "-trace-slow", "1ns"})

	if err := cmdFleetgen([]string{
		"-addr", srv.Addr(), "-tenants", "2", "-endpoints", "2",
		"-batch", "8", "-rounds", "2", "-windows", "16"}); err != nil {
		t.Fatalf("fleetgen: %v", err)
	}

	getBody := func(path, accept string) (int, string, http.Header) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL()+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header
	}

	// Every fleetgen request was traced and tail-kept.
	var list struct {
		Traces []obs.ReqTraceSummary `json:"traces"`
		Stats  obs.ReqTraceStats     `json:"stats"`
	}
	code, body, _ := getBody("/api/v1/traces?tenant=tenant-00", "")
	if code != http.StatusOK {
		t.Fatalf("/api/v1/traces = %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) == 0 || list.Stats.Started == 0 {
		t.Fatalf("no traces retained: %s", body)
	}
	for _, tr := range list.Traces {
		// Slow is the floor at -trace-slow 1ns; an alarm inside the batch
		// outranks it (first-reason-wins), and both pin the trace.
		if tr.KeepReason != "slow" && tr.KeepReason != "alarm" {
			t.Fatalf("trace %s keep reason %q, want slow or alarm at -trace-slow 1ns",
				tr.TraceID, tr.KeepReason)
		}
	}

	// One trace's waterfall: every pipeline stage present, staged time
	// covering the reported ingest-to-verdict duration (small slack for
	// the handler-return → last-verdict scheduling gap).
	id := list.Traces[0].TraceID
	code, body, _ = getBody("/api/v1/traces/"+id, "")
	if code != http.StatusOK {
		t.Fatalf("/api/v1/traces/%s = %d %s", id, code, body)
	}
	var snap obs.ReqTraceSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ParentSpanID == "" {
		t.Fatalf("trace %s did not join fleetgen's traceparent: %+v", id, snap)
	}
	var stagedUS int64
	seen := map[string]bool{}
	for _, sp := range snap.Spans {
		seen[sp.Name] = true
		switch sp.Name {
		case "ingest.accept", "ingest.dequeue", "ingest.infer", "ingest.quality":
			stagedUS += sp.DurUS
		}
	}
	for _, name := range []string{"ingest.accept", "ingest.enqueue",
		"ingest.dequeue", "ingest.infer", "ingest.quality"} {
		if !seen[name] {
			t.Fatalf("span %s missing from waterfall: %s", name, body)
		}
	}
	if rootUS := int64(snap.DurMS * 1000); stagedUS+10_000 < rootUS {
		t.Fatalf("stage spans cover %dus of a %dus ingest-to-verdict trace", stagedUS, rootUS)
	}

	// The OpenMetrics scrape links the latency histogram to the traces.
	code, om, hdr := getBody("/metrics", "application/openmetrics-text; version=1.0.0")
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "application/openmetrics-text") {
		t.Fatalf("openmetrics scrape: %d %q", code, hdr.Get("Content-Type"))
	}
	if !strings.Contains(om, "# {trace_id=\"") || !strings.HasSuffix(om, "# EOF\n") {
		t.Fatalf("openmetrics exposition missing exemplars or terminator")
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exit: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("serve did not exit")
	}
}

// Command hpcmal is the command-line front end of the reproduction: it
// generates the HPC malware database, trains and evaluates classifiers,
// runs the PCA feature-reduction study, prices classifiers in hardware,
// and regenerates every table and figure of the paper.
//
// Usage:
//
//	hpcmal list
//	hpcmal gen    -scale 0.1 -seed 1 -out dataset.csv [-arff] [-binary]
//	hpcmal train  -classifier JRip [-binary] [-features a,b,c] [-scale 0.05]
//	hpcmal pca    [-scale 0.05] [-k 8]
//	hpcmal hwcost [-scale 0.05]
//	hpcmal quant  [-precision int8 -cv 5 -scale 0.05]
//	hpcmal repro  [all|ablations|table1|table2|fig6|pcaplots|fig13|...|fig19]
//	hpcmal serve  -listen :9090 [-scale 0.05 -classifier J48] [-replay=false]
//	hpcmal fleetgen -addr 127.0.0.1:9090 [-tenants 4 -endpoints 8 -rounds 10]
//	hpcmal top    -addr 127.0.0.1:9090 [-interval 2s]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/ml"
	"repro/internal/ml/eval"
	"repro/internal/obs"
	"repro/internal/pmu"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "gen":
		err = cmdGen(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "pca":
		err = cmdPCA(os.Args[2:])
	case "hwcost":
		err = cmdHWCost(os.Args[2:])
	case "collect":
		err = cmdCollect(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "emit":
		err = cmdEmit(os.Args[2:])
	case "repro":
		err = cmdRepro(os.Args[2:])
	case "quant":
		err = cmdQuant(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "fleetgen":
		err = cmdFleetgen(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "-version", "--version", "version":
		printVersion()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "hpcmal: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpcmal: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `hpcmal — HPC-based malware detection (DAC'17 / GMU thesis reproduction)

commands:
  list                         show classifiers, events and experiments
  gen    [-scale -seed -out -arff -binary]   generate the HPC dataset
  train  [-classifier -binary -features -scale -seed -cv]   train + evaluate
  pca    [-scale -seed -k]     PCA ranking and per-class custom features
  hwcost [-scale -seed]        FPGA area/latency for all classifiers
  collect [-dir -perclass -seed]   run samples in containers, write per-
                               sample HPC text files (the paper's Figure 5)
  merge  [-dir -out]           merge text files into one CSV (paper pipeline)
  emit   [-classifier -out -scale -seed]  train and emit synthesizable
                               Verilog for a rule/tree detector
  quant  [-precision -cv -scale -classifier -json]   cross-validate quantized
                               fixed-point programs against float64 and
                               report label agreement + macro-F1 delta
  repro  <id|all|ablations|extensions>   regenerate the paper's evaluation
  serve  [-listen -scale -classifier -rounds -replay=false]   run the online
                               detector as a long-lived daemon with live
                               telemetry and the /api/v1/ingest fleet API
  fleetgen [-addr -tenants -endpoints -batch -rounds -ndjson]   drive a serve
                               daemon with simulated fleet ingest traffic and
                               report windows/sec + latency percentiles
  top    [-addr -interval -once]   terminal dashboard over a serve daemon's
                               range-query API (history, alerts, readiness)
  version                      print build identity (module, VCS revision)

shared flags (every command):
  -parallel N                  bound parallel stages to N workers (default
                               all CPUs; 1 = serial; output is identical
                               at any value)
  -v / -vv / -quiet            debug / trace / errors-only logging on stderr
  -log-json                    JSON log lines instead of text
  -metrics-out FILE            write the run's counters/histograms/spans JSON
  -manifest FILE               override the run manifest path (gen, collect
                               and merge write one next to their output by
                               default; manifests record the worker count
                               and per-stage busy/wall speedup)
  -listen ADDR                 serve live telemetry for the run's duration:
                               /metrics (Prometheus), /events (NDJSON/SSE),
                               /healthz, /buildinfo, /manifest, /debug/pprof
  -trace-out FILE              export the span tree as Chrome trace-event
                               JSON (open at ui.perfetto.dev)
  -cpuprofile / -memprofile FILE   write pprof profiles`)
}

func cmdList() error {
	fmt.Println("classifiers (binary study, Figure 13):")
	reg := core.Classifiers()
	for _, n := range core.ClassifierNames() {
		s, _ := reg.Lookup(n)
		fmt.Printf("  %-11s %s\n", n, s.Description)
	}
	fmt.Println("multiclass classifiers (Figures 17-19):")
	fmt.Printf("  %s (Logistic = MLR)\n", strings.Join(core.MulticlassNames(), " "))
	fmt.Println("emittable as Verilog:")
	fmt.Printf("  %s\n", strings.Join(core.EmittableNames(), " "))
	fmt.Println("compiled batch inference (internal/infer):")
	fmt.Printf("  %s\n", strings.Join(core.CompilableNames(), " "))
	fmt.Println("experiments:")
	for _, d := range experiments.Catalog() {
		fmt.Printf("  %-15s %s\n", d.ID, d.Title)
	}
	fmt.Println("paper feature set (16 HPC events):")
	for _, e := range pmu.PaperFeatures() {
		fmt.Printf("  %s\n", e)
	}
	fmt.Printf("full PMU catalog: %d events, %d physical counters\n",
		len(pmu.Catalog()), pmu.NumCounters)
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	scale := fs.Float64("scale", 0.1, "fraction of the paper's 3,070-sample database")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "dataset.csv", "output path")
	arff := fs.Bool("arff", false, "write WEKA ARFF instead of CSV")
	binary := fs.Bool("binary", false, "binary (benign/malware) labels in ARFF")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := of.setup(); err != nil {
		return err
	}
	tbl, err := core.GenerateDataset(core.DatasetConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if *arff {
		err = tbl.WriteARFF(f, "hpc-malware", *binary)
	} else {
		err = tbl.WriteCSV(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d rows x %d features (+class) to %s\n",
		tbl.NumInstances(), tbl.NumAttributes(), *out)
	for _, c := range workload.AllClasses() {
		fmt.Printf("  %-9s %5d rows\n", c, tbl.ClassCounts()[c])
	}
	samples := 0
	for _, n := range tbl.SampleCounts() {
		samples += n
	}
	of.manifest.Config["format"] = map[bool]string{true: "arff", false: "csv"}[*arff]
	of.manifest.Config["binary"] = fmt.Sprint(*binary)
	if err := of.writeManifest(obs.ManifestPathFor(*out), *seed, *scale,
		[]string{*out}, tbl.NumInstances(), samples); err != nil {
		return err
	}
	return of.finish()
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	name := fs.String("classifier", "J48", "classifier name (see `hpcmal list`)")
	binary := fs.Bool("binary", true, "malware-vs-benign (false = 6-class)")
	features := fs.String("features", "", "comma-separated feature subset")
	scale := fs.Float64("scale", 0.05, "dataset scale")
	seed := fs.Uint64("seed", 1, "random seed")
	data := fs.String("data", "", "train on an existing CSV instead of generating")
	util := fs.Bool("util", false, "print a Vivado-style utilization report (Artix-7 35T)")
	cv := fs.Int("cv", 0, "stratified `k`-fold cross-validation instead of the supplied-test-set split")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := of.setup(); err != nil {
		return err
	}
	var tbl *dataset.Table
	var err error
	if *data != "" {
		f, err2 := os.Open(*data)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		tbl, err = dataset.ReadCSV(f)
	} else {
		tbl, err = core.GenerateDataset(core.DatasetConfig{Seed: *seed, Scale: *scale})
	}
	if err != nil {
		return err
	}
	if *cv > 0 {
		if err := cmdTrainCV(tbl, *name, *features, *binary, *cv, *seed); err != nil {
			return err
		}
		of.manifest.Config["classifier"] = *name
		of.manifest.Config["binary"] = fmt.Sprint(*binary)
		of.manifest.Config["cv_folds"] = fmt.Sprint(*cv)
		if err := of.writeManifest("", *seed, *scale, nil,
			tbl.NumInstances(), 0); err != nil {
			return err
		}
		return of.finish()
	}
	cfg := core.DetectorConfig{
		Classifier: *name, Binary: *binary, Seed: *seed,
	}
	if *features != "" {
		cfg.Features = strings.Split(*features, ",")
	}
	res, err := core.RunDetector(tbl, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("classifier: %s  features: %d  accuracy: %.2f%%\n",
		res.Classifier, len(res.Features), res.Eval.Accuracy()*100)
	if !*binary {
		names := make([]string, workload.NumClasses)
		for c := 0; c < workload.NumClasses; c++ {
			names[c] = workload.Class(c).String()
		}
		if err := res.Eval.WriteReport(os.Stdout, names); err != nil {
			return err
		}
	}
	if res.HW != nil {
		fmt.Printf("hardware: %d LUT-equiv (%d DSP, %d BRAM), %d cycles (%.0f ns at 100 MHz)\n",
			res.HW.EquivLUTs, res.HW.Area.DSP, res.HW.Area.BRAM,
			res.HW.Cycles, res.HW.LatencyNs)
		if *util {
			if err := res.HW.WriteUtilization(os.Stdout, hw.Artix7_35T); err != nil {
				return err
			}
			if !res.HW.Fits(hw.Artix7_35T) {
				fmt.Println("warning: design does not fit the xc7a35t")
			}
		}
	}
	of.manifest.Config["classifier"] = *name
	of.manifest.Config["binary"] = fmt.Sprint(*binary)
	if err := of.writeManifest("", *seed, *scale, nil,
		tbl.NumInstances(), 0); err != nil {
		return err
	}
	return of.finish()
}

// cmdTrainCV runs `train -cv k`: stratified k-fold cross-validation of
// one registry classifier, with folds trained on the parallel engine
// (bounded by -parallel; the pooled confusion matrix is identical at any
// worker count).
func cmdTrainCV(tbl *dataset.Table, name, features string, binary bool,
	folds int, seed uint64) error {
	if features != "" {
		var err error
		tbl, err = tbl.SelectFeatures(strings.Split(features, ","))
		if err != nil {
			return err
		}
	}
	// Validate the classifier name once, before any fold trains.
	if _, err := core.NewClassifier(name, seed); err != nil {
		return err
	}
	factory := func() ml.Classifier {
		c, _ := core.NewClassifier(name, seed)
		return c
	}
	rows := make([][]float64, len(tbl.Instances))
	for i := range tbl.Instances {
		rows[i] = tbl.Instances[i].Features
	}
	labels, numClasses := tbl.BinaryLabels(), 2
	if !binary {
		labels, numClasses = tbl.ClassLabels(), workload.NumClasses
	}
	res, err := eval.CrossValidate(factory, rows, labels, numClasses, folds, seed)
	if err != nil {
		return err
	}
	fmt.Printf("classifier: %s  features: %d  %d-fold CV accuracy: %.2f%%\n",
		res.Classifier, tbl.NumAttributes(), folds, res.Accuracy()*100)
	if !binary {
		names := make([]string, workload.NumClasses)
		for c := 0; c < workload.NumClasses; c++ {
			names[c] = workload.Class(c).String()
		}
		return res.WriteReport(os.Stdout, names)
	}
	return nil
}

func cmdPCA(args []string) error {
	fs := flag.NewFlagSet("pca", flag.ExitOnError)
	scale := fs.Float64("scale", 0.05, "dataset scale")
	seed := fs.Uint64("seed", 1, "random seed")
	k := fs.Int("k", 8, "custom features per class")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := of.setup(); err != nil {
		return err
	}
	tbl, err := core.GenerateDataset(core.DatasetConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	p, err := core.FitPCA(tbl)
	if err != nil {
		return err
	}
	fmt.Printf("components for 95%% variance: %d of %d\n",
		p.NumComponentsFor(0.95), len(p.Values))
	fmt.Println("global attribute ranking:")
	for i, ra := range p.RankAttributes(0.95) {
		fmt.Printf("  %2d. %-24s %.4f\n", i+1, ra.Name, ra.Score)
	}
	custom, common, err := core.CustomFeatureSets(tbl, *k, 0.95)
	if err != nil {
		return err
	}
	fmt.Printf("\nper-class custom top-%d features (Table 2):\n", *k)
	for _, c := range workload.MalwareClasses() {
		fmt.Printf("  %-9s %s\n", c, strings.Join(custom[c.String()], ", "))
	}
	fmt.Printf("common to all classes (%d): %s\n", len(common), strings.Join(common, ", "))
	if err := of.writeManifest("", *seed, *scale, nil, tbl.NumInstances(), 0); err != nil {
		return err
	}
	return of.finish()
}

func cmdHWCost(args []string) error {
	fs := flag.NewFlagSet("hwcost", flag.ExitOnError)
	scale := fs.Float64("scale", 0.05, "dataset scale")
	seed := fs.Uint64("seed", 1, "random seed")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := of.setup(); err != nil {
		return err
	}
	r := experiments.NewRunner(
		experiments.WithSeed(*seed), experiments.WithScale(*scale))
	for _, id := range []string{"fig14", "fig15", "fig16"} {
		rep, err := r.Run(id)
		if err != nil {
			return err
		}
		if err := rep.Render(os.Stdout); err != nil {
			return err
		}
	}
	if err := of.writeManifest("", *seed, *scale, nil, 0, 0); err != nil {
		return err
	}
	return of.finish()
}

func cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	dir := fs.String("dir", "hpc-traces", "output directory for per-sample text files")
	perClass := fs.Int("perclass", 5, "samples to collect per class")
	seed := fs.Uint64("seed", 1, "random seed")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := of.setup(); err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	cfg := trace.DefaultConfig()
	sp := obs.StartSpan("collect")
	n, rows := 0, 0
	for _, class := range workload.AllClasses() {
		for i := 0; i < *perClass; i++ {
			s := *seed ^ (uint64(class)*100000+uint64(i)+1)*0x9e3779b97f4a7c15
			tr, err := trace.CollectSample(cfg, class, s)
			if err != nil {
				return err
			}
			path := filepath.Join(*dir, fmt.Sprintf("%s_%03d.txt", class, i))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tr.WriteText(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			n++
			rows += len(tr.Records)
		}
	}
	sp.End()
	fmt.Printf("collected %d samples (%d per class) into %s\n", n, *perClass, *dir)
	if err := of.writeManifest(filepath.Join(*dir, "collect.manifest.json"),
		*seed, 0, []string{*dir}, rows, n); err != nil {
		return err
	}
	return of.finish()
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	dir := fs.String("dir", "hpc-traces", "directory of per-sample text files")
	out := fs.String("out", "dataset.csv", "merged CSV path")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := of.setup(); err != nil {
		return err
	}
	sp := obs.StartSpan("merge")
	tbl, err := dataset.MergeTextDir(*dir)
	sp.End()
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tbl.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("merged %d rows x %d features into %s\n",
		tbl.NumInstances(), tbl.NumAttributes(), *out)
	if err := of.writeManifest(obs.ManifestPathFor(*out), 0, 0,
		[]string{*out}, tbl.NumInstances(), 0); err != nil {
		return err
	}
	return of.finish()
}

func cmdEmit(args []string) error {
	fs := flag.NewFlagSet("emit", flag.ExitOnError)
	name := fs.String("classifier", "J48",
		"one of: "+strings.Join(core.EmittableNames(), ", "))
	out := fs.String("out", "detector.v", "output Verilog path")
	scale := fs.Float64("scale", 0.05, "dataset scale")
	seed := fs.Uint64("seed", 1, "random seed")
	module := fs.String("module", "hpc_detector", "Verilog module name")
	tb := fs.Bool("tb", false, "also write a self-checking testbench (<out>_tb.v)")
	of := addObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := of.setup(); err != nil {
		return err
	}
	tbl, err := core.GenerateDataset(core.DatasetConfig{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	clf, err := core.NewClassifier(*name, *seed)
	if err != nil {
		return err
	}
	rows := make([][]float64, len(tbl.Instances))
	for i := range tbl.Instances {
		rows[i] = tbl.Instances[i].Features
	}
	if err := clf.Train(rows, tbl.BinaryLabels(), 2); err != nil {
		return err
	}
	comb, err := core.CompileDetector(*name, *module, clf, tbl.NumAttributes())
	if err != nil {
		return err
	}
	comb.SetName(*module)
	// Raw HPC counts are large integers; use an integer datapath so
	// million-scale values do not saturate a Q16.16 grid.
	comb.SetFixedShift(0)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := comb.EmitVerilog(f); err != nil {
		return err
	}
	// Sanity: the netlist agrees with the float model on the dataset.
	agree := 0
	for i, row := range rows {
		v, err := comb.Eval(row)
		if err != nil {
			return err
		}
		if v == clf.Predict(rows[i]) {
			agree++
		}
	}
	fmt.Printf("wrote %s (%d nets) to %s; fixed-point/model agreement %.2f%%\n",
		*module, comb.NumNodes(), *out, 100*float64(agree)/float64(len(rows)))
	if ns, fmax := comb.CriticalPathNs(); ns > 0 {
		fmt.Printf("combinational critical path %.1f ns (single-cycle Fmax ~%.0f MHz)\n", ns, fmax)
	}
	if *tb {
		tbPath := strings.TrimSuffix(*out, ".v") + "_tb.v"
		tf, err := os.Create(tbPath)
		if err != nil {
			return err
		}
		defer tf.Close()
		nVec := 32
		if nVec > len(rows) {
			nVec = len(rows)
		}
		if err := comb.EmitTestbench(tf, rows[:nVec]); err != nil {
			return err
		}
		fmt.Printf("wrote self-checking testbench (%d vectors) to %s\n", nVec, tbPath)
	}
	of.manifest.Config["classifier"] = *name
	of.manifest.Config["module"] = *module
	if err := of.writeManifest("", *seed, *scale, []string{*out},
		tbl.NumInstances(), 0); err != nil {
		return err
	}
	return of.finish()
}

func cmdRepro(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ExitOnError)
	scale := fs.Float64("scale", 0.1, "dataset scale")
	seed := fs.Uint64("seed", 1, "random seed")
	of := addObsFlags(fs)
	// Experiment IDs and flags may interleave: `repro fig13 -metrics-out m`.
	ids, err := parseInterleaved(fs, args)
	if err != nil {
		return err
	}
	if err := of.setup(); err != nil {
		return err
	}
	if len(ids) == 0 {
		ids = []string{"all"}
	}
	r := experiments.NewRunner(
		experiments.WithSeed(*seed), experiments.WithScale(*scale),
		experiments.WithProgress(func(stage string, done, total int) {
			if !of.Quiet {
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", done, total, stage)
			}
		}))
	var run []string
	for _, id := range ids {
		switch id {
		case "all":
			run = append(run, experiments.IDs()...)
		case "ablations":
			run = append(run, experiments.AblationIDs()...)
		case "extensions":
			run = append(run, experiments.ExtensionIDs()...)
		default:
			run = append(run, id)
		}
	}
	for _, id := range run {
		rep, err := r.Run(id)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if err := rep.Render(os.Stdout); err != nil {
			return err
		}
	}
	// Write a manifest alongside the metrics snapshot (or wherever
	// -manifest points); repro's tables themselves go to stdout.
	manifestPath := ""
	if of.MetricsOut != "" {
		manifestPath = obs.ManifestPathFor(of.MetricsOut)
	}
	of.manifest.Config["experiments"] = strings.Join(run, ",")
	if err := of.writeManifest(manifestPath, *seed, *scale, nil, 0, 0); err != nil {
		return err
	}
	return of.finish()
}

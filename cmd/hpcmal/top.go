package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/ingest"
	"repro/internal/tsdb"
)

// cmdTop implements `hpcmal top`: a terminal dashboard over any serve
// daemon's historical query API. It is a pure HTTP client — point -addr
// at the address serve printed (or a remote daemon) and it renders the
// same headline panels as /dashboard, as text.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "serve daemon telemetry `addr` (host:port)")
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	window := fs.Duration("window", 5*time.Minute, "history window behind each sparkline")
	once := fs.Bool("once", false, "render a single frame and exit (no screen clearing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := &topClient{base: "http://" + *addr,
		hc: &http.Client{Timeout: 5 * time.Second}}
	if *once {
		frame, err := c.frame(*window)
		if err != nil {
			return err
		}
		fmt.Print(frame)
		return nil
	}
	for {
		frame, err := c.frame(*window)
		if err != nil {
			return err
		}
		// Home the cursor and clear below rather than wiping the whole
		// screen — refreshes don't flicker.
		fmt.Print("\x1b[H\x1b[J" + frame)
		time.Sleep(*interval)
	}
}

// topPanels are the headline series, mirroring the /dashboard page.
var topPanels = []struct {
	label  string
	metric string
	agg    string
}{
	{"windows/s", "trace.windows_simulated", "rate"},
	{"alarms/s", "online.alarms", "rate"},
	{"F1", "quality.f1", "avg"},
	{"drifting", "drift.features_drifting", "max"},
	{"bus drops/s", "obs.events_dropped", "rate"},
	{"scrape p99 ms", "tsdb.scrape_ms:p99", "avg"},
	// Runtime self-observability rows, fed by the runtime/metrics
	// collector riding the tsdb scrape.
	{"goroutines", "runtime.goroutines", "avg"},
	{"GC p99 ms", "runtime.gc_pause_p99_ms", "max"},
	{"heap bytes", "runtime.heap_objects_bytes", "avg"},
}

// sparkRunes render a sparkline, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

type topClient struct {
	base string
	hc   *http.Client
	// prevTenants holds the previous frame's per-tenant counters so the
	// tenant panel renders rates from deltas; first frame (and -once)
	// shows "-" because there is no earlier sample to diff against.
	prevTenants map[string]tenantPrev
}

// tenantPrev is one tenant's counters as of the previous frame.
type tenantPrev struct {
	processed int64
	rejected  int64
	at        time.Time
}

// getJSON decodes one endpoint into out; non-200s become errors carrying
// the response body (the daemon's own explanation, e.g. "unknown
// metric").
func (c *topClient) getJSON(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// readiness reports the daemon's /readyz line ("ready ..." or
// "not ready: ...").
func (c *topClient) readiness() string {
	resp, err := c.hc.Get(c.base + "/readyz")
	if err != nil {
		return "unreachable: " + err.Error()
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return strings.TrimSpace(string(body))
}

// spark renders vs as a fixed-width sparkline, scaled to its own range.
func spark(vs []float64, width int) string {
	if len(vs) == 0 {
		return strings.Repeat(" ", width)
	}
	// Resample onto width columns (nearest point per column).
	cols := make([]float64, width)
	for i := range cols {
		cols[i] = vs[i*len(vs)/width]
	}
	lo, hi := cols[0], cols[0]
	for _, v := range cols {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range cols {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// frame renders one full dashboard frame: readiness header, one
// sparkline row per headline panel, and the tail of the alert timeline.
func (c *topClient) frame(window time.Duration) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "hpcmal top — %s — %s\n", c.base, c.readiness())

	var cat tsdb.Catalog
	if err := c.getJSON("/api/v1/series", &cat); err != nil {
		// The catalog is the one required endpoint: without a store there
		// is no history to render, so say that instead of blank panels.
		return "", fmt.Errorf("top: %w (is this a serve daemon?)", err)
	}
	span := time.Duration(cat.LastMS-cat.FirstMS) * time.Millisecond
	fmt.Fprintf(&b, "%d series, %s of history, scraping every %s\n\n",
		len(cat.Series), span.Round(time.Second), time.Duration(cat.IntervalMS)*time.Millisecond)

	fromArg := fmt.Sprintf("now-%ds", int(window.Seconds()))
	for _, p := range topPanels {
		var res tsdb.QueryResult
		path := "/api/v1/query_range?metric=" + p.metric +
			"&from=" + fromArg + "&to=now&agg=" + p.agg
		if err := c.getJSON(path, &res); err != nil || len(res.Points) == 0 {
			// A daemon that has not emitted this metric yet (404) still
			// gets a row — panels light up as the replay produces data.
			fmt.Fprintf(&b, "  %-14s %10s  %s\n", p.label, "-", strings.Repeat("·", 40))
			continue
		}
		vs := make([]float64, len(res.Points))
		for i, pt := range res.Points {
			vs[i] = pt.V
		}
		fmt.Fprintf(&b, "  %-14s %10.2f  %s  (%s/%s)\n",
			p.label, vs[len(vs)-1], spark(vs, 40), res.Tier, p.agg)
	}

	b.WriteString(c.tenantPanel())

	var hist tsdb.EventHistory
	if err := c.getJSON("/api/v1/alerts/history", &hist); err == nil {
		fmt.Fprintf(&b, "\nrecent alerts/drift/alarms (%d total):\n", hist.Total)
		events := hist.Events
		if len(events) > 8 {
			events = events[len(events)-8:]
		}
		if len(events) == 0 {
			fmt.Fprint(&b, "  (none)\n")
		}
		for _, e := range events {
			ts := time.UnixMilli(e.TimeUnixMS).Format("15:04:05")
			detail := e.Msg
			if detail == "" && e.Sample != "" {
				detail = e.Sample
			}
			fmt.Fprintf(&b, "  %s  %-15s %s\n", ts, e.Type, detail)
		}
	}
	return b.String(), nil
}

// tenantPanel renders the per-tenant ingest table from /api/v1/tenants:
// windows/s and 429/s as deltas against the previous frame, queue depth
// against capacity, and lifetime alarms. Daemons without the fleet
// ingest surface (or with no tenants yet) get no panel rather than an
// error — top still works against them.
func (c *topClient) tenantPanel() string {
	var tl struct {
		Tenants []ingest.TenantSummary `json:"tenants"`
	}
	if err := c.getJSON("/api/v1/tenants", &tl); err != nil || len(tl.Tenants) == 0 {
		return ""
	}
	now := time.Now()
	var b strings.Builder
	fmt.Fprintf(&b, "\ningest tenants (%d):\n", len(tl.Tenants))
	fmt.Fprintf(&b, "  %-16s %10s %13s %8s %8s\n",
		"tenant", "windows/s", "queue", "429/s", "alarms")
	if c.prevTenants == nil {
		c.prevTenants = make(map[string]tenantPrev, len(tl.Tenants))
	}
	for _, t := range tl.Tenants {
		rate, rej := "-", "-"
		if p, ok := c.prevTenants[t.ID]; ok {
			if dt := now.Sub(p.at).Seconds(); dt > 0 {
				rate = fmt.Sprintf("%.0f", float64(t.WindowsProcessed-p.processed)/dt)
				rej = fmt.Sprintf("%.1f", float64(t.BatchesRejected-p.rejected)/dt)
			}
		}
		c.prevTenants[t.ID] = tenantPrev{processed: t.WindowsProcessed,
			rejected: t.BatchesRejected, at: now}
		fmt.Fprintf(&b, "  %-16s %10s %7d/%-5d %8s %8d\n",
			t.ID, rate, t.Queued, t.QueueCap, rej, t.Alarms)
	}
	return b.String()
}

package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// startServe runs runServe in the background with the test hook attached
// and returns its telemetry server plus the error channel.
func startServe(t *testing.T, ctx context.Context, args []string) (*telemetry.Server, chan error) {
	t.Helper()
	ready := make(chan *telemetry.Server, 1)
	serveReady = func(s *telemetry.Server) { ready <- s }
	t.Cleanup(func() { serveReady = nil })
	errc := make(chan error, 1)
	go func() { errc <- runServe(ctx, args) }()
	select {
	case srv := <-ready:
		return srv, errc
	case err := <-errc:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(120 * time.Second):
		t.Fatal("serve never became ready")
	}
	return nil, nil
}

// TestServeGracefulShutdown is the daemon acceptance test: while `serve`
// replays traces, /healthz and /metrics answer, /events streams at least
// one detection event — and cancelling the run context (the SIGINT path)
// shuts everything down cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, errc := startServe(t, ctx, []string{
		"-scale", "0.01", "-perclass", "1", "-windows", "16", "-quiet"})

	if resp, err := http.Get(srv.URL() + "/healthz"); err != nil {
		t.Fatalf("healthz: %v", err)
	} else {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.HasPrefix(string(body), "ok") {
			t.Fatalf("healthz = %d %q", resp.StatusCode, body)
		}
	}

	// A detection event arrives on the live stream while traces replay.
	stream, err := http.Get(srv.URL() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	lineCh := make(chan string, 1)
	go func() {
		r := bufio.NewReader(stream.Body)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			var e obs.Event
			if json.Unmarshal([]byte(line), &e) == nil &&
				(e.Type == "alarm" || e.Type == "window") {
				select {
				case lineCh <- line:
				default:
				}
				return
			}
		}
	}()
	select {
	case line := <-lineCh:
		t.Logf("streamed event: %s", strings.TrimSpace(line))
	case <-time.After(120 * time.Second):
		t.Fatal("no detection event streamed on /events")
	}

	// /metrics exposes the online instruments live, in Prometheus text.
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	for _, want := range []string{"online_monitors_total ", "trace_windows_simulated_total ",
		"online_alarm_latency_windows_bucket{le=\"+Inf\"}"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("live /metrics missing %q", want)
		}
	}

	// The manifest is published while the run is still in flight.
	resp, err = http.Get(srv.URL() + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	var man obs.Manifest
	if err := json.NewDecoder(resp.Body).Decode(&man); err != nil {
		t.Fatalf("manifest decode: %v", err)
	}
	resp.Body.Close()
	if man.Command != "serve" || man.Build == nil {
		t.Errorf("live manifest = %+v", man)
	}

	// Cancel = SIGINT: serve must exit nil and the server must drain.
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exit err: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("serve did not shut down after cancel")
	}
	if _, err := http.Get(srv.URL() + "/healthz"); err == nil {
		t.Error("telemetry server still answering after shutdown")
	}
}

// TestServeBoundedRounds checks the -rounds exit path used by CI: the
// daemon performs its replays and exits on its own, no signal needed.
func TestServeBoundedRounds(t *testing.T) {
	srv, errc := startServe(t, context.Background(), []string{
		"-scale", "0.01", "-perclass", "1", "-windows", "8",
		"-rounds", "1", "-quiet"})
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(180 * time.Second):
		t.Fatal("bounded serve never exited")
	}
	if _, err := http.Get(srv.URL() + "/healthz"); err == nil {
		t.Error("server still up after bounded run")
	}
}

func TestVersionPrints(t *testing.T) {
	// Smoke: the version banner derives from build info without panicking.
	bi := obs.Build()
	if bi.GoVersion == "" {
		t.Error("build info has no Go version")
	}
	if s := bi.String(); s == "" {
		t.Error("empty version banner")
	}
}

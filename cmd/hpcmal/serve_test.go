package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/tsdb"
)

// startServe runs runServe in the background with the test hook attached
// and returns its telemetry server plus the error channel.
func startServe(t *testing.T, ctx context.Context, args []string) (*telemetry.Server, chan error) {
	t.Helper()
	ready := make(chan *telemetry.Server, 1)
	serveReady = func(s *telemetry.Server) { ready <- s }
	t.Cleanup(func() { serveReady = nil })
	errc := make(chan error, 1)
	go func() { errc <- runServe(ctx, args) }()
	select {
	case srv := <-ready:
		return srv, errc
	case err := <-errc:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(120 * time.Second):
		t.Fatal("serve never became ready")
	}
	return nil, nil
}

// TestServeGracefulShutdown is the daemon acceptance test: while `serve`
// replays traces, /healthz and /metrics answer, /events streams at least
// one detection event — and cancelling the run context (the SIGINT path)
// shuts everything down cleanly.
func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, errc := startServe(t, ctx, []string{
		"-scale", "0.01", "-perclass", "1", "-windows", "16", "-quiet"})

	if resp, err := http.Get(srv.URL() + "/healthz"); err != nil {
		t.Fatalf("healthz: %v", err)
	} else {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.HasPrefix(string(body), "ok") {
			t.Fatalf("healthz = %d %q", resp.StatusCode, body)
		}
	}

	// A detection event arrives on the live stream while traces replay.
	stream, err := http.Get(srv.URL() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	lineCh := make(chan string, 1)
	go func() {
		r := bufio.NewReader(stream.Body)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			var e obs.Event
			if json.Unmarshal([]byte(line), &e) == nil &&
				(e.Type == "alarm" || e.Type == "window") {
				select {
				case lineCh <- line:
				default:
				}
				return
			}
		}
	}()
	select {
	case line := <-lineCh:
		t.Logf("streamed event: %s", strings.TrimSpace(line))
	case <-time.After(120 * time.Second):
		t.Fatal("no detection event streamed on /events")
	}

	// /metrics exposes the online instruments live, in Prometheus text.
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	for _, want := range []string{"online_monitors_total ", "trace_windows_simulated_total ",
		"online_alarm_latency_windows_bucket{le=\"+Inf\"}"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("live /metrics missing %q", want)
		}
	}

	// The manifest is published while the run is still in flight.
	resp, err = http.Get(srv.URL() + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	var man obs.Manifest
	if err := json.NewDecoder(resp.Body).Decode(&man); err != nil {
		t.Fatalf("manifest decode: %v", err)
	}
	resp.Body.Close()
	if man.Command != "serve" || man.Build == nil {
		t.Errorf("live manifest = %+v", man)
	}

	// Cancel = SIGINT: serve must exit nil and the server must drain.
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exit err: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("serve did not shut down after cancel")
	}
	if _, err := http.Get(srv.URL() + "/healthz"); err == nil {
		t.Error("telemetry server still answering after shutdown")
	}
}

// TestServeBoundedRounds checks the -rounds exit path used by CI: the
// daemon performs its replays and exits on its own, no signal needed.
func TestServeBoundedRounds(t *testing.T) {
	srv, errc := startServe(t, context.Background(), []string{
		"-scale", "0.01", "-perclass", "1", "-windows", "8",
		"-rounds", "1", "-quiet"})
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(180 * time.Second):
		t.Fatal("bounded serve never exited")
	}
	if _, err := http.Get(srv.URL() + "/healthz"); err == nil {
		t.Error("server still up after bounded run")
	}
}

func TestVersionPrints(t *testing.T) {
	// Smoke: the version banner derives from build info without panicking.
	bi := obs.Build()
	if bi.GoVersion == "" {
		t.Error("build info has no Go version")
	}
	if s := bi.String(); s == "" {
		t.Error("empty version banner")
	}
}

// TestServeModelQualityStack is the acceptance path for the model-quality
// layer: a bounded serve with an alert rule file and an incident
// directory must (1) score the labeled replay on /quality, (2) expose
// PSI/KS per counter on /drift, (3) fire the alert rule onto the bus,
// and (4) leave an incident JSON dump behind.
func TestServeModelQualityStack(t *testing.T) {
	dir := t.TempDir()
	rulesPath := filepath.Join(dir, "rules.json")
	// online.monitors is a counter that moves immediately, so the rule
	// fires on the first evaluation tick.
	if err := os.WriteFile(rulesPath, []byte(`[
		{"name": "replay-started", "metric": "online.monitors", "op": ">", "threshold": 0,
		 "severity": "info", "msg": "traces are being monitored"}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	incidents := filepath.Join(dir, "incidents")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Unbounded rounds: the test cancels once it has seen everything, so
	// the endpoints stay up for the whole assertion sequence.
	srv, errc := startServe(t, ctx, []string{
		"-scale", "0.01", "-perclass", "1", "-windows", "16",
		"-rules", rulesPath, "-alert-interval", "100ms",
		"-incident-dir", incidents, "-quiet"})

	getJSON := func(path string, out any) {
		t.Helper()
		deadline := time.Now().Add(120 * time.Second)
		for {
			resp, err := http.Get(srv.URL() + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 200 {
				if err := json.Unmarshal(body, out); err != nil {
					t.Fatalf("%s not JSON: %v\n%s", path, err, body)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s = %d %s", path, resp.StatusCode, body)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Wait for the first round to finish (rotation 1) so the scoreboard
	// and drift detector have a full window of labeled replay.
	var q struct {
		Rotations      int64   `json:"rotations"`
		WindowObserved int64   `json:"window_observed"`
		Accuracy       float64 `json:"accuracy"`
		Confusion      [][]int `json:"confusion"`
		F1             float64 `json:"f1"`
		Calibration    []any   `json:"calibration"`
	}
	deadline := time.Now().Add(180 * time.Second)
	for q.Rotations == 0 || q.WindowObserved == 0 {
		if time.Now().After(deadline) {
			t.Fatal("/quality never reported a scored window")
		}
		getJSON("/quality", &q)
		time.Sleep(100 * time.Millisecond)
	}
	if len(q.Confusion) != 2 || len(q.Calibration) == 0 {
		t.Fatalf("/quality = %+v", q)
	}
	if q.Accuracy <= 0 || q.Accuracy > 1 {
		t.Fatalf("accuracy = %v", q.Accuracy)
	}

	var d struct {
		WindowObserved int64 `json:"window_observed"`
		Bins           int   `json:"bins"`
		Features       []struct {
			Name string  `json:"name"`
			PSI  float64 `json:"psi"`
			KS   float64 `json:"ks"`
		} `json:"features"`
	}
	getJSON("/drift", &d)
	if d.WindowObserved == 0 || len(d.Features) == 0 || d.Features[0].Name == "" {
		t.Fatalf("/drift = %+v", d)
	}

	// The rule fires once monitoring has begun.
	var a struct {
		Firing int `json:"firing"`
		Rules  []struct {
			State string `json:"state"`
			Rule  struct {
				Name string `json:"name"`
			} `json:"rule"`
		} `json:"rules"`
	}
	for a.Firing == 0 {
		if time.Now().After(deadline) {
			t.Fatal("alert rule never fired")
		}
		getJSON("/alerts", &a)
		time.Sleep(50 * time.Millisecond)
	}
	if a.Rules[0].Rule.Name != "replay-started" || a.Rules[0].State != "firing" {
		t.Fatalf("/alerts = %+v", a)
	}

	// The firing rule (and any alarms) left incident dumps behind.
	var files []string
	for len(files) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no incident dump written")
		}
		files, _ = filepath.Glob(filepath.Join(incidents, "incident-*.json"))
		time.Sleep(50 * time.Millisecond)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var inc struct {
		Reason   string `json:"reason"`
		Build    any    `json:"build"`
		Manifest *obs.Manifest
		Metrics  struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &inc); err != nil {
		t.Fatalf("incident not JSON: %v", err)
	}
	if inc.Reason == "" || inc.Build == nil || inc.Manifest == nil {
		t.Fatalf("incident = %+v", inc)
	}
	if inc.Metrics.Counters["online.monitors"] == 0 {
		t.Fatal("incident metrics snapshot empty")
	}

	// The flight recorder debug endpoint serves its rings live.
	var fr struct {
		Reason  string `json:"reason"`
		Windows []any  `json:"windows"`
	}
	getJSON("/debug/flightrecorder", &fr)
	if fr.Reason != "snapshot" {
		t.Fatalf("/debug/flightrecorder = %+v", fr)
	}

	// The manifest embeds the training baseline for drift provenance.
	var man obs.Manifest
	getJSON("/manifest", &man)
	if len(man.Baseline) == 0 {
		t.Fatal("manifest missing training baseline")
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exit: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("serve did not exit")
	}
}

// TestServeQualityDeterministicAcrossParallelism pins the determinism
// contract end to end: the same bounded replay at -parallel 1 and
// -parallel 8 produces identical confusion matrices and drift PSI,
// because every quality update is a commutative count.
func TestServeQualityDeterministicAcrossParallelism(t *testing.T) {
	run := func(workers string) (qBody, dBody string) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		ready := make(chan *telemetry.Server, 1)
		serveReady = func(s *telemetry.Server) { ready <- s }
		defer func() { serveReady = nil }()
		errc := make(chan error, 1)
		// -rounds 2 with a long -interval: after the first round the loop
		// parks in the inter-round pause, freezing the scoreboard at
		// rotation 1 so both runs are scraped in an identical state.
		go func() {
			errc <- runServe(ctx, []string{
				"-scale", "0.01", "-perclass", "1", "-windows", "8",
				"-rounds", "2", "-interval", "120s",
				"-parallel", workers, "-quiet"})
		}()
		var srv *telemetry.Server
		select {
		case srv = <-ready:
		case err := <-errc:
			t.Fatalf("serve exited early: %v", err)
		case <-time.After(120 * time.Second):
			t.Fatal("serve never ready")
		}
		// Let the bounded run finish, then scrape before shutdown: poll
		// until rotations reaches the round count.
		deadline := time.Now().Add(180 * time.Second)
		for {
			resp, err := http.Get(srv.URL() + "/quality")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var q struct {
				Rotations int64 `json:"rotations"`
			}
			if resp.StatusCode == 200 && json.Unmarshal(body, &q) == nil && q.Rotations >= 1 {
				qBody = string(body)
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("quality window never rotated")
			}
			time.Sleep(50 * time.Millisecond)
		}
		resp, err := http.Get(srv.URL() + "/drift")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		dBody = string(body)
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("serve exit: %v", err)
			}
		case <-time.After(120 * time.Second):
			t.Fatal("serve did not exit")
		}
		return qBody, dBody
	}

	q1, d1 := run("1")
	q8, d8 := run("8")
	if q1 != q8 {
		t.Errorf("/quality differs between -parallel 1 and 8:\n--- 1 ---\n%s\n--- 8 ---\n%s", q1, q8)
	}
	if d1 != d8 {
		t.Errorf("/drift differs between -parallel 1 and 8:\n--- 1 ---\n%s\n--- 8 ---\n%s", d1, d8)
	}
}

// TestServeHistoricalObservability is the acceptance path for the
// embedded time-series layer: /readyz transitions 503 → 200 around
// training, the query API answers over scraped history, the dashboard
// serves, alert history is retained, incident dumps embed pre-trigger
// metric history, and `hpcmal top` renders a frame from the live API.
func TestServeHistoricalObservability(t *testing.T) {
	dir := t.TempDir()
	rulesPath := filepath.Join(dir, "rules.json")
	if err := os.WriteFile(rulesPath, []byte(`[
		{"name": "replay-started", "metric": "online.monitors", "op": ">", "threshold": 0,
		 "severity": "info", "msg": "traces are being monitored"}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	incidents := filepath.Join(dir, "incidents")

	// Probe the not-ready window synchronously on the serve goroutine:
	// the hook fires after the listener is up but before training, so
	// /readyz must be 503 here — the transition's "before" leg.
	notReady := make(chan string, 1)
	serveStarted = func(s *telemetry.Server) {
		resp, err := http.Get(s.URL() + "/readyz")
		if err != nil {
			notReady <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			notReady <- fmt.Sprintf("status %d: %s", resp.StatusCode, body)
			return
		}
		notReady <- string(body)
	}
	defer func() { serveStarted = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, errc := startServe(t, ctx, []string{
		"-scale", "0.01", "-perclass", "1", "-windows", "16",
		"-scrape-interval", "50ms",
		"-rules", rulesPath, "-alert-interval", "100ms",
		"-incident-dir", incidents, "-quiet"})

	if msg := <-notReady; !strings.Contains(msg, "not ready") {
		t.Fatalf("pre-training /readyz = %q, want a not-ready 503", msg)
	}

	// After training the gate flips: ready as soon as the scraper runs.
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(srv.URL() + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == 200 && strings.HasPrefix(string(body), "ready") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never became ready: %d %s", resp.StatusCode, body)
		}
		time.Sleep(25 * time.Millisecond)
	}

	getJSON := func(path string, out any) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == 200 && out != nil {
			if err := json.Unmarshal(body, out); err != nil {
				t.Fatalf("%s not JSON: %v\n%s", path, err, body)
			}
		}
		return resp.StatusCode, string(body)
	}

	// The catalog fills as the scraper runs; wait for the replay's own
	// counter to appear so range queries below have real detection data.
	var cat tsdb.Catalog
	for {
		if code, body := getJSON("/api/v1/series", &cat); code != 200 {
			t.Fatalf("/api/v1/series = %d %s", code, body)
		}
		found := false
		for _, si := range cat.Series {
			if si.Name == "trace.windows_simulated" {
				found = true
			}
		}
		if found && cat.LastMS > cat.FirstMS {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("catalog never saw the replay: %+v", cat)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Range queries answer from raw and downsampled tiers.
	var raw tsdb.QueryResult
	if code, body := getJSON("/api/v1/query_range?metric=trace.windows_simulated&from=now-2m&to=now&agg=max", &raw); code != 200 {
		t.Fatalf("raw query = %d %s", code, body)
	}
	if raw.Tier != "raw" || len(raw.Points) == 0 {
		t.Fatalf("raw query = %+v", raw)
	}
	var mid tsdb.QueryResult
	if code, body := getJSON("/api/v1/query_range?metric=tsdb.scrapes&from=now-2m&to=now&step=15s&agg=max", &mid); code != 200 {
		t.Fatalf("15s query = %d %s", code, body)
	} else if mid.Tier != "15s" || len(mid.Points) == 0 {
		t.Fatalf("15s query = %+v", mid)
	}
	if code, _ := getJSON("/api/v1/query_range?metric=no.such.series", nil); code != 404 {
		t.Errorf("unknown metric = %d, want 404", code)
	}

	// The firing alert rule lands in the retained event history.
	var hist tsdb.EventHistory
	for hist.Total == 0 {
		if code, body := getJSON("/alerts/history", &hist); code != 200 {
			t.Fatalf("/alerts/history = %d %s", code, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("alert never reached the event history")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if hist.Events[0].Type == "" {
		t.Fatalf("history event = %+v", hist.Events[0])
	}

	// The dashboard is a self-contained HTML page.
	if code, body := getJSON("/dashboard", nil); code != 200 || !strings.Contains(body, "/api/v1/query_range") {
		t.Fatalf("/dashboard = %d", code)
	}

	// Incident dumps carry the pre-trigger metric history.
	var files []string
	for len(files) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no incident dump written")
		}
		files, _ = filepath.Glob(filepath.Join(incidents, "incident-*.json"))
		time.Sleep(50 * time.Millisecond)
	}
	rawInc, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var inc struct {
		History *struct {
			FromMS int64                   `json:"from_ms"`
			ToMS   int64                   `json:"to_ms"`
			Series map[string][]tsdb.Point `json:"series"`
		} `json:"history"`
	}
	if err := json.Unmarshal(rawInc, &inc); err != nil {
		t.Fatal(err)
	}
	if inc.History == nil || len(inc.History.Series) == 0 {
		t.Fatalf("incident missing pre-trigger history: %s", files[0])
	}
	if inc.History.ToMS <= inc.History.FromMS {
		t.Fatalf("history window = [%d, %d]", inc.History.FromMS, inc.History.ToMS)
	}

	// `hpcmal top` renders a live frame from the same API.
	c := &topClient{base: srv.URL(), hc: http.DefaultClient}
	frame, err := c.frame(2 * time.Minute)
	if err != nil {
		t.Fatalf("top frame: %v", err)
	}
	for _, want := range []string{"hpcmal top", "ready", "series", "windows/s", "recent alerts"} {
		if !strings.Contains(frame, want) {
			t.Errorf("top frame missing %q:\n%s", want, frame)
		}
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exit: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("serve did not exit")
	}
}

package main

import (
	"flag"
	"os"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// obsFlags carries the options every subcommand shares: log verbosity and
// format, the metrics snapshot destination, an optional manifest override
// path, and the parallel worker bound.
type obsFlags struct {
	command     string
	verbose     bool
	vverbose    bool
	quiet       bool
	logJSON     bool
	metricsOut  string
	manifestOut string
	workers     int

	manifest *obs.Manifest
}

// addObsFlags registers the shared observability flags on a subcommand's
// flag set.
func addObsFlags(fs *flag.FlagSet) *obsFlags {
	f := &obsFlags{command: fs.Name()}
	fs.BoolVar(&f.verbose, "v", false, "verbose logging (debug level)")
	fs.BoolVar(&f.vverbose, "vv", false, "very verbose logging (trace level)")
	fs.BoolVar(&f.quiet, "quiet", false, "log errors only")
	fs.BoolVar(&f.logJSON, "log-json", false, "emit log lines as JSON")
	fs.StringVar(&f.metricsOut, "metrics-out", "", "write the run's metrics snapshot JSON to `file`")
	fs.StringVar(&f.manifestOut, "manifest", "", "write the run manifest JSON to `file` (overrides the default path)")
	fs.IntVar(&f.workers, "parallel", 0, "max `workers` for parallel stages (1 = serial; 0 = all CPUs); output is identical at any value")
	return f
}

// setup installs the process logger and clears run-scoped metric and span
// state, so sequential in-process invocations (tests, repro sequences)
// start every run from identical instruments and same-seed runs snapshot
// identically.
func (f *obsFlags) setup() {
	level := obs.LevelInfo
	switch {
	case f.quiet:
		level = obs.LevelError
	case f.vverbose:
		level = obs.LevelTrace
	case f.verbose:
		level = obs.LevelDebug
	}
	obs.SetLogger(obs.New(os.Stderr, level, f.logJSON))
	obs.DefaultRegistry.Reset()
	obs.DefaultTracer.Reset()
	parallel.SetDefaultWorkers(f.workers)
	f.manifest = obs.NewManifest("hpcmal", f.command)
	f.manifest.Workers = parallel.DefaultWorkers()
}

// finish writes the metrics snapshot when -metrics-out was given. Call it
// once, after the command's work succeeded.
func (f *obsFlags) finish() error {
	if f.metricsOut == "" {
		return nil
	}
	w, err := os.Create(f.metricsOut)
	if err != nil {
		return err
	}
	if err := obs.WriteRunSnapshot(w); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	obs.Log().Info("metrics snapshot written", "path", f.metricsOut)
	return nil
}

// writeManifest stamps the run's identity and results into the manifest,
// folds in the top-level spans and the parallel pools (worker count, busy
// vs wall seconds, speedup) as stages, and writes it to path (or the
// -manifest override when set).
func (f *obsFlags) writeManifest(path string, seed uint64, scale float64,
	outputs []string, rows, samples int) error {
	if f.manifestOut != "" {
		path = f.manifestOut
	}
	if path == "" {
		return nil
	}
	m := f.manifest
	m.Seed = seed
	m.Scale = scale
	m.Outputs = outputs
	m.Rows = rows
	m.Samples = samples
	m.StagesFromSpans(obs.DefaultTracer.Snapshot())
	m.ParallelStagesFromMetrics(obs.DefaultRegistry.Snapshot())
	if err := m.WriteFile(path); err != nil {
		return err
	}
	obs.Log().Info("manifest written", "path", path)
	return nil
}

// parseInterleaved parses fs over args while allowing flags to appear
// after positional arguments (the flag package stops at the first
// positional, which would make `hpcmal repro fig13 -metrics-out m.json`
// silently drop the flags). Returns the positional arguments in order.
func parseInterleaved(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	for {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		rest := fs.Args()
		if len(rest) == 0 {
			return pos, nil
		}
		pos = append(pos, rest[0])
		args = rest[1:]
	}
}

package main

import (
	"flag"

	"repro/internal/obs"
	"repro/internal/obsflag"
	"repro/internal/parallel"
)

// obsFlags carries the options every subcommand shares — the obsflag
// layer's logging/metrics/profiling/telemetry flags plus the CLI's
// manifest handling.
type obsFlags struct {
	*obsflag.Flags
	command     string
	manifestOut string

	manifest *obs.Manifest
}

// addObsFlags registers the shared observability flags on a subcommand's
// flag set.
func addObsFlags(fs *flag.FlagSet) *obsFlags {
	f := &obsFlags{Flags: obsflag.Add(fs), command: fs.Name()}
	fs.StringVar(&f.manifestOut, "manifest", "", "write the run manifest JSON to `file` (overrides the default path)")
	return f
}

// setup installs the process logger, clears run-scoped metric and span
// state (so sequential in-process invocations start every run from
// identical instruments), starts profiling and the -listen telemetry
// server, and opens the run manifest — published live on /manifest.
func (f *obsFlags) setup() error {
	if err := f.Flags.Setup(); err != nil {
		return err
	}
	f.manifest = obs.NewManifest("hpcmal", f.command)
	f.manifest.Workers = parallel.DefaultWorkers()
	f.SetManifest(f.manifest)
	return nil
}

// finish flushes the run artifacts (-metrics-out, -trace-out,
// -memprofile), stops CPU profiling, and drains the -listen server. Call
// it once, after the command's work succeeded.
func (f *obsFlags) finish() error {
	return f.Flags.Finish()
}

// writeManifest stamps the run's identity and results into the manifest,
// folds in the top-level spans and the parallel pools (worker count, busy
// vs wall seconds, speedup) as stages, and writes it to path (or the
// -manifest override when set).
func (f *obsFlags) writeManifest(path string, seed uint64, scale float64,
	outputs []string, rows, samples int) error {
	if f.manifestOut != "" {
		path = f.manifestOut
	}
	if path == "" {
		return nil
	}
	m := f.manifest
	m.Seed = seed
	m.Scale = scale
	m.Outputs = outputs
	m.Rows = rows
	m.Samples = samples
	m.StagesFromSpans(obs.DefaultTracer.Snapshot())
	m.ParallelStagesFromMetrics(obs.DefaultRegistry.Snapshot())
	if err := m.WriteFile(path); err != nil {
		return err
	}
	obs.Log().Info("manifest written", "path", path)
	return nil
}

// parseInterleaved parses fs over args while allowing flags to appear
// after positional arguments (the flag package stops at the first
// positional, which would make `hpcmal repro fig13 -metrics-out m.json`
// silently drop the flags). Returns the positional arguments in order.
func parseInterleaved(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	for {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		rest := fs.Args()
		if len(rest) == 0 {
			return pos, nil
		}
		pos = append(pos, rest[0])
		args = rest[1:]
	}
}

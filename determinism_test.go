// Determinism of the parallel engine: every parallelized pipeline stage
// must produce byte-identical output at any worker count, because all
// per-task randomness derives from the task's index rather than from
// scheduling order. These tests pin that contract end to end — the same
// guarantee the CLI's -parallel flag documents.
package repro_test

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/ml"
	"repro/internal/ml/eval"
	"repro/internal/trace"
	"repro/internal/workload"
)

// detTraceConfig keeps determinism runs affordable: short traces, but
// still multiplexed over the full 16-event set like the paper's setup.
func detTraceConfig() trace.Config {
	return trace.Config{WindowsPerSample: 6, SimInstrPerSlice: 500, Multiplex: true}
}

// detGenConfig is a small generation job with a handful of containers per
// class — enough that 8 workers genuinely interleave.
func detGenConfig(workers int) dataset.GenConfig {
	counts := map[workload.Class]int{}
	for _, c := range workload.AllClasses() {
		counts[c] = 3
	}
	return dataset.GenConfig{
		Trace:           detTraceConfig(),
		SamplesPerClass: counts,
		Seed:            1,
		Parallelism:     workers,
	}
}

// genCSV renders the generated table to CSV bytes.
func genCSV(t *testing.T, workers int) []byte {
	t.Helper()
	tbl, err := dataset.Generate(detGenConfig(workers))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGenDeterministicAcrossWorkers is the `hpcmal gen` contract: the CSV
// is byte-identical whether containers run serially or 8 wide.
func TestGenDeterministicAcrossWorkers(t *testing.T) {
	serial := genCSV(t, 1)
	for _, workers := range []int{2, 8} {
		if got := genCSV(t, workers); !bytes.Equal(got, serial) {
			t.Errorf("gen CSV differs between -parallel 1 and -parallel %d", workers)
		}
	}
}

// detDataset generates one small shared table for the CV and fig13 tests.
var detDataset = sync.OnceValues(func() (*dataset.Table, error) {
	return dataset.Generate(detGenConfig(0))
})

// TestCrossValidateDeterministicAcrossWorkers pins 10-fold CV: the pooled
// confusion matrix is identical at any fold-training fan-out.
func TestCrossValidateDeterministicAcrossWorkers(t *testing.T) {
	tbl, err := detDataset()
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, len(tbl.Instances))
	for i := range tbl.Instances {
		rows[i] = tbl.Instances[i].Features
	}
	labels := tbl.BinaryLabels()
	factory := func() ml.Classifier {
		c, err := core.NewClassifier("J48", 1)
		if err != nil {
			panic(err)
		}
		return c
	}
	run := func(workers int) *eval.Result {
		res, err := eval.CrossValidate(factory, rows, labels, 2, 10, 1,
			eval.CVWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for a := range serial.Confusion.Counts {
			for p := range serial.Confusion.Counts[a] {
				if got.Confusion.Counts[a][p] != serial.Confusion.Counts[a][p] {
					t.Fatalf("CV confusion[%d][%d] differs at %d workers: %d != %d",
						a, p, workers, got.Confusion.Counts[a][p], serial.Confusion.Counts[a][p])
				}
			}
		}
	}
}

// fig13Report renders `repro fig13` with the given worker bound.
func fig13Report(t *testing.T, workers int) []byte {
	t.Helper()
	r := experiments.NewRunner(
		experiments.WithConfig(experiments.Config{
			Seed: 1, Scale: 0.015, Trace: detTraceConfig(),
		}),
		experiments.WithParallelism(workers))
	rep, err := r.Run("fig13")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFig13DeterministicAcrossWorkers is the `repro fig13` contract: the
// rendered table (8 classifiers x 3 feature counts, trained concurrently)
// is byte-identical between -parallel 1 and -parallel 8.
func TestFig13DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 8 classifiers twice; skipped with -short")
	}
	serial := fig13Report(t, 1)
	if got := fig13Report(t, 8); !bytes.Equal(got, serial) {
		t.Errorf("fig13 report differs between -parallel 1 and -parallel 8:\nserial:\n%s\nparallel:\n%s",
			serial, got)
	}
}

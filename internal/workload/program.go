package workload

import (
	"fmt"

	"repro/internal/micro"
	"repro/internal/rng"
)

// Phase is one behavioural state of a program: a microarchitectural block
// descriptor, an activity level, and a stochastic dwell time.
type Phase struct {
	Name      string
	Block     micro.Block
	IPC       float64 // activity level: target instructions per cycle
	MeanDwell float64 // seconds; actual dwell is exponential around this
}

// Program is a running application sample: a phase machine over Phases
// with uniform random transitions weighted by TransitionW. A Program is
// advanced in simulated time by the trace sampler and queried for the
// current phase.
type Program struct {
	Name   string
	Class  Class
	Phases []Phase
	// TransitionW[i][j] is the relative probability of moving from phase
	// i to phase j when phase i's dwell expires. Rows must be non-empty.
	TransitionW [][]float64

	src       *rng.Source
	cur       int
	dwellLeft float64
}

// Validate checks structural consistency of the program definition.
func (p *Program) Validate() error {
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload: program %q has no phases", p.Name)
	}
	if len(p.TransitionW) != len(p.Phases) {
		return fmt.Errorf("workload: program %q has %d transition rows for %d phases",
			p.Name, len(p.TransitionW), len(p.Phases))
	}
	for i, row := range p.TransitionW {
		if len(row) != len(p.Phases) {
			return fmt.Errorf("workload: program %q transition row %d has %d cols",
				p.Name, i, len(row))
		}
		sum := 0.0
		for _, w := range row {
			if w < 0 {
				return fmt.Errorf("workload: program %q negative transition weight", p.Name)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("workload: program %q transition row %d sums to zero", p.Name, i)
		}
	}
	for i, ph := range p.Phases {
		if err := ph.Block.Validate(); err != nil {
			return fmt.Errorf("workload: program %q phase %d (%s): %w", p.Name, i, ph.Name, err)
		}
		if ph.IPC <= 0 || ph.MeanDwell <= 0 {
			return fmt.Errorf("workload: program %q phase %d (%s): non-positive IPC or dwell",
				p.Name, i, ph.Name)
		}
	}
	return nil
}

// start initializes the phase machine. Called lazily on first use.
func (p *Program) start() {
	if p.src == nil {
		panic("workload: program not bound to a random source; use Instantiate")
	}
	p.cur = p.src.Intn(len(p.Phases))
	p.dwellLeft = p.src.Exp(1 / p.Phases[p.cur].MeanDwell)
}

// bind attaches a random source and starts the machine.
func (p *Program) bind(src *rng.Source) {
	p.src = src
	p.start()
}

// Current returns the active phase.
func (p *Program) Current() *Phase {
	return &p.Phases[p.cur]
}

// Advance moves simulated time forward by dt seconds, performing phase
// transitions as dwell times expire.
func (p *Program) Advance(dt float64) {
	for dt > 0 {
		if dt < p.dwellLeft {
			p.dwellLeft -= dt
			return
		}
		dt -= p.dwellLeft
		next := p.src.Categorical(p.TransitionW[p.cur])
		p.cur = next
		p.dwellLeft = p.src.Exp(1 / p.Phases[next].MeanDwell)
	}
}

// jitter multiplies v by a lognormal factor with the given sigma, giving
// per-sample parameter diversity.
func jitter(src *rng.Source, v, sigma float64) float64 {
	return v * src.LogNormal(0, sigma)
}

// jprob jitters a probability and clamps it to [lo, hi].
func jprob(src *rng.Source, v, sigma, lo, hi float64) float64 {
	x := jitter(src, v, sigma)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

// jbytes jitters a byte size with a floor of 64 bytes.
func jbytes(src *rng.Source, v float64, sigma float64) uint64 {
	x := jitter(src, v, sigma)
	if x < 64 {
		x = 64
	}
	return uint64(x)
}

// uniformTransitions builds a transition matrix that leaves each phase to
// any other phase with equal weight (including self-loops with weight w).
func uniformTransitions(n int, selfWeight float64) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		row := make([]float64, n)
		for j := range row {
			if i == j {
				row[j] = selfWeight
			} else {
				row[j] = 1
			}
		}
		m[i] = row
	}
	return m
}

// Package workload models the applications measured in the paper: five
// malware families (backdoor, rootkit, trojan, virus, worm) and a suite of
// benign programs. Each application sample is a small stochastic phase
// machine whose phases carry microarchitectural behaviour descriptors
// (micro.Block); executing the phases on a simulated machine yields the
// HPC signatures the detector learns.
//
// The paper's database held 3,070 real samples downloaded from
// virusshare.com and labelled via virustotal.com. We cannot ship malware,
// so each family is modelled by the behaviour the security literature
// attributes to it (and which the paper's Section "Types of Malware"
// describes): backdoors poll and burst, rootkits scatter control flow
// through hook dispatch, trojans look benign with payload bursts, viruses
// stream file-infection writes, worms scan and replicate. Per-sample
// parameter randomization produces intra-family variance comparable to
// real sample diversity.
package workload

import "fmt"

// Class identifies an application class: benign or one of the paper's five
// malware families.
type Class int

// Application classes, in the paper's order (Table 1).
const (
	Benign Class = iota
	Backdoor
	Rootkit
	Trojan
	Virus
	Worm
)

// NumClasses is the number of application classes (benign + 5 families).
const NumClasses = 6

// String returns the class name used in datasets and reports.
func (c Class) String() string {
	switch c {
	case Benign:
		return "benign"
	case Backdoor:
		return "backdoor"
	case Rootkit:
		return "rootkit"
	case Trojan:
		return "trojan"
	case Virus:
		return "virus"
	case Worm:
		return "worm"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// IsMalware reports whether the class is one of the malware families.
func (c Class) IsMalware() bool { return c != Benign }

// ParseClass converts a class name back to a Class.
func ParseClass(s string) (Class, error) {
	for c := Benign; c < NumClasses; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown class %q", s)
}

// AllClasses returns all classes in order.
func AllClasses() []Class {
	return []Class{Benign, Backdoor, Rootkit, Trojan, Virus, Worm}
}

// MalwareClasses returns the five malware families in the paper's order.
func MalwareClasses() []Class {
	return []Class{Backdoor, Rootkit, Trojan, Virus, Worm}
}

// PaperSampleCounts returns the per-class sample counts of the paper's
// database (Table 1): 3,070 samples total.
func PaperSampleCounts() map[Class]int {
	return map[Class]int{
		Backdoor: 452,
		Rootkit:  324,
		Trojan:   1169,
		Virus:    650,
		Worm:     149,
		Benign:   326,
	}
}

// PaperTotalSamples is the total database size reported in Table 1.
const PaperTotalSamples = 3070

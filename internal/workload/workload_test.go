package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/micro"
)

func TestClassStringRoundTrip(t *testing.T) {
	for _, c := range AllClasses() {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("round trip %v -> %q -> %v", c, c.String(), got)
		}
	}
	if _, err := ParseClass("nonsense"); err == nil {
		t.Fatal("ParseClass accepted unknown name")
	}
}

func TestIsMalware(t *testing.T) {
	if Benign.IsMalware() {
		t.Fatal("benign flagged as malware")
	}
	for _, c := range MalwareClasses() {
		if !c.IsMalware() {
			t.Fatalf("%v not flagged as malware", c)
		}
	}
}

func TestPaperSampleCounts(t *testing.T) {
	counts := PaperSampleCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != PaperTotalSamples {
		t.Fatalf("Table 1 total %d, want %d", total, PaperTotalSamples)
	}
	if counts[Trojan] != 1169 || counts[Worm] != 149 {
		t.Fatalf("Table 1 per-class counts wrong: %v", counts)
	}
	// Trojan must be the largest malware family (Figure 3/6 shape).
	for _, c := range MalwareClasses() {
		if c != Trojan && counts[c] >= counts[Trojan] {
			t.Fatalf("%v count %d >= trojan %d", c, counts[c], counts[Trojan])
		}
	}
}

func TestNewSampleAllClassesValid(t *testing.T) {
	for _, c := range AllClasses() {
		for seed := uint64(0); seed < 20; seed++ {
			p, err := NewSample(c, seed)
			if err != nil {
				t.Fatalf("NewSample(%v, %d): %v", c, seed, err)
			}
			if p.Class != c {
				t.Fatalf("sample class %v, want %v", p.Class, c)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("sample %v/%d invalid: %v", c, seed, err)
			}
		}
	}
}

func TestNewSampleDeterministic(t *testing.T) {
	a, _ := NewSample(Worm, 7)
	b, _ := NewSample(Worm, 7)
	if a.Name != b.Name || len(a.Phases) != len(b.Phases) {
		t.Fatal("same seed produced structurally different programs")
	}
	for i := range a.Phases {
		if a.Phases[i].Block != b.Phases[i].Block {
			t.Fatalf("phase %d blocks differ across identical seeds", i)
		}
	}
}

func TestNewSampleVariance(t *testing.T) {
	// Different seeds must produce different parameterizations.
	a, _ := NewSample(Virus, 1)
	b, _ := NewSample(Virus, 2)
	same := true
	for i := range a.Phases {
		if i < len(b.Phases) && a.Phases[i].Block != b.Phases[i].Block {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestTrojanDisguisesAsBenign(t *testing.T) {
	p, _ := NewSample(Trojan, 3)
	if !strings.HasPrefix(p.Name, "trojan/benign/") {
		t.Fatalf("trojan name %q does not record its host kernel", p.Name)
	}
	if len(p.Phases) < 4 {
		t.Fatalf("trojan has %d phases, want host + keylog + exfil", len(p.Phases))
	}
	var hasKeylog, hasExfil bool
	for _, ph := range p.Phases {
		switch ph.Name {
		case "keylog":
			hasKeylog = true
		case "exfil":
			hasExfil = true
		}
	}
	if !hasKeylog || !hasExfil {
		t.Fatal("trojan missing payload phases")
	}
}

func TestPhaseMachineAdvance(t *testing.T) {
	p, _ := NewSample(Backdoor, 11)
	visited := make(map[string]bool)
	for i := 0; i < 3000; i++ {
		visited[p.Current().Name] = true
		p.Advance(0.01)
	}
	// All three backdoor phases must eventually be visited.
	for _, name := range []string{"poll", "exec", "exfil"} {
		if !visited[name] {
			t.Fatalf("phase %q never visited in 30s of simulated time", name)
		}
	}
}

func TestBackdoorPollDominates(t *testing.T) {
	p, _ := NewSample(Backdoor, 13)
	dwell := make(map[string]float64)
	const step = 0.001
	for i := 0; i < 200000; i++ {
		dwell[p.Current().Name] += step
		p.Advance(step)
	}
	if dwell["poll"] <= dwell["exec"] || dwell["poll"] <= dwell["exfil"] {
		t.Fatalf("poll does not dominate: %v", dwell)
	}
}

func TestFamilySignatureSeparation(t *testing.T) {
	// Execute one sample of each family on identical machines and check
	// the family-defining event relationships hold in the counts.
	run := func(c Class, seed uint64) micro.Counts {
		p, err := NewSample(c, seed)
		if err != nil {
			t.Fatal(err)
		}
		m := micro.NewMachine(micro.DefaultConfig(), seed)
		var total micro.Counts
		for w := 0; w < 50; w++ {
			ph := p.Current()
			n := 4000
			counts, err := m.ExecuteBlock(ph.Block, n)
			if err != nil {
				t.Fatal(err)
			}
			total.Add(counts)
			p.Advance(0.01)
		}
		return total
	}

	// Average over a few seeds to avoid single-draw flukes.
	avg := func(c Class) micro.Counts {
		var sum micro.Counts
		for s := uint64(0); s < 5; s++ {
			sum.Add(run(c, 100+s))
		}
		return sum
	}

	worm := avg(Worm)
	rootkit := avg(Rootkit)
	virus := avg(Virus)
	benign := avg(Benign)

	brRate := func(c micro.Counts) float64 {
		return float64(c.BranchInstructions) / float64(c.Instructions)
	}
	if brRate(worm) <= brRate(virus) {
		t.Fatalf("worm branch rate %v not above virus %v", brRate(worm), brRate(virus))
	}
	missRate := func(c micro.Counts) float64 {
		return float64(c.BranchMisses) / float64(c.BranchInstructions)
	}
	if missRate(worm) <= missRate(benign) {
		t.Fatalf("worm branch miss rate %v not above benign %v", missRate(worm), missRate(benign))
	}
	icRate := func(c micro.Counts) float64 {
		return float64(c.L1ICacheLoadMisses) / float64(c.L1ICacheLoads)
	}
	if icRate(rootkit) <= icRate(benign) {
		t.Fatalf("rootkit icache miss rate %v not above benign %v", icRate(rootkit), icRate(benign))
	}
	storeRate := func(c micro.Counts) float64 {
		return float64(c.NodeStores) / float64(c.Instructions)
	}
	if storeRate(virus) <= storeRate(benign) {
		t.Fatalf("virus node-store rate %v not above benign %v", storeRate(virus), storeRate(benign))
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	p := &Program{Name: "empty"}
	if err := p.Validate(); err == nil {
		t.Fatal("accepted program with no phases")
	}
	good, _ := NewSample(Benign, 1)
	bad := *good
	bad.TransitionW = bad.TransitionW[:1]
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted ragged transition matrix")
	}
	bad2 := *good
	bad2.Phases = append([]Phase{}, good.Phases...)
	bad2.Phases[0].IPC = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("accepted zero IPC")
	}
}

func TestBenignKernelCoverage(t *testing.T) {
	// Over many seeds, every kernel in the suite should be instantiated.
	seen := make(map[string]bool)
	for seed := uint64(0); seed < 200; seed++ {
		p, _ := NewSample(Benign, seed)
		seen[strings.TrimPrefix(p.Name, "benign/")] = true
	}
	for _, k := range BenignKernelNames() {
		if !seen[k] {
			t.Fatalf("kernel %q never chosen across 200 seeds", k)
		}
	}
}

// Property: every generated sample's phases pass block validation and have
// positive dwell/IPC for any seed.
func TestSampleValidityProperty(t *testing.T) {
	f := func(seed uint64, classRaw uint8) bool {
		c := Class(int(classRaw) % NumClasses)
		p, err := NewSample(c, seed)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFamilyVariantsAppear(t *testing.T) {
	// Every documented variant must show up across seeds, and variants of
	// one family must differ structurally.
	wantVariants := []string{
		"backdoor/bindshell", "backdoor/reverse",
		"rootkit/hook", "rootkit/dkom",
		"virus/prepender", "virus/cavity",
		"worm/scanner", "worm/hitlist",
	}
	seen := map[string]bool{}
	for seed := uint64(0); seed < 300; seed++ {
		for _, c := range []Class{Backdoor, Rootkit, Virus, Worm} {
			p, err := NewSample(c, seed)
			if err != nil {
				t.Fatal(err)
			}
			seen[p.Name] = true
		}
	}
	for _, v := range wantVariants {
		if !seen[v] {
			t.Fatalf("variant %q never generated across 300 seeds", v)
		}
	}
}

func TestRootkitVariantsDiffer(t *testing.T) {
	// Find one sample of each rootkit variant and compare code footprints:
	// the DKOM variant trades code scatter for data chasing.
	var hook, dkom *Program
	for seed := uint64(0); seed < 200 && (hook == nil || dkom == nil); seed++ {
		p, err := NewSample(Rootkit, seed)
		if err != nil {
			t.Fatal(err)
		}
		switch p.Name {
		case "rootkit/hook":
			if hook == nil {
				hook = p
			}
		case "rootkit/dkom":
			if dkom == nil {
				dkom = p
			}
		}
	}
	if hook == nil || dkom == nil {
		t.Fatal("did not find both rootkit variants")
	}
	// Phase 0 is dispatch in both.
	if dkom.Phases[0].Block.CodeFootprint >= hook.Phases[0].Block.CodeFootprint {
		t.Fatalf("dkom code footprint %d not below hook %d",
			dkom.Phases[0].Block.CodeFootprint, hook.Phases[0].Block.CodeFootprint)
	}
	if dkom.Phases[1].Block.DataRandomFrac <= hook.Phases[1].Block.DataRandomFrac {
		t.Fatal("dkom hide phase not more pointer-chasing than hook's")
	}
}

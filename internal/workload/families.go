package workload

import (
	"fmt"

	"repro/internal/micro"
	"repro/internal/rng"
)

// Footprint anchors, sized for the scaled default machine
// (L1D 2 KB, L2 16 KB, LLC 384 KB). See micro.DefaultConfig.
const (
	fpTiny   = 1 << 10   // fits L1
	fpSmall  = 8 << 10   // fits L2
	fpMedium = 64 << 10  // fits LLC
	fpLarge  = 512 << 10 // exceeds LLC
	fpHuge   = 2 << 20   // streaming
)

// NewSample generates one randomized application sample of the given
// class, seeded so that the same (class, seed) pair always yields the same
// program. The returned program is started and ready to Advance.
func NewSample(class Class, seed uint64) (*Program, error) {
	src := rng.New(seed ^ (uint64(class+1) * 0x9e3779b97f4a7c15))
	var p *Program
	switch class {
	case Benign:
		p = benignSample(src)
	case Backdoor:
		p = backdoorSample(src)
	case Rootkit:
		p = rootkitSample(src)
	case Trojan:
		p = trojanSample(src)
	case Virus:
		p = virusSample(src)
	case Worm:
		p = wormSample(src)
	default:
		return nil, fmt.Errorf("workload: unknown class %v", class)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.bind(src.Split())
	return p, nil
}

// BenignKernelNames lists the benign program suite (MiBench-flavoured
// kernels, matching the "inbuilt or installed programs" of Table 1).
func BenignKernelNames() []string {
	return []string{
		"basicmath", "qsort", "dijkstra", "sha", "jpeg",
		"fft", "stringsearch", "patricia",
	}
}

// benignSample picks one kernel from the benign suite and randomizes it.
func benignSample(src *rng.Source) *Program {
	kernels := BenignKernelNames()
	name := kernels[src.Intn(len(kernels))]
	var compute, memory micro.Block
	var ipcC, ipcM float64

	switch name {
	case "basicmath", "sha":
		// ALU/crypto kernels: tiny footprints, highly predictable.
		compute = micro.Block{
			LoadFrac: jprob(src, 0.18, 0.2, 0.05, 0.4), StoreFrac: jprob(src, 0.06, 0.2, 0.01, 0.2),
			BranchFrac:    jprob(src, 0.12, 0.2, 0.05, 0.3),
			DataFootprint: jbytes(src, fpTiny, 0.3), DataStride: 8,
			DataRandomFrac: 0.02, CodeFootprint: jbytes(src, fpTiny, 0.3),
			CodeJumpFrac: 0.01, BranchTakenProb: 0.85, BranchEntropy: jprob(src, 0.05, 0.3, 0, 0.2),
		}
		memory = compute
		memory.DataFootprint = jbytes(src, fpSmall, 0.3)
		ipcC, ipcM = 2.6, 2.2
	case "qsort", "stringsearch":
		// Compare-heavy, data-dependent branches.
		compute = micro.Block{
			LoadFrac: jprob(src, 0.28, 0.2, 0.1, 0.45), StoreFrac: jprob(src, 0.12, 0.2, 0.02, 0.25),
			BranchFrac:    jprob(src, 0.24, 0.2, 0.1, 0.35),
			DataFootprint: jbytes(src, fpSmall, 0.4), DataStride: 16,
			DataRandomFrac: jprob(src, 0.35, 0.3, 0.1, 0.7), CodeFootprint: jbytes(src, fpTiny, 0.3),
			CodeJumpFrac: 0.02, BranchTakenProb: 0.55, BranchEntropy: jprob(src, 0.45, 0.25, 0.2, 0.8),
		}
		memory = compute
		memory.DataFootprint = jbytes(src, fpMedium, 0.4)
		ipcC, ipcM = 1.6, 1.2
	case "dijkstra", "patricia":
		// Pointer chasing over medium graphs.
		compute = micro.Block{
			LoadFrac: jprob(src, 0.32, 0.2, 0.15, 0.5), StoreFrac: jprob(src, 0.08, 0.2, 0.02, 0.2),
			BranchFrac:    jprob(src, 0.2, 0.2, 0.1, 0.3),
			DataFootprint: jbytes(src, fpMedium, 0.4), DataStride: 32,
			DataRandomFrac: jprob(src, 0.6, 0.2, 0.3, 0.9), CodeFootprint: jbytes(src, fpTiny, 0.3),
			CodeJumpFrac: 0.02, BranchTakenProb: 0.6, BranchEntropy: jprob(src, 0.3, 0.3, 0.1, 0.6),
		}
		memory = compute
		memory.DataRandomFrac = jprob(src, 0.8, 0.1, 0.5, 1)
		ipcC, ipcM = 1.2, 0.9
	default: // "jpeg", "fft": streaming/stride kernels
		compute = micro.Block{
			LoadFrac: jprob(src, 0.26, 0.2, 0.1, 0.45), StoreFrac: jprob(src, 0.18, 0.2, 0.05, 0.3),
			BranchFrac:    jprob(src, 0.1, 0.2, 0.04, 0.2),
			DataFootprint: jbytes(src, fpMedium, 0.5), DataStride: 64,
			DataRandomFrac: jprob(src, 0.05, 0.3, 0, 0.2), CodeFootprint: jbytes(src, fpSmall, 0.3),
			CodeJumpFrac: 0.01, BranchTakenProb: 0.8, BranchEntropy: jprob(src, 0.1, 0.3, 0, 0.3),
		}
		memory = compute
		memory.DataFootprint = jbytes(src, fpLarge, 0.4)
		ipcC, ipcM = 2.0, 1.4
	}

	return &Program{
		Name:  "benign/" + name,
		Class: Benign,
		Phases: []Phase{
			{Name: "compute", Block: compute, IPC: jitter(src, ipcC, 0.15), MeanDwell: jitter(src, 0.05, 0.3)},
			{Name: "memory", Block: memory, IPC: jitter(src, ipcM, 0.15), MeanDwell: jitter(src, 0.03, 0.3)},
		},
		TransitionW: uniformTransitions(2, 2),
	}
}

// backdoorSample: a long-dwelling low-activity poll loop with occasional
// command execution and exfiltration bursts over a remote (network-buffer)
// region. Distinctive: very low sustained activity, bursty node-stores.
func backdoorSample(src *rng.Source) *Program {
	poll := micro.Block{
		LoadFrac: jprob(src, 0.22, 0.2, 0.1, 0.4), StoreFrac: jprob(src, 0.04, 0.3, 0.01, 0.15),
		BranchFrac:    jprob(src, 0.3, 0.15, 0.15, 0.4),
		DataFootprint: jbytes(src, fpTiny, 0.3), DataStride: 16,
		DataRandomFrac: 0.05, CodeFootprint: jbytes(src, fpTiny, 0.3),
		CodeJumpFrac: 0.02, BranchTakenProb: 0.9, BranchEntropy: jprob(src, 0.08, 0.3, 0, 0.25),
	}
	exec := micro.Block{
		LoadFrac: jprob(src, 0.26, 0.2, 0.1, 0.45), StoreFrac: jprob(src, 0.12, 0.2, 0.03, 0.25),
		BranchFrac:    jprob(src, 0.22, 0.2, 0.1, 0.35),
		DataFootprint: jbytes(src, fpSmall, 0.4), DataStride: 32,
		DataRandomFrac: jprob(src, 0.3, 0.3, 0.05, 0.6), CodeFootprint: jbytes(src, fpSmall, 0.4),
		CodeJumpFrac: jprob(src, 0.1, 0.3, 0.02, 0.3), BranchTakenProb: 0.6,
		BranchEntropy: jprob(src, 0.35, 0.3, 0.1, 0.6),
	}
	exfil := micro.Block{
		LoadFrac: jprob(src, 0.3, 0.2, 0.15, 0.45), StoreFrac: jprob(src, 0.2, 0.2, 0.08, 0.35),
		BranchFrac:    jprob(src, 0.12, 0.2, 0.05, 0.25),
		DataFootprint: jbytes(src, fpSmall, 0.3), DataStride: 64,
		DataRandomFrac: 0.05, RemoteFrac: jprob(src, 0.55, 0.2, 0.3, 0.8),
		RemoteFootprint: jbytes(src, fpLarge, 0.4),
		CodeFootprint:   jbytes(src, fpTiny, 0.3), CodeJumpFrac: 0.02,
		BranchTakenProb: 0.75, BranchEntropy: jprob(src, 0.15, 0.3, 0.02, 0.4),
	}
	// Variants: a bind-shell backdoor idles until contacted; a reverse
	// (beaconing) backdoor wakes on its own schedule, so its exfil phase
	// recurs more often and the poll loop runs a touch hotter.
	name := "backdoor/bindshell"
	pollIPC, pollW := 0.18, 6.0
	if src.Bool(0.5) {
		name = "backdoor/reverse"
		pollIPC, pollW = 0.3, 3.5
		exfil.RemoteFrac = jprob(src, exfil.RemoteFrac+0.1, 0.1, 0, 1)
	}
	return &Program{
		Name:  name,
		Class: Backdoor,
		Phases: []Phase{
			{Name: "poll", Block: poll, IPC: jitter(src, pollIPC, 0.25), MeanDwell: jitter(src, 0.12, 0.3)},
			{Name: "exec", Block: exec, IPC: jitter(src, 1.1, 0.2), MeanDwell: jitter(src, 0.02, 0.3)},
			{Name: "exfil", Block: exfil, IPC: jitter(src, 1.4, 0.2), MeanDwell: jitter(src, 0.025, 0.3)},
		},
		// Poll dominates: strong self-loop, bursts are short excursions.
		TransitionW: [][]float64{
			{pollW, 1, 1},
			{3, 1, 1},
			{3, 1, 1},
		},
	}
}

// rootkitSample: hook-dispatch control flow scattered over a large code
// footprint plus kernel-list walks. Distinctive: i-cache/iTLB pressure and
// pointer-chase LLC load misses.
func rootkitSample(src *rng.Source) *Program {
	dispatch := micro.Block{
		LoadFrac: jprob(src, 0.24, 0.2, 0.1, 0.4), StoreFrac: jprob(src, 0.08, 0.2, 0.02, 0.2),
		BranchFrac:    jprob(src, 0.26, 0.15, 0.15, 0.38),
		DataFootprint: jbytes(src, fpSmall, 0.4), DataStride: 32,
		DataRandomFrac:  jprob(src, 0.3, 0.3, 0.1, 0.6),
		CodeFootprint:   jbytes(src, fpMedium*2, 0.4), // scattered hooks
		CodeJumpFrac:    jprob(src, 0.45, 0.2, 0.2, 0.7),
		BranchTakenProb: 0.6, BranchEntropy: jprob(src, 0.3, 0.3, 0.1, 0.6),
	}
	hide := micro.Block{
		LoadFrac: jprob(src, 0.36, 0.15, 0.2, 0.5), StoreFrac: jprob(src, 0.06, 0.3, 0.01, 0.18),
		BranchFrac:    jprob(src, 0.2, 0.2, 0.1, 0.3),
		DataFootprint: jbytes(src, fpLarge, 0.4), DataStride: 64,
		DataRandomFrac:  jprob(src, 0.85, 0.1, 0.6, 1), // list walking
		CodeFootprint:   jbytes(src, fpSmall, 0.4),
		CodeJumpFrac:    jprob(src, 0.15, 0.3, 0.05, 0.35),
		BranchTakenProb: 0.65, BranchEntropy: jprob(src, 0.4, 0.25, 0.15, 0.7),
	}
	scrub := micro.Block{
		LoadFrac: jprob(src, 0.2, 0.2, 0.1, 0.35), StoreFrac: jprob(src, 0.22, 0.2, 0.1, 0.35),
		BranchFrac:    jprob(src, 0.12, 0.2, 0.05, 0.22),
		DataFootprint: jbytes(src, fpMedium, 0.4), DataStride: 64,
		DataRandomFrac: 0.1, CodeFootprint: jbytes(src, fpTiny, 0.3),
		CodeJumpFrac: 0.03, BranchTakenProb: 0.8, BranchEntropy: jprob(src, 0.12, 0.3, 0, 0.3),
	}
	// Variants: a syscall-hooking rootkit scatters control flow through
	// trampolines (i-cache pressure); a DKOM rootkit mutates kernel data
	// structures instead, trading code scatter for deeper pointer chasing.
	name := "rootkit/hook"
	if src.Bool(0.4) {
		name = "rootkit/dkom"
		dispatch.CodeFootprint = jbytes(src, float64(dispatch.CodeFootprint)*0.4, 0.2)
		dispatch.CodeJumpFrac = jprob(src, dispatch.CodeJumpFrac*0.5, 0.2, 0.02, 1)
		hide.DataRandomFrac = jprob(src, 0.95, 0.03, 0.8, 1)
		hide.DataFootprint = jbytes(src, float64(hide.DataFootprint)*1.5, 0.2)
	}
	return &Program{
		Name:  name,
		Class: Rootkit,
		Phases: []Phase{
			{Name: "dispatch", Block: dispatch, IPC: jitter(src, 0.9, 0.2), MeanDwell: jitter(src, 0.04, 0.3)},
			{Name: "hide", Block: hide, IPC: jitter(src, 0.7, 0.2), MeanDwell: jitter(src, 0.05, 0.3)},
			{Name: "scrub", Block: scrub, IPC: jitter(src, 1.3, 0.2), MeanDwell: jitter(src, 0.02, 0.3)},
		},
		TransitionW: [][]float64{
			{4, 2, 1},
			{2, 3, 1},
			{2, 1, 1},
		},
	}
}

// trojanSample: masquerades as a benign kernel most of the time, with
// keylogger polling and phishing-exfil payload bursts. Distinctive: the
// hardest family — its signature is mostly benign with rare excursions,
// mirroring the paper's per-class accuracy ordering.
func trojanSample(src *rng.Source) *Program {
	host := benignSample(src) // disguise: a real benign kernel's phases
	keylog := micro.Block{
		LoadFrac: jprob(src, 0.2, 0.2, 0.1, 0.35), StoreFrac: jprob(src, 0.1, 0.2, 0.03, 0.2),
		BranchFrac:    jprob(src, 0.28, 0.15, 0.15, 0.4),
		DataFootprint: jbytes(src, fpTiny, 0.3), DataStride: 8,
		DataRandomFrac: 0.05, CodeFootprint: jbytes(src, fpTiny, 0.3),
		CodeJumpFrac: 0.03, BranchTakenProb: 0.85, BranchEntropy: jprob(src, 0.12, 0.3, 0, 0.3),
	}
	exfil := micro.Block{
		LoadFrac: jprob(src, 0.28, 0.2, 0.12, 0.45), StoreFrac: jprob(src, 0.18, 0.2, 0.06, 0.32),
		BranchFrac:    jprob(src, 0.14, 0.2, 0.05, 0.25),
		DataFootprint: jbytes(src, fpSmall, 0.3), DataStride: 64,
		DataRandomFrac: 0.08, RemoteFrac: jprob(src, 0.45, 0.25, 0.2, 0.75),
		RemoteFootprint: jbytes(src, fpLarge, 0.4),
		CodeFootprint:   jbytes(src, fpTiny, 0.3), CodeJumpFrac: 0.03,
		BranchTakenProb: 0.7, BranchEntropy: jprob(src, 0.2, 0.3, 0.05, 0.45),
	}
	phases := append([]Phase{}, host.Phases...)
	// Parasitic overhead: even while the host kernel runs, the implant's
	// hooks, timers and injected code perturb the microarchitectural
	// footprint — the very signal HPC-based detection rests on (Demme et
	// al.). Host phases are therefore near-benign, not identical.
	for i := range phases {
		b := phases[i].Block
		b.BranchFrac = jprob(src, b.BranchFrac*1.12, 0.05, 0.02, 0.45)
		b.BranchEntropy = jprob(src, b.BranchEntropy+0.06, 0.1, 0, 1)
		b.CodeFootprint = jbytes(src, float64(b.CodeFootprint)*1.5, 0.15)
		b.CodeJumpFrac = jprob(src, b.CodeJumpFrac+0.06, 0.1, 0, 1)
		b.RemoteFrac = jprob(src, b.RemoteFrac+0.04, 0.2, 0, 1)
		if b.RemoteFootprint == 0 {
			b.RemoteFootprint = jbytes(src, fpMedium, 0.4)
		}
		phases[i].Block = b
		phases[i].IPC *= 0.93
	}
	phases = append(phases,
		Phase{Name: "keylog", Block: keylog, IPC: jitter(src, 0.35, 0.25), MeanDwell: jitter(src, 0.06, 0.3)},
		Phase{Name: "exfil", Block: exfil, IPC: jitter(src, 1.2, 0.2), MeanDwell: jitter(src, 0.02, 0.3)},
	)
	n := len(phases)
	tw := uniformTransitions(n, 2)
	// At run time the payload dominates (~60% of windows catch it in the
	// act) while the host kernel still claims a large minority — the
	// disguise is what keeps trojan the hardest family without making
	// benign-looking windows majority-malware across the dataset.
	for i := range tw {
		for j := n - 2; j < n; j++ {
			if i != j {
				tw[i][j] = 2.5
			}
		}
	}
	return &Program{
		Name:        "trojan/" + host.Name,
		Class:       Trojan,
		Phases:      phases,
		TransitionW: tw,
	}
}

// virusSample: file-infection loops — scan a directory, read a file
// sequentially, write the infected copy. Distinctive: store-heavy
// streaming with heavy node-store (memory write) traffic.
func virusSample(src *rng.Source) *Program {
	search := micro.Block{
		LoadFrac: jprob(src, 0.26, 0.2, 0.12, 0.4), StoreFrac: jprob(src, 0.06, 0.3, 0.01, 0.15),
		BranchFrac:    jprob(src, 0.24, 0.2, 0.12, 0.35),
		DataFootprint: jbytes(src, fpSmall, 0.4), DataStride: 32,
		DataRandomFrac: jprob(src, 0.4, 0.3, 0.15, 0.7),
		CodeFootprint:  jbytes(src, fpTiny, 0.3), CodeJumpFrac: 0.04,
		BranchTakenProb: 0.6, BranchEntropy: jprob(src, 0.35, 0.3, 0.1, 0.6),
	}
	infectRead := micro.Block{
		LoadFrac: jprob(src, 0.4, 0.15, 0.25, 0.55), StoreFrac: jprob(src, 0.08, 0.2, 0.02, 0.2),
		BranchFrac:    jprob(src, 0.08, 0.2, 0.03, 0.18),
		DataFootprint: jbytes(src, fpSmall, 0.3), DataStride: 64,
		DataRandomFrac: 0.02, RemoteFrac: jprob(src, 0.7, 0.15, 0.4, 0.95),
		RemoteFootprint: jbytes(src, fpHuge, 0.4), // streaming file reads
		CodeFootprint:   jbytes(src, fpTiny, 0.3), CodeJumpFrac: 0.01,
		BranchTakenProb: 0.85, BranchEntropy: jprob(src, 0.08, 0.3, 0, 0.25),
	}
	infectWrite := micro.Block{
		LoadFrac: jprob(src, 0.18, 0.2, 0.08, 0.3), StoreFrac: jprob(src, 0.34, 0.15, 0.2, 0.48),
		BranchFrac:    jprob(src, 0.08, 0.2, 0.03, 0.18),
		DataFootprint: jbytes(src, fpSmall, 0.3), DataStride: 64,
		DataRandomFrac: 0.02, RemoteFrac: jprob(src, 0.7, 0.15, 0.4, 0.95),
		RemoteFootprint: jbytes(src, fpHuge, 0.4), // streaming file writes
		CodeFootprint:   jbytes(src, fpTiny, 0.3), CodeJumpFrac: 0.01,
		BranchTakenProb: 0.85, BranchEntropy: jprob(src, 0.08, 0.3, 0, 0.25),
	}
	// Variants: a prepender rewrites whole files (write-dominated); a
	// cavity infector reads much and patches little.
	name := "virus/prepender"
	if src.Bool(0.4) {
		name = "virus/cavity"
		infectWrite.StoreFrac = jprob(src, infectWrite.StoreFrac*0.45, 0.15, 0.05, 0.3)
		infectWrite.LoadFrac = jprob(src, infectWrite.LoadFrac*1.8, 0.15, 0.1, 0.5)
		infectRead.RemoteFrac = jprob(src, infectRead.RemoteFrac+0.1, 0.1, 0, 1)
	}
	return &Program{
		Name:  name,
		Class: Virus,
		Phases: []Phase{
			{Name: "search", Block: search, IPC: jitter(src, 1.2, 0.2), MeanDwell: jitter(src, 0.03, 0.3)},
			{Name: "infect-read", Block: infectRead, IPC: jitter(src, 1.6, 0.2), MeanDwell: jitter(src, 0.03, 0.3)},
			{Name: "infect-write", Block: infectWrite, IPC: jitter(src, 1.5, 0.2), MeanDwell: jitter(src, 0.035, 0.3)},
		},
		TransitionW: [][]float64{
			{2, 2, 1},
			{1, 2, 3},
			{2, 1, 2},
		},
	}
}

// wormSample: network scanning and self-replication. Distinctive: very
// high branch density with poor predictability (protocol/scan logic) plus
// large memcpy-style replication bursts.
func wormSample(src *rng.Source) *Program {
	scan := micro.Block{
		LoadFrac: jprob(src, 0.24, 0.2, 0.12, 0.4), StoreFrac: jprob(src, 0.08, 0.2, 0.02, 0.2),
		BranchFrac:    jprob(src, 0.34, 0.12, 0.22, 0.45),
		DataFootprint: jbytes(src, fpSmall, 0.4), DataStride: 16,
		DataRandomFrac: jprob(src, 0.5, 0.25, 0.2, 0.8),
		CodeFootprint:  jbytes(src, fpSmall, 0.4), CodeJumpFrac: jprob(src, 0.12, 0.3, 0.03, 0.3),
		BranchTakenProb: 0.5, BranchEntropy: jprob(src, 0.7, 0.15, 0.4, 0.95),
	}
	replicate := micro.Block{
		LoadFrac: jprob(src, 0.34, 0.15, 0.2, 0.48), StoreFrac: jprob(src, 0.32, 0.15, 0.18, 0.45),
		BranchFrac:    jprob(src, 0.08, 0.2, 0.03, 0.16),
		DataFootprint: jbytes(src, fpMedium, 0.4), DataStride: 64,
		DataRandomFrac: 0.02, RemoteFrac: jprob(src, 0.5, 0.2, 0.25, 0.8),
		RemoteFootprint: jbytes(src, fpLarge, 0.4),
		CodeFootprint:   jbytes(src, fpTiny, 0.3), CodeJumpFrac: 0.02,
		BranchTakenProb: 0.85, BranchEntropy: jprob(src, 0.1, 0.3, 0, 0.3),
	}
	probe := micro.Block{
		LoadFrac: jprob(src, 0.26, 0.2, 0.12, 0.42), StoreFrac: jprob(src, 0.14, 0.2, 0.05, 0.28),
		BranchFrac:    jprob(src, 0.3, 0.15, 0.18, 0.42),
		DataFootprint: jbytes(src, fpTiny, 0.3), DataStride: 16,
		DataRandomFrac: 0.2, RemoteFrac: jprob(src, 0.3, 0.3, 0.1, 0.6),
		RemoteFootprint: jbytes(src, fpMedium, 0.4),
		CodeFootprint:   jbytes(src, fpTiny, 0.3), CodeJumpFrac: 0.05,
		BranchTakenProb: 0.55, BranchEntropy: jprob(src, 0.6, 0.2, 0.3, 0.9),
	}
	// Variants: a random scanner burns cycles probing address space; a
	// hit-list worm spends its time replicating to known targets.
	name := "worm/scanner"
	scanW := 4.0
	if src.Bool(0.35) {
		name = "worm/hitlist"
		scanW = 1.5
		replicate.RemoteFootprint = jbytes(src, float64(replicate.RemoteFootprint)*1.5, 0.2)
	}
	return &Program{
		Name:  name,
		Class: Worm,
		Phases: []Phase{
			{Name: "scan", Block: scan, IPC: jitter(src, 2.0, 0.15), MeanDwell: jitter(src, 0.04, 0.3)},
			{Name: "replicate", Block: replicate, IPC: jitter(src, 1.6, 0.15), MeanDwell: jitter(src, 0.025, 0.3)},
			{Name: "probe", Block: probe, IPC: jitter(src, 1.8, 0.15), MeanDwell: jitter(src, 0.02, 0.3)},
		},
		TransitionW: [][]float64{
			{scanW, 1, 2},
			{2, 2, 1},
			{3, 1, 2},
		},
	}
}

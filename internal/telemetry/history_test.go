package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tsdb"
)

// testStore builds a scraped tsdb over its own registry: one counter
// climbing 10/s and one gauge, 120 one-second scrapes ending at a known
// millisecond timestamp.
func testStore(t *testing.T) (*tsdb.Store, int64) {
	t.Helper()
	reg := obs.NewRegistry()
	st := tsdb.New(tsdb.Config{Registry: reg, Interval: time.Second, Bus: obs.NewBus()})
	c := reg.Counter("trace.windows_simulated")
	g := reg.Gauge("quality.f1")
	t0 := time.UnixMilli(1_700_000_000_000)
	for i := 0; i < 120; i++ {
		c.Add(10)
		g.Set(0.9)
		st.ScrapeAt(t0.Add(time.Duration(i) * time.Second))
	}
	return st, t0.UnixMilli()
}

// TestHistoricalEndpoints404WithoutStore pins the attach contract: the
// three store-backed routes are 404 until SetStore, live after.
func TestHistoricalEndpoints404WithoutStore(t *testing.T) {
	s, _, _ := testServer(t)
	for _, p := range []string{"/api/v1/series", "/api/v1/query_range?metric=x", "/alerts/history"} {
		if code, body, _ := get(t, s.Handler(), p); code != 404 || !strings.Contains(body, "no time-series store") {
			t.Errorf("%s without store = %d %q, want 404", p, code, body)
		}
	}
	st, _ := testStore(t)
	s.SetStore(st)
	if code, _, _ := get(t, s.Handler(), "/api/v1/series"); code != 200 {
		t.Errorf("series after SetStore = %d", code)
	}
}

func TestSeriesEndpoint(t *testing.T) {
	s, _, _ := testServer(t)
	st, _ := testStore(t)
	s.SetStore(st)
	code, body, hdr := get(t, s.Handler(), "/api/v1/series")
	if code != 200 || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("series = %d %q", code, hdr.Get("Content-Type"))
	}
	var cat tsdb.Catalog
	if err := json.Unmarshal([]byte(body), &cat); err != nil {
		t.Fatal(err)
	}
	if cat.IntervalMS != 1000 || len(cat.Series) == 0 {
		t.Fatalf("catalog = %+v", cat)
	}
	found := false
	for _, si := range cat.Series {
		if si.Name == "trace.windows_simulated" && si.Kind == tsdb.KindCounter {
			found = true
		}
	}
	if !found {
		t.Errorf("catalog missing trace.windows_simulated counter: %s", body)
	}
}

// TestQueryRangeEndpoint exercises the parameter surface: explicit ms
// bounds, step as a duration, agg selection, and the error mapping
// (unknown metric 404, bad params 400).
func TestQueryRangeEndpoint(t *testing.T) {
	s, _, _ := testServer(t)
	st, t0 := testStore(t)
	s.SetStore(st)

	u := "/api/v1/query_range?metric=trace.windows_simulated" +
		"&from=" + itoa(t0) + "&to=" + itoa(t0+119_000) + "&step=15s&agg=rate"
	code, body, _ := get(t, s.Handler(), u)
	if code != 200 {
		t.Fatalf("query_range = %d %q", code, body)
	}
	var res tsdb.QueryResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.StepMS != 15_000 || res.Agg != "rate" || len(res.Points) == 0 {
		t.Fatalf("result = %+v", res)
	}
	// A counter climbing 10 per 1 s scrape rates to ~10/s (checked on an
	// interior bucket — the window's edge buckets are partial).
	mid := res.Points[len(res.Points)/2].V
	if mid < 9 || mid > 11 {
		t.Errorf("rate = %v, want ~10", mid)
	}

	cases := []struct {
		path string
		code int
	}{
		{"/api/v1/query_range", 400},                                      // missing metric
		{"/api/v1/query_range?metric=no.such.metric", 404},                // unknown metric
		{"/api/v1/query_range?metric=quality.f1&agg=median", 400},         // bad agg
		{"/api/v1/query_range?metric=quality.f1&from=xyz", 400},           // bad time
		{"/api/v1/query_range?metric=quality.f1&step=fast", 400},          // bad step
		{"/api/v1/query_range?metric=quality.f1&from=now&to=now-1m", 400}, // from > to
		{"/api/v1/query_range?metric=quality.f1&from=now-5m&to=now", 200}, // relative times
		{"/api/v1/query_range?metric=quality.f1&from=" + itoa(t0), 200},   // default to=now
	}
	for _, c := range cases {
		if code, body, _ := get(t, s.Handler(), c.path); code != c.code {
			t.Errorf("%s = %d %q, want %d", c.path, code, body, c.code)
		}
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func TestAlertsHistoryEndpoint(t *testing.T) {
	s, _, _ := testServer(t)
	st, _ := testStore(t)
	st.RecordEvent(obs.Event{Type: "alarm", Sample: "rootkit_001", TimeUnixMS: 1})
	st.RecordEvent(obs.Event{Type: "drift", Msg: "psi over budget", TimeUnixMS: 2})
	s.SetStore(st)

	code, body, _ := get(t, s.Handler(), "/alerts/history")
	if code != 200 {
		t.Fatalf("alerts/history = %d", code)
	}
	var h tsdb.EventHistory
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Total != 2 || len(h.Events) != 2 || h.Events[0].Type != "alarm" || h.Events[1].Type != "drift" {
		t.Errorf("history = %+v", h)
	}
}

// TestReadyzGate pins the liveness/readiness split: /healthz never
// gates, /readyz is 503 with the gate's reason until it reports ready,
// and with no gate attached it mirrors liveness.
func TestReadyzGate(t *testing.T) {
	s, _, _ := testServer(t)
	// No gate: mirrors liveness (one-shot CLI semantics).
	if code, body, _ := get(t, s.Handler(), "/readyz"); code != 200 || !strings.HasPrefix(body, "ready") {
		t.Errorf("ungated readyz = %d %q", code, body)
	}

	ready := false
	s.SetReady(func() (bool, string) {
		if !ready {
			return false, "model not trained"
		}
		return true, ""
	})
	code, body, _ := get(t, s.Handler(), "/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "model not trained") {
		t.Errorf("not-ready readyz = %d %q", code, body)
	}
	// Liveness is unaffected by the gate.
	if code, _, _ := get(t, s.Handler(), "/healthz"); code != 200 {
		t.Errorf("healthz gated = %d", code)
	}
	ready = true
	if code, _, _ := get(t, s.Handler(), "/readyz"); code != 200 {
		t.Errorf("ready readyz = %d", code)
	}
}

// TestSSEKeepAlive pins the heartbeat contract: an idle SSE stream
// receives comment frames, while an idle NDJSON stream stays silent —
// its first byte is the first real event.
func TestSSEKeepAlive(t *testing.T) {
	reg := obs.NewRegistry()
	bus := obs.NewBus()
	s := New(WithRegistry(reg), WithBus(bus), WithTracer(obs.NewTracer()),
		WithEventBuffer(8), WithSSEKeepAlive(30*time.Millisecond))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if line := readLine(t, resp.Body); line != ": keepalive" {
		t.Errorf("idle SSE line = %q, want %q", line, ": keepalive")
	}
	// Real events still frame correctly between heartbeats.
	waitSubscribed(t, bus)
	bus.Publish(obs.Event{Type: "alarm", Window: 3})
	deadline := time.Now().Add(5 * time.Second)
	for {
		line := readLine(t, resp.Body)
		if strings.HasPrefix(line, "data: {") {
			var e obs.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				t.Fatalf("SSE data line %q: %v", line, err)
			}
			break
		}
		if line != ": keepalive" && line != "" {
			t.Fatalf("unexpected SSE line %q", line)
		}
		if time.Now().After(deadline) {
			t.Fatal("event never arrived between keepalives")
		}
	}

	// NDJSON: wait several keepalive periods, then publish. The first
	// line must be the event — heartbeats never pollute NDJSON framing.
	nd, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Body.Close()
	time.Sleep(120 * time.Millisecond)
	bus.Publish(obs.Event{Type: "window", Window: 9})
	line := readLine(t, nd.Body)
	var e obs.Event
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("NDJSON first line %q not pure JSON: %v", line, err)
	}
	if e.Type != "window" || e.Window != 9 {
		t.Errorf("NDJSON event = %+v", e)
	}
}

// TestDashboard serves the embedded page and checks it is self-contained
// HTML wired to the query API and event stream.
func TestDashboard(t *testing.T) {
	s, _, _ := testServer(t)
	code, body, hdr := get(t, s.Handler(), "/dashboard")
	if code != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "text/html") {
		t.Fatalf("dashboard = %d %q", code, hdr.Get("Content-Type"))
	}
	for _, want := range []string{
		"<!doctype html>",
		"/api/v1/query_range",
		"/alerts/history",
		"/events?sse=1",
		"trace.windows_simulated",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// Zero dependencies: no external scripts, styles, or fonts.
	for _, banned := range []string{"http://", "https://", "src=\"//"} {
		if strings.Contains(body, banned) {
			t.Errorf("dashboard references external resource (%q)", banned)
		}
	}
}

// Package telemetry is the live window into a running detection
// pipeline: an embeddable HTTP server that exposes the obs instruments
// while a run is in flight instead of only after it exits.
//
// Endpoints:
//
//	/            endpoint index (plain text)
//	/healthz     liveness: "ok" plus uptime (never gated)
//	/readyz      readiness: 503 until the attached gate reports ready
//	/buildinfo   module version, VCS revision, Go version (JSON)
//	/metrics     Prometheus text exposition 0.0.4 of the metrics registry
//	/manifest    the in-flight run manifest (JSON)
//	/events      live detection-event stream (NDJSON, or SSE on Accept)
//	/quality     detection scoreboard: confusion, F1, calibration (JSON)
//	/drift       per-counter PSI/KS against the train-time baseline (JSON)
//	/alerts      alert-rule engine state (JSON)
//	/alerts/history        retained alert/drift/alarm events (JSON)
//	/api/v1/series         time-series catalog of the embedded tsdb (JSON)
//	/api/v1/query_range    range query: ?metric=&from=&to=&step=&agg= (JSON)
//	/dashboard   embedded live dashboard (HTML, zero dependencies)
//	/debug/flightrecorder  the flight recorder's current rings (JSON)
//	/debug/pprof CPU/heap/goroutine profiling (net/http/pprof)
//
// The model-quality endpoints 404 until a source is attached via
// SetQuality/SetDrift/SetAlerts/SetFlightRecorder — a plain telemetry
// server (every CLI command's -listen) has no labeled replay to score.
// Likewise the historical endpoints (/api/v1/*, /alerts/history) 404
// until SetStore attaches an embedded time-series store.
//
// The server is started by the shared -listen flag for the duration of
// any CLI run, and runs permanently under `hpcmal serve`.
package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/tsdb"
)

// Config wires a Server to its observability sources. Zero fields fall
// back to the process-wide defaults.
type Config struct {
	// Registry feeds /metrics. Default obs.DefaultRegistry.
	Registry *obs.Registry
	// Tracer feeds the span export. Default obs.DefaultTracer.
	Tracer *obs.Tracer
	// Bus feeds /events. Default obs.DefaultBus.
	Bus *obs.Bus
	// EventBuffer is the per-stream subscription buffer (default 256);
	// overflow drops the oldest undelivered events.
	EventBuffer int
	// Quality, Drift, Alerts and FlightRecorder feed the model-quality
	// endpoints: each is a snapshot function whose result is rendered as
	// JSON (e.g. the quality.Scoreboard's Snapshot). Nil leaves the
	// endpoint returning 404; the Set* methods attach sources after
	// construction (serve builds the model once the server is up).
	Quality        func() any
	Drift          func() any
	Alerts         func() any
	FlightRecorder func() any
	// Store feeds the historical endpoints (/api/v1/series,
	// /api/v1/query_range, /alerts/history). Nil leaves them 404 until
	// SetStore.
	Store *tsdb.Store
	// Ready gates /readyz: the endpoint answers 503 with the returned
	// reason until the gate reports true. Nil means no gate — /readyz
	// mirrors liveness, the right semantics for one-shot CLI runs that
	// have nothing to warm up. Attach it in Config (not via SetReady)
	// when readiness must be correct from the very first request.
	Ready func() (bool, string)
	// SSEKeepAlive is the idle-stream heartbeat period for SSE /events
	// clients (default 15 s): comment frames that keep proxies and
	// load-balancer idle timeouts from severing a quiet stream. NDJSON
	// streams are never touched — heartbeats are an SSE comment-frame
	// concept and would corrupt line-delimited JSON framing.
	SSEKeepAlive time.Duration
}

// Server serves the telemetry endpoints over HTTP.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	httpSrv  *http.Server
	ln       net.Listener
	started  time.Time
	manifest atomic.Pointer[obs.Manifest]
	// Late-bound model-quality sources (see Set*): atomic so serve can
	// attach them after Start without racing in-flight scrapes.
	quality atomic.Pointer[snapshotFn]
	drift   atomic.Pointer[snapshotFn]
	alerts  atomic.Pointer[snapshotFn]
	flight  atomic.Pointer[snapshotFn]
	store   atomic.Pointer[tsdb.Store]
	ready   atomic.Pointer[readyFn]
	// closing is closed on Shutdown so long-lived /events streams end
	// promptly and let the graceful drain finish.
	closing      chan struct{}
	serveErr     chan error
	shutdownOnce sync.Once
	shutdownErr  error
}

// New builds a server over the given sources without listening yet.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = obs.DefaultRegistry
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.DefaultTracer
	}
	if cfg.Bus == nil {
		cfg.Bus = obs.DefaultBus
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 256
	}
	if cfg.SSEKeepAlive <= 0 {
		cfg.SSEKeepAlive = 15 * time.Second
	}
	// Mirror the bus's delivery/drop/subscriber accounting into the
	// registry so /metrics exposes it without hand-written lines.
	cfg.Bus.AttachMetrics(cfg.Registry)
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		started:  time.Now(),
		closing:  make(chan struct{}),
		serveErr: make(chan error, 1),
	}
	s.SetQuality(cfg.Quality)
	s.SetDrift(cfg.Drift)
	s.SetAlerts(cfg.Alerts)
	s.SetFlightRecorder(cfg.FlightRecorder)
	s.SetStore(cfg.Store)
	s.SetReady(cfg.Ready)
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/api/v1/series", s.handleSeries)
	s.mux.HandleFunc("/api/v1/query_range", s.handleQueryRange)
	s.mux.HandleFunc("/alerts/history", s.handleAlertsHistory)
	s.mux.HandleFunc("/dashboard", s.handleDashboard)
	s.mux.HandleFunc("/buildinfo", s.handleBuildInfo)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/manifest", s.handleManifest)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/quality", s.snapshotHandler(&s.quality, "no detection scoreboard attached"))
	s.mux.HandleFunc("/drift", s.snapshotHandler(&s.drift, "no drift detector attached"))
	s.mux.HandleFunc("/alerts", s.snapshotHandler(&s.alerts, "no alert engine attached"))
	s.mux.HandleFunc("/debug/flightrecorder", s.snapshotHandler(&s.flight, "no flight recorder attached"))
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's routing handler (useful for tests).
func (s *Server) Handler() http.Handler { return s.mux }

// SetManifest publishes the in-flight run manifest on /manifest.
func (s *Server) SetManifest(m *obs.Manifest) { s.manifest.Store(m) }

// snapshotFn produces one JSON-renderable snapshot for a model-quality
// endpoint.
type snapshotFn func() any

func storeFn(p *atomic.Pointer[snapshotFn], fn func() any) {
	if fn == nil {
		p.Store(nil)
		return
	}
	sf := snapshotFn(fn)
	p.Store(&sf)
}

// SetQuality attaches (or, with nil, detaches) the /quality source.
func (s *Server) SetQuality(fn func() any) { storeFn(&s.quality, fn) }

// SetDrift attaches the /drift source.
func (s *Server) SetDrift(fn func() any) { storeFn(&s.drift, fn) }

// SetAlerts attaches the /alerts source.
func (s *Server) SetAlerts(fn func() any) { storeFn(&s.alerts, fn) }

// SetFlightRecorder attaches the /debug/flightrecorder source.
func (s *Server) SetFlightRecorder(fn func() any) { storeFn(&s.flight, fn) }

// readyFn reports readiness plus a human reason while not ready.
type readyFn func() (bool, string)

// SetStore attaches (or, with nil, detaches) the embedded time-series
// store behind /api/v1/series, /api/v1/query_range and /alerts/history.
func (s *Server) SetStore(st *tsdb.Store) { s.store.Store(st) }

// SetReady attaches the /readyz gate after construction. Prefer
// Config.Ready when the gate must hold from the first request — a
// late-bound gate leaves a window where /readyz reports default-ready.
func (s *Server) SetReady(fn func() (bool, string)) {
	if fn == nil {
		s.ready.Store(nil)
		return
	}
	rf := readyFn(fn)
	s.ready.Store(&rf)
}

// snapshotHandler serves a late-bound snapshot source as indented JSON,
// or 404 with a hint while no source is attached.
func (s *Server) snapshotHandler(p *atomic.Pointer[snapshotFn], missing string) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		fn := p.Load()
		if fn == nil {
			http.Error(w, missing, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode((*fn)())
	}
}

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in a background goroutine until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go func() {
		err := s.httpSrv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.serveErr <- err
	}()
	obs.Log().Info("telemetry server listening", "url", s.URL())
	return nil
}

// Addr returns the bound listen address (empty before Start).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL (empty before Start).
func (s *Server) URL() string {
	a := s.Addr()
	if a == "" {
		return ""
	}
	return "http://" + a
}

// Shutdown ends open event streams and gracefully drains the HTTP
// server. Safe to call more than once; later calls return the first
// call's result.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil || s.httpSrv == nil {
		return nil
	}
	s.shutdownOnce.Do(func() {
		close(s.closing)
		err := s.httpSrv.Shutdown(ctx)
		if serr := <-s.serveErr; err == nil {
			err = serr
		}
		s.shutdownErr = err
	})
	return s.shutdownErr
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `hpcmal telemetry
  /healthz      liveness
  /readyz       readiness (503 until model trained and scraper running)
  /buildinfo    binary identity (JSON)
  /metrics      Prometheus text exposition
  /manifest     in-flight run manifest (JSON)
  /events       detection-event stream (NDJSON; SSE with Accept: text/event-stream)
  /quality      detection scoreboard: confusion, F1, calibration (JSON)
  /drift        per-counter PSI/KS vs the training baseline (JSON)
  /alerts       alert-rule engine state (JSON)
  /alerts/history        retained alert/drift/alarm events (JSON)
  /api/v1/series         time-series catalog (JSON)
  /api/v1/query_range    ?metric=&from=&to=&step=&agg= (JSON)
  /dashboard    live dashboard (HTML)
  /debug/flightrecorder  flight-recorder rings (JSON)
  /debug/pprof  profiling
`)
}

// handleHealthz is pure liveness: the process is up and serving HTTP.
// It is never gated on model state — a daemon mid-training is alive.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok uptime_s=%.1f\n", time.Since(s.started).Seconds())
}

// handleReadyz is readiness: 503 with a reason until the attached gate
// reports ready (serve gates on "model trained AND tsdb scraper
// running"). With no gate attached it mirrors liveness.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if fn := s.ready.Load(); fn != nil {
		if ok, reason := (*fn)(); !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "not ready: %s\n", reason)
			return
		}
	}
	fmt.Fprintf(w, "ready uptime_s=%.1f\n", time.Since(s.started).Seconds())
}

// parseQueryTime parses a /api/v1/query_range time bound: "now",
// "now-<duration>" (e.g. "now-5m"), a Unix timestamp in seconds, or one
// in milliseconds (values above 1e12 — i.e. any real ms timestamp —
// are taken as ms). Empty falls back to def.
func parseQueryTime(v string, now time.Time, def int64) (int64, error) {
	switch {
	case v == "":
		return def, nil
	case v == "now":
		return now.UnixMilli(), nil
	case strings.HasPrefix(v, "now-"):
		d, err := time.ParseDuration(v[len("now-"):])
		if err != nil {
			return 0, fmt.Errorf("bad relative time %q: %w", v, err)
		}
		return now.Add(-d).UnixMilli(), nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q (want now, now-<dur>, or unix seconds/ms)", v)
	}
	if f > 1e12 {
		return int64(f), nil
	}
	return int64(f * 1000), nil
}

// parseQueryStep parses the step parameter: a Go duration ("30s") or a
// bare number of seconds. Empty or zero asks for the answering tier's
// native resolution.
func parseQueryStep(v string) (int64, error) {
	if v == "" {
		return 0, nil
	}
	if d, err := time.ParseDuration(v); err == nil {
		return d.Milliseconds(), nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad step %q (want a duration like 30s or seconds)", v)
	}
	return int64(f * 1000), nil
}

// handleSeries serves the tsdb catalog, or 404 while no store is
// attached (plain -listen runs have no historical store).
func (s *Server) handleSeries(w http.ResponseWriter, _ *http.Request) {
	st := s.store.Load()
	if st == nil {
		http.Error(w, "no time-series store attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st.Series())
}

// handleQueryRange answers ?metric=&from=&to=&step=&agg= range queries
// against the embedded store. Defaults: from=now-5m, to=now, step=tier
// native, agg=avg. Unknown metrics are 404; malformed parameters 400.
func (s *Server) handleQueryRange(w http.ResponseWriter, r *http.Request) {
	st := s.store.Load()
	if st == nil {
		http.Error(w, "no time-series store attached", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		http.Error(w, "missing metric parameter", http.StatusBadRequest)
		return
	}
	now := time.Now()
	fromMS, err := parseQueryTime(q.Get("from"), now, now.Add(-5*time.Minute).UnixMilli())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	toMS, err := parseQueryTime(q.Get("to"), now, now.UnixMilli())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	stepMS, err := parseQueryStep(q.Get("step"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	result, err := st.QueryRange(metric, fromMS, toMS, stepMS, q.Get("agg"))
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, tsdb.ErrUnknownMetric) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(result)
}

// handleAlertsHistory serves the store's retained alert/drift/alarm
// events — history that outlives the alert engine's current state.
func (s *Server) handleAlertsHistory(w http.ResponseWriter, _ *http.Request) {
	st := s.store.Load()
	if st == nil {
		http.Error(w, "no time-series store attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st.Events())
}

func (s *Server) handleBuildInfo(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(obs.Build())
}

// handleMetrics renders the registry as Prometheus text, appending the
// server's own meta-series (build info, uptime) so scrapers see the
// serving binary's identity too. The event bus's delivery/drop totals
// arrive through the registry itself — New mirrors the bus into it via
// AttachMetrics — so they render exactly once.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w, s.cfg.Registry.Snapshot()); err != nil {
		return
	}
	bi := obs.Build()
	fmt.Fprintf(w, "# TYPE hpcmal_build_info gauge\nhpcmal_build_info{version=%s,revision=%s,go=%s} 1\n",
		obs.QuoteLabel(bi.Version), obs.QuoteLabel(bi.Revision), obs.QuoteLabel(bi.GoVersion))
	fmt.Fprintf(w, "# TYPE hpcmal_uptime_seconds gauge\nhpcmal_uptime_seconds %g\n",
		time.Since(s.started).Seconds())
}

func (s *Server) handleManifest(w http.ResponseWriter, _ *http.Request) {
	m := s.manifest.Load()
	if m == nil {
		http.Error(w, "no run manifest registered", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m)
}

// handleEvents streams bus events for as long as the client stays
// connected: one JSON object per line (NDJSON) by default, or Server-Sent
// Events when the client asks for text/event-stream. A slow client's
// backlog is bounded by the subscription buffer — the bus drops the
// oldest events rather than stalling the pipeline.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream") ||
		r.URL.Query().Get("sse") == "1"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sub := s.cfg.Bus.Subscribe(s.cfg.EventBuffer)
	defer sub.Close()

	// SSE streams get periodic comment-frame heartbeats so an idle
	// stream survives proxy and load-balancer idle timeouts. NDJSON
	// framing is line-delimited JSON only — never heartbeat it.
	var keepalive <-chan time.Time
	if sse {
		t := time.NewTicker(s.cfg.SSEKeepAlive)
		defer t.Stop()
		keepalive = t.C
	}

	enc := json.NewEncoder(w)
	for {
		select {
		case e, ok := <-sub.Events():
			if !ok {
				return
			}
			if sse {
				fmt.Fprint(w, "data: ")
			}
			if err := enc.Encode(e); err != nil {
				return
			}
			if sse {
				fmt.Fprint(w, "\n")
			}
			flusher.Flush()
		case <-keepalive:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.closing:
			return
		}
	}
}

// Package telemetry is the live window into a running detection
// pipeline: an embeddable HTTP server that exposes the obs instruments
// while a run is in flight instead of only after it exits.
//
// The JSON API lives under the versioned /api/v1 prefix; operational
// probes and streams stay unversioned (see DESIGN.md for the policy):
//
//	/            endpoint index (plain text)
//	/healthz     liveness: "ok" plus uptime (never gated)
//	/readyz      readiness: 503 until the attached gate reports ready
//	/metrics     Prometheus text exposition 0.0.4 of the metrics registry
//	/events      live detection-event stream (NDJSON, or SSE on Accept)
//	/dashboard   embedded live dashboard (HTML, zero dependencies)
//
//	/api/v1/buildinfo      module version, VCS revision, Go version (JSON)
//	/api/v1/manifest       the in-flight run manifest (JSON)
//	/api/v1/quality        detection scoreboard: confusion, F1, calibration (JSON)
//	/api/v1/drift          per-counter PSI/KS against the train-time baseline (JSON)
//	/api/v1/alerts         alert-rule engine state (JSON)
//	/api/v1/alerts/history retained alert/drift/alarm events (JSON)
//	/api/v1/series         time-series catalog of the embedded tsdb (JSON)
//	/api/v1/query_range    range query: ?metric=&from=&to=&step=&agg= (JSON)
//	/api/v1/ingest         fleet window ingest (POST) + service stats (GET)
//	/api/v1/tenants[...]   per-tenant summaries, quality, drift (JSON)
//	/api/v1/traces         retained request traces (JSON; ?tenant= &min_duration= &error=)
//	/api/v1/traces/{id}    one trace's span waterfall (JSON)
//	/api/v1/models         compiled inference programs: classifier, precision,
//	                       widths, scale table, agreement (JSON)
//	/api/v1/models/{name}  one program's full spec (JSON)
//	/api/v1/profiles       continuous-profiler capture ring (JSON;
//	                       ?type= &trigger= &limit=) + profiler stats
//	/api/v1/profiles/{id}  raw gzipped pprof blob (feed to `go tool
//	                       pprof`), or ?summary=1 for the JSON top-N
//
//	/debug/flightrecorder  the flight recorder's current rings (JSON)
//	/debug/pprof           CPU/heap/goroutine profiling (net/http/pprof;
//	                       on-demand CPU captures are capped at one at a
//	                       time — contention answers 409)
//
// The legacy pre-v1 paths (/quality /drift /alerts /alerts/history
// /manifest /buildinfo) remain as aliases of their /api/v1 successors:
// identical bodies, plus a `Deprecation: true` header and an RFC 8288
// successor-version Link.
//
// Every JSON endpoint renders errors as the stable envelope
// {"error": {"code": ..., "message": ...}} from internal/httpapi.
//
// The model-quality endpoints 404 until a source is attached via
// WithQuality/SetQuality (and siblings) — a plain telemetry server
// (every CLI command's -listen) has no labeled replay to score.
// Likewise the historical endpoints 404 until a store is attached, and
// the ingest endpoints answer 503 until an ingest service is mounted.
//
// The server is started by the shared -listen flag for the duration of
// any CLI run, and runs permanently under `hpcmal serve`.
package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/tsdb"
)

// config wires a Server to its observability sources; it is built from
// Options. Zero fields fall back to the process-wide defaults.
type config struct {
	registry       *obs.Registry
	tracer         *obs.Tracer
	bus            *obs.Bus
	eventBuffer    int
	quality        func() any
	drift          func() any
	alerts         func() any
	flightRecorder func() any
	store          *tsdb.Store
	ready          func() (bool, string)
	ingest         http.Handler
	sseKeepAlive   time.Duration
	reqTracer      *obs.ReqTracer
	models         func() []ModelInfo
	profiler       *profile.Profiler
}

// ModelInfo is one deployed inference program as served by
// /api/v1/models: the name it answers to plus its introspection spec
// (an infer.ProgramSpec, held as any to keep telemetry's dependency
// surface flat).
type ModelInfo struct {
	Name string `json:"name"`
	Spec any    `json:"spec"`
}

// Option configures New. All sources wire uniformly through options —
// construction-time for anything that must hold from the first request
// (readiness gates especially), with Set* mirrors for sources that only
// exist after the server is already listening (serve trains its model
// with the server up).
type Option func(*config)

// WithRegistry sets the metrics registry behind /metrics
// (default obs.DefaultRegistry).
func WithRegistry(r *obs.Registry) Option { return func(c *config) { c.registry = r } }

// WithTracer sets the span tracer (default obs.DefaultTracer).
func WithTracer(t *obs.Tracer) Option { return func(c *config) { c.tracer = t } }

// WithBus sets the event bus behind /events (default obs.DefaultBus).
func WithBus(b *obs.Bus) Option { return func(c *config) { c.bus = b } }

// WithEventBuffer sets the per-stream subscription buffer (default 256);
// overflow drops the oldest undelivered events.
func WithEventBuffer(n int) Option { return func(c *config) { c.eventBuffer = n } }

// WithSSEKeepAlive sets the idle-stream heartbeat period for SSE
// /events clients (default 15 s): comment frames that keep proxies and
// load-balancer idle timeouts from severing a quiet stream. NDJSON
// streams are never touched — heartbeats are an SSE comment-frame
// concept and would corrupt line-delimited JSON framing.
func WithSSEKeepAlive(d time.Duration) Option { return func(c *config) { c.sseKeepAlive = d } }

// WithQuality attaches the /api/v1/quality snapshot source: a function
// whose result is rendered as JSON (e.g. a quality.Scoreboard's
// Snapshot). Nil leaves the endpoint 404.
func WithQuality(fn func() any) Option { return func(c *config) { c.quality = fn } }

// WithDrift attaches the /api/v1/drift snapshot source.
func WithDrift(fn func() any) Option { return func(c *config) { c.drift = fn } }

// WithAlerts attaches the /api/v1/alerts snapshot source.
func WithAlerts(fn func() any) Option { return func(c *config) { c.alerts = fn } }

// WithFlightRecorder attaches the /debug/flightrecorder source.
func WithFlightRecorder(fn func() any) Option { return func(c *config) { c.flightRecorder = fn } }

// WithStore attaches the embedded time-series store behind
// /api/v1/series, /api/v1/query_range and /api/v1/alerts/history.
func WithStore(st *tsdb.Store) Option { return func(c *config) { c.store = st } }

// WithReady gates /readyz: the endpoint answers 503 with the returned
// reason until the gate reports true. Without it /readyz mirrors
// liveness — the right semantics for one-shot CLI runs that have
// nothing to warm up. Use this option (not SetReady) when readiness
// must be correct from the very first request.
func WithReady(fn func() (bool, string)) Option { return func(c *config) { c.ready = fn } }

// WithIngest mounts a fleet ingest service (its http.Handler) at
// /api/v1/ingest and /api/v1/tenants. Until one is mounted those paths
// answer 503 unavailable.
func WithIngest(h http.Handler) Option { return func(c *config) { c.ingest = h } }

// WithReqTracer attaches the request-trace store behind /api/v1/traces.
// Nil leaves the endpoints 404.
func WithReqTracer(rt *obs.ReqTracer) Option { return func(c *config) { c.reqTracer = rt } }

// WithModels attaches the /api/v1/models source: a function returning
// the currently deployed inference programs (name + spec). Nil leaves
// the endpoints 404 — a plain -listen run deploys no compiled programs.
func WithModels(fn func() []ModelInfo) Option { return func(c *config) { c.models = fn } }

// WithProfiler attaches the continuous profiler behind /api/v1/profiles
// and its labeled capture counters on /metrics. Nil leaves the
// endpoints 404 (the profiler is disabled with -profile-interval 0).
func WithProfiler(p *profile.Profiler) Option { return func(c *config) { c.profiler = p } }

// Server serves the telemetry endpoints over HTTP.
type Server struct {
	cfg      config
	mux      *http.ServeMux
	httpSrv  *http.Server
	ln       net.Listener
	started  time.Time
	manifest atomic.Pointer[obs.Manifest]
	// Late-bound sources (see Set*): atomic so serve can attach them
	// after Start without racing in-flight scrapes.
	quality atomic.Pointer[snapshotFn]
	drift   atomic.Pointer[snapshotFn]
	alerts  atomic.Pointer[snapshotFn]
	flight  atomic.Pointer[snapshotFn]
	store     atomic.Pointer[tsdb.Store]
	ready     atomic.Pointer[readyFn]
	ingest    atomic.Pointer[http.Handler]
	reqTracer atomic.Pointer[obs.ReqTracer]
	models    atomic.Pointer[modelsFn]
	profiler  atomic.Pointer[profile.Profiler]
	// closing is closed on Shutdown so long-lived /events streams end
	// promptly and let the graceful drain finish.
	closing      chan struct{}
	serveErr     chan error
	shutdownOnce sync.Once
	shutdownErr  error
}

// New builds a server over the given sources without listening yet.
func New(opts ...Option) *Server {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.registry == nil {
		cfg.registry = obs.DefaultRegistry
	}
	if cfg.tracer == nil {
		cfg.tracer = obs.DefaultTracer
	}
	if cfg.bus == nil {
		cfg.bus = obs.DefaultBus
	}
	if cfg.eventBuffer <= 0 {
		cfg.eventBuffer = 256
	}
	if cfg.sseKeepAlive <= 0 {
		cfg.sseKeepAlive = 15 * time.Second
	}
	// Mirror the bus's delivery/drop/subscriber accounting into the
	// registry so /metrics exposes it without hand-written lines; same
	// for the span tracer's retention-cap eviction count.
	cfg.bus.AttachMetrics(cfg.registry)
	cfg.tracer.AttachMetrics(cfg.registry)
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		started:  time.Now(),
		closing:  make(chan struct{}),
		serveErr: make(chan error, 1),
	}
	s.SetQuality(cfg.quality)
	s.SetDrift(cfg.drift)
	s.SetAlerts(cfg.alerts)
	s.SetFlightRecorder(cfg.flightRecorder)
	s.SetStore(cfg.store)
	s.SetReady(cfg.ready)
	s.SetIngest(cfg.ingest)
	s.SetReqTracer(cfg.reqTracer)
	s.SetModels(cfg.models)
	s.SetProfiler(cfg.profiler)

	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/dashboard", s.handleDashboard)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/events", s.handleEvents)

	// The versioned JSON API, with the pre-v1 paths aliased to their
	// successors: identical handler, Deprecation + Link headers on top.
	canonical := map[string]http.HandlerFunc{
		"/api/v1/buildinfo":      httpapi.Methods(s.handleBuildInfo, http.MethodGet),
		"/api/v1/manifest":       httpapi.Methods(s.handleManifest, http.MethodGet),
		"/api/v1/quality":        httpapi.Methods(s.snapshotHandler(&s.quality, "no detection scoreboard attached"), http.MethodGet),
		"/api/v1/drift":          httpapi.Methods(s.snapshotHandler(&s.drift, "no drift detector attached"), http.MethodGet),
		"/api/v1/alerts":         httpapi.Methods(s.snapshotHandler(&s.alerts, "no alert engine attached"), http.MethodGet),
		"/api/v1/alerts/history": httpapi.Methods(s.handleAlertsHistory, http.MethodGet),
		"/api/v1/series":         httpapi.Methods(s.handleSeries, http.MethodGet),
		"/api/v1/query_range":    httpapi.Methods(s.handleQueryRange, http.MethodGet),
	}
	for path, h := range canonical {
		s.mux.HandleFunc(path, h)
	}
	for _, legacy := range []string{"/buildinfo", "/manifest", "/quality", "/drift", "/alerts", "/alerts/history"} {
		successor := "/api/v1" + legacy
		s.mux.HandleFunc(legacy, httpapi.Alias(successor, canonical[successor]))
	}

	// The fleet ingest surface mounts as an opaque handler (the ingest
	// package owns routing under these prefixes).
	s.mux.HandleFunc("/api/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/api/v1/tenants", s.handleIngest)
	s.mux.HandleFunc("/api/v1/tenants/", s.handleIngest)

	// The request-trace query surface: retained trace list + waterfalls.
	s.mux.HandleFunc("/api/v1/traces", httpapi.Methods(s.handleTraces, http.MethodGet))
	s.mux.HandleFunc("/api/v1/traces/", httpapi.Methods(s.handleTraces, http.MethodGet))

	// The compiled-program catalog: deployed models and their specs.
	s.mux.HandleFunc("/api/v1/models", httpapi.Methods(s.handleModels, http.MethodGet))
	s.mux.HandleFunc("/api/v1/models/", httpapi.Methods(s.handleModels, http.MethodGet))

	// The continuous profiler's capture ring and blob downloads.
	s.mux.HandleFunc("/api/v1/profiles", httpapi.Methods(s.handleProfiles, http.MethodGet))
	s.mux.HandleFunc("/api/v1/profiles/", httpapi.Methods(s.handleProfiles, http.MethodGet))

	s.mux.HandleFunc("/debug/flightrecorder", httpapi.Methods(s.snapshotHandler(&s.flight, "no flight recorder attached"), http.MethodGet))
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", s.handlePprofProfile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// handlePprofProfile serves on-demand CPU profiles like net/http/pprof,
// but capped at one capture at a time process-wide: the runtime allows
// a single CPU profile, and without the cap a second dashboard poll
// would stack requests behind runtime/pprof's opaque error. Contention
// — with another on-demand capture, the continuous profiler's duty
// window, or a -cpuprofile run — answers 409 with the API's standard
// error envelope and a Retry-After hint.
func (s *Server) handlePprofProfile(w http.ResponseWriter, r *http.Request) {
	if !profile.TryAcquireCPU() {
		w.Header().Set("Retry-After", "5")
		httpapi.Error(w, http.StatusConflict, "profile_in_progress",
			"a CPU profile capture is already in progress (on-demand captures are capped at 1; retry shortly)")
		return
	}
	defer profile.ReleaseCPU()
	pprof.Profile(w, r)
}

// Handler returns the server's routing handler (useful for tests).
func (s *Server) Handler() http.Handler { return s.mux }

// SetManifest publishes the in-flight run manifest on /api/v1/manifest.
func (s *Server) SetManifest(m *obs.Manifest) { s.manifest.Store(m) }

// snapshotFn produces one JSON-renderable snapshot for a model-quality
// endpoint.
type snapshotFn func() any

func storeFn(p *atomic.Pointer[snapshotFn], fn func() any) {
	if fn == nil {
		p.Store(nil)
		return
	}
	sf := snapshotFn(fn)
	p.Store(&sf)
}

// SetQuality attaches (or, with nil, detaches) the /api/v1/quality
// source after construction; prefer WithQuality when the source exists
// up front.
func (s *Server) SetQuality(fn func() any) { storeFn(&s.quality, fn) }

// SetDrift attaches the /api/v1/drift source.
func (s *Server) SetDrift(fn func() any) { storeFn(&s.drift, fn) }

// SetAlerts attaches the /api/v1/alerts source.
func (s *Server) SetAlerts(fn func() any) { storeFn(&s.alerts, fn) }

// SetFlightRecorder attaches the /debug/flightrecorder source.
func (s *Server) SetFlightRecorder(fn func() any) { storeFn(&s.flight, fn) }

// readyFn reports readiness plus a human reason while not ready.
type readyFn func() (bool, string)

// SetStore attaches (or, with nil, detaches) the embedded time-series
// store behind /api/v1/series, /api/v1/query_range and
// /api/v1/alerts/history.
func (s *Server) SetStore(st *tsdb.Store) { s.store.Store(st) }

// SetReady attaches the /readyz gate after construction. Prefer
// WithReady when the gate must hold from the first request — a
// late-bound gate leaves a window where /readyz reports default-ready.
func (s *Server) SetReady(fn func() (bool, string)) {
	if fn == nil {
		s.ready.Store(nil)
		return
	}
	rf := readyFn(fn)
	s.ready.Store(&rf)
}

// SetIngest mounts (or, with nil, unmounts) the fleet ingest service
// after construction — serve builds it once the detector is trained.
func (s *Server) SetIngest(h http.Handler) {
	if h == nil {
		s.ingest.Store(nil)
		return
	}
	s.ingest.Store(&h)
}

// SetReqTracer attaches (or, with nil, detaches) the request-trace
// store behind /api/v1/traces after construction.
func (s *Server) SetReqTracer(rt *obs.ReqTracer) { s.reqTracer.Store(rt) }

// modelsFn produces the current deployed-program catalog.
type modelsFn func() []ModelInfo

// SetModels attaches (or, with nil, detaches) the /api/v1/models source
// after construction — serve attaches it once the detector is trained
// and compiled.
func (s *Server) SetModels(fn func() []ModelInfo) {
	if fn == nil {
		s.models.Store(nil)
		return
	}
	mf := modelsFn(fn)
	s.models.Store(&mf)
}

// SetProfiler attaches (or, with nil, detaches) the continuous
// profiler behind /api/v1/profiles after construction.
func (s *Server) SetProfiler(p *profile.Profiler) { s.profiler.Store(p) }

// handleProfiles serves the continuous profiler's capture ring:
//
//	GET /api/v1/profiles                capture metadata newest-first,
//	                                    filterable by ?type= (cpu, heap,
//	                                    goroutine, mutex, block),
//	                                    ?trigger= (interval, alert,
//	                                    alarm, manual), ?limit=N; plus
//	                                    profiler stats
//	GET /api/v1/profiles/{id}           the raw gzipped pprof blob —
//	                                    `go tool pprof` reads it directly
//	GET /api/v1/profiles/{id}?summary=1 the parsed top-N flat/cum JSON
//
// 404 until a profiler is attached (disabled via -profile-interval 0).
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	p := s.profiler.Load()
	if p == nil {
		httpapi.Error(w, http.StatusNotFound, httpapi.CodeNotFound,
			"no continuous profiler attached (enabled by default under -listen; -profile-interval 0 disables it)")
		return
	}
	if id := strings.TrimPrefix(strings.TrimSuffix(r.URL.Path, "/"), "/api/v1/profiles"); id != "" {
		id = strings.TrimPrefix(id, "/")
		info, blob, ok := p.Get(id)
		if !ok {
			httpapi.Errorf(w, http.StatusNotFound, httpapi.CodeNotFound,
				"unknown profile id %q (captures live in a byte-budgeted ring; it may have been evicted)", id)
			return
		}
		if v := r.URL.Query().Get("summary"); v == "1" || v == "true" {
			httpapi.WriteJSON(w, info)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".pb.gz"))
		w.Write(blob)
		return
	}
	q := r.URL.Query()
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	httpapi.WriteJSON(w, map[string]any{
		"profiles": p.List(q.Get("type"), q.Get("trigger"), limit),
		"stats":    p.Stats(),
	})
}

// handleModels serves the compiled-program catalog:
//
//	GET /api/v1/models         every deployed program: name + spec
//	GET /api/v1/models/{name}  one program's spec (name match is
//	                           case-insensitive)
//
// 404 until a source is attached (plain -listen runs deploy none).
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	fn := s.models.Load()
	if fn == nil {
		httpapi.Error(w, http.StatusNotFound, httpapi.CodeNotFound,
			"no compiled programs deployed")
		return
	}
	models := (*fn)()
	name := strings.TrimPrefix(strings.TrimSuffix(r.URL.Path, "/"), "/api/v1/models")
	name = strings.TrimPrefix(name, "/")
	if name == "" {
		httpapi.WriteJSON(w, map[string]any{"models": models})
		return
	}
	for _, m := range models {
		if strings.EqualFold(m.Name, name) {
			httpapi.WriteJSON(w, m)
			return
		}
	}
	have := make([]string, len(models))
	for i, m := range models {
		have[i] = m.Name
	}
	httpapi.Errorf(w, http.StatusNotFound, httpapi.CodeNotFound,
		"unknown model %q (deployed: %s)", name, strings.Join(have, ", "))
}

// handleTraces serves the request-trace query surface:
//
//	GET /api/v1/traces        retained trace summaries, newest first,
//	                          filterable by ?tenant=, ?min_duration=
//	                          (Go duration or milliseconds), ?error=1,
//	                          ?limit=N; plus tracer stats
//	GET /api/v1/traces/{id}   one trace's full span waterfall
//
// 404 until a tracer is attached (tracing is opt-in via serve flags).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	rt := s.reqTracer.Load()
	if rt == nil {
		httpapi.Error(w, http.StatusNotFound, httpapi.CodeNotFound,
			"no request tracer attached (enable tracing with serve -trace-sample)")
		return
	}
	if id := strings.TrimPrefix(strings.TrimSuffix(r.URL.Path, "/"), "/api/v1/traces"); id != "" {
		id = strings.TrimPrefix(id, "/")
		snap, ok := rt.Get(id)
		if !ok {
			httpapi.Errorf(w, http.StatusNotFound, httpapi.CodeNotFound,
				"unknown trace id %q (traces are retained in a bounded ring; it may have been evicted)", id)
			return
		}
		httpapi.WriteJSON(w, snap)
		return
	}
	q := r.URL.Query()
	var f obs.ReqTraceFilter
	f.Tenant = q.Get("tenant")
	if v := q.Get("min_duration"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			f.MinDurMS = float64(d) / float64(time.Millisecond)
		} else if ms, err := strconv.ParseFloat(v, 64); err == nil {
			f.MinDurMS = ms
		} else {
			httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				"bad min_duration %q (want a duration like 100ms or milliseconds)", v)
			return
		}
	}
	if v := q.Get("error"); v == "1" || v == "true" {
		f.ErrorOnly = true
	}
	f.Limit = 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				"bad limit %q", v)
			return
		}
		f.Limit = n
	}
	httpapi.WriteJSON(w, map[string]any{
		"traces": rt.List(f),
		"stats":  rt.Stats(),
	})
}

// handleIngest forwards /api/v1/ingest and /api/v1/tenants* to the
// mounted ingest service, or answers 503 while none is mounted (serve
// mounts it after training; plain -listen runs never do).
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	h := s.ingest.Load()
	if h == nil {
		httpapi.Error(w, http.StatusServiceUnavailable, httpapi.CodeUnavailable,
			"no ingest service mounted")
		return
	}
	(*h).ServeHTTP(w, r)
}

// snapshotHandler serves a late-bound snapshot source as indented JSON,
// or the 404 envelope with a hint while no source is attached.
func (s *Server) snapshotHandler(p *atomic.Pointer[snapshotFn], missing string) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		fn := p.Load()
		if fn == nil {
			httpapi.Error(w, http.StatusNotFound, httpapi.CodeNotFound, missing)
			return
		}
		httpapi.WriteJSON(w, (*fn)())
	}
}

// Start listens on addr (host:port; port 0 picks a free one) and serves
// in a background goroutine until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go func() {
		err := s.httpSrv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.serveErr <- err
	}()
	obs.Log().Info("telemetry server listening", "url", s.URL())
	return nil
}

// Addr returns the bound listen address (empty before Start).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL (empty before Start).
func (s *Server) URL() string {
	a := s.Addr()
	if a == "" {
		return ""
	}
	return "http://" + a
}

// Shutdown ends open event streams and gracefully drains the HTTP
// server. Safe to call more than once; later calls return the first
// call's result.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil || s.httpSrv == nil {
		return nil
	}
	s.shutdownOnce.Do(func() {
		close(s.closing)
		err := s.httpSrv.Shutdown(ctx)
		if serr := <-s.serveErr; err == nil {
			err = serr
		}
		s.shutdownErr = err
	})
	return s.shutdownErr
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `hpcmal telemetry
  /healthz      liveness
  /readyz       readiness (503 until model trained and scraper running)
  /metrics      Prometheus text exposition
  /events       detection-event stream (NDJSON; SSE with Accept: text/event-stream)
  /dashboard    live dashboard (HTML)
  /api/v1/buildinfo      binary identity (JSON)
  /api/v1/manifest       in-flight run manifest (JSON)
  /api/v1/quality        detection scoreboard: confusion, F1, calibration (JSON)
  /api/v1/drift          per-counter PSI/KS vs the training baseline (JSON)
  /api/v1/alerts         alert-rule engine state (JSON)
  /api/v1/alerts/history retained alert/drift/alarm events (JSON)
  /api/v1/series         time-series catalog (JSON)
  /api/v1/query_range    ?metric=&from=&to=&step=&agg= (JSON)
  /api/v1/ingest         fleet window ingest (POST; GET for stats)
  /api/v1/tenants        per-tenant summaries, /{id}/quality, /{id}/drift (JSON)
  /api/v1/traces         retained request traces (?tenant= &min_duration= &error= &limit=)
  /api/v1/traces/{id}    one trace's span waterfall (JSON)
  /api/v1/models         deployed inference programs: precision, widths, agreement (JSON)
  /api/v1/models/{name}  one program's full spec incl. scale table (JSON)
  /api/v1/profiles       continuous-profiler captures (?type= &trigger= &limit=) (JSON)
  /api/v1/profiles/{id}  raw pprof blob for "go tool pprof"; ?summary=1 for top-N JSON
  /debug/flightrecorder  flight-recorder rings (JSON)
  /debug/pprof  profiling (on-demand CPU captures capped at 1; 409 on contention)
  (legacy /quality /drift /alerts /alerts/history /manifest /buildinfo
   still answer, with a Deprecation header)
`)
}

// handleHealthz is pure liveness: the process is up and serving HTTP.
// It is never gated on model state — a daemon mid-training is alive.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok uptime_s=%.1f\n", time.Since(s.started).Seconds())
}

// handleReadyz is readiness: 503 with a reason until the attached gate
// reports ready (serve gates on "model trained AND tsdb scraper
// running"). With no gate attached it mirrors liveness.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if fn := s.ready.Load(); fn != nil {
		if ok, reason := (*fn)(); !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "not ready: %s\n", reason)
			return
		}
	}
	fmt.Fprintf(w, "ready uptime_s=%.1f\n", time.Since(s.started).Seconds())
}

// parseQueryTime parses a /api/v1/query_range time bound: "now",
// "now-<duration>" (e.g. "now-5m"), a Unix timestamp in seconds, or one
// in milliseconds (values above 1e12 — i.e. any real ms timestamp —
// are taken as ms). Empty falls back to def.
func parseQueryTime(v string, now time.Time, def int64) (int64, error) {
	switch {
	case v == "":
		return def, nil
	case v == "now":
		return now.UnixMilli(), nil
	case strings.HasPrefix(v, "now-"):
		d, err := time.ParseDuration(v[len("now-"):])
		if err != nil {
			return 0, fmt.Errorf("bad relative time %q: %w", v, err)
		}
		return now.Add(-d).UnixMilli(), nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q (want now, now-<dur>, or unix seconds/ms)", v)
	}
	if f > 1e12 {
		return int64(f), nil
	}
	return int64(f * 1000), nil
}

// parseQueryStep parses the step parameter: a Go duration ("30s") or a
// bare number of seconds. Empty or zero asks for the answering tier's
// native resolution.
func parseQueryStep(v string) (int64, error) {
	if v == "" {
		return 0, nil
	}
	if d, err := time.ParseDuration(v); err == nil {
		return d.Milliseconds(), nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad step %q (want a duration like 30s or seconds)", v)
	}
	return int64(f * 1000), nil
}

// handleSeries serves the tsdb catalog, or 404 while no store is
// attached (plain -listen runs have no historical store).
func (s *Server) handleSeries(w http.ResponseWriter, _ *http.Request) {
	st := s.store.Load()
	if st == nil {
		httpapi.Error(w, http.StatusNotFound, httpapi.CodeNotFound,
			"no time-series store attached")
		return
	}
	httpapi.WriteJSON(w, st.Series())
}

// handleQueryRange answers ?metric=&from=&to=&step=&agg= range queries
// against the embedded store. Defaults: from=now-5m, to=now, step=tier
// native, agg=avg. Unknown metrics are 404; malformed parameters 400.
func (s *Server) handleQueryRange(w http.ResponseWriter, r *http.Request) {
	st := s.store.Load()
	if st == nil {
		httpapi.Error(w, http.StatusNotFound, httpapi.CodeNotFound,
			"no time-series store attached")
		return
	}
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		httpapi.Error(w, http.StatusBadRequest, httpapi.CodeBadRequest,
			"missing metric parameter")
		return
	}
	now := time.Now()
	fromMS, err := parseQueryTime(q.Get("from"), now, now.Add(-5*time.Minute).UnixMilli())
	if err != nil {
		httpapi.Error(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
		return
	}
	toMS, err := parseQueryTime(q.Get("to"), now, now.UnixMilli())
	if err != nil {
		httpapi.Error(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
		return
	}
	stepMS, err := parseQueryStep(q.Get("step"))
	if err != nil {
		httpapi.Error(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
		return
	}
	result, err := st.QueryRange(metric, fromMS, toMS, stepMS, q.Get("agg"))
	if err != nil {
		if errors.Is(err, tsdb.ErrUnknownMetric) {
			httpapi.Error(w, http.StatusNotFound, httpapi.CodeNotFound, err.Error())
			return
		}
		httpapi.Error(w, http.StatusBadRequest, httpapi.CodeBadRequest, err.Error())
		return
	}
	httpapi.WriteJSON(w, result)
}

// handleAlertsHistory serves the store's retained alert/drift/alarm
// events — history that outlives the alert engine's current state.
func (s *Server) handleAlertsHistory(w http.ResponseWriter, _ *http.Request) {
	st := s.store.Load()
	if st == nil {
		httpapi.Error(w, http.StatusNotFound, httpapi.CodeNotFound,
			"no time-series store attached")
		return
	}
	httpapi.WriteJSON(w, st.Events())
}

func (s *Server) handleBuildInfo(w http.ResponseWriter, _ *http.Request) {
	httpapi.WriteJSON(w, obs.Build())
}

// handleMetrics renders the registry as Prometheus text, appending the
// server's own meta-series (build info, uptime) so scrapers see the
// serving binary's identity too. The event bus's delivery/drop totals
// arrive through the registry itself — New mirrors the bus into it via
// AttachMetrics — so they render exactly once.
//
// Scrapers that accept application/openmetrics-text get the OpenMetrics
// 1.0 rendering instead: same families plus trace-id exemplars on
// histogram buckets and the mandatory `# EOF` terminator. The default
// 0.0.4 output is byte-for-byte what it was before exemplars existed —
// the exposition golden tests pin it.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", obs.OpenMetricsContentType)
		if err := obs.WriteOpenMetrics(w, s.cfg.registry.Snapshot()); err != nil {
			return
		}
		bi := obs.Build()
		fmt.Fprintf(w, "# TYPE hpcmal_build_info gauge\nhpcmal_build_info{version=%s,revision=%s,go=%s} 1\n",
			obs.QuoteLabel(bi.Version), obs.QuoteLabel(bi.Revision), obs.QuoteLabel(bi.GoVersion))
		fmt.Fprintf(w, "# TYPE hpcmal_uptime_seconds gauge\nhpcmal_uptime_seconds %g\n",
			time.Since(s.started).Seconds())
		s.writeProfileCaptures(w, true)
		fmt.Fprint(w, "# EOF\n")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w, s.cfg.registry.Snapshot()); err != nil {
		return
	}
	bi := obs.Build()
	fmt.Fprintf(w, "# TYPE hpcmal_build_info gauge\nhpcmal_build_info{version=%s,revision=%s,go=%s} 1\n",
		obs.QuoteLabel(bi.Version), obs.QuoteLabel(bi.Revision), obs.QuoteLabel(bi.GoVersion))
	fmt.Fprintf(w, "# TYPE hpcmal_uptime_seconds gauge\nhpcmal_uptime_seconds %g\n",
		time.Since(s.started).Seconds())
	s.writeProfileCaptures(w, false)
}

// writeProfileCaptures appends the profiler's captures-by-cause table
// as the labeled family profile_captures_total{type,trigger}. The
// registry cannot render labeled series (its metrics are plain names),
// so these lines are hand-written next to hpcmal_build_info; the
// profiler's unlabeled ring gauges and drop counters flow through the
// registry like any metric. Written only while a profiler is attached,
// keeping the pre-profiler exposition byte-stable.
func (s *Server) writeProfileCaptures(w http.ResponseWriter, openMetrics bool) {
	p := s.profiler.Load()
	if p == nil {
		return
	}
	byCause := p.Stats().ByCause
	if len(byCause) == 0 {
		return
	}
	if openMetrics {
		// OpenMetrics names the family without the _total suffix.
		fmt.Fprint(w, "# TYPE profile_captures counter\n")
	} else {
		fmt.Fprint(w, "# TYPE profile_captures_total counter\n")
	}
	for _, c := range byCause {
		fmt.Fprintf(w, "profile_captures_total{type=%s,trigger=%s} %d\n",
			obs.QuoteLabel(c.Type), obs.QuoteLabel(c.Trigger), c.Count)
	}
}

func (s *Server) handleManifest(w http.ResponseWriter, _ *http.Request) {
	m := s.manifest.Load()
	if m == nil {
		httpapi.Error(w, http.StatusNotFound, httpapi.CodeNotFound,
			"no run manifest registered")
		return
	}
	httpapi.WriteJSON(w, m)
}

// handleEvents streams bus events for as long as the client stays
// connected: one JSON object per line (NDJSON) by default, or Server-Sent
// Events when the client asks for text/event-stream. A slow client's
// backlog is bounded by the subscription buffer — the bus drops the
// oldest events rather than stalling the pipeline.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream") ||
		r.URL.Query().Get("sse") == "1"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sub := s.cfg.bus.Subscribe(s.cfg.eventBuffer)
	defer sub.Close()

	// SSE streams get periodic comment-frame heartbeats so an idle
	// stream survives proxy and load-balancer idle timeouts. NDJSON
	// framing is line-delimited JSON only — never heartbeat it.
	var keepalive <-chan time.Time
	if sse {
		t := time.NewTicker(s.cfg.sseKeepAlive)
		defer t.Stop()
		keepalive = t.C
	}

	enc := json.NewEncoder(w)
	for {
		select {
		case e, ok := <-sub.Events():
			if !ok {
				return
			}
			if sse {
				fmt.Fprint(w, "data: ")
			}
			if err := enc.Encode(e); err != nil {
				return
			}
			if sse {
				fmt.Fprint(w, "\n")
			}
			flusher.Flush()
		case <-keepalive:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.closing:
			return
		}
	}
}

package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestModelsEndpoints pins the /api/v1/models surface: 404 until a
// source attaches, list + per-name lookup (case-insensitive) after, the
// httpapi envelope on unknown names, and detach restoring 404.
func TestModelsEndpoints(t *testing.T) {
	s, _, _ := testServer(t)
	if code, body, _ := get(t, s.Handler(), "/api/v1/models"); code != 404 ||
		!strings.Contains(body, `"error"`) {
		t.Fatalf("before attach = %d %q, want 404 envelope", code, body)
	}
	s.SetModels(func() []ModelInfo {
		return []ModelInfo{{
			Name: "J48",
			Spec: map[string]any{"precision": "int8", "agreement": 1.0},
		}}
	})
	code, body, hdr := get(t, s.Handler(), "/api/v1/models")
	if code != 200 || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("list = %d %q", code, hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, `"models"`) || !strings.Contains(body, `"J48"`) ||
		!strings.Contains(body, `"int8"`) {
		t.Fatalf("list body = %q", body)
	}
	for _, path := range []string{"/api/v1/models/J48", "/api/v1/models/j48", "/api/v1/models/j48/"} {
		code, body, _ = get(t, s.Handler(), path)
		if code != 200 || !strings.Contains(body, `"agreement"`) {
			t.Fatalf("%s = %d %q", path, code, body)
		}
	}
	code, body, _ = get(t, s.Handler(), "/api/v1/models/nope")
	if code != 404 || !strings.Contains(body, "unknown model") || !strings.Contains(body, "J48") {
		t.Fatalf("unknown = %d %q", code, body)
	}
	req := httptest.NewRequest("POST", "/api/v1/models", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 405 {
		t.Fatalf("POST = %d, want 405", rec.Code)
	}
	s.SetModels(nil)
	if code, _, _ := get(t, s.Handler(), "/api/v1/models"); code != 404 {
		t.Fatalf("after detach = %d, want 404", code)
	}
}

package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func testServer(t *testing.T) (*Server, *obs.Registry, *obs.Bus) {
	t.Helper()
	reg := obs.NewRegistry()
	bus := obs.NewBus()
	s := New(WithRegistry(reg), WithBus(bus), WithTracer(obs.NewTracer()), WithEventBuffer(8))
	return s, reg, bus
}

func get(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String(), rec.Result().Header
}

// TestMetricsEndpoint pins the exposition contract end to end: content
// type, the exact counter/gauge/histogram rendering of a known registry,
// and the server's own meta-series.
func TestMetricsEndpoint(t *testing.T) {
	s, reg, _ := testServer(t)
	reg.Counter("online.alarms").Add(2)
	reg.Gauge("parallel.online.monitor.workers").Set(4)
	h := reg.Histogram("online.alarm_latency_windows", []float64{1, 2})
	h.Observe(1)
	h.Observe(8)

	code, body, hdr := get(t, s.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	// The bus and span-tracer mirrors (AttachMetrics in New) put the
	// event-bus counters and the span-eviction counter in the registry
	// itself, so they render once, in sorted order, at zero.
	want := `# TYPE obs_events_dropped_total counter
obs_events_dropped_total 0
# TYPE obs_events_published_total counter
obs_events_published_total 0
# TYPE obs_spans_dropped_total counter
obs_spans_dropped_total 0
# TYPE online_alarms_total counter
online_alarms_total 2
# TYPE obs_events_subscribers gauge
obs_events_subscribers 0
# TYPE parallel_online_monitor_workers gauge
parallel_online_monitor_workers 4
# TYPE online_alarm_latency_windows histogram
online_alarm_latency_windows_bucket{le="1"} 1
online_alarm_latency_windows_bucket{le="2"} 1
online_alarm_latency_windows_bucket{le="+Inf"} 2
online_alarm_latency_windows_sum 9
online_alarm_latency_windows_count 2
`
	if !strings.HasPrefix(body, want) {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want prefix ---\n%s", body, want)
	}
	for _, meta := range []string{"hpcmal_build_info{", "hpcmal_uptime_seconds ",
		"obs_events_published_total ", "obs_events_dropped_total ", "obs_events_subscribers "} {
		if !strings.Contains(body, meta) {
			t.Errorf("missing meta-series %q", meta)
		}
	}
}

func TestHealthzAndIndexAndBuildInfo(t *testing.T) {
	s, _, _ := testServer(t)
	if code, body, _ := get(t, s.Handler(), "/healthz"); code != 200 || !strings.HasPrefix(body, "ok uptime_s=") {
		t.Errorf("healthz = %d %q", code, body)
	}
	if code, body, _ := get(t, s.Handler(), "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	code, body, hdr := get(t, s.Handler(), "/buildinfo")
	if code != 200 || hdr.Get("Content-Type") != "application/json" {
		t.Fatalf("buildinfo = %d %q", code, hdr.Get("Content-Type"))
	}
	var bi obs.BuildInfo
	if err := json.Unmarshal([]byte(body), &bi); err != nil {
		t.Fatalf("buildinfo not JSON: %v", err)
	}
	if bi.GoVersion == "" {
		t.Error("buildinfo missing go version")
	}
	if code, _, _ := get(t, s.Handler(), "/nope"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestManifestEndpoint(t *testing.T) {
	s, _, _ := testServer(t)
	if code, _, _ := get(t, s.Handler(), "/manifest"); code != 404 {
		t.Errorf("manifest before SetManifest = %d, want 404", code)
	}
	m := obs.NewManifest("hpcmal", "serve")
	m.Seed = 7
	s.SetManifest(m)
	code, body, _ := get(t, s.Handler(), "/manifest")
	if code != 200 {
		t.Fatalf("manifest = %d", code)
	}
	var got obs.Manifest
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Command != "serve" || got.Seed != 7 || got.Build == nil {
		t.Errorf("manifest = %+v", got)
	}
}

// TestEventsStreamNDJSON subscribes over a real HTTP connection and
// receives a published alarm as one NDJSON line.
func TestEventsStreamNDJSON(t *testing.T) {
	s, _, bus := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	waitSubscribed(t, bus)
	bus.Publish(obs.Event{Type: "alarm", Sample: "rootkit_001", Class: "rootkit", Window: 5, Value: 0.06})

	line := readLine(t, resp.Body)
	var e obs.Event
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("stream line %q: %v", line, err)
	}
	if e.Type != "alarm" || e.Sample != "rootkit_001" || e.Window != 5 {
		t.Errorf("event = %+v", e)
	}
}

// TestEventsStreamSSE checks the Server-Sent Events framing.
func TestEventsStreamSSE(t *testing.T) {
	s, _, bus := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type = %q", ct)
	}
	waitSubscribed(t, bus)
	bus.Publish(obs.Event{Type: "window", Window: 1})
	line := readLine(t, resp.Body)
	if !strings.HasPrefix(line, "data: {") {
		t.Errorf("SSE line = %q", line)
	}
}

// TestShutdownEndsStreams is the graceful-shutdown contract: Shutdown
// terminates open /events streams (EOF at the client) and returns.
func TestShutdownEndsStreams(t *testing.T) {
	s, _, bus := testServer(t)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(s.URL() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitSubscribed(t, bus)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// The open stream must end rather than hold the drain hostage.
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Logf("stream end err (acceptable): %v", err)
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if _, err := http.Get(s.URL() + "/healthz"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}
}

func TestPprofIndex(t *testing.T) {
	s, _, _ := testServer(t)
	if code, body, _ := get(t, s.Handler(), "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index = %d", code)
	}
}

func waitSubscribed(t *testing.T, bus *obs.Bus) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for bus.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func readLine(t *testing.T, r io.Reader) string {
	t.Helper()
	type res struct {
		line string
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		line, err := bufio.NewReader(r).ReadString('\n')
		ch <- res{line, err}
	}()
	select {
	case out := <-ch:
		if out.err != nil {
			t.Fatalf("read stream: %v", out.err)
		}
		return strings.TrimSpace(out.line)
	case <-time.After(5 * time.Second):
		t.Fatal("no stream line within 5s")
		return ""
	}
}

// TestMetricsExposeBusDrops pins satellite behaviour: drop-oldest losses
// on the event bus surface as a counter in /metrics, not just a private
// atomic.
func TestMetricsExposeBusDrops(t *testing.T) {
	s, _, bus := testServer(t)
	sub := bus.Subscribe(2)
	defer sub.Close()
	for i := 0; i < 6; i++ {
		bus.Publish(obs.Event{Type: "window", Window: i})
	}
	_, body, _ := get(t, s.Handler(), "/metrics")
	if !strings.Contains(body, "obs_events_dropped_total 4") {
		t.Fatalf("dropped counter missing from exposition:\n%s", body)
	}
	if !strings.Contains(body, "obs_events_published_total 6") {
		t.Fatalf("published counter missing from exposition:\n%s", body)
	}
	if strings.Count(body, "# TYPE obs_events_dropped_total") != 1 {
		t.Fatalf("dropped counter family rendered more than once:\n%s", body)
	}
}

// TestQualityEndpoints covers the four late-bound model-quality routes:
// 404 until a source is attached, indented JSON after.
func TestQualityEndpoints(t *testing.T) {
	s, _, _ := testServer(t)
	paths := []string{"/quality", "/drift", "/alerts", "/debug/flightrecorder"}
	for _, p := range paths {
		if code, _, _ := get(t, s.Handler(), p); code != 404 {
			t.Errorf("%s before attach = %d, want 404", p, code)
		}
	}
	s.SetQuality(func() any { return map[string]any{"f1": 0.93} })
	s.SetDrift(func() any { return map[string]any{"drifting": 1} })
	s.SetAlerts(func() any { return map[string]any{"firing": 2} })
	s.SetFlightRecorder(func() any { return map[string]any{"reason": "snapshot"} })
	wants := map[string]string{
		"/quality":              `"f1": 0.93`,
		"/drift":                `"drifting": 1`,
		"/alerts":               `"firing": 2`,
		"/debug/flightrecorder": `"reason": "snapshot"`,
	}
	for _, p := range paths {
		code, body, hdr := get(t, s.Handler(), p)
		if code != 200 || hdr.Get("Content-Type") != "application/json" {
			t.Errorf("%s = %d %q", p, code, hdr.Get("Content-Type"))
		}
		if !strings.Contains(body, wants[p]) {
			t.Errorf("%s body = %q, want %q", p, body, wants[p])
		}
	}
	// Detaching restores 404.
	s.SetQuality(nil)
	if code, _, _ := get(t, s.Handler(), "/quality"); code != 404 {
		t.Errorf("detached /quality = %d, want 404", code)
	}
}

// TestEventsClientDisconnect pins stream cleanup: when an SSE/NDJSON
// client goes away mid-stream, the handler unsubscribes from the bus and
// its goroutine exits (checked under -race via the subscriber count).
func TestEventsClientDisconnect(t *testing.T) {
	s, _, bus := testServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	waitSubscribed(t, bus)
	bus.Publish(obs.Event{Type: "window", Window: 1})
	if line := readLine(t, resp.Body); !strings.HasPrefix(line, "data: {") {
		t.Fatalf("stream line = %q", line)
	}

	// Drop the client mid-stream. The handler must notice and unsubscribe.
	cancel()
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for bus.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler kept its bus subscription after client disconnect")
		}
		// Keep publishing so a handler stuck in the select's event arm
		// still wakes up and hits the write error.
		bus.Publish(obs.Event{Type: "window", Window: 2})
		time.Sleep(5 * time.Millisecond)
	}
	// Later events go nowhere, and publishing is still safe.
	bus.Publish(obs.Event{Type: "alarm"})
}

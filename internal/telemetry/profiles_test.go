package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/profile"
)

// profilesServer builds a server wired to a profiler that has completed
// one interval cycle and one alert-triggered cycle, sharing one registry
// so the profiler's ring gauges render on /metrics.
func profilesServer(t *testing.T) (*Server, *profile.Profiler) {
	t.Helper()
	reg, bus := obs.NewRegistry(), obs.NewBus()
	p := profile.New(profile.Config{
		Interval: time.Hour, // cycles driven synchronously below
		Duty:     5 * time.Millisecond,
		Registry: reg,
		Bus:      bus,
	})
	p.CycleNow("")
	p.CycleNow("alert")
	s := New(WithRegistry(reg), WithBus(bus), WithProfiler(p))
	return s, p
}

func decodeEnvelope(t *testing.T, body string) httpapi.ErrorEnvelope {
	t.Helper()
	var env httpapi.ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("error body %q is not the envelope: %v", body, err)
	}
	return env
}

// TestProfilesList pins the list endpoint: newest-first metadata,
// type/trigger/limit filters, stats attached, bad limit rejected.
func TestProfilesList(t *testing.T) {
	s, _ := profilesServer(t)
	h := s.Handler()

	var out struct {
		Profiles []profile.CaptureInfo `json:"profiles"`
		Stats    profile.Stats         `json:"stats"`
	}
	code, body, _ := get(t, h, "/api/v1/profiles")
	if code != 200 {
		t.Fatalf("list: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Profiles) != 10 { // 2 cycles x (cpu + 4 snapshots)
		t.Fatalf("profiles = %d, want 10", len(out.Profiles))
	}
	if out.Stats.Captures != 10 || len(out.Stats.ByCause) == 0 {
		t.Fatalf("stats = %+v", out.Stats)
	}

	code, body, _ = get(t, h, "/api/v1/profiles?type=cpu&trigger=alert&limit=5")
	if code != 200 {
		t.Fatalf("filtered list: %d", code)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Profiles) != 1 {
		t.Fatalf("filtered profiles = %+v, want the one alert cpu capture", out.Profiles)
	}
	if p0 := out.Profiles[0]; p0.Type != "cpu" || p0.Trigger != "alert" || !p0.Pinned {
		t.Fatalf("alert capture = %+v", p0)
	}

	if code, body, _ := get(t, h, "/api/v1/profiles?limit=bogus"); code != http.StatusBadRequest ||
		decodeEnvelope(t, body).Error.Code != httpapi.CodeBadRequest {
		t.Fatalf("bad limit: %d %s", code, body)
	}
}

// TestProfileDownloadAndSummary: /{id} streams the raw gzipped pprof
// blob for `go tool pprof`; ?summary=1 returns the parsed top-N JSON.
func TestProfileDownloadAndSummary(t *testing.T) {
	s, p := profilesServer(t)
	h := s.Handler()
	info, _ := p.Latest(profile.TypeHeap)

	code, body, hdr := get(t, h, "/api/v1/profiles/"+info.ID)
	if code != 200 {
		t.Fatalf("download: %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type = %q", ct)
	}
	if cd := hdr.Get("Content-Disposition"); !strings.Contains(cd, info.ID+".pb.gz") {
		t.Fatalf("content disposition = %q", cd)
	}
	if len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
		t.Fatalf("blob does not start with the gzip magic: % x", body[:2])
	}

	code, body, hdr = get(t, h, "/api/v1/profiles/"+info.ID+"?summary=1")
	if code != 200 || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("summary: %d %q", code, hdr.Get("Content-Type"))
	}
	var got profile.CaptureInfo
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != info.ID || got.Summary == nil || got.Summary.SampleType != "inuse_space" {
		t.Fatalf("summary = %+v", got)
	}

	if code, body, _ := get(t, h, "/api/v1/profiles/no-such-id"); code != http.StatusNotFound ||
		decodeEnvelope(t, body).Error.Code != httpapi.CodeNotFound {
		t.Fatalf("unknown id: %d %s", code, body)
	}
}

// TestProfilesWithoutProfiler: 404 with the standard envelope until a
// profiler is attached, and the exposition stays free of profile series.
func TestProfilesWithoutProfiler(t *testing.T) {
	s, _, _ := testServer(t)
	code, body, _ := get(t, s.Handler(), "/api/v1/profiles")
	if code != http.StatusNotFound || decodeEnvelope(t, body).Error.Code != httpapi.CodeNotFound {
		t.Fatalf("profiles without profiler: %d %s", code, body)
	}
	if _, body, _ := get(t, s.Handler(), "/metrics"); strings.Contains(body, "profile_captures_total") {
		t.Fatal("exposition mentions profile_captures_total with no profiler attached")
	}
}

// TestMetricsProfileSeries: with an attached profiler, both exposition
// formats carry the labeled captures-by-cause family plus the ring
// gauges and drop counter that flow through the shared registry.
func TestMetricsProfileSeries(t *testing.T) {
	s, _ := profilesServer(t)

	_, body, _ := get(t, s.Handler(), "/metrics")
	for _, want := range []string{
		"# TYPE profile_captures_total counter",
		`profile_captures_total{type="cpu",trigger="interval"} 1`,
		`profile_captures_total{type="cpu",trigger="alert"} 1`,
		`profile_captures_total{type="heap",trigger="alert"} 1`,
		"profile_ring_bytes ",
		"profile_ring_captures 10",
		"# TYPE profile_dropped_total counter",
		"profile_dropped_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("0.0.4 exposition missing %q:\n%s", want, body)
		}
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	om := rec.Body.String()
	for _, want := range []string{
		"# TYPE profile_captures counter", // OM family drops _total
		`profile_captures_total{type="cpu",trigger="alert"} 1`,
		"profile_dropped_total 0",
	} {
		if !strings.Contains(om, want) {
			t.Errorf("OpenMetrics exposition missing %q:\n%s", want, om)
		}
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Errorf("OpenMetrics exposition must end with # EOF, got %q", om[max(0, len(om)-40):])
	}
}

// TestPprofProfileContention: while any CPU profile is in flight the
// on-demand /debug/pprof/profile endpoint answers 409 with the standard
// envelope and a Retry-After hint instead of racing runtime/pprof.
func TestPprofProfileContention(t *testing.T) {
	s, _, _ := testServer(t)
	if !profile.TryAcquireCPU() {
		t.Skip("cpu profile slot held elsewhere")
	}
	defer profile.ReleaseCPU()

	code, body, hdr := get(t, s.Handler(), "/debug/pprof/profile?seconds=1")
	if code != http.StatusConflict {
		t.Fatalf("contended capture: %d %s", code, body)
	}
	if env := decodeEnvelope(t, body); env.Error.Code != "profile_in_progress" {
		t.Fatalf("envelope = %+v", env)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("409 must carry a Retry-After hint")
	}
}

package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// seedTrace commits one trace into rt and returns its id.
func seedTrace(t *testing.T, rt *obs.ReqTracer, tenant string, dur time.Duration, errMsg string) string {
	t.Helper()
	at := rt.Sample(obs.TraceContext{}, "ingest", tenant, 0)
	if at == nil {
		t.Fatal("tracer declined a ratio-1 sample")
	}
	at.AddSpan("ingest.accept", 0, int64(time.Millisecond),
		obs.ReqAttr{Key: "windows", Value: 3})
	if errMsg != "" {
		at.SetError(errMsg)
	}
	at.End(int64(dur))
	return at.TraceID()
}

func TestTracesEndpoint(t *testing.T) {
	s, _, _ := testServer(t)

	// No tracer attached: the surface exists but answers 404 with a hint.
	code, body, _ := get(t, s.Handler(), "/api/v1/traces")
	if code != http.StatusNotFound || !strings.Contains(body, "trace-sample") {
		t.Fatalf("no-tracer response = %d %s", code, body)
	}

	rt := obs.NewReqTracer(obs.ReqTracerConfig{HeadRatio: 1})
	s.SetReqTracer(rt)
	fast := seedTrace(t, rt, "acme", 2*time.Millisecond, "")
	slow := seedTrace(t, rt, "beta", 500*time.Millisecond, "")
	bad := seedTrace(t, rt, "acme", 3*time.Millisecond, "queue full")

	type listResp struct {
		Traces []obs.ReqTraceSummary `json:"traces"`
		Stats  obs.ReqTraceStats     `json:"stats"`
	}
	decodeList := func(path string) listResp {
		t.Helper()
		code, body, _ := get(t, s.Handler(), path)
		if code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, code, body)
		}
		var lr listResp
		if err := json.Unmarshal([]byte(body), &lr); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return lr
	}

	all := decodeList("/api/v1/traces")
	if len(all.Traces) != 3 || all.Stats.Started != 3 {
		t.Fatalf("list = %+v", all)
	}
	// Newest first.
	if all.Traces[0].TraceID != bad {
		t.Fatalf("list not newest-first: %+v", all.Traces)
	}
	if got := decodeList("/api/v1/traces?tenant=beta"); len(got.Traces) != 1 || got.Traces[0].TraceID != slow {
		t.Fatalf("tenant filter: %+v", got.Traces)
	}
	if got := decodeList("/api/v1/traces?min_duration=100ms"); len(got.Traces) != 1 || got.Traces[0].TraceID != slow {
		t.Fatalf("min_duration filter: %+v", got.Traces)
	}
	if got := decodeList("/api/v1/traces?min_duration=100"); len(got.Traces) != 1 {
		t.Fatalf("bare-millisecond min_duration: %+v", got.Traces)
	}
	if got := decodeList("/api/v1/traces?error=1"); len(got.Traces) != 1 || got.Traces[0].TraceID != bad {
		t.Fatalf("error filter: %+v", got.Traces)
	}
	if got := decodeList("/api/v1/traces?limit=2"); len(got.Traces) != 2 {
		t.Fatalf("limit: %+v", got.Traces)
	}

	// Bad query values are 400s, not silent full listings.
	if code, _, _ := get(t, s.Handler(), "/api/v1/traces?min_duration=soon"); code != http.StatusBadRequest {
		t.Fatalf("bad min_duration: %d", code)
	}
	if code, _, _ := get(t, s.Handler(), "/api/v1/traces?limit=many"); code != http.StatusBadRequest {
		t.Fatalf("bad limit: %d", code)
	}

	// The waterfall endpoint returns the full span payload.
	code, body, _ = get(t, s.Handler(), "/api/v1/traces/"+fast)
	if code != http.StatusOK {
		t.Fatalf("get %s: %d %s", fast, code, body)
	}
	var snap obs.ReqTraceSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.TraceID != fast || len(snap.Spans) != 1 || snap.Spans[0].Name != "ingest.accept" {
		t.Fatalf("waterfall = %+v", snap)
	}
	if code, body, _ = get(t, s.Handler(), "/api/v1/traces/"+strings.Repeat("0", 32)); code != http.StatusNotFound {
		t.Fatalf("unknown id: %d %s", code, body)
	}

	// Method discipline matches the rest of the API surface.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/api/v1/traces", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE traces: %d", rec.Code)
	}
}

// TestMetricsOpenMetricsNegotiation pins the dual exposition: the
// default scrape stays the byte-stable 0.0.4 text format, while an
// Accept for OpenMetrics switches to the 1.0 format with exemplars and
// the mandatory # EOF terminator.
func TestMetricsOpenMetricsNegotiation(t *testing.T) {
	s, reg, _ := testServer(t)
	h := reg.Histogram("ingest.latency", []float64{0.1, 1})
	h.ObserveExemplar(0.5, "4bf92f3577b34da6a3ce929d0e0e4736", 1500)

	// Default: 0.0.4, no exemplar syntax, no EOF.
	code, body, hdr := get(t, s.Handler(), "/metrics")
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Fatalf("default scrape: %d %q", code, hdr.Get("Content-Type"))
	}
	if strings.Contains(body, "trace_id") || strings.Contains(body, "# EOF") {
		t.Fatalf("0.0.4 exposition leaked OpenMetrics syntax:\n%s", body)
	}

	// Negotiated: OpenMetrics with the exemplar and terminator.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("openmetrics scrape: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.OpenMetricsContentType {
		t.Fatalf("content type = %q", ct)
	}
	om := rec.Body.String()
	if !strings.Contains(om, `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.5 1.5`) {
		t.Fatalf("exemplar missing from OpenMetrics exposition:\n%s", om)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatalf("OpenMetrics exposition not terminated with # EOF:\n%s", om)
	}
	// The server's synthetic families still render before the terminator.
	if !strings.Contains(om, "hpcmal_build_info") {
		t.Fatalf("build info family missing:\n%s", om)
	}
}

package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/httpapi"
	"repro/internal/obs"
)

// TestAPIConformance is the table-driven wire-contract test for the
// versioned API: every JSON endpoint answers errors with the stable
// {"error":{"code","message"}} envelope and the right status code, and
// rejects wrong methods with 405 + Allow.
func TestAPIConformance(t *testing.T) {
	s, _, _ := testServer(t) // nothing attached: sources all missing

	cases := []struct {
		name   string
		method string
		path   string
		status int
		code   string
	}{
		{"quality unattached", "GET", "/api/v1/quality", 404, httpapi.CodeNotFound},
		{"drift unattached", "GET", "/api/v1/drift", 404, httpapi.CodeNotFound},
		{"alerts unattached", "GET", "/api/v1/alerts", 404, httpapi.CodeNotFound},
		{"alerts history unattached", "GET", "/api/v1/alerts/history", 404, httpapi.CodeNotFound},
		{"manifest unattached", "GET", "/api/v1/manifest", 404, httpapi.CodeNotFound},
		{"series no store", "GET", "/api/v1/series", 404, httpapi.CodeNotFound},
		{"query_range no store", "GET", "/api/v1/query_range?metric=x", 404, httpapi.CodeNotFound},
		{"flightrecorder unattached", "GET", "/debug/flightrecorder", 404, httpapi.CodeNotFound},
		{"ingest unmounted", "POST", "/api/v1/ingest", 503, httpapi.CodeUnavailable},
		{"tenants unmounted", "GET", "/api/v1/tenants", 503, httpapi.CodeUnavailable},
		{"tenant subpath unmounted", "GET", "/api/v1/tenants/acme/quality", 503, httpapi.CodeUnavailable},
		{"quality wrong method", "POST", "/api/v1/quality", 405, httpapi.CodeMethodNotAllowed},
		{"series wrong method", "DELETE", "/api/v1/series", 405, httpapi.CodeMethodNotAllowed},
		{"buildinfo wrong method", "PUT", "/api/v1/buildinfo", 405, httpapi.CodeMethodNotAllowed},
		{"legacy alias wrong method", "POST", "/quality", 405, httpapi.CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, nil)
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d want %d: %s", rec.Code, tc.status, rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("content type = %q (plain-text errors are gone)", ct)
			}
			var env httpapi.ErrorEnvelope
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("not an envelope: %v\n%s", err, rec.Body.String())
			}
			if env.Error.Code != tc.code {
				t.Fatalf("code = %q want %q", env.Error.Code, tc.code)
			}
			if env.Error.Message == "" {
				t.Fatal("empty error message")
			}
			if tc.status == 405 && rec.Header().Get("Allow") == "" {
				t.Fatal("405 without Allow header")
			}
		})
	}
}

// TestLegacyAliases asserts every pre-v1 path still answers with a body
// byte-identical to its /api/v1 successor, plus the Deprecation header
// and an RFC 8288 successor-version Link.
func TestLegacyAliases(t *testing.T) {
	s, _, _ := testServer(t)
	// Attach sources so the aliased endpoints have real bodies.
	s.SetQuality(func() any { return map[string]any{"f1": 0.91} })
	s.SetDrift(func() any { return map[string]any{"psi": 0.02} })
	s.SetAlerts(func() any { return map[string]any{"firing": 0} })
	s.SetManifest(&obs.Manifest{})

	pairs := []struct{ legacy, successor string }{
		{"/quality", "/api/v1/quality"},
		{"/drift", "/api/v1/drift"},
		{"/alerts", "/api/v1/alerts"},
		{"/alerts/history", "/api/v1/alerts/history"}, // both 404 (no store): still identical
		{"/manifest", "/api/v1/manifest"},
		{"/buildinfo", "/api/v1/buildinfo"},
	}
	for _, p := range pairs {
		t.Run(p.legacy, func(t *testing.T) {
			fetch := func(path string) (*httptest.ResponseRecorder, string) {
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				return rec, rec.Body.String()
			}
			legacyRec, legacyBody := fetch(p.legacy)
			_, successorBody := fetch(p.successor)
			if legacyBody != successorBody {
				t.Fatalf("alias body differs from successor:\n--- %s\n%s\n--- %s\n%s",
					p.legacy, legacyBody, p.successor, successorBody)
			}
			if dep := legacyRec.Header().Get(httpapi.DeprecationHeader); dep != "true" {
				t.Fatalf("Deprecation = %q", dep)
			}
			link := legacyRec.Header().Get("Link")
			if !strings.Contains(link, p.successor) || !strings.Contains(link, "successor-version") {
				t.Fatalf("Link = %q", link)
			}
			// Canonical paths are never stamped deprecated.
			succRec, _ := fetch(p.successor)
			if succRec.Header().Get(httpapi.DeprecationHeader) != "" {
				t.Fatalf("successor %s carries Deprecation header", p.successor)
			}
		})
	}
}

// TestIngestMount wires a fake ingest handler and asserts the telemetry
// server forwards the whole /api/v1/ingest + /api/v1/tenants subtree.
func TestIngestMount(t *testing.T) {
	s, _, _ := testServer(t)
	s.SetIngest(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		httpapi.WriteJSON(w, map[string]string{"path": r.URL.Path})
	}))
	for _, path := range []string{"/api/v1/ingest", "/api/v1/tenants", "/api/v1/tenants/acme/quality"} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), path) {
			t.Fatalf("%s: %d %s", path, rec.Code, rec.Body.String())
		}
	}
}

package telemetry

import "net/http"

// handleDashboard serves the embedded live dashboard: a single
// self-contained HTML page (no external assets, no build step) that
// polls /api/v1/query_range for sparkline history and follows
// /events?sse=1 for the live alert timeline. It renders even while no
// store is attached — panels show "no data" until /api/v1/* comes up.
func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashboardHTML))
}

// dashboardHTML is the whole dashboard. Panels are driven by the PANELS
// table at the top of the script; each polls one range query every ~2 s
// and draws a canvas sparkline. The alert timeline seeds itself from
// /api/v1/alerts/history, then appends live events from the SSE stream.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>hpcmal dashboard</title>
<style>
  :root { --bg:#0d1117; --panel:#161b22; --line:#58a6ff; --dim:#8b949e;
          --fg:#e6edf3; --warn:#f0883e; --bad:#f85149; --ok:#3fb950; }
  body { background:var(--bg); color:var(--fg); margin:0;
         font:14px/1.4 ui-monospace,SFMono-Regular,Menlo,monospace; }
  header { padding:10px 16px; border-bottom:1px solid #30363d;
           display:flex; gap:16px; align-items:baseline; }
  header h1 { font-size:16px; margin:0; }
  header .meta { color:var(--dim); font-size:12px; }
  #grid { display:grid; grid-template-columns:repeat(auto-fill,minmax(300px,1fr));
          gap:12px; padding:12px 16px; }
  .panel { background:var(--panel); border:1px solid #30363d;
           border-radius:6px; padding:10px 12px; }
  .panel .name { color:var(--dim); font-size:12px; }
  .panel .value { font-size:22px; margin:2px 0 6px; }
  .panel canvas { width:100%; height:48px; display:block; }
  #timeline { margin:0 16px 16px; background:var(--panel);
              border:1px solid #30363d; border-radius:6px; padding:10px 12px; }
  #timeline h2 { font-size:13px; color:var(--dim); margin:0 0 6px; }
  #tl-rows { max-height:220px; overflow-y:auto; }
  .ev { display:flex; gap:10px; padding:2px 0; font-size:12px; }
  .ev .t { color:var(--dim); white-space:nowrap; }
  .ev .ty { min-width:110px; }
  .ev.alarm .ty, .ev.alert .ty { color:var(--bad); }
  .ev.drift .ty { color:var(--warn); }
  .ev.alert_resolved .ty, .ev.drift_resolved .ty { color:var(--ok); }
  .nodata { color:var(--dim); }
  #traces { margin:0 16px 16px; background:var(--panel);
            border:1px solid #30363d; border-radius:6px; padding:10px 12px; }
  #traces h2 { font-size:13px; color:var(--dim); margin:0 0 6px; }
  #tr-rows { max-height:220px; overflow-y:auto; }
  .tr { display:flex; gap:10px; padding:2px 0; font-size:12px; }
  .tr a { color:var(--line); text-decoration:none; }
  .tr .dur { min-width:90px; text-align:right; }
  .tr .keep { min-width:60px; color:var(--warn); }
  .tr.error .keep { color:var(--bad); }
  #models { margin:0 16px 16px; background:var(--panel);
            border:1px solid #30363d; border-radius:6px; padding:10px 12px; }
  #models h2 { font-size:13px; color:var(--dim); margin:0 0 6px; }
  #profiles { margin:0 16px 16px; background:var(--panel);
              border:1px solid #30363d; border-radius:6px; padding:10px 12px; }
  #profiles h2 { font-size:13px; color:var(--dim); margin:0 0 6px; }
  .pf { display:flex; gap:10px; padding:2px 0; font-size:12px; }
  .pf a { color:var(--line); text-decoration:none; }
  .pf .pct { min-width:120px; text-align:right; }
  .pf .fn { overflow:hidden; text-overflow:ellipsis; white-space:nowrap; }
  .mdl { display:flex; gap:10px; padding:2px 0; font-size:12px; }
  .mdl a { color:var(--line); text-decoration:none; }
  .mdl .prec { min-width:70px; }
  .mdl .agree { min-width:110px; }
  .mdl .agree.low { color:var(--warn); }
</style>
</head>
<body>
<header>
  <h1>hpcmal</h1>
  <span class="meta" id="status">connecting…</span>
</header>
<div id="grid"></div>
<div id="timeline">
  <h2>alert / drift / alarm timeline</h2>
  <div id="tl-rows"><span class="nodata">no events yet</span></div>
</div>
<div id="traces">
  <h2>recent request traces (slow / errored / alarm-kept first to survive eviction)</h2>
  <div id="tr-rows"><span class="nodata">no traces yet — enable with serve -trace-sample</span></div>
</div>
<div id="models">
  <h2>deployed models (<a href="/api/v1/models">/api/v1/models</a>)</h2>
  <div id="mdl-rows"><span class="nodata">no compiled programs deployed</span></div>
</div>
<div id="profiles">
  <h2>latest CPU profile (<a href="/api/v1/profiles">/api/v1/profiles</a>)</h2>
  <div id="pf-rows"><span class="nodata">no captures yet — the continuous profiler runs under serve by default</span></div>
</div>
<script>
"use strict";
// Each panel is one range query over the last 5 minutes. Metrics and
// aggregations mirror the serve daemon's registry names.
const PANELS = [
  {name:"windows / sec",    metric:"trace.windows_simulated", agg:"rate", fmt:v=>v.toFixed(1)},
  {name:"alarms / sec",     metric:"online.alarms",           agg:"rate", fmt:v=>v.toFixed(2)},
  {name:"F1",               metric:"quality.f1",              agg:"avg",  fmt:v=>v.toFixed(3)},
  {name:"features drifting",metric:"drift.features_drifting", agg:"max",  fmt:v=>v.toFixed(0)},
  {name:"bus drops / sec",  metric:"obs.events_dropped",      agg:"rate", fmt:v=>v.toFixed(2)},
  {name:"scrape p99 (ms)",  metric:"tsdb.scrape_ms:p99",      agg:"avg",  fmt:v=>v.toFixed(2)},
  // Runtime panel: the runtime/metrics collector's gauges, scraped into
  // the tsdb alongside the detection series.
  {name:"goroutines",       metric:"runtime.goroutines",      agg:"avg",  fmt:v=>v.toFixed(0)},
  {name:"GC pause p99 (ms)",metric:"runtime.gc_pause_p99_ms", agg:"max",  fmt:v=>v.toFixed(2)},
  {name:"heap (MiB)",       metric:"runtime.heap_objects_bytes", agg:"avg", fmt:v=>(v/1048576).toFixed(1)},
];

const grid = document.getElementById("grid");
for (const p of PANELS) {
  const el = document.createElement("div");
  el.className = "panel";
  el.innerHTML = '<div class="name"></div><div class="value nodata">no data</div><canvas></canvas>';
  el.querySelector(".name").textContent = p.name + "  (" + p.metric + ":" + p.agg + ")";
  grid.appendChild(el);
  p.valueEl = el.querySelector(".value");
  p.canvas = el.querySelector("canvas");
}

function spark(canvas, pts) {
  const dpr = window.devicePixelRatio || 1;
  const w = canvas.clientWidth, h = canvas.clientHeight;
  canvas.width = w * dpr; canvas.height = h * dpr;
  const ctx = canvas.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.clearRect(0, 0, w, h);
  if (pts.length < 2) return;
  let lo = Infinity, hi = -Infinity;
  for (const p of pts) { lo = Math.min(lo, p.v); hi = Math.max(hi, p.v); }
  if (hi === lo) { hi = lo + 1; }
  const t0 = pts[0].t_ms, t1 = pts[pts.length - 1].t_ms || t0 + 1;
  const x = t => 2 + (w - 4) * (t - t0) / Math.max(1, t1 - t0);
  const y = v => h - 3 - (h - 6) * (v - lo) / (hi - lo);
  ctx.beginPath();
  ctx.strokeStyle = getComputedStyle(document.body).getPropertyValue("--line");
  ctx.lineWidth = 1.5;
  pts.forEach((p, i) => i ? ctx.lineTo(x(p.t_ms), y(p.v)) : ctx.moveTo(x(p.t_ms), y(p.v)));
  ctx.stroke();
}

async function poll() {
  let live = false;
  for (const p of PANELS) {
    try {
      const u = "/api/v1/query_range?metric=" + encodeURIComponent(p.metric) +
                "&from=now-5m&to=now&agg=" + p.agg;
      const r = await fetch(u);
      if (!r.ok) { continue; }
      const q = await r.json();
      live = true;
      const pts = q.points || [];
      if (pts.length) {
        p.valueEl.textContent = p.fmt(pts[pts.length - 1].v);
        p.valueEl.classList.remove("nodata");
      }
      spark(p.canvas, pts);
    } catch (_) { /* daemon restarting; keep last frame */ }
  }
  document.getElementById("status").textContent =
    live ? "live · " + new Date().toLocaleTimeString() : "waiting for store…";
}

const tlRows = document.getElementById("tl-rows");
let tlEmpty = true;
// Rows are prepended, so feeding oldest-first history leaves the newest
// event at the top — same ordering live SSE events land in.
function addEvent(e) {
  if (tlEmpty) { tlRows.textContent = ""; tlEmpty = false; }
  const row = document.createElement("div");
  row.className = "ev " + (e.type || "");
  const t = document.createElement("span"); t.className = "t";
  t.textContent = e.t_ms ? new Date(e.t_ms).toLocaleTimeString() : "";
  const ty = document.createElement("span"); ty.className = "ty";
  ty.textContent = e.type || "?";
  const msg = document.createElement("span");
  const bits = [];
  if (e.msg) bits.push(e.msg);
  if (e.sample) bits.push(e.sample);
  if (e.class) bits.push(e.class);
  if (e.value !== undefined) bits.push("value=" + e.value);
  msg.textContent = bits.join("  ");
  row.append(t, ty, msg);
  tlRows.prepend(row);
  while (tlRows.childElementCount > 200) tlRows.lastElementChild.remove();
}

async function seedTimeline() {
  try {
    const r = await fetch("/api/v1/alerts/history");
    if (!r.ok) return;
    const h = await r.json();
    for (const e of h.events || []) addEvent(e);
  } catch (_) {}
}

function follow() {
  // The SSE framing of /events ("data: {json}") is EventSource-native.
  const es = new EventSource("/events?sse=1");
  const keep = new Set(["alarm","alert","alert_resolved","drift","drift_resolved"]);
  es.onmessage = m => {
    try {
      const e = JSON.parse(m.data);
      if (keep.has(e.type)) addEvent(e);
    } catch (_) {}
  };
  es.onerror = () => { es.close(); setTimeout(follow, 3000); };
}

// Recent traces: newest-first summaries from the tail-sampled ring.
// Each trace id links to its span-waterfall JSON — the same id the
// /metrics exemplars carry, so a slow histogram bucket is one click
// from the request that landed in it.
const trRows = document.getElementById("tr-rows");
async function pollTraces() {
  try {
    const r = await fetch("/api/v1/traces?limit=12");
    if (!r.ok) return; // 404: no tracer attached — leave the hint row
    const body = await r.json();
    const ts = body.traces || [];
    if (!ts.length) return;
    trRows.textContent = "";
    for (const t of ts) {
      const row = document.createElement("div");
      row.className = "tr" + (t.error ? " error" : "");
      const a = document.createElement("a");
      a.href = "/api/v1/traces/" + t.trace_id;
      a.textContent = t.trace_id;
      const when = document.createElement("span"); when.className = "t";
      when.textContent = new Date(t.start_us / 1000).toLocaleTimeString();
      const dur = document.createElement("span"); dur.className = "dur";
      dur.textContent = t.dur_ms.toFixed(2) + " ms";
      const keep = document.createElement("span"); keep.className = "keep";
      keep.textContent = t.error ? "error" : (t.keep_reason || "");
      const who = document.createElement("span");
      who.textContent = (t.tenant ? t.tenant + " · " : "") + t.name +
                        " · " + t.spans + " spans";
      row.append(when, a, dur, keep, who);
      trRows.appendChild(row);
    }
  } catch (_) {}
}

// Deployed-program catalog: precision, datapath widths, and the
// float-agreement rate of each compiled model; names link to the full
// spec (including the quantization scale table).
const mdlRows = document.getElementById("mdl-rows");
async function pollModels() {
  try {
    const r = await fetch("/api/v1/models");
    if (!r.ok) return; // 404: nothing deployed — leave the hint row
    const body = await r.json();
    const ms = body.models || [];
    if (!ms.length) return;
    mdlRows.textContent = "";
    for (const m of ms) {
      const s = m.spec || {};
      const row = document.createElement("div");
      row.className = "mdl";
      const a = document.createElement("a");
      a.href = "/api/v1/models/" + encodeURIComponent(m.name);
      a.textContent = m.name;
      const prec = document.createElement("span"); prec.className = "prec";
      prec.textContent = s.precision || "?";
      const agree = document.createElement("span"); agree.className = "agree";
      if (s.agreement !== undefined) {
        agree.textContent = "agree " + (s.agreement * 100).toFixed(2) + "%";
        if (s.agreement < 0.99) agree.classList.add("low");
      }
      const det = document.createElement("span");
      det.textContent = s.features + " features · " + s.classes + " classes · w" +
                        s.weight_bits + "/acc" + s.accum_bits +
                        (s.quantizer ? " · " + s.quantizer : "");
      row.append(a, prec, agree, det);
      mdlRows.appendChild(row);
    }
  } catch (_) {}
}

// Latest CPU profile: top-5 functions by flat share from the newest
// capture in the profiler's ring; the capture id links to the raw
// pprof blob (go tool pprof reads the download directly).
const pfRows = document.getElementById("pf-rows");
async function pollProfiles() {
  try {
    const r = await fetch("/api/v1/profiles?type=cpu&limit=1");
    if (!r.ok) return; // 404: profiler disabled — leave the hint row
    const body = await r.json();
    const ps = body.profiles || [];
    if (!ps.length) return;
    const p = ps[0];
    pfRows.textContent = "";
    const head = document.createElement("div");
    head.className = "pf";
    const a = document.createElement("a");
    a.href = "/api/v1/profiles/" + encodeURIComponent(p.id);
    a.textContent = p.id + ".pb.gz";
    const meta = document.createElement("span");
    meta.textContent = new Date(p.t_ms).toLocaleTimeString() +
      " · trigger " + p.trigger + " · " + (p.size_bytes/1024).toFixed(1) + " KiB";
    head.append(a, meta);
    pfRows.appendChild(head);
    const fns = (p.summary && p.summary.functions || []).slice(0, 5);
    for (const f of fns) {
      const row = document.createElement("div");
      row.className = "pf";
      const pct = document.createElement("span"); pct.className = "pct";
      pct.textContent = f.flat_pct.toFixed(1) + "% / " + f.cum_pct.toFixed(1) + "%";
      const fn = document.createElement("span"); fn.className = "fn";
      fn.textContent = f.name;
      row.append(pct, fn);
      pfRows.appendChild(row);
    }
  } catch (_) {}
}

seedTimeline();
follow();
poll();
pollTraces();
pollModels();
pollProfiles();
setInterval(poll, 2000);
setInterval(pollTraces, 3000);
setInterval(pollModels, 10000);
setInterval(pollProfiles, 5000);
</script>
</body>
</html>
`

package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pmu"
	"repro/internal/workload"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.WindowsPerSample = 4
	cfg.SimInstrPerSlice = 500
	return cfg
}

func TestCollectSampleShape(t *testing.T) {
	cfg := testConfig()
	tr, err := CollectSample(cfg, workload.Worm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Class != workload.Worm {
		t.Fatalf("trace class %v", tr.Class)
	}
	if len(tr.Records) != 4 {
		t.Fatalf("got %d records, want 4", len(tr.Records))
	}
	if len(tr.Events) != 16 {
		t.Fatalf("got %d events, want 16 paper features", len(tr.Events))
	}
	for _, rec := range tr.Records {
		if len(rec.Readings) != 16 {
			t.Fatalf("window %d has %d readings", rec.Window, len(rec.Readings))
		}
	}
}

func TestTraceDeterminism(t *testing.T) {
	cfg := testConfig()
	a, err := CollectSample(cfg, workload.Virus, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectSample(cfg, workload.Virus, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		av, bv := a.Records[i].Values(), b.Records[i].Values()
		for j := range av {
			if av[j] != bv[j] {
				t.Fatalf("window %d event %d differs: %v vs %v", i, j, av[j], bv[j])
			}
		}
	}
}

func TestTraceSeedsDiffer(t *testing.T) {
	cfg := testConfig()
	a, _ := CollectSample(cfg, workload.Virus, 1)
	b, _ := CollectSample(cfg, workload.Virus, 2)
	same := true
	for i := range a.Records {
		av, bv := a.Records[i].Values(), b.Records[i].Values()
		for j := range av {
			if av[j] != bv[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestReadingsHaveActivity(t *testing.T) {
	cfg := testConfig()
	tr, err := CollectSample(cfg, workload.Benign, 3)
	if err != nil {
		t.Fatal(err)
	}
	// At least branch-instructions and L1-dcache-loads must be nonzero in
	// some window (the program is running).
	nonzero := make(map[string]bool)
	for _, rec := range tr.Records {
		for _, rd := range rec.Readings {
			if rd.Value > 0 {
				nonzero[rd.Name] = true
			}
		}
	}
	for _, name := range []string{"branch-instructions", "L1-dcache-loads", "bus-cycles"} {
		if !nonzero[name] {
			t.Fatalf("event %s never nonzero across trace", name)
		}
	}
}

func TestMultiplexingFlagChangesFractions(t *testing.T) {
	cfgM := testConfig()
	trM, err := CollectSample(cfgM, workload.Trojan, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfgE := testConfig()
	cfgE.Multiplex = false
	trE, err := CollectSample(cfgE, workload.Trojan, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 16 events over 8 counters: multiplexed run must show fractions < 1,
	// exact run must show 1.
	for _, rd := range trM.Records[0].Readings {
		if rd.TimeRunningFrac >= 1 {
			t.Fatalf("multiplexed event %s frac %v, want < 1", rd.Name, rd.TimeRunningFrac)
		}
	}
	for _, rd := range trE.Records[0].Readings {
		if rd.TimeRunningFrac != 1 {
			t.Fatalf("exact event %s frac %v, want 1", rd.Name, rd.TimeRunningFrac)
		}
	}
}

func TestNoiseInjectionChangesCounts(t *testing.T) {
	clean := testConfig()
	noisy := testConfig()
	noisy.NoiseIPC = 1.0

	a, err := CollectSample(clean, workload.Backdoor, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectSample(noisy, workload.Backdoor, 7)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range a.Records {
		av, bv := a.Records[i].Values(), b.Records[i].Values()
		for j := range av {
			if av[j] != bv[j] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("cache-sharing noise had no effect on measured counts")
	}
}

func TestCustomEventSet(t *testing.T) {
	cfg := testConfig()
	cfg.Events = []string{"instructions", "cpu-cycles"}
	tr, err := CollectSample(cfg, workload.Rootkit, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 || tr.Events[0] != "instructions" {
		t.Fatalf("events = %v", tr.Events)
	}
	// 2 events fit in 8 counters: no multiplexing.
	for _, rd := range tr.Records[0].Readings {
		if rd.TimeRunningFrac != 1 {
			t.Fatal("2-event program should not multiplex")
		}
	}
}

func TestNewContainerErrors(t *testing.T) {
	cfg := testConfig()
	if _, err := NewContainer(cfg, nil, 1); err == nil {
		t.Fatal("accepted nil program")
	}
	cfg.Events = []string{"not-an-event"}
	prog, _ := workload.NewSample(workload.Benign, 1)
	if _, err := NewContainer(cfg, prog, 1); err == nil {
		t.Fatal("accepted unknown event")
	}
}

func TestWriteText(t *testing.T) {
	cfg := testConfig()
	tr, err := CollectSample(cfg, workload.Worm, 11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# class: worm") {
		t.Fatalf("missing class header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	dataLines := 0
	for _, l := range lines {
		if !strings.HasPrefix(l, "#") {
			dataLines++
			if got := len(strings.Split(l, ",")); got != 16 {
				t.Fatalf("data line has %d fields, want 16: %s", got, l)
			}
		}
	}
	if dataLines != 4 {
		t.Fatalf("%d data lines, want 4", dataLines)
	}
}

func TestPaperRowBudget(t *testing.T) {
	// Default config: 16 windows/sample * 3070 samples ≈ 49k rows,
	// matching the paper's "around 50,000 rows".
	d := DefaultConfig()
	rows := d.WindowsPerSample * workload.PaperTotalSamples
	if rows < 45000 || rows > 55000 {
		t.Fatalf("default row budget %d not around 50,000", rows)
	}
	if d.SamplePeriod != 0.01 {
		t.Fatalf("default sampling period %v, want 10ms", d.SamplePeriod)
	}
	if len(d.Events) != 16 {
		t.Fatalf("default events %d, want 16", len(d.Events))
	}
}

func TestBackdoorLowActivityVsWorm(t *testing.T) {
	// The backdoor's poll-dominated schedule must show visibly lower
	// instruction throughput than the worm's scan loops.
	cfg := testConfig()
	cfg.Events = []string{"instructions"}
	cfg.WindowsPerSample = 12
	avg := func(class workload.Class) float64 {
		var sum float64
		var n int
		for seed := uint64(0); seed < 4; seed++ {
			tr, err := CollectSample(cfg, class, seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range tr.Records {
				sum += rec.Values()[0]
				n++
			}
		}
		return sum / float64(n)
	}
	back := avg(workload.Backdoor)
	worm := avg(workload.Worm)
	if back >= worm/2 {
		t.Fatalf("backdoor activity %v not well below worm %v", back, worm)
	}
}

func TestDefaultEventsMatchPaper(t *testing.T) {
	d := DefaultConfig()
	want := pmu.PaperFeatures()
	for i, e := range d.Events {
		if e != want[i] {
			t.Fatalf("default event %d = %s, want %s", i, e, want[i])
		}
	}
}

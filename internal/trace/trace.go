// Package trace reproduces the paper's measurement channel: each
// application sample runs inside an isolated container (its own simulated
// machine), and a perf-like sampler reads the programmed HPC events every
// 10 ms of simulated time, writing one record per window.
//
// The paper: "Perf tools present in the Linux kernel are used to read the
// values of the HPC from the Performance Monitoring Unit. [...] HPC are
// read at the sampling period of 10ms. Containers are the isolated systems
// where the malware is executed so that [...] the noise from the execution
// of regular program does not create a bias in the measured values."
package trace

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/micro"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pmu"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Measurement-channel instruments: how much simulated execution the run
// performed, and how long each sampling window takes to simulate.
var (
	mContainers    = obs.GetCounter("trace.containers_provisioned")
	mWindows       = obs.GetCounter("trace.windows_simulated")
	mSlices        = obs.GetCounter("trace.slices_executed")
	mWindowSeconds = obs.GetHistogram("trace.window_sim_seconds", obs.TimeBuckets)
)

// Config controls the sampler.
type Config struct {
	// Machine is the microarchitecture to run on.
	Machine micro.Config
	// Events are the PMU events to program. Defaults to pmu.PaperFeatures.
	Events []string
	// SamplePeriod is the HPC read period in seconds. Default 0.01 (10 ms).
	SamplePeriod float64
	// SlicesPerWindow is the number of scheduler slices per sampling
	// window; multiplex rotation happens per slice. Default 10.
	SlicesPerWindow int
	// SimInstrPerSlice is the instruction budget actually simulated per
	// slice (SMARTS-style sampling); counts are extrapolated to the
	// slice's true instruction count. Default 2000.
	SimInstrPerSlice int
	// WindowsPerSample is how many 10 ms records to collect per
	// application sample. Default 16 (the paper's ~50,000 rows over
	// 3,070 samples).
	WindowsPerSample int
	// Multiplex enables PMU counter multiplexing (the real-hardware
	// behaviour). Disabled only by the ablation experiment.
	Multiplex bool
	// NoiseIPC, when positive, injects a background benign program that
	// shares the machine's caches (no container isolation). Its
	// instructions are not counted — the bias is purely microarchitectural
	// pollution, which is exactly what LXC isolation removes.
	NoiseIPC float64
}

// DefaultConfig returns the paper's measurement configuration on the
// scaled machine.
func DefaultConfig() Config {
	return Config{
		Machine:          micro.DefaultConfig(),
		Events:           pmu.PaperFeatures(),
		SamplePeriod:     0.01,
		SlicesPerWindow:  10,
		SimInstrPerSlice: 2000,
		WindowsPerSample: 16,
		Multiplex:        true,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Machine.Name == "" {
		c.Machine = d.Machine
	}
	if len(c.Events) == 0 {
		c.Events = d.Events
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = d.SamplePeriod
	}
	if c.SlicesPerWindow <= 0 {
		c.SlicesPerWindow = d.SlicesPerWindow
	}
	if c.SimInstrPerSlice <= 0 {
		c.SimInstrPerSlice = d.SimInstrPerSlice
	}
	if c.WindowsPerSample <= 0 {
		c.WindowsPerSample = d.WindowsPerSample
	}
}

// Record is one sampling window: the event readings taken at the end of a
// 10 ms period.
type Record struct {
	Window   int
	Readings []pmu.Reading
}

// Values returns the reading values in event order.
func (r *Record) Values() []float64 {
	return r.AppendValues(make([]float64, 0, len(r.Readings)))
}

// AppendValues appends the reading values in event order to dst and
// returns the extended slice. Callers on hot paths pass a reused
// buffer's dst[:0] to avoid the per-window allocation Values incurs.
func (r *Record) AppendValues(dst []float64) []float64 {
	for _, rd := range r.Readings {
		dst = append(dst, rd.Value)
	}
	return dst
}

// Trace is the full measurement of one application sample.
type Trace struct {
	SampleName string
	Class      workload.Class
	Events     []string
	Records    []Record
}

// Container is one isolated execution environment: a dedicated machine
// running a single application sample, measured by a programmed PMU.
type Container struct {
	cfg     Config
	machine *micro.Machine
	prog    *workload.Program
	unit    *pmu.PMU
	noise   *workload.Program
	src     *rng.Source
}

// NewContainer provisions a container for the given program. seed controls
// the machine's address-space randomization and scheduling jitter.
func NewContainer(cfg Config, prog *workload.Program, seed uint64) (*Container, error) {
	cfg.fillDefaults()
	if prog == nil {
		return nil, fmt.Errorf("trace: nil program")
	}
	opts := []pmu.Option{}
	if !cfg.Multiplex {
		opts = append(opts, pmu.WithoutMultiplexing())
	}
	unit, err := pmu.New(cfg.Events, opts...)
	if err != nil {
		return nil, fmt.Errorf("trace: programming PMU: %w", err)
	}
	c := &Container{
		cfg:     cfg,
		machine: micro.NewMachine(cfg.Machine, seed),
		prog:    prog,
		unit:    unit,
		src:     rng.New(seed ^ 0xc2b2ae3d27d4eb4f),
	}
	if cfg.NoiseIPC > 0 {
		noise, err := workload.NewSample(workload.Benign, seed^0x165667b19e3779f9)
		if err != nil {
			return nil, fmt.Errorf("trace: creating noise program: %w", err)
		}
		c.noise = noise
	}
	mContainers.Inc()
	obs.Log().Trace("container provisioned",
		"sample", prog.Name, "class", prog.Class.String(), "events", len(cfg.Events))
	return c, nil
}

// Run executes the sample for cfg.WindowsPerSample windows and returns its
// trace.
func (c *Container) Run() (*Trace, error) {
	tr := &Trace{
		SampleName: c.prog.Name,
		Class:      c.prog.Class,
		Events:     c.unit.EventNames(),
	}
	sliceDur := c.cfg.SamplePeriod / float64(c.cfg.SlicesPerWindow)
	for w := 0; w < c.cfg.WindowsPerSample; w++ {
		wStart := time.Now()
		slices := make([]micro.Counts, c.cfg.SlicesPerWindow)
		for s := range slices {
			counts, err := c.runSlice(sliceDur)
			if err != nil {
				return nil, err
			}
			slices[s] = counts
		}
		readings, err := c.unit.Measure(slices)
		if err != nil {
			return nil, err
		}
		tr.Records = append(tr.Records, Record{Window: w, Readings: readings})
		mWindows.Inc()
		mSlices.Add(int64(c.cfg.SlicesPerWindow))
		mWindowSeconds.Observe(time.Since(wStart).Seconds())
	}
	return tr, nil
}

// runSlice executes one scheduler slice of the measured program (plus
// optional background noise) and returns the measured program's scaled
// counts.
func (c *Container) runSlice(sliceDur float64) (micro.Counts, error) {
	ph := c.prog.Current()
	trueInstr := float64(c.machine.WindowInstructions(sliceDur, ph.IPC))
	simInstr := c.cfg.SimInstrPerSlice
	if float64(simInstr) > trueInstr {
		simInstr = int(trueInstr)
	}
	var counts micro.Counts
	if simInstr > 0 {
		raw, err := c.machine.ExecuteBlock(ph.Block, simInstr)
		if err != nil {
			return micro.Counts{}, fmt.Errorf("trace: executing %s/%s: %w",
				c.prog.Name, ph.Name, err)
		}
		counts = raw.Scaled(trueInstr / float64(simInstr))
	}
	c.prog.Advance(sliceDur)

	// Background noise shares the cache hierarchy but is not counted:
	// its only effect is microarchitectural pollution.
	if c.noise != nil {
		nph := c.noise.Current()
		nInstr := int(float64(c.cfg.SimInstrPerSlice) * c.cfg.NoiseIPC / nph.IPC)
		if nInstr > 0 {
			if _, err := c.machine.ExecuteBlock(nph.Block, nInstr); err != nil {
				return micro.Counts{}, fmt.Errorf("trace: executing noise: %w", err)
			}
		}
		c.noise.Advance(sliceDur)
	}
	return counts, nil
}

// CollectSample provisions a fresh container for a newly generated sample
// of the given class and runs it to completion. It is the one-call path
// from (class, seed) to a measured trace.
func CollectSample(cfg Config, class workload.Class, seed uint64) (*Trace, error) {
	prog, err := workload.NewSample(class, seed)
	if err != nil {
		return nil, err
	}
	ctr, err := NewContainer(cfg, prog, seed^0x9e3779b97f4a7c15)
	if err != nil {
		return nil, err
	}
	return ctr.Run()
}

// CollectBatch collects n traces of the given class concurrently, one
// container per trace, and returns them in index order. seedFn maps the
// trace index to its seed; because each container derives all randomness
// from that per-index seed, the batch is bit-identical to collecting the
// traces serially, at any worker count. workers <= 0 uses the
// process-wide default; 1 forces the serial path.
func CollectBatch(cfg Config, class workload.Class, n int, seedFn func(i int) uint64, workers int) ([]*Trace, error) {
	if seedFn == nil {
		return nil, fmt.Errorf("trace: nil seed function")
	}
	return parallel.Map(parallel.Options{Name: "trace.collect", Workers: workers},
		n, func(i int) (*Trace, error) {
			return CollectSample(cfg, class, seedFn(i))
		})
}

// WriteText writes the trace in the paper's intermediate per-sample text
// format (one line per window: comma-separated event values), the files
// that the paper's pipeline later merged into a CSV.
func (t *Trace) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# sample: %s\n# class: %s\n# events: %s\n",
		t.SampleName, t.Class, strings.Join(t.Events, ",")); err != nil {
		return err
	}
	for _, rec := range t.Records {
		vals := rec.Values()
		parts := make([]string, len(vals))
		for i, v := range vals {
			// %g round-trips exactly through strconv.ParseFloat: multiplex
			// extrapolation makes readings fractional, and %.0f used to
			// round that precision away in the collect→merge pipeline.
			parts[i] = fmt.Sprintf("%g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

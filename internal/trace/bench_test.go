package trace

import (
	"testing"

	"repro/internal/workload"
)

func BenchmarkCollectSample(b *testing.B) {
	cfg := DefaultConfig()
	cfg.WindowsPerSample = 4
	cfg.SimInstrPerSlice = 1000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CollectSample(cfg, workload.Trojan, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

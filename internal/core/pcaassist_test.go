package core

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/workload"
)

func TestTrainPCAAssistedEndToEnd(t *testing.T) {
	tbl := quickTable(t)
	train, test, err := tbl.SplitBySample(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	assisted, err := TrainPCAAssisted(train, 8, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if assisted.Name() != "PCA-MLR" {
		t.Fatalf("name %q", assisted.Name())
	}
	correct := 0
	for _, in := range test.Instances {
		p := assisted.Predict(in.Features)
		if p < 0 || p >= workload.NumClasses {
			t.Fatalf("prediction %d out of range", p)
		}
		if p == int(in.Class) {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test.Instances))
	if acc < 1.0/float64(workload.NumClasses) {
		t.Fatalf("assisted accuracy %v below chance", acc)
	}
}

func TestTrainUniformAssisted(t *testing.T) {
	tbl := quickTable(t)
	train, _, err := tbl.SplitBySample(0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	global, err := GlobalTopFeatures(train, 8, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := TrainUniformAssisted(train, global, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Predicts something valid.
	p := uniform.Predict(train.Instances[0].Features)
	if p < 0 || p >= workload.NumClasses {
		t.Fatalf("prediction %d out of range", p)
	}
}

func TestGlobalTopFeaturesBinary(t *testing.T) {
	tbl := quickTable(t)
	top, err := GlobalTopFeaturesBinary(tbl, 8, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 8 {
		t.Fatalf("top = %v", top)
	}
	// Clamp at the attribute count.
	all, err := GlobalTopFeaturesBinary(tbl, 99, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != tbl.NumAttributes() {
		t.Fatalf("clamp failed: %d", len(all))
	}
	// Names must be valid attributes.
	for _, n := range top {
		if _, err := tbl.AttributeIndex(n); err != nil {
			t.Fatalf("unknown ranked attribute %q", n)
		}
	}
}

func TestNewPCAAssistedErrors(t *testing.T) {
	attrs := []string{"a", "b"}
	if _, err := NewPCAAssisted(attrs, map[string][]string{
		"backdoor": {"zzz"},
	}, []string{"a"}, 1); err == nil {
		t.Fatal("accepted unknown custom feature")
	}
	if _, err := NewPCAAssisted(attrs, nil, nil, 1); err == nil {
		t.Fatal("accepted empty global feature set")
	}
	// Valid construction but wrong class count at Train.
	p, err := NewPCAAssisted(attrs, nil, []string{"a"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train([][]float64{{1, 2}}, []int{0}, 2); err == nil {
		t.Fatal("accepted numClasses != workload.NumClasses")
	}
	// Degenerate labels: some class absent entirely.
	x := [][]float64{{1, 2}, {3, 4}}
	y := []int{0, 0}
	if err := p.Train(x, y, workload.NumClasses); err == nil {
		t.Fatal("accepted degenerate label distribution")
	}
}

func TestPCAAssistedPanicsUntrained(t *testing.T) {
	p, err := NewPCAAssisted([]string{"a"}, nil, []string{"a"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before Train")
		}
	}()
	p.Predict([]float64{1})
}

var _ ml.Classifier = (*PCAAssisted)(nil)

package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/ml/linear"
	"repro/internal/workload"
)

// PCAAssisted is the thesis's PCA-assisted multiclass classifier
// (Figure 19): one binary one-vs-rest logistic model per class, each
// trained on that class's own PCA-selected custom feature subset
// (Table 2), combined by maximum class probability. The benign class uses
// the globally top-ranked subset.
type PCAAssisted struct {
	// FeatureSets maps class index -> column indices (into the full
	// attribute vector) that class's expert model uses.
	featureSets [][]int
	experts     []*linear.Logistic
	seed        uint64
	trained     bool
}

// NewPCAAssisted builds the classifier from per-class feature-name sets.
// attrs is the full attribute list of the dataset; sets maps each class
// name (workload.Class.String()) to its custom features; globalSet is
// used for classes absent from sets (benign).
func NewPCAAssisted(attrs []string, sets map[string][]string, globalSet []string, seed uint64) (*PCAAssisted, error) {
	index := func(name string) (int, error) {
		for i, a := range attrs {
			if a == name {
				return i, nil
			}
		}
		return 0, fmt.Errorf("core: custom feature %q not in attributes", name)
	}
	p := &PCAAssisted{seed: seed}
	for _, c := range workload.AllClasses() {
		names, ok := sets[c.String()]
		if !ok {
			names = globalSet
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("core: class %v has no feature set", c)
		}
		cols := make([]int, len(names))
		for i, n := range names {
			j, err := index(n)
			if err != nil {
				return nil, err
			}
			cols[i] = j
		}
		p.featureSets = append(p.featureSets, cols)
	}
	return p, nil
}

// Name implements ml.Classifier.
func (p *PCAAssisted) Name() string { return "PCA-MLR" }

// Train implements ml.Classifier: labels must be the multiclass labels.
func (p *PCAAssisted) Train(x [][]float64, y []int, numClasses int) error {
	if numClasses != workload.NumClasses {
		return fmt.Errorf("core: PCAAssisted needs %d classes, got %d", workload.NumClasses, numClasses)
	}
	if _, err := ml.CheckTrainingSet(x, y, numClasses); err != nil {
		return err
	}
	p.experts = make([]*linear.Logistic, numClasses)
	for c := 0; c < numClasses; c++ {
		cols := p.featureSets[c]
		sub := make([][]float64, len(x))
		lab := make([]int, len(y))
		pos := 0
		for i := range x {
			row := make([]float64, len(cols))
			for k, j := range cols {
				row[k] = x[i][j]
			}
			sub[i] = row
			if y[i] == c {
				lab[i] = 1
				pos++
			}
		}
		if pos == 0 || pos == len(y) {
			return fmt.Errorf("core: class %d has degenerate label distribution", c)
		}
		lg := linear.NewLogistic()
		lg.Seed = p.seed + uint64(c)*101
		// Balance each one-vs-rest expert so probabilities are
		// comparable across classes of very different frequency.
		lg.ClassWeights = []float64{1, float64(len(y)-pos) / float64(pos)}
		if err := lg.Train(sub, lab, 2); err != nil {
			return fmt.Errorf("core: training expert for class %d: %w", c, err)
		}
		p.experts[c] = lg
	}
	p.trained = true
	return nil
}

// Predict implements ml.Classifier: the class whose expert is most
// confident wins.
func (p *PCAAssisted) Predict(features []float64) int {
	if !p.trained {
		panic(ml.ErrNotTrained)
	}
	best, bestScore := 0, -1.0
	for c, expert := range p.experts {
		cols := p.featureSets[c]
		row := make([]float64, len(cols))
		for k, j := range cols {
			row[k] = features[j]
		}
		score := expert.Proba(row)[1]
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// TrainPCAAssisted is the one-call path: derive per-class custom feature
// sets from the training table via discriminative PCA ranking (each
// class's one-vs-rest separation, the ensemble's actual job), build the
// classifier and train it.
func TrainPCAAssisted(train *dataset.Table, k int, coverage float64, seed uint64) (*PCAAssisted, error) {
	custom, err := customFeatureSetsVsRest(train, k, coverage)
	if err != nil {
		return nil, err
	}
	global, err := GlobalTopFeatures(train, k, coverage)
	if err != nil {
		return nil, err
	}
	p, err := NewPCAAssisted(train.Attributes, custom, global, seed)
	if err != nil {
		return nil, err
	}
	if err := p.Train(featureRows(train), train.ClassLabels(), workload.NumClasses); err != nil {
		return nil, err
	}
	return p, nil
}

// TrainUniformAssisted builds the same one-vs-rest ensemble but with one
// shared (non-custom) feature set for every expert — the apples-to-apples
// baseline for Figure 19's custom-vs-non-custom comparison.
func TrainUniformAssisted(train *dataset.Table, features []string, seed uint64) (*PCAAssisted, error) {
	p, err := NewPCAAssisted(train.Attributes, nil, features, seed)
	if err != nil {
		return nil, err
	}
	if err := p.Train(featureRows(train), train.ClassLabels(), workload.NumClasses); err != nil {
		return nil, err
	}
	return p, nil
}

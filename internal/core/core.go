// Package core is the top-level API of the reproduction: it wires the
// simulated measurement substrate (workload → container → PMU → dataset)
// to the ML classifiers, the PCA feature-reduction stage, and the FPGA
// cost model, exposing the handful of calls the command-line tools,
// examples and benchmarks are built from.
//
// The typical flow, mirroring the paper end to end:
//
//	tbl, _ := core.GenerateDataset(core.DatasetConfig{Seed: 1, Scale: 0.1})
//	res, _ := core.RunDetector(tbl, core.DetectorConfig{Classifier: "JRip", Binary: true})
//	fmt.Println(res.Eval.Accuracy(), res.HW.EquivLUTs)
package core

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/hw"
	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/eval"
	"repro/internal/pca"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DatasetConfig controls end-to-end dataset generation.
type DatasetConfig struct {
	// Seed drives every random choice.
	Seed uint64
	// Scale shrinks the paper's Table 1 sample counts proportionally
	// (1.0 = full 3,070-sample database; 0.05 ≈ 150 samples). Values
	// outside (0, 1] are clamped to 1.
	Scale float64
	// Trace overrides the measurement configuration; zero value means
	// the paper defaults (16 features, 10 ms, multiplexed 8-counter PMU).
	Trace trace.Config
}

// GenerateDataset builds the labelled HPC dataset with the paper's class
// distribution at the requested scale.
func GenerateDataset(cfg DatasetConfig) (*dataset.Table, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		cfg.Scale = 1
	}
	gen := dataset.GenConfig{
		Trace:           cfg.Trace,
		SamplesPerClass: map[workload.Class]int{},
		Seed:            cfg.Seed,
	}
	for c, n := range workload.PaperSampleCounts() {
		scaled := int(float64(n)*cfg.Scale + 0.5)
		if scaled < 2 {
			scaled = 2
		}
		gen.SamplesPerClass[c] = scaled
	}
	return dataset.Generate(gen)
}

// DetectorConfig describes one train/evaluate run.
type DetectorConfig struct {
	// Classifier is one of ClassifierNames().
	Classifier string
	// Features restricts the attribute set (nil = all 16).
	Features []string
	// Binary selects malware-vs-benign; false runs the 6-class problem.
	Binary bool
	// TrainFrac is the training share (default 0.7, the paper's split).
	TrainFrac float64
	// Seed controls the split and stochastic learners.
	Seed uint64
	// SplitByRows uses the paper's row-level 70/30 split; the default
	// splits by application sample (leakage-free).
	SplitByRows bool
	// SkipHardware disables the FPGA cost model step.
	SkipHardware bool
}

// DetectorResult bundles evaluation and hardware cost.
type DetectorResult struct {
	Classifier string
	Features   []string
	Eval       *eval.Result
	// HW is nil when SkipHardware was set.
	HW *hw.Report
}

// RunDetector trains and evaluates one classifier on the table per the
// paper's protocol and (unless disabled) synthesizes its hardware cost.
func RunDetector(tbl *dataset.Table, cfg DetectorConfig) (*DetectorResult, error) {
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.7
	}
	work := tbl
	feats := cfg.Features
	if len(feats) > 0 {
		var err error
		work, err = tbl.SelectFeatures(feats)
		if err != nil {
			return nil, err
		}
	} else {
		feats = append([]string{}, tbl.Attributes...)
	}

	var train, test *dataset.Table
	var err error
	if cfg.SplitByRows {
		train, test, err = work.SplitRows(cfg.TrainFrac, cfg.Seed)
	} else {
		train, test, err = work.SplitBySample(cfg.TrainFrac, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}

	c, err := NewClassifier(cfg.Classifier, cfg.Seed)
	if err != nil {
		return nil, err
	}
	numClasses := workload.NumClasses
	var yTrain, yTest []int
	if cfg.Binary {
		numClasses = 2
		yTrain, yTest = train.BinaryLabels(), test.BinaryLabels()
	} else {
		yTrain, yTest = train.ClassLabels(), test.ClassLabels()
	}
	res, err := eval.TrainAndTest(c,
		featureRows(train), yTrain, featureRows(test), yTest, numClasses)
	if err != nil {
		return nil, err
	}

	out := &DetectorResult{Classifier: cfg.Classifier, Features: feats, Eval: res}
	if !cfg.SkipHardware {
		out.HW, err = SynthesizeTrained(c, numClasses, len(feats))
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SynthesizeTrained runs the FPGA cost model on any trained classifier
// from this repository.
func SynthesizeTrained(c ml.Classifier, numClasses, dim int) (*hw.Report, error) {
	if nb, ok := c.(*bayes.NaiveBayes); ok {
		return hw.SynthesizeBayes(nb, numClasses, dim)
	}
	return hw.Synthesize(c)
}

// featureRows exposes a table's features as [][]float64 without copying.
func featureRows(t *dataset.Table) [][]float64 {
	rows := make([][]float64, len(t.Instances))
	for i := range t.Instances {
		rows[i] = t.Instances[i].Features
	}
	return rows
}

// FitPCA fits PCA over all rows of the table.
func FitPCA(tbl *dataset.Table) (*pca.PCA, error) {
	return pca.Fit(tbl.FeatureMatrix(), tbl.Attributes)
}

// CustomFeatureSets reproduces Table 2: per malware class, PCA over that
// class's rows together with the benign rows yields a top-k custom
// feature set (ranked by cluster-separating component loadings, the
// thesis's PCA+clustering hybrid); the intersection across classes is the
// common set.
func CustomFeatureSets(tbl *dataset.Table, k int, coverage float64) (custom map[string][]string, common []string, err error) {
	groups := make(map[string]pca.Group)
	for _, c := range workload.MalwareClasses() {
		sub := tbl.FilterClasses(c, workload.Benign)
		if sub.NumInstances() < 2 {
			return nil, nil, fmt.Errorf("core: class %v has too few rows for PCA", c)
		}
		groups[c.String()] = pca.Group{X: sub.FeatureMatrix(), Labels: sub.BinaryLabels()}
	}
	return pca.ClassCustomFeatures(groups, tbl.Attributes, k, coverage)
}

// customFeatureSetsVsRest ranks features per class by discriminative PCA
// with one-vs-rest labels (class against everything else), which is what
// each ensemble expert must separate.
func customFeatureSetsVsRest(tbl *dataset.Table, k int, coverage float64) (map[string][]string, error) {
	x := tbl.FeatureMatrix()
	p, err := pca.Fit(x, tbl.Attributes)
	if err != nil {
		return nil, err
	}
	custom := make(map[string][]string)
	for _, c := range workload.AllClasses() {
		labels := make([]int, len(tbl.Instances))
		for i, in := range tbl.Instances {
			if in.Class == c {
				labels[i] = 1
			}
		}
		ranked, err := p.RankAttributesDiscriminative(x, labels, coverage)
		if err != nil {
			return nil, fmt.Errorf("core: ranking for class %v: %w", c, err)
		}
		kk := k
		if kk > len(ranked) {
			kk = len(ranked)
		}
		names := make([]string, kk)
		for i := 0; i < kk; i++ {
			names[i] = ranked[i].Name
		}
		custom[c.String()] = names
	}
	return custom, nil
}

// GlobalTopFeatures ranks all 16 attributes by PCA over the whole table
// and returns the top k (the paper's non-custom reduced feature set).
func GlobalTopFeatures(tbl *dataset.Table, k int, coverage float64) ([]string, error) {
	p, err := FitPCA(tbl)
	if err != nil {
		return nil, err
	}
	return p.TopAttributes(k, coverage), nil
}

// GlobalTopFeaturesBinary ranks the attributes by discriminative PCA with
// malware-vs-benign labels — the reduced feature sets the binary study
// (Figure 13) feeds its classifiers.
func GlobalTopFeaturesBinary(tbl *dataset.Table, k int, coverage float64) ([]string, error) {
	x := tbl.FeatureMatrix()
	p, err := pca.Fit(x, tbl.Attributes)
	if err != nil {
		return nil, err
	}
	ranked, err := p.RankAttributesDiscriminative(x, tbl.BinaryLabels(), coverage)
	if err != nil {
		return nil, err
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = ranked[i].Name
	}
	return names, nil
}

// PCAPlotPoints projects the rows of the named malware class and the
// benign class onto the top two principal components (the paper's
// Figures 9-12). Returned labels are 1 for malware rows.
func PCAPlotPoints(tbl *dataset.Table, class workload.Class) (points [][2]float64, labels []int, err error) {
	if !class.IsMalware() {
		return nil, nil, fmt.Errorf("core: PCA plots are per malware family, got %v", class)
	}
	sub := tbl.FilterClasses(class, workload.Benign)
	if sub.NumInstances() < 3 {
		return nil, nil, fmt.Errorf("core: too few rows for class %v", class)
	}
	p, err := pca.Fit(sub.FeatureMatrix(), sub.Attributes)
	if err != nil {
		return nil, nil, err
	}
	for _, in := range sub.Instances {
		proj, err := p.Project(in.Features, 2)
		if err != nil {
			return nil, nil, err
		}
		points = append(points, [2]float64{proj[0], proj[1]})
		if in.Class.IsMalware() {
			labels = append(labels, 1)
		} else {
			labels = append(labels, 0)
		}
	}
	return points, labels, nil
}

// SortedFeatureList returns feature names sorted alphabetically; handy
// for stable output in tools.
func SortedFeatureList(features []string) []string {
	out := append([]string{}, features...)
	sort.Strings(out)
	return out
}

package core

import (
	"fmt"
	"sync"

	"repro/internal/hw"
	"repro/internal/infer"
	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/linear"
	"repro/internal/ml/mlp"
	"repro/internal/ml/oner"
	"repro/internal/ml/rules"
	"repro/internal/ml/tree"
)

// CompileFunc lowers a trained classifier to a synthesizable netlist for
// the `emit` path. module is the requested Verilog module name; numAttrs
// the input feature count. Registered per classifier; models without one
// (NaiveBayes, MLP) cannot be emitted as combinational Verilog.
type CompileFunc func(module string, c ml.Classifier, numAttrs int) (*hw.Comb, error)

// registry is the process-wide classifier catalog plus the per-model
// netlist compilers. Both are populated once by init below; adding a
// model to every CLI command and figure runner is one register call.
var (
	registry    = ml.NewRegistry()
	compilersMu sync.RWMutex
	compilers   = map[string]CompileFunc{}
)

// register wires one classifier into the system: the generic spec
// (factory, study membership, display label) and, when the model has a
// hardware lowering, its netlist compiler.
func register(spec ml.Spec, compile CompileFunc) {
	registry.MustRegister(spec)
	if compile != nil {
		compilersMu.Lock()
		compilers[spec.Name] = compile
		compilersMu.Unlock()
	}
}

// The rule/tree learners carry hardware-oriented complexity caps
// (bounded intervals, leaves and rules): the paper implements every
// trained model on an FPGA, where each interval/node/condition is a
// physical comparator, so unbounded WEKA-default models on ~50k noisy
// rows would be unsynthesizable. The caps cost well under a point of
// accuracy on this data.
func init() {
	register(ml.Spec{
		Name: "OneR", Binary: true,
		Description: "one-rule classifier over the single best feature",
		New: func(seed uint64) ml.Classifier {
			o := oner.New()
			o.MaxIntervals = 16
			return o
		},
	}, func(module string, c ml.Classifier, numAttrs int) (*hw.Comb, error) {
		return hw.CompileOneR(c.(*oner.OneR), numAttrs)
	})
	register(ml.Spec{
		Name: "JRip", Binary: true,
		Description: "RIPPER rule induction (WEKA JRip)",
		New: func(seed uint64) ml.Classifier {
			j := rules.New()
			j.Seed = seed
			j.MaxRulesPerClass = 8
			return j
		},
	}, func(module string, c ml.Classifier, numAttrs int) (*hw.Comb, error) {
		return hw.CompileJRip(c.(*rules.JRip), numAttrs)
	})
	register(ml.Spec{
		Name: "J48", Binary: true,
		Description: "C4.5 decision tree (WEKA J48)",
		New: func(seed uint64) ml.Classifier {
			j := tree.NewJ48()
			j.MinLeaf = 50
			j.MaxDepth = 12
			return j
		},
	}, func(module string, c ml.Classifier, numAttrs int) (*hw.Comb, error) {
		return hw.CompileTree(c.(*tree.J48), numAttrs)
	})
	register(ml.Spec{
		Name: "REPTree", Binary: true,
		Description: "reduced-error-pruned decision tree",
		New: func(seed uint64) ml.Classifier {
			r := tree.NewREPTree()
			r.Seed = seed
			r.MinLeaf = 50
			r.MaxDepth = 12
			return r
		},
	}, func(module string, c ml.Classifier, numAttrs int) (*hw.Comb, error) {
		return hw.CompileTree(c.(*tree.REPTree), numAttrs)
	})
	register(ml.Spec{
		Name: "NaiveBayes", Binary: true,
		Description: "Gaussian naive Bayes over log-transformed counts",
		New: func(seed uint64) ml.Classifier {
			nb := bayes.New()
			nb.LogTransform = true
			return nb
		},
	}, nil)
	register(ml.Spec{
		Name: "Logistic", Label: "MLR", Binary: true, Multiclass: true,
		Description: "multinomial logistic regression (the paper's MLR)",
		New: func(seed uint64) ml.Classifier {
			lg := linear.NewLogistic()
			lg.Seed = seed
			return lg
		},
	}, func(module string, c ml.Classifier, numAttrs int) (*hw.Comb, error) {
		return hw.CompileLinear(module, c.(*linear.Logistic), numAttrs)
	})
	register(ml.Spec{
		Name: "SVM", Binary: true, Multiclass: true,
		Description: "linear SVM trained by Pegasos SGD",
		New: func(seed uint64) ml.Classifier {
			s := linear.NewSVM()
			s.Seed = seed
			return s
		},
	}, func(module string, c ml.Classifier, numAttrs int) (*hw.Comb, error) {
		return hw.CompileLinear(module, c.(*linear.SVM), numAttrs)
	})
	register(ml.Spec{
		Name: "MLP", Binary: true, Multiclass: true,
		Description: "one-hidden-layer perceptron (WEKA MultilayerPerceptron)",
		New: func(seed uint64) ml.Classifier {
			m := mlp.New()
			m.Seed = seed
			return m
		},
	}, nil)
}

// Classifiers exposes the registry (read-only use: Lookup, Names,
// NamesWhere) so CLI front ends can render the catalog.
func Classifiers() *ml.Registry { return registry }

// ClassifierNames lists the binary-study classifiers in the order the
// paper's Figure 13 presents them.
func ClassifierNames() []string {
	return registry.NamesWhere(func(s ml.Spec) bool { return s.Binary })
}

// MulticlassNames lists the classifiers the paper evaluates on the
// 6-class problem (Figure 17): MLR (Logistic), MLP and SVM.
func MulticlassNames() []string {
	return registry.NamesWhere(func(s ml.Spec) bool { return s.Multiclass })
}

// MulticlassLabel returns the display label the multiclass figures use
// for a classifier name (the paper labels Logistic "MLR").
func MulticlassLabel(name string) string {
	if s, ok := registry.Lookup(name); ok {
		return s.DisplayLabel()
	}
	return name
}

// NewClassifier builds a fresh classifier by name with paper-appropriate
// defaults. seed makes stochastic learners reproducible.
func NewClassifier(name string, seed uint64) (ml.Classifier, error) {
	c, err := registry.New(name, seed)
	if err != nil {
		return nil, fmt.Errorf("core: unknown classifier %q (have %v)", name, ClassifierNames())
	}
	return c, nil
}

// EmittableNames lists the classifiers that have a registered netlist
// compiler, in registration order.
func EmittableNames() []string {
	compilersMu.RLock()
	defer compilersMu.RUnlock()
	return registry.NamesWhere(func(s ml.Spec) bool {
		_, ok := compilers[s.Name]
		return ok
	})
}

// CompileDetector lowers a trained classifier to its combinational
// netlist using the compiler registered for name. The caller still owns
// module naming and fixed-point configuration on the returned Comb.
func CompileDetector(name, module string, c ml.Classifier, numAttrs int) (*hw.Comb, error) {
	compilersMu.RLock()
	compile, ok := compilers[name]
	compilersMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: %s has no hardware lowering (emittable: %v)",
			name, EmittableNames())
	}
	return compile(module, c, numAttrs)
}

// CompilableNames lists the classifiers the batch-inference engine
// (internal/infer) compiles, in registration order — the software
// counterpart of EmittableNames.
func CompilableNames() []string {
	return registry.NamesWhere(func(s ml.Spec) bool {
		return infer.Compilable(s.New(1))
	})
}

// CompileProgram lowers a trained classifier into its flat
// batch-inference program — the software twin of CompileDetector's
// netlist lowering. Options select the numeric domain: the zero-option
// call compiles the exact float64 program; pass
// infer.WithPrecision(infer.Int8) plus infer.WithCalibration(rows) for
// the fixed-point kernels. Callers that may hold non-compiling
// classifiers should fall back to ml.Batch on infer.ErrNotCompilable.
func CompileProgram(c ml.Classifier, opts ...infer.Option) (*infer.Program, error) {
	return infer.Compile(c, opts...)
}

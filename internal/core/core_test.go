package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/trace"
	"repro/internal/workload"
)

// quickTable generates a small dataset once per test binary.
var cachedTable *dataset.Table

func quickTable(t *testing.T) *dataset.Table {
	t.Helper()
	if cachedTable != nil {
		return cachedTable
	}
	tbl, err := GenerateDataset(DatasetConfig{
		Seed:  1,
		Scale: 0.02, // ~8-23 samples per class (min 2 applies to worm)
		Trace: trace.Config{WindowsPerSample: 6, SimInstrPerSlice: 600, Multiplex: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedTable = tbl
	return tbl
}

func TestGenerateDatasetScaling(t *testing.T) {
	tbl := quickTable(t)
	counts := tbl.SampleCounts()
	// Trojan is the biggest family in Table 1; scaling preserves that.
	if counts[workload.Trojan] <= counts[workload.Worm] {
		t.Fatalf("scaled counts lost Table 1 shape: %v", counts)
	}
	if tbl.NumAttributes() != 16 {
		t.Fatalf("attributes %d", tbl.NumAttributes())
	}
}

func TestNewClassifierRegistry(t *testing.T) {
	for _, name := range ClassifierNames() {
		c, err := NewClassifier(name, 1)
		if err != nil {
			t.Fatalf("NewClassifier(%s): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("classifier %q reports name %q", name, c.Name())
		}
	}
	if _, err := NewClassifier("AdaBoost", 1); err == nil {
		t.Fatal("accepted unknown classifier")
	}
	for _, name := range MulticlassNames() {
		if _, err := NewClassifier(name, 1); err != nil {
			t.Fatalf("multiclass name %s not in registry", name)
		}
	}
}

func TestRunDetectorBinary(t *testing.T) {
	tbl := quickTable(t)
	res, err := RunDetector(tbl, DetectorConfig{Classifier: "J48", Binary: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Eval.Accuracy() < 0.6 {
		t.Fatalf("binary J48 accuracy %v implausibly low", res.Eval.Accuracy())
	}
	if res.HW == nil || res.HW.EquivLUTs <= 0 {
		t.Fatal("hardware report missing")
	}
	if len(res.Features) != 16 {
		t.Fatalf("default features %d", len(res.Features))
	}
}

func TestRunDetectorFeatureSubset(t *testing.T) {
	tbl := quickTable(t)
	res, err := RunDetector(tbl, DetectorConfig{
		Classifier: "OneR",
		Binary:     true,
		Features:   []string{"branch-instructions", "cache-misses", "node-stores", "bus-cycles"},
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Features) != 4 {
		t.Fatalf("features %v", res.Features)
	}
	if _, err := RunDetector(tbl, DetectorConfig{
		Classifier: "OneR", Binary: true, Features: []string{"bogus"},
	}); err == nil {
		t.Fatal("accepted unknown feature")
	}
}

func TestRunDetectorMulticlass(t *testing.T) {
	tbl := quickTable(t)
	res, err := RunDetector(tbl, DetectorConfig{
		Classifier: "Logistic", Binary: false, Seed: 5, SkipHardware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HW != nil {
		t.Fatal("SkipHardware ignored")
	}
	if res.Eval.Confusion.NumClasses != workload.NumClasses {
		t.Fatalf("confusion classes %d", res.Eval.Confusion.NumClasses)
	}
	// Multiclass should beat uniform chance (1/6).
	if res.Eval.Accuracy() < 0.3 {
		t.Fatalf("multiclass accuracy %v below sanity bound", res.Eval.Accuracy())
	}
}

func TestRunDetectorSplitModes(t *testing.T) {
	tbl := quickTable(t)
	bySample, err := RunDetector(tbl, DetectorConfig{
		Classifier: "J48", Binary: true, Seed: 6, SkipHardware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	byRows, err := RunDetector(tbl, DetectorConfig{
		Classifier: "J48", Binary: true, Seed: 6, SkipHardware: true, SplitByRows: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Row-level splitting leaks sample identity to a memorizing learner,
	// so it must not be (much) worse than the leakage-free split.
	if byRows.Eval.Accuracy()+0.1 < bySample.Eval.Accuracy() {
		t.Fatalf("row split %v far below sample split %v",
			byRows.Eval.Accuracy(), bySample.Eval.Accuracy())
	}
}

func TestCustomFeatureSets(t *testing.T) {
	tbl := quickTable(t)
	custom, common, err := CustomFeatureSets(tbl, 8, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(custom) != 5 {
		t.Fatalf("custom sets for %d classes, want 5", len(custom))
	}
	for name, set := range custom {
		if len(set) != 8 {
			t.Fatalf("class %s custom set has %d features", name, len(set))
		}
	}
	if len(common) > 8 {
		t.Fatalf("common features %d > k", len(common))
	}
	// Every common feature must appear in every class's custom set.
	for _, f := range common {
		for name, set := range custom {
			found := false
			for _, a := range set {
				if a == f {
					found = true
				}
			}
			if !found {
				t.Fatalf("common feature %s missing from %s's set %v", f, name, set)
			}
		}
	}
}

func TestGlobalTopFeatures(t *testing.T) {
	tbl := quickTable(t)
	top4, err := GlobalTopFeatures(tbl, 4, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(top4) != 4 {
		t.Fatalf("top4 = %v", top4)
	}
	top8, err := GlobalTopFeatures(tbl, 8, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// top4 must be a prefix of top8 (same ranking).
	for i := range top4 {
		if top4[i] != top8[i] {
			t.Fatalf("ranking instability: %v vs %v", top4, top8)
		}
	}
}

func TestPCAPlotPoints(t *testing.T) {
	tbl := quickTable(t)
	pts, labels, err := PCAPlotPoints(tbl, workload.Rootkit)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(labels) || len(pts) == 0 {
		t.Fatalf("points %d labels %d", len(pts), len(labels))
	}
	hasM, hasB := false, false
	for _, l := range labels {
		if l == 1 {
			hasM = true
		} else {
			hasB = true
		}
	}
	if !hasM || !hasB {
		t.Fatal("plot points missing a class")
	}
	if _, _, err := PCAPlotPoints(tbl, workload.Benign); err == nil {
		t.Fatal("accepted benign as plot class")
	}
}

func TestSynthesizeTrainedNaiveBayes(t *testing.T) {
	tbl := quickTable(t)
	c, _ := NewClassifier("NaiveBayes", 1)
	x := featureRows(tbl)
	if err := c.Train(x, tbl.BinaryLabels(), 2); err != nil {
		t.Fatal(err)
	}
	r, err := SynthesizeTrained(c, 2, tbl.NumAttributes())
	if err != nil {
		t.Fatal(err)
	}
	if r.EquivLUTs <= 0 {
		t.Fatal("empty NB hardware report")
	}
}

func TestSortedFeatureList(t *testing.T) {
	in := []string{"c", "a", "b"}
	out := SortedFeatureList(in)
	if out[0] != "a" || in[0] != "c" {
		t.Fatal("SortedFeatureList wrong or mutated input")
	}
}

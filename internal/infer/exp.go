package infer

import "math"

// The MLP label kernel spends about half its per-row budget in the
// seven math.Exp calls behind the hidden-layer sigmoids, and each call
// is a serial dependency chain the CPU cannot overlap across the
// call boundary. exp4 evaluates four exponentials with their chains
// interleaved in straight-line code, so the four rows of the blocked
// kernel share the multiplier pipeline instead of waiting on it in
// turn.
//
// Bit-equality with the interpreted path is non-negotiable, so exp4
// does not use its own approximation: it replays the exact operation
// sequence of the Go runtime's math.Exp for this architecture. On
// amd64 that is the SLEEF-derived assembly in math/exp_amd64.s, which
// picks a fused (FMA) or unfused (SSE) instruction sequence at
// startup; expInit probes both replays against math.Exp and keeps
// whichever one bit-matches. On architectures where neither replay
// matches (arm64 and s390x ship different assembly), exp4 degrades to
// four math.Exp calls — still correct, just without the interleaving
// win. The probe and TestExp4MatchesMathExp pin the equality.

// Constants transcribed from math/exp_amd64.s (SLEEF, public domain):
// the ln2 split used for Cody-Waite reduction, the Taylor
// coefficients, and the overflow bound.
const (
	expLog2E = 1.4426950408889634073599246810018920
	expLn2U  = 0.69314718055966295651160180568695068359375
	expLn2L  = 0.28235290563031577122588448175013436025525412068e-12
	expOver  = 7.09782712893384e+02

	expC8 = 2.4801587301587301587e-5
	expC7 = 1.9841269841269841270e-4
	expC6 = 1.3888888888888888889e-3
	expC5 = 8.3333333333333333333e-3
	expC4 = 4.1666666666666666667e-2
	expC3 = 1.6666666666666666667e-1

	expRound = 1.5 * (1 << 52)
)

// expLo bounds the fast path from below: anything smaller goes through
// math.Exp directly, which keeps the denormal-result and huge-negative
// ldexp cases out of the interleaved code. Sigmoid arguments never get
// near it.
const expLo = -700.0

const (
	expModeNone = iota // replay does not match this arch's math.Exp
	expModeFMA
	expModeSSE
)

var expMode = expInit()

func expInit() int {
	for _, mode := range []int{expModeFMA, expModeSSE} {
		if expProbe(mode) {
			return mode
		}
	}
	return expModeNone
}

// expProbe bit-compares the mode's replay against math.Exp across a
// deterministic sweep of the finite fast-path range, dense where
// sigmoid arguments live and log-spaced out to the overflow and
// underflow boundaries.
func expProbe(mode int) bool {
	probe := func(x float64) bool {
		var e [4]float64
		exp4m(&e, x, -x, x/3, x*0.9999, mode)
		return e[0] == math.Exp(x) && e[1] == math.Exp(-x) &&
			e[2] == math.Exp(x/3) && e[3] == math.Exp(x*0.9999)
	}
	for i := 0; i <= 4096; i++ {
		if !probe(-32 + float64(i)*(64.0/4096)) {
			return false
		}
	}
	for x := 1e-300; x < 640; x *= 1.5 {
		if !probe(x) {
			return false
		}
	}
	return true
}

// exp4 fills e with math.Exp of the four arguments, bit for bit.
func exp4(e *[4]float64, x0, x1, x2, x3 float64) {
	exp4m(e, x0, x1, x2, x3, expMode)
}

func exp4m(e *[4]float64, x0, x1, x2, x3 float64, mode int) {
	// The interleaved path handles finite arguments that produce
	// normal results; NaN, ±Inf and both tails fail these comparisons
	// and take the library call.
	if mode == expModeNone ||
		!(x0 > expLo && x0 <= expOver && x1 > expLo && x1 <= expOver &&
			x2 > expLo && x2 <= expOver && x3 > expLo && x3 <= expOver) {
		e[0] = math.Exp(x0)
		e[1] = math.Exp(x1)
		e[2] = math.Exp(x2)
		e[3] = math.Exp(x3)
		return
	}

	// Argument reduction: x = k*ln2 + r. CVTSD2SL rounds to nearest
	// even; adding and subtracting 1.5*2^52 performs exactly that
	// rounding for |v| < 2^51 without a function call, because the sum
	// lands where the float64 grid spacing is 1.0 and the subtraction
	// is exact.
	r0 := expLog2E * x0
	r1 := expLog2E * x1
	r2 := expLog2E * x2
	r3 := expLog2E * x3
	k0 := int32((r0 + expRound) - expRound)
	k1 := int32((r1 + expRound) - expRound)
	k2 := int32((r2 + expRound) - expRound)
	k3 := int32((r3 + expRound) - expRound)
	f0, f1, f2, f3 := float64(k0), float64(k1), float64(k2), float64(k3)

	var y0, y1, y2, y3 float64
	if mode == expModeFMA {
		x0 = math.FMA(-f0, expLn2U, x0)
		x1 = math.FMA(-f1, expLn2U, x1)
		x2 = math.FMA(-f2, expLn2U, x2)
		x3 = math.FMA(-f3, expLn2U, x3)
		x0 = math.FMA(-f0, expLn2L, x0)
		x1 = math.FMA(-f1, expLn2L, x1)
		x2 = math.FMA(-f2, expLn2L, x2)
		x3 = math.FMA(-f3, expLn2L, x3)
		x0 *= 0.0625
		x1 *= 0.0625
		x2 *= 0.0625
		x3 *= 0.0625
		t0, t1, t2, t3 := expC8, expC8, expC8, expC8
		t0 = math.FMA(t0, x0, expC7)
		t1 = math.FMA(t1, x1, expC7)
		t2 = math.FMA(t2, x2, expC7)
		t3 = math.FMA(t3, x3, expC7)
		t0 = math.FMA(t0, x0, expC6)
		t1 = math.FMA(t1, x1, expC6)
		t2 = math.FMA(t2, x2, expC6)
		t3 = math.FMA(t3, x3, expC6)
		t0 = math.FMA(t0, x0, expC5)
		t1 = math.FMA(t1, x1, expC5)
		t2 = math.FMA(t2, x2, expC5)
		t3 = math.FMA(t3, x3, expC5)
		t0 = math.FMA(t0, x0, expC4)
		t1 = math.FMA(t1, x1, expC4)
		t2 = math.FMA(t2, x2, expC4)
		t3 = math.FMA(t3, x3, expC4)
		t0 = math.FMA(t0, x0, expC3)
		t1 = math.FMA(t1, x1, expC3)
		t2 = math.FMA(t2, x2, expC3)
		t3 = math.FMA(t3, x3, expC3)
		t0 = math.FMA(t0, x0, 0.5)
		t1 = math.FMA(t1, x1, 0.5)
		t2 = math.FMA(t2, x2, 0.5)
		t3 = math.FMA(t3, x3, 0.5)
		t0 = math.FMA(t0, x0, 1)
		t1 = math.FMA(t1, x1, 1)
		t2 = math.FMA(t2, x2, 1)
		t3 = math.FMA(t3, x3, 1)
		y0 = x0 * t0
		y1 = x1 * t1
		y2 = x2 * t2
		y3 = x3 * t3
		y0 = y0 * (2 + y0)
		y1 = y1 * (2 + y1)
		y2 = y2 * (2 + y2)
		y3 = y3 * (2 + y3)
		y0 = y0 * (2 + y0)
		y1 = y1 * (2 + y1)
		y2 = y2 * (2 + y2)
		y3 = y3 * (2 + y3)
		y0 = y0 * (2 + y0)
		y1 = y1 * (2 + y1)
		y2 = y2 * (2 + y2)
		y3 = y3 * (2 + y3)
		// The assembly fuses the last undouble with the +1.
		y0 = math.FMA(y0, 2+y0, 1)
		y1 = math.FMA(y1, 2+y1, 1)
		y2 = math.FMA(y2, 2+y2, 1)
		y3 = math.FMA(y3, 2+y3, 1)
	} else {
		// Unfused variant: every multiply and add rounds separately,
		// exactly as the pre-FMA instruction sequence does.
		x0 = x0 - f0*expLn2U
		x1 = x1 - f1*expLn2U
		x2 = x2 - f2*expLn2U
		x3 = x3 - f3*expLn2U
		x0 = x0 - f0*expLn2L
		x1 = x1 - f1*expLn2L
		x2 = x2 - f2*expLn2L
		x3 = x3 - f3*expLn2L
		x0 *= 0.0625
		x1 *= 0.0625
		x2 *= 0.0625
		x3 *= 0.0625
		t0 := expC8*x0 + expC7
		t1 := expC8*x1 + expC7
		t2 := expC8*x2 + expC7
		t3 := expC8*x3 + expC7
		t0 = t0*x0 + expC6
		t1 = t1*x1 + expC6
		t2 = t2*x2 + expC6
		t3 = t3*x3 + expC6
		t0 = t0*x0 + expC5
		t1 = t1*x1 + expC5
		t2 = t2*x2 + expC5
		t3 = t3*x3 + expC5
		t0 = t0*x0 + expC4
		t1 = t1*x1 + expC4
		t2 = t2*x2 + expC4
		t3 = t3*x3 + expC4
		t0 = t0*x0 + expC3
		t1 = t1*x1 + expC3
		t2 = t2*x2 + expC3
		t3 = t3*x3 + expC3
		t0 = t0*x0 + 0.5
		t1 = t1*x1 + 0.5
		t2 = t2*x2 + 0.5
		t3 = t3*x3 + 0.5
		t0 = t0*x0 + 1
		t1 = t1*x1 + 1
		t2 = t2*x2 + 1
		t3 = t3*x3 + 1
		y0 = x0 * t0
		y1 = x1 * t1
		y2 = x2 * t2
		y3 = x3 * t3
		for i := 0; i < 4; i++ {
			y0 = y0 * (2 + y0)
			y1 = y1 * (2 + y1)
			y2 = y2 * (2 + y2)
			y3 = y3 * (2 + y3)
		}
		y0 += 1
		y1 += 1
		y2 += 1
		y3 += 1
	}

	e[0] = expScale(y0, k0)
	e[1] = expScale(y1, k1)
	e[2] = expScale(y2, k2)
	e[3] = expScale(y3, k3)
}

// expScale returns fr * 2**k through exponent-field construction, with
// the same overflow check the assembly's ldexp tail performs. The
// fast-path bounds guarantee k is far from the denormal range.
func expScale(fr float64, k int32) float64 {
	b := k + 0x3FF
	if b >= 0x7FF {
		return math.Inf(1)
	}
	return fr * math.Float64frombits(uint64(b)<<52)
}

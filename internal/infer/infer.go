// Package infer compiles trained classifiers into flat, allocation-free
// prediction programs — the software twin of the internal/hw netlist
// lowering. Where hw lowers a model onto comparators and MAC arrays for
// the paper's FPGA study, infer lowers the same introspection surface
// (tree.Export, oner.Rule, rules.Rules, Weights/Scaler, bayes.Params,
// mlp.Weights) onto contiguous Go arrays walked without interface
// dispatch: trees and rule lists become index-linked node/condition
// arrays, the dense models become fused standardize-then-MAC kernels
// over internal/mat row buffers.
//
// A compiled Program predicts batches with zero steady-state
// allocations: per-batch scratch comes from an internal fixed-capacity
// free list, so a single Program is safe to share across goroutines
// (online.MonitorAll workers, parallel CV folds). Compiled output is bit-identical to the
// interpreted Predict/Proba of the source classifier — the kernels
// replay the same floating-point operations in the same order, they just
// stop paying for pointer chasing, interface calls, and per-call
// allocation. Label-only paths additionally skip the softmax/exp
// normalization, which cannot change the argmax.
package infer

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/linear"
	"repro/internal/ml/mlp"
	"repro/internal/ml/oner"
	"repro/internal/ml/rules"
	"repro/internal/ml/tree"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// ErrNotCompilable reports a classifier type with no compiled kernel
// (ensembles, KNN, anomaly detectors). Callers fall back to ml.Batch.
var ErrNotCompilable = errors.New("infer: classifier has no compiled kernel")

// ErrNoProba reports a Proba call on a program whose source classifier
// is not a ml.ProbClassifier.
var ErrNoProba = errors.New("infer: program does not support probabilities")

// Compile/inference instruments, exported at /metrics as infer.*.
var (
	mCompiled       = obs.GetCounter("infer.programs_compiled")
	mCompileSeconds = obs.GetHistogram("infer.compile_seconds", obs.TimeBuckets)
	mRows           = obs.GetCounter("infer.rows_predicted")
	mBatches        = obs.GetCounter("infer.batches")
)

// kernel is a compiled label predictor over validated batches.
type kernel interface {
	predict(dst []int, X [][]float64, s *scratch)
}

// probaKernel is implemented by kernels whose source model supports
// ml.ProbClassifier; dst rows are caller-allocated, length NumClasses.
type probaKernel interface {
	proba(dst [][]float64, X [][]float64, s *scratch)
}

// scratch is the per-batch working memory drawn from the program's pool.
// Float kernels use z/h; quantized kernels use the qi/qh integer views,
// which alias one arena allocation (see Compile) so a scratch costs a
// single backing array however many views a kernel needs.
type scratch struct {
	z, h   []float64
	qi, qh []int32
	oneDst [1]int
	oneX   [1][]float64
}

// Program is a compiled classifier: flat model arrays plus a scratch
// pool. It implements ml.BatchPredictor and ml.Model and is safe for
// concurrent use — the model arrays are read-only after Compile and
// every batch checks its scratch out of the pool.
type Program struct {
	name    string
	dim     int
	classes int
	k       kernel
	pk      probaKernel
	pool    chan *scratch
	newS    func() *scratch
	rows    *obs.Counter
	spec    ProgramSpec
}

// buildKernel lowers a trained classifier into its exact float64 kernel
// and reports the scratch buffer lengths it needs.
func buildKernel(c ml.Classifier) (k kernel, zLen, hLen int, err error) {
	switch m := c.(type) {
	case *oner.OneR:
		k = compileOneR(m)
	case *tree.J48:
		if k, err = compileTree(m.Export()); err != nil {
			return nil, 0, 0, err
		}
	case *tree.REPTree:
		if k, err = compileTree(m.Export()); err != nil {
			return nil, 0, 0, err
		}
	case *rules.JRip:
		k = compileJRip(m)
	case *linear.Logistic:
		k = compileDense(m, true)
		zLen = m.Dim()
	case *linear.SVM:
		k = compileDense(m, false)
		zLen = m.Dim()
	case *bayes.NaiveBayes:
		k = compileBayes(m)
		zLen = m.Dim()
	case *mlp.MLP:
		km := compileMLP(m)
		k = km
		// The MLP label kernel runs rows four at a time, so it needs
		// four standardize buffers and four hidden-activation buffers.
		zLen = 4 * m.Dim()
		hLen = 4 * km.hidden
	default:
		return nil, 0, 0, fmt.Errorf("%w: %T", ErrNotCompilable, c)
	}
	return k, zLen, hLen, nil
}

// Compile lowers a trained classifier into a Program. With no options
// (or WithPrecision(Float64)) the program is the exact float64 lowering,
// bit-identical to the interpreted classifier. WithPrecision(Int8) or
// WithPrecision(Int16) builds fixed-point quantized kernels instead —
// label-only, mirroring the internal/hw datapath widths; the MAC-kernel
// classifiers additionally require WithCalibration rows.
//
// Compile returns ml.ErrNotTrained for an untrained model and
// ErrNotCompilable for classifier types without a kernel (use ml.Batch
// for those); quantized compiles may also return ErrNoCalibration or
// ErrQuantCapacity.
func Compile(c ml.Classifier, opts ...Option) (p *Program, err error) {
	// Introspection accessors panic ml.ErrNotTrained on untrained
	// models; the compile API surfaces that as a returned error.
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, ml.ErrNotTrained) {
				p, err = nil, ml.ErrNotTrained
				return
			}
			panic(r)
		}
	}()
	var o compileOpts
	for _, opt := range opts {
		opt(&o)
	}
	start := time.Now()
	k, zLen, hLen, err := buildKernel(c)
	if err != nil {
		return nil, err
	}
	mm, ok := c.(ml.Model)
	if !ok {
		return nil, fmt.Errorf("infer: %T does not implement ml.Model", c)
	}
	p = &Program{
		name:    c.Name(),
		dim:     mm.Dim(),
		classes: mm.NumClasses(),
		k:       k,
		rows:    obs.GetCounter("infer." + strings.ToLower(c.Name()) + "_rows"),
	}
	p.pk, _ = k.(probaKernel)
	if dk, ok := k.(*denseKernel); ok && !dk.hasProba() {
		p.pk = nil // SVM margins are not probabilities
	}
	p.spec = ProgramSpec{
		Classifier: p.name,
		Precision:  Float64,
		Features:   p.dim,
		Classes:    p.classes,
		Proba:      p.pk != nil,
		WeightBits: Float64.weightBits(),
		AccumBits:  Float64.accumBits(),
		Agreement:  1,
	}
	qiLen, qhLen := 0, 0
	if o.precision != Float64 {
		for _, r := range o.calib {
			if len(r) != p.dim {
				return nil, fmt.Errorf("infer: %s: calibration rows have %d features, want %d",
					p.name, len(r), p.dim)
			}
		}
		qk, qi, qh, quantizer, scale, qerr := buildQuantKernel(c, o.precision, o.calib, p.dim)
		if qerr != nil {
			return nil, qerr
		}
		qiLen, qhLen = qi, qh
		p.spec.Precision = o.precision
		p.spec.Proba = false
		p.spec.WeightBits = o.precision.weightBits()
		p.spec.AccumBits = o.precision.accumBits()
		p.spec.Quantizer = quantizer
		p.spec.Scale = scale
		p.spec.CalibrationRows = len(o.calib)
		p.spec.Agreement = measureAgreement(k, qk,
			&scratch{z: make([]float64, zLen), h: make([]float64, hLen)},
			newArenaScratch(zLen, hLen, qiLen, qhLen), o.calib)
		p.k, p.pk = qk, nil // quantized programs are label-only
		zLen, hLen = 0, 0   // float scratch unused on the quantized path
	}
	p.newS = func() *scratch { return newArenaScratch(zLen, hLen, qiLen, qhLen) }
	// A small fixed-capacity free list instead of sync.Pool: Pool's
	// per-P caches can miss under goroutine migration, and a miss here
	// would cost an allocation on the hot path this package exists to
	// keep at zero.
	p.pool = make(chan *scratch, 16)
	mCompiled.Inc()
	mCompileSeconds.Observe(time.Since(start).Seconds())
	return p, nil
}

// newArenaScratch carves all of a scratch's buffers out of as few
// backing allocations as possible: one float64 arena for z/h and one
// int32 arena for qi/qh.
func newArenaScratch(zLen, hLen, qiLen, qhLen int) *scratch {
	s := &scratch{}
	if zLen+hLen > 0 {
		f := make([]float64, zLen+hLen)
		s.z, s.h = f[:zLen:zLen], f[zLen:]
	}
	if qiLen+qhLen > 0 {
		q := make([]int32, qiLen+qhLen)
		s.qi, s.qh = q[:qiLen:qiLen], q[qiLen:]
	}
	return s
}

// Compilable reports whether Compile has a kernel for this classifier
// type. It does not require the model to be trained; the registry uses
// it to advertise the compiled set from zero-value factories.
func Compilable(c ml.Classifier) bool {
	switch c.(type) {
	case *oner.OneR, *tree.J48, *tree.REPTree, *rules.JRip,
		*linear.Logistic, *linear.SVM, *bayes.NaiveBayes, *mlp.MLP:
		return true
	}
	return false
}

// Name returns the source classifier's display name.
func (p *Program) Name() string { return p.name }

// Dim implements ml.Model.
func (p *Program) Dim() int { return p.dim }

// NumClasses implements ml.Model.
func (p *Program) NumClasses() int { return p.classes }

// HasProba reports whether Proba is supported (the source classifier is
// a ml.ProbClassifier and the program is not quantized).
//
// Deprecated: use Spec().Proba, which carries the full introspection
// surface (precision, widths, scale table, agreement) alongside it.
func (p *Program) HasProba() bool { return p.pk != nil }

// Spec returns the program's introspection record: source classifier,
// numeric precision, datapath widths, quantizer kind and scale table,
// and the measured float-agreement rate. The returned value is a copy;
// mutating it does not affect the program.
func (p *Program) Spec() ProgramSpec {
	spec := p.spec
	if spec.Scale != nil {
		spec.Scale = append([]FeatureScale(nil), spec.Scale...)
	}
	return spec
}

func (p *Program) getScratch() *scratch {
	select {
	case s := <-p.pool:
		return s
	default:
		return p.newS()
	}
}

func (p *Program) putScratch(s *scratch) {
	s.oneX[0] = nil
	select {
	case p.pool <- s:
	default:
	}
}

func (p *Program) checkBatch(n int, X [][]float64) error {
	if n < len(X) {
		return fmt.Errorf("infer: %s: dst holds %d results but X has %d rows", p.name, n, len(X))
	}
	for i, row := range X {
		if len(row) != p.dim {
			return fmt.Errorf("infer: %s: row %d has %d features, want %d", p.name, i, len(row), p.dim)
		}
	}
	return nil
}

// Predict fills dst[i] with the predicted label for X[i]. It allocates
// nothing in steady state and matches the interpreted Predict of the
// source classifier bit for bit.
func (p *Program) Predict(dst []int, X [][]float64) error {
	if err := p.checkBatch(len(dst), X); err != nil {
		return err
	}
	s := p.getScratch()
	p.k.predict(dst[:len(X)], X, s)
	p.putScratch(s)
	p.rows.Add(int64(len(X)))
	mRows.Add(int64(len(X)))
	mBatches.Inc()
	return nil
}

// PredictBatch implements ml.BatchPredictor.
func (p *Program) PredictBatch(dst []int, X [][]float64) error { return p.Predict(dst, X) }

// PredictOne predicts a single instance through the compiled kernel
// without allocating.
func (p *Program) PredictOne(x []float64) (int, error) {
	if len(x) != p.dim {
		return 0, fmt.Errorf("infer: %s: %d features, want %d", p.name, len(x), p.dim)
	}
	s := p.getScratch()
	s.oneX[0] = x
	p.k.predict(s.oneDst[:], s.oneX[:], s)
	label := s.oneDst[0]
	p.putScratch(s)
	p.rows.Add(1)
	mRows.Add(1)
	return label, nil
}

// Proba fills dst[i] (caller-allocated, length NumClasses) with the
// class-probability distribution for X[i], bit-identical to the source
// classifier's Proba. Returns ErrNoProba when unsupported.
func (p *Program) Proba(dst [][]float64, X [][]float64) error {
	if p.pk == nil {
		return fmt.Errorf("%w: %s", ErrNoProba, p.name)
	}
	if err := p.checkBatch(len(dst), X); err != nil {
		return err
	}
	for i := range X {
		if len(dst[i]) != p.classes {
			return fmt.Errorf("infer: %s: dst row %d has %d slots, want %d", p.name, i, len(dst[i]), p.classes)
		}
	}
	s := p.getScratch()
	p.pk.proba(dst[:len(X)], X, s)
	p.putScratch(s)
	p.rows.Add(int64(len(X)))
	mRows.Add(int64(len(X)))
	mBatches.Inc()
	return nil
}

// shardMin is the smallest batch worth splitting across workers; below
// it the fan-out overhead beats the kernel time.
const shardMin = 2048

// PredictParallel is Predict with the batch sharded across the parallel
// engine. workers follows parallel.Options semantics (0 = process-wide
// default, 1 = inline). Small batches and single-worker runs take the
// serial zero-alloc path; predictions are per-row independent, so the
// result is identical at any worker count.
func (p *Program) PredictParallel(dst []int, X [][]float64, workers int) error {
	if workers == 0 {
		workers = parallel.DefaultWorkers()
	}
	if workers <= 1 || len(X) < shardMin {
		return p.Predict(dst, X)
	}
	shards := workers
	if max := len(X) / (shardMin / 2); shards > max {
		shards = max
	}
	per := (len(X) + shards - 1) / shards
	return parallel.ForEach(
		parallel.Options{Name: "infer.predict", Workers: workers},
		shards, func(i int) error {
			lo := i * per
			hi := lo + per
			if hi > len(X) {
				hi = len(X)
			}
			return p.Predict(dst[lo:hi], X[lo:hi])
		})
}

package infer

import (
	"sync"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/linear"
	"repro/internal/ml/mlp"
	"repro/internal/ml/mltest"
	"repro/internal/ml/oner"
	"repro/internal/ml/rules"
	"repro/internal/ml/tree"
)

// benchRows is the batch predicted per Predict call: big enough to
// amortize scratch checkout, about one online-monitoring round of
// windows. One benchmark op sweeps every disjoint batch window once, so
// even a short -benchtime run is dominated by steady-state work — GC
// pressure from the interpreted path's per-row allocations included —
// instead of first-touch effects.
const benchRows = 512

// The benchmark workload mirrors the paper's multiclass study: six
// classes over the 8-counter PMU feature vector, heavily overlapped so
// the trees grow to realistic size instead of separating in two splits.
// Each op streams through disjoint batch windows, the access pattern of
// evaluation and online monitoring — repeating one batch would let the
// interpreted tree walk run entirely out of warm cache.
var bench struct {
	once   sync.Once
	x      [][]float64
	y      []int
	models map[string]ml.Classifier
}

func benchSetup(b *testing.B, name string) (ml.Classifier, [][]float64) {
	b.Helper()
	bench.once.Do(func() {
		centers := [][]float64{
			{0, 0, 0, 0, 1, 2, 0, 1},
			{2, 1, 0, 1, 0, 0, 2, 0},
			{0, 2, 2, 0, 1, 0, 1, 2},
			{1, 0, 1, 2, 2, 1, 0, 0},
			{2, 2, 1, 1, 0, 2, 2, 1},
			{1, 1, 2, 0, 2, 0, 1, 2},
		}
		bench.x, bench.y = mltest.Blobs(1, centers, 5000, 2.0)
		bench.models = map[string]ml.Classifier{}
		for n, mk := range map[string]func() ml.Classifier{
			"OneR":     func() ml.Classifier { return oner.New() },
			"JRip":     func() ml.Classifier { j := rules.New(); j.Seed = 7; return j },
			"J48":      func() ml.Classifier { return tree.NewJ48() },
			"REPTree":  func() ml.Classifier { r := tree.NewREPTree(); r.Seed = 7; return r },
			"NB":       func() ml.Classifier { return bayes.New() },
			"Logistic": func() ml.Classifier { lg := linear.NewLogistic(); lg.Seed = 7; return lg },
			"SVM":      func() ml.Classifier { s := linear.NewSVM(); s.Seed = 7; return s },
			"MLP":      func() ml.Classifier { m := mlp.New(); m.Seed = 7; return m },
		} {
			c := mk()
			if err := c.Train(bench.x, bench.y, 6); err != nil {
				panic(err)
			}
			bench.models[n] = c
		}
	})
	return bench.models[name], bench.x
}

// sweep predicts every disjoint batch window once. One pre-timer call
// warms caches, populates the scratch pool and finishes lazy
// initialization; each timed op then streams the whole dataset.
func sweep(b *testing.B, predict func(dst []int, X [][]float64) error, dst []int, x [][]float64) {
	for off := 0; off+benchRows <= len(x); off += benchRows {
		if err := predict(dst, x[off:off+benchRows]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchInterpreted is the baseline: the interpreted per-row Predict
// behind the ml.Batch adapter.
func benchInterpreted(b *testing.B, name string) {
	c, x := benchSetup(b, name)
	bp := ml.Batch(c)
	dst := make([]int, benchRows)
	sweep(b, bp.PredictBatch, dst, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep(b, bp.PredictBatch, dst, x)
	}
}

// reportWindowsPerCore emits the headline throughput metric: windows
// classified per second on one core. The benches run single-goroutine,
// so op time divided into rows-per-op is exactly per-core throughput;
// benchjson carries unknown units into BENCH_baseline.json as custom
// metrics, where bench-diff records them alongside ns/op.
func reportWindowsPerCore(b *testing.B, rows int) {
	if b.Elapsed() <= 0 {
		return
	}
	total := float64(rows) * float64(b.N)
	b.ReportMetric(total/b.Elapsed().Seconds(), "windows/s/core")
}

// benchCompiled is the same batch-window stream through the compiled
// program.
func benchCompiled(b *testing.B, name string) {
	c, x := benchSetup(b, name)
	p, err := Compile(c)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]int, benchRows)
	sweep(b, p.Predict, dst, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep(b, p.Predict, dst, x)
	}
	reportWindowsPerCore(b, len(x)/benchRows*benchRows)
}

// benchQuant streams the same windows through the int8 fixed-point
// program (training set as calibration). The models are the
// hardware-capped registry shapes from quant_test.go — the
// configurations serve/ingest actually deploy, and the only ones with a
// fixed-point realization (an uncapped OneR's threshold table overflows
// any 8-bit grid).
func benchQuant(b *testing.B, name string) {
	quantSetup(b)
	c, x := quantBench.models[name], quantBench.x
	p, err := Compile(c, WithPrecision(Int8), WithCalibration(x))
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]int, benchRows)
	sweep(b, p.Predict, dst, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep(b, p.Predict, dst, x)
	}
	reportWindowsPerCore(b, len(x)/benchRows*benchRows)
}

func BenchmarkInterpretedBatchOneR(b *testing.B)     { benchInterpreted(b, "OneR") }
func BenchmarkCompiledBatchOneR(b *testing.B)        { benchCompiled(b, "OneR") }
func BenchmarkInterpretedBatchJRip(b *testing.B)     { benchInterpreted(b, "JRip") }
func BenchmarkCompiledBatchJRip(b *testing.B)        { benchCompiled(b, "JRip") }
func BenchmarkInterpretedBatchJ48(b *testing.B)      { benchInterpreted(b, "J48") }
func BenchmarkCompiledBatchJ48(b *testing.B)         { benchCompiled(b, "J48") }
func BenchmarkInterpretedBatchREPTree(b *testing.B)  { benchInterpreted(b, "REPTree") }
func BenchmarkCompiledBatchREPTree(b *testing.B)     { benchCompiled(b, "REPTree") }
func BenchmarkInterpretedBatchNB(b *testing.B)       { benchInterpreted(b, "NB") }
func BenchmarkCompiledBatchNB(b *testing.B)          { benchCompiled(b, "NB") }
func BenchmarkInterpretedBatchLogistic(b *testing.B) { benchInterpreted(b, "Logistic") }
func BenchmarkCompiledBatchLogistic(b *testing.B)    { benchCompiled(b, "Logistic") }
func BenchmarkInterpretedBatchSVM(b *testing.B)      { benchInterpreted(b, "SVM") }
func BenchmarkCompiledBatchSVM(b *testing.B)         { benchCompiled(b, "SVM") }
func BenchmarkInterpretedBatchMLP(b *testing.B)      { benchInterpreted(b, "MLP") }
func BenchmarkCompiledBatchMLP(b *testing.B)         { benchCompiled(b, "MLP") }

func BenchmarkQuantInt8BatchOneR(b *testing.B)     { benchQuant(b, "OneR") }
func BenchmarkQuantInt8BatchJRip(b *testing.B)     { benchQuant(b, "JRip") }
func BenchmarkQuantInt8BatchJ48(b *testing.B)      { benchQuant(b, "J48") }
func BenchmarkQuantInt8BatchREPTree(b *testing.B)  { benchQuant(b, "REPTree") }
func BenchmarkQuantInt8BatchNB(b *testing.B)       { benchQuant(b, "NaiveBayes") }
func BenchmarkQuantInt8BatchLogistic(b *testing.B) { benchQuant(b, "Logistic") }
func BenchmarkQuantInt8BatchSVM(b *testing.B)      { benchQuant(b, "SVM") }
func BenchmarkQuantInt8BatchMLP(b *testing.B)      { benchQuant(b, "MLP") }

// BenchmarkCompiledPredictOne measures the single-window entry point
// online.Monitor uses per 10 ms sample.
func BenchmarkCompiledPredictOne(b *testing.B) {
	c, x := benchSetup(b, "J48")
	p, err := Compile(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PredictOne(x[i%len(x)]); err != nil {
			b.Fatal(err)
		}
	}
}

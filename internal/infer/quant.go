// Quantized fixed-point programs: the int8/int16 counterparts of the
// float64 kernels in kernels.go, mirroring the internal/hw datapath
// widths (hw.Int8AccumBits / hw.Int16AccumBits) so a quantized software
// program predicts what a synthesized fixed-point detector would label.
//
// Two quantizer families cover the model zoo:
//
//   - Comparison kernels (OneR, J48, REPTree, JRip) use exact rank
//     coding: each feature is coded by its rank among the model's own
//     split thresholds, so every threshold compare is decided exactly as
//     in float64 — agreement is 1.0 by construction as long as the
//     distinct-threshold count per feature fits the code width. This is
//     precisely how the hw comparator chains behave: the comparators ARE
//     the grid.
//
//   - MAC kernels (Logistic, SVM, NaiveBayes, MLP) use a per-feature
//     affine grid calibrated from sample rows (percentile-clipped
//     symmetric signed codes), with the standardizer folded into the
//     integer weights exactly as hw.CompileLinear folds it into the
//     netlist. Per-channel weight scales plus normalized requantization
//     multipliers (m, shift pairs, TFLite-style) keep classes whose
//     weight magnitudes differ by orders of magnitude comparable in one
//     shared integer score domain.
//
// All quantized kernels accumulate into flat contiguous integer arrays
// with simple counted loops — the shapes the compiler's auto-vectorizer
// and the CPU's wide integer units like — and draw their batch scratch
// from the program's arena-backed free list, so the steady-state path
// allocates nothing.
package infer

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/hw"
	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/linear"
	"repro/internal/ml/mlp"
	"repro/internal/ml/oner"
	"repro/internal/ml/rules"
	"repro/internal/ml/tree"
)

// Precision selects the numeric domain a classifier compiles into.
// The zero value is Float64, so Compile's zero-option call is unchanged.
type Precision uint8

const (
	// Float64 is the exact compiled path: bit-identical to the
	// interpreted classifier.
	Float64 Precision = iota
	// Int16 quantizes activations and weights to 16-bit symmetric codes
	// with 64-bit accumulators (hw.Int16AccumBits — the netlist score
	// spine).
	Int16
	// Int8 quantizes to 8-bit symmetric codes with 32-bit accumulators
	// (hw.Int8AccumBits).
	Int8
)

// String implements fmt.Stringer ("float64", "int16", "int8").
func (p Precision) String() string {
	switch p {
	case Float64:
		return "float64"
	case Int16:
		return "int16"
	case Int8:
		return "int8"
	}
	return fmt.Sprintf("precision(%d)", uint8(p))
}

// MarshalText renders the precision as its String form in JSON.
func (p Precision) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText parses the String form.
func (p *Precision) UnmarshalText(b []byte) error {
	v, err := ParsePrecision(string(b))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// ParsePrecision parses "float64", "int16" or "int8" (the serve
// -precision flag values).
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "float64", "":
		return Float64, nil
	case "int16":
		return Int16, nil
	case "int8":
		return Int8, nil
	}
	return Float64, fmt.Errorf("infer: unknown precision %q (have float64, int16, int8)", s)
}

// half returns the symmetric code limit: quantized values occupy
// [-half, +half].
func (p Precision) half() int64 {
	switch p {
	case Int8:
		return hw.QuantHalf(hw.Int8ActBits)
	case Int16:
		return hw.QuantHalf(hw.Int16ActBits)
	}
	return 0
}

func (p Precision) weightBits() int {
	switch p {
	case Int8:
		return hw.Int8WeightBits
	case Int16:
		return hw.Int16WeightBits
	}
	return 64
}

func (p Precision) accumBits() int {
	switch p {
	case Int8:
		return hw.Int8AccumBits
	case Int16:
		return hw.Int16AccumBits
	}
	return 64
}

// Option configures Compile. The zero-option call compiles the exact
// float64 program, unchanged from earlier releases.
type Option func(*compileOpts)

type compileOpts struct {
	precision Precision
	calib     [][]float64
}

// WithPrecision selects the numeric domain of the compiled program.
// Float64 (the default) is bit-exact; Int16/Int8 build fixed-point
// kernels mirroring the internal/hw datapath widths. MAC-kernel
// classifiers (Logistic, SVM, NaiveBayes, MLP) additionally need
// WithCalibration to place the input grid.
func WithPrecision(p Precision) Option {
	return func(o *compileOpts) { o.precision = p }
}

// WithCalibration supplies sample rows (typically the training set) that
// calibrate the quantized input grid: per-feature percentile-clipped
// ranges for the affine MAC kernels, and the float-vs-quantized label
// agreement measured into the program's Spec. Ignored at Float64.
func WithCalibration(rows [][]float64) Option {
	return func(o *compileOpts) { o.calib = rows }
}

// ErrNoCalibration reports a quantized compile of an affine MAC kernel
// without WithCalibration rows to place the input grid on.
var ErrNoCalibration = errors.New("infer: quantized compile requires calibration rows (WithCalibration)")

// ErrQuantCapacity reports a model whose distinct threshold count per
// feature exceeds the rank-code capacity of the requested width — e.g.
// an unbounded tree with >254 splits on one feature at Int8. The
// registry's hardware-capped models always fit.
var ErrQuantCapacity = errors.New("infer: model thresholds exceed quantized code capacity")

// FeatureScale is one feature's affine grid parameters: a real value x
// is coded as clamp(round((x - Zero) / Step)) into [-half, +half].
type FeatureScale struct {
	Feature int     `json:"feature"`
	Zero    float64 `json:"zero"`
	Step    float64 `json:"step"`
}

// ProgramSpec is the introspection surface of a compiled program: what
// got compiled, into which numeric domain, and how faithfully. It is
// served by the /api/v1/models telemetry endpoints.
type ProgramSpec struct {
	Classifier string    `json:"classifier"`
	Precision  Precision `json:"precision"`
	Features   int       `json:"features"`
	Classes    int       `json:"classes"`
	// Proba reports whether the program serves class probabilities.
	// Quantized programs are label-only.
	Proba bool `json:"proba"`
	// WeightBits/AccumBits are the datapath widths (64/64 at Float64),
	// shared with internal/hw.
	WeightBits int `json:"weight_bits"`
	AccumBits  int `json:"accum_bits"`
	// Quantizer is "affine" (MAC kernels), "rank" (comparison kernels)
	// or empty at Float64.
	Quantizer string `json:"quantizer,omitempty"`
	// Scale is the per-feature affine grid (affine quantizer only).
	Scale []FeatureScale `json:"scale,omitempty"`
	// Agreement is the label agreement between this program and the
	// exact float64 program over the calibration rows (1 when exact:
	// Float64 programs, and rank-coded programs, which cannot disagree).
	Agreement float64 `json:"agreement"`
	// CalibrationRows is how many rows calibrated the grid and scored
	// Agreement.
	CalibrationRows int `json:"calibration_rows,omitempty"`
}

// --- requantization helpers ---

// requantPair decomposes a positive scale ratio into (m, sh) with
// ratio ≈ m / 2^sh and m normalized into [2^19, 2^20) — a per-channel
// integer multiplier usable on any accumulator already bounded under
// 2^40 by preShift, keeping products inside int64. Ratios at or above
// 2^20 return sh == 0 with a larger m; callers bound their accumulators
// so the product still fits.
func requantPair(ratio float64) (int64, uint) {
	if ratio <= 0 || math.IsInf(ratio, 0) || math.IsNaN(ratio) {
		return 0, 0
	}
	sh := uint(0)
	for ratio < float64(int64(1)<<19) {
		ratio *= 2
		sh++
	}
	for ratio >= float64(int64(1)<<20) && sh > 0 {
		ratio /= 2
		sh--
	}
	return int64(math.Round(ratio)), sh
}

// preShift returns how far an accumulator with the given worst-case
// magnitude must be shifted right before a requant multiply so the
// product stays inside int64. The dropped bits sit far below the
// quantization noise floor.
func preShift(accBound float64) uint {
	p := uint(0)
	for accBound > float64(int64(1)<<40) {
		accBound /= 2
		p++
	}
	return p
}

// --- affine quantizer (MAC kernels) ---

// affineQ codes each feature onto a symmetric signed grid:
// q = clamp(round((x - zero)/step), -half, +half). logT pre-applies the
// NaiveBayes sign-preserving log1p transform, mirroring
// bayes.NaiveBayes.transform, so the grid lives in the domain the model
// was trained in.
type affineQ struct {
	zero []float64
	step []float64
	inv  []float64 // 1/step, hoisted out of the per-row loop
	half float64
	logT bool
}

// calibPercentile clips the calibration range: the grid spans the
// [0.1%, 99.9%] percentiles per feature, so a handful of outliers
// cannot stretch the step and waste codes on empty tail range.
const calibPercentile = 0.001

func calibrateAffine(rows [][]float64, dim int, half int64, logT bool) (*affineQ, error) {
	if len(rows) == 0 {
		return nil, ErrNoCalibration
	}
	for i, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("infer: calibration row %d has %d features, want %d", i, len(r), dim)
		}
	}
	q := &affineQ{
		zero: make([]float64, dim),
		step: make([]float64, dim),
		inv:  make([]float64, dim),
		half: float64(half),
		logT: logT,
	}
	col := make([]float64, len(rows))
	for j := 0; j < dim; j++ {
		for i, r := range rows {
			v := r[j]
			if logT {
				v = logTransform(v)
			}
			col[i] = v
		}
		sort.Float64s(col)
		lo := col[int(calibPercentile*float64(len(col)-1))]
		hi := col[int((1-calibPercentile)*float64(len(col)-1))]
		if hi <= lo {
			hi = lo + 1 // constant feature: any step works, codes collapse to 0
		}
		q.zero[j] = (lo + hi) / 2
		q.step[j] = (hi - lo) / float64(2*half)
		q.inv[j] = 1 / q.step[j]
	}
	return q, nil
}

// logTransform mirrors bayes.NaiveBayes.transform.
func logTransform(v float64) float64 {
	if v < 0 {
		return -math.Log1p(-v)
	}
	return math.Log1p(v)
}

func (q *affineQ) quantize(j int, v float64) int32 {
	c := math.Round((v - q.zero[j]) * q.inv[j])
	if c < -q.half {
		c = -q.half
	}
	if c > q.half {
		c = q.half
	}
	return int32(c)
}

// dequantize maps a code back onto the grid point it represents.
func (q *affineQ) dequantize(j int, code int32) float64 {
	return q.zero[j] + float64(code)*q.step[j]
}

func (q *affineQ) quantizeRow(x []float64, dst []int32) {
	if q.logT {
		for j, v := range x {
			dst[j] = q.quantize(j, logTransform(v))
		}
		return
	}
	for j, v := range x {
		dst[j] = q.quantize(j, v)
	}
}

func (q *affineQ) scaleTable() []FeatureScale {
	t := make([]FeatureScale, len(q.zero))
	for j := range t {
		t[j] = FeatureScale{Feature: j, Zero: q.zero[j], Step: q.step[j]}
	}
	return t
}

// --- rank quantizer (comparison kernels) ---

// rankQ codes feature j of a row as its rank among the model's own
// distinct split thresholds on j: code(x) = #[thresholds < x] computed
// by binary search. Because x <= t_k exactly when code(x) <= k, every
// threshold compare in the quantized walk decides identically to the
// float64 walk — rank coding is exact, not approximate.
type rankQ struct {
	thr []float64 // all features' sorted thresholds, contiguous
	off []int32   // per-feature segment offsets, len dim+1
}

// buildRankQ collects the distinct thresholds per feature and checks
// they fit the width's code capacity (codes 0..n need n <= 2*half).
func buildRankQ(dim int, half int64, perFeature map[int][]float64) (*rankQ, error) {
	q := &rankQ{off: make([]int32, dim+1)}
	for j := 0; j < dim; j++ {
		ts := perFeature[j]
		sort.Float64s(ts)
		uniq := ts[:0]
		for i, t := range ts {
			if i == 0 || t != uniq[len(uniq)-1] {
				uniq = append(uniq, t)
			}
		}
		if int64(len(uniq)) > 2*half {
			return nil, fmt.Errorf("%w: %d distinct thresholds on feature %d, capacity %d",
				ErrQuantCapacity, len(uniq), j, 2*half)
		}
		q.thr = append(q.thr, uniq...)
		q.off[j+1] = int32(len(q.thr))
	}
	return q, nil
}

func (q *rankQ) seg(j int) []float64 { return q.thr[q.off[j]:q.off[j+1]] }

// code returns the integer code of a model threshold on feature j; the
// threshold is one of the model's own, so the search finds it exactly.
func (q *rankQ) code(j int, thr float64) int32 {
	return int32(sort.SearchFloat64s(q.seg(j), thr))
}

func (q *rankQ) quantizeRow(x []float64, dst []int32) {
	for j, v := range x {
		dst[j] = int32(sort.SearchFloat64s(q.seg(j), v))
	}
}

// --- quantized tree walk (J48, REPTree) ---

// qflatNode mirrors flatNode with the threshold as an integer code; the
// word packing (children/attr/label) is identical.
type qflatNode struct {
	thr  int32
	word uint64
}

type qtreeKernel struct {
	nodes []qflatNode
	depth int
	dim   int
	qz    *rankQ
}

func compileQuantTree(exported []tree.ExportedNode, dim int, half int64) (*qtreeKernel, error) {
	fl, err := compileTree(exported) // reuse packing + depth + limits
	if err != nil {
		return nil, err
	}
	perFeature := map[int][]float64{}
	for _, e := range exported {
		if !e.Leaf {
			perFeature[e.Attr] = append(perFeature[e.Attr], e.Thr)
		}
	}
	qz, err := buildRankQ(dim, half, perFeature)
	if err != nil {
		return nil, err
	}
	k := &qtreeKernel{nodes: make([]qflatNode, len(fl.nodes)), depth: fl.depth, dim: dim, qz: qz}
	for i, e := range exported {
		k.nodes[i].word = fl.nodes[i].word
		if !e.Leaf {
			k.nodes[i].thr = qz.code(e.Attr, e.Thr)
		}
	}
	return k, nil
}

func (k *qtreeKernel) predictOne(q []int32) int {
	nodes := k.nodes
	idx := int32(0)
	for {
		n := &nodes[idx]
		w := n.word
		l := int32(w & nodeChildMask)
		if l == idx {
			return int(w >> 56)
		}
		if q[w>>(2*nodeChildBits)&0xFF] <= n.thr {
			idx = l
		} else {
			idx = int32(w >> nodeChildBits & nodeChildMask)
		}
	}
}

func (k *qtreeKernel) predict(dst []int, X [][]float64, s *scratch) {
	nodes := k.nodes
	maxD := k.depth
	dim := k.dim
	r := 0
	// Same interleaved CMOV walk as the float kernel, over integer codes:
	// treeGroup rows quantize into the scratch arena, then advance one
	// level per pass with the split compare lowered to an int32 cmp.
	for ; r+treeGroup <= len(X); r += treeGroup {
		for g := 0; g < treeGroup; g++ {
			k.qz.quantizeRow(X[r+g], s.qi[g*dim:(g+1)*dim])
		}
		var idx [treeGroup]int32
		for d := 0; d < maxD; d++ {
			moved := int32(0)
			for g := 0; g < treeGroup; g++ {
				n := &nodes[idx[g]]
				w := n.word
				l := int32(w & nodeChildMask)
				rgt := int32(w >> nodeChildBits & nodeChildMask)
				next := rgt
				if s.qi[g*dim+int(w>>(2*nodeChildBits)&0xFF)] <= n.thr {
					next = l
				}
				moved |= next ^ idx[g]
				idx[g] = next
			}
			if moved == 0 {
				break
			}
		}
		for g := 0; g < treeGroup; g++ {
			dst[r+g] = int(nodes[idx[g]].word >> 56)
		}
	}
	for ; r < len(X); r++ {
		k.qz.quantizeRow(X[r], s.qi[:dim])
		dst[r] = k.predictOne(s.qi[:dim])
	}
}

// --- quantized OneR ---

type qonerKernel struct {
	attr     int
	nthr     int // threshold count; codes 0..nthr index the interval table
	labels   []int
	fallback int
	qz       *rankQ
}

func compileQuantOneR(o *oner.OneR, dim int, half int64) (*qonerKernel, error) {
	attr, thresholds, labels := o.Rule()
	per := map[int][]float64{}
	if attr < dim {
		per[attr] = append([]float64{}, thresholds...)
	}
	qz, err := buildRankQ(dim, half, per)
	if err != nil {
		return nil, err
	}
	return &qonerKernel{attr: attr, nthr: len(thresholds), labels: labels,
		fallback: o.Fallback(), qz: qz}, nil
}

func (k *qonerKernel) predict(dst []int, X [][]float64, _ *scratch) {
	for r, x := range X {
		if k.attr >= len(x) {
			dst[r] = k.fallback
			continue
		}
		// Rank code IS the interval index: the float path takes the first
		// threshold >= x, and code(x) = #[thresholds < x] is that index.
		idx := int(int32(sort.SearchFloat64s(k.qz.seg(k.attr), x[k.attr])))
		if idx >= len(k.labels) {
			idx = len(k.labels) - 1
		}
		dst[r] = k.labels[idx]
	}
}

// --- quantized JRip ---

// qflatCond mirrors flatCond with an integer code threshold.
type qflatCond struct {
	thr  int32
	attr int32
	le   bool
}

type qruleView struct {
	conds []qflatCond
	label int32
}

type qjripKernel struct {
	conds        []qflatCond
	rules        []qruleView
	defaultLabel int
	dim          int
	qz           *rankQ
}

func compileQuantJRip(j *rules.JRip, dim int, half int64) (*qjripKernel, error) {
	learned := j.Rules()
	per := map[int][]float64{}
	for _, r := range learned {
		for _, c := range r.Conds {
			per[c.Attr] = append(per[c.Attr], c.Thr)
		}
	}
	qz, err := buildRankQ(dim, half, per)
	if err != nil {
		return nil, err
	}
	k := &qjripKernel{defaultLabel: j.DefaultLabel(), dim: dim, qz: qz}
	for _, r := range learned {
		for _, c := range r.Conds {
			k.conds = append(k.conds, qflatCond{
				thr: qz.code(c.Attr, c.Thr), attr: int32(c.Attr), le: c.Op == 'l'})
		}
	}
	off := 0
	for _, r := range learned {
		k.rules = append(k.rules, qruleView{
			conds: k.conds[off : off+len(r.Conds) : off+len(r.Conds)],
			label: int32(r.Label),
		})
		off += len(r.Conds)
	}
	return k, nil
}

func (k *qjripKernel) predict(dst []int, X [][]float64, s *scratch) {
	qi := s.qi[:k.dim]
	for r, x := range X {
		k.qz.quantizeRow(x, qi)
		label := k.defaultLabel
		for i := range k.rules {
			ru := &k.rules[i]
			matched := true
			for _, c := range ru.conds {
				v := qi[c.attr]
				if c.le {
					if v > c.thr {
						matched = false
						break
					}
				} else if v <= c.thr {
					matched = false
					break
				}
			}
			if matched {
				label = int(ru.label)
				break
			}
		}
		dst[r] = label
	}
}

// --- quantized dense linear (Logistic, SVM) ---

// qdenseKernel is the integer MAC twin of denseKernel: standardizer and
// input grid folded into per-class int weights, a flat contiguous
// weight array walked with a counted loop, and per-class (m, sh)
// requant multipliers aligning every class onto one comparable score
// scale despite per-class weight grids.
type qdenseKernel struct {
	qz      *affineQ
	w       []int32 // classes × dim, row-major
	m, b    []int64
	sh      []uint
	pre     uint
	classes int
	dim     int
	wide    bool // int64 accumulators (Int16); else int32 (Int8)
}

func compileQuantDense(mdl linearModel, prec Precision, calib [][]float64) (*qdenseKernel, error) {
	w := mdl.Weights()
	mean, std := mdl.Scaler()
	dim, classes := len(mean), len(w)
	half := prec.half()
	wmax := float64(hw.QuantHalf(prec.weightBits()))
	qz, err := calibrateAffine(calib, dim, half, false)
	if err != nil {
		return nil, err
	}
	// Fold the standardizer and the input grid into effective weights,
	// exactly as hw.CompileLinear folds standardization into the netlist:
	// with z = zero + q·step, w'·(x-mean)/std + b becomes eff·q + biasR.
	eff := make([][]float64, classes)
	biasR := make([]float64, classes)
	for c := 0; c < classes; c++ {
		eff[c] = make([]float64, dim)
		b := w[c][dim]
		for j := 0; j < dim; j++ {
			wj := w[c][j] / std[j]
			b += wj * (qz.zero[j] - mean[j])
			eff[c][j] = wj * qz.step[j]
		}
		biasR[c] = b
	}
	k := &qdenseKernel{
		qz: qz, w: make([]int32, classes*dim),
		m: make([]int64, classes), b: make([]int64, classes), sh: make([]uint, classes),
		classes: classes, dim: dim, wide: prec == Int16,
	}
	scoreBound := 0.0
	S := make([]float64, classes)
	for c := 0; c < classes; c++ {
		mx, sb := 0.0, math.Abs(biasR[c])
		for _, e := range eff[c] {
			if a := math.Abs(e); a > mx {
				mx = a
			}
			sb += math.Abs(e) * float64(half)
		}
		if mx == 0 {
			mx = 1
		}
		S[c] = wmax / mx
		for j := 0; j < dim; j++ {
			k.w[c*dim+j] = int32(math.Round(eff[c][j] * S[c]))
		}
		if sb > scoreBound {
			scoreBound = sb
		}
	}
	if scoreBound <= 0 {
		scoreBound = 1
	}
	G := float64(int64(1)<<40) / scoreBound
	k.pre = preShift(float64(dim) * wmax * float64(half))
	for c := 0; c < classes; c++ {
		k.m[c], k.sh[c] = requantPair(G * float64(int64(1)<<k.pre) / S[c])
		k.b[c] = int64(math.Round(biasR[c] * G))
	}
	// An Int8 accumulator must hold dim·127·127; force the wide path for
	// feature counts that could overflow 32 bits (none in this system).
	if !k.wide && float64(dim)*wmax*float64(half) > float64(math.MaxInt32) {
		k.wide = true
	}
	return k, nil
}

func (k *qdenseKernel) predict(dst []int, X [][]float64, s *scratch) {
	qi := s.qi[:k.dim]
	for r, x := range X {
		k.qz.quantizeRow(x, qi)
		if k.wide {
			dst[r] = k.argmax64(qi)
		} else {
			dst[r] = k.argmax32(qi)
		}
	}
}

func (k *qdenseKernel) argmax32(q []int32) int {
	best, bestS := 0, int64(math.MinInt64)
	for c := 0; c < k.classes; c++ {
		wc := k.w[c*k.dim : (c+1)*k.dim : (c+1)*k.dim]
		var acc int32
		for j, w := range wc {
			acc += w * q[j]
		}
		s := (int64(acc)>>k.pre)*k.m[c]>>k.sh[c] + k.b[c]
		if s > bestS {
			best, bestS = c, s
		}
	}
	return best
}

func (k *qdenseKernel) argmax64(q []int32) int {
	best, bestS := 0, int64(math.MinInt64)
	for c := 0; c < k.classes; c++ {
		wc := k.w[c*k.dim : (c+1)*k.dim : (c+1)*k.dim]
		var acc int64
		for j, w := range wc {
			acc += int64(w) * int64(q[j])
		}
		s := (acc>>k.pre)*k.m[c]>>k.sh[c] + k.b[c]
		if s > bestS {
			best, bestS = c, s
		}
	}
	return best
}

// --- quantized NaiveBayes ---

// qbayesKernel lowers the Gaussian log joint to a quadratic integer MAC:
// per class, logJoint = A + Σ_j (U_j·q_j + V_j·q_j²) after expanding the
// per-feature quadratic around the grid. U (linear) and V (quadratic)
// terms span very different magnitudes — V carries a step² factor — so
// each gets its own per-class scale and requant multiplier; a single
// shared scale would round every V to zero and silently degrade the
// model to linear.
type qbayesKernel struct {
	qz         *affineQ
	u, v       []int32 // classes × dim each, row-major
	mu, mv, b  []int64
	shu, shv   []uint
	preU, preV uint
	classes    int
	dim        int
	wide       bool
}

func compileQuantBayes(nb *bayes.NaiveBayes, prec Precision, calib [][]float64) (*qbayesKernel, error) {
	priors, means, vars := nb.Params()
	classes, dim := len(means), len(means[0])
	half := prec.half()
	wmax := float64(hw.QuantHalf(prec.weightBits()))
	qz, err := calibrateAffine(calib, dim, half, nb.LogTransform)
	if err != nil {
		return nil, err
	}
	U := make([][]float64, classes)
	V := make([][]float64, classes)
	A := make([]float64, classes)
	for c := 0; c < classes; c++ {
		U[c] = make([]float64, dim)
		V[c] = make([]float64, dim)
		A[c] = priors[c]
		for j := 0; j < dim; j++ {
			va := vars[c][j]
			gamma := -1.0 / (2 * va)
			beta := means[c][j] / va
			alpha := -0.5*math.Log(2*math.Pi*va) - means[c][j]*means[c][j]/(2*va)
			z0 := qz.zero[j]
			A[c] += alpha + beta*z0 + gamma*z0*z0
			U[c][j] = (beta + 2*gamma*z0) * qz.step[j]
			V[c][j] = gamma * qz.step[j] * qz.step[j]
		}
	}
	k := &qbayesKernel{
		qz: qz, u: make([]int32, classes*dim), v: make([]int32, classes*dim),
		mu: make([]int64, classes), mv: make([]int64, classes), b: make([]int64, classes),
		shu: make([]uint, classes), shv: make([]uint, classes),
		classes: classes, dim: dim, wide: prec == Int16,
	}
	SU := make([]float64, classes)
	SV := make([]float64, classes)
	scoreBound := 0.0
	for c := 0; c < classes; c++ {
		mu, mv, sb := 0.0, 0.0, math.Abs(A[c])
		for j := 0; j < dim; j++ {
			if a := math.Abs(U[c][j]); a > mu {
				mu = a
			}
			if a := math.Abs(V[c][j]); a > mv {
				mv = a
			}
			sb += math.Abs(U[c][j])*float64(half) + math.Abs(V[c][j])*float64(half)*float64(half)
		}
		if mu == 0 {
			mu = 1
		}
		if mv == 0 {
			mv = 1
		}
		SU[c], SV[c] = wmax/mu, wmax/mv
		for j := 0; j < dim; j++ {
			k.u[c*dim+j] = int32(math.Round(U[c][j] * SU[c]))
			k.v[c*dim+j] = int32(math.Round(V[c][j] * SV[c]))
		}
		if sb > scoreBound {
			scoreBound = sb
		}
	}
	if scoreBound <= 0 {
		scoreBound = 1
	}
	G := float64(int64(1)<<40) / scoreBound
	k.preU = preShift(float64(dim) * wmax * float64(half))
	k.preV = preShift(float64(dim) * wmax * float64(half) * float64(half))
	for c := 0; c < classes; c++ {
		k.mu[c], k.shu[c] = requantPair(G * float64(int64(1)<<k.preU) / SU[c])
		k.mv[c], k.shv[c] = requantPair(G * float64(int64(1)<<k.preV) / SV[c])
		k.b[c] = int64(math.Round(A[c] * G))
	}
	if !k.wide && float64(dim)*wmax*float64(half)*float64(half) > float64(math.MaxInt32) {
		k.wide = true
	}
	return k, nil
}

func (k *qbayesKernel) predict(dst []int, X [][]float64, s *scratch) {
	qi := s.qi[:k.dim]
	for r, x := range X {
		k.qz.quantizeRow(x, qi)
		if k.wide {
			dst[r] = k.argmax64(qi)
		} else {
			dst[r] = k.argmax32(qi)
		}
	}
}

func (k *qbayesKernel) argmax32(q []int32) int {
	best, bestS := 0, int64(math.MinInt64)
	for c := 0; c < k.classes; c++ {
		uc := k.u[c*k.dim : (c+1)*k.dim : (c+1)*k.dim]
		vc := k.v[c*k.dim : (c+1)*k.dim : (c+1)*k.dim]
		var accU, accV int32
		for j, u := range uc {
			qj := q[j]
			accU += u * qj
			accV += vc[j] * (qj * qj)
		}
		s := (int64(accU)>>k.preU)*k.mu[c]>>k.shu[c] +
			(int64(accV)>>k.preV)*k.mv[c]>>k.shv[c] + k.b[c]
		if s > bestS {
			best, bestS = c, s
		}
	}
	return best
}

func (k *qbayesKernel) argmax64(q []int32) int {
	best, bestS := 0, int64(math.MinInt64)
	for c := 0; c < k.classes; c++ {
		uc := k.u[c*k.dim : (c+1)*k.dim : (c+1)*k.dim]
		vc := k.v[c*k.dim : (c+1)*k.dim : (c+1)*k.dim]
		var accU, accV int64
		for j, u := range uc {
			qj := int64(q[j])
			accU += int64(u) * qj
			accV += int64(vc[j]) * (qj * qj)
		}
		s := (accU>>k.preU)*k.mu[c]>>k.shu[c] +
			(accV>>k.preV)*k.mv[c]>>k.shv[c] + k.b[c]
		if s > bestS {
			best, bestS = c, s
		}
	}
	return best
}

// --- quantized MLP ---

// lutResolution is the sigmoid LUT's codes per unit of pre-activation;
// the table spans ±lutRange, where the sigmoid saturates beyond either
// activation width's quantum.
const (
	lutResolution = 512
	lutRange      = 8
)

// qmlpKernel: layer 1 folds the standardizer and input grid into integer
// weights with per-unit scales; each unit's accumulator requantizes onto
// the shared pre-activation grid indexing one sigmoid LUT; hidden
// activations become unsigned codes in [0, hQ]; layer 2 is a dense
// integer MAC with per-class requant, like qdenseKernel.
type qmlpKernel struct {
	qz         *affineQ
	w1         []int32 // hidden × dim
	m1, b1     []int64
	sh1        []uint
	pre1       uint
	lut        []int32
	lutHalf    int64
	w2         []int32 // classes × hidden
	m2, b2     []int64
	sh2        []uint
	pre2       uint
	dim        int
	hidden     int
	classes    int
	wide       bool
}

func compileQuantMLP(m *mlp.MLP, prec Precision, calib [][]float64) (*qmlpKernel, error) {
	w1, w2 := m.Weights()
	mean, sd := m.Scaler()
	dim, hidden, classes := m.Topology()
	half := prec.half()
	wmax := float64(hw.QuantHalf(prec.weightBits()))
	hQ := float64(half) // hidden activation codes span [0, half]
	if prec == Int8 {
		hQ = 255 // hw.Int8ActBits unsigned: sigmoid outputs are non-negative
	}
	qz, err := calibrateAffine(calib, dim, half, false)
	if err != nil {
		return nil, err
	}
	k := &qmlpKernel{
		qz: qz, w1: make([]int32, hidden*dim), w2: make([]int32, classes*hidden),
		m1: make([]int64, hidden), b1: make([]int64, hidden), sh1: make([]uint, hidden),
		m2: make([]int64, classes), b2: make([]int64, classes), sh2: make([]uint, classes),
		dim: dim, hidden: hidden, classes: classes, wide: prec == Int16,
	}
	// Layer 1: fold standardizer + grid, per-unit weight scale, requant
	// onto the LUT's pre-activation grid.
	P := float64(lutResolution)
	k.pre1 = preShift(float64(dim) * wmax * float64(half))
	for h := 0; h < hidden; h++ {
		b := w1[h][dim]
		mx := 0.0
		eff := make([]float64, dim)
		for j := 0; j < dim; j++ {
			wj := w1[h][j] / sd[j]
			b += wj * (qz.zero[j] - mean[j])
			eff[j] = wj * qz.step[j]
			if a := math.Abs(eff[j]); a > mx {
				mx = a
			}
		}
		if mx == 0 {
			mx = 1
		}
		S1 := wmax / mx
		for j := 0; j < dim; j++ {
			k.w1[h*dim+j] = int32(math.Round(eff[j] * S1))
		}
		k.m1[h], k.sh1[h] = requantPair(float64(int64(1)<<k.pre1) * P / S1)
		k.b1[h] = int64(math.Round(b * P * float64(int64(1)<<k.sh1[h])))
	}
	k.lutHalf = int64(lutRange * lutResolution)
	k.lut = make([]int32, 2*k.lutHalf+1)
	for i := -k.lutHalf; i <= k.lutHalf; i++ {
		p := float64(i) / P
		k.lut[i+k.lutHalf] = int32(math.Round(hQ / (1 + math.Exp(-p))))
	}
	// Layer 2: hidden codes carry scale hQ per 1.0 of activation.
	e2 := make([][]float64, classes)
	b2 := make([]float64, classes)
	scoreBound := 0.0
	S2 := make([]float64, classes)
	for c := 0; c < classes; c++ {
		e2[c] = make([]float64, hidden)
		b2[c] = w2[c][hidden]
		mx, sb := 0.0, math.Abs(b2[c])
		for h := 0; h < hidden; h++ {
			e2[c][h] = w2[c][h] / hQ
			if a := math.Abs(e2[c][h]); a > mx {
				mx = a
			}
			sb += math.Abs(e2[c][h]) * hQ
		}
		if mx == 0 {
			mx = 1
		}
		S2[c] = wmax / mx
		for h := 0; h < hidden; h++ {
			k.w2[c*hidden+h] = int32(math.Round(e2[c][h] * S2[c]))
		}
		if sb > scoreBound {
			scoreBound = sb
		}
	}
	if scoreBound <= 0 {
		scoreBound = 1
	}
	G := float64(int64(1)<<40) / scoreBound
	k.pre2 = preShift(float64(hidden) * wmax * hQ)
	for c := 0; c < classes; c++ {
		k.m2[c], k.sh2[c] = requantPair(G * float64(int64(1)<<k.pre2) / S2[c])
		k.b2[c] = int64(math.Round(b2[c] * G))
	}
	if !k.wide && (float64(dim)*wmax*float64(half) > float64(math.MaxInt32) ||
		float64(hidden)*wmax*hQ > float64(math.MaxInt32)) {
		k.wide = true
	}
	return k, nil
}

// sigmoidCode looks up the hidden activation code for one layer-1
// accumulator: requantize onto the LUT grid (with round-half-up), clamp
// to the saturation range, index.
func (k *qmlpKernel) sigmoidCode(acc int64, h int) int32 {
	t := (acc>>k.pre1)*k.m1[h] + k.b1[h]
	if sh := k.sh1[h]; sh > 0 {
		t = (t + int64(1)<<(sh-1)) >> sh
	}
	if t < -k.lutHalf {
		t = -k.lutHalf
	}
	if t > k.lutHalf {
		t = k.lutHalf
	}
	return k.lut[t+k.lutHalf]
}

func (k *qmlpKernel) predict(dst []int, X [][]float64, s *scratch) {
	qi := s.qi[:k.dim]
	qh := s.qh[:k.hidden]
	for r, x := range X {
		k.qz.quantizeRow(x, qi)
		if k.wide {
			for h := 0; h < k.hidden; h++ {
				wh := k.w1[h*k.dim : (h+1)*k.dim : (h+1)*k.dim]
				var acc int64
				for j, w := range wh {
					acc += int64(w) * int64(qi[j])
				}
				qh[h] = k.sigmoidCode(acc, h)
			}
		} else {
			for h := 0; h < k.hidden; h++ {
				wh := k.w1[h*k.dim : (h+1)*k.dim : (h+1)*k.dim]
				var acc int32
				for j, w := range wh {
					acc += w * qi[j]
				}
				qh[h] = k.sigmoidCode(int64(acc), h)
			}
		}
		best, bestS := 0, int64(math.MinInt64)
		for c := 0; c < k.classes; c++ {
			wc := k.w2[c*k.hidden : (c+1)*k.hidden : (c+1)*k.hidden]
			var acc int64
			for h, w := range wc {
				acc += int64(w) * int64(qh[h])
			}
			sc := (acc>>k.pre2)*k.m2[c]>>k.sh2[c] + k.b2[c]
			if sc > bestS {
				best, bestS = c, sc
			}
		}
		dst[r] = best
	}
}

// --- quantized compile entry ---

// buildQuantKernel lowers a trained classifier at Int8/Int16. It returns
// the kernel, the scratch arena sizes, and the spec fragments the
// Program surfaces (quantizer kind + scale table).
func buildQuantKernel(c ml.Classifier, prec Precision, calib [][]float64, dim int) (
	k kernel, qiLen, qhLen int, quantizer string, scale []FeatureScale, err error) {
	half := prec.half()
	switch m := c.(type) {
	case *oner.OneR:
		qk, e := compileQuantOneR(m, dim, half)
		return qk, 0, 0, "rank", nil, e
	case *tree.J48:
		qk, e := compileQuantTree(m.Export(), dim, half)
		return qk, treeGroup * dim, 0, "rank", nil, e
	case *tree.REPTree:
		qk, e := compileQuantTree(m.Export(), dim, half)
		return qk, treeGroup * dim, 0, "rank", nil, e
	case *rules.JRip:
		qk, e := compileQuantJRip(m, dim, half)
		return qk, dim, 0, "rank", nil, e
	case *linear.Logistic:
		qk, e := compileQuantDense(m, prec, calib)
		if e != nil {
			return nil, 0, 0, "", nil, e
		}
		return qk, dim, 0, "affine", qk.qz.scaleTable(), nil
	case *linear.SVM:
		qk, e := compileQuantDense(m, prec, calib)
		if e != nil {
			return nil, 0, 0, "", nil, e
		}
		return qk, dim, 0, "affine", qk.qz.scaleTable(), nil
	case *bayes.NaiveBayes:
		qk, e := compileQuantBayes(m, prec, calib)
		if e != nil {
			return nil, 0, 0, "", nil, e
		}
		return qk, dim, 0, "affine", qk.qz.scaleTable(), nil
	case *mlp.MLP:
		qk, e := compileQuantMLP(m, prec, calib)
		if e != nil {
			return nil, 0, 0, "", nil, e
		}
		return qk, dim, qk.hidden, "affine", qk.qz.scaleTable(), nil
	}
	return nil, 0, 0, "", nil, fmt.Errorf("%w: %T", ErrNotCompilable, c)
}

// measureAgreement predicts the calibration rows through both kernels
// and returns the label agreement fraction. Compile-time only; the
// allocations here never touch the prediction hot path.
func measureAgreement(fk, qk kernel, fs, qs *scratch, rows [][]float64) float64 {
	if len(rows) == 0 {
		return 1
	}
	fDst := make([]int, len(rows))
	qDst := make([]int, len(rows))
	fk.predict(fDst, rows, fs)
	qk.predict(qDst, rows, qs)
	agree := 0
	for i := range fDst {
		if fDst[i] == qDst[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(rows))
}

package infer

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/linear"
	"repro/internal/ml/mlp"
	"repro/internal/ml/mltest"
	"repro/internal/ml/oner"
	"repro/internal/ml/rules"
	"repro/internal/ml/tree"
)

// quantFactories builds the hardware-capped model set — the exact
// configurations the core registry deploys (OneR interval cap, JRip rule
// cap, tree depth/leaf caps, NB log transform). The caps are what make
// the models representable in fixed-point: an uncapped OneR memorizing
// thousands of thresholds has no hardware (or int8) realization.
func quantFactories() map[string]func() ml.Classifier {
	return map[string]func() ml.Classifier{
		"OneR": func() ml.Classifier { o := oner.New(); o.MaxIntervals = 16; return o },
		"JRip": func() ml.Classifier { j := rules.New(); j.Seed = 1; j.MaxRulesPerClass = 8; return j },
		"J48":  func() ml.Classifier { j := tree.NewJ48(); j.MinLeaf = 50; j.MaxDepth = 12; return j },
		"REPTree": func() ml.Classifier {
			r := tree.NewREPTree()
			r.Seed = 1
			r.MinLeaf = 50
			r.MaxDepth = 12
			return r
		},
		"NaiveBayes": func() ml.Classifier { nb := bayes.New(); nb.LogTransform = true; return nb },
		"Logistic":   func() ml.Classifier { lg := linear.NewLogistic(); lg.Seed = 1; return lg },
		"SVM":        func() ml.Classifier { s := linear.NewSVM(); s.Seed = 1; return s },
		"MLP":        func() ml.Classifier { m := mlp.New(); m.Seed = 1; return m },
	}
}

// quantBench holds the 30k-row six-class workload (the bench workload)
// with every capped model trained once, shared across the quant tests.
var quantBench struct {
	once   sync.Once
	x      [][]float64
	y      []int
	models map[string]ml.Classifier
}

func quantSetup(t testing.TB) {
	t.Helper()
	quantBench.once.Do(func() {
		centers := [][]float64{
			{0, 0, 0, 0, 1, 2, 0, 1},
			{2, 1, 0, 1, 0, 0, 2, 0},
			{0, 2, 2, 0, 1, 0, 1, 2},
			{1, 0, 1, 2, 2, 1, 0, 0},
			{2, 2, 1, 1, 0, 2, 2, 1},
			{1, 1, 2, 0, 2, 0, 1, 2},
		}
		quantBench.x, quantBench.y = mltest.Blobs(1, centers, 5000, 2.0)
		quantBench.models = map[string]ml.Classifier{}
		for n, mk := range quantFactories() {
			c := mk()
			if err := c.Train(quantBench.x, quantBench.y, 6); err != nil {
				panic(err)
			}
			quantBench.models[n] = c
		}
	})
}

// TestQuantAgreement pins the headline acceptance bar: every classifier,
// quantized at int8 and int16 with the training set as calibration,
// agrees with its float64 program on at least 99% of the 30k-row bench
// workload. The rank-coded comparison kernels must agree exactly.
func TestQuantAgreement(t *testing.T) {
	quantSetup(t)
	exact := map[string]bool{"OneR": true, "JRip": true, "J48": true, "REPTree": true}
	for _, prec := range []Precision{Int8, Int16} {
		for name, c := range quantBench.models {
			t.Run(prec.String()+"/"+name, func(t *testing.T) {
				fp, err := Compile(c)
				if err != nil {
					t.Fatalf("float compile: %v", err)
				}
				qp, err := Compile(c, WithPrecision(prec), WithCalibration(quantBench.x))
				if err != nil {
					t.Fatalf("quant compile: %v", err)
				}
				fDst := make([]int, len(quantBench.x))
				qDst := make([]int, len(quantBench.x))
				if err := fp.Predict(fDst, quantBench.x); err != nil {
					t.Fatal(err)
				}
				if err := qp.Predict(qDst, quantBench.x); err != nil {
					t.Fatal(err)
				}
				agree := 0
				for i := range fDst {
					if fDst[i] == qDst[i] {
						agree++
					}
				}
				rate := float64(agree) / float64(len(fDst))
				if rate < 0.99 {
					t.Fatalf("agreement %.4f < 0.99", rate)
				}
				if exact[name] && rate != 1 {
					t.Fatalf("rank-coded %s agreement %.6f, want exactly 1", name, rate)
				}
				// The compile-time measured agreement saw the same rows.
				if got := qp.Spec().Agreement; math.Abs(got-rate) > 1e-12 {
					t.Fatalf("Spec().Agreement = %.6f, measured %.6f", got, rate)
				}
				// PredictOne rides the same kernel and scratch arena.
				for i := 0; i < 64; i++ {
					one, err := qp.PredictOne(quantBench.x[i*97%len(quantBench.x)])
					if err != nil {
						t.Fatal(err)
					}
					if one != qDst[i*97%len(quantBench.x)] {
						t.Fatalf("PredictOne row %d disagrees with batch", i*97%len(quantBench.x))
					}
				}
			})
		}
	}
}

// TestQuantRoundTrip is the satellite property test: for every feature,
// quantize→dequantize lands exactly on the affine grid (an integer
// multiple of step from zero, within 1 ULP), and re-quantizing the
// dequantized value returns the same code — the grid is a fixed point of
// the round trip.
func TestQuantRoundTrip(t *testing.T) {
	quantSetup(t)
	for _, prec := range []Precision{Int8, Int16} {
		half := prec.half()
		q, err := calibrateAffine(quantBench.x, len(quantBench.x[0]), half, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range quantBench.x[:2000] {
			for j, v := range row {
				code := q.quantize(j, v)
				if int64(code) > half || int64(code) < -half {
					t.Fatalf("feature %d: code %d outside ±%d", j, code, half)
				}
				back := q.dequantize(j, code)
				// back must sit on the grid: zero + code*step, within 1 ULP.
				grid := q.zero[j] + float64(code)*q.step[j]
				ulp := math.Nextafter(math.Abs(grid), math.Inf(1)) - math.Abs(grid)
				if diff := math.Abs(back - grid); diff > ulp {
					t.Fatalf("feature %d: dequantized %.17g off grid point %.17g", j, back, grid)
				}
				if again := q.quantize(j, back); again != code {
					t.Fatalf("feature %d: requantized code %d != %d", j, again, code)
				}
			}
		}
	}
}

// TestQuantErrors covers the failure surface: MAC kernels without
// calibration rows, comparison models overflowing the rank-code
// capacity, and label-only Proba.
func TestQuantErrors(t *testing.T) {
	quantSetup(t)
	t.Run("no-calibration", func(t *testing.T) {
		_, err := Compile(quantBench.models["Logistic"], WithPrecision(Int8))
		if !errors.Is(err, ErrNoCalibration) {
			t.Fatalf("err = %v, want ErrNoCalibration", err)
		}
	})
	t.Run("capacity", func(t *testing.T) {
		// An uncapped OneR on the overlapped workload memorizes far more
		// than 254 thresholds — unrepresentable in 8-bit codes.
		o := oner.New()
		if err := o.Train(quantBench.x, quantBench.y, 6); err != nil {
			t.Fatal(err)
		}
		_, err := Compile(o, WithPrecision(Int8))
		if !errors.Is(err, ErrQuantCapacity) {
			t.Fatalf("err = %v, want ErrQuantCapacity", err)
		}
	})
	t.Run("bad-calibration-width", func(t *testing.T) {
		_, err := Compile(quantBench.models["Logistic"],
			WithPrecision(Int8), WithCalibration([][]float64{{1, 2}}))
		if err == nil {
			t.Fatal("want error for mis-sized calibration rows")
		}
	})
	t.Run("label-only", func(t *testing.T) {
		qp, err := Compile(quantBench.models["Logistic"],
			WithPrecision(Int8), WithCalibration(quantBench.x))
		if err != nil {
			t.Fatal(err)
		}
		if qp.HasProba() || qp.Spec().Proba {
			t.Fatal("quantized program claims probabilities")
		}
		dst := [][]float64{make([]float64, 6)}
		if err := qp.Proba(dst, quantBench.x[:1]); !errors.Is(err, ErrNoProba) {
			t.Fatalf("Proba err = %v, want ErrNoProba", err)
		}
	})
}

// TestQuantSpec checks the introspection record end to end, and that the
// zero-option Compile is unchanged (Float64 spec, exact agreement).
func TestQuantSpec(t *testing.T) {
	quantSetup(t)
	fp, err := Compile(quantBench.models["Logistic"])
	if err != nil {
		t.Fatal(err)
	}
	fs := fp.Spec()
	if fs.Precision != Float64 || fs.WeightBits != 64 || fs.AccumBits != 64 ||
		fs.Agreement != 1 || fs.Quantizer != "" || fs.Scale != nil || !fs.Proba {
		t.Fatalf("float64 spec = %+v", fs)
	}
	// WithPrecision(Float64) must be byte-equal to the zero-option call.
	fp2, err := Compile(quantBench.models["Logistic"], WithPrecision(Float64))
	if err != nil {
		t.Fatal(err)
	}
	if got := fp2.Spec(); got.Precision != Float64 || got.WeightBits != 64 ||
		got.Quantizer != "" || got.Scale != nil || !got.Proba {
		t.Fatalf("WithPrecision(Float64) spec differs: %+v vs %+v", got, fp.Spec())
	}
	qp, err := Compile(quantBench.models["Logistic"],
		WithPrecision(Int8), WithCalibration(quantBench.x))
	if err != nil {
		t.Fatal(err)
	}
	qs := qp.Spec()
	if qs.Classifier != "Logistic" || qs.Precision != Int8 ||
		qs.Features != 8 || qs.Classes != 6 ||
		qs.WeightBits != 8 || qs.AccumBits != 32 ||
		qs.Quantizer != "affine" || len(qs.Scale) != 8 ||
		qs.CalibrationRows != len(quantBench.x) {
		t.Fatalf("int8 spec = %+v", qs)
	}
	for j, sc := range qs.Scale {
		if sc.Feature != j || sc.Step <= 0 {
			t.Fatalf("scale[%d] = %+v", j, sc)
		}
	}
	// Spec returns a copy: mutating it must not touch the program.
	qs.Scale[0].Step = -1
	if qp.Spec().Scale[0].Step == -1 {
		t.Fatal("Spec() aliases internal scale table")
	}
	// Rank-coded programs report the rank quantizer, no scale table, and
	// the int16 width pair.
	tp, err := Compile(quantBench.models["J48"], WithPrecision(Int16))
	if err != nil {
		t.Fatal(err)
	}
	ts := tp.Spec()
	if ts.Quantizer != "rank" || ts.Scale != nil || ts.WeightBits != 16 || ts.AccumBits != 64 {
		t.Fatalf("int16 tree spec = %+v", ts)
	}
	if ts.Agreement != 1 {
		t.Fatalf("rank-coded agreement %v, want 1 (exact)", ts.Agreement)
	}
	// Precision round-trips through its text form.
	for _, p := range []Precision{Float64, Int16, Int8} {
		b, err := p.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Precision
		if err := back.UnmarshalText(b); err != nil || back != p {
			t.Fatalf("text round trip %v -> %s -> %v (%v)", p, b, back, err)
		}
	}
	if _, err := ParsePrecision("int4"); err == nil {
		t.Fatal("ParsePrecision accepted int4")
	}
}

// TestQuantZeroAlloc pins the arena guarantee on the quantized path:
// after warm-up, batch and single-row prediction allocate nothing.
func TestQuantZeroAlloc(t *testing.T) {
	quantSetup(t)
	for name, c := range quantBench.models {
		t.Run(name, func(t *testing.T) {
			p, err := Compile(c, WithPrecision(Int8), WithCalibration(quantBench.x))
			if err != nil {
				t.Fatal(err)
			}
			dst := make([]int, 256)
			batch := quantBench.x[:256]
			if err := p.Predict(dst, batch); err != nil {
				t.Fatal(err) // warm the scratch pool
			}
			if avg := testing.AllocsPerRun(20, func() {
				if err := p.Predict(dst, batch); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Fatalf("Predict allocates %.1f per batch", avg)
			}
			if avg := testing.AllocsPerRun(20, func() {
				if _, err := p.PredictOne(batch[0]); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Fatalf("PredictOne allocates %.1f per call", avg)
			}
		})
	}
}

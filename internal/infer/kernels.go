// The compiled kernels. Each one mirrors its interpreter in
// internal/ml/* operation for operation — same loop order, same
// floating-point expressions — so labels and probabilities come out
// bit-identical. The speed comes from layout and bookkeeping, not from
// reassociating arithmetic: contiguous node/condition arrays instead of
// pointer-linked structs, mat.Matrix row views instead of [][]float64
// double dereferences, pooled scratch instead of per-call allocation,
// and argmax over raw scores instead of softmax on label-only paths.
package infer

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/ml/bayes"
	"repro/internal/ml/mlp"
	"repro/internal/ml/oner"
	"repro/internal/ml/rules"
	"repro/internal/ml/tree"
)

// --- decision trees (J48, REPTree) ---

// flatNode is one tree node in the contiguous program array: the split
// threshold plus a word packing the two child indexes (24 bits each),
// the split attribute (8 bits) and the leaf label (8 bits). Sixteen
// bytes per node instead of a pointer-linked struct keeps twice as many
// nodes per cache line, which matters because the batch rows streaming
// through the same cache keep evicting the tree. Leaves self-loop
// (left == right == own index) so the grouped walk can advance every
// row unconditionally for a fixed number of levels; a node is a leaf
// iff its left child is itself (preorder children always follow their
// parent, so no internal node can self-reference).
type flatNode struct {
	thr  float64
	word uint64
}

const (
	nodeChildBits = 24
	nodeChildMask = 1<<nodeChildBits - 1
)

func packNode(attr, left, right, label int32) uint64 {
	return uint64(left) | uint64(right)<<nodeChildBits |
		uint64(attr)<<(2*nodeChildBits) | uint64(label)<<56
}

// treeGroup is how many rows the batch walk interleaves: each level
// issues treeGroup independent node loads, so the walk is bounded by
// cache throughput instead of one serial pointer-chase latency per row.
const treeGroup = 8

type treeKernel struct {
	nodes []flatNode
	depth int // levels the grouped walk runs: max leaf depth + 1
}

func compileTree(exported []tree.ExportedNode) (*treeKernel, error) {
	if len(exported) > nodeChildMask {
		return nil, fmt.Errorf("%w: tree has %d nodes, packed limit is %d",
			ErrNotCompilable, len(exported), nodeChildMask)
	}
	// Export preorder is kept as the array layout: a node's left child
	// is the next element, so half of every walk's steps land on an
	// adjacent node — usually the same cache line at four nodes per
	// line. (A breadth-first layout that compacts the top levels
	// measures slower here; the left-spine adjacency is worth more.)
	nodes := make([]flatNode, len(exported))
	for i, e := range exported {
		if e.Leaf {
			if e.Label > 0xFF {
				return nil, fmt.Errorf("%w: tree label %d exceeds packed limit 255",
					ErrNotCompilable, e.Label)
			}
			nodes[i] = flatNode{word: packNode(0, int32(i), int32(i), int32(e.Label))}
			continue
		}
		if e.Attr > 0xFF {
			return nil, fmt.Errorf("%w: tree split attribute %d exceeds packed limit 255",
				ErrNotCompilable, e.Attr)
		}
		nodes[i] = flatNode{
			thr:  e.Thr,
			word: packNode(int32(e.Attr), int32(e.Left), int32(e.Right), 0),
		}
	}
	// Bound the grouped walk by the deepest leaf. Export order is
	// preorder, so children always follow their parent and one forward
	// pass settles every depth.
	depth := make([]int32, len(exported))
	maxD := int32(0)
	for i, e := range exported {
		if depth[i] > maxD {
			maxD = depth[i]
		}
		if !e.Leaf {
			depth[e.Left] = depth[i] + 1
			depth[e.Right] = depth[i] + 1
		}
	}
	return &treeKernel{nodes: nodes, depth: int(maxD) + 1}, nil
}

// predictOne is the scalar walk with early exit at the leaf — the
// single-window path online.Monitor rides.
func (k *treeKernel) predictOne(x []float64) int {
	nodes := k.nodes
	idx := int32(0)
	for {
		n := &nodes[idx]
		w := n.word
		l := int32(w & nodeChildMask)
		if l == idx {
			return int(w >> 56)
		}
		if x[w>>(2*nodeChildBits)&0xFF] <= n.thr {
			idx = l
		} else {
			idx = int32(w >> nodeChildBits & nodeChildMask)
		}
	}
}

func (k *treeKernel) predict(dst []int, X [][]float64, _ *scratch) {
	nodes := k.nodes
	maxD := k.depth
	r := 0
	// Interleaved walk: treeGroup rows advance one level per pass, so
	// the per-row node loads overlap instead of serializing into one
	// pointer-chase latency chain per row. Rows that reach their leaf
	// early spin harmlessly on the self-loop; the moved mask ends the
	// group as soon as every lane has parked. (A lane-refill variant
	// that retires parked rows and hands the lane the next batch row
	// measures ~10% slower here — the retire-scan bookkeeping costs
	// more than the wasted self-loop levels.)
	for ; r+treeGroup <= len(X); r += treeGroup {
		var idx [treeGroup]int32
		xs := X[r : r+treeGroup : r+treeGroup]
		for d := 0; d < maxD; d++ {
			moved := int32(0)
			for g := 0; g < treeGroup; g++ {
				n := &nodes[idx[g]]
				// Unpacking both children into registers lets the compiler
				// lower the select to a conditional move: the split branch
				// is data-dependent (~coin-flip on noisy HPC data), so a
				// mispredicted jump per level would dominate the walk.
				w := n.word
				l := int32(w & nodeChildMask)
				rgt := int32(w >> nodeChildBits & nodeChildMask)
				next := rgt
				if xs[g][w>>(2*nodeChildBits)&0xFF] <= n.thr {
					next = l
				}
				moved |= next ^ idx[g]
				idx[g] = next
			}
			if moved == 0 {
				break // every lane is parked at its leaf
			}
		}
		for g := 0; g < treeGroup; g++ {
			dst[r+g] = int(nodes[idx[g]].word >> 56)
		}
	}
	for ; r < len(X); r++ {
		dst[r] = k.predictOne(X[r])
	}
}

// --- OneR ---

type onerKernel struct {
	attr       int
	thresholds []float64
	labels     []int
	fallback   int
}

func compileOneR(o *oner.OneR) *onerKernel {
	attr, thresholds, labels := o.Rule()
	return &onerKernel{attr: attr, thresholds: thresholds, labels: labels, fallback: o.Fallback()}
}

func (k *onerKernel) predict(dst []int, X [][]float64, _ *scratch) {
	for r, x := range X {
		if k.attr >= len(x) {
			dst[r] = k.fallback
			continue
		}
		idx := sort.SearchFloat64s(k.thresholds, x[k.attr])
		if idx >= len(k.labels) {
			idx = len(k.labels) - 1
		}
		dst[r] = k.labels[idx]
	}
}

// --- JRip ---

// flatCond is one threshold literal; le selects <= versus >.
type flatCond struct {
	thr  float64
	attr int32
	le   bool
}

// ruleView is one rule: a pre-sliced view into the kernel's contiguous
// condition array plus its label. Building the views at compile time
// keeps the per-row loop free of subslice construction.
type ruleView struct {
	conds []flatCond
	label int32
}

type jripKernel struct {
	conds        []flatCond // contiguous backing for every rule's literals
	rules        []ruleView
	defaultLabel int
}

func compileJRip(j *rules.JRip) *jripKernel {
	k := &jripKernel{defaultLabel: j.DefaultLabel()}
	learned := j.Rules()
	for _, r := range learned {
		for _, c := range r.Conds {
			k.conds = append(k.conds, flatCond{thr: c.Thr, attr: int32(c.Attr), le: c.Op == 'l'})
		}
	}
	off := 0
	for _, r := range learned {
		k.rules = append(k.rules, ruleView{
			conds: k.conds[off : off+len(r.Conds) : off+len(r.Conds)],
			label: int32(r.Label),
		})
		off += len(r.Conds)
	}
	return k
}

func (k *jripKernel) predict(dst []int, X [][]float64, _ *scratch) {
	for r, x := range X {
		label := k.defaultLabel
		for i := range k.rules {
			ru := &k.rules[i]
			matched := true
			for _, c := range ru.conds {
				v := x[c.attr]
				if c.le {
					if v > c.thr {
						matched = false
						break
					}
				} else if v <= c.thr {
					matched = false
					break
				}
			}
			if matched {
				label = int(ru.label)
				break
			}
		}
		dst[r] = label
	}
}

// --- Logistic / SVM (fused standardize + MAC over mat rows) ---

// linearModel is the shared introspection surface of the dense linear
// models, the same one internal/hw's CompileLinear consumes.
type linearModel interface {
	Weights() [][]float64
	Scaler() (means, stddevs []float64)
}

type denseKernel struct {
	w         *mat.Matrix // classes x (dim+1), bias last
	wr        [][]float64 // per-class row views into w, fixed at compile
	mean, std []float64
	classes   int
	dim       int
	withProba bool // Logistic softmax; SVM margins have no Proba
}

func compileDense(m linearModel, withProba bool) *denseKernel {
	rows := m.Weights()
	mean, std := m.Scaler()
	w := mat.NewMatrix(len(rows), len(rows[0]))
	wr := make([][]float64, len(rows))
	for c, wc := range rows {
		wr[c] = w.Row(c)
		copy(wr[c], wc)
	}
	return &denseKernel{
		w: w, wr: wr, mean: mean, std: std,
		classes: len(rows), dim: len(mean), withProba: withProba,
	}
}

// score computes the raw class score (pre-softmax logit / OvR margin)
// exactly as linear.Logistic.softmax and linear.SVM.decision do: bias
// first, then the standardized dot product in ascending feature order.
func (k *denseKernel) score(c int, z []float64) float64 {
	wc := k.wr[c]
	s := wc[len(z)]
	for j, v := range z {
		s += wc[j] * v
	}
	return s
}

func (k *denseKernel) standardize(x, z []float64) {
	for j, v := range x {
		z[j] = (v - k.mean[j]) / k.std[j]
	}
}

func (k *denseKernel) predict(dst []int, X [][]float64, s *scratch) {
	z := s.z[:k.dim]
	for r, x := range X {
		k.standardize(x, z)
		best, bestS := 0, k.score(0, z)
		for c := 1; c < k.classes; c++ {
			if sc := k.score(c, z); sc > bestS {
				best, bestS = c, sc
			}
		}
		dst[r] = best
	}
}

func (k *denseKernel) proba(dst [][]float64, X [][]float64, s *scratch) {
	if !k.withProba {
		panic(ErrNoProba) // unreachable: Program.Proba gates on pk
	}
	z := s.z[:k.dim]
	for r, x := range X {
		k.standardize(x, z)
		out := dst[r]
		maxS := math.Inf(-1)
		for c := 0; c < k.classes; c++ {
			sc := k.score(c, z)
			out[c] = sc
			if sc > maxS {
				maxS = sc
			}
		}
		sum := 0.0
		for c := range out {
			out[c] = math.Exp(out[c] - maxS)
			sum += out[c]
		}
		for c := range out {
			out[c] /= sum
		}
	}
}

// hasProba lets Program.Proba distinguish Logistic (softmax) from SVM
// (margins only) even though both compile to denseKernel.
func (k *denseKernel) hasProba() bool { return k.withProba }

// --- NaiveBayes ---

type bayesKernel struct {
	priors       []float64
	mean         *mat.Matrix // classes x dim
	c1           *mat.Matrix // -0.5*log(2*pi*var), hoisted per class/attr
	c2           *mat.Matrix // 2*var, hoisted divisor
	meanR        [][]float64 // per-class row views, fixed at compile
	c1R, c2R     [][]float64
	classes, dim int
	logTransform bool
}

func compileBayes(nb *bayes.NaiveBayes) *bayesKernel {
	priors, means, vars := nb.Params()
	classes, dim := len(means), len(means[0])
	k := &bayesKernel{
		priors:  append([]float64{}, priors...),
		mean:    mat.NewMatrix(classes, dim),
		c1:      mat.NewMatrix(classes, dim),
		c2:      mat.NewMatrix(classes, dim),
		meanR:   make([][]float64, classes),
		c1R:     make([][]float64, classes),
		c2R:     make([][]float64, classes),
		classes: classes, dim: dim,
		logTransform: nb.LogTransform,
	}
	for c := 0; c < classes; c++ {
		mc, c1c, c2c := k.mean.Row(c), k.c1.Row(c), k.c2.Row(c)
		k.meanR[c], k.c1R[c], k.c2R[c] = mc, c1c, c2c
		for j, va := range vars[c] {
			mc[j] = means[c][j]
			// The same expressions bayes.logJoint evaluates per call,
			// computed once: identical floats, a log and a multiply saved
			// per class/attr/row.
			c1c[j] = -0.5 * math.Log(2*math.Pi*va)
			c2c[j] = 2 * va
		}
	}
	return k
}

// transform mirrors bayes.NaiveBayes.transform.
func (k *bayesKernel) transform(z, x []float64) {
	if !k.logTransform {
		copy(z, x)
		return
	}
	for j, v := range x {
		if v < 0 {
			z[j] = -math.Log1p(-v)
		} else {
			z[j] = math.Log1p(v)
		}
	}
}

// logJoint accumulates the class-c log posterior exactly as
// bayes.logJoint does: s += (-0.5*log(2*pi*va)) - d*d/(2*va), with both
// parenthesized terms precomputed.
func (k *bayesKernel) logJoint(c int, z []float64) float64 {
	mc, c1c, c2c := k.meanR[c], k.c1R[c], k.c2R[c]
	s := k.priors[c]
	for j, v := range z {
		d := v - mc[j]
		s += c1c[j] - d*d/c2c[j]
	}
	return s
}

func (k *bayesKernel) predict(dst []int, X [][]float64, s *scratch) {
	z := s.z[:k.dim]
	for r, x := range X {
		k.transform(z, x)
		best, bestS := 0, k.logJoint(0, z)
		for c := 1; c < k.classes; c++ {
			if sc := k.logJoint(c, z); sc > bestS {
				best, bestS = c, sc
			}
		}
		dst[r] = best
	}
}

func (k *bayesKernel) proba(dst [][]float64, X [][]float64, s *scratch) {
	z := s.z[:k.dim]
	for r, x := range X {
		k.transform(z, x)
		scores := dst[r]
		for c := 0; c < k.classes; c++ {
			scores[c] = k.logJoint(c, z)
		}
		maxS := math.Inf(-1)
		for _, sc := range scores {
			if sc > maxS {
				maxS = sc
			}
		}
		sum := 0.0
		for c, sc := range scores {
			scores[c] = math.Exp(sc - maxS)
			sum += scores[c]
		}
		for c := range scores {
			scores[c] /= sum
		}
	}
}

// --- MLP ---

type mlpKernel struct {
	w1                   *mat.Matrix // hidden x (dim+1), bias last
	w2                   *mat.Matrix // classes x (hidden+1), bias last
	w1r, w2r             [][]float64 // per-unit row views, fixed at compile
	mean, sd             []float64
	dim, hidden, classes int
}

func compileMLP(m *mlp.MLP) *mlpKernel {
	w1, w2 := m.Weights()
	mean, sd := m.Scaler()
	dim, hidden, classes := m.Topology()
	k := &mlpKernel{
		w1: mat.NewMatrix(hidden, dim+1), w2: mat.NewMatrix(classes, hidden+1),
		w1r: make([][]float64, hidden), w2r: make([][]float64, classes),
		mean: append([]float64{}, mean...), sd: append([]float64{}, sd...),
		dim: dim, hidden: hidden, classes: classes,
	}
	for j, row := range w1 {
		k.w1r[j] = k.w1.Row(j)
		copy(k.w1r[j], row)
	}
	for c, row := range w2 {
		k.w2r[c] = k.w2.Row(c)
		copy(k.w2r[c], row)
	}
	return k
}

// forward mirrors mlp.forward up to the output scores: standardize,
// sigmoid hidden layer, raw class logits into the caller's out (which
// the proba path softmaxes and the label path argmaxes directly).
func (k *mlpKernel) hiddenLayer(x []float64, s *scratch) (z, h []float64) {
	z, h = s.z[:k.dim], s.h[:k.hidden]
	for j, v := range x {
		z[j] = (v - k.mean[j]) / k.sd[j]
	}
	for j, wj := range k.w1r {
		sum := wj[len(z)]
		for i, v := range z {
			sum += wj[i] * v
		}
		h[j] = 1 / (1 + math.Exp(-sum))
	}
	return z, h
}

func (k *mlpKernel) outScore(c int, h []float64) float64 {
	wc := k.w2r[c]
	s := wc[len(h)]
	for j, v := range h {
		s += wc[j] * v
	}
	return s
}

func (k *mlpKernel) predict(dst []int, X [][]float64, s *scratch) {
	dim, hidden := k.dim, k.hidden
	mean, sd := k.mean[:dim], k.sd[:dim]
	// Four rows per pass: each dot product must stay a strictly ordered
	// add chain (bit-equality), but different rows' chains are
	// independent, so blocking keeps four FP accumulators in flight and
	// amortizes the weight-row loads. scratch z/h are sized 4*dim and
	// 4*hidden for the four standardize/activation buffers.
	z0, z1, z2, z3 := s.z[:dim], s.z[dim:2*dim], s.z[2*dim:3*dim], s.z[3*dim:4*dim]
	z1, z2, z3 = z1[:dim], z2[:dim], z3[:dim]
	h0, h1, h2, h3 := s.h[:hidden], s.h[hidden:2*hidden], s.h[2*hidden:3*hidden], s.h[3*hidden:4*hidden]
	h1, h2, h3 = h1[:hidden], h2[:hidden], h3[:hidden]
	w1r, w2r := k.w1r, k.w2r
	r := 0
	for ; r+4 <= len(X); r += 4 {
		x0, x1, x2, x3 := X[r][:dim], X[r+1][:dim], X[r+2][:dim], X[r+3][:dim]
		x1, x2, x3 = x1[:dim], x2[:dim], x3[:dim]
		for j := range x0 {
			m, d := mean[j], sd[j]
			z0[j] = (x0[j] - m) / d
			z1[j] = (x1[j] - m) / d
			z2[j] = (x2[j] - m) / d
			z3[j] = (x3[j] - m) / d
		}
		for j, wj := range w1r {
			wj = wj[:dim+1]
			b := wj[dim]
			s0, s1, s2, s3 := b, b, b, b
			for i, v := range z0 {
				w := wj[i]
				s0 += w * v
				s1 += w * z1[i]
				s2 += w * z2[i]
				s3 += w * z3[i]
			}
			var e [4]float64
			exp4(&e, -s0, -s1, -s2, -s3)
			h0[j] = 1 / (1 + e[0])
			h1[j] = 1 / (1 + e[1])
			h2[j] = 1 / (1 + e[2])
			h3[j] = 1 / (1 + e[3])
		}
		b0, b1, b2, b3 := 0, 0, 0, 0
		var t0, t1, t2, t3 float64
		for c, wc := range w2r {
			wc = wc[:hidden+1]
			b := wc[hidden]
			s0, s1, s2, s3 := b, b, b, b
			for j, v := range h0 {
				w := wc[j]
				s0 += w * v
				s1 += w * h1[j]
				s2 += w * h2[j]
				s3 += w * h3[j]
			}
			// c == 0 seeds the running max with the class-0 score, which
			// keeps first-max tie-breaking (and NaN propagation) identical
			// to ml.ArgMax over the softmax distribution.
			if c == 0 || s0 > t0 {
				b0, t0 = c, s0
			}
			if c == 0 || s1 > t1 {
				b1, t1 = c, s1
			}
			if c == 0 || s2 > t2 {
				b2, t2 = c, s2
			}
			if c == 0 || s3 > t3 {
				b3, t3 = c, s3
			}
		}
		dst[r], dst[r+1], dst[r+2], dst[r+3] = b0, b1, b2, b3
	}
	for ; r < len(X); r++ {
		_, h := k.hiddenLayer(X[r], s)
		best, bestS := 0, k.outScore(0, h)
		for c := 1; c < k.classes; c++ {
			if sc := k.outScore(c, h); sc > bestS {
				best, bestS = c, sc
			}
		}
		dst[r] = best
	}
}

func (k *mlpKernel) proba(dst [][]float64, X [][]float64, s *scratch) {
	for r, x := range X {
		_, h := k.hiddenLayer(x, s)
		out := dst[r]
		maxS := math.Inf(-1)
		for c := 0; c < k.classes; c++ {
			sc := k.outScore(c, h)
			out[c] = sc
			if sc > maxS {
				maxS = sc
			}
		}
		sum := 0.0
		for c := range out {
			out[c] = math.Exp(out[c] - maxS)
			sum += out[c]
		}
		for c := range out {
			out[c] /= sum
		}
	}
}

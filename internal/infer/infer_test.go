package infer

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/bayes"
	"repro/internal/ml/ensemble"
	"repro/internal/ml/linear"
	"repro/internal/ml/mlp"
	"repro/internal/ml/mltest"
	"repro/internal/ml/oner"
	"repro/internal/ml/rules"
	"repro/internal/ml/tree"
)

// factories builds each of the paper's 8 classifiers fresh, seeded.
func factories() map[string]func() ml.Classifier {
	return map[string]func() ml.Classifier{
		"OneR":    func() ml.Classifier { return oner.New() },
		"JRip":    func() ml.Classifier { j := rules.New(); j.Seed = 7; return j },
		"J48":     func() ml.Classifier { return tree.NewJ48() },
		"REPTree": func() ml.Classifier { r := tree.NewREPTree(); r.Seed = 7; return r },
		"NaiveBayes": func() ml.Classifier {
			nb := bayes.New()
			nb.LogTransform = true
			return nb
		},
		"Logistic": func() ml.Classifier { lg := linear.NewLogistic(); lg.Seed = 7; return lg },
		"SVM":      func() ml.Classifier { s := linear.NewSVM(); s.Seed = 7; return s },
		"MLP":      func() ml.Classifier { m := mlp.New(); m.Seed = 7; return m },
	}
}

// datasets covers the equivalence surface: binary, multiclass, a
// single-feature degenerate, and a constant-label degenerate.
func datasets() map[string]struct {
	x          [][]float64
	y          []int
	numClasses int
} {
	out := map[string]struct {
		x          [][]float64
		y          []int
		numClasses int
	}{}
	x, y := mltest.TwoBlobs(3, 120)
	out["binary"] = struct {
		x          [][]float64
		y          []int
		numClasses int
	}{x, y, 2}
	x, y = mltest.ThreeBlobs(5, 80)
	out["multiclass"] = struct {
		x          [][]float64
		y          []int
		numClasses int
	}{x, y, 3}
	x, y = mltest.Blobs(9, [][]float64{{0}, {5}}, 60, 0.8)
	out["single-feature"] = struct {
		x          [][]float64
		y          []int
		numClasses int
	}{x, y, 2}
	x, _ = mltest.TwoBlobs(11, 60)
	out["constant-label"] = struct {
		x          [][]float64
		y          []int
		numClasses int
	}{x, make([]int, len(x)), 2}
	return out
}

// TestEquivalence proves every compiled program emits byte-identical
// labels — and, where supported, probabilities — to the interpreted
// classifier, across binary, multiclass, and degenerate models.
func TestEquivalence(t *testing.T) {
	for dsName, ds := range datasets() {
		for clfName, mk := range factories() {
			t.Run(dsName+"/"+clfName, func(t *testing.T) {
				c := mk()
				if err := c.Train(ds.x, ds.y, ds.numClasses); err != nil {
					t.Fatalf("train: %v", err)
				}
				p, err := Compile(c)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				if p.Dim() != len(ds.x[0]) || p.NumClasses() != ds.numClasses {
					t.Fatalf("program shape (%d,%d), want (%d,%d)",
						p.Dim(), p.NumClasses(), len(ds.x[0]), ds.numClasses)
				}
				got := make([]int, len(ds.x))
				if err := p.Predict(got, ds.x); err != nil {
					t.Fatalf("predict: %v", err)
				}
				for i, x := range ds.x {
					want := c.Predict(x)
					if got[i] != want {
						t.Fatalf("row %d: compiled %d, interpreted %d", i, got[i], want)
					}
					one, err := p.PredictOne(x)
					if err != nil {
						t.Fatalf("predict one: %v", err)
					}
					if one != want {
						t.Fatalf("row %d: PredictOne %d, interpreted %d", i, one, want)
					}
				}
				pc, isProb := c.(ml.ProbClassifier)
				if p.HasProba() != (isProb && clfName != "SVM") {
					t.Fatalf("HasProba = %v for %s", p.HasProba(), clfName)
				}
				if !p.HasProba() {
					return
				}
				dst := make([][]float64, len(ds.x))
				for i := range dst {
					dst[i] = make([]float64, ds.numClasses)
				}
				if err := p.Proba(dst, ds.x); err != nil {
					t.Fatalf("proba: %v", err)
				}
				for i, x := range ds.x {
					want := pc.Proba(x)
					for cl := range want {
						if math.Float64bits(dst[i][cl]) != math.Float64bits(want[cl]) {
							t.Fatalf("row %d class %d: compiled proba %v, interpreted %v",
								i, cl, dst[i][cl], want[cl])
						}
					}
				}
			})
		}
	}
}

// TestBatchAdapterEquivalence checks the interpreted ml.Batch fallback
// agrees with Predict row by row.
func TestBatchAdapterEquivalence(t *testing.T) {
	x, y := mltest.TwoBlobs(3, 60)
	c := tree.NewJ48()
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	dst := make([]int, len(x))
	if err := ml.Batch(c).PredictBatch(dst, x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if want := c.Predict(x[i]); dst[i] != want {
			t.Fatalf("row %d: adapter %d, direct %d", i, dst[i], want)
		}
	}
}

// TestUntrained pins the API v2 untrained contract: Compile and the
// batch adapter return ml.ErrNotTrained instead of panicking.
func TestUntrained(t *testing.T) {
	for name, mk := range factories() {
		if _, err := Compile(mk()); !errors.Is(err, ml.ErrNotTrained) {
			t.Errorf("%s: Compile error = %v, want ml.ErrNotTrained", name, err)
		}
	}
	dst := make([]int, 1)
	if err := ml.Batch(tree.NewJ48()).PredictBatch(dst, [][]float64{{1, 2}}); !errors.Is(err, ml.ErrNotTrained) {
		t.Errorf("Batch adapter error = %v, want ml.ErrNotTrained", err)
	}
}

// TestNotCompilable checks classifier types without kernels are refused
// with the sentinel the fallback path keys on.
func TestNotCompilable(t *testing.T) {
	x, y := mltest.TwoBlobs(3, 40)
	bag := &ensemble.Bagging{Base: func() ml.Classifier { return tree.NewJ48() }, N: 3}
	if err := bag.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if Compilable(bag) {
		t.Fatal("ensemble reported compilable")
	}
	if _, err := Compile(bag); !errors.Is(err, ErrNotCompilable) {
		t.Fatalf("Compile error = %v, want ErrNotCompilable", err)
	}
}

// TestProgramArgChecks covers the error surface of the batch entry
// points: short dst, ragged rows, missing proba support.
func TestProgramArgChecks(t *testing.T) {
	x, y := mltest.TwoBlobs(3, 40)
	c := linear.NewSVM()
	if err := c.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Predict(make([]int, 1), x); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := p.Predict(make([]int, 2), [][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, err := p.PredictOne([]float64{1}); err == nil {
		t.Fatal("short row accepted by PredictOne")
	}
	dst := [][]float64{{0, 0}}
	if err := p.Proba(dst, x[:1]); !errors.Is(err, ErrNoProba) {
		t.Fatalf("SVM Proba error = %v, want ErrNoProba", err)
	}
}

// TestPredictParallelMatchesSerial checks sharded prediction is
// identical to the serial kernel at any worker count.
func TestPredictParallelMatchesSerial(t *testing.T) {
	xs, ys := mltest.TwoBlobs(3, 2500) // 5000 rows, above shardMin
	c := tree.NewJ48()
	if err := c.Train(xs[:200], ys[:200], 2); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]int, len(xs))
	if err := p.Predict(serial, xs); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		sharded := make([]int, len(xs))
		if err := p.PredictParallel(sharded, xs, workers); err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if sharded[i] != serial[i] {
				t.Fatalf("workers=%d row %d: %d != %d", workers, i, sharded[i], serial[i])
			}
		}
	}
}

// TestZeroAlloc is the CI gate on the tentpole property: the
// steady-state compiled predict path allocates nothing, for every
// classifier, on both the batch and single-instance entry points.
func TestZeroAlloc(t *testing.T) {
	x, y := mltest.ThreeBlobs(1, 100)
	dst := make([]int, len(x))
	for name, mk := range factories() {
		c := mk()
		if err := c.Train(x, y, 3); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p, err := Compile(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Warm the scratch pool before measuring.
		if err := p.Predict(dst, x); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if allocs := testing.AllocsPerRun(20, func() {
			if err := p.Predict(dst, x); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: Predict allocs/op = %v, want 0", name, allocs)
		}
		if allocs := testing.AllocsPerRun(20, func() {
			if _, err := p.PredictOne(x[0]); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s: PredictOne allocs/op = %v, want 0", name, allocs)
		}
	}
}

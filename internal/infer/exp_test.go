package infer

import (
	"math"
	"testing"
)

// TestExp4MatchesMathExp pins exp4 bit-identical to math.Exp across a
// dense sweep of the sigmoid argument range, the overflow/underflow
// boundaries, and every special value. Bit-equality of the compiled
// MLP kernel rests on this.
func TestExp4MatchesMathExp(t *testing.T) {
	check := func(x0, x1, x2, x3 float64) {
		t.Helper()
		var e [4]float64
		exp4(&e, x0, x1, x2, x3)
		for i, x := range [4]float64{x0, x1, x2, x3} {
			want := math.Exp(x)
			if math.Float64bits(e[i]) != math.Float64bits(want) {
				t.Fatalf("exp4 lane %d: Exp(%g) = %x, want %x (mode %d)",
					i, x, math.Float64bits(e[i]), math.Float64bits(want), expMode)
			}
		}
	}
	// Dense over [-64, 64), the range sigmoid arguments live in.
	for i := 0; i < 1<<16; i += 4 {
		f := func(j int) float64 { return -64 + float64(j)*(128.0/(1<<16)) }
		check(f(i), f(i+1), f(i+2), f(i+3))
	}
	// Log-spaced out to both tails, past the fast-path bounds.
	for x := 1e-308; x < 1e4; x *= 1.37 {
		check(x, -x, x*0.317, -x*0.713)
	}
	// Boundaries and specials, including mixed fast/slow lanes.
	specials := []float64{
		0, math.Copysign(0, -1), 1, -1,
		expOver, math.Nextafter(expOver, 1000), -expOver,
		expLo, math.Nextafter(expLo, -1000), math.Nextafter(expLo, 0),
		-745.2, -744.9, 709.7, 710.0,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	for _, a := range specials {
		check(a, a, a, a)
		check(a, 0.5, -0.5, a)
	}
}

// TestExpProbePicksReplay documents that on platforms whose math.Exp
// the replay covers (amd64), the probe selects an interleaved mode
// rather than the math.Exp fallback. Skipped elsewhere: exp4 is still
// correct there, just not accelerated.
func TestExpProbePicksReplay(t *testing.T) {
	if expMode == expModeNone {
		t.Skip("no bit-identical replay for this architecture's math.Exp")
	}
	if expProbe(expMode) != true {
		t.Fatalf("probe no longer matches selected mode %d", expMode)
	}
}

// Package parallel is the repository's fan-out engine: a bounded worker
// pool with context cancellation, panic recovery, error aggregation, and
// deterministic result ordering. Every embarrassingly parallel stage of
// the reproduction — per-container trace generation, cross-validation
// folds, the per-classifier and per-family experiment sweeps, and batch
// online prediction — runs through this package.
//
// Determinism contract: Map and ForEach invoke fn exactly once per index
// (unless cancelled early), and Map's result slice is indexed by input
// position, never by completion order. Callers keep their outputs
// bit-identical at any worker count by deriving all randomness from the
// task index (per-shard rng streams), not from shared mutable state.
//
// Instrumented runs (Options.Name != "") record per-task and per-run wall
// time into the obs registry under
//
//	parallel.<name>.task_seconds   (histogram; Sum = busy seconds)
//	parallel.<name>.run_seconds    (histogram; Sum = wall seconds)
//	parallel.<name>.workers        (gauge; last configured worker count)
//	parallel.<name>.busy_workers   (gauge; tasks running right now)
//	parallel.<name>.tasks_done     (counter; tasks completed so far)
//
// so run manifests can report the effective per-stage speedup
// (busy/wall), and a live /metrics scrape can watch a pool's occupancy
// and progress while it runs.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// defaultWorkers is the process-wide fallback worker count used when
// Options.Workers is zero. The CLI's -parallel flag sets it once at
// startup; it defaults to the number of usable CPUs.
var defaultWorkers atomic.Int64

// SetDefaultWorkers installs the process-wide default worker count
// (the CLI's -parallel flag). Values < 1 reset to runtime.NumCPU().
func SetDefaultWorkers(n int) {
	if n < 1 {
		n = runtime.NumCPU()
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the process-wide default worker count.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.NumCPU()
}

// Options configures one pool run.
type Options struct {
	// Name labels the stage for metrics and spans; empty disables
	// instrumentation.
	Name string
	// Workers bounds concurrency. 0 uses DefaultWorkers(); 1 runs the
	// tasks inline on the calling goroutine (the serial reference path).
	Workers int
	// Context, when non-nil, cancels the run: tasks not yet started are
	// skipped and the context error is folded into the returned error.
	Context context.Context
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return DefaultWorkers()
}

// PanicError wraps a panic recovered from a pool task so one panicking
// worker fails the run like an error instead of killing the process.
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// Map runs fn for every index in [0, n) with bounded concurrency and
// returns the results in index order: out[i] is fn(i)'s value regardless
// of which worker ran it or when it finished. On failure the returned
// error aggregates every task error (and recovered panic) in index
// order; the partial results are still returned for inspection.
//
// The first failure (or context cancellation) stops new tasks from being
// claimed; tasks already running complete.
func Map[T any](opt Options, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	errs := make([]error, n)
	run(opt, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			errs[i] = fmt.Errorf("parallel: task %d: %w", i, err)
			return errs[i]
		}
		out[i] = v
		return nil
	}, errs)
	return out, errors.Join(errs...)
}

// ForEach is Map without results: it runs fn for every index in [0, n)
// and returns the aggregated error.
func ForEach(opt Options, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	errs := make([]error, n)
	run(opt, n, func(i int) error {
		if err := fn(i); err != nil {
			errs[i] = fmt.Errorf("parallel: task %d: %w", i, err)
			return errs[i]
		}
		return nil
	}, errs)
	return errors.Join(errs...)
}

// run is the shared pool core: workers claim indices from an atomic
// cursor, recover panics into errs, and stop claiming after the first
// failure or context cancellation.
func run(opt Options, n int, task func(i int) error, errs []error) {
	workers := opt.workers()
	if workers > n {
		workers = n
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}

	var hTask, hRun *obs.Histogram
	var gBusy *obs.Gauge
	var cDone *obs.Counter
	start := time.Now()
	if opt.Name != "" {
		hTask = obs.GetHistogram("parallel."+opt.Name+".task_seconds", obs.TimeBuckets)
		hRun = obs.GetHistogram("parallel."+opt.Name+".run_seconds", obs.TimeBuckets)
		obs.GetGauge("parallel." + opt.Name + ".workers").Set(float64(workers))
		gBusy = obs.GetGauge("parallel." + opt.Name + ".busy_workers")
		cDone = obs.GetCounter("parallel." + opt.Name + ".tasks_done")
	}

	var next, done atomic.Int64
	var failed atomic.Bool
	runOne := func(i int) {
		defer done.Add(1)
		defer func() {
			if r := recover(); r != nil {
				buf := make([]byte, 4096)
				buf = buf[:runtime.Stack(buf, false)]
				errs[i] = &PanicError{Index: i, Value: r, Stack: buf}
				failed.Store(true)
			}
		}()
		gBusy.Add(1)
		defer gBusy.Add(-1)
		t0 := time.Now()
		if err := task(i); err != nil {
			failed.Store(true)
		}
		hTask.Observe(time.Since(t0).Seconds())
		cDone.Inc()
	}
	worker := func() {
		for {
			if failed.Load() {
				return
			}
			select {
			case <-ctx.Done():
				return
			default:
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			runOne(i)
		}
	}

	if workers <= 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}

	hRun.Observe(time.Since(start).Seconds())
	if err := ctx.Err(); err != nil && int(done.Load()) < n {
		// Tasks were skipped by cancellation. Indices are claimed in
		// ascending order, so the trailing nil slots are the skipped ones;
		// fold the context error into the last so the aggregate reports it.
		for i := n - 1; i >= 0; i-- {
			if errs[i] == nil {
				errs[i] = fmt.Errorf("parallel: run cancelled: %w", err)
				break
			}
		}
	}
}

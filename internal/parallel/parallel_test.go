package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Map(Options{Workers: workers}, 50, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	ref, err := Map(Options{Workers: 1}, 32, func(i int) (string, error) {
		return fmt.Sprintf("task-%03d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := Map(Options{Workers: workers}, 32, func(i int) (string, error) {
			return fmt.Sprintf("task-%03d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: result %d differs: %q vs %q", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestErrorPropagationAndAggregation(t *testing.T) {
	bad := errors.New("boom")
	_, err := Map(Options{Workers: 4}, 10, func(i int) (int, error) {
		if i == 3 || i == 7 {
			return 0, fmt.Errorf("%w at %d", bad, i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, bad) {
		t.Fatalf("aggregate error lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "task 3") {
		t.Fatalf("aggregate error missing task index: %v", err)
	}
}

func TestErrorStopsNewTasks(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(Options{Workers: 1}, 100, func(i int) error {
		ran.Add(1)
		if i == 4 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// Serial path: task 5..99 must not start after task 4 failed.
	if n := ran.Load(); n != 5 {
		t.Fatalf("ran %d tasks after failure at index 4, want 5", n)
	}
}

func TestPanicRecovery(t *testing.T) {
	_, err := Map(Options{Workers: 4}, 8, func(i int) (int, error) {
		if i == 2 {
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a PanicError: %v", err)
	}
	if pe.Index != 2 || fmt.Sprint(pe.Value) != "kaboom" {
		t.Fatalf("wrong panic payload: index=%d value=%v", pe.Index, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error missing stack trace")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(Options{Workers: 2, Context: ctx}, 1000, func(i int) error {
		if ran.Add(1) == 3 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the run (%d tasks ran)", n)
	}
}

func TestPreCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(Options{Workers: 4, Context: ctx}, 10, func(i int) error {
		ran.Add(1)
		return nil
	})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran under a cancelled context", ran.Load())
	}
}

func TestZeroTasks(t *testing.T) {
	out, err := Map(Options{}, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("zero-task run: out=%v err=%v", out, err)
	}
	if err := ForEach(Options{}, 0, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	old := DefaultWorkers()
	defer SetDefaultWorkers(old)
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers = %d, want 3", got)
	}
	SetDefaultWorkers(0) // resets to NumCPU
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers = %d, want >= 1", got)
	}
}

func TestInstrumentation(t *testing.T) {
	obs.DefaultRegistry.Reset()
	_, err := Map(Options{Name: "testpool", Workers: 2}, 6, func(i int) (int, error) {
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := obs.DefaultRegistry.Snapshot()
	h, ok := snap.Histograms["parallel.testpool.task_seconds"]
	if !ok || h.Count != 6 {
		t.Fatalf("task histogram missing or wrong count: %+v", h)
	}
	r, ok := snap.Histograms["parallel.testpool.run_seconds"]
	if !ok || r.Count != 1 {
		t.Fatalf("run histogram missing or wrong count: %+v", r)
	}
	if w := snap.Gauges["parallel.testpool.workers"]; w != 2 {
		t.Fatalf("workers gauge = %v, want 2", w)
	}
}

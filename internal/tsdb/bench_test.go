package tsdb

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

// populate registers a registry population comparable to a serve
// daemon's: counters, gauges, and a few histograms with observations.
func populate(r *obs.Registry) {
	for i := 0; i < 40; i++ {
		r.Counter(fmt.Sprintf("bench.counter.%02d", i)).Add(int64(i))
		r.Gauge(fmt.Sprintf("bench.gauge.%02d", i)).Set(float64(i) * 1.5)
	}
	for i := 0; i < 8; i++ {
		h := r.Histogram(fmt.Sprintf("bench.hist.%02d", i), []float64{1, 5, 10, 50, 100})
		for j := 0; j < 100; j++ {
			h.Observe(float64(j % 60))
		}
	}
}

// BenchmarkScrape is the scrape-overhead gate for make bench-diff: one
// full registry snapshot plus ring appends for ~100 series. At the
// default 1 s interval this cost is paid once a second, entirely off
// the detection hot path.
func BenchmarkScrape(b *testing.B) {
	reg := obs.NewRegistry()
	populate(reg)
	st := New(Config{Registry: reg, Interval: time.Second, Bus: obs.NewBus()})
	t0 := time.UnixMilli(1_700_000_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ScrapeAt(t0.Add(time.Duration(i) * time.Second))
	}
}

// BenchmarkScrapeSteadyState measures the post-warmup path — every
// series exists, every ring is full, so appends are pure overwrites.
func BenchmarkScrapeSteadyState(b *testing.B) {
	reg := obs.NewRegistry()
	populate(reg)
	st := New(Config{Registry: reg, Interval: time.Second, Bus: obs.NewBus(),
		RawCapacity: 64, MidCapacity: 64, LongCapacity: 64})
	t0 := time.UnixMilli(1_700_000_000_000)
	for i := 0; i < 2000; i++ {
		st.ScrapeAt(t0.Add(time.Duration(i) * time.Second))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ScrapeAt(t0.Add(time.Duration(2000+i) * time.Second))
	}
}

// BenchmarkQueryRange prices a dashboard-style query: a full-retention
// range at the 15 s tier.
func BenchmarkQueryRange(b *testing.B) {
	reg := obs.NewRegistry()
	st := New(Config{Registry: reg, Interval: time.Second, Bus: obs.NewBus()})
	g := reg.Gauge("g")
	t0 := time.UnixMilli(1_700_000_000_000)
	for i := 0; i < 3600; i++ {
		g.Set(float64(i % 97))
		st.ScrapeAt(t0.Add(time.Duration(i) * time.Second))
	}
	from, to := t0.UnixMilli(), t0.Add(time.Hour).UnixMilli()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.QueryRange("g", from, to, 15_000, "max"); err != nil {
			b.Fatal(err)
		}
	}
}

package tsdb

import (
	"errors"
	"fmt"
	"sort"
)

// Query errors, distinguished so the HTTP layer can map them onto
// status codes (unknown metric → 404, the rest → 400).
var (
	ErrUnknownMetric = errors.New("tsdb: unknown metric")
	ErrBadRange      = errors.New("tsdb: query range has from after to")
	ErrBadAgg        = errors.New("tsdb: unknown aggregation")
)

// Aggregations accepted by QueryRange.
var Aggregations = []string{"avg", "min", "max", "sum", "count", "rate"}

// QueryPoint is one aligned output bucket.
type QueryPoint struct {
	T int64   `json:"t_ms"`
	V float64 `json:"v"`
}

// QueryResult is the /api/v1/query_range payload for one series.
type QueryResult struct {
	Metric string `json:"metric"`
	Kind   string `json:"kind"`
	Agg    string `json:"agg"`
	// Tier names the resolution tier that answered ("raw", "15s", "2m").
	Tier   string `json:"tier"`
	StepMS int64  `json:"step_ms"`
	FromMS int64  `json:"from_ms"`
	ToMS   int64  `json:"to_ms"`
	// Points holds only buckets that contain data (no null padding).
	Points []QueryPoint `json:"points"`
}

// QueryRange answers a Prometheus-style range query: metric samples in
// [fromMS, toMS], aligned to stepMS-wide buckets, reduced by agg:
//
//	avg (default) — bucket mean
//	min, max      — bucket extremes (spikes survive downsampling)
//	sum, count    — bucket totals
//	rate          — per-second increase of a cumulative counter,
//	                differenced across bucket means and clamped at 0
//	                across process restarts
//
// The answering tier is the coarsest one whose resolution still fits
// the requested step (so a 1-hour query is not paid for in raw points),
// promoted to a coarser tier when the requested window predates the
// finer tier's retention. stepMS <= 0 asks for the tier's native
// resolution.
func (st *Store) QueryRange(metric string, fromMS, toMS, stepMS int64, agg string) (QueryResult, error) {
	switch agg {
	case "":
		agg = "avg"
	case "avg", "min", "max", "sum", "count", "rate":
	default:
		return QueryResult{}, fmt.Errorf("%w %q (want one of avg min max sum count rate)", ErrBadAgg, agg)
	}
	res := QueryResult{Metric: metric, Agg: agg, FromMS: fromMS, ToMS: toMS}
	if fromMS > toMS {
		return res, ErrBadRange
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.series[metric]
	if !ok {
		return res, fmt.Errorf("%w %q", ErrUnknownMetric, metric)
	}
	res.Kind = s.kind

	// Tier selection: coarsest tier with resolution <= step, then
	// promoted while the window predates its retention and an even
	// coarser tier actually holds older history.
	rawRes := st.cfg.Interval.Milliseconds()
	if rawRes < 1 {
		rawRes = 1
	}
	resOf := func(i int) int64 {
		switch i {
		case 0:
			return rawRes
		case 1:
			return midResMS
		default:
			return longResMS
		}
	}
	tier := 0
	if stepMS > 0 {
		for i := 1; i < len(s.tiers); i++ {
			if resOf(i) <= stepMS {
				tier = i
			}
		}
	}
	for tier < len(s.tiers)-1 {
		oldest, ok := s.tiers[tier].oldest()
		if ok && oldest <= fromMS {
			break
		}
		// Promote only when the coarser tier genuinely reaches further
		// back — by more than its own bucket alignment, which always
		// rounds a bucket start a little earlier than the raw samples
		// inside it.
		coarser, cok := s.tiers[tier+1].oldest()
		if !cok || (ok && coarser >= oldest-resOf(tier+1)) {
			break
		}
		tier++
	}
	res.Tier = tierNames[tier]
	if stepMS < resOf(tier) {
		stepMS = resOf(tier)
	}
	res.StepMS = stepMS

	// Merge tier points into aligned output buckets. Points arrive
	// oldest-first, so buckets fill in order.
	type bucket struct {
		idx int64
		p   Point
	}
	var buckets []bucket
	// A downsampled bucket's aligned start can precede from while its
	// samples are in range; reach one resolution back so that bucket is
	// not dropped (it lands in output bucket 0 — truncation toward zero
	// keeps the small-negative offset there, since step >= resolution).
	scanFrom := fromMS
	if tr := s.tiers[tier].resMS; tr > 0 {
		scanFrom = fromMS - (tr - 1)
	}
	s.tiers[tier].scan(scanFrom, toMS, func(p Point) {
		idx := (p.T - fromMS) / stepMS
		if n := len(buckets); n > 0 && buckets[n-1].idx == idx {
			buckets[n-1].p.merge(p)
			return
		}
		buckets = append(buckets, bucket{idx: idx, p: p})
	})

	if agg == "rate" {
		// Seed with the newest point before the window so the first
		// bucket has a predecessor to difference against.
		prev, havePrev := s.tiers[tier].lastBefore(fromMS)
		prevAvg, prevT := prev.avg(), prev.T
		for _, b := range buckets {
			v := 0.0
			if havePrev {
				dtSec := float64(b.p.T-prevT) / 1000
				if dtSec > 0 {
					v = (b.p.avg() - prevAvg) / dtSec
				}
				if v < 0 { // counter reset
					v = 0
				}
			}
			res.Points = append(res.Points, QueryPoint{T: fromMS + b.idx*stepMS, V: v})
			prevAvg, prevT, havePrev = b.p.avg(), b.p.T, true
		}
		return res, nil
	}

	for _, b := range buckets {
		var v float64
		switch agg {
		case "min":
			v = b.p.Min
		case "max":
			v = b.p.Max
		case "sum":
			v = b.p.Sum
		case "count":
			v = float64(b.p.Count)
		default:
			v = b.p.avg()
		}
		res.Points = append(res.Points, QueryPoint{T: fromMS + b.idx*stepMS, V: v})
	}
	return res, nil
}

// TierInfo describes one resolution tier of a series in the catalog.
type TierInfo struct {
	Name     string `json:"name"`
	ResMS    int64  `json:"res_ms"`
	Points   int    `json:"points"`
	Capacity int    `json:"capacity"`
	OldestMS int64  `json:"oldest_ms,omitempty"`
}

// SeriesInfo is one catalog entry of the /api/v1/series payload.
type SeriesInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Samples counts every scrape that touched the series.
	Samples int64      `json:"samples"`
	Tiers   []TierInfo `json:"tiers"`
}

// Catalog is the /api/v1/series payload.
type Catalog struct {
	// FirstMS / LastMS bound the scraped time range.
	FirstMS int64 `json:"first_ms"`
	LastMS  int64 `json:"last_ms"`
	// IntervalMS is the scrape period.
	IntervalMS int64        `json:"interval_ms"`
	Series     []SeriesInfo `json:"series"`
}

// Series returns the catalog of every retained series, sorted by name.
func (st *Store) Series() Catalog {
	st.mu.Lock()
	defer st.mu.Unlock()
	cat := Catalog{FirstMS: st.firstMS, LastMS: st.lastMS,
		IntervalMS: st.cfg.Interval.Milliseconds()}
	rawRes := st.cfg.Interval.Milliseconds()
	for name, s := range st.series {
		info := SeriesInfo{Name: name, Kind: s.kind, Samples: s.samples}
		for i, r := range s.tiers {
			ti := TierInfo{Name: tierNames[i], ResMS: r.resMS,
				Points: r.length(), Capacity: len(r.pts)}
			if i == 0 {
				ti.ResMS = rawRes
			}
			if o, ok := r.oldest(); ok {
				ti.OldestMS = o
			}
			info.Tiers = append(info.Tiers, ti)
		}
		cat.Series = append(cat.Series, info)
	}
	sort.Slice(cat.Series, func(i, j int) bool {
		return cat.Series[i].Name < cat.Series[j].Name
	})
	return cat
}

package tsdb

// Point is one retained bucket of a series: the min/max/sum/count of
// every sample that landed in its time slot. Raw-tier points hold a
// single sample (Count 1, Min == Max == Sum); downsampled tiers merge
// many. Keeping the four moments instead of a single averaged value is
// what lets a 10 ms alarm spike survive compaction into a 2-minute
// bucket: the max is still there even after the mean has flattened.
type Point struct {
	// T is the bucket start, unix milliseconds. Raw points carry the
	// sample's own timestamp; downsampled points are aligned to the
	// tier's resolution.
	T     int64   `json:"t_ms"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
}

// observe folds one sample into the bucket.
func (p *Point) observe(v float64) {
	if p.Count == 0 || v < p.Min {
		p.Min = v
	}
	if p.Count == 0 || v > p.Max {
		p.Max = v
	}
	p.Sum += v
	p.Count++
}

// merge folds another bucket into this one.
func (p *Point) merge(q Point) {
	if q.Count == 0 {
		return
	}
	if p.Count == 0 || q.Min < p.Min {
		p.Min = q.Min
	}
	if p.Count == 0 || q.Max > p.Max {
		p.Max = q.Max
	}
	p.Sum += q.Sum
	p.Count += q.Count
}

// avg returns the bucket mean (0 for an empty bucket).
func (p Point) avg() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum / float64(p.Count)
}

// ring is one resolution tier of one series: a fixed-capacity circular
// buffer of Points. Capacity — not wall-clock — bounds storage: when the
// ring is full the oldest bucket is overwritten, so a tier's retention
// window is capacity × resolution regardless of how long the process
// runs. resMS 0 means "no bucketing": every observation with a new
// timestamp appends a point (the raw tier).
type ring struct {
	resMS int64
	pts   []Point
	next  int
	full  bool
}

func newRing(resMS int64, capacity int) *ring {
	return &ring{resMS: resMS, pts: make([]Point, capacity)}
}

// lastIdx returns the index of the most recently written point, or -1
// when the ring is empty.
func (r *ring) lastIdx() int {
	if r.next == 0 && !r.full {
		return -1
	}
	return (r.next - 1 + len(r.pts)) % len(r.pts)
}

// len returns the number of live points.
func (r *ring) length() int {
	if r.full {
		return len(r.pts)
	}
	return r.next
}

// observe streams one sample in: it merges into the newest bucket when
// the sample falls in the same time slot, else appends a fresh bucket
// (evicting the oldest when full). Samples are assumed to arrive in
// non-decreasing time order — the scraper is the only writer.
func (r *ring) observe(tMS int64, v float64) {
	bucket := tMS
	if r.resMS > 0 {
		bucket = tMS - tMS%r.resMS
	}
	if i := r.lastIdx(); i >= 0 && r.pts[i].T == bucket {
		r.pts[i].observe(v)
		return
	}
	p := Point{T: bucket}
	p.observe(v)
	r.pts[r.next] = p
	r.next = (r.next + 1) % len(r.pts)
	if r.next == 0 {
		r.full = true
	}
}

// oldest returns the oldest retained bucket's start time.
func (r *ring) oldest() (int64, bool) {
	if r.full {
		return r.pts[r.next].T, true
	}
	if r.next == 0 {
		return 0, false
	}
	return r.pts[0].T, true
}

// scan calls fn for every retained point with T in [fromMS, toMS],
// oldest first.
func (r *ring) scan(fromMS, toMS int64, fn func(Point)) {
	n := r.length()
	start := 0
	if r.full {
		start = r.next
	}
	for i := 0; i < n; i++ {
		p := r.pts[(start+i)%len(r.pts)]
		if p.T < fromMS || p.T > toMS {
			continue
		}
		fn(p)
	}
}

// lastBefore returns the newest point strictly older than fromMS — the
// seed for rate queries, so the first visible bucket has a predecessor
// to difference against.
func (r *ring) lastBefore(fromMS int64) (Point, bool) {
	n := r.length()
	start := 0
	if r.full {
		start = r.next
	}
	var got Point
	var ok bool
	for i := 0; i < n; i++ {
		p := r.pts[(start+i)%len(r.pts)]
		if p.T >= fromMS {
			break
		}
		got, ok = p, true
	}
	return got, ok
}

// series is one named metric stream across all resolution tiers.
type series struct {
	name    string
	kind    string
	samples int64
	tiers   []*ring // raw, mid, long — finest first
}

func (s *series) observe(tMS int64, v float64) {
	s.samples++
	for _, r := range s.tiers {
		r.observe(tMS, v)
	}
}

// Package tsdb is the embedded time-series store of the observability
// stack: a bounded-memory, multi-resolution history of every metric the
// obs registry exports, held entirely in fixed-capacity ring buffers so
// a serve daemon can answer "what did windows/sec, F1 and drift PSI
// look like for the last day" without any external database.
//
// A scraper goroutine snapshots the registry on an interval (default
// 1 s) — snapshot-based, so nothing on the detection hot path ever
// blocks on the store — and streams each metric into three tiers:
//
//	raw   one point per scrape     (default 600 points ≈ 10 min at 1 s)
//	15s   15-second buckets        (default 480 points = 2 h)
//	2m    2-minute buckets         (default 720 points = 24 h)
//
// Every tier bucket keeps min/max/sum/count, so compaction preserves
// spikes (the max survives) and troughs (the min survives) instead of
// averaging them away. Histogram metrics become three derived series:
// "name:count" (cumulative observation count, rate-queryable) plus
// "name:p50" and "name:p99" sampled through the shared
// obs.HistogramSnapshot.Quantile helper.
//
// Memory is bounded by ring capacity, not wall-clock: with the default
// capacities each series costs (600+480+720) × 40 B = 72 KB regardless
// of uptime, and the series population is bounded by the registry's
// metric names. The store also retains a bounded ring of alert, drift
// and alarm events — the /alerts/history payload — so "what fired in
// the last hour" outlives the alert engine's current state.
package tsdb

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Registry metric names exported by the Store about itself.
const (
	ScrapesMetric  = "tsdb.scrapes"
	SamplesMetric  = "tsdb.samples"
	SeriesMetric   = "tsdb.series"
	ScrapeMSMetric = "tsdb.scrape_ms"
)

// Series kinds, reported in the catalog.
const (
	KindCounter = "counter" // cumulative; query with agg=rate for per-second
	KindGauge   = "gauge"   // instantaneous level
)

// Tier resolutions in milliseconds (raw is unbucketed).
const (
	midResMS  = 15_000
	longResMS = 120_000
)

// tierNames index-matches series.tiers.
var tierNames = []string{"raw", "15s", "2m"}

// Config configures a Store. Zero fields take defaults.
type Config struct {
	// Registry is scraped into the store (default obs.DefaultRegistry).
	Registry *obs.Registry
	// Interval is the scrape period for Run (default 1 s).
	Interval time.Duration
	// RawCapacity / MidCapacity / LongCapacity bound the per-series
	// tiers (defaults 600 / 480 / 720 points). Together they are the
	// store's documented memory cap: bytes/series = 40 × (raw+mid+long).
	RawCapacity  int
	MidCapacity  int
	LongCapacity int
	// Bus, when non-nil (default obs.DefaultBus), is watched by Run for
	// EventTypes, retained in a bounded history ring.
	Bus *obs.Bus
	// EventTypes selects which bus events the history ring keeps
	// (default alarm, alert, alert_resolved, drift, drift_resolved,
	// profile.regression).
	EventTypes []string
	// EventDepth bounds the event-history ring (default 512).
	EventDepth int
	// PreScrape, when set, runs at the start of every ScrapeAt — the
	// hook the runtime/metrics collector uses so runtime gauges are
	// refreshed on the same cadence as the series that record them.
	PreScrape func()
}

// Store is the embedded time-series database. All methods are safe for
// concurrent use; one Run goroutine writes, any number of queries read.
type Store struct {
	mu      sync.Mutex
	cfg     Config
	series  map[string]*series
	events  []obs.Event
	eNext   int
	eFull   bool
	eTotal  int64
	firstMS int64
	lastMS  int64

	running atomic.Bool

	mScrapes *obs.Counter
	mSamples *obs.Counter
	gSeries  *obs.Gauge
	hScrape  *obs.Histogram
}

// New builds a store over the given registry without scraping yet.
func New(cfg Config) *Store {
	if cfg.Registry == nil {
		cfg.Registry = obs.DefaultRegistry
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.RawCapacity <= 0 {
		cfg.RawCapacity = 600
	}
	if cfg.MidCapacity <= 0 {
		cfg.MidCapacity = 480
	}
	if cfg.LongCapacity <= 0 {
		cfg.LongCapacity = 720
	}
	if cfg.Bus == nil {
		cfg.Bus = obs.DefaultBus
	}
	if cfg.EventTypes == nil {
		cfg.EventTypes = []string{"alarm", "alert", "alert_resolved", "drift", "drift_resolved", "profile.regression"}
	}
	if cfg.EventDepth <= 0 {
		cfg.EventDepth = 512
	}
	return &Store{
		cfg:      cfg,
		series:   map[string]*series{},
		events:   make([]obs.Event, cfg.EventDepth),
		mScrapes: cfg.Registry.Counter(ScrapesMetric),
		mSamples: cfg.Registry.Counter(SamplesMetric),
		gSeries:  cfg.Registry.Gauge(SeriesMetric),
		hScrape:  cfg.Registry.Histogram(ScrapeMSMetric, []float64{0.1, 0.5, 1, 5, 10, 50}),
	}
}

// Interval returns the configured scrape period.
func (st *Store) Interval() time.Duration { return st.cfg.Interval }

// Running reports whether a Run loop is currently scraping — the
// /readyz signal that history is accumulating.
func (st *Store) Running() bool { return st != nil && st.running.Load() }

func (st *Store) observeLocked(name, kind string, tMS int64, v float64) {
	s, ok := st.series[name]
	if !ok {
		s = &series{name: name, kind: kind, tiers: []*ring{
			newRing(0, st.cfg.RawCapacity),
			newRing(midResMS, st.cfg.MidCapacity),
			newRing(longResMS, st.cfg.LongCapacity),
		}}
		st.series[name] = s
	}
	s.observe(tMS, v)
}

// ScrapeAt takes one sample of every registry metric, stamped at now —
// the testable core of Run. Counters and gauges become one series each;
// histograms become "name:count" plus "name:p50"/"name:p99" (quantiles
// are skipped while the histogram is empty, so the percentile series
// starts at the first observation instead of a misleading 0).
func (st *Store) ScrapeAt(now time.Time) {
	t0 := time.Now()
	if st.cfg.PreScrape != nil {
		st.cfg.PreScrape()
	}
	// Snapshot outside the store lock: the registry does its own locking
	// and the detection hot path only ever contends on that, never on
	// query traffic.
	snap := st.cfg.Registry.Snapshot()
	tMS := now.UnixMilli()
	samples := int64(0)

	st.mu.Lock()
	for name, v := range snap.Counters {
		st.observeLocked(name, KindCounter, tMS, float64(v))
		samples++
	}
	for name, v := range snap.Gauges {
		st.observeLocked(name, KindGauge, tMS, v)
		samples++
	}
	for name, h := range snap.Histograms {
		st.observeLocked(name+":count", KindCounter, tMS, float64(h.Count))
		samples++
		if h.Count > 0 {
			st.observeLocked(name+":p50", KindGauge, tMS, h.Quantile(0.50))
			st.observeLocked(name+":p99", KindGauge, tMS, h.Quantile(0.99))
			samples += 2
		}
	}
	if st.firstMS == 0 {
		st.firstMS = tMS
	}
	if tMS > st.lastMS {
		st.lastMS = tMS
	}
	nseries := len(st.series)
	st.mu.Unlock()

	st.mScrapes.Inc()
	st.mSamples.Add(samples)
	st.gSeries.Set(float64(nseries))
	st.hScrape.Observe(float64(time.Since(t0).Microseconds()) / 1000)
}

// RecordEvent retains one event in the bounded history ring (exported
// for tests; Run feeds it from the bus).
func (st *Store) RecordEvent(e obs.Event) {
	st.mu.Lock()
	st.events[st.eNext] = e
	st.eNext = (st.eNext + 1) % len(st.events)
	if st.eNext == 0 {
		st.eFull = true
	}
	st.eTotal++
	st.mu.Unlock()
}

// EventHistory is the /alerts/history payload.
type EventHistory struct {
	// Total counts every retained-type event ever seen; Depth is the
	// ring bound, so Total > Depth means the oldest have been evicted.
	Total int64 `json:"total"`
	Depth int   `json:"depth"`
	// Events is oldest-first.
	Events []obs.Event `json:"events"`
}

// Events returns the retained alert/drift/alarm history, oldest first.
func (st *Store) Events() EventHistory {
	st.mu.Lock()
	defer st.mu.Unlock()
	h := EventHistory{Total: st.eTotal, Depth: len(st.events)}
	if st.eFull {
		h.Events = append(h.Events, st.events[st.eNext:]...)
	}
	h.Events = append(h.Events, st.events[:st.eNext]...)
	return h
}

// Run scrapes on the configured interval and watches the bus for
// history events until ctx is done. It scrapes once immediately so
// queries and readiness have data from the first tick. Call it on its
// own goroutine.
func (st *Store) Run(ctx context.Context) {
	st.running.Store(true)
	defer st.running.Store(false)

	keep := map[string]bool{}
	for _, t := range st.cfg.EventTypes {
		keep[t] = true
	}
	var events <-chan obs.Event
	if st.cfg.Bus != nil {
		sub := st.cfg.Bus.Subscribe(256)
		defer sub.Close()
		events = sub.Events()
	}

	st.ScrapeAt(time.Now())
	tick := time.NewTicker(st.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			st.ScrapeAt(now)
		case e, ok := <-events:
			if !ok {
				events = nil
				continue
			}
			if keep[e.Type] {
				st.RecordEvent(e)
			}
		}
	}
}

// HistoryDump is a compact export of the raw tier's recent window — the
// flight recorder embeds one in every incident so a dump shows the
// minutes before the trigger, not just the instant of it.
type HistoryDump struct {
	FromMS int64 `json:"from_ms"`
	ToMS   int64 `json:"to_ms"`
	// Series maps metric name to its raw-tier points inside the window,
	// oldest first.
	Series map[string][]Point `json:"series"`
}

// RecentHistory exports every series' raw-tier points from the last d
// of scraped time (relative to the newest sample).
func (st *Store) RecentHistory(d time.Duration) HistoryDump {
	st.mu.Lock()
	defer st.mu.Unlock()
	dump := HistoryDump{ToMS: st.lastMS, Series: map[string][]Point{}}
	dump.FromMS = dump.ToMS - d.Milliseconds()
	for name, s := range st.series {
		var pts []Point
		s.tiers[0].scan(dump.FromMS, dump.ToMS, func(p Point) {
			pts = append(pts, p)
		})
		if len(pts) > 0 {
			dump.Series[name] = pts
		}
	}
	return dump
}

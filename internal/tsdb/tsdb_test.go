package tsdb

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/obs"
)

// fill scrapes the store once per second of synthetic time, driving the
// gauge "g" through values[i] at t0+i seconds.
func fill(st *Store, r *obs.Registry, t0 time.Time, values []float64) {
	g := r.Gauge("g")
	for i, v := range values {
		g.Set(v)
		st.ScrapeAt(t0.Add(time.Duration(i) * time.Second))
	}
}

func TestRingWraparound(t *testing.T) {
	r := newRing(0, 4)
	for i := 0; i < 10; i++ {
		r.observe(int64(i*1000), float64(i))
	}
	if r.length() != 4 {
		t.Fatalf("length = %d, want 4", r.length())
	}
	oldest, ok := r.oldest()
	if !ok || oldest != 6000 {
		t.Fatalf("oldest = %d ok=%v, want 6000 (capacity evicts, not wall-clock)", oldest, ok)
	}
	var got []float64
	r.scan(0, math.MaxInt64, func(p Point) { got = append(got, p.Sum) })
	want := []float64{6, 7, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
	// Bucketed ring: samples inside one slot merge instead of appending.
	b := newRing(15_000, 4)
	for i := 0; i < 30; i++ {
		b.observe(int64(i*1000), float64(i))
	}
	if b.length() != 2 {
		t.Fatalf("bucketed length = %d, want 2 (30 s = two 15 s buckets)", b.length())
	}
	var pts []Point
	b.scan(0, math.MaxInt64, func(p Point) { pts = append(pts, p) })
	if pts[0].T != 0 || pts[0].Count != 15 || pts[0].Min != 0 || pts[0].Max != 14 {
		t.Fatalf("bucket 0 = %+v", pts[0])
	}
	if pts[1].T != 15_000 || pts[1].Count != 15 || pts[1].Min != 15 || pts[1].Max != 29 {
		t.Fatalf("bucket 1 = %+v", pts[1])
	}
}

// TestDownsamplingInvariants pins the compaction contract: every
// downsampled bucket's min/max bound the raw samples it covers, its sum
// is their exact sum, and its count their exact count — so no tier ever
// hides a spike the raw tier saw.
func TestDownsamplingInvariants(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(Config{Registry: reg, Interval: time.Second, Bus: obs.NewBus()})
	t0 := time.UnixMilli(1_700_000_000_000)
	// 10 minutes of a sawtooth with one huge spike.
	vals := make([]float64, 600)
	for i := range vals {
		vals[i] = float64(i % 37)
	}
	vals[311] = 1e6
	fill(st, reg, t0, vals)

	st.mu.Lock()
	s := st.series["g"]
	raw, mid, long := s.tiers[0], s.tiers[1], s.tiers[2]
	for _, tier := range []*ring{mid, long} {
		tier.scan(0, math.MaxInt64, func(b Point) {
			var want Point
			want.T = b.T
			raw.scan(b.T, b.T+tier.resMS-1, func(p Point) { want.merge(p) })
			if b.Min != want.Min || b.Max != want.Max || b.Count != want.Count ||
				math.Abs(b.Sum-want.Sum) > 1e-9 {
				t.Errorf("tier res=%d bucket %d = %+v, raw says %+v", tier.resMS, b.T, b, want)
			}
			raw.scan(b.T, b.T+tier.resMS-1, func(p Point) {
				if p.Min < b.Min || p.Max > b.Max {
					t.Errorf("raw point %+v escapes tier bucket %+v", p, b)
				}
			})
		})
	}
	st.mu.Unlock()

	// The spike survives into every tier's max.
	for _, step := range []int64{0, 15_000, 120_000} {
		qr, err := st.QueryRange("g", t0.UnixMilli(), t0.Add(10*time.Minute).UnixMilli(), step, "max")
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		peak := 0.0
		for _, p := range qr.Points {
			if p.V > peak {
				peak = p.V
			}
		}
		if peak != 1e6 {
			t.Errorf("step %d (tier %s): spike flattened to %g", step, qr.Tier, peak)
		}
	}
}

func TestQueryRangeTierSelection(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(Config{Registry: reg, Interval: time.Second, Bus: obs.NewBus(),
		RawCapacity: 60}) // raw retains only the last minute
	t0 := time.UnixMilli(1_700_000_000_000)
	vals := make([]float64, 600)
	for i := range vals {
		vals[i] = float64(i)
	}
	fill(st, reg, t0, vals)
	from, to := t0.UnixMilli(), t0.Add(10*time.Minute).UnixMilli()

	// step 0 over the full range: raw can't reach back 10 min, the 15 s
	// tier can.
	qr, err := st.QueryRange("g", from, to, 0, "avg")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Tier != "15s" || qr.StepMS != 15_000 {
		t.Fatalf("full-range tier = %s step %d, want 15s/15000", qr.Tier, qr.StepMS)
	}
	if len(qr.Points) != 40 {
		t.Fatalf("points = %d, want 40 (600 s / 15 s)", len(qr.Points))
	}

	// A recent narrow window at fine step answers from raw.
	qr, err = st.QueryRange("g", to-30_000, to, 1000, "avg")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Tier != "raw" {
		t.Fatalf("recent window tier = %s, want raw", qr.Tier)
	}

	// A coarse step prefers the coarse tier even when raw covers it.
	qr, err = st.QueryRange("g", to-30_000, to, 120_000, "avg")
	if err != nil {
		t.Fatal(err)
	}
	if qr.Tier != "2m" {
		t.Fatalf("coarse step tier = %s, want 2m", qr.Tier)
	}
}

func TestQueryRangeEdgeCases(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(Config{Registry: reg, Interval: time.Second, Bus: obs.NewBus()})
	t0 := time.UnixMilli(1_700_000_000_000)
	fill(st, reg, t0, []float64{1, 2, 3})
	from := t0.UnixMilli()

	// Unknown metric.
	if _, err := st.QueryRange("no.such.metric", from, from+1000, 0, "avg"); !errors.Is(err, ErrUnknownMetric) {
		t.Errorf("unknown metric err = %v", err)
	}
	// from > to.
	if _, err := st.QueryRange("g", from+1000, from, 0, "avg"); !errors.Is(err, ErrBadRange) {
		t.Errorf("from>to err = %v", err)
	}
	// Bad aggregation.
	if _, err := st.QueryRange("g", from, from+1000, 0, "median"); !errors.Is(err, ErrBadAgg) {
		t.Errorf("bad agg err = %v", err)
	}
	// Empty range before any data: valid, zero points.
	qr, err := st.QueryRange("g", from-10_000, from-5_000, 0, "avg")
	if err != nil || len(qr.Points) != 0 {
		t.Errorf("pre-history query = %+v, %v; want empty, nil", qr.Points, err)
	}
	// Entirely in the future: valid, zero points.
	qr, err = st.QueryRange("g", from+3_600_000, from+7_200_000, 0, "avg")
	if err != nil || len(qr.Points) != 0 {
		t.Errorf("future query = %+v, %v; want empty, nil", qr.Points, err)
	}
	// A window ending in the future still returns what exists.
	qr, err = st.QueryRange("g", from, from+3_600_000, 1000, "avg")
	if err != nil || len(qr.Points) != 3 {
		t.Errorf("overhanging query = %d points, %v; want 3", len(qr.Points), err)
	}
}

func TestQueryRangeRate(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(Config{Registry: reg, Interval: time.Second, Bus: obs.NewBus()})
	c := reg.Counter("work")
	t0 := time.UnixMilli(1_700_000_000_000)
	for i := 0; i < 60; i++ {
		c.Add(10) // 10/s steady
		st.ScrapeAt(t0.Add(time.Duration(i) * time.Second))
	}
	qr, err := st.QueryRange("work", t0.Add(10*time.Second).UnixMilli(),
		t0.Add(50*time.Second).UnixMilli(), 1000, "rate")
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Points) == 0 {
		t.Fatal("no rate points")
	}
	for _, p := range qr.Points {
		if math.Abs(p.V-10) > 1e-9 {
			t.Fatalf("rate point %+v, want steady 10/s", p)
		}
	}
	// Counter reset clamps at 0 instead of going negative.
	reg.Reset()
	st.ScrapeAt(t0.Add(61 * time.Second))
	qr, err = st.QueryRange("work", t0.Add(60*time.Second).UnixMilli(),
		t0.Add(62*time.Second).UnixMilli(), 1000, "rate")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range qr.Points {
		if p.V < 0 {
			t.Fatalf("negative rate %+v across counter reset", p)
		}
	}
}

func TestScrapeHistogramSeries(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(Config{Registry: reg, Interval: time.Second, Bus: obs.NewBus()})
	t0 := time.UnixMilli(1_700_000_000_000)
	// Empty histogram: count series exists, quantile series withheld.
	reg.Histogram("lat", []float64{1, 10, 100})
	st.ScrapeAt(t0)
	if _, err := st.QueryRange("lat:count", t0.UnixMilli(), t0.UnixMilli(), 0, "avg"); err != nil {
		t.Errorf("lat:count after empty scrape: %v", err)
	}
	if _, err := st.QueryRange("lat:p99", t0.UnixMilli(), t0.UnixMilli(), 0, "avg"); err == nil {
		t.Error("lat:p99 exists before any observation")
	}
	// After observations, the quantile series appear, via the shared helper.
	h := reg.Histogram("lat", nil)
	for _, v := range []float64{1, 2, 3, 50} {
		h.Observe(v)
	}
	st.ScrapeAt(t0.Add(time.Second))
	qr, err := st.QueryRange("lat:p99", t0.UnixMilli(), t0.Add(time.Second).UnixMilli(), 0, "avg")
	if err != nil || len(qr.Points) != 1 {
		t.Fatalf("lat:p99 = %+v, %v", qr, err)
	}
	if qr.Points[0].V <= 0 {
		t.Errorf("p99 = %g, want positive", qr.Points[0].V)
	}
	cat := st.Series()
	kinds := map[string]string{}
	for _, s := range cat.Series {
		kinds[s.Name] = s.Kind
	}
	if kinds["lat:count"] != KindCounter || kinds["lat:p99"] != KindGauge {
		t.Errorf("catalog kinds = %v", kinds)
	}
}

func TestSeriesCatalog(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(Config{Registry: reg, Interval: time.Second, Bus: obs.NewBus(),
		RawCapacity: 10, MidCapacity: 20, LongCapacity: 30})
	t0 := time.UnixMilli(1_700_000_000_000)
	fill(st, reg, t0, []float64{1, 2, 3})
	cat := st.Series()
	if cat.FirstMS != t0.UnixMilli() || cat.LastMS != t0.Add(2*time.Second).UnixMilli() {
		t.Errorf("catalog range = %d..%d", cat.FirstMS, cat.LastMS)
	}
	var g *SeriesInfo
	for i := range cat.Series {
		if cat.Series[i].Name == "g" {
			g = &cat.Series[i]
		}
	}
	if g == nil || g.Kind != KindGauge || g.Samples != 3 {
		t.Fatalf("series g = %+v", g)
	}
	if len(g.Tiers) != 3 || g.Tiers[0].Capacity != 10 || g.Tiers[1].Capacity != 20 ||
		g.Tiers[2].Capacity != 30 {
		t.Fatalf("tiers = %+v", g.Tiers)
	}
	if g.Tiers[0].Name != "raw" || g.Tiers[1].ResMS != 15_000 || g.Tiers[2].ResMS != 120_000 {
		t.Fatalf("tier meta = %+v", g.Tiers)
	}
	// Catalog is name-sorted for stable JSON.
	for i := 1; i < len(cat.Series); i++ {
		if cat.Series[i-1].Name > cat.Series[i].Name {
			t.Fatalf("catalog unsorted at %d: %s > %s", i, cat.Series[i-1].Name, cat.Series[i].Name)
		}
	}
}

func TestEventHistoryRing(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(Config{Registry: reg, Bus: obs.NewBus(), EventDepth: 4})
	for i := 0; i < 7; i++ {
		st.RecordEvent(obs.Event{Type: "alert", Window: i})
	}
	h := st.Events()
	if h.Total != 7 || h.Depth != 4 || len(h.Events) != 4 {
		t.Fatalf("history = total %d depth %d len %d", h.Total, h.Depth, len(h.Events))
	}
	if h.Events[0].Window != 3 || h.Events[3].Window != 6 {
		t.Fatalf("history order = %+v", h.Events)
	}
}

func TestRunScrapesAndWatches(t *testing.T) {
	reg := obs.NewRegistry()
	bus := obs.NewBus()
	reg.Counter("c").Add(5)
	st := New(Config{Registry: reg, Interval: 5 * time.Millisecond, Bus: bus,
		EventTypes: []string{"alarm"}})
	if st.Running() {
		t.Fatal("running before Run")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); st.Run(ctx) }()

	deadline := time.After(5 * time.Second)
	for {
		if st.Running() {
			if qr, err := st.QueryRange("c", 0, time.Now().UnixMilli(), 0, "avg"); err == nil && len(qr.Points) > 0 {
				break
			}
		}
		select {
		case <-deadline:
			t.Fatal("Run never scraped the counter")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// Bus events of a retained type land in history; others are dropped.
	bus.Publish(obs.Event{Type: "alarm", Msg: "boom"})
	bus.Publish(obs.Event{Type: "window", Msg: "ignored"})
	for st.Events().Total == 0 {
		select {
		case <-deadline:
			t.Fatal("alarm event never retained")
		case <-time.After(5 * time.Millisecond):
		}
	}
	h := st.Events()
	if h.Events[0].Type != "alarm" {
		t.Fatalf("history = %+v", h.Events)
	}
	for _, e := range h.Events {
		if e.Type == "window" {
			t.Fatal("unretained event type leaked into history")
		}
	}
	cancel()
	<-done
	if st.Running() {
		t.Error("still running after ctx cancel")
	}
}

func TestRecentHistory(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(Config{Registry: reg, Interval: time.Second, Bus: obs.NewBus()})
	t0 := time.UnixMilli(1_700_000_000_000)
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = float64(i)
	}
	fill(st, reg, t0, vals)
	dump := st.RecentHistory(time.Minute)
	if dump.ToMS != t0.Add(299*time.Second).UnixMilli() {
		t.Fatalf("ToMS = %d", dump.ToMS)
	}
	pts := dump.Series["g"]
	if len(pts) != 61 { // inclusive minute window at 1 s cadence
		t.Fatalf("history points = %d, want 61", len(pts))
	}
	if pts[0].Sum != 239 || pts[len(pts)-1].Sum != 299 {
		t.Fatalf("history window = %g..%g, want 239..299", pts[0].Sum, pts[len(pts)-1].Sum)
	}
}

// TestConcurrentScrapeAndQuery races the single writer against many
// readers; run under -race this is the store's thread-safety gate.
func TestConcurrentScrapeAndQuery(t *testing.T) {
	reg := obs.NewRegistry()
	st := New(Config{Registry: reg, Bus: obs.NewBus()})
	g := reg.Gauge("g")
	reg.Counter("c")
	reg.Histogram("h", []float64{1, 2}).Observe(1)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t0 := time.UnixMilli(1_700_000_000_000)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			g.Set(float64(i))
			st.ScrapeAt(t0.Add(time.Duration(i) * time.Second))
			st.RecordEvent(obs.Event{Type: "alert", Window: i})
		}
	}()
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		st.Series()
		st.QueryRange("g", 0, math.MaxInt64/2, 15_000, "max")
		st.QueryRange("c", 0, math.MaxInt64/2, 0, "rate")
		st.Events()
		st.RecentHistory(time.Minute)
	}
	close(stop)
	<-done
}

package experiments

import (
	"strings"
	"testing"
)

// TestCatalogWellFormed pins the invariants `repro list` and Run rely on:
// unique non-empty ids, titles and runners everywhere, kind-appropriate
// id prefixes, and paper entries carrying their figure reference.
func TestCatalogWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Catalog() {
		if d.ID == "" || d.Title == "" || d.Run == nil {
			t.Fatalf("incomplete catalog entry %+v", d)
		}
		if seen[d.ID] {
			t.Fatalf("duplicate catalog id %q", d.ID)
		}
		seen[d.ID] = true
		switch d.Kind {
		case KindPaper:
			if d.Figure == "" {
				t.Fatalf("paper entry %q has no figure reference", d.ID)
			}
			if strings.HasPrefix(d.ID, "ablate-") || strings.HasPrefix(d.ID, "ext-") {
				t.Fatalf("paper entry %q has an ablation/extension prefix", d.ID)
			}
		case KindAblation:
			if !strings.HasPrefix(d.ID, "ablate-") {
				t.Fatalf("ablation entry %q lacks the ablate- prefix", d.ID)
			}
		case KindExtension:
			if !strings.HasPrefix(d.ID, "ext-") {
				t.Fatalf("extension entry %q lacks the ext- prefix", d.ID)
			}
		default:
			t.Fatalf("entry %q has unknown kind %v", d.ID, d.Kind)
		}
	}
}

// TestCatalogIDPartitions checks that the id accessors tile the catalog.
func TestCatalogIDPartitions(t *testing.T) {
	all := AllIDs()
	want := append(append(IDs(), AblationIDs()...), ExtensionIDs()...)
	if len(all) != len(want) {
		t.Fatalf("AllIDs has %d entries, kinds sum to %d", len(all), len(want))
	}
	for i := range all {
		if all[i] != want[i] {
			t.Fatalf("AllIDs[%d] = %q, want %q", i, all[i], want[i])
		}
	}
	if len(IDs()) != 11 {
		t.Fatalf("paper id count %d, want 11", len(IDs()))
	}
	if _, ok := Lookup("fig13"); !ok {
		t.Fatal("Lookup(fig13) failed")
	}
	if _, ok := Lookup("fig999"); ok {
		t.Fatal("Lookup(fig999) succeeded")
	}
}

// TestRunKindRestriction pins RunAblation/RunExtension rejecting ids of
// the wrong kind even though Run accepts every catalog id.
func TestRunKindRestriction(t *testing.T) {
	r := NewRunner(WithConfig(Config{Seed: 1, Scale: 0.015}))
	if _, err := r.RunAblation("fig13"); err == nil {
		t.Fatal("RunAblation accepted a paper id")
	}
	if _, err := r.RunExtension("ablate-noise"); err == nil {
		t.Fatal("RunExtension accepted an ablation id")
	}
	if _, err := r.Run("no-such-id"); err == nil {
		t.Fatal("Run accepted an unknown id")
	}
}

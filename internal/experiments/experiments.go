package experiments

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hw"
	"repro/internal/ml/eval"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config scopes a reproduction run.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Scale shrinks the paper's 3,070-sample database (1.0 = full).
	Scale float64
	// Trace overrides measurement parameters (zero value = paper
	// defaults).
	Trace trace.Config
	// Progress, when non-nil, receives coarse completion callbacks while
	// an experiment runs: stage names a unit of work (usually a
	// classifier), done/total count completed units. Long multi-model
	// experiments call it once per model; cheap table experiments may not
	// call it at all. Parallel experiments may call it from worker
	// goroutines; the callback must be safe for concurrent use.
	Progress func(stage string, done, total int)
	// Parallelism bounds the worker count for the fan-out stages
	// (per-classifier sweeps, per-family PCA). 0 uses the process-wide
	// default (the CLI's -parallel flag); 1 forces the serial path.
	Parallelism int
}

// Option configures a Runner at construction.
type Option func(*Config)

// WithSeed sets the seed that drives all randomness.
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithScale sets the database scale (1.0 = the paper's full 3,070
// samples).
func WithScale(scale float64) Option {
	return func(c *Config) { c.Scale = scale }
}

// WithTrace overrides the measurement configuration.
func WithTrace(tc trace.Config) Option {
	return func(c *Config) { c.Trace = tc }
}

// WithProgress installs a completion callback (see Config.Progress). It
// may be invoked from worker goroutines and must be safe for concurrent
// use.
func WithProgress(fn func(stage string, done, total int)) Option {
	return func(c *Config) { c.Progress = fn }
}

// WithParallelism bounds the fan-out worker count (see
// Config.Parallelism).
func WithParallelism(n int) Option {
	return func(c *Config) { c.Parallelism = n }
}

// WithConfig bulk-applies a Config, replacing everything set so far.
// Later options still apply on top.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// Runner caches the generated dataset across experiments so `repro all`
// measures one database, exactly as the paper did.
type Runner struct {
	cfg Config
	tbl *dataset.Table
}

// NewRunner returns a Runner. With no options it reproduces the paper
// defaults: seed 0, scale 0.1, paper trace parameters, no progress
// callback, process-default parallelism.
func NewRunner(opts ...Option) *Runner {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		cfg.Scale = 0.1
	}
	return &Runner{cfg: cfg}
}

// workers resolves the runner's fan-out worker count.
func (r *Runner) workers() int {
	if r.cfg.Parallelism > 0 {
		return r.cfg.Parallelism
	}
	return parallel.DefaultWorkers()
}

// Dataset generates (once) and returns the labelled table.
func (r *Runner) Dataset() (*dataset.Table, error) {
	if r.tbl != nil {
		return r.tbl, nil
	}
	tbl, err := core.GenerateDataset(core.DatasetConfig{
		Seed:  r.cfg.Seed,
		Scale: r.cfg.Scale,
		Trace: r.cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	r.tbl = tbl
	r.progress("dataset", 1, 1)
	return tbl, nil
}

// progress reports one completed unit of work to the configured callback
// (if any), to the debug log, and to the live event bus so an attached
// /events stream can follow a long repro run stage by stage.
func (r *Runner) progress(stage string, done, total int) {
	if r.cfg.Progress != nil {
		r.cfg.Progress(stage, done, total)
	}
	obs.PublishEvent(obs.Event{Type: "stage", Msg: stage,
		Window: done, Value: float64(done) / float64(total)})
	obs.Log().Debug("experiment progress", "stage", stage, "done", done, "total", total)
}

// Table1 reproduces the database composition table.
func (r *Runner) Table1() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	samples := tbl.SampleCounts()
	rows := tbl.ClassCounts()
	paper := workload.PaperSampleCounts()
	rep := &Report{
		ID:         "table1",
		Title:      "Number of samples of different application classes",
		PaperClaim: "3,070 samples: backdoor 452, rootkit 324, trojan 1169, virus 650, worm 149, benign 326; ~50,000 HPC rows",
		Header:     []string{"class", "paper samples", "our samples", "our rows"},
	}
	totalS, totalR := 0, 0
	for _, c := range workload.AllClasses() {
		rep.Rows = append(rep.Rows, []string{
			c.String(),
			fmt.Sprintf("%d", paper[c]),
			fmt.Sprintf("%d", samples[c]),
			fmt.Sprintf("%d", rows[c]),
		})
		totalS += samples[c]
		totalR += rows[c]
	}
	rep.Rows = append(rep.Rows, []string{"total",
		fmt.Sprintf("%d", workload.PaperTotalSamples),
		fmt.Sprintf("%d", totalS), fmt.Sprintf("%d", totalR)})
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("scale %.2f of the paper's database", r.cfg.Scale))
	return rep, nil
}

// Fig6 reproduces the class-distribution pie as percentages.
func (r *Runner) Fig6() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	samples := tbl.SampleCounts()
	total := 0
	for _, n := range samples {
		total += n
	}
	paper := workload.PaperSampleCounts()
	rep := &Report{
		ID:         "fig6",
		Title:      "Distribution of malware (used) into classes",
		PaperClaim: "distribution mirrors the in-the-wild mix: trojan dominates (~70% of malware on the internet; 43% of the paper's malware samples)",
		Header:     []string{"class", "paper share", "our share"},
	}
	for _, c := range workload.AllClasses() {
		rep.Rows = append(rep.Rows, []string{
			c.String(),
			pct(float64(paper[c]) / float64(workload.PaperTotalSamples)),
			pct(float64(samples[c]) / float64(total)),
		})
	}
	return rep, nil
}

// Table2 reproduces the PCA-reduced custom feature sets per class.
func (r *Runner) Table2() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	custom, common, err := core.CustomFeatureSets(tbl, 8, 0.95)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:         "table2",
		Title:      "Reduced features from PCA (top-8 custom per malware class)",
		PaperClaim: "8 custom features per class; 4 features common to all classes (branch-instructions, cache-references, branch-misses, node-stores)",
		Header:     []string{"rank", "backdoor", "rootkit", "trojan", "virus", "worm"},
	}
	order := []string{"backdoor", "rootkit", "trojan", "virus", "worm"}
	for i := 0; i < 8; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, cls := range order {
			row = append(row, custom[cls][i])
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d common features across all classes: %v", len(common), common))
	return rep, nil
}

// PCAPlots reproduces Figures 9-12: per-family top-2-PC projections,
// summarized by centroid separation (a scatter plot in numbers).
func (r *Runner) PCAPlots() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:         "pcaplots",
		Title:      "PCA plots for rootkit/trojan/virus/worm (Figures 9-12)",
		PaperClaim: "malware and benign rows form visually separable clusters in the top-2 PC plane",
		Header:     []string{"class", "points", "centroid dist", "mean spread", "separation ratio"},
	}
	// One task per malware family: each fits its own PCA over that
	// family's rows plus benign, so the four projections are independent.
	families := workload.MalwareClasses()
	rows, err := parallel.Map(
		parallel.Options{Name: "experiments.families", Workers: r.workers()},
		len(families), func(fi int) ([]string, error) {
			c := families[fi]
			pts, labels, err := core.PCAPlotPoints(tbl, c)
			if err != nil {
				return nil, err
			}
			var cm, cb [2]float64
			var nm, nb int
			for i, p := range pts {
				if labels[i] == 1 {
					cm[0] += p[0]
					cm[1] += p[1]
					nm++
				} else {
					cb[0] += p[0]
					cb[1] += p[1]
					nb++
				}
			}
			cm[0] /= float64(nm)
			cm[1] /= float64(nm)
			cb[0] /= float64(nb)
			cb[1] /= float64(nb)
			dist := math.Hypot(cm[0]-cb[0], cm[1]-cb[1])
			spread := 0.0
			for i, p := range pts {
				var ref [2]float64
				if labels[i] == 1 {
					ref = cm
				} else {
					ref = cb
				}
				spread += math.Hypot(p[0]-ref[0], p[1]-ref[1])
			}
			spread /= float64(len(pts))
			ratio := math.Inf(1)
			if spread > 0 {
				ratio = dist / spread
			}
			return []string{
				c.String(), fmt.Sprintf("%d", len(pts)),
				fmt.Sprintf("%.2f", dist), fmt.Sprintf("%.2f", spread),
				fmt.Sprintf("%.2f", ratio),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	rep.Rows = rows
	return rep, nil
}

// Fig13 reproduces the binary accuracy comparison at 8 and 4 PCA-reduced
// features for all classifiers.
func (r *Runner) Fig13() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	top8, err := core.GlobalTopFeaturesBinary(tbl, 8, 0.95)
	if err != nil {
		return nil, err
	}
	top4 := top8[:4]
	rep := &Report{
		ID:         "fig13",
		Title:      "Binary accuracy, 8 vs 4 PCA-reduced features",
		PaperClaim: "most classifiers lose a little accuracy at 4 features; J48 and OneR barely change",
		Header:     []string{"classifier", "acc@16", "acc@8", "acc@4", "delta 8->4"},
	}
	// One task per classifier; each trains its three models (16/8/4
	// features) independently from the shared seed, so row order and
	// content match the serial sweep at any worker count.
	names := core.ClassifierNames()
	var done atomic.Int64
	rows, err := parallel.Map(
		parallel.Options{Name: "experiments.classifiers", Workers: r.workers()},
		len(names), func(i int) ([]string, error) {
			name := names[i]
			res16, err := core.RunDetector(tbl, core.DetectorConfig{
				Classifier: name, Binary: true,
				Seed: r.cfg.Seed, SkipHardware: true,
			})
			if err != nil {
				return nil, err
			}
			res8, err := core.RunDetector(tbl, core.DetectorConfig{
				Classifier: name, Binary: true, Features: top8,
				Seed: r.cfg.Seed, SkipHardware: true,
			})
			if err != nil {
				return nil, err
			}
			res4, err := core.RunDetector(tbl, core.DetectorConfig{
				Classifier: name, Binary: true, Features: top4,
				Seed: r.cfg.Seed, SkipHardware: true,
			})
			if err != nil {
				return nil, err
			}
			a16, a8, a4 := res16.Eval.Accuracy(), res8.Eval.Accuracy(), res4.Eval.Accuracy()
			r.progress(name, int(done.Add(1)), len(names))
			return []string{
				name, pct(a16), pct(a8), pct(a4), fmt.Sprintf("%+.1f%%", (a4-a8)*100),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	rep.Rows = rows
	return rep, nil
}

// HardwareFigures reproduces Figures 14 (area), 15 (latency) and 16
// (accuracy per area) over the binary classifiers at 8 reduced features.
func (r *Runner) HardwareFigures(id string) (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	top8, err := core.GlobalTopFeaturesBinary(tbl, 8, 0.95)
	if err != nil {
		return nil, err
	}
	type row struct {
		name string
		res  *core.DetectorResult
	}
	names := core.ClassifierNames()
	var done atomic.Int64
	rows, err := parallel.Map(
		parallel.Options{Name: "experiments.classifiers", Workers: r.workers()},
		len(names), func(i int) (row, error) {
			res, err := core.RunDetector(tbl, core.DetectorConfig{
				Classifier: names[i], Binary: true, Features: top8, Seed: r.cfg.Seed,
			})
			if err != nil {
				return row{}, err
			}
			r.progress(names[i], int(done.Add(1)), len(names))
			return row{names[i], res}, nil
		})
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: id}
	switch id {
	case "fig14":
		rep.Title = "Hardware area comparison (LUT-equivalents, 8 features)"
		rep.PaperClaim = "MLP is by far the largest; OneR and JRip the smallest"
		rep.Header = []string{"classifier", "LUT", "FF", "DSP", "BRAM", "equiv LUTs", "power mW", "nJ/inf"}
		for _, rw := range rows {
			a := rw.res.HW.Area
			pw := hw.EstimatePower(rw.res.HW, 1)
			rep.Rows = append(rep.Rows, []string{rw.name,
				fmt.Sprintf("%d", a.LUT), fmt.Sprintf("%d", a.FF),
				fmt.Sprintf("%d", a.DSP), fmt.Sprintf("%d", a.BRAM),
				fmt.Sprintf("%d", rw.res.HW.EquivLUTs),
				fmt.Sprintf("%.2f", pw.TotalMW()),
				fmt.Sprintf("%.3f", pw.EnergyPerInferenceNJ)})
		}
	case "fig15":
		rep.Title = "Hardware latency comparison (cycles at 100 MHz, 8 features)"
		rep.PaperClaim = "trees and rules classify in a handful of cycles; MLP latency dominates"
		rep.Header = []string{"classifier", "cycles", "latency ns"}
		for _, rw := range rows {
			rep.Rows = append(rep.Rows, []string{rw.name,
				fmt.Sprintf("%d", rw.res.HW.Cycles),
				fmt.Sprintf("%.0f", rw.res.HW.LatencyNs)})
		}
	case "fig16":
		rep.Title = "Accuracy/Area comparison (accuracy % per kLUT, 8 features)"
		rep.PaperClaim = "JRip and OneR have far better accuracy/area than neural networks"
		rep.Header = []string{"classifier", "accuracy", "equiv LUTs", "acc%/kLUT"}
		type fom struct {
			name string
			v    float64
			row  []string
		}
		var foms []fom
		for _, rw := range rows {
			v := hw.AccuracyPerArea(rw.res.Eval.Accuracy(), rw.res.HW)
			foms = append(foms, fom{rw.name, v, []string{rw.name,
				pct(rw.res.Eval.Accuracy()),
				fmt.Sprintf("%d", rw.res.HW.EquivLUTs),
				fmt.Sprintf("%.1f", v)}})
		}
		sort.SliceStable(foms, func(i, j int) bool { return foms[i].v > foms[j].v })
		for _, f := range foms {
			rep.Rows = append(rep.Rows, f.row)
		}
		rep.Notes = append(rep.Notes, "rows sorted by accuracy/area, best first")
	}
	return rep, nil
}

// Fig17 reproduces the multiclass average accuracy comparison
// (MLR / MLP / SVM on the 6-class problem, all 16 features).
func (r *Runner) Fig17() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:         "fig17",
		Title:      "Average accuracy for multiclass classification",
		PaperClaim: "neural networks (MLP) have the best multiclass accuracy",
		Header:     []string{"classifier", "accuracy"},
	}
	names := core.MulticlassNames()
	var done atomic.Int64
	rows, err := parallel.Map(
		parallel.Options{Name: "experiments.classifiers", Workers: r.workers()},
		len(names), func(i int) ([]string, error) {
			res, err := core.RunDetector(tbl, core.DetectorConfig{
				Classifier: names[i], Binary: false, Seed: r.cfg.Seed, SkipHardware: true,
			})
			if err != nil {
				return nil, err
			}
			r.progress(names[i], int(done.Add(1)), len(names))
			return []string{core.MulticlassLabel(names[i]), pct(res.Eval.Accuracy())}, nil
		})
	if err != nil {
		return nil, err
	}
	rep.Rows = rows
	return rep, nil
}

// Fig18 reproduces the per-class accuracy (recall) of the multiclass
// classifiers.
func (r *Runner) Fig18() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:         "fig18",
		Title:      "Per-class accuracy for the multiclass classifiers",
		PaperClaim: "per-class accuracy varies strongly by family; the benign-like trojan and the smallest family (worm, 149 samples) suffer most",
		Header:     append([]string{"classifier"}, classNames()...),
	}
	names := core.MulticlassNames()
	var done atomic.Int64
	rows, err := parallel.Map(
		parallel.Options{Name: "experiments.classifiers", Workers: r.workers()},
		len(names), func(i int) ([]string, error) {
			res, err := core.RunDetector(tbl, core.DetectorConfig{
				Classifier: names[i], Binary: false, Seed: r.cfg.Seed, SkipHardware: true,
			})
			if err != nil {
				return nil, err
			}
			row := []string{core.MulticlassLabel(names[i])}
			for c := 0; c < workload.NumClasses; c++ {
				row = append(row, pct(res.Eval.Confusion.Recall(c)))
			}
			r.progress(names[i], int(done.Add(1)), len(names))
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	rep.Rows = rows
	return rep, nil
}

// Fig19 reproduces the PCA-assisted MLR vs plain MLR comparison: the
// paper reports ~7% average accuracy improvement from per-class custom
// feature sets.
func (r *Runner) Fig19() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	train, test, err := tbl.SplitBySample(0.7, r.cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Context baseline: joint multinomial MLR on all 16 features.
	plain16, err := core.NewClassifier("Logistic", r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	plain16Res, err := eval.TrainAndTest(plain16,
		rowsOf(train), train.ClassLabels(), rowsOf(test), test.ClassLabels(),
		workload.NumClasses)
	if err != nil {
		return nil, err
	}

	// The custom-vs-non-custom comparison holds the architecture fixed
	// (one-vs-rest MLR ensemble) and varies only the feature sets: one
	// shared PCA top-8 set ("normal") vs per-class custom 8 sets
	// ("PCA-assisted"), the thesis's Figure 19 quantities.
	global8, err := core.GlobalTopFeatures(train, 8, 0.95)
	if err != nil {
		return nil, err
	}
	uniform, err := core.TrainUniformAssisted(train, global8, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	uniformRes, err := eval.Evaluate(uniform,
		rowsOf(test), test.ClassLabels(), workload.NumClasses)
	if err != nil {
		return nil, err
	}

	assisted, err := core.TrainPCAAssisted(train, 8, 0.95, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	assistedRes, err := eval.Evaluate(assisted,
		rowsOf(test), test.ClassLabels(), workload.NumClasses)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:         "fig19",
		Title:      "PCA-assisted MLR vs normal MLR (per-class accuracy)",
		PaperClaim: "PCA-assisted multiclass classification (custom 8 features/class) is ~7% more accurate than the non-custom reduced classifier",
		Header:     []string{"class", "normal MLR (global-8)", "PCA-assisted MLR (custom-8)"},
	}
	for c := 0; c < workload.NumClasses; c++ {
		rep.Rows = append(rep.Rows, []string{
			workload.Class(c).String(),
			pct(uniformRes.Confusion.Recall(c)),
			pct(assistedRes.Confusion.Recall(c)),
		})
	}
	pu, aa := uniformRes.Accuracy(), assistedRes.Accuracy()
	rep.Rows = append(rep.Rows, []string{"average", pct(pu), pct(aa)})
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("PCA-assisted delta: %+.1f%% (paper: ~+7%%); joint MLR on all 16 features: %s",
			(aa-pu)*100, pct(plain16Res.Accuracy())))
	return rep, nil
}

func classNames() []string {
	out := make([]string, workload.NumClasses)
	for i, c := range workload.AllClasses() {
		out[i] = c.String()
	}
	return out
}

func rowsOf(t *dataset.Table) [][]float64 {
	rows := make([][]float64, len(t.Instances))
	for i := range t.Instances {
		rows[i] = t.Instances[i].Features
	}
	return rows
}

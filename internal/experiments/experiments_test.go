package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/trace"
)

// testRunner returns a runner with a very small dataset for fast tests.
func testRunner() *Runner {
	return NewRunner(WithConfig(Config{
		Seed:  1,
		Scale: 0.015,
		Trace: trace.Config{WindowsPerSample: 6, SimInstrPerSlice: 500, Multiplex: true},
	}))
}

// sharedRunner caches one runner (and thus one dataset) across tests.
var sharedRunner = testRunner()

func TestIDsDispatch(t *testing.T) {
	for _, id := range IDs() {
		rep, err := sharedRunner.Run(id)
		if err != nil {
			t.Fatalf("experiment %s: %v", id, err)
		}
		if rep.ID != id {
			t.Fatalf("experiment %s reported id %s", id, rep.ID)
		}
		if len(rep.Rows) == 0 || len(rep.Header) == 0 {
			t.Fatalf("experiment %s produced no data", id)
		}
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			t.Fatalf("rendering %s: %v", id, err)
		}
		if !strings.Contains(buf.String(), rep.Title) {
			t.Fatalf("rendering of %s missing title", id)
		}
	}
	if _, err := sharedRunner.Run("fig99"); err == nil {
		t.Fatal("accepted unknown experiment id")
	}
}

func TestTable1Shape(t *testing.T) {
	rep, err := sharedRunner.Table1()
	if err != nil {
		t.Fatal(err)
	}
	// 6 classes + total row.
	if len(rep.Rows) != 7 {
		t.Fatalf("table1 rows %d", len(rep.Rows))
	}
	if rep.Rows[6][0] != "total" {
		t.Fatal("missing total row")
	}
}

func TestTable2Shape(t *testing.T) {
	rep, err := sharedRunner.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("table2 rows %d, want 8 ranks", len(rep.Rows))
	}
	if len(rep.Header) != 6 {
		t.Fatalf("table2 header %v", rep.Header)
	}
	if len(rep.Notes) == 0 || !strings.Contains(rep.Notes[0], "common") {
		t.Fatal("table2 missing common-features note")
	}
}

func TestFig13CoversAllClassifiers(t *testing.T) {
	rep, err := sharedRunner.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("fig13 rows %d, want 8 classifiers", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if !strings.HasSuffix(row[1], "%") || !strings.HasSuffix(row[2], "%") || !strings.HasSuffix(row[3], "%") {
			t.Fatalf("fig13 row not percentages: %v", row)
		}
	}
}

func TestHardwareFiguresShapes(t *testing.T) {
	for _, id := range []string{"fig14", "fig15", "fig16"} {
		rep, err := sharedRunner.HardwareFigures(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Rows) != 8 {
			t.Fatalf("%s rows %d", id, len(rep.Rows))
		}
	}
}

func TestFig16SortedDescending(t *testing.T) {
	rep, err := sharedRunner.HardwareFigures("fig16")
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = 1e18
	for _, row := range rep.Rows {
		var v float64
		if _, err := fmtSscan(row[3], &v); err != nil {
			t.Fatalf("bad fom cell %q", row[3])
		}
		if v > prev {
			t.Fatal("fig16 not sorted descending")
		}
		prev = v
	}
}

func TestFig17And18Multiclass(t *testing.T) {
	rep17, err := sharedRunner.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep17.Rows) != 3 {
		t.Fatalf("fig17 rows %d", len(rep17.Rows))
	}
	names := map[string]bool{}
	for _, row := range rep17.Rows {
		names[row[0]] = true
	}
	if !names["MLR"] || !names["MLP"] || !names["SVM"] {
		t.Fatalf("fig17 classifiers %v", names)
	}
	rep18, err := sharedRunner.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep18.Header) != 7 { // classifier + 6 classes
		t.Fatalf("fig18 header %v", rep18.Header)
	}
}

func TestFig19HasDelta(t *testing.T) {
	rep, err := sharedRunner.Fig19()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rows[len(rep.Rows)-1][0] != "average" {
		t.Fatal("fig19 missing average row")
	}
	if len(rep.Notes) == 0 || !strings.Contains(rep.Notes[0], "delta") {
		t.Fatal("fig19 missing delta note")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations regenerate datasets; skipped in -short")
	}
	for _, id := range AblationIDs() {
		rep, err := sharedRunner.RunAblation(id)
		if err != nil {
			t.Fatalf("ablation %s: %v", id, err)
		}
		if len(rep.Rows) < 2 {
			t.Fatalf("ablation %s rows %d", id, len(rep.Rows))
		}
	}
	if _, err := sharedRunner.RunAblation("ablate-nothing"); err == nil {
		t.Fatal("accepted unknown ablation")
	}
}

func TestRunnerCachesDataset(t *testing.T) {
	r := testRunner()
	a, err := r.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Dataset not cached")
	}
}

// fmtSscan parses a float cell.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}

func TestExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extensions are slow; skipped in -short")
	}
	for _, id := range ExtensionIDs() {
		rep, err := sharedRunner.RunExtension(id)
		if err != nil {
			t.Fatalf("extension %s: %v", id, err)
		}
		if len(rep.Rows) < 2 {
			t.Fatalf("extension %s rows %d", id, len(rep.Rows))
		}
		if rep.ID != id {
			t.Fatalf("extension %s reports id %s", id, rep.ID)
		}
	}
	if _, err := sharedRunner.RunExtension("ext-nothing"); err == nil {
		t.Fatal("accepted unknown extension")
	}
}

// TestHeadlineShapes pins the paper's qualitative claims at test scale so
// regressions in any substrate (workloads, simulator, PMU, classifiers,
// hardware model) surface immediately.
func TestHeadlineShapes(t *testing.T) {
	area := func(rep *Report, name string) float64 {
		for _, row := range rep.Rows {
			if row[0] == name {
				var v float64
				if _, err := fmt.Sscanf(row[5], "%f", &v); err != nil {
					t.Fatalf("bad area cell %q", row[5])
				}
				return v
			}
		}
		t.Fatalf("classifier %s missing from report", name)
		return 0
	}
	fig14, err := sharedRunner.HardwareFigures("fig14")
	if err != nil {
		t.Fatal(err)
	}
	mlpArea := area(fig14, "MLP")
	for _, small := range []string{"OneR", "Logistic", "SVM"} {
		if area(fig14, small) >= mlpArea {
			t.Fatalf("%s area not below MLP", small)
		}
	}

	fig16, err := sharedRunner.HardwareFigures("fig16")
	if err != nil {
		t.Fatal(err)
	}
	if fig16.Rows[len(fig16.Rows)-1][0] != "MLP" && fig16.Rows[0][0] == "MLP" {
		t.Fatal("MLP wins accuracy/area; the paper's embedded argument inverted")
	}

	fig17, err := sharedRunner.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	accOf := func(rep *Report, name string) float64 {
		for _, row := range rep.Rows {
			if row[0] == name {
				var v float64
				fmt.Sscanf(row[1], "%f", &v)
				return v
			}
		}
		t.Fatalf("%s missing", name)
		return 0
	}
	if accOf(fig17, "MLP") < accOf(fig17, "SVM") {
		t.Fatal("MLP not ahead of SVM on multiclass; paper claim inverted")
	}
}

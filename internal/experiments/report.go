// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment returns a Report: the paper's claim, the
// measured rows, and a plain-text rendering that prints the same series
// the paper plots. The cmd/hpcmal `repro` subcommand and the repository
// benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Report is the outcome of one reproduced experiment.
type Report struct {
	// ID is the paper artifact identifier ("table1", "fig13", ...).
	ID string
	// Title describes the artifact.
	Title string
	// PaperClaim states the qualitative result the paper reports.
	PaperClaim string
	// Header and Rows hold the regenerated data.
	Header []string
	Rows   [][]string
	// Notes carries measured qualitative findings (e.g. "PCA-assisted
	// MLR +6.8% over plain MLR").
	Notes []string
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	if r.PaperClaim != "" {
		fmt.Fprintf(w, "paper: %s\n", r.PaperClaim)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintln(w, line(r.Header))
	for _, row := range r.Rows {
		fmt.Fprintln(w, line(row))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

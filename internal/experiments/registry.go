package experiments

import (
	"fmt"

	"repro/internal/obs"
)

// Kind partitions the experiment catalog the way `repro` groups it.
type Kind int

const (
	// KindPaper reproduces an artifact of the paper itself.
	KindPaper Kind = iota
	// KindAblation probes a design choice the paper fixed (DESIGN.md).
	KindAblation
	// KindExtension goes beyond the paper along its related/future work.
	KindExtension
)

// String names the kind for list output.
func (k Kind) String() string {
	switch k {
	case KindPaper:
		return "paper"
	case KindAblation:
		return "ablation"
	case KindExtension:
		return "extension"
	}
	return "unknown"
}

// Def is one experiment catalog entry. `repro list`, Run's dispatch and
// the rendered report header all read this table, so an experiment's id,
// title and paper reference cannot drift apart: Run stamps the report's
// ID and Title from its Def after the method returns.
type Def struct {
	// ID is the `repro` command-line identifier.
	ID string
	// Title is the report headline.
	Title string
	// Figure names the paper artifact being reproduced; empty for
	// ablations and extensions, which have no paper counterpart.
	Figure string
	// Kind groups the entry for `repro all|ablations|extensions`.
	Kind Kind
	// Run executes the experiment on a Runner.
	Run func(*Runner) (*Report, error)
}

// defs is the full catalog in presentation order: paper artifacts first
// (paper order), then ablations, then extensions.
var defs = []Def{
	{ID: "table1", Figure: "Table 1", Kind: KindPaper,
		Title: "Number of samples of different application classes",
		Run:   (*Runner).Table1},
	{ID: "table2", Figure: "Table 2", Kind: KindPaper,
		Title: "Reduced features from PCA (top-8 custom per malware class)",
		Run:   (*Runner).Table2},
	{ID: "fig6", Figure: "Figure 6", Kind: KindPaper,
		Title: "Distribution of malware (used) into classes",
		Run:   (*Runner).Fig6},
	{ID: "pcaplots", Figure: "Figures 9-12", Kind: KindPaper,
		Title: "PCA plots for rootkit/trojan/virus/worm (Figures 9-12)",
		Run:   (*Runner).PCAPlots},
	{ID: "fig13", Figure: "Figure 13", Kind: KindPaper,
		Title: "Binary accuracy, 8 vs 4 PCA-reduced features",
		Run:   (*Runner).Fig13},
	{ID: "fig14", Figure: "Figure 14", Kind: KindPaper,
		Title: "Hardware area comparison (LUT-equivalents, 8 features)",
		Run:   func(r *Runner) (*Report, error) { return r.HardwareFigures("fig14") }},
	{ID: "fig15", Figure: "Figure 15", Kind: KindPaper,
		Title: "Hardware latency comparison (cycles at 100 MHz, 8 features)",
		Run:   func(r *Runner) (*Report, error) { return r.HardwareFigures("fig15") }},
	{ID: "fig16", Figure: "Figure 16", Kind: KindPaper,
		Title: "Accuracy/Area comparison (accuracy % per kLUT, 8 features)",
		Run:   func(r *Runner) (*Report, error) { return r.HardwareFigures("fig16") }},
	{ID: "fig17", Figure: "Figure 17", Kind: KindPaper,
		Title: "Average accuracy for multiclass classification",
		Run:   (*Runner).Fig17},
	{ID: "fig18", Figure: "Figure 18", Kind: KindPaper,
		Title: "Per-class accuracy for the multiclass classifiers",
		Run:   (*Runner).Fig18},
	{ID: "fig19", Figure: "Figure 19", Kind: KindPaper,
		Title: "PCA-assisted MLR vs normal MLR (per-class accuracy)",
		Run:   (*Runner).Fig19},

	{ID: "ablate-multiplex", Kind: KindAblation,
		Title: "Ablation: PMU multiplexing vs ideal PMU (J48, binary)",
		Run:   (*Runner).AblateMultiplexing},
	{ID: "ablate-period", Kind: KindAblation,
		Title: "Ablation: HPC sampling period (J48, binary)",
		Run:   (*Runner).AblateSamplingPeriod},
	{ID: "ablate-custom", Kind: KindAblation,
		Title: "Ablation: one global top-8 set vs per-class custom top-8 sets (same OvR MLR ensemble)",
		Run:   (*Runner).AblateGlobalVsCustom},
	{ID: "ablate-noise", Kind: KindAblation,
		Title: "Ablation: container isolation vs background cache noise (J48, binary)",
		Run:   (*Runner).AblateIsolationNoise},

	{ID: "ext-ensemble", Kind: KindExtension,
		Title: "Extension: ensemble learning for HPC malware detection (binary)",
		Run:   (*Runner).ExtEnsemble},
	{ID: "ext-anomaly", Kind: KindExtension,
		Title: "Extension: unsupervised anomaly detection (benign-only training)",
		Run:   (*Runner).ExtAnomaly},
	{ID: "ext-online", Kind: KindExtension,
		Title: "Extension: run-time detection with decision smoothing (MLP + majority vote)",
		Run:   (*Runner).ExtOnline},
	{ID: "ext-features", Kind: KindExtension,
		Title: "Extension: PCA custom sets vs decision-tree feature importance",
		Run:   (*Runner).ExtFeatureAgreement},
	{ID: "ext-learncurve", Kind: KindExtension,
		Title: "Extension: binary accuracy vs database scale (16 features)",
		Run:   (*Runner).ExtLearningCurve},
	{ID: "ext-quant", Kind: KindExtension,
		Title: "Extension: detector accuracy vs HPC counter truncation (J48 netlist)",
		Run:   (*Runner).ExtQuantization},
	{ID: "ext-knn", Kind: KindExtension,
		Title: "Extension: instance-based learning (Demme'13 KNN) vs a tree in hardware",
		Run:   (*Runner).ExtKNN},
	{ID: "ext-svd", Kind: KindExtension,
		Title: "Extension: SVD feature selection (HPCMalHunter) vs PCA rankings",
		Run:   (*Runner).ExtSVD},
	{ID: "ext-rates", Kind: KindExtension,
		Title: "Extension: raw counts vs bus-cycle-normalized rates (binary)",
		Run:   (*Runner).ExtRateFeatures},
}

var defByID = func() map[string]Def {
	m := make(map[string]Def, len(defs))
	for _, d := range defs {
		if _, dup := m[d.ID]; dup {
			panic(fmt.Sprintf("experiments: duplicate catalog id %q", d.ID))
		}
		m[d.ID] = d
	}
	return m
}()

// Catalog returns the full experiment table in presentation order.
func Catalog() []Def {
	return append([]Def{}, defs...)
}

// Lookup returns the catalog entry for id.
func Lookup(id string) (Def, bool) {
	d, ok := defByID[id]
	return d, ok
}

// idsOf lists the catalog ids of one kind, in catalog order.
func idsOf(k Kind) []string {
	var out []string
	for _, d := range defs {
		if d.Kind == k {
			out = append(out, d.ID)
		}
	}
	return out
}

// IDs lists the paper-artifact experiment identifiers in paper order.
func IDs() []string { return idsOf(KindPaper) }

// AblationIDs lists the design-choice ablations (DESIGN.md).
func AblationIDs() []string { return idsOf(KindAblation) }

// ExtensionIDs lists the beyond-the-paper experiments: the research
// directions the thesis's related-work and future-work sections point at,
// built on the same substrate.
func ExtensionIDs() []string { return idsOf(KindExtension) }

// AllIDs lists every catalog id: paper order, then ablations, then
// extensions.
func AllIDs() []string {
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.ID
	}
	return out
}

// Run dispatches one experiment by catalog id — paper figure, ablation or
// extension alike. Each runs under an "experiment.<id>" span so run
// snapshots attribute wall time per figure, and the returned report's ID
// and Title are stamped from the catalog entry so they cannot drift from
// `repro list`.
func (r *Runner) Run(id string) (*Report, error) {
	d, ok := defByID[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, AllIDs())
	}
	sp := obs.StartSpan("experiment." + id)
	defer sp.End()
	rep, err := d.Run(r)
	if err != nil {
		return nil, err
	}
	rep.ID = d.ID
	rep.Title = d.Title
	return rep, nil
}

// RunAblation runs one ablation by id. It is Run restricted to the
// ablation kind, kept for callers that iterate AblationIDs.
func (r *Runner) RunAblation(id string) (*Report, error) {
	if d, ok := defByID[id]; !ok || d.Kind != KindAblation {
		return nil, fmt.Errorf("experiments: unknown ablation %q (have %v)", id, AblationIDs())
	}
	return r.Run(id)
}

// RunExtension runs one extension experiment by id. It is Run restricted
// to the extension kind, kept for callers that iterate ExtensionIDs.
func (r *Runner) RunExtension(id string) (*Report, error) {
	if d, ok := defByID[id]; !ok || d.Kind != KindExtension {
		return nil, fmt.Errorf("experiments: unknown extension %q (have %v)", id, ExtensionIDs())
	}
	return r.Run(id)
}

package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/ml"
	"repro/internal/ml/anomaly"
	"repro/internal/ml/ensemble"
	"repro/internal/ml/eval"
	"repro/internal/ml/knn"
	"repro/internal/ml/tree"
	"repro/internal/online"
	"repro/internal/pca"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ExtEnsemble compares ensemble learners against their base classifier on
// binary detection (the Khasawneh'15 / Sayadi'18 direction).
func (r *Runner) ExtEnsemble() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	train, test, err := tbl.SplitBySample(0.7, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	xtr, ytr := rowsOf(train), train.BinaryLabels()
	xte, yte := rowsOf(test), test.BinaryLabels()

	base := func() ml.Classifier {
		c, err := core.NewClassifier("J48", r.cfg.Seed)
		if err != nil {
			panic(err)
		}
		return c
	}
	mlrF := func() ml.Classifier {
		c, err := core.NewClassifier("Logistic", r.cfg.Seed)
		if err != nil {
			panic(err)
		}
		return c
	}
	candidates := []ml.Classifier{
		base(),
		&ensemble.Bagging{Base: base, N: 10, Seed: r.cfg.Seed},
		&ensemble.AdaBoostM1{Base: base, Rounds: 10, Seed: r.cfg.Seed},
		&ensemble.Voting{Factories: []ensemble.Factory{base, mlrF, func() ml.Classifier {
			c, _ := core.NewClassifier("NaiveBayes", r.cfg.Seed)
			return c
		}}},
		&ensemble.Stacking{Factories: []ensemble.Factory{base, mlrF}, Seed: r.cfg.Seed},
		&ensemble.RandomForest{Trees: 20, MaxDepth: 12, Seed: r.cfg.Seed},
	}
	rep := &Report{
		ID:         "ext-ensemble",
		Title:      "Extension: ensemble learning for HPC malware detection (binary)",
		PaperClaim: "(related work: Khasawneh'15, Sayadi'18) ensembles of simple detectors improve run-time detection",
		Header:     []string{"detector", "accuracy", "benign recall", "malware recall"},
	}
	preds := make([][]int, len(candidates))
	for ci, c := range candidates {
		res, err := eval.TrainAndTest(c, xtr, ytr, xte, yte, 2)
		if err != nil {
			return nil, fmt.Errorf("ext-ensemble %s: %w", c.Name(), err)
		}
		preds[ci] = make([]int, len(xte))
		for i := range xte {
			preds[ci][i] = c.Predict(xte[i])
		}
		rep.Rows = append(rep.Rows, []string{
			c.Name(), pct(res.Accuracy()),
			pct(res.Confusion.Recall(0)), pct(res.Confusion.Recall(1)),
		})
	}
	// Significance of the last ensemble (RandomForest) vs the J48 base,
	// via McNemar's paired test on the shared test set.
	mn, err := eval.McNemar(preds[len(preds)-1], preds[0], yte)
	if err != nil {
		return nil, err
	}
	verdict := "not significant"
	if mn.Significant(0.05) {
		verdict = "significant at alpha=0.05"
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"McNemar RandomForest vs J48: chi2=%.2f p=%.4f (%s; forest uniquely right on %d, tree on %d)",
		mn.Statistic, mn.PValue, verdict, mn.BOnly, mn.COnly))
	return rep, nil
}

// ExtAnomaly evaluates unsupervised detection (Tang'14 direction): fit on
// benign training rows only, score everything else, report AUC and the
// detection/false-positive rates at the calibrated threshold.
func (r *Runner) ExtAnomaly() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	train, test, err := tbl.SplitBySample(0.7, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	var benignTrain [][]float64
	for _, in := range train.Instances {
		if !in.Class.IsMalware() {
			benignTrain = append(benignTrain, in.Features)
		}
	}
	rep := &Report{
		ID:         "ext-anomaly",
		Title:      "Extension: unsupervised anomaly detection (benign-only training)",
		PaperClaim: "(related work: Tang'14; future work: statistical alternatives to ML) anomaly detectors need no malware labels",
		Header:     []string{"detector", "AUC", "malware detect rate", "benign FP rate"},
	}
	for _, d := range []anomaly.Detector{
		&anomaly.Mahalanobis{LogTransform: true},
		&anomaly.ZScore{LogTransform: true},
	} {
		if err := d.Fit(benignTrain, 0.99); err != nil {
			return nil, fmt.Errorf("ext-anomaly %s: %w", d.Name(), err)
		}
		var scores []float64
		var labels []int
		caught, malware, fp, benign := 0, 0, 0, 0
		for _, in := range test.Instances {
			s := d.Score(in.Features)
			scores = append(scores, s)
			hit := d.Detect(in.Features)
			if in.Class.IsMalware() {
				labels = append(labels, 1)
				malware++
				if hit {
					caught++
				}
			} else {
				labels = append(labels, 0)
				benign++
				if hit {
					fp++
				}
			}
		}
		auc, err := eval.AUC(scores, labels)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			d.Name(), fmt.Sprintf("%.3f", auc),
			pct(float64(caught) / float64(malware)),
			pct(float64(fp) / float64(benign)),
		})
	}
	return rep, nil
}

// ExtOnline measures run-time detection: a binary MLP trained on the
// dataset monitors fresh per-sample traces through decision smoothers,
// reporting per-family detection rate and mean latency in sampling
// periods.
func (r *Runner) ExtOnline() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	// Train on a class-balanced resample so the benign profile stays
	// quiet (the raw 89%-malware mix would alarm on everything).
	labels := tbl.BinaryLabels()
	rows := rowsOf(tbl)
	var bx [][]float64
	var by []int
	for i, l := range labels {
		if l == 0 {
			bx = append(bx, rows[i])
			by = append(by, 0)
		}
	}
	nBenign := len(bx)
	// Stride-sample the malware rows so every family is represented in
	// the balanced set (rows are grouped by class).
	nMalware := len(labels) - nBenign
	stride := nMalware / nBenign
	if stride < 1 {
		stride = 1
	}
	seen := 0
	for i, l := range labels {
		if l != 1 {
			continue
		}
		if seen%stride == 0 && len(bx) < 2*nBenign {
			bx = append(bx, rows[i])
			by = append(by, 1)
		}
		seen++
	}
	clf, err := core.NewClassifier("MLP", r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := clf.Train(bx, by, 2); err != nil {
		return nil, err
	}

	tc := r.ablationTrace()
	tc.WindowsPerSample = 32 // longer watch for latency measurement
	if tc.SamplePeriod <= 0 {
		tc.SamplePeriod = 0.01
	}
	const perClass = 6

	rep := &Report{
		ID:         "ext-online",
		Title:      "Extension: run-time detection with decision smoothing (MLP + majority vote)",
		PaperClaim: "(related work: Demme'13, Ozsoy'15) sustained malicious behaviour should alarm within tens of ms; benign should not",
		Header:     []string{"class", "detect rate", "mean latency ms"},
	}
	for _, class := range workload.AllClasses() {
		// Fresh traces with seeds outside the training range, collected in
		// parallel (seeds derive from the trace index, so the batch is
		// bit-identical at any worker count).
		traces, err := trace.CollectBatch(tc, class, perClass, func(i int) uint64 {
			return r.cfg.Seed ^ (uint64(class)*1000+uint64(i)+1)*0x9e3779b97f4a7c15 ^ 0xabcdef
		}, r.workers())
		if err != nil {
			return nil, err
		}
		results, err := online.MonitorAll(clf, traces,
			online.WithSmoother(func() online.Smoother {
				return &online.MajorityVoter{Window: 8, Threshold: 0.6}
			}),
			online.WithSamplePeriod(tc.SamplePeriod),
			online.WithParallelism(r.workers()))
		if err != nil {
			return nil, err
		}
		detected, latSum := 0, 0.0
		for _, res := range results {
			if res.Detected {
				detected++
				latSum += res.LatencySeconds
			}
		}
		lat := "-"
		if detected > 0 {
			lat = fmt.Sprintf("%.0f", latSum/float64(detected)*1000)
		}
		rep.Rows = append(rep.Rows, []string{
			class.String(), pct(float64(detected) / float64(perClass)), lat,
		})
	}
	rep.Notes = append(rep.Notes,
		"benign row reports the false-alarm rate; malware rows the detection rate")
	return rep, nil
}

// ExtFeatureAgreement cross-validates Table 2 with an independent
// feature-selection method: for each malware class, a J48 trained on
// class-vs-benign ranks features by split importance; the report shows
// the overlap between the tree's top-8 and the PCA custom top-8.
func (r *Runner) ExtFeatureAgreement() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	custom, _, err := core.CustomFeatureSets(tbl, 8, 0.95)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:         "ext-features",
		Title:      "Extension: PCA custom sets vs decision-tree feature importance",
		PaperClaim: "(validation) two independent selection methods should largely agree on each family's informative counters",
		Header:     []string{"class", "overlap/8", "tree-only features"},
	}
	for _, class := range workload.MalwareClasses() {
		sub := tbl.FilterClasses(class, workload.Benign)
		j, err := core.NewClassifier("J48", r.cfg.Seed)
		if err != nil {
			return nil, err
		}
		if err := j.Train(rowsOf(sub), sub.BinaryLabels(), 2); err != nil {
			return nil, err
		}
		imp := j.(*tree.J48).FeatureImportance(tbl.NumAttributes())
		idx := make([]int, len(imp))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return imp[idx[a]] > imp[idx[b]] })
		treeTop := map[string]bool{}
		var treeOnly []string
		inPCA := map[string]bool{}
		for _, f := range custom[class.String()] {
			inPCA[f] = true
		}
		overlap := 0
		for _, i := range idx[:8] {
			name := tbl.Attributes[i]
			treeTop[name] = true
			if inPCA[name] {
				overlap++
			} else if imp[i] > 0 {
				treeOnly = append(treeOnly, name)
			}
		}
		rep.Rows = append(rep.Rows, []string{
			class.String(), fmt.Sprintf("%d/8", overlap), strings.Join(treeOnly, ", "),
		})
	}
	return rep, nil
}

// ExtLearningCurve sweeps the database size: how much data does each
// detector need? The thesis's future work calls out the limited database
// as a key limitation.
func (r *Runner) ExtLearningCurve() (*Report, error) {
	rep := &Report{
		ID:         "ext-learncurve",
		Title:      "Extension: binary accuracy vs database scale (16 features)",
		PaperClaim: "(future work: 'limitations like limited database') accuracy should grow with more samples",
		Header:     []string{"scale", "samples", "J48", "MLP"},
	}
	scales := []float64{0.05, 0.1, 0.2}
	if r.cfg.Scale < 0.2 {
		scales = []float64{0.25 * r.cfg.Scale, 0.5 * r.cfg.Scale, r.cfg.Scale}
	}
	for _, scale := range scales {
		tbl, err := core.GenerateDataset(core.DatasetConfig{
			Seed: r.cfg.Seed, Scale: scale, Trace: r.ablationTrace(),
		})
		if err != nil {
			return nil, err
		}
		samples := 0
		for _, n := range tbl.SampleCounts() {
			samples += n
		}
		row := []string{fmt.Sprintf("%.3f", scale), fmt.Sprintf("%d", samples)}
		for _, name := range []string{"J48", "MLP"} {
			res, err := core.RunDetector(tbl, core.DetectorConfig{
				Classifier: name, Binary: true, Seed: r.cfg.Seed, SkipHardware: true,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, pct(res.Eval.Accuracy()))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// ExtQuantization asks how many low-order HPC counter bits the hardware
// detector can drop: the trained J48 is compiled to its integer-datapath
// netlist and evaluated with inputs truncated to ever-coarser grids. A
// narrow counter is cheaper to snapshot and route on-chip, so the knee of
// this curve sets the deployable counter width.
func (r *Runner) ExtQuantization() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	train, test, err := tbl.SplitBySample(0.7, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	clf, err := core.NewClassifier("J48", r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := clf.Train(rowsOf(train), train.BinaryLabels(), 2); err != nil {
		return nil, err
	}
	comb, err := hw.CompileTree(clf.(*tree.J48), tbl.NumAttributes())
	if err != nil {
		return nil, err
	}
	comb.SetFixedShift(0) // integer datapath for raw counts

	rep := &Report{
		ID:         "ext-quant",
		Title:      "Extension: detector accuracy vs HPC counter truncation (J48 netlist)",
		PaperClaim: "(hardware design space) detection should survive dropping many low-order counter bits",
		Header:     []string{"bits dropped", "accuracy", "agreement with full precision"},
	}
	yTest := test.BinaryLabels()
	// Full-precision netlist predictions as the agreement baseline.
	full := make([]int, len(test.Instances))
	for i, in := range test.Instances {
		v, err := comb.Eval(in.Features)
		if err != nil {
			return nil, err
		}
		full[i] = v
	}
	for _, drop := range []uint{0, 4, 8, 12, 16} {
		correct, agree := 0, 0
		mask := float64(int64(1) << drop)
		for i, in := range test.Instances {
			tr := make([]float64, len(in.Features))
			for j, v := range in.Features {
				tr[j] = float64(int64(v/mask)) * mask
			}
			v, err := comb.Eval(tr)
			if err != nil {
				return nil, err
			}
			if v == yTest[i] {
				correct++
			}
			if v == full[i] {
				agree++
			}
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", drop),
			pct(float64(correct) / float64(len(yTest))),
			pct(float64(agree) / float64(len(yTest))),
		})
	}
	return rep, nil
}

// ExtKNN evaluates the instance-based learner of Demme et al. (ISCA'13,
// the paper's foundational reference): k-NN is accurate but its hardware
// "model" is the entire training set, so its FPGA cost explodes — the
// sharpest illustration of the paper's accuracy-per-area argument.
func (r *Runner) ExtKNN() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	train, test, err := tbl.SplitBySample(0.7, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := knn.New()
	if err := k.Train(rowsOf(train), train.BinaryLabels(), 2); err != nil {
		return nil, err
	}
	kRes, err := eval.Evaluate(k, rowsOf(test), test.BinaryLabels(), 2)
	if err != nil {
		return nil, err
	}
	kDesign, kBudget := hw.LowerKNN(k.NumStored(), k.Dim(), 5)
	kSched, err := hw.ScheduleDesign(kDesign, kBudget)
	if err != nil {
		return nil, err
	}
	var kArea hw.Area
	for kind, n := range kSched.Used {
		kArea.Add(hw.AreaOf(kind).Scale(n))
	}
	kArea.Add(hw.StorageArea(kDesign.StorageBits))

	jRes, err := core.RunDetector(tbl, core.DetectorConfig{
		Classifier: "J48", Binary: true, Seed: r.cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:         "ext-knn",
		Title:      "Extension: instance-based learning (Demme'13 KNN) vs a tree in hardware",
		PaperClaim: "(related work: Demme'13 used KNN offline) exemplar memory makes instance-based detection unaffordable on-chip",
		Header:     []string{"detector", "accuracy", "equiv LUTs", "BRAM", "cycles"},
		Rows: [][]string{
			{"KNN (k=5)", pct(kRes.Accuracy()),
				fmt.Sprintf("%d", kArea.EquivalentLUTs()),
				fmt.Sprintf("%d", kArea.BRAM),
				fmt.Sprintf("%d", kSched.Cycles)},
			{"J48", pct(jRes.Eval.Accuracy()),
				fmt.Sprintf("%d", jRes.HW.EquivLUTs),
				fmt.Sprintf("%d", jRes.HW.Area.BRAM),
				fmt.Sprintf("%d", jRes.HW.Cycles)},
		},
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"KNN stores %d exemplars x %d features; its area is %.0fx the tree's",
		k.NumStored(), k.Dim(),
		float64(kArea.EquivalentLUTs())/float64(jRes.HW.EquivLUTs)))
	return rep, nil
}

// ExtSVD compares SVD-based feature selection (HPCMalHunter, thesis
// reference [2]: Bahador et al. select behaviour features via singular
// value decomposition) against this repository's PCA rankings on the
// same one-vs-rest MLR ensemble.
func (r *Runner) ExtSVD() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	train, test, err := tbl.SplitBySample(0.7, r.cfg.Seed)
	if err != nil {
		return nil, err
	}

	ranked, err := pca.SVDRankAttributes(train.FeatureMatrix(), train.Attributes, 0.95)
	if err != nil {
		return nil, err
	}
	svdTop := make([]string, 8)
	for i := 0; i < 8; i++ {
		svdTop[i] = ranked[i].Name
	}
	global, err := core.GlobalTopFeatures(train, 8, 0.95)
	if err != nil {
		return nil, err
	}

	evalSet := func(features []string) (float64, error) {
		m, err := core.TrainUniformAssisted(train, features, r.cfg.Seed)
		if err != nil {
			return 0, err
		}
		res, err := eval.Evaluate(m, rowsOf(test), test.ClassLabels(), workload.NumClasses)
		if err != nil {
			return 0, err
		}
		return res.Accuracy(), nil
	}
	svdAcc, err := evalSet(svdTop)
	if err != nil {
		return nil, err
	}
	pcaAcc, err := evalSet(global)
	if err != nil {
		return nil, err
	}
	assisted, err := core.TrainPCAAssisted(train, 8, 0.95, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	aRes, err := eval.Evaluate(assisted, rowsOf(test), test.ClassLabels(), workload.NumClasses)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:         "ext-svd",
		Title:      "Extension: SVD feature selection (HPCMalHunter) vs PCA rankings",
		PaperClaim: "(related work: Bahador'14 selects features by SVD) variance-driven selectors should land close; discriminative custom sets ahead",
		Header:     []string{"selection", "multiclass accuracy"},
		Rows: [][]string{
			{"SVD global top-8", pct(svdAcc)},
			{"PCA global top-8", pct(pcaAcc)},
			{"PCA custom 8/class", pct(aRes.Accuracy())},
		},
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("SVD top-8: %s", strings.Join(svdTop, ", ")))
	return rep, nil
}

// ExtRateFeatures asks whether activity-normalized features beat raw
// counts: every event is divided by the window's bus-cycles (the only
// time-base among the 16 paper features), removing the absolute activity
// level that raw counts carry. Later HPC-detection work normalizes this
// way; the paper (like Demme'13) feeds raw counts.
func (r *Runner) ExtRateFeatures() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	busIdx, err := tbl.AttributeIndex("bus-cycles")
	if err != nil {
		return nil, err
	}
	rates := tbl.Clone()
	for _, in := range rates.Instances {
		denom := in.Features[busIdx] + 1
		for j := range in.Features {
			if j != busIdx {
				in.Features[j] /= denom
			}
		}
	}
	rep := &Report{
		ID:         "ext-rates",
		Title:      "Extension: raw counts vs bus-cycle-normalized rates (binary)",
		PaperClaim: "(design space) the paper feeds raw counts; normalization removes the activity-level signal but exposes behavioural shape",
		Header:     []string{"classifier", "raw counts", "rates"},
	}
	for _, name := range []string{"J48", "MLP"} {
		raw, err := core.RunDetector(tbl, core.DetectorConfig{
			Classifier: name, Binary: true, Seed: r.cfg.Seed, SkipHardware: true,
		})
		if err != nil {
			return nil, err
		}
		rate, err := core.RunDetector(rates, core.DetectorConfig{
			Classifier: name, Binary: true, Seed: r.cfg.Seed, SkipHardware: true,
		})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			name, pct(raw.Eval.Accuracy()), pct(rate.Eval.Accuracy()),
		})
	}
	return rep, nil
}

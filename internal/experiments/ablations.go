package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ml/eval"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ablationTrace returns a reduced-cost trace config for ablation sweeps.
func (r *Runner) ablationTrace() trace.Config {
	tc := r.cfg.Trace
	d := trace.DefaultConfig()
	if tc.WindowsPerSample == 0 {
		tc.WindowsPerSample = d.WindowsPerSample
	}
	if tc.SimInstrPerSlice == 0 {
		tc.SimInstrPerSlice = d.SimInstrPerSlice
	}
	return tc
}

// genWith generates a dataset at the runner's scale with a modified trace
// configuration.
func (r *Runner) genWith(mod func(*trace.Config)) (*core.DetectorResult, error) {
	tc := r.ablationTrace()
	mod(&tc)
	tbl, err := core.GenerateDataset(core.DatasetConfig{
		Seed: r.cfg.Seed, Scale: r.cfg.Scale, Trace: tc,
	})
	if err != nil {
		return nil, err
	}
	return core.RunDetector(tbl, core.DetectorConfig{
		Classifier: "J48", Binary: true, Seed: r.cfg.Seed, SkipHardware: true,
	})
}

// AblateMultiplexing asks whether PMU counter multiplexing error hurts
// detection accuracy (16 events on 8 counters vs an ideal unlimited PMU).
func (r *Runner) AblateMultiplexing() (*Report, error) {
	mux, err := r.genWith(func(tc *trace.Config) { tc.Multiplex = true })
	if err != nil {
		return nil, err
	}
	exact, err := r.genWith(func(tc *trace.Config) { tc.Multiplex = false })
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:         "ablate-multiplex",
		Title:      "Ablation: PMU multiplexing vs ideal PMU (J48, binary)",
		PaperClaim: "(design choice) the paper measured through a multiplexed 8-counter PMU; extrapolation noise is part of the training data",
		Header:     []string{"PMU", "accuracy"},
		Rows: [][]string{
			{"multiplexed 8-counter", pct(mux.Eval.Accuracy())},
			{"ideal (no multiplexing)", pct(exact.Eval.Accuracy())},
		},
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("multiplexing cost: %+.1f%% accuracy",
		(mux.Eval.Accuracy()-exact.Eval.Accuracy())*100))
	return rep, nil
}

// AblateSamplingPeriod sweeps the HPC read period (1/10/100 ms).
func (r *Runner) AblateSamplingPeriod() (*Report, error) {
	rep := &Report{
		ID:         "ablate-period",
		Title:      "Ablation: HPC sampling period (J48, binary)",
		PaperClaim: "(design choice) the paper samples at 10 ms",
		Header:     []string{"period", "accuracy"},
	}
	for _, period := range []float64{0.001, 0.01, 0.1} {
		res, err := r.genWith(func(tc *trace.Config) { tc.SamplePeriod = period })
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.0f ms", period*1000), pct(res.Eval.Accuracy()),
		})
	}
	return rep, nil
}

// AblateGlobalVsCustom compares the PCA-assisted multiclass classifier
// (per-class custom 8 features) against an MLR on one global top-8 set.
func (r *Runner) AblateGlobalVsCustom() (*Report, error) {
	tbl, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	train, test, err := tbl.SplitBySample(0.7, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	global, err := core.GlobalTopFeatures(train, 8, 0.95)
	if err != nil {
		return nil, err
	}
	uniform, err := core.TrainUniformAssisted(train, global, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	uniformRes, err := eval.Evaluate(uniform,
		rowsOf(test), test.ClassLabels(), workload.NumClasses)
	if err != nil {
		return nil, err
	}
	assisted, err := core.TrainPCAAssisted(train, 8, 0.95, r.cfg.Seed)
	if err != nil {
		return nil, err
	}
	assistedRes, err := eval.Evaluate(assisted,
		rowsOf(test), test.ClassLabels(), workload.NumClasses)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:         "ablate-custom",
		Title:      "Ablation: one global top-8 set vs per-class custom top-8 sets (same OvR MLR ensemble)",
		PaperClaim: "(design choice) Table 2 uses per-class custom sets rather than one global reduced set",
		Header:     []string{"feature selection", "multiclass accuracy"},
		Rows: [][]string{
			{"global top-8 (all experts)", pct(uniformRes.Accuracy())},
			{"per-class custom 8", pct(assistedRes.Accuracy())},
		},
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("custom-set delta: %+.1f%%",
		(assistedRes.Accuracy()-uniformRes.Accuracy())*100))
	return rep, nil
}

// AblateIsolationNoise asks what container isolation buys: background
// cache pollution is injected into the measurement machine.
func (r *Runner) AblateIsolationNoise() (*Report, error) {
	rep := &Report{
		ID:         "ablate-noise",
		Title:      "Ablation: container isolation vs background cache noise (J48, binary)",
		PaperClaim: "(design choice) LXC containers isolate samples 'so that the noise from the execution of regular programs does not create a bias'",
		Header:     []string{"environment", "accuracy"},
	}
	for _, noise := range []float64{0, 0.5, 2.0} {
		res, err := r.genWith(func(tc *trace.Config) { tc.NoiseIPC = noise })
		if err != nil {
			return nil, err
		}
		label := "isolated (container)"
		if noise > 0 {
			label = fmt.Sprintf("shared, noise x%.1f", noise)
		}
		rep.Rows = append(rep.Rows, []string{label, pct(res.Eval.Accuracy())})
	}
	return rep, nil
}

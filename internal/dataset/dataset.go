// Package dataset assembles HPC traces into labelled feature tables and
// provides the WEKA-interchange formats (CSV, ARFF), the paper's 70/30
// train/test protocol, and feature-selection views.
package dataset

import (
	"fmt"
	"sort"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Generation instruments: dataset volume produced by this process.
var (
	mSamplesGenerated = obs.GetCounter("dataset.samples_generated")
	mRowsGenerated    = obs.GetCounter("dataset.rows_generated")
)

// Instance is one labelled feature vector: the HPC readings of a single
// 10 ms window.
type Instance struct {
	Features []float64
	Class    workload.Class
	// SampleID identifies the application sample the row came from, so
	// splits can be made leakage-free (no sample contributes rows to both
	// train and test).
	SampleID int
}

// Table is a labelled dataset.
type Table struct {
	Attributes []string
	Instances  []Instance
}

// NumInstances returns the number of rows.
func (t *Table) NumInstances() int { return len(t.Instances) }

// NumAttributes returns the number of feature columns.
func (t *Table) NumAttributes() int { return len(t.Attributes) }

// Validate checks structural consistency.
func (t *Table) Validate() error {
	for i, in := range t.Instances {
		if len(in.Features) != len(t.Attributes) {
			return fmt.Errorf("dataset: row %d has %d features, want %d",
				i, len(in.Features), len(t.Attributes))
		}
		if in.Class < 0 || in.Class >= workload.NumClasses {
			return fmt.Errorf("dataset: row %d has invalid class %d", i, in.Class)
		}
	}
	return nil
}

// ClassCounts returns the number of rows per class.
func (t *Table) ClassCounts() map[workload.Class]int {
	m := make(map[workload.Class]int)
	for _, in := range t.Instances {
		m[in.Class]++
	}
	return m
}

// SampleCounts returns the number of distinct application samples per
// class.
func (t *Table) SampleCounts() map[workload.Class]int {
	seen := make(map[int]workload.Class)
	for _, in := range t.Instances {
		seen[in.SampleID] = in.Class
	}
	m := make(map[workload.Class]int)
	for _, c := range seen {
		m[c]++
	}
	return m
}

// FeatureMatrix returns the features as a matrix (rows = instances).
func (t *Table) FeatureMatrix() *mat.Matrix {
	m := mat.NewMatrix(len(t.Instances), len(t.Attributes))
	for i, in := range t.Instances {
		copy(m.Row(i), in.Features)
	}
	return m
}

// BinaryLabels returns 1 for malware rows and 0 for benign rows.
func (t *Table) BinaryLabels() []int {
	out := make([]int, len(t.Instances))
	for i, in := range t.Instances {
		if in.Class.IsMalware() {
			out[i] = 1
		}
	}
	return out
}

// ClassLabels returns the multiclass labels as ints.
func (t *Table) ClassLabels() []int {
	out := make([]int, len(t.Instances))
	for i, in := range t.Instances {
		out[i] = int(in.Class)
	}
	return out
}

// AttributeIndex returns the column index of the named attribute.
func (t *Table) AttributeIndex(name string) (int, error) {
	for i, a := range t.Attributes {
		if a == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("dataset: unknown attribute %q", name)
}

// SelectFeatures returns a new table containing only the named attributes,
// in the given order. Instances share no storage with the original.
func (t *Table) SelectFeatures(names []string) (*Table, error) {
	idx := make([]int, len(names))
	for i, n := range names {
		j, err := t.AttributeIndex(n)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	out := &Table{Attributes: append([]string{}, names...)}
	out.Instances = make([]Instance, len(t.Instances))
	for i, in := range t.Instances {
		f := make([]float64, len(idx))
		for k, j := range idx {
			f[k] = in.Features[j]
		}
		out.Instances[i] = Instance{Features: f, Class: in.Class, SampleID: in.SampleID}
	}
	return out, nil
}

// FilterClasses returns a new table containing only rows of the given
// classes.
func (t *Table) FilterClasses(keep ...workload.Class) *Table {
	want := make(map[workload.Class]bool, len(keep))
	for _, c := range keep {
		want[c] = true
	}
	out := &Table{Attributes: append([]string{}, t.Attributes...)}
	for _, in := range t.Instances {
		if want[in.Class] {
			out.Instances = append(out.Instances, in)
		}
	}
	return out
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	out := &Table{Attributes: append([]string{}, t.Attributes...)}
	out.Instances = make([]Instance, len(t.Instances))
	for i, in := range t.Instances {
		out.Instances[i] = Instance{
			Features: append([]float64{}, in.Features...),
			Class:    in.Class,
			SampleID: in.SampleID,
		}
	}
	return out
}

// SplitBySample partitions the table into train and test so that every
// application sample's rows land entirely on one side, stratified by
// class. trainFrac is the fraction of samples (per class) used for
// training; the paper uses 0.7.
func (t *Table) SplitBySample(trainFrac float64, seed uint64) (train, test *Table, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v out of (0,1)", trainFrac)
	}
	// Group sample IDs by class.
	byClass := make(map[workload.Class][]int)
	classOf := make(map[int]workload.Class)
	for _, in := range t.Instances {
		if _, ok := classOf[in.SampleID]; !ok {
			classOf[in.SampleID] = in.Class
			byClass[in.Class] = append(byClass[in.Class], in.SampleID)
		}
	}
	src := rng.New(seed)
	trainSet := make(map[int]bool)
	// Deterministic iteration order over classes.
	classes := make([]workload.Class, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		ids := byClass[c]
		sort.Ints(ids)
		src.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		nTrain := int(float64(len(ids))*trainFrac + 0.5)
		if nTrain == 0 && len(ids) > 1 {
			nTrain = 1
		}
		if nTrain == len(ids) && len(ids) > 1 {
			nTrain--
		}
		for _, id := range ids[:nTrain] {
			trainSet[id] = true
		}
	}
	train = &Table{Attributes: append([]string{}, t.Attributes...)}
	test = &Table{Attributes: append([]string{}, t.Attributes...)}
	for _, in := range t.Instances {
		if trainSet[in.SampleID] {
			train.Instances = append(train.Instances, in)
		} else {
			test.Instances = append(test.Instances, in)
		}
	}
	return train, test, nil
}

// SplitRows partitions rows 70/30 (or any fraction) stratified by class
// without respecting sample boundaries — the protocol most WEKA work
// (including the paper) uses. Kept for fidelity; SplitBySample is the
// leakage-free alternative.
func (t *Table) SplitRows(trainFrac float64, seed uint64) (train, test *Table, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: trainFrac %v out of (0,1)", trainFrac)
	}
	byClass := make(map[workload.Class][]int)
	for i, in := range t.Instances {
		byClass[in.Class] = append(byClass[in.Class], i)
	}
	src := rng.New(seed)
	inTrain := make([]bool, len(t.Instances))
	classes := make([]workload.Class, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		rows := byClass[c]
		src.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		nTrain := int(float64(len(rows))*trainFrac + 0.5)
		for _, r := range rows[:nTrain] {
			inTrain[r] = true
		}
	}
	train = &Table{Attributes: append([]string{}, t.Attributes...)}
	test = &Table{Attributes: append([]string{}, t.Attributes...)}
	for i, in := range t.Instances {
		if inTrain[i] {
			train.Instances = append(train.Instances, in)
		} else {
			test.Instances = append(test.Instances, in)
		}
	}
	return train, test, nil
}

// Standardizer rescales features to zero mean / unit variance using
// statistics fitted on a training table.
type Standardizer struct {
	Means   []float64
	Stddevs []float64
}

// FitStandardizer computes per-column statistics from t.
func FitStandardizer(t *Table) *Standardizer {
	m := t.FeatureMatrix()
	return &Standardizer{Means: m.ColMeans(), Stddevs: m.ColStddevs()}
}

// Apply returns a standardized copy of t using the fitted statistics.
func (s *Standardizer) Apply(t *Table) *Table {
	out := t.Clone()
	for _, in := range out.Instances {
		for j := range in.Features {
			in.Features[j] -= s.Means[j]
			if s.Stddevs[j] > 0 {
				in.Features[j] /= s.Stddevs[j]
			}
		}
	}
	return out
}

// GenConfig controls dataset generation.
type GenConfig struct {
	Trace trace.Config
	// SamplesPerClass holds how many application samples of each class to
	// generate. Defaults to the paper's Table 1 counts.
	SamplesPerClass map[workload.Class]int
	// Seed controls all randomness.
	Seed uint64
	// Parallelism bounds the number of concurrent containers; 0 uses the
	// process-wide default (the CLI's -parallel flag), 1 forces the
	// serial path. The output is bit-identical at any value: every
	// sample's randomness derives from its index, not from scheduling.
	Parallelism int
}

// PaperGenConfig returns the configuration reproducing the paper's
// database: Table 1 sample counts, 16 paper features, 10 ms sampling.
func PaperGenConfig(seed uint64) GenConfig {
	return GenConfig{
		Trace:           trace.DefaultConfig(),
		SamplesPerClass: workload.PaperSampleCounts(),
		Seed:            seed,
	}
}

// Generate runs every sample in its own container (in parallel) and
// assembles the labelled table: one row per 10 ms window.
func Generate(cfg GenConfig) (*Table, error) {
	sp := obs.StartSpan("dataset.generate")
	defer sp.End()
	if cfg.SamplesPerClass == nil {
		cfg.SamplesPerClass = workload.PaperSampleCounts()
	}

	type job struct {
		class    workload.Class
		seed     uint64
		sampleID int
	}
	var jobs []job
	id := 0
	for _, c := range workload.AllClasses() {
		n := cfg.SamplesPerClass[c]
		for i := 0; i < n; i++ {
			jobs = append(jobs, job{
				class:    c,
				seed:     cfg.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15,
				sampleID: id,
			})
			id++
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("dataset: no samples requested")
	}

	traces, err := parallel.Map(
		parallel.Options{Name: "dataset.generate", Workers: cfg.Parallelism},
		len(jobs), func(i int) (*trace.Trace, error) {
			tr, err := trace.CollectSample(cfg.Trace, jobs[i].class, jobs[i].seed)
			if err != nil {
				return nil, fmt.Errorf("dataset: sample %d (%v): %w", i, jobs[i].class, err)
			}
			return tr, nil
		})
	if err != nil {
		return nil, err
	}

	tbl := &Table{}
	for i, tr := range traces {
		if i == 0 {
			tbl.Attributes = append([]string{}, tr.Events...)
		}
		for _, rec := range tr.Records {
			tbl.Instances = append(tbl.Instances, Instance{
				Features: rec.Values(),
				Class:    jobs[i].class,
				SampleID: jobs[i].sampleID,
			})
		}
	}
	mSamplesGenerated.Add(int64(len(jobs)))
	mRowsGenerated.Add(int64(len(tbl.Instances)))
	obs.Log().Info("dataset generated",
		"samples", len(jobs), "rows", len(tbl.Instances),
		"features", len(tbl.Attributes))
	return tbl, tbl.Validate()
}

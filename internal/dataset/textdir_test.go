package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func collect(t *testing.T, class workload.Class, seed uint64) *trace.Trace {
	t.Helper()
	cfg := trace.Config{WindowsPerSample: 3, SimInstrPerSlice: 300, Multiplex: true}
	tr, err := trace.CollectSample(cfg, class, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReadTraceTextRoundTrip(t *testing.T) {
	tr := collect(t, workload.Virus, 1)
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	attrs, class, rows, err := ReadTraceText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if class != workload.Virus {
		t.Fatalf("class %v", class)
	}
	if len(attrs) != 16 || len(rows) != 3 {
		t.Fatalf("shape %d attrs x %d rows", len(attrs), len(rows))
	}
	// Values are rounded to integers in the text format.
	want := tr.Records[0].Values()
	for j := range want {
		if diff := rows[0][j] - want[j]; diff > 0.5 || diff < -0.5 {
			t.Fatalf("row value drifted: %v vs %v", rows[0][j], want[j])
		}
	}
}

func TestReadTraceTextErrors(t *testing.T) {
	cases := []string{
		"",                                   // empty
		"# events: a,b\n1,2\n",               // no class
		"# class: virus\n1,2\n",              // no events
		"# class: virus\n# events: a,b\n",    // no rows
		"# class: spyware\n# events: a\n1\n", // bad class
		"# class: virus\n# events: a,b\n1\n", // wrong field count
		"# class: virus\n# events: a\nfoo\n", // non-numeric
	}
	for i, c := range cases {
		if _, _, _, err := ReadTraceText(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
}

func TestMergeTextDir(t *testing.T) {
	dir := t.TempDir()
	classes := []workload.Class{workload.Benign, workload.Worm, workload.Rootkit}
	for i, c := range classes {
		tr := collect(t, c, uint64(i+1))
		f, err := os.Create(filepath.Join(dir, c.String()+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteText(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	tbl, err := MergeTextDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumInstances() != 9 { // 3 files x 3 windows
		t.Fatalf("merged %d rows", tbl.NumInstances())
	}
	if tbl.NumAttributes() != 16 {
		t.Fatalf("merged %d attributes", tbl.NumAttributes())
	}
	counts := tbl.SampleCounts()
	for _, c := range classes {
		if counts[c] != 1 {
			t.Fatalf("class %v has %d samples", c, counts[c])
		}
	}
}

func TestMergeTextDirErrors(t *testing.T) {
	if _, err := MergeTextDir(t.TempDir()); err == nil {
		t.Fatal("accepted empty directory")
	}
	// Mismatched event lists across files.
	dir := t.TempDir()
	a := "# class: virus\n# events: x,y\n1,2\n"
	b := "# class: worm\n# events: x\n1\n"
	os.WriteFile(filepath.Join(dir, "a.txt"), []byte(a), 0o644)
	os.WriteFile(filepath.Join(dir, "b.txt"), []byte(b), 0o644)
	if _, err := MergeTextDir(dir); err == nil {
		t.Fatal("accepted mismatched event lists")
	}
	// Different names, same count: name mismatch detected.
	dir2 := t.TempDir()
	c := "# class: virus\n# events: x,y\n1,2\n"
	d := "# class: worm\n# events: x,z\n1,2\n"
	os.WriteFile(filepath.Join(dir2, "a.txt"), []byte(c), 0o644)
	os.WriteFile(filepath.Join(dir2, "b.txt"), []byte(d), 0o644)
	if _, err := MergeTextDir(dir2); err == nil {
		t.Fatal("accepted mismatched event names")
	}
}

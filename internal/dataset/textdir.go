package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// ReadTraceText parses one per-sample trace text file as written by
// trace.(*Trace).WriteText: comment headers carrying the sample name,
// class and event list, then one comma-separated row per window.
func ReadTraceText(r io.Reader) (attributes []string, class workload.Class, rows [][]float64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	classSet := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kv := strings.SplitN(strings.TrimPrefix(line, "#"), ":", 2)
			if len(kv) != 2 {
				continue
			}
			key := strings.TrimSpace(kv[0])
			val := strings.TrimSpace(kv[1])
			switch key {
			case "class":
				class, err = workload.ParseClass(val)
				if err != nil {
					return nil, 0, nil, fmt.Errorf("dataset: trace text line %d: %w", lineNo, err)
				}
				classSet = true
			case "events":
				attributes = strings.Split(val, ",")
			}
			continue
		}
		fields := strings.Split(line, ",")
		if attributes != nil && len(fields) != len(attributes) {
			return nil, 0, nil, fmt.Errorf("dataset: trace text line %d: %d fields, want %d",
				lineNo, len(fields), len(attributes))
		}
		row := make([]float64, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, 0, nil, fmt.Errorf("dataset: trace text line %d field %d: %w", lineNo, j, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, nil, err
	}
	if !classSet {
		return nil, 0, nil, fmt.Errorf("dataset: trace text missing '# class:' header")
	}
	if attributes == nil {
		return nil, 0, nil, fmt.Errorf("dataset: trace text missing '# events:' header")
	}
	if len(rows) == 0 {
		return nil, 0, nil, fmt.Errorf("dataset: trace text has no data rows")
	}
	return attributes, class, rows, nil
}

// MergeTextDir reproduces the paper's merge step: every *.txt per-sample
// trace file in dir is parsed and combined into one labelled table, each
// file becoming one application sample. Files must agree on the event
// list.
func MergeTextDir(dir string) (*Table, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.txt"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("dataset: no *.txt trace files in %s", dir)
	}
	sort.Strings(matches)
	t := &Table{}
	for id, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		attrs, class, rows, err := ReadTraceText(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: %w", path, err)
		}
		if t.Attributes == nil {
			t.Attributes = attrs
		} else if len(attrs) != len(t.Attributes) {
			return nil, fmt.Errorf("dataset: %s has %d events, expected %d",
				path, len(attrs), len(t.Attributes))
		} else {
			for i := range attrs {
				if attrs[i] != t.Attributes[i] {
					return nil, fmt.Errorf("dataset: %s event %d is %q, expected %q",
						path, i, attrs[i], t.Attributes[i])
				}
			}
		}
		for _, row := range rows {
			t.Instances = append(t.Instances, Instance{
				Features: row, Class: class, SampleID: id,
			})
		}
	}
	return t, t.Validate()
}

package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/workload"
)

// WriteCSV writes the table in the paper's merged-CSV layout: one header
// row of attribute names plus a trailing "class" column, then one row per
// instance with the class name in the last field.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, t.Attributes...), "class")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(t.Attributes)+1)
	for _, in := range t.Instances {
		for j, v := range in.Features {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		row[len(row)-1] = in.Class.String()
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table written by WriteCSV. SampleIDs are not stored in
// CSV, so each row gets a fresh ID.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: empty csv")
	}
	header := records[0]
	if len(header) < 2 || header[len(header)-1] != "class" {
		return nil, fmt.Errorf("dataset: csv missing class column")
	}
	t := &Table{Attributes: append([]string{}, header[:len(header)-1]...)}
	for i, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: csv row %d has %d fields, want %d",
				i+1, len(rec), len(header))
		}
		feats := make([]float64, len(header)-1)
		for j := range feats {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv row %d field %d: %w", i+1, j, err)
			}
			feats[j] = v
		}
		class, err := workload.ParseClass(rec[len(rec)-1])
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", i+1, err)
		}
		t.Instances = append(t.Instances, Instance{Features: feats, Class: class, SampleID: i})
	}
	return t, t.Validate()
}

// WriteARFF writes the table in WEKA's ARFF format, the representation the
// paper converted its CSVs into. relation names the dataset; binary
// collapses the class attribute to {benign, malware} as the paper did for
// binary classification.
func (t *Table) WriteARFF(w io.Writer, relation string, binary bool) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "@RELATION %s\n\n", sanitizeARFFName(relation))
	for _, a := range t.Attributes {
		fmt.Fprintf(bw, "@ATTRIBUTE %s NUMERIC\n", sanitizeARFFName(a))
	}
	if binary {
		fmt.Fprintf(bw, "@ATTRIBUTE class {benign,malware}\n")
	} else {
		names := make([]string, 0, workload.NumClasses)
		for _, c := range workload.AllClasses() {
			names = append(names, c.String())
		}
		fmt.Fprintf(bw, "@ATTRIBUTE class {%s}\n", strings.Join(names, ","))
	}
	fmt.Fprintf(bw, "\n@DATA\n")
	for _, in := range t.Instances {
		for _, v := range in.Features {
			fmt.Fprintf(bw, "%s,", strconv.FormatFloat(v, 'g', -1, 64))
		}
		label := in.Class.String()
		if binary {
			if in.Class.IsMalware() {
				label = "malware"
			} else {
				label = "benign"
			}
		}
		fmt.Fprintln(bw, label)
	}
	return bw.Flush()
}

// ReadARFF parses a (restricted) ARFF file as written by WriteARFF:
// numeric attributes followed by one nominal class attribute. Binary
// relations ({benign,malware}) map malware rows to workload.Trojan — the
// class identity is lost in binary ARFF, only the malware/benign split
// survives, which is all binary classification needs.
func ReadARFF(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Table{}
	inData := false
	binary := false
	lineNo := 0
	row := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if !inData {
			upper := strings.ToUpper(line)
			switch {
			case strings.HasPrefix(upper, "@RELATION"):
				// name ignored
			case strings.HasPrefix(upper, "@ATTRIBUTE"):
				fields := strings.Fields(line)
				if len(fields) < 3 {
					return nil, fmt.Errorf("dataset: arff line %d: malformed attribute", lineNo)
				}
				name := fields[1]
				typ := strings.Join(fields[2:], " ")
				if strings.EqualFold(name, "class") {
					binary = strings.Contains(typ, "malware")
					continue
				}
				if !strings.EqualFold(typ, "NUMERIC") && !strings.EqualFold(typ, "REAL") {
					return nil, fmt.Errorf("dataset: arff line %d: unsupported attribute type %q", lineNo, typ)
				}
				t.Attributes = append(t.Attributes, name)
			case strings.HasPrefix(upper, "@DATA"):
				inData = true
			default:
				return nil, fmt.Errorf("dataset: arff line %d: unexpected header %q", lineNo, line)
			}
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(t.Attributes)+1 {
			return nil, fmt.Errorf("dataset: arff line %d: %d fields, want %d",
				lineNo, len(fields), len(t.Attributes)+1)
		}
		feats := make([]float64, len(t.Attributes))
		for j := range feats {
			v, err := strconv.ParseFloat(strings.TrimSpace(fields[j]), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: arff line %d field %d: %w", lineNo, j, err)
			}
			feats[j] = v
		}
		labelStr := strings.TrimSpace(fields[len(fields)-1])
		var class workload.Class
		if binary {
			switch labelStr {
			case "benign":
				class = workload.Benign
			case "malware":
				class = workload.Trojan
			default:
				return nil, fmt.Errorf("dataset: arff line %d: bad binary label %q", lineNo, labelStr)
			}
		} else {
			var err error
			class, err = workload.ParseClass(labelStr)
			if err != nil {
				return nil, fmt.Errorf("dataset: arff line %d: %w", lineNo, err)
			}
		}
		t.Instances = append(t.Instances, Instance{Features: feats, Class: class, SampleID: row})
		row++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !inData {
		return nil, fmt.Errorf("dataset: arff missing @DATA section")
	}
	return t, t.Validate()
}

// sanitizeARFFName quotes names containing characters ARFF dislikes.
func sanitizeARFFName(s string) string {
	if strings.ContainsAny(s, " \t{},%") {
		return "'" + s + "'"
	}
	return s
}

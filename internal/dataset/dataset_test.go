package dataset

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// tinyGen builds a small dataset quickly for tests.
func tinyGen(t *testing.T, perClass int, seed uint64) *Table {
	t.Helper()
	cfg := GenConfig{
		Trace: trace.Config{
			WindowsPerSample: 4,
			SimInstrPerSlice: 400,
			Multiplex:        true,
		},
		SamplesPerClass: map[workload.Class]int{},
		Seed:            seed,
	}
	for _, c := range workload.AllClasses() {
		cfg.SamplesPerClass[c] = perClass
	}
	tbl, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestGenerateShape(t *testing.T) {
	tbl := tinyGen(t, 3, 1)
	if tbl.NumAttributes() != 16 {
		t.Fatalf("attributes = %d, want 16", tbl.NumAttributes())
	}
	// 6 classes * 3 samples * 4 windows.
	if tbl.NumInstances() != 6*3*4 {
		t.Fatalf("instances = %d, want 72", tbl.NumInstances())
	}
	counts := tbl.ClassCounts()
	for _, c := range workload.AllClasses() {
		if counts[c] != 12 {
			t.Fatalf("class %v has %d rows, want 12", c, counts[c])
		}
	}
	samples := tbl.SampleCounts()
	for _, c := range workload.AllClasses() {
		if samples[c] != 3 {
			t.Fatalf("class %v has %d samples, want 3", c, samples[c])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := tinyGen(t, 2, 7)
	b := tinyGen(t, 2, 7)
	if a.NumInstances() != b.NumInstances() {
		t.Fatal("row counts differ")
	}
	for i := range a.Instances {
		for j := range a.Instances[i].Features {
			if a.Instances[i].Features[j] != b.Instances[i].Features[j] {
				t.Fatalf("row %d feature %d differs", i, j)
			}
		}
	}
}

func TestGenerateEmptyErrors(t *testing.T) {
	cfg := GenConfig{SamplesPerClass: map[workload.Class]int{}}
	if _, err := Generate(cfg); err == nil {
		t.Fatal("Generate accepted empty request")
	}
}

func TestBinaryAndClassLabels(t *testing.T) {
	tbl := tinyGen(t, 1, 2)
	bl := tbl.BinaryLabels()
	cl := tbl.ClassLabels()
	for i, in := range tbl.Instances {
		wantB := 0
		if in.Class.IsMalware() {
			wantB = 1
		}
		if bl[i] != wantB {
			t.Fatalf("row %d binary label %d, want %d", i, bl[i], wantB)
		}
		if cl[i] != int(in.Class) {
			t.Fatalf("row %d class label mismatch", i)
		}
	}
}

func TestSelectFeatures(t *testing.T) {
	tbl := tinyGen(t, 1, 3)
	sub, err := tbl.SelectFeatures([]string{"cache-misses", "branch-instructions"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAttributes() != 2 {
		t.Fatalf("sub attributes = %d", sub.NumAttributes())
	}
	cmIdx, _ := tbl.AttributeIndex("cache-misses")
	biIdx, _ := tbl.AttributeIndex("branch-instructions")
	for i := range sub.Instances {
		if sub.Instances[i].Features[0] != tbl.Instances[i].Features[cmIdx] ||
			sub.Instances[i].Features[1] != tbl.Instances[i].Features[biIdx] {
			t.Fatalf("row %d features not projected correctly", i)
		}
	}
	if _, err := tbl.SelectFeatures([]string{"nope"}); err == nil {
		t.Fatal("SelectFeatures accepted unknown attribute")
	}
}

func TestFilterClasses(t *testing.T) {
	tbl := tinyGen(t, 2, 4)
	sub := tbl.FilterClasses(workload.Benign, workload.Worm)
	counts := sub.ClassCounts()
	if len(counts) != 2 || counts[workload.Benign] == 0 || counts[workload.Worm] == 0 {
		t.Fatalf("filter kept %v", counts)
	}
	if counts[workload.Trojan] != 0 {
		t.Fatal("filter leaked trojan rows")
	}
}

func TestSplitBySampleNoLeakage(t *testing.T) {
	tbl := tinyGen(t, 4, 5)
	train, test, err := tbl.SplitBySample(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumInstances()+test.NumInstances() != tbl.NumInstances() {
		t.Fatal("split lost rows")
	}
	trainIDs := make(map[int]bool)
	for _, in := range train.Instances {
		trainIDs[in.SampleID] = true
	}
	for _, in := range test.Instances {
		if trainIDs[in.SampleID] {
			t.Fatalf("sample %d appears in both train and test", in.SampleID)
		}
	}
	// Every class must appear on both sides.
	for _, c := range workload.AllClasses() {
		if train.ClassCounts()[c] == 0 {
			t.Fatalf("class %v missing from train", c)
		}
		if test.ClassCounts()[c] == 0 {
			t.Fatalf("class %v missing from test", c)
		}
	}
}

func TestSplitRowsStratified(t *testing.T) {
	tbl := tinyGen(t, 5, 6)
	train, test, err := tbl.SplitRows(0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumInstances()+test.NumInstances() != tbl.NumInstances() {
		t.Fatal("split lost rows")
	}
	for _, c := range workload.AllClasses() {
		tot := tbl.ClassCounts()[c]
		tr := train.ClassCounts()[c]
		frac := float64(tr) / float64(tot)
		if math.Abs(frac-0.7) > 0.1 {
			t.Fatalf("class %v train fraction %v not ~0.7", c, frac)
		}
	}
}

func TestSplitRejectsBadFraction(t *testing.T) {
	tbl := tinyGen(t, 1, 7)
	if _, _, err := tbl.SplitBySample(0, 1); err == nil {
		t.Fatal("accepted trainFrac 0")
	}
	if _, _, err := tbl.SplitRows(1, 1); err == nil {
		t.Fatal("accepted trainFrac 1")
	}
}

func TestStandardizer(t *testing.T) {
	tbl := tinyGen(t, 3, 8)
	std := FitStandardizer(tbl)
	scaled := std.Apply(tbl)
	m := scaled.FeatureMatrix()
	means := m.ColMeans()
	for j, mu := range means {
		if math.Abs(mu) > 1e-6 {
			t.Fatalf("standardized column %d mean %v", j, mu)
		}
	}
	// Original table untouched.
	if tbl.Instances[0].Features[0] == scaled.Instances[0].Features[0] &&
		tbl.Instances[1].Features[0] == scaled.Instances[1].Features[0] &&
		std.Means[0] != 0 {
		t.Fatal("Apply mutated the original table")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := tinyGen(t, 1, 9)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumInstances() != tbl.NumInstances() || got.NumAttributes() != tbl.NumAttributes() {
		t.Fatal("csv round trip changed shape")
	}
	for i := range tbl.Instances {
		if got.Instances[i].Class != tbl.Instances[i].Class {
			t.Fatalf("row %d class changed", i)
		}
		for j := range tbl.Instances[i].Features {
			if got.Instances[i].Features[j] != tbl.Instances[i].Features[j] {
				t.Fatalf("row %d feature %d changed", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Fatal("accepted empty csv")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,2\n")); err == nil {
		t.Fatal("accepted csv without class column")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,class\nxyz,benign\n")); err == nil {
		t.Fatal("accepted non-numeric feature")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,class\n1,spyware\n")); err == nil {
		t.Fatal("accepted unknown class")
	}
}

func TestARFFRoundTripMulticlass(t *testing.T) {
	tbl := tinyGen(t, 1, 10)
	var buf bytes.Buffer
	if err := tbl.WriteARFF(&buf, "hpc", false); err != nil {
		t.Fatal(err)
	}
	got, err := ReadARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumInstances() != tbl.NumInstances() {
		t.Fatal("arff round trip changed rows")
	}
	for i := range tbl.Instances {
		if got.Instances[i].Class != tbl.Instances[i].Class {
			t.Fatalf("row %d class %v, want %v", i, got.Instances[i].Class, tbl.Instances[i].Class)
		}
	}
}

func TestARFFBinary(t *testing.T) {
	tbl := tinyGen(t, 1, 11)
	var buf bytes.Buffer
	if err := tbl.WriteARFF(&buf, "hpc binary", true); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("{benign,malware}")) {
		t.Fatalf("binary arff missing class domain:\n%s", s[:200])
	}
	got, err := ReadARFF(bytes.NewBufferString(s))
	if err != nil {
		t.Fatal(err)
	}
	// Binary labels must survive.
	wantMalware := 0
	for _, in := range tbl.Instances {
		if in.Class.IsMalware() {
			wantMalware++
		}
	}
	gotMalware := 0
	for _, in := range got.Instances {
		if in.Class.IsMalware() {
			gotMalware++
		}
	}
	if gotMalware != wantMalware {
		t.Fatalf("binary arff malware rows %d, want %d", gotMalware, wantMalware)
	}
}

func TestReadARFFErrors(t *testing.T) {
	if _, err := ReadARFF(bytes.NewBufferString("@RELATION x\n@ATTRIBUTE a NUMERIC\n")); err == nil {
		t.Fatal("accepted arff without data")
	}
	bad := "@RELATION x\n@ATTRIBUTE a STRING\n@DATA\n"
	if _, err := ReadARFF(bytes.NewBufferString(bad)); err == nil {
		t.Fatal("accepted string attribute")
	}
	bad2 := "@RELATION x\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE class {benign,malware}\n@DATA\n1,2,benign\n"
	if _, err := ReadARFF(bytes.NewBufferString(bad2)); err == nil {
		t.Fatal("accepted wrong field count")
	}
}

func TestPaperGenConfigMatchesTable1(t *testing.T) {
	cfg := PaperGenConfig(1)
	total := 0
	for _, n := range cfg.SamplesPerClass {
		total += n
	}
	if total != workload.PaperTotalSamples {
		t.Fatalf("paper config total %d", total)
	}
	if cfg.Trace.WindowsPerSample != 0 {
		// DefaultConfig fills 16; PaperGenConfig uses trace.DefaultConfig
		// which sets it explicitly.
		if cfg.Trace.WindowsPerSample != 16 {
			t.Fatalf("windows per sample %d", cfg.Trace.WindowsPerSample)
		}
	}
}

package dataset

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestCollectMergeRoundTrip proves the paper's two pipelines agree: running
// samples through collect-style per-sample text files and merging them
// reproduces, bit for bit, the table that direct generation builds from the
// same seeds. This only holds because WriteText uses %g (shortest exact
// float representation) — multiplex extrapolation makes readings
// fractional, and any rounding in the text format would diverge here.
func TestCollectMergeRoundTrip(t *testing.T) {
	cfg := trace.Config{WindowsPerSample: 4, SimInstrPerSlice: 400, Multiplex: true}
	gen := GenConfig{
		Trace:           cfg,
		SamplesPerClass: map[workload.Class]int{},
		Seed:            42,
	}
	for _, c := range workload.AllClasses() {
		gen.SamplesPerClass[c] = 2
	}

	direct, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}

	// Collect the same samples through the text-file pipeline, replicating
	// Generate's per-job seed derivation and class order. Zero-padded
	// filenames keep MergeTextDir's lexicographic order equal to job order.
	dir := t.TempDir()
	id := 0
	for _, c := range workload.AllClasses() {
		for i := 0; i < gen.SamplesPerClass[c]; i++ {
			seed := gen.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15
			tr, err := trace.CollectSample(cfg, c, seed)
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.Create(filepath.Join(dir, fmt.Sprintf("%03d.txt", id)))
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.WriteText(f); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}

	merged, err := MergeTextDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	if len(merged.Attributes) != len(direct.Attributes) {
		t.Fatalf("attributes: %d vs %d", len(merged.Attributes), len(direct.Attributes))
	}
	for i := range direct.Attributes {
		if merged.Attributes[i] != direct.Attributes[i] {
			t.Fatalf("attribute %d: %q vs %q", i, merged.Attributes[i], direct.Attributes[i])
		}
	}
	if len(merged.Instances) != len(direct.Instances) {
		t.Fatalf("rows: %d vs %d", len(merged.Instances), len(direct.Instances))
	}
	for i := range direct.Instances {
		want, got := direct.Instances[i], merged.Instances[i]
		if got.Class != want.Class {
			t.Fatalf("row %d class %v, want %v", i, got.Class, want.Class)
		}
		if got.SampleID != want.SampleID {
			t.Fatalf("row %d sample %d, want %d", i, got.SampleID, want.SampleID)
		}
		for j := range want.Features {
			if got.Features[j] != want.Features[j] {
				t.Fatalf("row %d feature %d: %v != %v (text format lost precision?)",
					i, j, got.Features[j], want.Features[j])
			}
		}
	}
}

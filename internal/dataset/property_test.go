package dataset

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/workload"
)

// randomTable builds a small random-but-valid table.
func randomTable(seed uint64) *Table {
	src := rng.New(seed)
	cols := src.Intn(6) + 1
	rows := src.Intn(30) + 2
	t := &Table{}
	for j := 0; j < cols; j++ {
		t.Attributes = append(t.Attributes, string(rune('a'+j)))
	}
	for i := 0; i < rows; i++ {
		feats := make([]float64, cols)
		for j := range feats {
			feats[j] = src.Normal(0, 1e4)
		}
		t.Instances = append(t.Instances, Instance{
			Features: feats,
			Class:    workload.Class(src.Intn(int(workload.NumClasses))),
			SampleID: i / 3,
		})
	}
	return t
}

// Property: CSV round trips preserve shape, classes and values exactly.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tbl := randomTable(seed)
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if got.NumInstances() != tbl.NumInstances() || got.NumAttributes() != tbl.NumAttributes() {
			return false
		}
		for i := range tbl.Instances {
			if got.Instances[i].Class != tbl.Instances[i].Class {
				return false
			}
			for j := range tbl.Instances[i].Features {
				if got.Instances[i].Features[j] != tbl.Instances[i].Features[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ARFF round trips preserve multiclass labels.
func TestARFFRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tbl := randomTable(seed)
		var buf bytes.Buffer
		if err := tbl.WriteARFF(&buf, "p", false); err != nil {
			return false
		}
		got, err := ReadARFF(&buf)
		if err != nil || got.NumInstances() != tbl.NumInstances() {
			return false
		}
		for i := range tbl.Instances {
			if got.Instances[i].Class != tbl.Instances[i].Class {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: splits partition the table — no row lost, none duplicated.
func TestSplitPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tbl := randomTable(seed)
		for _, mode := range []bool{false, true} {
			var train, test *Table
			var err error
			if mode {
				train, test, err = tbl.SplitRows(0.7, seed)
			} else {
				train, test, err = tbl.SplitBySample(0.7, seed)
			}
			if err != nil {
				return false
			}
			if train.NumInstances()+test.NumInstances() != tbl.NumInstances() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package online_test

import (
	"fmt"

	"repro/internal/online"
)

// ExampleMajorityVoter shows decision smoothing: one noisy malware
// verdict never alarms, a sustained run does.
func ExampleMajorityVoter() {
	v := &online.MajorityVoter{Window: 4, Threshold: 0.5}
	fmt.Println("one-off:", v.Observe(1))
	v.Reset()
	stream := []int{0, 1, 1, 1}
	alarmAt := -1
	for i, verdict := range stream {
		if v.Observe(verdict) && alarmAt < 0 {
			alarmAt = i
		}
	}
	fmt.Println("sustained alarm at window:", alarmAt)
	// Output:
	// one-off: false
	// sustained alarm at window: 2
}

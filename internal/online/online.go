// Package online turns the per-window classifiers into run-time malware
// detectors: predictions over consecutive 10 ms HPC samples are smoothed
// by a sliding-window majority vote or an exponentially weighted moving
// average before raising an alarm. This is the "online detection" setting
// of Demme et al. (ISCA'13) and Ozsoy et al. (HPCA'15) that the thesis's
// related work and future work discuss: a single noisy window should not
// trigger, but sustained malicious behaviour should — quickly.
package online

import (
	"fmt"

	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/trace"
)

// AlarmLatencyMetric is the registry name of the detection-latency
// histogram: the 1-based window index at which the alarm first fired,
// recorded per detected trace. Consumers read it via
// obs.DefaultRegistry.Snapshot().Histograms[AlarmLatencyMetric].
const AlarmLatencyMetric = "online.alarm_latency_windows"

// Detection instruments: traces monitored, alarms raised, and the
// window-granularity latency distribution of those alarms.
var (
	mMonitors     = obs.GetCounter("online.monitors")
	mAlarms       = obs.GetCounter("online.alarms")
	mAlarmLatency = obs.GetHistogram(AlarmLatencyMetric, obs.WindowBuckets)
)

// Smoother accumulates binary per-window verdicts (1 = malware) and
// decides when to raise the alarm.
type Smoother interface {
	Name() string
	// Observe consumes one window verdict and reports whether the alarm
	// is raised as of this window.
	Observe(pred int) bool
	// Reset clears state for a new monitored process.
	Reset()
}

// MajorityVoter alarms when at least Threshold of the last Window
// verdicts are malware.
type MajorityVoter struct {
	// Window is the sliding-window length in samples (default 8).
	Window int
	// Threshold is the malware fraction that triggers (default 0.5).
	Threshold float64

	hist []int
	pos  int
	n    int
	sum  int
}

// Name implements Smoother.
func (m *MajorityVoter) Name() string { return "MajorityVoter" }

func (m *MajorityVoter) init() {
	if m.Window <= 0 {
		m.Window = 8
	}
	if m.Threshold <= 0 || m.Threshold > 1 {
		m.Threshold = 0.5
	}
	if m.hist == nil {
		m.hist = make([]int, m.Window)
	}
}

// Observe implements Smoother.
func (m *MajorityVoter) Observe(pred int) bool {
	m.init()
	if pred != 0 {
		pred = 1
	}
	if m.n == m.Window {
		m.sum -= m.hist[m.pos]
	} else {
		m.n++
	}
	m.hist[m.pos] = pred
	m.sum += pred
	m.pos = (m.pos + 1) % m.Window
	// The vote is over the filled portion, so detection can fire before
	// the window is full under a strong signal.
	return float64(m.sum) >= m.Threshold*float64(m.Window)
}

// Reset implements Smoother.
func (m *MajorityVoter) Reset() {
	m.init()
	for i := range m.hist {
		m.hist[i] = 0
	}
	m.pos, m.n, m.sum = 0, 0, 0
}

// EWMA alarms when the exponentially weighted malware-verdict average
// exceeds Threshold.
type EWMA struct {
	// Alpha is the smoothing factor in (0,1] (default 0.25).
	Alpha float64
	// Threshold is the alarm level (default 0.6).
	Threshold float64

	state float64
}

// Name implements Smoother.
func (e *EWMA) Name() string { return "EWMA" }

func (e *EWMA) init() {
	if e.Alpha <= 0 || e.Alpha > 1 {
		e.Alpha = 0.25
	}
	if e.Threshold <= 0 || e.Threshold >= 1 {
		e.Threshold = 0.6
	}
}

// Observe implements Smoother.
func (e *EWMA) Observe(pred int) bool {
	e.init()
	v := 0.0
	if pred != 0 {
		v = 1
	}
	e.state = e.Alpha*v + (1-e.Alpha)*e.state
	return e.state > e.Threshold
}

// Reset implements Smoother.
func (e *EWMA) Reset() { e.state = 0 }

// Result is the outcome of monitoring one trace.
type Result struct {
	// Detected reports whether the alarm fired at any window.
	Detected bool
	// Window is the 0-based index of the first alarmed window
	// (-1 if never).
	Window int
	// LatencySeconds is Window+1 sampling periods (0 if never detected).
	LatencySeconds float64
}

// Monitor replays a trace through a trained binary classifier and a
// smoother, returning when (if ever) the alarm fires. The classifier must
// have been trained on the same event set as the trace, with binary
// labels (1 = malware).
func Monitor(clf ml.Classifier, sm Smoother, tr *trace.Trace, samplePeriod float64) (*Result, error) {
	if clf == nil || sm == nil || tr == nil {
		return nil, fmt.Errorf("online: nil argument")
	}
	if samplePeriod <= 0 {
		return nil, fmt.Errorf("online: non-positive sample period")
	}
	sm.Reset()
	mMonitors.Inc()
	res := &Result{Window: -1}
	for i := range tr.Records {
		pred := clf.Predict(tr.Records[i].Values())
		if sm.Observe(pred) && !res.Detected {
			res.Detected = true
			res.Window = i
			res.LatencySeconds = float64(i+1) * samplePeriod
			// Keep consuming: callers may want post-detection stats
			// later; for now first alarm decides.
			break
		}
	}
	if res.Detected {
		mAlarms.Inc()
		mAlarmLatency.Observe(float64(res.Window + 1))
		obs.Log().Debug("alarm raised", "sample", tr.SampleName,
			"class", tr.Class.String(), "window", res.Window,
			"latency_s", res.LatencySeconds)
	}
	return res, nil
}

// Package online turns the per-window classifiers into run-time malware
// detectors: predictions over consecutive 10 ms HPC samples are smoothed
// by a sliding-window majority vote or an exponentially weighted moving
// average before raising an alarm. This is the "online detection" setting
// of Demme et al. (ISCA'13) and Ozsoy et al. (HPCA'15) that the thesis's
// related work and future work discuss: a single noisy window should not
// trigger, but sustained malicious behaviour should — quickly.
package online

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/infer"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// AlarmLatencyMetric is the registry name of the detection-latency
// histogram: the 1-based window index at which the alarm first fired,
// recorded per detected trace. Consumers read it via
// obs.DefaultRegistry.Snapshot().Histograms[AlarmLatencyMetric].
const AlarmLatencyMetric = "online.alarm_latency_windows"

// Event types published to obs.DefaultBus while monitoring, streamed
// live by the telemetry server's /events endpoint.
const (
	// EventAlarm fires once per detected trace; Value is the alarm
	// latency in seconds, Window the first alarmed window.
	EventAlarm = "alarm"
	// EventWindow fires per classified sampling window (only while the
	// bus has subscribers); Value is the raw per-window verdict.
	EventWindow = "window"
)

// Detection instruments: traces monitored, alarms raised, and the
// window-granularity latency distribution of those alarms.
var (
	mMonitors     = obs.GetCounter("online.monitors")
	mAlarms       = obs.GetCounter("online.alarms")
	mAlarmLatency = obs.GetHistogram(AlarmLatencyMetric, obs.WindowBuckets)
)

// Smoother accumulates binary per-window verdicts (1 = malware) and
// decides when to raise the alarm.
type Smoother interface {
	Name() string
	// Observe consumes one window verdict and reports whether the alarm
	// is raised as of this window.
	Observe(pred int) bool
	// Reset clears state for a new monitored process.
	Reset()
}

// MajorityVoter alarms when at least Threshold of the last Window
// verdicts are malware.
type MajorityVoter struct {
	// Window is the sliding-window length in samples (default 8).
	Window int
	// Threshold is the malware fraction that triggers (default 0.5).
	Threshold float64

	hist []int
	pos  int
	n    int
	sum  int
}

// Name implements Smoother.
func (m *MajorityVoter) Name() string { return "MajorityVoter" }

func (m *MajorityVoter) init() {
	if m.Window <= 0 {
		m.Window = 8
	}
	if m.Threshold <= 0 || m.Threshold > 1 {
		m.Threshold = 0.5
	}
	if m.hist == nil {
		m.hist = make([]int, m.Window)
	}
}

// Observe implements Smoother.
func (m *MajorityVoter) Observe(pred int) bool {
	m.init()
	if pred != 0 {
		pred = 1
	}
	if m.n == m.Window {
		m.sum -= m.hist[m.pos]
	} else {
		m.n++
	}
	m.hist[m.pos] = pred
	m.sum += pred
	m.pos = (m.pos + 1) % m.Window
	// The vote is over the filled portion, so detection can fire before
	// the window is full under a strong signal.
	return float64(m.sum) >= m.Threshold*float64(m.Window)
}

// Reset implements Smoother.
func (m *MajorityVoter) Reset() {
	m.init()
	for i := range m.hist {
		m.hist[i] = 0
	}
	m.pos, m.n, m.sum = 0, 0, 0
}

// EWMA alarms when the exponentially weighted malware-verdict average
// exceeds Threshold.
type EWMA struct {
	// Alpha is the smoothing factor in (0,1] (default 0.25).
	Alpha float64
	// Threshold is the alarm level (default 0.6).
	Threshold float64

	state float64
}

// Name implements Smoother.
func (e *EWMA) Name() string { return "EWMA" }

func (e *EWMA) init() {
	if e.Alpha <= 0 || e.Alpha > 1 {
		e.Alpha = 0.25
	}
	if e.Threshold <= 0 || e.Threshold >= 1 {
		e.Threshold = 0.6
	}
}

// Observe implements Smoother.
func (e *EWMA) Observe(pred int) bool {
	e.init()
	v := 0.0
	if pred != 0 {
		v = 1
	}
	e.state = e.Alpha*v + (1-e.Alpha)*e.state
	return e.state > e.Threshold
}

// Reset implements Smoother.
func (e *EWMA) Reset() { e.state = 0 }

// Result is the outcome of monitoring one trace.
type Result struct {
	// Detected reports whether the alarm fired at any window.
	Detected bool
	// Window is the 0-based index of the first alarmed window
	// (-1 if never).
	Window int
	// LatencySeconds is Window+1 sampling periods (0 if never detected).
	LatencySeconds float64
}

// WindowObservation is one classified window as a window observer sees
// it — the hook the model-quality layer (scoreboard, drift detector,
// flight recorder) builds on.
type WindowObservation struct {
	Sample string
	Class  string
	// Window is the 0-based index within the trace.
	Window int
	// Pred is the raw per-window verdict (1 = malware).
	Pred int
	// Score is the model's malware-class probability when the classifier
	// exposes probabilities (compiled or interpreted), else the 0/1
	// verdict — calibration degrades but confusion metrics stay exact.
	Score float64
	// Values is the window's HPC feature vector. It aliases the monitor
	// loop's reuse buffer and is only valid for the duration of the call:
	// observers that keep it must copy.
	Values []float64
}

// options collects the Monitor/MonitorAll configuration. Smoothers are
// stateful, so the option carries a factory: every monitored trace gets
// its own instance, which is what makes MonitorAll safe to fan out.
type options struct {
	smoother     func() Smoother
	samplePeriod float64
	parallelism  int
	ctx          context.Context
	observer     func(WindowObservation)
	reqTracer    *obs.ReqTracer
}

// Option configures Monitor and MonitorAll.
type Option func(*options)

// WithSmoother installs the decision smoother, given as a factory so each
// monitored trace gets a fresh instance. Default: a MajorityVoter with
// its standard window.
func WithSmoother(factory func() Smoother) Option {
	return func(o *options) { o.smoother = factory }
}

// WithSamplePeriod sets the HPC sampling period in seconds used to
// convert the alarm window index into latency (default 0.01, the paper's
// 10 ms).
func WithSamplePeriod(seconds float64) Option {
	return func(o *options) { o.samplePeriod = seconds }
}

// WithParallelism bounds MonitorAll's worker count. 0 uses the
// process-wide default; 1 forces the serial path. Monitor ignores it.
func WithParallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// WithWindowObserver installs fn, called once per classified window with
// the window's verdict, score and feature vector. MonitorAll invokes it
// from its worker goroutines, so fn must be safe for concurrent use; the
// Values slice is only valid during the call. Per-window probability
// lookup only happens when an observer is installed, so monitoring
// without one costs nothing extra.
func WithWindowObserver(fn func(WindowObservation)) Option {
	return func(o *options) { o.observer = fn }
}

// WithReqTracer records one request trace per monitored program replay
// (head-sampled by the tracer's default ratio): a "replay.monitor" root
// whose span carries the window and alarm counts, tail-kept when the
// replay raised an alarm. nil (the default) traces nothing and adds no
// per-window work.
func WithReqTracer(rt *obs.ReqTracer) Option {
	return func(o *options) { o.reqTracer = rt }
}

// WithContext cancels MonitorAll early when ctx is done: traces not yet
// claimed by a worker are skipped and the context error is returned.
// This is how `hpcmal serve` propagates SIGINT/SIGTERM into in-flight
// monitoring rounds.
func WithContext(ctx context.Context) Option {
	return func(o *options) { o.ctx = ctx }
}

func buildOptions(opts []Option) (options, error) {
	o := options{
		smoother:     func() Smoother { return &MajorityVoter{} },
		samplePeriod: 0.01,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.smoother == nil {
		return o, fmt.Errorf("online: nil smoother factory")
	}
	if o.samplePeriod <= 0 {
		return o, fmt.Errorf("online: non-positive sample period")
	}
	return o, nil
}

// compileOnce lowers the classifier into its batch-inference program
// when it has a compiled kernel. A nil program means "interpret"; an
// untrained model is reported up front instead of panicking per window.
func compileOnce(clf ml.Classifier) (*infer.Program, error) {
	if clf == nil {
		return nil, fmt.Errorf("online: nil classifier")
	}
	prog, err := infer.Compile(clf)
	switch {
	case err == nil:
		return prog, nil
	case errors.Is(err, infer.ErrNotCompilable):
		return nil, nil
	default:
		return nil, fmt.Errorf("online: compiling %s: %w", clf.Name(), err)
	}
}

// Monitor replays a trace through a trained binary classifier and a
// decision smoother, returning when (if ever) the alarm fires. The
// classifier must have been trained on the same event set as the trace,
// with binary labels (1 = malware). With no options it smooths through a
// default MajorityVoter at the paper's 10 ms sampling period.
// Classifiers with a compiled kernel (see internal/infer) run each
// window through the compiled program.
func Monitor(clf ml.Classifier, tr *trace.Trace, opts ...Option) (*Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	prog, err := compileOnce(clf)
	if err != nil {
		return nil, err
	}
	return monitor(clf, prog, tr, o)
}

// MonitorAll monitors every trace concurrently and returns the results in
// trace order. Each trace gets its own smoother instance, so the results
// are identical to calling Monitor on each trace serially, at any worker
// count. The classifier is compiled once and the program shared across
// workers (a Program is goroutine-safe); interpreted fallbacks share the
// classifier, whose Predict must be read-only (every classifier in this
// repository is).
func MonitorAll(clf ml.Classifier, traces []*trace.Trace, opts ...Option) ([]*Result, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	prog, err := compileOnce(clf)
	if err != nil {
		return nil, err
	}
	return parallel.Map(
		parallel.Options{Name: "online.monitor", Workers: o.parallelism, Context: o.ctx},
		len(traces), func(i int) (*Result, error) {
			return monitor(clf, prog, traces[i], o)
		})
}

// malwareScore reduces a class-probability vector to the observer's
// score: the malware (class 1) probability for binary models, the
// predicted class's probability otherwise.
func malwareScore(p []float64, pred int) float64 {
	if len(p) == 2 {
		return p[1]
	}
	if pred >= 0 && pred < len(p) {
		return p[pred]
	}
	return float64(pred)
}

func monitor(clf ml.Classifier, prog *infer.Program, tr *trace.Trace, o options) (*Result, error) {
	if clf == nil || tr == nil {
		return nil, fmt.Errorf("online: nil argument")
	}
	sm := o.smoother()
	if sm == nil {
		return nil, fmt.Errorf("online: smoother factory returned nil")
	}
	sm.Reset()
	mMonitors.Inc()
	bus := obs.DefaultBus
	res := &Result{Window: -1}
	// Head-sample one request trace per replayed program: the whole
	// replay becomes a root with a single classification span, so slow or
	// alarm-raising replays show up on /api/v1/traces next to ingest
	// traffic. Without a tracer this path adds nothing, not even a clock
	// read.
	var at *obs.ActiveTrace
	var monStartNS int64
	if o.reqTracer != nil {
		monStartNS = time.Now().UnixNano()
		at = o.reqTracer.Sample(obs.TraceContext{}, "replay", tr.SampleName, monStartNS)
	}
	// One feature buffer per trace, refilled in place each window,
	// instead of a fresh Values() slice per 10 ms sample.
	var vals []float64
	if len(tr.Records) > 0 {
		vals = make([]float64, 0, len(tr.Records[0].Readings))
	}
	// Probability scratch, allocated once per trace and only when an
	// observer wants scores.
	var probaDst, probaX [][]float64
	var probClf ml.ProbClassifier
	if o.observer != nil {
		if prog != nil && prog.HasProba() {
			probaDst = [][]float64{make([]float64, prog.NumClasses())}
			probaX = [][]float64{nil}
		} else if pc, ok := clf.(ml.ProbClassifier); ok {
			probClf = pc
		}
	}
	for i := range tr.Records {
		vals = tr.Records[i].AppendValues(vals[:0])
		var pred int
		if prog != nil {
			var err error
			if pred, err = prog.PredictOne(vals); err != nil {
				return nil, fmt.Errorf("online: %s window %d: %w", tr.SampleName, i, err)
			}
		} else {
			pred = clf.Predict(vals)
		}
		// Per-window classification events only cost anything when a
		// live /events stream is attached; Publish without subscribers
		// is a single atomic load.
		bus.Publish(obs.Event{Type: EventWindow, Sample: tr.SampleName,
			Class: tr.Class.String(), Window: i, Value: float64(pred)})
		if o.observer != nil {
			score := float64(pred)
			if probaX != nil {
				probaX[0] = vals
				if err := prog.Proba(probaDst, probaX); err == nil {
					score = malwareScore(probaDst[0], pred)
				}
			} else if probClf != nil {
				if p := probClf.Proba(vals); len(p) > 0 {
					score = malwareScore(p, pred)
				}
			}
			o.observer(WindowObservation{Sample: tr.SampleName,
				Class: tr.Class.String(), Window: i, Pred: pred,
				Score: score, Values: vals})
		}
		if sm.Observe(pred) && !res.Detected {
			res.Detected = true
			res.Window = i
			res.LatencySeconds = float64(i+1) * o.samplePeriod
			// Keep consuming: callers may want post-detection stats
			// later; for now first alarm decides.
			break
		}
	}
	if res.Detected {
		mAlarms.Inc()
		mAlarmLatency.Observe(float64(res.Window + 1))
		// An alarm-coincident trace is tail-kept: it survives ring
		// eviction for forensic replay of the verdict.
		at.Keep("alarm")
		bus.Publish(obs.Event{Type: EventAlarm, Sample: tr.SampleName,
			Class: tr.Class.String(), Window: res.Window,
			Value: res.LatencySeconds})
		obs.Log().Debug("alarm raised", "sample", tr.SampleName,
			"class", tr.Class.String(), "window", res.Window,
			"latency_s", res.LatencySeconds)
	}
	if at != nil {
		endNS := time.Now().UnixNano()
		detected := 0.0
		if res.Detected {
			detected = 1
		}
		at.AddSpan("replay.classify", monStartNS, endNS,
			obs.ReqAttr{Key: "windows", Value: float64(len(tr.Records))},
			obs.ReqAttr{Key: "detected", Value: detected})
		at.End(endNS)
	}
	return res, nil
}

package online

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestMajorityVoterWindow(t *testing.T) {
	v := &MajorityVoter{Window: 4, Threshold: 0.5}
	// 1 malware vote out of 4: no alarm (1 < 2).
	if v.Observe(1) {
		t.Fatal("single vote raised alarm")
	}
	if v.Observe(0) || v.Observe(0) {
		t.Fatal("early alarm")
	}
	// Second malware vote: 2/4 >= 0.5 → alarm.
	if !v.Observe(1) {
		t.Fatal("2/4 malware did not alarm at threshold 0.5")
	}
	// Old votes slide out: after 4 benign votes, calm again.
	for i := 0; i < 4; i++ {
		v.Observe(0)
	}
	if v.Observe(0) {
		t.Fatal("alarm persisted after window flushed")
	}
}

func TestMajorityVoterReset(t *testing.T) {
	v := &MajorityVoter{Window: 2, Threshold: 0.5}
	v.Observe(1)
	v.Reset()
	if v.Observe(0) {
		t.Fatal("reset did not clear votes")
	}
}

func TestMajorityVoterDefaults(t *testing.T) {
	v := &MajorityVoter{}
	// Defaults: window 8, threshold 0.5 → 4 consecutive malware votes.
	alarmAt := -1
	for i := 0; i < 8; i++ {
		if v.Observe(1) && alarmAt == -1 {
			alarmAt = i
		}
	}
	if alarmAt != 3 {
		t.Fatalf("default voter alarmed at vote %d, want 3", alarmAt)
	}
}

func TestEWMA(t *testing.T) {
	e := &EWMA{Alpha: 0.5, Threshold: 0.6}
	if e.Observe(1) {
		t.Fatal("one vote should not cross 0.6 at alpha 0.5")
	}
	if !e.Observe(1) {
		t.Fatal("two malware votes (state 0.75) should alarm")
	}
	e.Reset()
	if e.Observe(0) {
		t.Fatal("reset did not clear state")
	}
	// Decay: after an alarm, benign stream calms it down.
	e.Reset()
	e.Observe(1)
	e.Observe(1)
	for i := 0; i < 5; i++ {
		e.Observe(0)
	}
	if e.Observe(0) {
		t.Fatal("EWMA did not decay")
	}
}

// constClassifier always predicts the same label.
type constClassifier int

func (c constClassifier) Name() string                        { return "const" }
func (c constClassifier) Train([][]float64, []int, int) error { return nil }
func (c constClassifier) Predict([]float64) int               { return int(c) }

var _ ml.Classifier = constClassifier(0)

func collectTrace(t *testing.T, class workload.Class, windows int) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.WindowsPerSample = windows
	cfg.SimInstrPerSlice = 300
	tr, err := trace.CollectSample(cfg, class, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMonitorDetectsSustainedMalware(t *testing.T) {
	tr := collectTrace(t, workload.Worm, 12)
	res, err := Monitor(constClassifier(1), tr,
		WithSmoother(func() Smoother { return &MajorityVoter{Window: 4, Threshold: 0.5} }))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("sustained malware verdicts did not alarm")
	}
	// 2 of 4 votes at threshold 0.5 → window index 1, latency 20 ms at
	// the default 10 ms sampling period.
	if res.Window != 1 {
		t.Fatalf("alarm at window %d, want 1", res.Window)
	}
	if res.LatencySeconds != 0.02 {
		t.Fatalf("latency %v, want 0.02", res.LatencySeconds)
	}
}

func TestMonitorStaysQuietOnBenign(t *testing.T) {
	tr := collectTrace(t, workload.Benign, 12)
	res, err := Monitor(constClassifier(0), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Fatal("benign verdicts raised alarm")
	}
	if res.Window != -1 || res.LatencySeconds != 0 {
		t.Fatalf("quiet result malformed: %+v", res)
	}
}

func TestMonitorErrors(t *testing.T) {
	tr := collectTrace(t, workload.Benign, 2)
	if _, err := Monitor(nil, tr); err == nil {
		t.Fatal("accepted nil classifier")
	}
	if _, err := Monitor(constClassifier(0), tr, WithSmoother(nil)); err == nil {
		t.Fatal("accepted nil smoother factory")
	}
	if _, err := Monitor(constClassifier(0), tr,
		WithSmoother(func() Smoother { return nil })); err == nil {
		t.Fatal("accepted nil smoother")
	}
	if _, err := Monitor(constClassifier(0), nil); err == nil {
		t.Fatal("accepted nil trace")
	}
	if _, err := Monitor(constClassifier(0), tr, WithSamplePeriod(0)); err == nil {
		t.Fatal("accepted zero period")
	}
}

func TestMonitorAllMatchesSerialMonitor(t *testing.T) {
	classes := []workload.Class{
		workload.Benign, workload.Worm, workload.Trojan,
		workload.Virus, workload.Rootkit, workload.Backdoor,
	}
	traces := make([]*trace.Trace, len(classes))
	for i, c := range classes {
		traces[i] = collectTrace(t, c, 12)
	}
	smoother := func() Smoother { return &MajorityVoter{Window: 4, Threshold: 0.5} }
	// flaky predicts from the window values, so verdicts differ per trace.
	flaky := thresholdClassifier{}
	want := make([]*Result, len(traces))
	for i, tr := range traces {
		var err error
		want[i], err = Monitor(flaky, tr, WithSmoother(smoother))
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := MonitorAll(flaky, traces,
			WithSmoother(smoother), WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if *got[i] != *want[i] {
				t.Fatalf("workers=%d: trace %d result %+v, want %+v",
					workers, i, *got[i], *want[i])
			}
		}
	}
}

// thresholdClassifier flags windows whose first feature exceeds the mean
// of the row — a cheap deterministic stand-in for a trained model that
// produces different verdicts on different traces.
type thresholdClassifier struct{}

func (thresholdClassifier) Name() string                        { return "threshold" }
func (thresholdClassifier) Train([][]float64, []int, int) error { return nil }
func (thresholdClassifier) Predict(row []float64) int {
	if len(row) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range row {
		sum += v
	}
	if row[0] > sum/float64(len(row)) {
		return 1
	}
	return 0
}

func TestSmootherRobustToFlakyVotes(t *testing.T) {
	// Alternating verdicts at threshold 0.75 never alarm: smoothing
	// suppresses one-off misclassifications.
	v := &MajorityVoter{Window: 8, Threshold: 0.75}
	for i := 0; i < 50; i++ {
		if v.Observe(i % 2) {
			t.Fatal("flaky verdict stream raised alarm at high threshold")
		}
	}
}

// Property: whenever the majority voter alarms, at least
// ceil(threshold*window) of the most recent observations were malware.
func TestVoterAlarmImpliesVotesProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		window := src.Intn(10) + 2
		v := &MajorityVoter{Window: window, Threshold: 0.5}
		var history []int
		for i := 0; i < 200; i++ {
			pred := 0
			if src.Bool(0.4) {
				pred = 1
			}
			history = append(history, pred)
			alarm := v.Observe(pred)
			if alarm {
				// Count malware votes in the filled window.
				lo := len(history) - window
				if lo < 0 {
					lo = 0
				}
				sum := 0
				for _, p := range history[lo:] {
					sum += p
				}
				if float64(sum) < 0.5*float64(window) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// probClassifier predicts like constClassifier but also reports
// probabilities, exercising the observer's score path.
type probClassifier struct{ p float64 }

func (c probClassifier) Name() string                        { return "prob" }
func (c probClassifier) Train([][]float64, []int, int) error { return nil }
func (c probClassifier) Predict([]float64) int {
	if c.p >= 0.5 {
		return 1
	}
	return 0
}
func (c probClassifier) Proba([]float64) []float64 { return []float64{1 - c.p, c.p} }

var _ ml.ProbClassifier = probClassifier{}

func TestWindowObserver(t *testing.T) {
	tr := collectTrace(t, workload.Worm, 6)
	var mu sync.Mutex
	var seen []WindowObservation
	_, err := Monitor(probClassifier{p: 0.9}, tr,
		WithSmoother(func() Smoother { return &MajorityVoter{Window: 100, Threshold: 1} }),
		WithWindowObserver(func(o WindowObservation) {
			o.Values = append([]float64(nil), o.Values...) // contract: copy
			mu.Lock()
			seen = append(seen, o)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 {
		t.Fatalf("observer saw %d windows, want 6", len(seen))
	}
	for i, o := range seen {
		if o.Window != i || o.Pred != 1 || o.Score != 0.9 {
			t.Fatalf("observation %d = %+v", i, o)
		}
		if o.Sample != tr.SampleName || len(o.Values) == 0 {
			t.Fatalf("observation %d missing identity/values: %+v", i, o)
		}
	}

	// Without probabilities the score degrades to the 0/1 verdict.
	seen = nil
	if _, err := Monitor(constClassifier(1), tr,
		WithSmoother(func() Smoother { return &MajorityVoter{Window: 100, Threshold: 1} }),
		WithWindowObserver(func(o WindowObservation) {
			mu.Lock()
			seen = append(seen, o)
			mu.Unlock()
		})); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 6 || seen[0].Score != 1 {
		t.Fatalf("verdict-score fallback = %+v", seen)
	}
}

// TestWindowObserverConcurrent pins that MonitorAll delivers every
// window to the observer across workers under the race detector.
func TestWindowObserverConcurrent(t *testing.T) {
	traces := make([]*trace.Trace, 6)
	for i := range traces {
		traces[i] = collectTrace(t, workload.Worm, 5)
	}
	var n atomic.Int64
	if _, err := MonitorAll(probClassifier{p: 0.2}, traces,
		WithParallelism(4),
		WithWindowObserver(func(o WindowObservation) { n.Add(1) })); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 30 {
		t.Fatalf("observer called %d times, want 30", n.Load())
	}
}

package micro

// Counts is the raw microarchitectural event tally produced by executing
// instructions on a Machine. Field names follow the Linux perf event
// vocabulary used in the paper's feature set (Figure 8 / Table 2).
type Counts struct {
	Instructions uint64
	Cycles       uint64
	RefCycles    uint64
	BusCycles    uint64

	BranchInstructions uint64
	BranchMisses       uint64
	BranchLoads        uint64 // BTB lookups on taken branches
	BranchLoadMisses   uint64 // BTB misses

	L1DCacheLoads      uint64
	L1DCacheLoadMisses uint64
	L1DCacheStores     uint64
	L1DCacheStoreMiss  uint64
	L1ICacheLoads      uint64
	L1ICacheLoadMisses uint64

	LLCLoads       uint64
	LLCLoadMisses  uint64
	LLCStores      uint64
	LLCStoreMisses uint64

	// Hardware next-line prefetcher activity (L1D and LLC).
	L1DPrefetches     uint64
	L1DPrefetchMisses uint64
	LLCPrefetches     uint64
	LLCPrefetchMisses uint64

	// cache-references / cache-misses map to last-level cache references
	// and misses, as on Intel hardware.
	CacheReferences uint64
	CacheMisses     uint64

	DTLBLoads      uint64
	DTLBLoadMisses uint64
	DTLBStores     uint64
	DTLBStoreMiss  uint64
	ITLBLoads      uint64
	ITLBLoadMisses uint64

	// node-loads / node-stores count memory operations serviced by the
	// local DRAM node (i.e. LLC misses that reach memory).
	NodeLoads       uint64
	NodeStores      uint64
	NodeLoadMisses  uint64
	NodeStoreMisses uint64
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.Instructions += o.Instructions
	c.Cycles += o.Cycles
	c.RefCycles += o.RefCycles
	c.BusCycles += o.BusCycles
	c.BranchInstructions += o.BranchInstructions
	c.BranchMisses += o.BranchMisses
	c.BranchLoads += o.BranchLoads
	c.BranchLoadMisses += o.BranchLoadMisses
	c.L1DCacheLoads += o.L1DCacheLoads
	c.L1DCacheLoadMisses += o.L1DCacheLoadMisses
	c.L1DCacheStores += o.L1DCacheStores
	c.L1DCacheStoreMiss += o.L1DCacheStoreMiss
	c.L1ICacheLoads += o.L1ICacheLoads
	c.L1ICacheLoadMisses += o.L1ICacheLoadMisses
	c.LLCLoads += o.LLCLoads
	c.LLCLoadMisses += o.LLCLoadMisses
	c.LLCStores += o.LLCStores
	c.LLCStoreMisses += o.LLCStoreMisses
	c.L1DPrefetches += o.L1DPrefetches
	c.L1DPrefetchMisses += o.L1DPrefetchMisses
	c.LLCPrefetches += o.LLCPrefetches
	c.LLCPrefetchMisses += o.LLCPrefetchMisses
	c.CacheReferences += o.CacheReferences
	c.CacheMisses += o.CacheMisses
	c.DTLBLoads += o.DTLBLoads
	c.DTLBLoadMisses += o.DTLBLoadMisses
	c.DTLBStores += o.DTLBStores
	c.DTLBStoreMiss += o.DTLBStoreMiss
	c.ITLBLoads += o.ITLBLoads
	c.ITLBLoadMisses += o.ITLBLoadMisses
	c.NodeLoads += o.NodeLoads
	c.NodeStores += o.NodeStores
	c.NodeLoadMisses += o.NodeLoadMisses
	c.NodeStoreMisses += o.NodeStoreMisses
}

// Scaled returns c with every field multiplied by factor (rounded to
// nearest). Used to extrapolate a sampled simulation slice to the full
// instruction count of a measurement window.
func (c Counts) Scaled(factor float64) Counts {
	s := func(v uint64) uint64 {
		return uint64(float64(v)*factor + 0.5)
	}
	return Counts{
		Instructions:       s(c.Instructions),
		Cycles:             s(c.Cycles),
		RefCycles:          s(c.RefCycles),
		BusCycles:          s(c.BusCycles),
		BranchInstructions: s(c.BranchInstructions),
		BranchMisses:       s(c.BranchMisses),
		BranchLoads:        s(c.BranchLoads),
		BranchLoadMisses:   s(c.BranchLoadMisses),
		L1DCacheLoads:      s(c.L1DCacheLoads),
		L1DCacheLoadMisses: s(c.L1DCacheLoadMisses),
		L1DCacheStores:     s(c.L1DCacheStores),
		L1DCacheStoreMiss:  s(c.L1DCacheStoreMiss),
		L1ICacheLoads:      s(c.L1ICacheLoads),
		L1ICacheLoadMisses: s(c.L1ICacheLoadMisses),
		LLCLoads:           s(c.LLCLoads),
		LLCLoadMisses:      s(c.LLCLoadMisses),
		LLCStores:          s(c.LLCStores),
		LLCStoreMisses:     s(c.LLCStoreMisses),
		L1DPrefetches:      s(c.L1DPrefetches),
		L1DPrefetchMisses:  s(c.L1DPrefetchMisses),
		LLCPrefetches:      s(c.LLCPrefetches),
		LLCPrefetchMisses:  s(c.LLCPrefetchMisses),
		CacheReferences:    s(c.CacheReferences),
		CacheMisses:        s(c.CacheMisses),
		DTLBLoads:          s(c.DTLBLoads),
		DTLBLoadMisses:     s(c.DTLBLoadMisses),
		DTLBStores:         s(c.DTLBStores),
		DTLBStoreMiss:      s(c.DTLBStoreMiss),
		ITLBLoads:          s(c.ITLBLoads),
		ITLBLoadMisses:     s(c.ITLBLoadMisses),
		NodeLoads:          s(c.NodeLoads),
		NodeStores:         s(c.NodeStores),
		NodeLoadMisses:     s(c.NodeLoadMisses),
		NodeStoreMisses:    s(c.NodeStoreMisses),
	}
}

// Get returns the value of the named raw event, and whether the name is
// known. Names use the perf convention (e.g. "L1-dcache-load-misses").
func (c *Counts) Get(name string) (uint64, bool) {
	switch name {
	case "instructions":
		return c.Instructions, true
	case "cpu-cycles", "cycles":
		return c.Cycles, true
	case "ref-cycles":
		return c.RefCycles, true
	case "bus-cycles":
		return c.BusCycles, true
	case "branch-instructions", "branches":
		return c.BranchInstructions, true
	case "branch-misses":
		return c.BranchMisses, true
	case "branch-loads":
		return c.BranchLoads, true
	case "branch-load-misses":
		return c.BranchLoadMisses, true
	case "L1-dcache-loads":
		return c.L1DCacheLoads, true
	case "L1-dcache-load-misses":
		return c.L1DCacheLoadMisses, true
	case "L1-dcache-stores":
		return c.L1DCacheStores, true
	case "L1-dcache-store-misses":
		return c.L1DCacheStoreMiss, true
	case "L1-icache-loads":
		return c.L1ICacheLoads, true
	case "L1-icache-load-misses":
		return c.L1ICacheLoadMisses, true
	case "LLC-loads":
		return c.LLCLoads, true
	case "LLC-load-misses":
		return c.LLCLoadMisses, true
	case "LLC-stores":
		return c.LLCStores, true
	case "LLC-store-misses":
		return c.LLCStoreMisses, true
	case "L1-dcache-prefetches":
		return c.L1DPrefetches, true
	case "L1-dcache-prefetch-misses":
		return c.L1DPrefetchMisses, true
	case "LLC-prefetches":
		return c.LLCPrefetches, true
	case "LLC-prefetch-misses":
		return c.LLCPrefetchMisses, true
	case "cache-references":
		return c.CacheReferences, true
	case "cache-misses":
		return c.CacheMisses, true
	case "dTLB-loads":
		return c.DTLBLoads, true
	case "dTLB-load-misses":
		return c.DTLBLoadMisses, true
	case "dTLB-stores":
		return c.DTLBStores, true
	case "dTLB-store-misses":
		return c.DTLBStoreMiss, true
	case "iTLB-loads":
		return c.ITLBLoads, true
	case "iTLB-load-misses":
		return c.ITLBLoadMisses, true
	case "node-loads":
		return c.NodeLoads, true
	case "node-stores":
		return c.NodeStores, true
	case "node-load-misses":
		return c.NodeLoadMisses, true
	case "node-store-misses":
		return c.NodeStoreMisses, true
	}
	return 0, false
}

// Package micro implements the microarchitectural substrate of the
// reproduction: set-associative caches, TLBs, a gshare branch predictor and
// a core model that turns abstract instruction-block descriptors into
// hardware event counts.
//
// The paper measured real Haswell hardware through Linux perf; we replace
// the silicon with structural models so that the 16 HPC features the
// detector consumes arise from actual cache/branch/TLB mechanics reacting
// to workload behaviour (footprints, strides, branch entropy), not from
// hand-painted numbers. See DESIGN.md for the substitution argument.
package micro

import "fmt"

// Cache is a set-associative cache with true-LRU replacement.
// Tags are stored per way; LRU state is an age stamp from a monotonically
// increasing access counter.
type Cache struct {
	name     string
	sets     int
	ways     int
	lineBits uint // log2(line size)
	setMask  uint64

	tags  []uint64 // sets*ways
	valid []bool
	age   []uint64
	clock uint64

	prefetchNext bool

	// Statistics since last Reset.
	Accesses uint64
	Misses   uint64
	// Prefetches counts next-line prefetch requests issued on demand
	// misses (when the prefetcher is enabled); PrefetchMisses counts the
	// subset that actually had to fill (were not already resident).
	Prefetches     uint64
	PrefetchMisses uint64
	PrefetchUseful uint64
	prefetched     map[uint64]bool // lines resident due to prefetch, not yet demanded
}

// NewCache builds a cache with the given total size, associativity, and
// line size, all in bytes. Size must be divisible by ways*lineSize and the
// resulting set count must be a power of two.
func NewCache(name string, size, ways, lineSize int) (*Cache, error) {
	if size <= 0 || ways <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("micro: cache %q: non-positive geometry", name)
	}
	if size%(ways*lineSize) != 0 {
		return nil, fmt.Errorf("micro: cache %q: size %d not divisible by ways*line %d",
			name, size, ways*lineSize)
	}
	sets := size / (ways * lineSize)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("micro: cache %q: set count %d not a power of two", name, sets)
	}
	if lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("micro: cache %q: line size %d not a power of two", name, lineSize)
	}
	lb := uint(0)
	for 1<<lb < lineSize {
		lb++
	}
	return &Cache{
		name:     name,
		sets:     sets,
		ways:     ways,
		lineBits: lb,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*ways),
		valid:    make([]bool, sets*ways),
		age:      make([]uint64, sets*ways),
	}, nil
}

// MustCache is NewCache that panics on configuration error; used for the
// fixed, known-good machine configurations in this package.
func MustCache(name string, size, ways, lineSize int) *Cache {
	c, err := NewCache(name, size, ways, lineSize)
	if err != nil {
		panic(err)
	}
	return c
}

// EnablePrefetcher turns on the next-line prefetcher: every demand miss
// also fills the sequentially next line, the dominant hardware prefetch
// policy for streaming access patterns.
func (c *Cache) EnablePrefetcher() {
	c.prefetchNext = true
	if c.prefetched == nil {
		c.prefetched = make(map[uint64]bool)
	}
}

// Access looks up addr, fills on miss, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	hit := c.lookupFill(line, false)
	if !hit && c.prefetchNext {
		c.Prefetches++
		if !c.lookupFill(line+1, true) {
			c.PrefetchMisses++
		}
	}
	return hit
}

// lookupFill performs the set lookup and fill-on-miss for a line address.
// Demand accesses update the access/miss statistics; prefetch fills do
// not (they have their own counters at the call site).
func (c *Cache) lookupFill(line uint64, prefetch bool) bool {
	c.clock++
	if !prefetch {
		c.Accesses++
	}
	set := int(line & c.setMask)
	tag := line
	base := set * c.ways

	victim := base
	oldest := ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.age[i] = c.clock
			if !prefetch && c.prefetched != nil && c.prefetched[line] {
				c.PrefetchUseful++
				delete(c.prefetched, line)
			}
			return true
		}
		if !c.valid[i] {
			victim = i
			oldest = 0
		} else if c.age[i] < oldest {
			victim = i
			oldest = c.age[i]
		}
	}
	if !prefetch {
		c.Misses++
	}
	if c.prefetched != nil {
		delete(c.prefetched, c.tags[victim])
		if prefetch {
			c.prefetched[line] = true
		}
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.age[victim] = c.clock
	return false
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return 1 << c.lineBits }

// SizeBytes returns the total capacity in bytes.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * c.LineSize() }

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats clears the access/miss counters but keeps cache contents,
// modelling a counter read-and-clear without disturbing the hierarchy.
func (c *Cache) ResetStats() {
	c.Accesses = 0
	c.Misses = 0
	c.Prefetches = 0
	c.PrefetchMisses = 0
	c.PrefetchUseful = 0
}

// Flush invalidates all lines and clears statistics (e.g. a fresh
// container/machine per measured sample).
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.age[i] = 0
	}
	c.clock = 0
	if c.prefetched != nil {
		c.prefetched = make(map[uint64]bool)
	}
	c.ResetStats()
}

// TLB is a fully-associative translation lookaside buffer over fixed-size
// pages with LRU replacement, reusing the cache machinery with one set.
type TLB struct {
	cache    *Cache
	pageBits uint
}

// NewTLB builds a TLB with the given number of entries and page size.
func NewTLB(name string, entries, pageSize int) (*TLB, error) {
	if entries <= 0 || pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("micro: tlb %q: bad geometry entries=%d page=%d", name, entries, pageSize)
	}
	// One set, `entries` ways, "line size" of one byte: we feed it page
	// numbers directly, so spatial locality inside a page maps to one tag.
	c, err := NewCache(name, entries, entries, 1)
	if err != nil {
		return nil, err
	}
	pb := uint(0)
	for 1<<pb < pageSize {
		pb++
	}
	return &TLB{cache: c, pageBits: pb}, nil
}

// MustTLB is NewTLB that panics on configuration error.
func MustTLB(name string, entries, pageSize int) *TLB {
	t, err := NewTLB(name, entries, pageSize)
	if err != nil {
		panic(err)
	}
	return t
}

// Access translates addr and reports whether the translation hit.
func (t *TLB) Access(addr uint64) bool {
	return t.cache.Access(addr >> t.pageBits)
}

// Accesses returns the number of lookups since the last reset.
func (t *TLB) Accesses() uint64 { return t.cache.Accesses }

// Misses returns the number of misses since the last reset.
func (t *TLB) Misses() uint64 { return t.cache.Misses }

// ResetStats clears counters, keeping TLB contents.
func (t *TLB) ResetStats() { t.cache.ResetStats() }

// Flush invalidates all entries.
func (t *TLB) Flush() { t.cache.Flush() }

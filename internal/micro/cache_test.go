package micro

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCacheGeometry(t *testing.T) {
	c := MustCache("t", 32<<10, 8, 64)
	if c.Sets() != 64 || c.Ways() != 8 || c.LineSize() != 64 {
		t.Fatalf("geometry sets=%d ways=%d line=%d", c.Sets(), c.Ways(), c.LineSize())
	}
	if c.SizeBytes() != 32<<10 {
		t.Fatalf("size %d", c.SizeBytes())
	}
}

func TestCacheRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		size, ways, line int
	}{
		{0, 8, 64},          // zero size
		{32 << 10, 0, 64},   // zero ways
		{100, 1, 64},        // size not divisible
		{3 * 64 * 8, 8, 64}, // 3 sets: not power of two
		{32 << 10, 8, 48},   // line not power of two
	}
	for _, tc := range cases {
		if _, err := NewCache("bad", tc.size, tc.ways, tc.line); err == nil {
			t.Fatalf("accepted bad geometry %+v", tc)
		}
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := MustCache("t", 1<<10, 2, 64)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1008) {
		t.Fatal("same-line access missed")
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Fatalf("stats accesses=%d misses=%d", c.Accesses, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache: fill a set with 2 lines, touch the first, insert a
	// third; the second (least recently used) must be evicted.
	c := MustCache("t", 2*64*4, 2, 64) // 4 sets, 2 ways
	setStride := uint64(4 * 64)        // addresses mapping to set 0
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a)
	c.Access(b)
	c.Access(a) // refresh a
	c.Access(d) // evicts b
	if !c.Access(a) {
		t.Fatal("a was evicted despite being MRU")
	}
	if c.Access(b) {
		t.Fatal("b survived eviction")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	c := MustCache("t", 8<<10, 8, 64)
	// Working set half the cache: after warmup, zero misses.
	for pass := 0; pass < 3; pass++ {
		c.ResetStats()
		for addr := uint64(0); addr < 4<<10; addr += 64 {
			c.Access(addr)
		}
	}
	if c.Misses != 0 {
		t.Fatalf("fitting working set missed %d times", c.Misses)
	}
}

func TestCacheThrashing(t *testing.T) {
	c := MustCache("t", 1<<10, 1, 64) // direct-mapped 1 KB
	// Working set 4x the cache, sequential sweep: every access misses
	// after the set conflicts wrap.
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 4<<10; addr += 64 {
			c.Access(addr)
		}
	}
	if c.MissRate() < 0.9 {
		t.Fatalf("thrashing miss rate %v, want ~1", c.MissRate())
	}
}

func TestCacheFlushAndReset(t *testing.T) {
	c := MustCache("t", 1<<10, 2, 64)
	c.Access(0x40)
	c.ResetStats()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
	if !c.Access(0x40) {
		t.Fatal("ResetStats lost cache contents")
	}
	c.Flush()
	if c.Access(0x40) {
		t.Fatal("Flush kept cache contents")
	}
}

func TestTLBBasics(t *testing.T) {
	tlb := MustTLB("t", 4, 4096)
	if tlb.Access(0x1000) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Access(0x1fff) {
		t.Fatal("same-page access missed")
	}
	if tlb.Access(0x2000) {
		t.Fatal("different page hit")
	}
	// Fill beyond capacity: 4-entry TLB, touch 5 pages, first is evicted.
	tlb.Flush()
	for p := uint64(0); p < 5; p++ {
		tlb.Access(p * 4096)
	}
	if tlb.Access(0) {
		t.Fatal("LRU page survived over-capacity fill")
	}
}

func TestTLBRejectsBadGeometry(t *testing.T) {
	if _, err := NewTLB("bad", 0, 4096); err == nil {
		t.Fatal("accepted zero entries")
	}
	if _, err := NewTLB("bad", 4, 1000); err == nil {
		t.Fatal("accepted non-power-of-two page size")
	}
}

// Property: miss count never exceeds access count, and hit-after-fill holds
// for arbitrary addresses.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		c := MustCache("t", 4<<10, 4, 64)
		for i := 0; i < 500; i++ {
			addr := uint64(src.Intn(1 << 16))
			c.Access(addr)
			if !c.Access(addr) { // immediate re-access must hit
				return false
			}
		}
		return c.Misses <= c.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchPredictorLearnsBias(t *testing.T) {
	bp := NewBranchPredictor(12, 256)
	// Always-taken branch at one PC: after warmup, no mispredictions.
	for i := 0; i < 100; i++ {
		bp.Predict(0x400000, true)
	}
	bp.ResetStats()
	for i := 0; i < 1000; i++ {
		bp.Predict(0x400000, true)
	}
	if bp.Mispredicted != 0 {
		t.Fatalf("biased branch mispredicted %d times after warmup", bp.Mispredicted)
	}
}

func TestBranchPredictorRandomIsHard(t *testing.T) {
	bp := NewBranchPredictor(12, 256)
	src := rng.New(99)
	for i := 0; i < 20000; i++ {
		bp.Predict(0x400000+uint64(i%16)*4, src.Bool(0.5))
	}
	rate := bp.MispredictRate()
	if rate < 0.35 || rate > 0.65 {
		t.Fatalf("random branches mispredict rate %v, want ~0.5", rate)
	}
}

func TestBranchPredictorBTB(t *testing.T) {
	bp := NewBranchPredictor(10, 16)
	// 16-entry BTB, 32 distinct taken branches that alias: persistent misses.
	for i := 0; i < 10; i++ {
		for pc := uint64(0); pc < 32; pc++ {
			bp.Predict(pc, true)
		}
	}
	if bp.BTBMisses == 0 {
		t.Fatal("aliasing taken branches produced no BTB misses")
	}
	if bp.BTBLookups != bp.Branches {
		t.Fatalf("all branches were taken: lookups %d != branches %d",
			bp.BTBLookups, bp.Branches)
	}
	// Single hot branch: after first insert, all hits.
	bp.Flush()
	for i := 0; i < 100; i++ {
		bp.Predict(0x40, true)
	}
	if bp.BTBMisses != 1 {
		t.Fatalf("hot branch BTB misses = %d, want 1", bp.BTBMisses)
	}
}

func TestBranchPredictorFlush(t *testing.T) {
	bp := NewBranchPredictor(10, 16)
	for i := 0; i < 50; i++ {
		bp.Predict(0x40, true)
	}
	bp.Flush()
	if bp.Branches != 0 || bp.BTBLookups != 0 {
		t.Fatal("Flush did not clear stats")
	}
	// After flush the first prediction at a previously-learned PC starts
	// from weakly-not-taken again, so a taken branch mispredicts.
	if bp.Predict(0x40, true) {
		t.Fatal("predictor retained state across Flush")
	}
}

func TestPrefetcherHelpsSequentialStreams(t *testing.T) {
	// Sequential sweep over 4x the cache: without prefetch every line
	// misses; with next-line prefetch roughly half the demand misses go
	// away (each miss pulls the next line in).
	plain := MustCache("p", 1<<10, 2, 64)
	pref := MustCache("q", 1<<10, 2, 64)
	pref.EnablePrefetcher()
	for addr := uint64(0); addr < 4<<10; addr += 64 {
		plain.Access(addr)
		pref.Access(addr)
	}
	if pref.Misses >= plain.Misses {
		t.Fatalf("prefetcher did not reduce sequential misses: %d vs %d",
			pref.Misses, plain.Misses)
	}
	if pref.Prefetches == 0 || pref.PrefetchMisses == 0 {
		t.Fatal("prefetcher issued no requests")
	}
	if pref.PrefetchUseful == 0 {
		t.Fatal("no prefetch was ever useful on a sequential stream")
	}
}

func TestPrefetcherNeutralOnRandomAccess(t *testing.T) {
	// Random far-apart accesses: prefetched next-lines are never used.
	src := rng.New(7)
	pref := MustCache("q", 1<<10, 2, 64)
	pref.EnablePrefetcher()
	for i := 0; i < 2000; i++ {
		pref.Access(uint64(src.Intn(1<<26)) &^ 63)
	}
	if pref.PrefetchUseful > pref.Prefetches/10 {
		t.Fatalf("random stream claims %d useful of %d prefetches",
			pref.PrefetchUseful, pref.Prefetches)
	}
}

func TestPrefetchStatsClearOnReset(t *testing.T) {
	c := MustCache("r", 1<<10, 2, 64)
	c.EnablePrefetcher()
	for addr := uint64(0); addr < 2048; addr += 64 {
		c.Access(addr)
	}
	c.ResetStats()
	if c.Prefetches != 0 || c.PrefetchMisses != 0 || c.PrefetchUseful != 0 {
		t.Fatal("ResetStats kept prefetch counters")
	}
	c.Flush()
	if c.Access(0) {
		t.Fatal("Flush kept contents")
	}
}

package micro

import "testing"

func BenchmarkCacheAccess(b *testing.B) {
	c := MustCache("bench", 32<<10, 8, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64) & 0xfffff)
	}
}

func BenchmarkBranchPredict(b *testing.B) {
	bp := NewBranchPredictor(14, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bp.Predict(uint64(i&1023)*4, i&7 != 0)
	}
}

func BenchmarkExecuteBlock(b *testing.B) {
	m := NewMachine(DefaultConfig(), 1)
	blk := smallBlock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ExecuteBlock(blk, 1000); err != nil {
			b.Fatal(err)
		}
	}
	// Report simulated instructions per second.
	b.ReportMetric(float64(b.N)*1000/b.Elapsed().Seconds(), "instr/s")
}

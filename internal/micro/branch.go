package micro

// BranchPredictor is a gshare direction predictor with a direct-mapped BTB.
// Direction prediction XORs the global history register with the branch PC
// to index a table of 2-bit saturating counters; targets are predicted by a
// tagged BTB (a miss there is counted as a branch-load miss, matching the
// perf `branch-load-misses` event, which on Intel counts BTB/target misses
// at retirement).
type BranchPredictor struct {
	histBits uint
	history  uint64
	counters []uint8 // 2-bit saturating, init weakly-not-taken

	btbMask uint64
	btbTags []uint64
	btbOK   []bool

	// Statistics since last reset.
	Branches     uint64
	Mispredicted uint64
	BTBLookups   uint64
	BTBMisses    uint64
}

// NewBranchPredictor builds a gshare predictor with 2^histBits counters and
// a BTB with btbEntries (power of two) entries.
func NewBranchPredictor(histBits uint, btbEntries int) *BranchPredictor {
	if histBits == 0 || histBits > 24 {
		panic("micro: histBits out of range")
	}
	if btbEntries <= 0 || btbEntries&(btbEntries-1) != 0 {
		panic("micro: btbEntries must be a positive power of two")
	}
	bp := &BranchPredictor{
		histBits: histBits,
		counters: make([]uint8, 1<<histBits),
		btbMask:  uint64(btbEntries - 1),
		btbTags:  make([]uint64, btbEntries),
		btbOK:    make([]bool, btbEntries),
	}
	for i := range bp.counters {
		bp.counters[i] = 1 // weakly not-taken
	}
	return bp
}

// Predict consumes one conditional branch at pc with actual outcome taken,
// updates the predictor, and reports whether the direction was predicted
// correctly.
func (b *BranchPredictor) Predict(pc uint64, taken bool) bool {
	b.Branches++
	idx := (pc ^ b.history) & ((1 << b.histBits) - 1)
	ctr := b.counters[idx]
	predictedTaken := ctr >= 2

	correct := predictedTaken == taken
	if !correct {
		b.Mispredicted++
	}
	// Update 2-bit counter.
	if taken && ctr < 3 {
		b.counters[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		b.counters[idx] = ctr - 1
	}
	// Update global history.
	b.history = (b.history << 1) & ((1 << b.histBits) - 1)
	if taken {
		b.history |= 1
	}

	// Taken branches consult the BTB for a target.
	if taken {
		b.BTBLookups++
		slot := pc & b.btbMask
		if !b.btbOK[slot] || b.btbTags[slot] != pc {
			b.BTBMisses++
			b.btbTags[slot] = pc
			b.btbOK[slot] = true
		}
	}
	return correct
}

// MispredictRate returns Mispredicted/Branches, or 0 with no branches.
func (b *BranchPredictor) MispredictRate() float64 {
	if b.Branches == 0 {
		return 0
	}
	return float64(b.Mispredicted) / float64(b.Branches)
}

// ResetStats clears counters but keeps learned state.
func (b *BranchPredictor) ResetStats() {
	b.Branches = 0
	b.Mispredicted = 0
	b.BTBLookups = 0
	b.BTBMisses = 0
}

// Flush clears all learned state and statistics.
func (b *BranchPredictor) Flush() {
	for i := range b.counters {
		b.counters[i] = 1
	}
	for i := range b.btbOK {
		b.btbOK[i] = false
	}
	b.history = 0
	b.ResetStats()
}

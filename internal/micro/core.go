package micro

import (
	"fmt"

	"repro/internal/rng"
)

// Config describes a machine's microarchitectural geometry and timing.
type Config struct {
	Name string

	L1ISize, L1IWays int
	L1DSize, L1DWays int
	L2Size, L2Ways   int
	LLCSize, LLCWays int
	LineSize         int

	ITLBEntries, DTLBEntries int
	PageSize                 int

	BranchHistBits uint
	BTBEntries     int

	FreqHz     uint64 // core clock
	BusHz      uint64 // bus clock (bus-cycles event)
	BaseCPI    float64
	L1Penalty  float64 // extra cycles for an L1 miss that hits L2
	L2Penalty  float64 // extra cycles for an L2 miss that hits LLC
	MemPenalty float64 // extra cycles for an LLC miss (DRAM)
	BrPenalty  float64 // branch mispredict flush
	TLBPenalty float64 // page-walk cost
}

// HaswellConfig returns geometry matching the paper's Intel Core i5-4590
// (Haswell): 32 KB L1s, 256 KB L2, 6 MB LLC, 3.3 GHz.
func HaswellConfig() Config {
	return Config{
		Name:    "haswell-i5-4590",
		L1ISize: 32 << 10, L1IWays: 8,
		L1DSize: 32 << 10, L1DWays: 8,
		L2Size: 256 << 10, L2Ways: 8,
		LLCSize: 6 << 20, LLCWays: 12,
		LineSize:    64,
		ITLBEntries: 128, DTLBEntries: 64,
		PageSize:       4096,
		BranchHistBits: 14,
		BTBEntries:     4096,
		FreqHz:         3_300_000_000,
		BusHz:          100_000_000,
		BaseCPI:        0.4,
		L1Penalty:      10,
		L2Penalty:      25,
		MemPenalty:     180,
		BrPenalty:      16,
		TLBPenalty:     30,
	}
}

// DefaultConfig returns the scaled machine used for dataset generation.
//
// The trace sampler simulates only a few thousand instructions out of each
// 10 ms window and extrapolates (SMARTS-style sampling). At that sample
// size a full-size 6 MB LLC never reaches steady state, so the default
// machine shrinks every structure by ~16x and the workload models shrink
// their footprints to match. Miss *rates* — the signal the detector
// learns — stay in realistic ranges; see DESIGN.md.
func DefaultConfig() Config {
	return Config{
		Name:    "haswell-scaled-16x",
		L1ISize: 2 << 10, L1IWays: 4,
		L1DSize: 2 << 10, L1DWays: 4,
		L2Size: 16 << 10, L2Ways: 8,
		LLCSize: 384 << 10, LLCWays: 12,
		LineSize:    64,
		ITLBEntries: 16, DTLBEntries: 16,
		PageSize:       4096,
		BranchHistBits: 10,
		BTBEntries:     256,
		FreqHz:         3_300_000_000,
		BusHz:          100_000_000,
		BaseCPI:        0.4,
		L1Penalty:      10,
		L2Penalty:      25,
		MemPenalty:     180,
		BrPenalty:      16,
		TLBPenalty:     30,
	}
}

// Block describes a homogeneous stretch of dynamic instructions: the
// instruction mix and the memory/branch behaviour that the workload models
// in internal/workload use to express application phases.
type Block struct {
	// Instruction mix; fractions of dynamic instructions. The remainder
	// is plain ALU work. LoadFrac+StoreFrac+BranchFrac must be <= 1.
	LoadFrac   float64
	StoreFrac  float64
	BranchFrac float64

	// Data behaviour.
	DataFootprint   uint64  // bytes of primary working set (>= LineSize)
	DataStride      uint64  // bytes between sequential accesses
	DataRandomFrac  float64 // fraction of accesses at random offsets
	RemoteFrac      float64 // fraction of data ops in the secondary region
	RemoteFootprint uint64  // bytes of secondary region (streaming buffers)

	// Code behaviour.
	CodeFootprint uint64  // bytes of hot code
	CodeJumpFrac  float64 // fraction of taken branches that jump far

	// Branch behaviour.
	BranchTakenProb float64 // P(taken) for unpredictable branches
	BranchEntropy   float64 // 0 = fully predictable, 1 = coin flips
}

// Validate reports whether the block's parameters are internally
// consistent.
func (b Block) Validate() error {
	sum := b.LoadFrac + b.StoreFrac + b.BranchFrac
	if b.LoadFrac < 0 || b.StoreFrac < 0 || b.BranchFrac < 0 || sum > 1+1e-9 {
		return fmt.Errorf("micro: instruction mix fractions invalid (sum %.3f)", sum)
	}
	for _, f := range []float64{b.DataRandomFrac, b.RemoteFrac, b.CodeJumpFrac,
		b.BranchTakenProb, b.BranchEntropy} {
		if f < 0 || f > 1 {
			return fmt.Errorf("micro: probability field out of [0,1]: %v", f)
		}
	}
	if b.DataFootprint == 0 || b.CodeFootprint == 0 {
		return fmt.Errorf("micro: zero footprint")
	}
	return nil
}

// Machine is one simulated core with private caches, TLBs, and branch
// predictor. A Machine is not safe for concurrent use; the trace package
// gives each container its own.
type Machine struct {
	cfg Config

	l1i, l1d, l2, llc *Cache
	itlb, dtlb        *TLB
	bp                *BranchPredictor

	src *rng.Source

	codeBase, dataBase, remoteBase uint64
	codePos, dataPos               uint64
}

// NewMachine builds a machine from cfg, seeding its internal randomness
// (address-space layout, branch outcomes) from seed.
func NewMachine(cfg Config, seed uint64) *Machine {
	m := &Machine{
		cfg:  cfg,
		l1i:  MustCache("L1I", cfg.L1ISize, cfg.L1IWays, cfg.LineSize),
		l1d:  MustCache("L1D", cfg.L1DSize, cfg.L1DWays, cfg.LineSize),
		l2:   MustCache("L2", cfg.L2Size, cfg.L2Ways, cfg.LineSize),
		llc:  MustCache("LLC", cfg.LLCSize, cfg.LLCWays, cfg.LineSize),
		itlb: MustTLB("iTLB", cfg.ITLBEntries, cfg.PageSize),
		dtlb: MustTLB("dTLB", cfg.DTLBEntries, cfg.PageSize),
		bp:   NewBranchPredictor(cfg.BranchHistBits, cfg.BTBEntries),
		src:  rng.New(seed),
	}
	// Haswell runs next-line prefetchers at L1D and LLC.
	m.l1d.EnablePrefetcher()
	m.llc.EnablePrefetcher()
	m.randomizeLayout()
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

func (m *Machine) randomizeLayout() {
	// ASLR-like placement: distinct 4 GB-aligned regions with random page
	// offsets, so different samples do not share cache set alignment.
	m.codeBase = 0x0000_4000_0000_0000 | uint64(m.src.Intn(1<<20))<<12
	m.dataBase = 0x0000_7000_0000_0000 | uint64(m.src.Intn(1<<20))<<12
	m.remoteBase = 0x0000_7f00_0000_0000 | uint64(m.src.Intn(1<<20))<<12
	m.codePos = 0
	m.dataPos = 0
}

// Reset flushes all structures and re-randomizes the address layout,
// modelling a fresh container/process.
func (m *Machine) Reset() {
	m.l1i.Flush()
	m.l1d.Flush()
	m.l2.Flush()
	m.llc.Flush()
	m.itlb.Flush()
	m.dtlb.Flush()
	m.bp.Flush()
	m.randomizeLayout()
}

// dataLoad performs one data-side memory access through the hierarchy,
// updating counts. store selects the store counters.
func (m *Machine) memAccess(addr uint64, store bool, c *Counts) {
	// TLB
	if store {
		c.DTLBStores++
		if !m.dtlb.Access(addr) {
			c.DTLBStoreMiss++
		}
	} else {
		c.DTLBLoads++
		if !m.dtlb.Access(addr) {
			c.DTLBLoadMisses++
		}
	}
	// L1D
	if store {
		c.L1DCacheStores++
	} else {
		c.L1DCacheLoads++
	}
	if m.l1d.Access(addr) {
		return
	}
	if store {
		c.L1DCacheStoreMiss++
	} else {
		c.L1DCacheLoadMisses++
	}
	// L2
	if m.l2.Access(addr) {
		return
	}
	// LLC: perf's LLC-loads/stores count references to the last level.
	c.CacheReferences++
	if store {
		c.LLCStores++
	} else {
		c.LLCLoads++
	}
	if m.llc.Access(addr) {
		return
	}
	c.CacheMisses++
	if store {
		c.LLCStoreMisses++
		c.NodeStores++
	} else {
		c.LLCLoadMisses++
		c.NodeLoads++
	}
}

// ifetch performs one instruction-fetch access (a 16-byte fetch group).
func (m *Machine) ifetch(addr uint64, c *Counts) {
	c.ITLBLoads++
	if !m.itlb.Access(addr) {
		c.ITLBLoadMisses++
	}
	c.L1ICacheLoads++
	if m.l1i.Access(addr) {
		return
	}
	c.L1ICacheLoadMisses++
	if m.l2.Access(addr) {
		return
	}
	c.CacheReferences++
	c.LLCLoads++
	if m.llc.Access(addr) {
		return
	}
	c.CacheMisses++
	c.LLCLoadMisses++
	c.NodeLoads++
}

// dataAddr picks the next data address according to the block's locality
// parameters.
func (m *Machine) dataAddr(b *Block) uint64 {
	if b.RemoteFrac > 0 && m.src.Float64() < b.RemoteFrac {
		fp := b.RemoteFootprint
		if fp < uint64(m.cfg.LineSize) {
			fp = uint64(m.cfg.LineSize)
		}
		return m.remoteBase + uint64(m.src.Int63())%fp
	}
	fp := b.DataFootprint
	if fp < uint64(m.cfg.LineSize) {
		fp = uint64(m.cfg.LineSize)
	}
	if b.DataRandomFrac > 0 && m.src.Float64() < b.DataRandomFrac {
		return m.dataBase + uint64(m.src.Int63())%fp
	}
	stride := b.DataStride
	if stride == 0 {
		stride = 8
	}
	m.dataPos = (m.dataPos + stride) % fp
	return m.dataBase + m.dataPos
}

// ExecuteBlock runs n dynamic instructions with the behaviour described by
// b and returns the raw event counts they generated. The machine's caches,
// TLBs and predictor carry state across calls, so consecutive blocks see
// warm structures exactly as consecutive program phases would.
func (m *Machine) ExecuteBlock(b Block, n int) (Counts, error) {
	if err := b.Validate(); err != nil {
		return Counts{}, err
	}
	if n < 0 {
		return Counts{}, fmt.Errorf("micro: negative instruction count %d", n)
	}
	var c Counts
	c.Instructions = uint64(n)
	pfL1D0, pfL1Dm0 := m.l1d.Prefetches, m.l1d.PrefetchMisses
	pfLLC0, pfLLCm0 := m.llc.Prefetches, m.llc.PrefetchMisses

	// Bresenham-style schedulers keep the instruction mix exact without a
	// random draw per instruction.
	var loadAcc, storeAcc, branchAcc, fetchAcc float64
	const fetchBytes = 16 // one L1I access per 16-byte fetch group

	codeFP := b.CodeFootprint
	if codeFP < fetchBytes {
		codeFP = fetchBytes
	}

	for i := 0; i < n; i++ {
		// Instruction fetch (4-byte average instruction length).
		fetchAcc += 4
		if fetchAcc >= fetchBytes {
			fetchAcc -= fetchBytes
			m.ifetch(m.codeBase+m.codePos, &c)
			m.codePos = (m.codePos + fetchBytes) % codeFP
		}

		loadAcc += b.LoadFrac
		if loadAcc >= 1 {
			loadAcc--
			m.memAccess(m.dataAddr(&b), false, &c)
		}
		storeAcc += b.StoreFrac
		if storeAcc >= 1 {
			storeAcc--
			m.memAccess(m.dataAddr(&b), true, &c)
		}
		branchAcc += b.BranchFrac
		if branchAcc >= 1 {
			branchAcc--
			m.branch(&b, codeFP, &c)
		}
	}

	c.L1DPrefetches = m.l1d.Prefetches - pfL1D0
	c.L1DPrefetchMisses = m.l1d.PrefetchMisses - pfL1Dm0
	c.LLCPrefetches = m.llc.Prefetches - pfLLC0
	c.LLCPrefetchMisses = m.llc.PrefetchMisses - pfLLCm0
	m.fillTiming(&c)
	return c, nil
}

// branch executes one conditional branch at the current code position.
func (m *Machine) branch(b *Block, codeFP uint64, c *Counts) {
	pc := m.codeBase + m.codePos
	var taken bool
	if b.BranchEntropy > 0 && m.src.Float64() < b.BranchEntropy {
		taken = m.src.Bool(b.BranchTakenProb)
	} else {
		// Predictable branch: outcome is a fixed function of the PC, so
		// the gshare predictor can learn it.
		taken = (pc>>4)&1 == 0
	}
	correct := m.bp.Predict(pc, taken)
	c.BranchInstructions++
	if !correct {
		c.BranchMisses++
	}
	if taken {
		// BTB lookups/misses accrue inside the predictor and are folded
		// into the counts by fillTiming at the end of the block.
		c.BranchLoads++
		if b.CodeJumpFrac > 0 && m.src.Float64() < b.CodeJumpFrac {
			m.codePos = (uint64(m.src.Int63()) % codeFP) &^ 15
		}
	}
}

// fillTiming derives cycle-domain events from the architectural counts via
// a fixed-penalty performance model, then folds in BTB statistics.
func (m *Machine) fillTiming(c *Counts) {
	// BTB misses accumulated inside the predictor since last harvest.
	c.BranchLoadMisses += m.bp.BTBMisses
	m.bp.ResetStats()

	cfg := &m.cfg
	cycles := cfg.BaseCPI*float64(c.Instructions) +
		cfg.L1Penalty*float64(c.L1DCacheLoadMisses+c.L1DCacheStoreMiss+c.L1ICacheLoadMisses) +
		cfg.L2Penalty*float64(c.LLCLoads+c.LLCStores) +
		cfg.MemPenalty*float64(c.CacheMisses) +
		cfg.BrPenalty*float64(c.BranchMisses) +
		cfg.TLBPenalty*float64(c.DTLBLoadMisses+c.DTLBStoreMiss+c.ITLBLoadMisses)
	c.Cycles = uint64(cycles + 0.5)
	c.RefCycles = c.Cycles
	c.BusCycles = uint64(cycles*float64(cfg.BusHz)/float64(cfg.FreqHz) + 0.5)
}

// WindowInstructions returns how many instructions a window of the given
// duration (in seconds) holds at the machine's clock, assuming the given
// average IPC.
func (m *Machine) WindowInstructions(seconds, ipc float64) uint64 {
	return uint64(seconds * ipc * float64(m.cfg.FreqHz))
}

package micro

import (
	"testing"
	"testing/quick"
)

// smallBlock returns a well-formed block for tests.
func smallBlock() Block {
	return Block{
		LoadFrac:        0.25,
		StoreFrac:       0.10,
		BranchFrac:      0.20,
		DataFootprint:   8 << 10,
		DataStride:      64,
		DataRandomFrac:  0.1,
		CodeFootprint:   4 << 10,
		CodeJumpFrac:    0.05,
		BranchTakenProb: 0.6,
		BranchEntropy:   0.3,
	}
}

func TestExecuteBlockCounts(t *testing.T) {
	m := NewMachine(DefaultConfig(), 1)
	c, err := m.ExecuteBlock(smallBlock(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Instructions != 100000 {
		t.Fatalf("instructions = %d", c.Instructions)
	}
	// Mix fractions are enforced by Bresenham scheduling: exact to +-1.
	if d := int64(c.L1DCacheLoads) - 25000; d < -1 || d > 1 {
		t.Fatalf("loads = %d, want ~25000", c.L1DCacheLoads)
	}
	if d := int64(c.L1DCacheStores) - 10000; d < -1 || d > 1 {
		t.Fatalf("stores = %d, want ~10000", c.L1DCacheStores)
	}
	if d := int64(c.BranchInstructions) - 20000; d < -1 || d > 1 {
		t.Fatalf("branches = %d, want ~20000", c.BranchInstructions)
	}
	// One fetch per 16 bytes at 4 B/instruction = n/4.
	if d := int64(c.L1ICacheLoads) - 25000; d < -2 || d > 2 {
		t.Fatalf("ifetches = %d, want ~25000", c.L1ICacheLoads)
	}
	if c.Cycles == 0 || c.BusCycles == 0 {
		t.Fatal("timing model produced zero cycles")
	}
	if c.Cycles < c.BusCycles {
		t.Fatal("core cycles fewer than bus cycles")
	}
}

func TestExecuteBlockHierarchyInvariants(t *testing.T) {
	m := NewMachine(DefaultConfig(), 2)
	b := smallBlock()
	b.DataFootprint = 2 << 20 // big footprint → real LLC traffic
	b.DataRandomFrac = 0.8
	c, err := m.ExecuteBlock(b, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if c.L1DCacheLoadMisses > c.L1DCacheLoads {
		t.Fatal("more L1D load misses than loads")
	}
	if c.LLCLoadMisses > c.LLCLoads {
		t.Fatal("more LLC load misses than LLC loads")
	}
	if c.CacheMisses > c.CacheReferences {
		t.Fatal("more cache-misses than cache-references")
	}
	if c.BranchMisses > c.BranchInstructions {
		t.Fatal("more branch misses than branches")
	}
	if c.NodeLoads != c.LLCLoadMisses {
		t.Fatalf("node-loads %d != LLC load misses %d", c.NodeLoads, c.LLCLoadMisses)
	}
	if c.NodeStores != c.LLCStoreMisses {
		t.Fatalf("node-stores %d != LLC store misses %d", c.NodeStores, c.LLCStoreMisses)
	}
	if c.LLCLoadMisses == 0 {
		t.Fatal("2 MB random footprint produced zero LLC misses on scaled machine")
	}
}

func TestFootprintDrivesMissRate(t *testing.T) {
	cfg := DefaultConfig()
	small := NewMachine(cfg, 3)
	big := NewMachine(cfg, 3)

	bSmall := smallBlock()
	bSmall.DataFootprint = 1 << 10 // fits in L1D
	bSmall.DataRandomFrac = 1

	bBig := bSmall
	bBig.DataFootprint = 1 << 20 // blows through LLC

	// Warm up, then measure.
	if _, err := small.ExecuteBlock(bSmall, 50000); err != nil {
		t.Fatal(err)
	}
	cs, _ := small.ExecuteBlock(bSmall, 100000)
	if _, err := big.ExecuteBlock(bBig, 50000); err != nil {
		t.Fatal(err)
	}
	cb, _ := big.ExecuteBlock(bBig, 100000)

	rs := float64(cs.L1DCacheLoadMisses) / float64(cs.L1DCacheLoads)
	rb := float64(cb.L1DCacheLoadMisses) / float64(cb.L1DCacheLoads)
	if rs >= rb {
		t.Fatalf("small footprint L1D miss rate %v not below big footprint %v", rs, rb)
	}
	if cb.NodeLoads == 0 {
		t.Fatal("big footprint generated no memory traffic")
	}
	if cs.NodeLoads > cb.NodeLoads/10 {
		t.Fatalf("small footprint node loads %d not ≪ big %d", cs.NodeLoads, cb.NodeLoads)
	}
}

func TestBranchEntropyDrivesMisses(t *testing.T) {
	cfg := DefaultConfig()
	predictable := NewMachine(cfg, 4)
	random := NewMachine(cfg, 4)

	bp := smallBlock()
	bp.BranchEntropy = 0
	br := smallBlock()
	br.BranchEntropy = 1
	br.BranchTakenProb = 0.5

	predictable.ExecuteBlock(bp, 50000) // warmup
	cp, _ := predictable.ExecuteBlock(bp, 200000)
	random.ExecuteBlock(br, 50000)
	cr, _ := random.ExecuteBlock(br, 200000)

	rp := float64(cp.BranchMisses) / float64(cp.BranchInstructions)
	rr := float64(cr.BranchMisses) / float64(cr.BranchInstructions)
	if rp >= rr/2 {
		t.Fatalf("predictable mispredict rate %v not ≪ random %v", rp, rr)
	}
	if rr < 0.3 {
		t.Fatalf("fully random branches mispredict rate %v, want >= 0.3", rr)
	}
}

func TestCodeFootprintDrivesICacheMisses(t *testing.T) {
	cfg := DefaultConfig()
	hot := NewMachine(cfg, 5)
	cold := NewMachine(cfg, 5)

	bh := smallBlock()
	bh.CodeFootprint = 1 << 10 // fits L1I
	bc := smallBlock()
	bc.CodeFootprint = 256 << 10
	bc.CodeJumpFrac = 0.5

	hot.ExecuteBlock(bh, 50000)
	ch, _ := hot.ExecuteBlock(bh, 200000)
	cold.ExecuteBlock(bc, 50000)
	cc, _ := cold.ExecuteBlock(bc, 200000)

	if ch.L1ICacheLoadMisses >= cc.L1ICacheLoadMisses {
		t.Fatalf("hot code icache misses %d not below cold %d",
			ch.L1ICacheLoadMisses, cc.L1ICacheLoadMisses)
	}
	if cc.ITLBLoadMisses == 0 {
		t.Fatal("256 KB jumping code produced no iTLB misses")
	}
}

func TestExecuteBlockRejectsBadBlocks(t *testing.T) {
	m := NewMachine(DefaultConfig(), 6)
	b := smallBlock()
	b.LoadFrac = 0.9 // sum > 1
	if _, err := m.ExecuteBlock(b, 100); err == nil {
		t.Fatal("accepted over-unity instruction mix")
	}
	b = smallBlock()
	b.BranchEntropy = 1.5
	if _, err := m.ExecuteBlock(b, 100); err == nil {
		t.Fatal("accepted probability > 1")
	}
	b = smallBlock()
	b.DataFootprint = 0
	if _, err := m.ExecuteBlock(b, 100); err == nil {
		t.Fatal("accepted zero footprint")
	}
	if _, err := m.ExecuteBlock(smallBlock(), -1); err == nil {
		t.Fatal("accepted negative instruction count")
	}
}

func TestMachineResetIsolation(t *testing.T) {
	m := NewMachine(DefaultConfig(), 7)
	b := smallBlock()
	m.ExecuteBlock(b, 50000)
	m.Reset()
	// After reset the caches are cold again: the first window after reset
	// must have at least one compulsory miss.
	c, _ := m.ExecuteBlock(b, 10000)
	if c.L1DCacheLoadMisses == 0 && c.L1ICacheLoadMisses == 0 {
		t.Fatal("reset machine shows no compulsory misses")
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() Counts {
		m := NewMachine(DefaultConfig(), 42)
		c, _ := m.ExecuteBlock(smallBlock(), 50000)
		return c
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different counts:\n%+v\n%+v", a, b)
	}
}

func TestCountsAddAndScale(t *testing.T) {
	a := Counts{Instructions: 100, BranchMisses: 10, NodeLoads: 4}
	b := Counts{Instructions: 50, BranchMisses: 5, NodeLoads: 1}
	a.Add(b)
	if a.Instructions != 150 || a.BranchMisses != 15 || a.NodeLoads != 5 {
		t.Fatalf("Add result %+v", a)
	}
	s := a.Scaled(2)
	if s.Instructions != 300 || s.BranchMisses != 30 || s.NodeLoads != 10 {
		t.Fatalf("Scaled result %+v", s)
	}
	z := a.Scaled(0)
	if z.Instructions != 0 {
		t.Fatal("Scaled(0) not zero")
	}
}

func TestCountsGet(t *testing.T) {
	c := Counts{BranchInstructions: 7, L1DCacheLoads: 3, NodeStores: 2}
	if v, ok := c.Get("branch-instructions"); !ok || v != 7 {
		t.Fatalf("Get(branch-instructions) = %d,%v", v, ok)
	}
	if v, ok := c.Get("L1-dcache-loads"); !ok || v != 3 {
		t.Fatalf("Get(L1-dcache-loads) = %d,%v", v, ok)
	}
	if v, ok := c.Get("node-stores"); !ok || v != 2 {
		t.Fatalf("Get(node-stores) = %d,%v", v, ok)
	}
	if _, ok := c.Get("no-such-event"); ok {
		t.Fatal("Get accepted unknown event")
	}
}

func TestWindowInstructions(t *testing.T) {
	m := NewMachine(HaswellConfig(), 1)
	n := m.WindowInstructions(0.01, 1.5) // 10 ms at IPC 1.5, 3.3 GHz
	if n != 49_500_000 {
		t.Fatalf("WindowInstructions = %d", n)
	}
}

// Property: counts from any valid block obey the hierarchy inequalities.
func TestHierarchyInvariantProperty(t *testing.T) {
	f := func(seed uint16) bool {
		m := NewMachine(DefaultConfig(), uint64(seed))
		b := smallBlock()
		b.DataRandomFrac = float64(seed%10) / 10
		b.DataFootprint = 1 << (10 + seed%12)
		c, err := m.ExecuteBlock(b, 20000)
		if err != nil {
			return false
		}
		return c.L1DCacheLoadMisses <= c.L1DCacheLoads &&
			c.L1DCacheStoreMiss <= c.L1DCacheStores &&
			c.L1ICacheLoadMisses <= c.L1ICacheLoads &&
			c.CacheMisses <= c.CacheReferences &&
			c.BranchMisses <= c.BranchInstructions &&
			c.BranchLoads <= c.BranchInstructions &&
			c.DTLBLoadMisses <= c.DTLBLoads &&
			c.ITLBLoadMisses <= c.ITLBLoads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHaswellConfigGeometry(t *testing.T) {
	cfg := HaswellConfig()
	m := NewMachine(cfg, 1)
	if m.Config().Name != "haswell-i5-4590" {
		t.Fatal("wrong config name")
	}
	if cfg.LLCSize != 6<<20 || cfg.LLCWays != 12 {
		t.Fatal("LLC geometry does not match i5-4590")
	}
	if cfg.FreqHz != 3_300_000_000 {
		t.Fatal("frequency does not match i5-4590")
	}
}

// Property: Counts.Add is commutative and Scaled(1) is the identity.
func TestCountsAlgebraProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x := Counts{Instructions: uint64(a), BranchMisses: uint64(a) / 3, NodeLoads: uint64(a) % 97}
		y := Counts{Instructions: uint64(b), BranchMisses: uint64(b) / 5, NodeLoads: uint64(b) % 89}
		p, q := x, y
		p.Add(y)
		q.Add(x)
		if p != q {
			return false
		}
		if x.Scaled(1) != x {
			return false
		}
		z := x.Scaled(0)
		return z == Counts{}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package obsflag is the shared command-line surface of the
// observability layer: every front end (the hpcmal subcommands and the
// runnable examples) registers the same flag set and gets logging,
// metrics snapshots, a live telemetry server (-listen), CPU/heap
// profiling (-cpuprofile/-memprofile), and Perfetto span export
// (-trace-out) with identical semantics.
package obsflag

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/profile"
	"repro/internal/telemetry"
)

// Flags holds the parsed shared options. Add registers them; Setup
// applies them; Finish flushes run artifacts and stops what Setup
// started.
type Flags struct {
	Verbose    bool
	VVerbose   bool
	Quiet      bool
	LogJSON    bool
	MetricsOut string
	TraceOut   string
	CPUProfile string
	MemProfile string
	Listen     string
	Workers    int

	// Continuous-profiler knobs. The profiler runs with any -listen
	// server (it is the service's always-on self-observation);
	// ProfileInterval 0 disables it.
	ProfileInterval time.Duration
	ProfileDuty     time.Duration
	ProfileBudget   int64

	// ReadyFn, when set before Setup, gates the telemetry server's
	// /readyz endpoint from its very first request (Setup starts the
	// listener, so attaching later would leave a default-ready window).
	// Nil keeps /readyz mirroring liveness — right for one-shot runs.
	ReadyFn func() (bool, string)

	// TelemetryOpts are extra telemetry.New options appended after the
	// ones Setup derives from the flags, so commands can wire sources
	// (stores, snapshot functions, an ingest service) uniformly at
	// construction instead of via post-hoc setters.
	TelemetryOpts []telemetry.Option

	server      *telemetry.Server
	cpuFile     *os.File
	profiler    *profile.Profiler
	stopProfile func()
	runtimeCol  *obs.RuntimeCollector
}

// Add registers the shared observability flags on fs.
func Add(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.BoolVar(&f.Verbose, "v", false, "verbose logging (debug level)")
	fs.BoolVar(&f.VVerbose, "vv", false, "very verbose logging (trace level)")
	fs.BoolVar(&f.Quiet, "quiet", false, "log errors only")
	fs.BoolVar(&f.LogJSON, "log-json", false, "emit log lines as JSON")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write the run's metrics snapshot JSON to `file`")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write the run's span tree as Chrome trace-event JSON to `file` (open in Perfetto)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to `file` at exit")
	fs.StringVar(&f.Listen, "listen", "", "serve live telemetry (/metrics, /events, /debug/pprof) on `addr` for the run's duration")
	fs.IntVar(&f.Workers, "parallel", 0, "max `workers` for parallel stages (1 = serial; 0 = all CPUs); output is identical at any value")
	fs.DurationVar(&f.ProfileInterval, "profile-interval", 60*time.Second, "continuous profiler: spacing between capture cycles under -listen (0 disables)")
	fs.DurationVar(&f.ProfileDuty, "profile-duty", 10*time.Second, "continuous profiler: CPU-profile duty window per cycle")
	fs.Int64Var(&f.ProfileBudget, "profile-budget", 8<<20, "continuous profiler: capture-ring byte budget")
	return f
}

// Level returns the log level the verbosity flags select.
func (f *Flags) Level() obs.Level {
	switch {
	case f.Quiet:
		return obs.LevelError
	case f.VVerbose:
		return obs.LevelTrace
	case f.Verbose:
		return obs.LevelDebug
	}
	return obs.LevelInfo
}

// Setup installs the process logger, clears run-scoped metric and span
// state (so sequential in-process invocations snapshot identically),
// bounds the parallel engine, starts CPU profiling, and brings up the
// -listen telemetry server.
func (f *Flags) Setup() error {
	obs.SetLogger(obs.New(os.Stderr, f.Level(), f.LogJSON))
	obs.DefaultRegistry.Reset()
	obs.DefaultTracer.Reset()
	parallel.SetDefaultWorkers(f.Workers)
	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			return err
		}
		// Claim the process-wide CPU-profile slot for the run's
		// duration so the continuous profiler and /debug/pprof/profile
		// skip/409 instead of racing runtime/pprof's error path.
		profile.TryAcquireCPU()
		if err := pprof.StartCPUProfile(cf); err != nil {
			profile.ReleaseCPU()
			cf.Close()
			return fmt.Errorf("start cpu profile: %w", err)
		}
		f.cpuFile = cf
	}
	if f.Listen != "" {
		opts := []telemetry.Option{telemetry.WithReady(f.ReadyFn)}
		if f.ProfileInterval > 0 {
			f.runtimeCol = obs.NewRuntimeCollector(obs.DefaultRegistry)
			f.profiler = profile.New(profile.Config{
				Interval: f.ProfileInterval,
				Duty:     f.ProfileDuty,
				Budget:   f.ProfileBudget,
				Runtime:  f.runtimeCol,
			})
			opts = append(opts, telemetry.WithProfiler(f.profiler))
		}
		opts = append(opts, f.TelemetryOpts...)
		f.server = telemetry.New(opts...)
		if err := f.server.Start(f.Listen); err != nil {
			f.stopCPUProfile()
			f.profiler, f.runtimeCol = nil, nil
			return err
		}
		f.stopProfile = f.profiler.Start()
	}
	return nil
}

// Profiler returns the continuous profiler started by Setup (nil when
// disabled or without -listen) — serve wires it into the flight
// recorder's incident embed.
func (f *Flags) Profiler() *profile.Profiler { return f.profiler }

// RuntimeCollector returns the runtime/metrics collector backing the
// profiler's runtime gauges (nil when the profiler is disabled) —
// serve re-uses it as the tsdb's PreScrape hook so runtime series are
// refreshed at scrape cadence, not just once per profile cycle.
func (f *Flags) RuntimeCollector() *obs.RuntimeCollector { return f.runtimeCol }

// Server returns the telemetry server started by -listen (nil without
// the flag).
func (f *Flags) Server() *telemetry.Server { return f.server }

// SetManifest exposes the run's in-flight manifest on the telemetry
// server's /manifest endpoint.
func (f *Flags) SetManifest(m *obs.Manifest) {
	if f.server != nil {
		f.server.SetManifest(m)
	}
}

func (f *Flags) stopCPUProfile() {
	if f.cpuFile == nil {
		return
	}
	pprof.StopCPUProfile()
	profile.ReleaseCPU()
	f.cpuFile.Close()
	f.cpuFile = nil
}

// Finish flushes the run's artifacts — the -metrics-out snapshot, the
// -trace-out Perfetto export, the heap profile — stops CPU profiling,
// and drains the telemetry server. Call it once, after the command's
// work succeeded.
func (f *Flags) Finish() error {
	if f.stopProfile != nil {
		f.stopProfile()
		f.stopProfile = nil
	}
	f.stopCPUProfile()
	if f.MemProfile != "" {
		mf, err := os.Create(f.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(mf); err != nil {
			mf.Close()
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
		obs.Log().Info("heap profile written", "path", f.MemProfile)
	}
	if f.MetricsOut != "" {
		if err := writeTo(f.MetricsOut, obs.WriteRunSnapshot); err != nil {
			return err
		}
		obs.Log().Info("metrics snapshot written", "path", f.MetricsOut)
	}
	if f.TraceOut != "" {
		spans := obs.DefaultTracer.Snapshot()
		err := writeTo(f.TraceOut, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, spans)
		})
		if err != nil {
			return err
		}
		obs.Log().Info("perfetto trace written", "path", f.TraceOut, "spans", len(spans))
	}
	if f.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if err := f.server.Shutdown(ctx); err != nil {
			return fmt.Errorf("telemetry shutdown: %w", err)
		}
		f.server = nil
	}
	return nil
}

func writeTo(path string, fn func(io.Writer) error) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

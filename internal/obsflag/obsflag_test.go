package obsflag

import (
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestSetupFinishArtifacts drives the full shared-flag lifecycle: a run
// with -listen, -metrics-out, -trace-out, -cpuprofile and -memprofile
// must serve live telemetry while running and leave all four artifacts
// behind after Finish.
func TestSetupFinishArtifacts(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Add(fs)
	metrics := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := fs.Parse([]string{"-quiet", "-listen", "127.0.0.1:0",
		"-metrics-out", metrics, "-trace-out", trace,
		"-cpuprofile", cpu, "-memprofile", mem, "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Setup(); err != nil {
		t.Fatal(err)
	}

	// Simulate a run: one span, one counter.
	sp := obs.StartSpan("test.stage")
	obs.GetCounter("test.widgets").Add(3)
	sp.End()

	// The -listen server is live during the run.
	srv := f.Server()
	if srv == nil || srv.Addr() == "" {
		t.Fatal("no telemetry server from -listen")
	}
	m := obs.NewManifest("test", "run")
	f.SetManifest(m)
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}

	if err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	// Server drained.
	if _, err := http.Get(srv.URL() + "/healthz"); err == nil {
		t.Error("telemetry server still up after Finish")
	}
	for _, p := range []string{metrics, trace, cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("artifact %s missing: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("artifact %s is empty", p)
		}
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name": "test.stage"`) {
		t.Errorf("trace export missing span: %s", data)
	}
}

func TestLevelSelection(t *testing.T) {
	cases := []struct {
		f    Flags
		want obs.Level
	}{
		{Flags{}, obs.LevelInfo},
		{Flags{Verbose: true}, obs.LevelDebug},
		{Flags{VVerbose: true}, obs.LevelTrace},
		{Flags{Quiet: true, Verbose: true}, obs.LevelError},
	}
	for _, c := range cases {
		if got := c.f.Level(); got != c.want {
			t.Errorf("Level(%+v) = %v, want %v", c.f, got, c.want)
		}
	}
}

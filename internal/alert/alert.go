// Package alert is a declarative threshold-alerting engine over the obs
// metric registry. Operators describe conditions in a small JSON rule
// file — metric, comparison, threshold, hold duration, severity — and the
// engine evaluates them on a ticker, publishing firing and resolved
// transitions to the event bus and serving its state on the telemetry
// server's /alerts endpoint.
//
// The rule language is deliberately tiny: one metric per rule, six
// comparison operators, and a "for" hold so a condition must stay true
// for a duration before it pages (the standard debounce against
// single-window blips). Rules read any metric the registry exports —
// process health (event-bus drops), throughput (windows/sec), and the
// model-quality gauges from internal/quality (F1, PSI), which is the
// point: a hardware malware detector whose F1 sags or whose inputs drift
// should page a human before it silently waves malware through.
package alert

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Registry metric names exported by the Engine.
const (
	FiringMetric      = "alert.firing"
	EvaluationsMetric = "alert.evaluations"
)

// Event types published to the bus on rule transitions.
const (
	EventFiring   = "alert"
	EventResolved = "alert_resolved"
)

// Rule states, in lifecycle order.
const (
	StateInactive = "inactive" // condition false
	StatePending  = "pending"  // condition true, hold duration not yet met
	StateFiring   = "firing"   // condition held for the full "for" duration
	StateNoData   = "no_data"  // metric not present in the registry
)

// Duration is a time.Duration that unmarshals from either a Go duration
// string ("90s", "5m") or a bare number of seconds, so rule files stay
// hand-writable.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(raw []byte) error {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		dur, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("alert: bad duration %q: %w", s, err)
		}
		*d = Duration(dur)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(raw, &secs); err != nil {
		return fmt.Errorf("alert: duration must be a string or seconds: %s", raw)
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Rule is one declarative alert condition.
type Rule struct {
	// Name identifies the rule in events, logs and /alerts.
	Name string `json:"name"`
	// Metric is the registry metric to watch. Counters and gauges are
	// addressed by name; histograms take a ":" suffix selecting an
	// aggregate — count, sum, mean, min, max, p50, p90, p95 or p99
	// (e.g. "telemetry.scrape_ms:p99").
	Metric string `json:"metric"`
	// Op is the comparison: one of > >= < <= == !=.
	Op string `json:"op"`
	// Threshold is the right-hand side of the comparison.
	Threshold float64 `json:"threshold"`
	// For is how long the condition must hold before the rule fires
	// (0 fires on the first true evaluation).
	For Duration `json:"for,omitempty"`
	// Severity is free-form operator taxonomy ("warning", "critical", ...);
	// defaults to "warning".
	Severity string `json:"severity,omitempty"`
	// Msg is an optional operator hint included in events and /alerts.
	Msg string `json:"msg,omitempty"`
}

var validOps = map[string]func(v, t float64) bool{
	">":  func(v, t float64) bool { return v > t },
	">=": func(v, t float64) bool { return v >= t },
	"<":  func(v, t float64) bool { return v < t },
	"<=": func(v, t float64) bool { return v <= t },
	"==": func(v, t float64) bool { return v == t },
	"!=": func(v, t float64) bool { return v != t },
}

func (r *Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("alert: rule missing name")
	}
	if r.Metric == "" {
		return fmt.Errorf("alert: rule %q missing metric", r.Name)
	}
	if _, ok := validOps[r.Op]; !ok {
		return fmt.Errorf("alert: rule %q has bad op %q (want one of > >= < <= == !=)", r.Name, r.Op)
	}
	if time.Duration(r.For) < 0 {
		return fmt.Errorf("alert: rule %q has negative for", r.Name)
	}
	if r.Severity == "" {
		r.Severity = "warning"
	}
	return nil
}

// ParseRules decodes a rule file: either a bare JSON array of rules or an
// object with a "rules" key, so files can grow metadata later.
func ParseRules(raw []byte) ([]Rule, error) {
	var rules []Rule
	if err := json.Unmarshal(raw, &rules); err != nil {
		var wrapper struct {
			Rules []Rule `json:"rules"`
		}
		if err2 := json.Unmarshal(raw, &wrapper); err2 != nil {
			return nil, fmt.Errorf("alert: parsing rules: %w", err)
		}
		rules = wrapper.Rules
	}
	seen := map[string]bool{}
	for i := range rules {
		if err := rules[i].validate(); err != nil {
			return nil, err
		}
		if seen[rules[i].Name] {
			return nil, fmt.Errorf("alert: duplicate rule name %q", rules[i].Name)
		}
		seen[rules[i].Name] = true
	}
	return rules, nil
}

// RuleStatus is one rule's live evaluation state, served on /alerts.
type RuleStatus struct {
	Rule  Rule   `json:"rule"`
	State string `json:"state"`
	// Value is the metric's value at the last evaluation (0 under no_data).
	Value float64 `json:"value"`
	// ActiveSinceMS / FiredAtMS are unix milliseconds; 0 when not set.
	ActiveSinceMS int64 `json:"active_since_ms,omitempty"`
	FiredAtMS     int64 `json:"fired_at_ms,omitempty"`
	// Fires counts how many times this rule has transitioned to firing.
	Fires int64 `json:"fires"`
}

// Option configures an Engine.
type Option func(*Engine)

// WithRegistry points the engine at a registry other than the default.
func WithRegistry(r *obs.Registry) Option { return func(e *Engine) { e.reg = r } }

// WithBus routes transition events to a bus other than the default.
func WithBus(b *obs.Bus) Option { return func(e *Engine) { e.bus = b } }

// WithOnFire installs a hook called (synchronously, off the engine lock)
// for every rule transition into firing — the flight recorder's trigger.
func WithOnFire(fn func(RuleStatus)) Option { return func(e *Engine) { e.onFire = fn } }

// Engine evaluates a fixed rule set against a registry. All methods are
// safe for concurrent use.
type Engine struct {
	mu     sync.Mutex
	rules  []Rule
	status []RuleStatus
	reg    *obs.Registry
	bus    *obs.Bus
	onFire func(RuleStatus)

	mEvals  *obs.Counter
	gFiring *obs.Gauge
}

// New builds an engine over the given rules (an empty set is legal: the
// engine idles and /alerts reports no rules).
func New(rules []Rule, opts ...Option) *Engine {
	e := &Engine{
		rules: append([]Rule{}, rules...),
		reg:   obs.DefaultRegistry,
		bus:   obs.DefaultBus,
	}
	for _, opt := range opts {
		opt(e)
	}
	for i := range e.rules {
		e.rules[i].validate() // fills default severity for hand-built rules
		e.status = append(e.status, RuleStatus{Rule: e.rules[i], State: StateInactive})
	}
	e.mEvals = e.reg.Counter(EvaluationsMetric)
	e.gFiring = e.reg.Gauge(FiringMetric)
	return e
}

// EvaluateAt runs one evaluation pass with an explicit clock, the
// testable core of Run.
func (e *Engine) EvaluateAt(now time.Time) {
	snap := e.reg.Snapshot()
	nowMS := now.UnixMilli()

	e.mu.Lock()
	var transitions []obs.Event
	var fired []RuleStatus
	firing := 0
	for i := range e.status {
		st := &e.status[i]
		// Metric references resolve through the shared obs lookup:
		// histogram aggregates via "name:agg", empty histograms as 0
		// (see obs.Snapshot.Lookup for the documented contract).
		v, ok := snap.Lookup(st.Rule.Metric)
		wasFiring := st.State == StateFiring
		switch {
		case !ok:
			st.State = StateNoData
			st.Value = 0
			st.ActiveSinceMS = 0
		case validOps[st.Rule.Op](v, st.Rule.Threshold):
			st.Value = v
			if st.ActiveSinceMS == 0 {
				st.ActiveSinceMS = nowMS
			}
			held := time.Duration(nowMS-st.ActiveSinceMS) * time.Millisecond
			if wasFiring || held >= time.Duration(st.Rule.For) {
				st.State = StateFiring
				if !wasFiring {
					st.FiredAtMS = nowMS
					st.Fires++
					fired = append(fired, *st)
					transitions = append(transitions, obs.Event{
						Type:  EventFiring,
						Msg:   fireMsg(*st),
						Value: v,
					})
				}
			} else {
				st.State = StatePending
			}
		default:
			st.Value = v
			st.ActiveSinceMS = 0
			st.State = StateInactive
			if wasFiring {
				transitions = append(transitions, obs.Event{
					Type:  EventResolved,
					Msg:   fmt.Sprintf("%s resolved: %s = %g", st.Rule.Name, st.Rule.Metric, v),
					Value: v,
				})
			}
		}
		if st.State == StateFiring {
			firing++
		}
	}
	e.mu.Unlock()

	e.mEvals.Inc()
	e.gFiring.Set(float64(firing))
	for _, ev := range transitions {
		e.bus.Publish(ev)
		if ev.Type == EventFiring {
			obs.Log().Warn("alert firing", "detail", ev.Msg)
		} else {
			obs.Log().Info("alert resolved", "detail", ev.Msg)
		}
	}
	if e.onFire != nil {
		for _, st := range fired {
			e.onFire(st)
		}
	}
}

func fireMsg(st RuleStatus) string {
	msg := fmt.Sprintf("%s [%s] firing: %s = %g (%s %g)",
		st.Rule.Name, st.Rule.Severity, st.Rule.Metric, st.Value, st.Rule.Op, st.Rule.Threshold)
	if st.Rule.Msg != "" {
		msg += " — " + st.Rule.Msg
	}
	return msg
}

// Run evaluates on a ticker until ctx is done. interval <= 0 defaults to
// 15 seconds.
func (e *Engine) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			e.EvaluateAt(now)
		}
	}
}

// AlertsSnapshot is the /alerts payload.
type AlertsSnapshot struct {
	Rules  []RuleStatus `json:"rules"`
	Firing int          `json:"firing"`
}

// Snapshot freezes every rule's status, sorted firing-first then by name.
func (e *Engine) Snapshot() AlertsSnapshot {
	e.mu.Lock()
	snap := AlertsSnapshot{Rules: append([]RuleStatus{}, e.status...)}
	e.mu.Unlock()
	for _, st := range snap.Rules {
		if st.State == StateFiring {
			snap.Firing++
		}
	}
	rank := map[string]int{StateFiring: 0, StatePending: 1, StateNoData: 2, StateInactive: 3}
	sort.SliceStable(snap.Rules, func(i, j int) bool {
		ri, rj := rank[snap.Rules[i].State], rank[snap.Rules[j].State]
		if ri != rj {
			return ri < rj
		}
		return snap.Rules[i].Rule.Name < snap.Rules[j].Rule.Name
	})
	return snap
}

package alert

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseRules(t *testing.T) {
	raw := []byte(`[
		{"name": "f1-low", "metric": "quality.f1", "op": "<", "threshold": 0.8, "for": "30s", "severity": "critical"},
		{"name": "drops", "metric": "obs.events_dropped", "op": ">", "threshold": 100}
	]`)
	rules, err := ParseRules(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	if rules[0].Severity != "critical" || time.Duration(rules[0].For) != 30*time.Second {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	if rules[1].Severity != "warning" {
		t.Errorf("default severity = %q, want warning", rules[1].Severity)
	}

	// The wrapper form is equivalent.
	wrapped, err := ParseRules([]byte(`{"rules": [{"name": "a", "metric": "m", "op": ">", "threshold": 1, "for": 2.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(wrapped) != 1 || time.Duration(wrapped[0].For) != 2500*time.Millisecond {
		t.Fatalf("wrapped = %+v", wrapped)
	}
}

func TestParseRulesErrors(t *testing.T) {
	cases := map[string]string{
		"missing name":   `[{"metric": "m", "op": ">", "threshold": 1}]`,
		"missing metric": `[{"name": "a", "op": ">", "threshold": 1}]`,
		"bad op":         `[{"name": "a", "metric": "m", "op": "~", "threshold": 1}]`,
		"bad duration":   `[{"name": "a", "metric": "m", "op": ">", "threshold": 1, "for": "xyz"}]`,
		"duplicate name": `[{"name": "a", "metric": "m", "op": ">", "threshold": 1}, {"name": "a", "metric": "m", "op": ">", "threshold": 2}]`,
		"not json":       `{broken`,
	}
	for name, raw := range cases {
		if _, err := ParseRules([]byte(raw)); err == nil {
			t.Errorf("%s: accepted %s", name, raw)
		}
	}
}

func TestEngineFireAndResolve(t *testing.T) {
	r := obs.NewRegistry()
	bus := obs.NewBus()
	sub := bus.Subscribe(8)
	defer sub.Close()
	var hooked []RuleStatus
	e := New([]Rule{
		{Name: "fpr-high", Metric: "quality.fpr", Op: ">", Threshold: 0.1,
			For: Duration(2 * time.Second), Severity: "critical", Msg: "check drift"},
	}, WithRegistry(r), WithBus(bus), WithOnFire(func(st RuleStatus) { hooked = append(hooked, st) }))

	now := time.UnixMilli(1_000_000)
	g := r.Gauge("quality.fpr")

	// Condition false: inactive.
	g.Set(0.05)
	e.EvaluateAt(now)
	if st := e.Snapshot().Rules[0]; st.State != StateInactive {
		t.Fatalf("state = %s, want inactive", st.State)
	}

	// Condition true but hold not met: pending, no event.
	g.Set(0.5)
	e.EvaluateAt(now)
	if st := e.Snapshot().Rules[0]; st.State != StatePending {
		t.Fatalf("state = %s, want pending", st.State)
	}

	// Held past "for": firing, event + hook.
	e.EvaluateAt(now.Add(3 * time.Second))
	snap := e.Snapshot()
	if snap.Firing != 1 || snap.Rules[0].State != StateFiring || snap.Rules[0].Fires != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	select {
	case ev := <-sub.Events():
		if ev.Type != EventFiring || !strings.Contains(ev.Msg, "fpr-high") ||
			!strings.Contains(ev.Msg, "critical") || !strings.Contains(ev.Msg, "check drift") {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no firing event")
	}
	if len(hooked) != 1 || hooked[0].Rule.Name != "fpr-high" {
		t.Fatalf("onFire hook = %+v", hooked)
	}
	if got := r.Gauge(FiringMetric).Value(); got != 1 {
		t.Errorf("firing gauge = %v", got)
	}

	// Stays firing without re-firing.
	e.EvaluateAt(now.Add(4 * time.Second))
	if st := e.Snapshot().Rules[0]; st.Fires != 1 {
		t.Fatalf("re-fired: %+v", st)
	}

	// Condition clears: resolved event.
	g.Set(0.01)
	e.EvaluateAt(now.Add(5 * time.Second))
	if st := e.Snapshot().Rules[0]; st.State != StateInactive {
		t.Fatalf("state = %s, want inactive after recovery", st.State)
	}
	select {
	case ev := <-sub.Events():
		if ev.Type != EventResolved {
			t.Fatalf("event = %+v, want resolved", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no resolved event")
	}
	if got := r.Gauge(FiringMetric).Value(); got != 0 {
		t.Errorf("firing gauge after resolve = %v", got)
	}
}

func TestEngineNoData(t *testing.T) {
	r := obs.NewRegistry()
	e := New([]Rule{{Name: "ghost", Metric: "does.not.exist", Op: ">", Threshold: 1}},
		WithRegistry(r), WithBus(obs.NewBus()))
	e.EvaluateAt(time.UnixMilli(0))
	if st := e.Snapshot().Rules[0]; st.State != StateNoData {
		t.Fatalf("state = %s, want no_data", st.State)
	}
}

func TestEngineZeroForFiresImmediately(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("obs.events_dropped").Add(5)
	e := New([]Rule{{Name: "drops", Metric: "obs.events_dropped", Op: ">", Threshold: 0}},
		WithRegistry(r), WithBus(obs.NewBus()))
	e.EvaluateAt(time.UnixMilli(1000))
	if st := e.Snapshot().Rules[0]; st.State != StateFiring || st.Value != 5 {
		t.Fatalf("status = %+v, want immediate firing at 5", st)
	}
}

// TestRuleMetricResolution pins the alert engine's side of the shared
// obs.Snapshot.Lookup contract: histogram rules address aggregates with
// a ":" suffix, and an empty histogram evaluates as 0 (not NaN), so a
// "p99 > threshold" rule stays inactive rather than no_data or poisoned
// before the first observation.
func TestRuleMetricResolution(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 2, 3, 50} {
		h.Observe(v)
	}
	r.Histogram("empty", []float64{1})
	e := New([]Rule{
		{Name: "lat-p99", Metric: "lat:p99", Op: ">", Threshold: 0},
		{Name: "lat-count", Metric: "lat:count", Op: "==", Threshold: 4},
		{Name: "empty-p99", Metric: "empty:p99", Op: ">", Threshold: 0},
		{Name: "empty-mean-zero", Metric: "empty:mean", Op: "==", Threshold: 0},
		{Name: "bad-agg", Metric: "lat:p12345", Op: ">", Threshold: 0},
	}, WithRegistry(r), WithBus(obs.NewBus()))
	e.EvaluateAt(time.UnixMilli(1000))
	got := map[string]RuleStatus{}
	for _, st := range e.Snapshot().Rules {
		got[st.Rule.Name] = st
	}
	if st := got["lat-p99"]; st.State != StateFiring || st.Value <= 0 {
		t.Errorf("lat-p99 = %+v, want firing with positive value", st)
	}
	if st := got["lat-count"]; st.State != StateFiring || st.Value != 4 {
		t.Errorf("lat-count = %+v, want firing at 4", st)
	}
	// Empty histogram: resolved (not no_data), coerced to 0.
	if st := got["empty-p99"]; st.State != StateInactive || st.Value != 0 {
		t.Errorf("empty-p99 = %+v, want inactive at 0", st)
	}
	if st := got["empty-mean-zero"]; st.State != StateFiring {
		t.Errorf("empty-mean-zero = %+v, want firing (0 == 0)", st)
	}
	if st := got["bad-agg"]; st.State != StateNoData {
		t.Errorf("bad-agg = %+v, want no_data", st)
	}
}

func TestEngineRunTicker(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge("g").Set(9)
	e := New([]Rule{{Name: "g-high", Metric: "g", Op: ">", Threshold: 1}},
		WithRegistry(r), WithBus(obs.NewBus()))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.Run(ctx, 5*time.Millisecond)
	}()
	deadline := time.After(2 * time.Second)
	for e.Snapshot().Firing == 0 {
		select {
		case <-deadline:
			t.Fatal("ticker never fired the rule")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	<-done
	if got := r.Counter(EvaluationsMetric).Value(); got == 0 {
		t.Error("no evaluations counted")
	}
}

func TestSnapshotSortsFiringFirst(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge("hot").Set(10)
	e := New([]Rule{
		{Name: "zzz-quiet", Metric: "hot", Op: "<", Threshold: 0},
		{Name: "aaa-ghost", Metric: "missing", Op: ">", Threshold: 0},
		{Name: "mmm-hot", Metric: "hot", Op: ">", Threshold: 1},
	}, WithRegistry(r), WithBus(obs.NewBus()))
	e.EvaluateAt(time.UnixMilli(1000))
	snap := e.Snapshot()
	if snap.Rules[0].Rule.Name != "mmm-hot" || snap.Rules[0].State != StateFiring {
		t.Fatalf("firing rule not first: %+v", snap.Rules)
	}
	if snap.Rules[1].State != StateNoData || snap.Rules[2].State != StateInactive {
		t.Fatalf("order = %+v", snap.Rules)
	}
}

func TestDurationMarshalRoundTrip(t *testing.T) {
	d := Duration(90 * time.Second)
	raw, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Duration
	if err := back.UnmarshalJSON(raw); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip %s != %s", time.Duration(back), time.Duration(d))
	}
}

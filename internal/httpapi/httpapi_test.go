package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestErrorEnvelopeShape(t *testing.T) {
	rec := httptest.NewRecorder()
	Errorf(rec, http.StatusTooManyRequests, CodeQueueFull, "tenant %s queue at capacity", "t3")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("envelope not JSON: %v\n%s", err, rec.Body.String())
	}
	if env.Error.Code != CodeQueueFull || !strings.Contains(env.Error.Message, "t3") {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestMethodsGuard(t *testing.T) {
	h := Methods(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(200)
	}, http.MethodGet)

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodPost, "/api/v1/quality", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST on GET-only = %d", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != "GET" {
		t.Fatalf("Allow = %q", allow)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != CodeMethodNotAllowed {
		t.Fatalf("envelope = %s (err %v)", rec.Body.String(), err)
	}

	// HEAD rides a GET-only handler (net/http strips the body).
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodHead, "/api/v1/quality", nil))
	if rec.Code != 200 {
		t.Fatalf("HEAD on GET-only = %d", rec.Code)
	}
}

func TestAliasStampsDeprecation(t *testing.T) {
	h := Alias("/api/v1/quality", func(w http.ResponseWriter, _ *http.Request) {
		WriteJSON(w, map[string]any{"f1": 0.9})
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/quality", nil))
	if rec.Header().Get(DeprecationHeader) != "true" {
		t.Fatalf("missing Deprecation header: %v", rec.Header())
	}
	if link := rec.Header().Get("Link"); !strings.Contains(link, "/api/v1/quality") ||
		!strings.Contains(link, "successor-version") {
		t.Fatalf("Link = %q", link)
	}

	// Body must be identical to the successor's.
	direct := httptest.NewRecorder()
	WriteJSON(direct, map[string]any{"f1": 0.9})
	if rec.Body.String() != direct.Body.String() {
		t.Fatalf("alias body differs:\n%s\nvs\n%s", rec.Body.String(), direct.Body.String())
	}
}

// Package httpapi is the shared contract of the versioned HTTP API:
// every JSON endpoint — the telemetry server's /api/v1 surface and the
// ingest service's fleet endpoints — renders success bodies and error
// envelopes through these helpers, so clients see one wire format no
// matter which subsystem answered.
//
// The error envelope is stable across all handlers and versions:
//
//	{"error": {"code": "queue_full", "message": "tenant t3 queue at capacity"}}
//
// with the HTTP status carrying the transport semantics (400 bad
// request, 404 not found, 405 method not allowed, 429 backpressure,
// 503 not ready) and the code field a stable machine-readable reason
// within that status.
//
// Legacy pre-v1 paths stay routable through Alias, which serves the
// identical body while stamping a `Deprecation` header and an RFC 8288
// successor-version Link so fleets can find stragglers in access logs
// before the old paths are removed.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Stable machine-readable error codes used across the /api/v1 surface.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeQueueFull        = "queue_full"
	CodeTenantLimit      = "tenant_limit"
	CodeUnavailable      = "unavailable"
)

// ErrorDetail is the inner error object of the envelope.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the single JSON error shape every API handler emits.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// Error writes the JSON error envelope with the given status. code
// should be one of the Code* constants (or a new stable identifier);
// message is human-readable detail.
func Error(w http.ResponseWriter, status int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ErrorEnvelope{Error: ErrorDetail{Code: code, Message: message}})
}

// Errorf is Error with a formatted message.
func Errorf(w http.ResponseWriter, status int, code, format string, args ...any) {
	Error(w, status, code, fmt.Sprintf(format, args...))
}

// WriteJSON renders v as the indented JSON success body every endpoint
// of the API uses, so responses are byte-stable for a given value.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Methods guards a handler's verb set: requests with any other method
// get the 405 envelope plus the Allow header the RFC requires.
func Methods(h http.HandlerFunc, methods ...string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for _, m := range methods {
			if r.Method == m || (m == http.MethodGet && r.Method == http.MethodHead) {
				h(w, r)
				return
			}
		}
		w.Header().Set("Allow", strings.Join(methods, ", "))
		Errorf(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"method %s not allowed on %s (allow: %s)",
			r.Method, r.URL.Path, strings.Join(methods, ", "))
	}
}

// DeprecationHeader is the header stamped on legacy alias paths. The
// literal "true" form follows the IETF deprecation-header draft for
// deprecations without a scheduled date.
const DeprecationHeader = "Deprecation"

// Alias serves a legacy path from its successor's handler, byte-for-byte
// identically, while marking the response deprecated: the Deprecation
// header plus a Link pointing clients at the /api/v1 successor.
func Alias(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(DeprecationHeader, "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// NotFound writes the 404 envelope for an unknown API path.
func NotFound(w http.ResponseWriter, r *http.Request) {
	Errorf(w, http.StatusNotFound, CodeNotFound, "no such endpoint: %s", r.URL.Path)
}

package ingest

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/infer"
	"repro/internal/ml/mltest"
	"repro/internal/ml/tree"
	"repro/internal/obs"
)

// TestQuantizedIngest deploys an int8 fixed-point program behind the
// ingest shards end to end: windows classify through the quantized
// kernel, the stats surface reports the precision, and ProgramSpec
// exposes the introspection record /api/v1/models serves.
func TestQuantizedIngest(t *testing.T) {
	x, y := mltest.TwoBlobs(3, 400)
	j := tree.NewJ48()
	j.MinLeaf = 20
	j.MaxDepth = 8
	if err := j.Train(x, y, 2); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Classifier:  j,
		Events:      []string{"e0", "e1"},
		Registry:    obs.NewRegistry(),
		Bus:         obs.NewBus(),
		Precision:   infer.Int8,
		Calibration: x,
		Shards:      2,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := s.ProgramSpec()
	if !ok || spec.Precision != infer.Int8 || spec.Quantizer != "rank" {
		t.Fatalf("spec = %+v ok=%v", spec, ok)
	}
	if spec.Agreement != 1 {
		t.Fatalf("rank-coded tree agreement %v, want 1", spec.Agreement)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	var wins []Window
	for i := 0; i < 64; i++ {
		lbl := y[i]
		wins = append(wins, Window{Endpoint: "ep", Label: &lbl, Values: x[i]})
	}
	rec := postBatch(t, s.Handler(), "acme", Batch{Windows: wins})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest = %d: %s", rec.Code, rec.Body.String())
	}
	waitDrained(t, s)
	// The quantized tree is exact, so every window classifies as the
	// float64 model would.
	st := s.Stats()
	if st.WindowsProcessed != 64 || st.Precision != "int8" || st.Program == "" {
		t.Fatalf("stats = %+v", st)
	}
	req := httptest.NewRequest(http.MethodGet, "/api/v1/ingest", nil)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	var body map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["precision"] != "int8" {
		t.Fatalf("stats JSON precision = %v", body["precision"])
	}
}

// TestQuantizedIngestErrors pins the no-fallback contract: a quantized
// precision on a classifier without a compiled kernel (or without
// calibration for a MAC kernel) fails construction instead of silently
// deploying float64.
func TestQuantizedIngestErrors(t *testing.T) {
	cfg := testConfig(t, func(c *Config) { c.Precision = infer.Int8 })
	if _, err := New(cfg); err == nil ||
		!strings.Contains(err.Error(), "int8") {
		t.Fatalf("uncompilable quantized New err = %v", err)
	}
}

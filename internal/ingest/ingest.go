// Package ingest is the fleet-scale front half of the detection
// service: it accepts batches of HPC sampling windows from many remote
// endpoints over HTTP (`POST /api/v1/ingest`), queues them per tenant,
// and classifies them on sharded detection pipelines built on
// internal/parallel — the ingest/detect split that turns the single-host
// replay daemon into a service shape that can absorb traffic from a
// simulated fleet.
//
// Architecture:
//
//	HTTP ingest ──▶ per-tenant bounded queue ──▶ shard worker ──▶ verdicts
//	                  (429 + Retry-After, or          │
//	                   drop-oldest, when full)        ├─ compiled infer program
//	                                                  ├─ per-endpoint alarm smoothing
//	                                                  ├─ per-tenant quality scoreboard
//	                                                  └─ per-tenant drift detection
//
// Every tenant is pinned to exactly one shard (FNV hash), so its windows
// are classified in arrival order by a single goroutine: all per-tenant
// state is single-writer, and because the scoreboard and drift detector
// accumulate commutative counts rotated every RotateEvery windows, the
// per-tenant quality snapshots are byte-identical at any shard count —
// the same determinism contract the rest of the pipeline keeps.
//
// Backpressure is explicit, not implicit: a full tenant queue rejects
// the batch with a QueueFullError (the HTTP layer turns it into
// 429 + Retry-After) unless the tenant opted into drop-oldest, in which
// case the oldest queued windows are evicted and counted. The ingest
// path never blocks a producer on a slow consumer.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/infer"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/parallel"
	"repro/internal/quality"
)

// EventAlarm is published on the bus when a tenant endpoint's smoothed
// verdict stream crosses the alarm threshold (rising edge only):
// Sample is the endpoint id, Class the tenant id, Value the window score.
const EventAlarm = "ingest_alarm"

// Registry metric names exported by the service (fleet-level aggregates;
// per-tenant instruments stay on a private registry so the /metrics
// surface does not grow with tenant count).
const (
	BatchesMetric        = "ingest.batches"
	WindowsMetric        = "ingest.windows"
	ProcessedMetric      = "ingest.windows_processed"
	DroppedMetric        = "ingest.windows_dropped"
	RejectedMetric       = "ingest.batches_rejected"
	MalwareMetric        = "ingest.malware_windows"
	AlarmsMetric         = "ingest.alarms"
	TenantsMetric        = "ingest.tenants"
	QueuedMetric         = "ingest.queued"
	VerdictLatencyMetric = "ingest.verdict_latency_seconds"
)

// Window is one HPC sampling window submitted by a fleet endpoint.
type Window struct {
	// Endpoint identifies the submitting host within the tenant; it keys
	// the per-endpoint alarm smoother. Empty windows share one smoother.
	Endpoint string `json:"endpoint,omitempty"`
	// Label is the ground-truth class (0 benign, 1 malware) when the
	// submitter knows it — labeled replay and load generators do — which
	// feeds the tenant's detection scoreboard. Omitted means unlabeled:
	// the window is still classified, drift-checked and smoothed, but
	// cannot score the confusion matrix.
	Label *int `json:"label,omitempty"`
	// Values is the window's HPC feature vector, in the event order the
	// detector was trained on.
	Values []float64 `json:"values"`
}

// Batch is the JSON request body of POST /api/v1/ingest.
type Batch struct {
	// Tenant may carry the tenant id when the X-Tenant-ID header and
	// ?tenant= query parameter are absent.
	Tenant string `json:"tenant,omitempty"`
	// Overflow optionally updates the tenant's queue-overflow policy:
	// "reject" (default, 429 on full) or "drop_oldest".
	Overflow string   `json:"overflow,omitempty"`
	Windows  []Window `json:"windows"`
}

// Overflow policies.
const (
	OverflowReject     = "reject"
	OverflowDropOldest = "drop_oldest"
)

// Config wires a Service.
type Config struct {
	// Classifier is the trained binary detector. Compilable classifiers
	// run their compiled infer program on the hot path; the rest fall
	// back to interpreted Predict.
	Classifier ml.Classifier
	// Events names the HPC features, in training order; its length is the
	// accepted vector dimension.
	Events []string
	// Baseline, when set, arms a per-tenant drift detector against the
	// train-time distribution sketch.
	Baseline *quality.Baseline
	// Shards is the detection pipeline fan-out (default: the process-wide
	// parallel worker bound). Tenants hash onto shards; per-tenant results
	// are identical at any value.
	Shards int
	// QueueCap bounds each tenant's queue in windows (default 16384).
	QueueCap int
	// MaxBatchWindows bounds one request's window count (default 8192).
	MaxBatchWindows int
	// MaxTenants bounds the tenant map (default 1024); excess tenants are
	// rejected with a tenant_limit error.
	MaxTenants int
	// MaxEndpoints bounds the per-tenant alarm-smoother map (default
	// 1024); windows from excess endpoints are classified but not
	// alarm-smoothed.
	MaxEndpoints int
	// RotateEvery is the per-tenant quality/drift epoch length in windows
	// (default 4096): the sliding scoreboard window is 8 rotations.
	RotateEvery int
	// SmootherWindow and SmootherThreshold configure the per-endpoint
	// majority-vote alarm smoother (defaults 8 and 0.5).
	SmootherWindow    int
	SmootherThreshold float64
	// Registry receives the fleet-level ingest metrics (default
	// obs.DefaultRegistry).
	Registry *obs.Registry
	// Bus receives ingest_alarm events (default obs.DefaultBus).
	Bus *obs.Bus
	// Tracer, when set, records request-scoped traces across the
	// accept→enqueue→dequeue→infer→quality pipeline: the HTTP layer makes
	// the head-sampling decision per batch and every stage appends spans.
	// nil disables tracing entirely; untraced windows carry only a nil
	// pointer and the hot path stays allocation-free.
	Tracer *obs.ReqTracer
	// Precision selects the detection shards' numeric domain. The zero
	// value (infer.Float64) keeps today's exact compiled path. Int8/Int16
	// deploy fixed-point quantized programs (Calibration required for MAC
	// kernels); a quantized request on a classifier with no compiled
	// kernel is an error — there is no interpreted fixed-point fallback.
	Precision infer.Precision
	// Calibration supplies the rows (typically the training set) that
	// place the quantized input grid. Ignored at Float64.
	Calibration [][]float64
}

func (c *Config) fillDefaults() error {
	if c.Classifier == nil {
		return fmt.Errorf("ingest: nil classifier")
	}
	if len(c.Events) == 0 {
		return fmt.Errorf("ingest: no feature events configured")
	}
	if c.Shards <= 0 {
		c.Shards = parallel.DefaultWorkers()
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 16384
	}
	if c.MaxBatchWindows <= 0 {
		c.MaxBatchWindows = 8192
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	if c.MaxEndpoints <= 0 {
		c.MaxEndpoints = 1024
	}
	if c.RotateEvery <= 0 {
		c.RotateEvery = 4096
	}
	if c.SmootherWindow <= 0 {
		c.SmootherWindow = 8
	}
	if c.SmootherThreshold <= 0 || c.SmootherThreshold > 1 {
		c.SmootherThreshold = 0.5
	}
	if c.Registry == nil {
		c.Registry = obs.DefaultRegistry
	}
	if c.Bus == nil {
		c.Bus = obs.DefaultBus
	}
	return nil
}

// QueueFullError reports rejected backpressure: the tenant's queue could
// not take the batch. The HTTP layer renders it as 429 + Retry-After.
type QueueFullError struct {
	Tenant     string
	Queued     int
	Cap        int
	RetryAfter time.Duration
}

// Error implements error.
func (e *QueueFullError) Error() string {
	return fmt.Sprintf("ingest: tenant %s queue full (%d/%d windows), retry after %s",
		e.Tenant, e.Queued, e.Cap, e.RetryAfter)
}

// TenantLimitError reports that the tenant map is at capacity.
type TenantLimitError struct{ Limit int }

// Error implements error.
func (e *TenantLimitError) Error() string {
	return fmt.Sprintf("ingest: tenant limit reached (%d)", e.Limit)
}

// ErrStopped is returned by Enqueue after the service's context ended.
var ErrStopped = errors.New("ingest: service stopped")

// queuedWindow is one window in a tenant queue, stamped with its arrival
// time so the verdict latency histogram measures ingest-to-verdict.
type queuedWindow struct {
	endpoint   string
	label      int8 // -1 = unlabeled
	enqueuedNS int64
	values     []float64
	// trace is the request trace every window of a sampled batch shares
	// (nil for the vast unsampled majority: carrying the pointer costs
	// the hot path nothing).
	trace *obs.ActiveTrace
}

// endpointState is one endpoint's alarm smoother (owned by the tenant's
// shard worker; never touched concurrently).
type endpointState struct {
	sm      online.Smoother
	alarmed bool
}

// tenant is one tenant's pipeline: a bounded queue filled by the HTTP
// layer and drained by exactly one shard worker.
type tenant struct {
	id    string
	shard *shard

	mu         sync.Mutex
	queue      []queuedWindow // ring buffer, len == cap == QueueCap
	head, n    int
	dropOldest bool

	// Detection state, owned by the shard worker.
	board       *quality.Scoreboard
	drift       *quality.DriftDetector
	endpoints   map[string]*endpointState
	sinceRotate int

	// Stats, written by both sides; atomics so summaries never race.
	windowsIngested  atomic.Int64
	windowsProcessed atomic.Int64
	windowsDropped   atomic.Int64
	batchesRejected  atomic.Int64
	malwareWindows   atomic.Int64
	alarms           atomic.Int64
	endpointCount    atomic.Int64
}

// shard is one detection worker's work source: the set of tenants
// hashed onto it plus a wake-up channel.
type shard struct {
	notify  chan struct{}
	mu      sync.Mutex
	tenants []*tenant
}

func (sh *shard) wake() {
	select {
	case sh.notify <- struct{}{}:
	default:
	}
}

func (sh *shard) tenantList() []*tenant {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.tenants
}

// Service is the fleet ingest/detect service.
type Service struct {
	cfg  Config
	prog *infer.Program // nil = interpreted fallback
	dim  int

	mu      sync.RWMutex
	tenants map[string]*tenant
	shards  []*shard

	ctx     context.Context
	started atomic.Bool
	startNS atomic.Int64

	// Per-tenant quality/drift instruments export their gauges into this
	// private registry (and drift events into the private bus) so the
	// fleet-level /metrics surface stays O(1) in tenant count.
	tenantReg *obs.Registry
	tenantBus *obs.Bus

	mBatches, mWindows, mProcessed *obs.Counter
	mDropped, mRejected            *obs.Counter
	mMalware, mAlarms              *obs.Counter
	gTenants, gQueued              *obs.Gauge
	hLatency                       *obs.Histogram
	batchesTotal, processedTotal   atomic.Int64
	windowsTotal, droppedTotal     atomic.Int64
	rejectedTotal                  atomic.Int64
	malwareTotal, alarmsTotal      atomic.Int64
	queuedTotal                    atomic.Int64
}

// New builds a service over a trained classifier, compiling it when the
// classifier has a compiled kernel (the hot path the fleet rides).
func New(cfg Config) (*Service, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	s := &Service{
		cfg:       cfg,
		dim:       len(cfg.Events),
		tenants:   make(map[string]*tenant),
		tenantReg: obs.NewRegistry(),
		tenantBus: obs.NewBus(),
	}
	if cfg.Precision != infer.Float64 {
		// Quantized deployment is explicit: no interpreted fallback, and
		// compile failures (no kernel, no calibration, capacity) surface.
		prog, err := infer.Compile(cfg.Classifier,
			infer.WithPrecision(cfg.Precision), infer.WithCalibration(cfg.Calibration))
		if err != nil {
			return nil, fmt.Errorf("ingest: compiling %s at %s: %w",
				cfg.Classifier.Name(), cfg.Precision, err)
		}
		s.prog = prog
	} else {
		prog, err := infer.Compile(cfg.Classifier)
		switch {
		case err == nil:
			s.prog = prog
		case errors.Is(err, infer.ErrNotCompilable):
			// Interpreted fallback.
		default:
			return nil, fmt.Errorf("ingest: compiling %s: %w", cfg.Classifier.Name(), err)
		}
	}
	if s.prog != nil && s.prog.Dim() != s.dim {
		return nil, fmt.Errorf("ingest: classifier dim %d != %d events",
			s.prog.Dim(), s.dim)
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shard{notify: make(chan struct{}, 1)})
	}
	r := cfg.Registry
	s.mBatches = r.Counter(BatchesMetric)
	s.mWindows = r.Counter(WindowsMetric)
	s.mProcessed = r.Counter(ProcessedMetric)
	s.mDropped = r.Counter(DroppedMetric)
	s.mRejected = r.Counter(RejectedMetric)
	s.mMalware = r.Counter(MalwareMetric)
	s.mAlarms = r.Counter(AlarmsMetric)
	s.gTenants = r.Gauge(TenantsMetric)
	s.gQueued = r.Gauge(QueuedMetric)
	s.hLatency = r.Histogram(VerdictLatencyMetric, obs.TimeBuckets)
	return s, nil
}

// Tracer returns the request tracer the service records into (nil when
// tracing is disabled).
func (s *Service) Tracer() *obs.ReqTracer { return s.cfg.Tracer }

// Program reports the compiled program's name (empty when interpreted).
func (s *Service) Program() string {
	if s.prog == nil {
		return ""
	}
	return s.prog.Name()
}

// ProgramSpec returns the deployed program's introspection record
// (precision, widths, scale table, agreement). ok is false on the
// interpreted fallback, which has no compiled spec.
func (s *Service) ProgramSpec() (spec infer.ProgramSpec, ok bool) {
	if s.prog == nil {
		return infer.ProgramSpec{}, false
	}
	return s.prog.Spec(), true
}

// Start launches the shard workers on the parallel engine and returns
// immediately; they drain tenant queues until ctx ends. Enqueue before
// Start queues windows that the workers pick up once running.
func (s *Service) Start(ctx context.Context) {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	s.ctx = ctx
	s.startNS.Store(time.Now().UnixNano())
	go parallel.ForEach(
		parallel.Options{Name: "ingest.shards", Workers: len(s.shards), Context: ctx},
		len(s.shards), func(i int) error {
			s.runShard(ctx, i)
			return nil
		})
	obs.Log().Info("ingest service started",
		"shards", len(s.shards), "queue_cap", s.cfg.QueueCap,
		"program", s.Program())
}

// Running reports whether Start has been called and the context is live.
func (s *Service) Running() bool {
	if s == nil || !s.started.Load() {
		return false
	}
	return s.ctx.Err() == nil
}

// shardFor pins a tenant id onto a shard.
func (s *Service) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// getTenant returns (creating on first sight) the tenant's pipeline.
func (s *Service) getTenant(id string) (*tenant, error) {
	s.mu.RLock()
	t := s.tenants[id]
	s.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t = s.tenants[id]; t != nil {
		return t, nil
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		return nil, &TenantLimitError{Limit: s.cfg.MaxTenants}
	}
	t = &tenant{
		id:        id,
		shard:     s.shardFor(id),
		queue:     make([]queuedWindow, s.cfg.QueueCap),
		board:     quality.NewScoreboard(quality.Config{Registry: s.tenantReg}),
		endpoints: make(map[string]*endpointState),
	}
	if s.cfg.Baseline != nil {
		d, err := quality.NewDriftDetector(s.cfg.Baseline,
			quality.DriftConfig{Registry: s.tenantReg, Bus: s.tenantBus})
		if err != nil {
			return nil, fmt.Errorf("ingest: tenant %s drift detector: %w", id, err)
		}
		t.drift = d
	}
	s.tenants[id] = t
	t.shard.mu.Lock()
	t.shard.tenants = append(t.shard.tenants, t)
	t.shard.mu.Unlock()
	s.gTenants.Set(float64(len(s.tenants)))
	return t, nil
}

// Accepted is Enqueue's receipt: how much of the batch was queued, what
// drop-oldest eviction cost, and the queue depth afterwards.
type Accepted struct {
	Tenant   string `json:"tenant"`
	Accepted int    `json:"accepted"`
	Dropped  int    `json:"dropped"`
	Queued   int    `json:"queued"`
	// TraceID echoes the request trace id when the batch was sampled, so
	// clients can join their observed latency on /api/v1/traces/{id}.
	TraceID string `json:"trace_id,omitempty"`
}

// Enqueue validates nothing (the HTTP layer does) and queues ws on the
// tenant's pipeline under its overflow policy. overflow "" keeps the
// tenant's current policy. It returns a *QueueFullError when the tenant
// queue cannot take the batch under the reject policy, a
// *TenantLimitError for one tenant too many, or ErrStopped after the
// service's context ended.
func (s *Service) Enqueue(tenantID, overflow string, ws []Window) (Accepted, error) {
	return s.EnqueueTraced(tenantID, overflow, ws, nil)
}

// EnqueueTraced is Enqueue carrying the batch's request trace: every
// queued window is stamped with at so the drain side can close the
// dequeue/infer/quality spans, and the trace's pending count grows by the
// accepted window count before any of them becomes visible to a shard.
// at == nil (the unsampled fast path) behaves exactly like Enqueue.
func (s *Service) EnqueueTraced(tenantID, overflow string, ws []Window, at *obs.ActiveTrace) (Accepted, error) {
	if s.started.Load() && s.ctx.Err() != nil {
		return Accepted{}, ErrStopped
	}
	t, err := s.getTenant(tenantID)
	if err != nil {
		if _, ok := err.(*TenantLimitError); ok {
			s.mRejected.Inc()
			s.rejectedTotal.Add(1)
		}
		return Accepted{}, err
	}
	now := time.Now().UnixNano()
	capN := s.cfg.QueueCap

	t.mu.Lock()
	switch overflow {
	case OverflowDropOldest:
		t.dropOldest = true
	case OverflowReject:
		t.dropOldest = false
	}
	res := Accepted{Tenant: tenantID}
	incoming := ws
	// A single batch larger than the whole queue keeps only its newest
	// windows under drop-oldest (the queue is a window into the present).
	if len(incoming) > capN {
		if !t.dropOldest {
			queued := t.n
			t.mu.Unlock()
			t.batchesRejected.Add(1)
			s.mRejected.Inc()
			s.rejectedTotal.Add(1)
			return Accepted{}, &QueueFullError{Tenant: tenantID, Queued: queued,
				Cap: capN, RetryAfter: s.retryAfter(queued)}
		}
		res.Dropped += len(incoming) - capN
		incoming = incoming[len(incoming)-capN:]
	}
	if t.n+len(incoming) > capN {
		if !t.dropOldest {
			queued := t.n
			t.mu.Unlock()
			t.batchesRejected.Add(1)
			s.mRejected.Inc()
			s.rejectedTotal.Add(1)
			return Accepted{}, &QueueFullError{Tenant: tenantID, Queued: queued,
				Cap: capN, RetryAfter: s.retryAfter(queued)}
		}
		evict := t.n + len(incoming) - capN
		if s.cfg.Tracer != nil {
			// Evicted windows may belong to in-flight traces; settle their
			// pending counts (and mark the loss) or those traces never
			// commit. Off the untraced path this loop never runs.
			for i := 0; i < evict; i++ {
				if tr := t.queue[(t.head+i)%capN].trace; tr != nil {
					tr.SetError("windows evicted by drop_oldest")
					tr.FinishPending(1, now)
				}
			}
		}
		t.head = (t.head + evict) % capN
		t.n -= evict
		res.Dropped += evict
	}
	// Grow the trace's pending count before any stamped window becomes
	// visible to a shard worker, so the trace cannot commit mid-batch.
	at.AddPending(len(incoming))
	for _, w := range ws[len(ws)-len(incoming):] {
		label := int8(-1)
		if w.Label != nil {
			label = int8(*w.Label)
		}
		t.queue[(t.head+t.n)%capN] = queuedWindow{
			endpoint: w.Endpoint, label: label,
			enqueuedNS: now, values: w.Values, trace: at,
		}
		t.n++
	}
	res.Accepted = len(incoming)
	res.Queued = t.n
	t.mu.Unlock()

	if at != nil {
		at.AddSpan("ingest.enqueue", now, time.Now().UnixNano(),
			obs.ReqAttr{Key: "accepted", Value: float64(res.Accepted)},
			obs.ReqAttr{Key: "dropped", Value: float64(res.Dropped)},
			obs.ReqAttr{Key: "queued", Value: float64(res.Queued)})
	}

	t.windowsIngested.Add(int64(res.Accepted))
	if res.Dropped > 0 {
		t.windowsDropped.Add(int64(res.Dropped))
		s.mDropped.Add(int64(res.Dropped))
		s.droppedTotal.Add(int64(res.Dropped))
	}
	s.mBatches.Inc()
	s.batchesTotal.Add(1)
	s.mWindows.Add(int64(res.Accepted))
	s.windowsTotal.Add(int64(res.Accepted))
	s.gQueued.Set(float64(s.queuedTotal.Add(int64(res.Accepted - res.Dropped))))
	t.shard.wake()
	return res, nil
}

// retryAfter estimates how long a rejected producer should back off:
// the queue backlog divided by the observed fleet-wide drain rate,
// clamped to [1s, 30s].
func (s *Service) retryAfter(queued int) time.Duration {
	rate := s.drainRate()
	if rate <= 0 {
		return time.Second
	}
	d := time.Duration(float64(queued) / rate * float64(time.Second))
	if d < time.Second {
		return time.Second
	}
	if d > 30*time.Second {
		return 30 * time.Second
	}
	return d
}

// drainRate is the observed fleet-wide processing rate in windows/sec
// since Start (0 before any window was processed).
func (s *Service) drainRate() float64 {
	start := s.startNS.Load()
	if start == 0 {
		return 0
	}
	elapsed := float64(time.Now().UnixNano()-start) / float64(time.Second)
	if elapsed <= 0 {
		return 0
	}
	return float64(s.processedTotal.Load()) / elapsed
}

// drainChunk bounds how many windows one tenant surrenders per worker
// turn, so a hot tenant cannot starve its shard siblings.
const drainChunk = 512

// runShard is one detection worker: it drains the queues of every
// tenant pinned to its shard, round-robin, until ctx ends.
func (s *Service) runShard(ctx context.Context, idx int) {
	sh := s.shards[idx]
	scratch := newShardScratch(s, drainChunk)
	scratch.shard = idx
	for {
		worked := true
		for worked {
			worked = false
			for _, t := range sh.tenantList() {
				if n := s.drainTenant(t, scratch); n > 0 {
					worked = true
				}
				if ctx.Err() != nil {
					return
				}
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-sh.notify:
		}
	}
}

// shardScratch is one worker's reusable classification buffers: the
// steady-state hot path allocates nothing per window.
type shardScratch struct {
	ws    []queuedWindow
	X     [][]float64
	dst   []int
	proba [][]float64
	shard int
}

func newShardScratch(s *Service, chunk int) *shardScratch {
	sc := &shardScratch{
		ws:  make([]queuedWindow, 0, chunk),
		X:   make([][]float64, 0, chunk),
		dst: make([]int, chunk),
	}
	if s.prog != nil && s.prog.HasProba() {
		sc.proba = make([][]float64, chunk)
		for i := range sc.proba {
			sc.proba[i] = make([]float64, s.prog.NumClasses())
		}
	}
	return sc
}

// drainTenant claims up to one chunk of the tenant's queue and runs it
// through the detection pipeline in arrival order. Returns how many
// windows it processed.
func (s *Service) drainTenant(t *tenant, sc *shardScratch) int {
	capN := s.cfg.QueueCap
	t.mu.Lock()
	n := t.n
	if n == 0 {
		t.mu.Unlock()
		return 0
	}
	depth := t.n
	if n > drainChunk {
		n = drainChunk
	}
	traced := false
	sc.ws = sc.ws[:0]
	for i := 0; i < n; i++ {
		w := t.queue[(t.head+i)%capN]
		if w.trace != nil {
			traced = true
		}
		sc.ws = append(sc.ws, w)
	}
	t.head = (t.head + n) % capN
	t.n -= n
	t.mu.Unlock()

	// Timestamps for the per-stage spans are taken only when this chunk
	// carries at least one sampled window: the unsampled path adds no
	// clock reads and no branches beyond one nil check per window.
	var dequeueNS int64
	if traced {
		dequeueNS = time.Now().UnixNano()
	}

	sc.X = sc.X[:0]
	for i := range sc.ws {
		sc.X = append(sc.X, sc.ws[i].values)
	}
	dst := sc.dst[:n]
	var probClf ml.ProbClassifier
	if s.prog != nil {
		if err := s.prog.Predict(dst, sc.X); err != nil {
			// A trained program only fails on shape mismatch, which
			// validation excludes; log and drop the chunk rather than spin.
			obs.Log().Error("ingest: compiled predict failed", "err", err)
			if traced {
				endNS := time.Now().UnixNano()
				for i := range sc.ws {
					if tr := sc.ws[i].trace; tr != nil {
						tr.SetError(err.Error())
						tr.FinishPending(1, endNS)
					}
				}
			}
			return n
		}
		if sc.proba != nil {
			s.prog.Proba(sc.proba[:n], sc.X)
		}
	} else {
		for i := range sc.X {
			dst[i] = s.cfg.Classifier.Predict(sc.X[i])
		}
		probClf, _ = s.cfg.Classifier.(ml.ProbClassifier)
	}

	now := time.Now().UnixNano()
	var malware, alarms int64
	for i := range sc.ws {
		w := &sc.ws[i]
		pred := dst[i]
		score := float64(pred)
		if sc.proba != nil {
			score = malwareScore(sc.proba[i], pred)
		} else if probClf != nil {
			if p := probClf.Proba(w.values); len(p) > 0 {
				score = malwareScore(p, pred)
			}
		}
		if pred == 1 {
			malware++
		}
		if w.label >= 0 {
			t.board.Observe(int(w.label), pred, score)
		}
		if t.drift != nil {
			t.drift.Observe(w.values)
		}
		if es := t.endpoint(w.endpoint, s.cfg); es != nil {
			raised := es.sm.Observe(pred)
			if raised && !es.alarmed {
				alarms++
				// Tail rule: a trace whose window tripped the online alarm
				// is pinned against ring eviction (nil-safe no-op when the
				// window is untraced).
				w.trace.Keep("alarm")
				s.cfg.Bus.Publish(obs.Event{Type: EventAlarm,
					Sample: w.endpoint, Class: t.id, Value: score})
			}
			es.alarmed = raised
		}
		t.sinceRotate++
		if t.sinceRotate >= s.cfg.RotateEvery {
			t.board.Advance()
			if t.drift != nil {
				t.drift.Advance()
			}
			t.sinceRotate = 0
		}
		lat := float64(now-w.enqueuedNS) / float64(time.Second)
		if w.trace != nil {
			s.hLatency.ObserveExemplar(lat, w.trace.TraceID(), now/1e6)
		} else {
			s.hLatency.Observe(lat)
		}
	}
	if traced {
		s.emitDrainSpans(sc, n, depth, dequeueNS, now)
	}
	t.windowsProcessed.Add(int64(n))
	s.mProcessed.Add(int64(n))
	s.processedTotal.Add(int64(n))
	if malware > 0 {
		t.malwareWindows.Add(malware)
		s.mMalware.Add(malware)
		s.malwareTotal.Add(malware)
	}
	if alarms > 0 {
		t.alarms.Add(alarms)
		s.mAlarms.Add(alarms)
		s.alarmsTotal.Add(alarms)
	}
	s.gQueued.Set(float64(s.queuedTotal.Add(int64(-n))))
	return n
}

// emitDrainSpans closes the drain-side spans for every sampled trace in
// the chunk: one dequeue/infer/quality span triple per trace (windows of
// one batch are consecutive in arrival order, so traces group into runs)
// and the pending-count settlement that commits a trace once its last
// window has a verdict. Only called for chunks that carry a trace.
func (s *Service) emitDrainSpans(sc *shardScratch, n, depth int, dequeueNS, inferEndNS int64) {
	qEndNS := time.Now().UnixNano()
	var at *obs.ActiveTrace
	count := 0
	firstEnq := int64(0)
	flush := func() {
		if at == nil || count == 0 {
			return
		}
		at.AddSpan("ingest.dequeue", firstEnq, dequeueNS,
			obs.ReqAttr{Key: "queue_depth", Value: float64(depth)},
			obs.ReqAttr{Key: "shard", Value: float64(sc.shard)})
		at.AddSpan("ingest.infer", dequeueNS, inferEndNS,
			obs.ReqAttr{Key: "batch", Value: float64(n)},
			obs.ReqAttr{Key: "shard", Value: float64(sc.shard)})
		at.AddSpan("ingest.quality", inferEndNS, qEndNS,
			obs.ReqAttr{Key: "windows", Value: float64(count)})
		at.FinishPending(count, qEndNS)
	}
	for i := 0; i < n; i++ {
		w := &sc.ws[i]
		if w.trace != at {
			flush()
			at, count, firstEnq = w.trace, 0, w.enqueuedNS
		}
		if w.trace != nil {
			count++
		}
	}
	flush()
}

// endpoint returns the window's alarm-smoother state, creating it up to
// the per-tenant cap (nil beyond it: the window is classified and
// scored, just not alarm-smoothed).
func (t *tenant) endpoint(id string, cfg Config) *endpointState {
	if es, ok := t.endpoints[id]; ok {
		return es
	}
	if len(t.endpoints) >= cfg.MaxEndpoints {
		return nil
	}
	es := &endpointState{sm: &online.MajorityVoter{
		Window: cfg.SmootherWindow, Threshold: cfg.SmootherThreshold}}
	es.sm.Reset()
	t.endpoints[id] = es
	t.endpointCount.Store(int64(len(t.endpoints)))
	return es
}

// malwareScore reduces a probability vector to the scoreboard's score:
// the malware-class probability for the binary detector.
func malwareScore(p []float64, pred int) float64 {
	if len(p) == 2 {
		return p[1]
	}
	if pred >= 0 && pred < len(p) {
		return p[pred]
	}
	return float64(pred)
}

// TenantSummary is one tenant's row of GET /api/v1/tenants.
type TenantSummary struct {
	ID               string `json:"id"`
	Queued           int    `json:"queued"`
	QueueCap         int    `json:"queue_cap"`
	Overflow         string `json:"overflow"`
	Endpoints        int64  `json:"endpoints"`
	WindowsIngested  int64  `json:"windows_ingested"`
	WindowsProcessed int64  `json:"windows_processed"`
	WindowsDropped   int64  `json:"windows_dropped"`
	BatchesRejected  int64  `json:"batches_rejected"`
	MalwareWindows   int64  `json:"malware_windows"`
	Alarms           int64  `json:"alarms"`
}

func (t *tenant) summary(capN int) TenantSummary {
	t.mu.Lock()
	queued := t.n
	overflow := OverflowReject
	if t.dropOldest {
		overflow = OverflowDropOldest
	}
	t.mu.Unlock()
	return TenantSummary{
		ID: t.id, Queued: queued, QueueCap: capN, Overflow: overflow,
		Endpoints:        t.endpointCount.Load(),
		WindowsIngested:  t.windowsIngested.Load(),
		WindowsProcessed: t.windowsProcessed.Load(),
		WindowsDropped:   t.windowsDropped.Load(),
		BatchesRejected:  t.batchesRejected.Load(),
		MalwareWindows:   t.malwareWindows.Load(),
		Alarms:           t.alarms.Load(),
	}
}

// Tenants lists every tenant summary, sorted by id.
func (s *Service) Tenants() []TenantSummary {
	s.mu.RLock()
	list := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		list = append(list, t)
	}
	s.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	out := make([]TenantSummary, 0, len(list))
	for _, t := range list {
		out = append(out, t.summary(s.cfg.QueueCap))
	}
	return out
}

// lookupTenant returns the tenant or nil.
func (s *Service) lookupTenant(id string) *tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tenants[id]
}

// TenantQuality returns the tenant's detection scoreboard snapshot
// (false when the tenant is unknown). Snapshots are byte-identical at
// any shard count for the same per-tenant window stream.
func (s *Service) TenantQuality(id string) (quality.QualitySnapshot, bool) {
	t := s.lookupTenant(id)
	if t == nil {
		return quality.QualitySnapshot{}, false
	}
	return t.board.Snapshot(), true
}

// TenantDrift returns the tenant's drift snapshot. ok is false for an
// unknown tenant; armed is false when the service has no baseline.
func (s *Service) TenantDrift(id string) (snap quality.DriftSnapshot, ok, armed bool) {
	t := s.lookupTenant(id)
	if t == nil {
		return quality.DriftSnapshot{}, false, s.cfg.Baseline != nil
	}
	if t.drift == nil {
		return quality.DriftSnapshot{}, true, false
	}
	return t.drift.Snapshot(), true, true
}

// Stats is the service-wide roll-up served by GET /api/v1/ingest: the
// load-test harness reads sustained windows/sec and ingest-to-verdict
// latency percentiles from here.
type Stats struct {
	Started          bool    `json:"started"`
	Program          string  `json:"program,omitempty"`
	Precision        string  `json:"precision,omitempty"`
	Shards           int     `json:"shards"`
	QueueCap         int     `json:"queue_cap"`
	Tenants          int     `json:"tenants"`
	Queued           int64   `json:"queued"`
	BatchesIngested  int64   `json:"batches_ingested"`
	WindowsIngested  int64   `json:"windows_ingested"`
	WindowsProcessed int64   `json:"windows_processed"`
	WindowsDropped   int64   `json:"windows_dropped"`
	BatchesRejected  int64   `json:"batches_rejected"`
	MalwareWindows   int64   `json:"malware_windows"`
	Alarms           int64   `json:"alarms"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
	// WindowsPerSec is the sustained processing rate since Start.
	WindowsPerSec float64 `json:"windows_per_sec"`
	// Verdict latency percentiles (ingest to classified), milliseconds.
	VerdictLatencyP50MS float64 `json:"verdict_latency_p50_ms"`
	VerdictLatencyP99MS float64 `json:"verdict_latency_p99_ms"`
}

// Stats freezes the service-wide counters.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	tenants := len(s.tenants)
	s.mu.RUnlock()
	st := Stats{
		Started:          s.started.Load(),
		Program:          s.Program(),
		Shards:           len(s.shards),
		QueueCap:         s.cfg.QueueCap,
		Tenants:          tenants,
		Queued:           s.queuedTotal.Load(),
		BatchesIngested:  s.batchesTotal.Load(),
		WindowsIngested:  s.windowsTotal.Load(),
		WindowsProcessed: s.processedTotal.Load(),
		WindowsDropped:   s.droppedTotal.Load(),
		BatchesRejected:  s.rejectedTotal.Load(),
		MalwareWindows:   s.malwareTotal.Load(),
		Alarms:           s.alarmsTotal.Load(),
	}
	if spec, ok := s.ProgramSpec(); ok {
		st.Precision = spec.Precision.String()
	}
	if start := s.startNS.Load(); start > 0 {
		st.UptimeSeconds = float64(time.Now().UnixNano()-start) / float64(time.Second)
		if st.UptimeSeconds > 0 {
			st.WindowsPerSec = float64(st.WindowsProcessed) / st.UptimeSeconds
		}
	}
	h := s.cfg.Registry.Snapshot().Histograms[VerdictLatencyMetric]
	if p := h.Quantile(0.50); !math.IsNaN(p) {
		st.VerdictLatencyP50MS = p * 1000
	}
	if p := h.Quantile(0.99); !math.IsNaN(p) {
		st.VerdictLatencyP99MS = p * 1000
	}
	return st
}

// Drained reports whether every queued window has been processed —
// the load harness and tests poll it to quiesce before reading quality.
func (s *Service) Drained() bool { return s.queuedTotal.Load() == 0 }

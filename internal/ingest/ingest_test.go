package ingest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/quality"
)

// stubClf is a deterministic uncompilable classifier: malware iff the
// first feature exceeds 0.5. It exercises the interpreted fallback.
type stubClf struct{}

func (stubClf) Name() string                              { return "stub" }
func (stubClf) Train(_ [][]float64, _ []int, _ int) error { return nil }
func (stubClf) Predict(f []float64) int {
	if f[0] > 0.5 {
		return 1
	}
	return 0
}

func testConfig(t *testing.T, mut func(*Config)) Config {
	t.Helper()
	cfg := Config{
		Classifier: stubClf{},
		Events:     []string{"e0", "e1", "e2", "e3"},
		Registry:   obs.NewRegistry(),
		Bus:        obs.NewBus(),
	}
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

// win builds a labeled window whose first feature encodes the class.
func win(endpoint string, label int) Window {
	v := 0.1
	if label == 1 {
		v = 0.9
	}
	return Window{
		Endpoint: endpoint,
		Label:    &label,
		Values:   []float64{v, 0.2, 0.3, 0.4},
	}
}

// waitDrained spins until every queued window has been classified.
func waitDrained(t *testing.T, s *Service) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !s.Drained() {
		if time.Now().After(deadline) {
			t.Fatalf("service did not drain; stats=%+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func postBatch(t *testing.T, h http.Handler, tenant string, b Batch) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeErr(t *testing.T, rec *httptest.ResponseRecorder) httpapi.ErrorEnvelope {
	t.Helper()
	var env httpapi.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("error body not an envelope: %v\n%s", err, rec.Body.String())
	}
	return env
}

// TestBackpressureE2E fills a tenant queue before the workers run,
// asserts the 429 + Retry-After rejection, then starts the pipeline,
// drains, and asserts the tenant recovers to accepting batches.
func TestBackpressureE2E(t *testing.T) {
	s, err := New(testConfig(t, func(c *Config) {
		c.QueueCap = 64
		c.Shards = 2
	}))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Fill the queue exactly (workers are not running yet).
	batch := Batch{}
	for i := 0; i < 64; i++ {
		batch.Windows = append(batch.Windows, win("ep0", i%2))
	}
	if rec := postBatch(t, h, "acme", batch); rec.Code != http.StatusAccepted {
		t.Fatalf("fill: status %d: %s", rec.Code, rec.Body.String())
	}

	// One more window must bounce with 429 + Retry-After + queue_full.
	rec := postBatch(t, h, "acme", Batch{Windows: []Window{win("ep0", 0)}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overfill: status %d: %s", rec.Code, rec.Body.String())
	}
	ra := rec.Header().Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q", ra)
	}
	if env := decodeErr(t, rec); env.Error.Code != httpapi.CodeQueueFull {
		t.Fatalf("code = %q", env.Error.Code)
	}

	// Start the pipeline, drain, and the tenant accepts again.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	waitDrained(t, s)
	if rec := postBatch(t, h, "acme", Batch{Windows: []Window{win("ep0", 1)}}); rec.Code != http.StatusAccepted {
		t.Fatalf("recovery: status %d: %s", rec.Code, rec.Body.String())
	}
	waitDrained(t, s)

	st := s.Stats()
	if st.WindowsProcessed != 65 || st.BatchesRejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDropOldestPolicy opts a tenant into drop-oldest and asserts
// overflow evicts rather than rejects, reporting the eviction count.
func TestDropOldestPolicy(t *testing.T) {
	s, err := New(testConfig(t, func(c *Config) { c.QueueCap = 8 }))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	first := Batch{Overflow: OverflowDropOldest}
	for i := 0; i < 8; i++ {
		first.Windows = append(first.Windows, win("ep", 0))
	}
	if rec := postBatch(t, h, "t1", first); rec.Code != http.StatusAccepted {
		t.Fatalf("fill: %d %s", rec.Code, rec.Body.String())
	}
	rec := postBatch(t, h, "t1", Batch{Windows: []Window{win("ep", 1), win("ep", 1)}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("drop-oldest overflow: %d %s", rec.Code, rec.Body.String())
	}
	var res Accepted
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 2 || res.Dropped != 2 || res.Queued != 8 {
		t.Fatalf("receipt = %+v", res)
	}
}

// TestIngestValidation is the table-driven schema-conformance test for
// POST /api/v1/ingest: every rejection is a 400 with the stable
// envelope, never a plain-text error.
func TestIngestValidation(t *testing.T) {
	s, err := New(testConfig(t, func(c *Config) { c.MaxBatchWindows = 4 }))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	lbl2 := 2

	cases := []struct {
		name    string
		tenant  string
		query   string
		ct      string
		body    string
		status  int
		code    string
		msgPart string
	}{
		{name: "no tenant", body: `{"windows":[{"values":[1,2,3,4]}]}`,
			status: 400, code: httpapi.CodeBadRequest, msgPart: "tenant"},
		{name: "bad tenant charset", tenant: "bad tenant!",
			body:   `{"windows":[{"values":[1,2,3,4]}]}`,
			status: 400, code: httpapi.CodeBadRequest, msgPart: "tenant"},
		{name: "header/query conflict", tenant: "a", query: "?tenant=b",
			body:   `{"windows":[{"values":[1,2,3,4]}]}`,
			status: 400, code: httpapi.CodeBadRequest, msgPart: "conflicting"},
		{name: "header/body conflict", tenant: "a",
			body:   `{"tenant":"b","windows":[{"values":[1,2,3,4]}]}`,
			status: 400, code: httpapi.CodeBadRequest, msgPart: "conflicting"},
		{name: "not json", tenant: "t", body: `garbage`,
			status: 400, code: httpapi.CodeBadRequest, msgPart: "decoding"},
		{name: "unknown field", tenant: "t", body: `{"windoze":[]}`,
			status: 400, code: httpapi.CodeBadRequest, msgPart: "decoding"},
		{name: "empty batch", tenant: "t", body: `{"windows":[]}`,
			status: 400, code: httpapi.CodeBadRequest, msgPart: "no windows"},
		{name: "oversize batch", tenant: "t",
			body: func() string {
				b := Batch{}
				for i := 0; i < 5; i++ {
					b.Windows = append(b.Windows, win("e", 0))
				}
				j, _ := json.Marshal(b)
				return string(j)
			}(),
			status: 400, code: httpapi.CodeBadRequest, msgPart: "exceeds"},
		{name: "wrong dim", tenant: "t", body: `{"windows":[{"values":[1,2]}]}`,
			status: 400, code: httpapi.CodeBadRequest, msgPart: "features"},
		{name: "non-finite value", tenant: "t",
			body:   `{"windows":[{"values":[1,2,3,"nan"]}]}`,
			status: 400, code: httpapi.CodeBadRequest},
		{name: "bad label", tenant: "t",
			body: func() string {
				j, _ := json.Marshal(Batch{Windows: []Window{{Label: &lbl2, Values: []float64{1, 2, 3, 4}}}})
				return string(j)
			}(),
			status: 400, code: httpapi.CodeBadRequest, msgPart: "label"},
		{name: "bad overflow", tenant: "t",
			body:   `{"overflow":"spill","windows":[{"values":[1,2,3,4]}]}`,
			status: 400, code: httpapi.CodeBadRequest, msgPart: "overflow"},
		{name: "bad ndjson line", tenant: "t", ct: "application/x-ndjson",
			body:   "{\"values\":[1,2,3,4]}\nnot json\n",
			status: 400, code: httpapi.CodeBadRequest, msgPart: "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest"+tc.query,
				strings.NewReader(tc.body))
			ct := tc.ct
			if ct == "" {
				ct = "application/json"
			}
			req.Header.Set("Content-Type", ct)
			if tc.tenant != "" {
				req.Header.Set(TenantHeader, tc.tenant)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d want %d: %s", rec.Code, tc.status, rec.Body.String())
			}
			env := decodeErr(t, rec)
			if env.Error.Code != tc.code {
				t.Fatalf("code = %q want %q", env.Error.Code, tc.code)
			}
			if tc.msgPart != "" && !strings.Contains(env.Error.Message, tc.msgPart) {
				t.Fatalf("message %q missing %q", env.Error.Message, tc.msgPart)
			}
		})
	}
}

// TestNDJSONIngest streams windows as NDJSON with the tenant in the
// header, the snippet-1 style fleet wire format.
func TestNDJSONIngest(t *testing.T) {
	s, err := New(testConfig(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	var lines strings.Builder
	for i := 0; i < 5; i++ {
		j, _ := json.Marshal(win(fmt.Sprintf("ep%d", i), i%2))
		lines.Write(j)
		lines.WriteByte('\n')
	}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", strings.NewReader(lines.String()))
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set(TenantHeader, "fleet-1")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var res Accepted
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 5 || res.Tenant != "fleet-1" {
		t.Fatalf("receipt = %+v", res)
	}
}

// TestTenantLimit rejects one tenant too many with the tenant_limit
// envelope.
func TestTenantLimit(t *testing.T) {
	s, err := New(testConfig(t, func(c *Config) { c.MaxTenants = 2 }))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	one := Batch{Windows: []Window{win("e", 0)}}
	for _, id := range []string{"t1", "t2"} {
		if rec := postBatch(t, h, id, one); rec.Code != http.StatusAccepted {
			t.Fatalf("%s: %d", id, rec.Code)
		}
	}
	rec := postBatch(t, h, "t3", one)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if env := decodeErr(t, rec); env.Error.Code != httpapi.CodeTenantLimit {
		t.Fatalf("code = %q", env.Error.Code)
	}
}

// TestTenantEndpoints exercises the read side: list, summary, quality,
// drift, and the 404 envelopes for unknown tenants.
func TestTenantEndpoints(t *testing.T) {
	base, err := quality.CaptureBaseline([]string{"e0", "e1", "e2", "e3"},
		[][]float64{{0, 0, 0, 0}, {1, 1, 1, 1}, {0.5, 0.5, 0.5, 0.5}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(testConfig(t, func(c *Config) { c.Baseline = base }))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	if rec := postBatch(t, h, "acme", Batch{Windows: []Window{win("e", 1), win("e", 0)}}); rec.Code != http.StatusAccepted {
		t.Fatalf("ingest: %d", rec.Code)
	}
	waitDrained(t, s)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	rec := get("/api/v1/tenants")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"acme"`) {
		t.Fatalf("tenants list: %d %s", rec.Code, rec.Body.String())
	}
	rec = get("/api/v1/tenants/acme")
	var sum TenantSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil || sum.WindowsProcessed != 2 {
		t.Fatalf("summary: %+v (err %v)", sum, err)
	}
	rec = get("/api/v1/tenants/acme/quality")
	var snap quality.QualitySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("quality: %v\n%s", err, rec.Body.String())
	}
	if snap.Observed != 2 {
		t.Fatalf("quality observed = %d\n%s", snap.Observed, rec.Body.String())
	}
	if rec = get("/api/v1/tenants/acme/drift"); rec.Code != 200 {
		t.Fatalf("drift: %d %s", rec.Code, rec.Body.String())
	}
	for _, path := range []string{"/api/v1/tenants/ghost", "/api/v1/tenants/ghost/quality", "/api/v1/tenants/ghost/drift"} {
		rec = get(path)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("%s: %d", path, rec.Code)
		}
		if env := decodeErr(t, rec); env.Error.Code != httpapi.CodeNotFound {
			t.Fatalf("%s code = %q", path, env.Error.Code)
		}
	}
	// GET stats and a method violation.
	if rec = get("/api/v1/ingest"); rec.Code != 200 {
		t.Fatalf("stats: %d", rec.Code)
	}
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || st.WindowsProcessed != 2 {
		t.Fatalf("stats = %+v (err %v)", st, err)
	}
	recDel := httptest.NewRecorder()
	h.ServeHTTP(recDel, httptest.NewRequest(http.MethodDelete, "/api/v1/tenants", nil))
	if recDel.Code != http.StatusMethodNotAllowed || recDel.Header().Get("Allow") == "" {
		t.Fatalf("DELETE tenants: %d", recDel.Code)
	}
}

// streamBatches replays a fixed multi-tenant window stream into a
// service (optionally under request tracing) and returns each tenant's
// quality JSON after full drain.
func streamBatches(t *testing.T, shards int, rt *obs.ReqTracer) map[string]string {
	t.Helper()
	base, err := quality.CaptureBaseline([]string{"e0", "e1", "e2", "e3"},
		[][]float64{{0, 0, 0, 0}, {1, 1, 1, 1}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(testConfig(t, func(c *Config) {
		c.Shards = shards
		c.Baseline = base
		c.RotateEvery = 16 // exercise epoch rotation inside the stream
		c.Tracer = rt
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	h := s.Handler()

	tenants := []string{"t-a", "t-b", "t-c", "t-d", "t-e"}
	for round := 0; round < 10; round++ {
		for ti, id := range tenants {
			b := Batch{}
			for k := 0; k < 13; k++ {
				// Index-derived labels: deterministic, tenant-skewed.
				lbl := (round + ti + k) % 2
				w := win(fmt.Sprintf("ep%d", k%3), lbl)
				// Mislabel some windows so the confusion matrix is non-trivial.
				if (round+k)%7 == 0 {
					flipped := 1 - lbl
					w.Label = &flipped
				}
				b.Windows = append(b.Windows, w)
			}
			if rec := postBatch(t, h, id, b); rec.Code != http.StatusAccepted {
				t.Fatalf("round %d tenant %s: %d %s", round, id, rec.Code, rec.Body.String())
			}
		}
	}
	waitDrained(t, s)

	out := make(map[string]string, len(tenants))
	for _, id := range tenants {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/tenants/"+id+"/quality", nil))
		if rec.Code != 200 {
			t.Fatalf("quality %s: %d", id, rec.Code)
		}
		out[id] = rec.Body.String()
	}
	return out
}

// TestQualityDeterministicAcrossShards asserts the determinism
// contract at the fleet level: the same per-tenant batch stream yields
// byte-identical /api/v1/tenants/{id}/quality at 1 shard and 8 shards.
func TestQualityDeterministicAcrossShards(t *testing.T) {
	serial := streamBatches(t, 1, nil)
	sharded := streamBatches(t, 8, nil)
	for id, want := range serial {
		if got := sharded[id]; got != want {
			t.Fatalf("tenant %s quality differs between 1 and 8 shards:\n--- 1 shard\n%s\n--- 8 shards\n%s",
				id, want, got)
		}
	}
}

// TestAlarmRisingEdge drives one endpoint all-malware and asserts a
// single ingest_alarm event on the bus (rising edge, not per window).
func TestAlarmRisingEdge(t *testing.T) {
	bus := obs.NewBus()
	sub := bus.Subscribe(64)
	defer sub.Close()
	s, err := New(testConfig(t, func(c *Config) {
		c.Bus = bus
		c.SmootherWindow = 4
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	b := Batch{}
	for i := 0; i < 12; i++ {
		b.Windows = append(b.Windows, win("hot-ep", 1))
	}
	if rec := postBatch(t, s.Handler(), "acme", b); rec.Code != http.StatusAccepted {
		t.Fatalf("ingest: %d", rec.Code)
	}
	waitDrained(t, s)

	deadline := time.After(5 * time.Second)
	for {
		select {
		case e := <-sub.Events():
			if e.Type != EventAlarm {
				continue
			}
			if e.Sample != "hot-ep" || e.Class != "acme" {
				t.Fatalf("alarm event = %+v", e)
			}
		case <-deadline:
			t.Fatal("no ingest_alarm event")
		}
		break
	}
	if st := s.Stats(); st.Alarms != 1 {
		t.Fatalf("alarms = %d, want 1 (rising edge only)", st.Alarms)
	}
}

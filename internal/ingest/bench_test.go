package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/quality"
)

// benchFleet builds a started ingest service around a real trained
// detector (compiled onto the hot path when the classifier supports it)
// plus a replayable pool of labeled windows drawn from the dataset, so
// the benchmarks measure the production ingest→detect pipeline rather
// than a stub.
func benchFleet(b *testing.B, shards int) (*Service, []Window) {
	b.Helper()
	tbl, err := core.GenerateDataset(core.DatasetConfig{Seed: 1, Scale: 0.02})
	if err != nil {
		b.Fatal(err)
	}
	rows := make([][]float64, len(tbl.Instances))
	for i := range tbl.Instances {
		rows[i] = tbl.Instances[i].Features
	}
	labels := tbl.BinaryLabels()
	clf, err := core.NewClassifier("J48", 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := clf.Train(rows, labels, 2); err != nil {
		b.Fatal(err)
	}
	base, err := quality.CaptureBaseline(tbl.Attributes, rows, 16)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := New(Config{
		Classifier: clf,
		Events:     tbl.Attributes,
		Baseline:   base,
		Shards:     shards,
		QueueCap:   1 << 17,
		Registry:   obs.NewRegistry(),
		Bus:        obs.NewBus(),
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	svc.Start(ctx)

	pool := make([]Window, len(rows))
	for i := range rows {
		lbl := labels[i]
		pool[i] = Window{
			Endpoint: fmt.Sprintf("bench-ep-%02d", i%16),
			Label:    &lbl,
			Values:   rows[i],
		}
	}
	return svc, pool
}

// benchEnqueue pushes one batch, absorbing transient backpressure so a
// long -benchtime cannot fail the run: on queue_full it waits the
// advertised Retry-After slice and resends.
func benchEnqueue(b *testing.B, svc *Service, tenant string, ws []Window) int {
	b.Helper()
	for {
		res, err := svc.Enqueue(tenant, "", ws)
		if err == nil {
			return res.Accepted
		}
		var qf *QueueFullError
		if !errors.As(err, &qf) {
			b.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitVerdicts blocks until every queued window has been classified, so
// the timed region covers ingest-to-verdict, not ingest-to-queue.
func waitVerdicts(b *testing.B, svc *Service) {
	b.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for !svc.Drained() {
		if time.Now().After(deadline) {
			b.Fatalf("ingest did not drain: %+v", svc.Stats())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// reportFleet attaches the headline load-test figures as custom metrics
// so `make bench-baseline` lands sustained windows/sec and the verdict
// latency percentiles in BENCH_baseline.json.
func reportFleet(b *testing.B, svc *Service, windows int) {
	b.Helper()
	st := svc.Stats()
	b.ReportMetric(float64(windows)/b.Elapsed().Seconds(), "windows/s")
	b.ReportMetric(st.VerdictLatencyP50MS, "p50_ms")
	b.ReportMetric(st.VerdictLatencyP99MS, "p99_ms")
}

// BenchmarkFleet_IngestDetectPipeline is the load-test harness for the
// sharded ingest service: each iteration enqueues one 512-window batch
// into every one of 8 tenants (keeping all shards fed, the aggregate
// fleet shape), and the run ends only after every window has a verdict.
// windows/s is the sustained aggregate rate.
func BenchmarkFleet_IngestDetectPipeline(b *testing.B) {
	const batch, tenants = 512, 8
	svc, pool := benchFleet(b, 0)
	ws := make([]Window, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ws {
			ws[j] = pool[(i*batch+j)%len(pool)]
		}
		for t := 0; t < tenants; t++ {
			benchEnqueue(b, svc, fmt.Sprintf("tenant-%02d", t), ws)
		}
	}
	waitVerdicts(b, svc)
	b.StopTimer()
	reportFleet(b, svc, b.N*batch*tenants)
}

// BenchmarkFleet_IngestDetectSingleShard pins the pipeline to one shard:
// the sequential floor the sharded rate is compared against.
func BenchmarkFleet_IngestDetectSingleShard(b *testing.B) {
	const batch = 512
	svc, pool := benchFleet(b, 1)
	ws := make([]Window, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ws {
			ws[j] = pool[(i*batch+j)%len(pool)]
		}
		benchEnqueue(b, svc, "tenant-00", ws)
	}
	waitVerdicts(b, svc)
	b.StopTimer()
	reportFleet(b, svc, b.N*batch)
}

// BenchmarkFleet_IngestHTTP measures the full wire path: JSON batch
// decode, validation, enqueue and classification behind POST
// /api/v1/ingest on a live httptest server.
func BenchmarkFleet_IngestHTTP(b *testing.B) {
	const batch, tenants = 512, 8
	svc, pool := benchFleet(b, 0)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := ts.Client()

	ws := make([]Window, batch)
	for j := range ws {
		ws[j] = pool[j%len(pool)]
	}
	payload, err := json.Marshal(Batch{Windows: ws})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(
			ts.URL+"/api/v1/ingest?tenant="+fmt.Sprintf("tenant-%02d", i%tenants),
			"application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == 429 {
			time.Sleep(time.Millisecond)
			i--
			continue
		}
		if code != 202 {
			b.Fatalf("ingest returned %d", code)
		}
	}
	waitVerdicts(b, svc)
	b.StopTimer()
	reportFleet(b, svc, b.N*batch)
}

package ingest

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
)

// TenantHeader carries the tenant id when it is not in the body or the
// ?tenant= query parameter.
const TenantHeader = "X-Tenant-ID"

// TraceparentHeader is the W3C Trace Context header ingest reads from
// requests and echoes (with this service's span id) on responses.
const TraceparentHeader = "traceparent"

// maxBodyBytes bounds one ingest request body (64 MiB — far above any
// sane batch, low enough that a runaway client cannot exhaust memory).
const maxBodyBytes = 64 << 20

// Handler returns the ingest service's HTTP surface, rooted at
// /api/v1/ingest and /api/v1/tenants. The telemetry server mounts it;
// it can also serve standalone in tests.
func (s *Service) Handler() http.Handler {
	return http.HandlerFunc(s.route)
}

func (s *Service) route(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	switch {
	case path == "/api/v1/ingest":
		switch r.Method {
		case http.MethodPost:
			s.handleIngest(w, r)
		case http.MethodGet, http.MethodHead:
			httpapi.WriteJSON(w, s.Stats())
		default:
			w.Header().Set("Allow", "GET, POST")
			httpapi.Errorf(w, http.StatusMethodNotAllowed, httpapi.CodeMethodNotAllowed,
				"method %s not allowed on %s (allow: GET, POST)", r.Method, r.URL.Path)
		}
	case path == "/api/v1/tenants":
		httpapi.Methods(func(w http.ResponseWriter, _ *http.Request) {
			httpapi.WriteJSON(w, map[string]any{"tenants": s.Tenants()})
		}, http.MethodGet)(w, r)
	case strings.HasPrefix(path, "/api/v1/tenants/"):
		httpapi.Methods(func(w http.ResponseWriter, r *http.Request) {
			s.handleTenant(w, r, strings.TrimPrefix(path, "/api/v1/tenants/"))
		}, http.MethodGet)(w, r)
	default:
		httpapi.NotFound(w, r)
	}
}

// handleTenant serves /api/v1/tenants/{id}[/quality|/drift].
func (s *Service) handleTenant(w http.ResponseWriter, r *http.Request, rest string) {
	id, sub, _ := strings.Cut(rest, "/")
	if !validTenantID(id) {
		httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
			"invalid tenant id %q", id)
		return
	}
	switch sub {
	case "":
		t := s.lookupTenant(id)
		if t == nil {
			httpapi.Errorf(w, http.StatusNotFound, httpapi.CodeNotFound,
				"unknown tenant: %s", id)
			return
		}
		httpapi.WriteJSON(w, t.summary(s.cfg.QueueCap))
	case "quality":
		snap, ok := s.TenantQuality(id)
		if !ok {
			httpapi.Errorf(w, http.StatusNotFound, httpapi.CodeNotFound,
				"unknown tenant: %s", id)
			return
		}
		httpapi.WriteJSON(w, snap)
	case "drift":
		snap, ok, armed := s.TenantDrift(id)
		if !ok {
			httpapi.Errorf(w, http.StatusNotFound, httpapi.CodeNotFound,
				"unknown tenant: %s", id)
			return
		}
		if !armed {
			httpapi.Error(w, http.StatusNotFound, httpapi.CodeNotFound,
				"drift detection not armed: service has no baseline")
			return
		}
		httpapi.WriteJSON(w, snap)
	default:
		httpapi.NotFound(w, r)
	}
}

// handleIngest accepts POST /api/v1/ingest: a JSON Batch body, or (with
// Content-Type application/x-ndjson) one Window JSON object per line.
func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	// A malformed traceparent must never reject the batch: parse failure
	// degrades to the zero context, which head-samples a fresh root.
	reqStartNS := time.Now().UnixNano()
	tc, _ := obs.ParseTraceparent(r.Header.Get(TraceparentHeader))
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	headerTenant := r.Header.Get(TenantHeader)
	queryTenant := r.URL.Query().Get("tenant")
	if headerTenant != "" && queryTenant != "" && headerTenant != queryTenant {
		httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
			"conflicting tenant ids: header %q vs query %q", headerTenant, queryTenant)
		return
	}
	tenantID := headerTenant
	if tenantID == "" {
		tenantID = queryTenant
	}

	var batch Batch
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/x-ndjson") {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		line := 0
		for sc.Scan() {
			raw := strings.TrimSpace(sc.Text())
			line++
			if raw == "" {
				continue
			}
			var win Window
			if err := json.Unmarshal([]byte(raw), &win); err != nil {
				httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
					"ndjson line %d: %v", line, err)
				return
			}
			batch.Windows = append(batch.Windows, win)
			if len(batch.Windows) > s.cfg.MaxBatchWindows {
				httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
					"batch exceeds %d windows", s.cfg.MaxBatchWindows)
				return
			}
		}
		if err := sc.Err(); err != nil {
			httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				"reading ndjson body: %v", err)
			return
		}
	} else {
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&batch); err != nil {
			var maxErr *http.MaxBytesError
			if errors.As(err, &maxErr) {
				httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
					"body exceeds %d bytes", maxErr.Limit)
				return
			}
			httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				"decoding batch: %v", err)
			return
		}
		if dec.More() {
			httpapi.Error(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				"trailing data after batch object (use application/x-ndjson for streams)")
			return
		}
		if batch.Tenant != "" {
			if tenantID != "" && batch.Tenant != tenantID {
				httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
					"conflicting tenant ids: request %q vs body %q", tenantID, batch.Tenant)
				return
			}
			tenantID = batch.Tenant
		}
	}
	io.Copy(io.Discard, body)

	if !validTenantID(tenantID) {
		httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
			"missing or invalid tenant id %q (set %s, ?tenant=, or batch.tenant; [A-Za-z0-9._-]{1,64})",
			tenantID, TenantHeader)
		return
	}
	switch batch.Overflow {
	case "", OverflowReject, OverflowDropOldest:
	default:
		httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
			"unknown overflow policy %q (want %q or %q)",
			batch.Overflow, OverflowReject, OverflowDropOldest)
		return
	}
	if len(batch.Windows) == 0 {
		httpapi.Error(w, http.StatusBadRequest, httpapi.CodeBadRequest,
			"batch has no windows")
		return
	}
	if len(batch.Windows) > s.cfg.MaxBatchWindows {
		httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
			"batch exceeds %d windows", s.cfg.MaxBatchWindows)
		return
	}
	for i := range batch.Windows {
		if err := s.validateWindow(&batch.Windows[i]); err != nil {
			httpapi.Errorf(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				"window %d: %v", i, err)
			return
		}
	}

	// Head-sampling decision (tenant-aware, so it waits for the decoded
	// tenant id). The accept span covers decode + validation.
	at := s.cfg.Tracer.Sample(tc, "ingest", tenantID, reqStartNS)
	if at != nil {
		at.AddSpan("ingest.accept", reqStartNS, time.Now().UnixNano(),
			obs.ReqAttr{Key: "windows", Value: float64(len(batch.Windows))})
	}

	res, err := s.EnqueueTraced(tenantID, batch.Overflow, batch.Windows, at)
	if err != nil {
		var full *QueueFullError
		var limit *TenantLimitError
		switch {
		case errors.As(err, &full):
			secs := int(math.Ceil(full.RetryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			httpapi.Errorf(w, http.StatusTooManyRequests, httpapi.CodeQueueFull,
				"tenant %s queue full (%d/%d windows); retry after %ds",
				full.Tenant, full.Queued, full.Cap, secs)
		case errors.As(err, &limit):
			httpapi.Errorf(w, http.StatusTooManyRequests, httpapi.CodeTenantLimit,
				"tenant limit reached (%d)", limit.Limit)
		case errors.Is(err, ErrStopped):
			httpapi.Error(w, http.StatusServiceUnavailable, httpapi.CodeUnavailable,
				"ingest service stopped")
		default:
			httpapi.Error(w, http.StatusServiceUnavailable, httpapi.CodeUnavailable,
				err.Error())
		}
		// Rejected batches enqueued nothing: the trace ends (and commits)
		// here, tail-kept by the error rule.
		at.SetError(err.Error())
		at.End(time.Now().UnixNano())
		return
	}
	if at != nil {
		res.TraceID = at.TraceID()
		w.Header().Set(TraceparentHeader, at.Context().Traceparent())
	}
	w.WriteHeader(http.StatusAccepted)
	httpapi.WriteJSON(w, res)
	// Release the trace: it commits once every accepted window has its
	// verdict (immediately, when the shards already drained the batch).
	at.End(time.Now().UnixNano())
}

// validateWindow enforces the wire schema: the trained feature
// dimension, finite values, and a binary label when present.
func (s *Service) validateWindow(w *Window) error {
	if len(w.Values) != s.dim {
		return fmt.Errorf("values has %d features, detector expects %d", len(w.Values), s.dim)
	}
	for j, v := range w.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("values[%d] is not finite", j)
		}
	}
	if w.Label != nil && *w.Label != 0 && *w.Label != 1 {
		return fmt.Errorf("label %d outside {0,1}", *w.Label)
	}
	if len(w.Endpoint) > 128 {
		return fmt.Errorf("endpoint id longer than 128 bytes")
	}
	return nil
}

// validTenantID enforces the tenant id charset: [A-Za-z0-9._-]{1,64}.
func validTenantID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

package ingest

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// tracedConfig builds a service config that records every request.
func tracedConfig(t *testing.T, shards int) (Config, *obs.ReqTracer) {
	t.Helper()
	rt := obs.NewReqTracer(obs.ReqTracerConfig{HeadRatio: 1})
	cfg := testConfig(t, func(c *Config) {
		c.Shards = shards
		c.Tracer = rt
	})
	return cfg, rt
}

// waitTrace polls until the trace with the given id commits into the
// ring — the drain worker settles pending verdicts asynchronously.
func waitTrace(t *testing.T, rt *obs.ReqTracer, id string) obs.ReqTraceSnapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap, ok := rt.Get(id); ok {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never committed; stats=%+v", id, rt.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIngestTraceWaterfall drives one traced batch through the full
// HTTP accept → enqueue → dequeue → infer → quality pipeline and checks
// the resulting span waterfall: the caller's traceparent joins, every
// stage appears, and the staged durations bound the batch's
// ingest-to-verdict latency.
func TestIngestTraceWaterfall(t *testing.T) {
	cfg, rt := tracedConfig(t, 2)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)
	h := s.Handler()

	caller := obs.NewTraceContext()
	b := Batch{}
	for i := 0; i < 9; i++ {
		b.Windows = append(b.Windows, win("ep0", i%2))
	}
	body, _ := json.Marshal(b)
	req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", strings.NewReader(string(body)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, "acme")
	req.Header.Set(TraceparentHeader, caller.Traceparent())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body.String())
	}

	// The receipt and the response header both carry the joined trace.
	var res Accepted
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.TraceID != caller.TraceID() {
		t.Fatalf("receipt trace id %q != caller %q", res.TraceID, caller.TraceID())
	}
	echo, ok := obs.ParseTraceparent(rec.Header().Get(TraceparentHeader))
	if !ok || echo.TraceID() != caller.TraceID() || echo.Span == caller.Span {
		t.Fatalf("response traceparent %q does not continue the caller's trace",
			rec.Header().Get(TraceparentHeader))
	}

	waitDrained(t, s)
	snap := waitTrace(t, rt, caller.TraceID())
	if snap.Tenant != "acme" || snap.Name != "ingest" || snap.Error != "" {
		t.Fatalf("trace = %+v", snap)
	}
	stages := map[string]obs.ReqSpan{}
	for _, sp := range snap.Spans {
		stages[sp.Name] = sp
	}
	for _, name := range []string{"ingest.accept", "ingest.enqueue",
		"ingest.dequeue", "ingest.infer", "ingest.quality"} {
		if _, ok := stages[name]; !ok {
			t.Fatalf("span %s missing from waterfall: %+v", name, snap.Spans)
		}
	}
	// The accept span covers handler entry through enqueue, and the
	// dequeue span starts at enqueue time, so the four stages together
	// cover the batch's whole ingest-to-verdict latency: their sum must
	// bound the root duration (small slack for the handler-return →
	// drain-claim scheduling gap).
	var stagedUS int64
	for _, name := range []string{"ingest.accept", "ingest.dequeue", "ingest.infer", "ingest.quality"} {
		stagedUS += stages[name].DurUS
	}
	if rootUS := int64(snap.DurMS * 1000); stagedUS+1000 < rootUS {
		t.Fatalf("staged spans cover %dus of a %dus trace — stages missing time", stagedUS, rootUS)
	}
	if got := stages["ingest.enqueue"].Attrs; len(got) == 0 {
		t.Fatalf("enqueue span lost its attributes: %+v", stages["ingest.enqueue"])
	}
}

// TestIngestTraceErrorPaths pins the two trace-settlement hazards: a
// rejected batch commits immediately with the error rule, and windows
// evicted by drop-oldest settle their pending counts so the trace still
// commits (marked errored) instead of leaking forever.
func TestIngestTraceErrorPaths(t *testing.T) {
	rt := obs.NewReqTracer(obs.ReqTracerConfig{HeadRatio: 1})
	s, err := New(testConfig(t, func(c *Config) {
		c.QueueCap = 8
		c.Tracer = rt
	}))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler() // workers intentionally not started: the queue stays full

	fill := Batch{}
	for i := 0; i < 8; i++ {
		fill.Windows = append(fill.Windows, win("ep0", 0))
	}
	tcFill := obs.NewTraceContext()
	reqFill := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", jsonBody(t, fill))
	reqFill.Header.Set("Content-Type", "application/json")
	reqFill.Header.Set(TenantHeader, "acme")
	reqFill.Header.Set(TraceparentHeader, tcFill.Traceparent())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, reqFill)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("fill: %d", rec.Code)
	}

	// Rejected batch: 429, trace commits at once with the error reason.
	tcRej := obs.NewTraceContext()
	reqRej := httptest.NewRequest(http.MethodPost, "/api/v1/ingest",
		jsonBody(t, Batch{Windows: []Window{win("ep0", 0)}}))
	reqRej.Header.Set("Content-Type", "application/json")
	reqRej.Header.Set(TenantHeader, "acme")
	reqRej.Header.Set(TraceparentHeader, tcRej.Traceparent())
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, reqRej)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d", rec.Code)
	}
	snap, ok := rt.Get(tcRej.TraceID())
	if !ok || snap.Error == "" || snap.KeepReason != "error" {
		t.Fatalf("rejected-batch trace = %+v, ok=%v", snap, ok)
	}

	// Drop-oldest: the fill batch's windows are evicted; its trace must
	// settle (errored) rather than wait for verdicts that never come.
	over := Batch{Overflow: OverflowDropOldest}
	for i := 0; i < 8; i++ {
		over.Windows = append(over.Windows, win("ep1", 0))
	}
	reqOver := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", jsonBody(t, over))
	reqOver.Header.Set("Content-Type", "application/json")
	reqOver.Header.Set(TenantHeader, "acme")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, reqOver)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("drop-oldest: %d %s", rec.Code, rec.Body.String())
	}
	evicted, ok := rt.Get(tcFill.TraceID())
	if !ok {
		t.Fatal("evicted batch's trace never committed")
	}
	if !strings.Contains(evicted.Error, "evicted") || evicted.KeepReason != "error" {
		t.Fatalf("evicted trace = %+v", evicted)
	}
}

func jsonBody(t *testing.T, b Batch) *strings.Reader {
	t.Helper()
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return strings.NewReader(string(raw))
}

// TestQualityIdenticalTracingOnOff is the determinism guard for the
// tracing layer: per-tenant quality JSON must be byte-identical with
// tracing off and with every request traced, at 1 shard and at 8.
func TestQualityIdenticalTracingOnOff(t *testing.T) {
	for _, shards := range []int{1, 8} {
		off := streamBatches(t, shards, nil)
		on := streamBatches(t, shards, obs.NewReqTracer(obs.ReqTracerConfig{HeadRatio: 1}))
		for id, want := range off {
			if got := on[id]; got != want {
				t.Fatalf("shards=%d tenant %s quality differs with tracing on:\n--- off\n%s\n--- on\n%s",
					shards, id, want, got)
			}
		}
	}
}

// TestUnsampledIngestZeroAlloc pins the PR 4 guarantee under the
// tracing refactor: with no trace recorded (nil tracer, and a tracer
// that declined the request), the steady-state enqueue→drain hot path
// allocates nothing per window.
func TestUnsampledIngestZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name   string
		tracer *obs.ReqTracer
	}{
		{"nil-tracer", nil},
		{"tracer-declines", obs.NewReqTracer(obs.ReqTracerConfig{})}, // ratio 0
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(testConfig(t, func(c *Config) {
				c.QueueCap = 1024
				c.Tracer = tc.tracer
			}))
			if err != nil {
				t.Fatal(err)
			}
			// Workers stay unstarted: the drain is driven directly so the
			// measurement is the hot path alone, free of scheduler noise.
			batch := []Window{win("ep0", 0)}
			if _, err := s.Enqueue("acme", "", batch); err != nil {
				t.Fatal(err)
			}
			ten := s.lookupTenant("acme")
			sc := newShardScratch(s, drainChunk)
			if n := s.drainTenant(ten, sc); n != 1 {
				t.Fatalf("warmup drain = %d", n)
			}
			allocs := testing.AllocsPerRun(500, func() {
				if _, err := s.Enqueue("acme", "", batch); err != nil {
					t.Fatal(err)
				}
				if n := s.drainTenant(ten, sc); n != 1 {
					t.Fatal("drain did not claim the window")
				}
			})
			if allocs != 0 {
				t.Fatalf("unsampled ingest hot path allocates %.1f bytes-objects/window, want 0", allocs)
			}
		})
	}
}

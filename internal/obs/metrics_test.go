package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("a.gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}

	// Nil instruments are inert.
	var nc *Counter
	nc.Add(1)
	var ng *Gauge
	ng.Set(1)
	var nh *Histogram
	nh.Observe(1)
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	// Upper bounds are inclusive: v == bound lands in that bucket.
	for _, v := range []float64{0.5, 1} { // bucket 0 (<=1)
		h.Observe(v)
	}
	h.Observe(1.5) // bucket 1 (<=2)
	h.Observe(4)   // bucket 2 (<=4)
	h.Observe(4.1) // overflow
	s := r.Snapshot().Histograms["lat"]
	wantCounts := []int64{2, 1, 1, 1}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("counts len %d, want %d", len(s.Counts), len(wantCounts))
	}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Min != 0.5 || s.Max != 4.1 {
		t.Errorf("count/min/max = %d/%v/%v", s.Count, s.Min, s.Max)
	}
	if math.Abs(s.Sum-11.1) > 1e-9 {
		t.Errorf("sum = %v, want 11.1", s.Sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{1, 2, 4, 8, 16})
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v % 16))
	}
	s := r.Snapshot().Histograms["q"]
	if q := s.Quantile(0.5); q < 4 || q > 12 {
		t.Errorf("p50 = %v, want mid-range", q)
	}
	if q := s.Quantile(0); q != s.Min {
		t.Errorf("p0 = %v, want min %v", q, s.Min)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Errorf("p100 = %v, want max %v", q, s.Max)
	}
	var empty HistogramSnapshot
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("quantile of empty histogram should be NaN")
	}
}

func TestSnapshotJSONDeterministicOrdering(t *testing.T) {
	r := NewRegistry()
	// Register in non-alphabetical order.
	r.Counter("z.last").Add(1)
	r.Counter("a.first").Add(2)
	r.Counter("m.mid").Add(3)
	r.Gauge("g.two").Set(2)
	r.Gauge("g.one").Set(1)
	r.Histogram("h.b", []float64{1}).Observe(0.5)
	r.Histogram("h.a", []float64{1}).Observe(2)

	enc := func() string {
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	first := enc()
	for i := 0; i < 10; i++ {
		if got := enc(); got != first {
			t.Fatalf("snapshot JSON not stable:\n%s\n%s", first, got)
		}
	}
	// Keys must appear sorted.
	ia, iz := strings.Index(first, "a.first"), strings.Index(first, "z.last")
	if ia < 0 || iz < 0 || ia > iz {
		t.Errorf("counter keys not sorted in %s", first)
	}
}

func TestRegistryResetKeepsInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{1, 2})
	c.Add(7)
	h.Observe(1.5)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Error("reset did not zero metrics")
	}
	// The cached pointer still feeds the same registry entry.
	c.Add(2)
	if r.Snapshot().Counters["c"] != 2 {
		t.Error("cached counter detached from registry after Reset")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Histogram("h", []float64{10, 100}).Observe(float64(j))
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != 8000 {
		t.Errorf("counter = %d, want 8000", s.Counters["n"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Histograms["h"].Count)
	}
}

func TestWriteRunSnapshotIsValidJSON(t *testing.T) {
	GetCounter("obs.test_counter").Inc()
	sp := StartSpan("obs.test_span")
	StartSpan("obs.test_child").End()
	sp.End()
	var buf bytes.Buffer
	if err := WriteRunSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var rs RunSnapshot
	if err := json.Unmarshal(buf.Bytes(), &rs); err != nil {
		t.Fatalf("run snapshot not valid JSON: %v", err)
	}
	if rs.Counters["obs.test_counter"] < 1 {
		t.Error("counter missing from run snapshot")
	}
	found := false
	for _, s := range rs.Spans {
		if s.Name == "obs.test_span" && len(s.Children) == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("span tree missing from run snapshot: %+v", rs.Spans)
	}
}

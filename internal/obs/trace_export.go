package obs

import (
	"encoding/json"
	"io"
	"math"
)

// chromeTraceEvent is one entry of the Chrome trace-event format's JSON
// object form ("X" complete events), as consumed by Perfetto and
// chrome://tracing.
type chromeTraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds, trace-relative
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit"`
}

// WriteChromeTrace exports a span-tree snapshot as Chrome trace-event
// JSON (complete "X" events), loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Timestamps are rebased to the earliest span so the
// trace starts at t=0; nesting renders by ts/dur containment, and each
// event's args carry the span and parent IDs for cross-referencing with
// the metrics snapshot.
func WriteChromeTrace(w io.Writer, spans []SpanSnapshot) error {
	var events []chromeTraceEvent
	epoch := int64(math.MaxInt64)
	var scan func([]SpanSnapshot)
	scan = func(ss []SpanSnapshot) {
		for _, s := range ss {
			if s.StartUnixUS < epoch {
				epoch = s.StartUnixUS
			}
			scan(s.Children)
		}
	}
	scan(spans)

	var emit func([]SpanSnapshot)
	emit = func(ss []SpanSnapshot) {
		for _, s := range ss {
			ev := chromeTraceEvent{
				Name:  s.Name,
				Phase: "X",
				TS:    float64(s.StartUnixUS - epoch),
				Dur:   s.WallMS * 1000,
				PID:   1,
				TID:   1,
				Args:  map[string]any{"id": s.ID},
			}
			if s.ParentID != 0 {
				ev.Args["parent_id"] = s.ParentID
			}
			events = append(events, ev)
			emit(s.Children)
		}
	}
	emit(spans)
	if events == nil {
		events = []chromeTraceEvent{}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the binary that produced an artifact: the module
// path and version, the VCS revision it was built from (with the dirty
// flag when the working tree had local edits), and the Go toolchain.
// Fields are empty when the binary was built without VCS stamping (`go
// test`, `go run` of a dirty checkout on older toolchains, ...).
type BuildInfo struct {
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Time      string `json:"vcs_time,omitempty"`
	Dirty     bool   `json:"vcs_dirty,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the running binary's build identity, read once from
// runtime/debug.ReadBuildInfo.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Module = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Dirty = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// String renders the build identity as a one-line version banner.
func (b BuildInfo) String() string {
	v := b.Version
	if v == "" {
		v = "(devel)"
	}
	s := v
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " " + rev
		if b.Dirty {
			s += "+dirty"
		}
	}
	if b.GoVersion != "" {
		s += " " + b.GoVersion
	}
	return s
}

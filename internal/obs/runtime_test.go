package obs

import (
	"runtime"
	"testing"
)

// TestRuntimeCollectorPopulatesGauges: after one Update, the headline
// runtime gauges hold live values — a running Go program always has
// goroutines and heap bytes.
func TestRuntimeCollectorPopulatesGauges(t *testing.T) {
	r := NewRegistry()
	rc := NewRuntimeCollector(r)
	rc.Update()

	if g := r.Gauge("runtime.goroutines").Value(); g < 1 {
		t.Fatalf("runtime.goroutines = %v, want >= 1", g)
	}
	if v := r.Gauge("runtime.heap_objects_bytes").Value(); v <= 0 {
		t.Fatalf("runtime.heap_objects_bytes = %v, want > 0", v)
	}
	if v := r.Gauge("runtime.mem_total_bytes").Value(); v <= 0 {
		t.Fatalf("runtime.mem_total_bytes = %v, want > 0", v)
	}
	// Force a GC so pause/cycle metrics are non-trivially populated, then
	// confirm a second Update moves the cycle counter.
	before := r.Gauge("runtime.gc_cycles").Value()
	runtime.GC()
	rc.Update()
	if after := r.Gauge("runtime.gc_cycles").Value(); after <= before {
		t.Fatalf("runtime.gc_cycles %v -> %v, want increase after runtime.GC()", before, after)
	}
	if p99 := r.Gauge("runtime.gc_pause_p99_ms").Value(); p99 < 0 {
		t.Fatalf("runtime.gc_pause_p99_ms = %v, want >= 0", p99)
	}
}

// TestRuntimeCollectorMetricNames: the advertised names match what the
// collector registers, and the histogram kinds carry quantile suffixes.
func TestRuntimeCollectorMetricNames(t *testing.T) {
	rc := NewRuntimeCollector(NewRegistry())
	names := map[string]bool{}
	for _, n := range rc.MetricNames() {
		names[n] = true
	}
	for _, want := range []string{
		"runtime.goroutines",
		"runtime.sched_latency_p50_ms", "runtime.sched_latency_p99_ms",
		"runtime.gc_pause_p50_ms", "runtime.gc_pause_p99_ms",
		"runtime.gc_cycles", "runtime.heap_objects_bytes",
	} {
		if !names[want] {
			t.Fatalf("MetricNames missing %s: %v", want, rc.MetricNames())
		}
	}
}

// TestRuntimeCollectorNilSafe: commands wire rc.Update as a tsdb
// PreScrape hook unconditionally; a nil collector must be a no-op.
func TestRuntimeCollectorNilSafe(t *testing.T) {
	var rc *RuntimeCollector
	rc.Update()
	if rc.MetricNames() != nil {
		t.Fatal("nil MetricNames != nil")
	}
}

// TestRuntimeScrapeZeroAlloc is the hot-path gate: Update runs at 1 Hz
// inside the tsdb scrape and must not allocate after construction.
func TestRuntimeScrapeZeroAlloc(t *testing.T) {
	rc := NewRuntimeCollector(NewRegistry())
	rc.Update() // settle histogram buffers
	if avg := testing.AllocsPerRun(100, rc.Update); avg != 0 {
		t.Fatalf("Update allocates %.1f per run, want 0", avg)
	}
}

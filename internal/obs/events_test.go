package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus()
	if b.Active() {
		t.Fatal("fresh bus reports active")
	}
	// Publishing with no subscribers is a silent no-op.
	b.Publish(Event{Type: "alarm"})
	if b.Published() != 0 {
		t.Fatalf("published = %d with no subscribers", b.Published())
	}

	sub := b.Subscribe(8)
	if !b.Active() || b.Subscribers() != 1 {
		t.Fatalf("active=%v subscribers=%d after subscribe", b.Active(), b.Subscribers())
	}
	b.Publish(Event{Type: "alarm", Sample: "rootkit_001", Window: 3, Value: 0.04})
	select {
	case e := <-sub.Events():
		if e.Type != "alarm" || e.Sample != "rootkit_001" || e.Window != 3 {
			t.Fatalf("event = %+v", e)
		}
		if e.TimeUnixMS == 0 {
			t.Fatal("Publish did not stamp the event time")
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}

	sub.Close()
	sub.Close() // idempotent
	if b.Active() {
		t.Fatal("bus still active after last unsubscribe")
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("channel not closed after Close")
	}
}

// TestBusDropOldest pins the backpressure contract: a full subscriber
// buffer discards the oldest undelivered events, never blocks the
// publisher, and counts what it lost.
func TestBusDropOldest(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(4)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: "window", Window: i})
	}
	var got []int
	for len(got) < 4 {
		select {
		case e := <-sub.Events():
			got = append(got, e.Window)
		case <-time.After(time.Second):
			t.Fatalf("only %d events buffered, want 4", len(got))
		}
	}
	for i, w := range got {
		if w != 6+i {
			t.Fatalf("buffered windows = %v, want the newest [6 7 8 9]", got)
		}
	}
	if sub.Dropped() != 6 || b.Dropped() != 6 {
		t.Fatalf("dropped = sub %d / bus %d, want 6", sub.Dropped(), b.Dropped())
	}
	if b.Published() != 10 {
		t.Fatalf("published = %d, want 10", b.Published())
	}
}

// TestBusAttachMetrics pins the registry mirror: delivery, drop-oldest and
// subscriber accounting become scrapeable metrics instead of private
// atomics (drops used to be invisible to /metrics consumers).
func TestBusAttachMetrics(t *testing.T) {
	b := NewBus()
	r := NewRegistry()
	b.AttachMetrics(r)
	sub := b.Subscribe(4)
	if got := r.Gauge(EventsSubscribersMetric).Value(); got != 1 {
		t.Fatalf("subscribers gauge = %g, want 1", got)
	}
	for i := 0; i < 10; i++ {
		b.Publish(Event{Type: "window", Window: i})
	}
	if got := r.Counter(EventsPublishedMetric).Value(); got != 10 {
		t.Errorf("published counter = %d, want 10", got)
	}
	if got := r.Counter(EventsDroppedMetric).Value(); got != 6 {
		t.Errorf("dropped counter = %d, want 6", got)
	}
	sub.Close()
	if got := r.Gauge(EventsSubscribersMetric).Value(); got != 0 {
		t.Errorf("subscribers gauge after close = %g, want 0", got)
	}
	// The mirror must render in the Prometheus exposition of the registry.
	var sb strings.Builder
	if err := WritePrometheus(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"obs_events_dropped_total 6", "obs_events_published_total 10"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

// TestDefaultBusMetricsWired checks the init-time wiring of DefaultBus to
// DefaultRegistry (re-attaching first, since other tests may have moved
// the mirror to a private registry).
func TestDefaultBusMetricsWired(t *testing.T) {
	DefaultBus.AttachMetrics(DefaultRegistry)
	before := GetCounter(EventsDroppedMetric).Value()
	sub := DefaultBus.Subscribe(1)
	defer sub.Close()
	DefaultBus.Publish(Event{Type: "window"})
	DefaultBus.Publish(Event{Type: "window"})
	if got := GetCounter(EventsDroppedMetric).Value(); got != before+1 {
		t.Errorf("default-registry dropped counter moved by %d, want 1", got-before)
	}
}

// TestBusConcurrentPublish exercises the bus under the race detector:
// concurrent publishers, a closing subscriber, and a reader.
func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(16)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Publish(Event{Type: "window", Window: i, Value: float64(p)})
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.Events() {
		}
	}()
	wg.Wait()
	sub.Close()
	<-done
	if b.Published() != 400 {
		t.Fatalf("published = %d, want 400", b.Published())
	}
}

// TestPublishUnsubscribedAllocs is the disabled-path cost bar: publishing
// to a bus nobody listens to must not allocate, so the per-window
// monitoring loop stays free when no stream is attached.
func TestPublishUnsubscribedAllocs(t *testing.T) {
	b := NewBus()
	n := testing.AllocsPerRun(1000, func() {
		b.Publish(Event{Type: "window", Sample: "rootkit_001", Class: "rootkit", Window: 7, Value: 1})
	})
	if n != 0 {
		t.Fatalf("Publish on unsubscribed bus allocates %.1f/op, want 0", n)
	}
}

func TestNilBusSafe(t *testing.T) {
	var b *Bus
	b.Publish(Event{Type: "alarm"})
	if b.Active() || b.Subscribers() != 0 || b.Published() != 0 || b.Dropped() != 0 {
		t.Fatal("nil bus not inert")
	}
	if b.Subscribe(1) != nil {
		t.Fatal("nil bus returned a subscription")
	}
	var s *Subscription
	s.Close()
	if s.Events() != nil || s.Dropped() != 0 {
		t.Fatal("nil subscription not inert")
	}
}

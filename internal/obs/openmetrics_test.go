package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ingest.latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.ObserveExemplar(0.5, "4bf92f3577b34da6a3ce929d0e0e4736", 1700000000500)
	snap := r.Snapshot().Histograms["ingest.latency"]
	if len(snap.Exemplars) != 1 {
		t.Fatalf("exemplars = %+v, want exactly the one trace-linked bucket", snap.Exemplars)
	}
	e := snap.Exemplars[0]
	if e.Bucket != 1 || e.Value != 0.5 || e.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("exemplar = %+v", e)
	}
	// A later observation in the same bucket replaces the slot — the
	// freshest trace wins, bounded memory either way.
	h.ObserveExemplar(0.7, "aaaa2f3577b34da6a3ce929d0e0e4736", 1700000001000)
	snap = r.Snapshot().Histograms["ingest.latency"]
	if len(snap.Exemplars) != 1 || snap.Exemplars[0].TraceID[:4] != "aaaa" {
		t.Fatalf("exemplar not replaced: %+v", snap.Exemplars)
	}
}

// TestHistogramJSONStableWithoutExemplars pins the API-compat contract:
// histograms that never saw ObserveExemplar marshal exactly as before
// this field existed (no "exemplars" key).
func TestHistogramJSONStableWithoutExemplars(t *testing.T) {
	r := NewRegistry()
	r.Histogram("plain", []float64{1}).Observe(0.5)
	raw, err := json.Marshal(r.Snapshot().Histograms["plain"])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "exemplars") {
		t.Fatalf("exemplar-free histogram leaks the field: %s", raw)
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ingest.windows").Add(7)
	r.Gauge("ingest.queued").Set(3)
	h := r.Histogram("ingest.latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.ObserveExemplar(0.5, "4bf92f3577b34da6a3ce929d0e0e4736", 1500)

	var b strings.Builder
	if err := WriteOpenMetrics(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ingest_windows counter\ningest_windows_total 7\n",
		"# TYPE ingest_queued gauge\ningest_queued 3\n",
		"# TYPE ingest_latency histogram\n",
		"ingest_latency_bucket{le=\"0.1\"} 1\n",
		// The exemplar rides the bucket that recorded it, value then
		// timestamp in seconds.
		"ingest_latency_bucket{le=\"1\"} 2 # {trace_id=\"4bf92f3577b34da6a3ce929d0e0e4736\"} 0.5 1.5\n",
		"ingest_latency_sum 0.55\n",
		"ingest_latency_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("OpenMetrics output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# EOF") {
		t.Fatal("WriteOpenMetrics must not emit # EOF; the handler owns the terminator")
	}

	// The 0.0.4 exposition stays byte-identical whether or not a
	// histogram carries exemplars: WritePrometheus ignores them.
	var p1 strings.Builder
	if err := WritePrometheus(&p1, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p1.String(), "trace_id") {
		t.Fatal("WritePrometheus leaked exemplar syntax")
	}
}

package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Manifest records what one tool run did — the seed, scale and
// configuration it ran with, the artifacts it wrote, per-stage wall
// times, and headline row counts — so every generated dataset or
// reproduced figure is auditable and comparable across runs.
type Manifest struct {
	Tool    string            `json:"tool"`
	Command string            `json:"command"`
	Args    []string          `json:"args,omitempty"`
	Seed    uint64            `json:"seed"`
	Scale   float64           `json:"scale,omitempty"`
	Config  map[string]string `json:"config,omitempty"`
	Outputs []string          `json:"outputs,omitempty"`
	Rows    int               `json:"rows,omitempty"`
	Samples int               `json:"samples,omitempty"`
	// Workers is the process-wide parallel worker bound the run used
	// (the -parallel flag; 0 when the run predates the flag).
	Workers   int             `json:"workers,omitempty"`
	Stages    []ManifestStage `json:"stages,omitempty"`
	StartedAt string          `json:"started_at"`
	// WallSeconds is the total run wall time, set by Finish.
	WallSeconds float64 `json:"wall_seconds"`
	GoVersion   string  `json:"go_version"`
	// Build records the producing binary's identity (module version, VCS
	// revision and dirty flag) so artifacts are traceable to a commit.
	Build *BuildInfo `json:"build,omitempty"`
	// Baseline is the train-time feature-distribution baseline captured
	// by model-quality observability (see internal/quality): per-counter
	// mean/std and fixed-bin histogram sketches that online drift
	// detection compares live traffic against. Stored raw so obs stays
	// free of model-domain types; quality.BaselineFromJSON decodes it.
	Baseline json.RawMessage `json:"baseline,omitempty"`

	start time.Time
}

// ManifestStage is one timed pipeline stage of a run. Stages that ran on
// the parallel engine also report their aggregate busy time (the sum of
// per-task wall times across workers) and the resulting speedup over the
// serial path, busy/wall.
type ManifestStage struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	BusySeconds float64 `json:"busy_seconds,omitempty"`
	SpeedupX    float64 `json:"speedup_x,omitempty"`
}

// NewManifest starts a manifest for one command invocation.
func NewManifest(tool, command string) *Manifest {
	now := time.Now()
	build := Build()
	return &Manifest{
		Tool:      tool,
		Command:   command,
		Config:    map[string]string{},
		StartedAt: now.UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Build:     &build,
		start:     now,
	}
}

// AddStage appends a named stage with the given duration.
func (m *Manifest) AddStage(name string, d time.Duration) {
	m.Stages = append(m.Stages, ManifestStage{Name: name, WallSeconds: d.Seconds()})
}

// StagesFromSpans copies a span-tree snapshot's top-level spans in as
// stages (children are folded into their parents' wall time already).
func (m *Manifest) StagesFromSpans(spans []SpanSnapshot) {
	for _, s := range spans {
		m.Stages = append(m.Stages, ManifestStage{
			Name:        s.Name,
			WallSeconds: s.WallMS / 1000,
		})
	}
}

// ParallelStagesFromMetrics folds the parallel engine's per-pool
// instruments into manifest stages. Every instrumented pool publishes a
// "parallel.<name>.task_seconds" histogram (Sum = busy seconds across all
// workers) and a "parallel.<name>.run_seconds" histogram (Sum = wall
// seconds of the pool runs), so speedup = busy/wall. Pools appear in name
// order for stable manifests.
func (m *Manifest) ParallelStagesFromMetrics(snap Snapshot) {
	const taskSuffix = ".task_seconds"
	var names []string
	for k := range snap.Histograms {
		if strings.HasPrefix(k, "parallel.") && strings.HasSuffix(k, taskSuffix) {
			names = append(names, strings.TrimSuffix(k, taskSuffix))
		}
	}
	sort.Strings(names)
	for _, name := range names {
		busy := snap.Histograms[name+taskSuffix]
		run, ok := snap.Histograms[name+".run_seconds"]
		if !ok || run.Sum <= 0 || busy.Count == 0 {
			continue
		}
		m.Stages = append(m.Stages, ManifestStage{
			Name:        name,
			WallSeconds: run.Sum,
			BusySeconds: busy.Sum,
			SpeedupX:    busy.Sum / run.Sum,
		})
	}
}

// Finish stamps the total wall time. Safe to call more than once.
func (m *Manifest) Finish() {
	m.WallSeconds = time.Since(m.start).Seconds()
}

// WriteFile finishes the manifest and writes it to path as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	m.Finish()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, err
	}
	return m, nil
}

// ManifestPathFor derives the conventional manifest path for an output
// artifact: the artifact's path with its extension replaced by
// ".manifest.json" (or appended when there is no extension).
func ManifestPathFor(output string) string {
	ext := filepath.Ext(output)
	return strings.TrimSuffix(output, ext) + ".manifest.json"
}

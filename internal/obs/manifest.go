package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"
)

// Manifest records what one tool run did — the seed, scale and
// configuration it ran with, the artifacts it wrote, per-stage wall
// times, and headline row counts — so every generated dataset or
// reproduced figure is auditable and comparable across runs.
type Manifest struct {
	Tool      string            `json:"tool"`
	Command   string            `json:"command"`
	Args      []string          `json:"args,omitempty"`
	Seed      uint64            `json:"seed"`
	Scale     float64           `json:"scale,omitempty"`
	Config    map[string]string `json:"config,omitempty"`
	Outputs   []string          `json:"outputs,omitempty"`
	Rows      int               `json:"rows,omitempty"`
	Samples   int               `json:"samples,omitempty"`
	Stages    []ManifestStage   `json:"stages,omitempty"`
	StartedAt string            `json:"started_at"`
	// WallSeconds is the total run wall time, set by Finish.
	WallSeconds float64 `json:"wall_seconds"`
	GoVersion   string  `json:"go_version"`

	start time.Time
}

// ManifestStage is one timed pipeline stage of a run.
type ManifestStage struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
}

// NewManifest starts a manifest for one command invocation.
func NewManifest(tool, command string) *Manifest {
	now := time.Now()
	return &Manifest{
		Tool:      tool,
		Command:   command,
		Config:    map[string]string{},
		StartedAt: now.UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		start:     now,
	}
}

// AddStage appends a named stage with the given duration.
func (m *Manifest) AddStage(name string, d time.Duration) {
	m.Stages = append(m.Stages, ManifestStage{Name: name, WallSeconds: d.Seconds()})
}

// StagesFromSpans copies a span-tree snapshot's top-level spans in as
// stages (children are folded into their parents' wall time already).
func (m *Manifest) StagesFromSpans(spans []SpanSnapshot) {
	for _, s := range spans {
		m.Stages = append(m.Stages, ManifestStage{
			Name:        s.Name,
			WallSeconds: s.WallMS / 1000,
		})
	}
}

// Finish stamps the total wall time. Safe to call more than once.
func (m *Manifest) Finish() {
	m.WallSeconds = time.Since(m.start).Seconds()
}

// WriteFile finishes the manifest and writes it to path as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	m.Finish()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest loads a manifest written by WriteFile.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, err
	}
	return m, nil
}

// ManifestPathFor derives the conventional manifest path for an output
// artifact: the artifact's path with its extension replaced by
// ".manifest.json" (or appended when there is no extension).
func ManifestPathFor(output string) string {
	ext := filepath.Ext(output)
	return strings.TrimSuffix(output, ext) + ".manifest.json"
}

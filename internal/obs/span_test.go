package obs

import (
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	a := tr.Start("a")
	aa := tr.Start("a.a")
	aa.End()
	a.End()
	b := tr.Start("b")
	b.End()
	root.End()
	second := tr.Start("second")
	second.End()

	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("roots = %d, want 2", len(snap))
	}
	r := snap[0]
	if r.Name != "root" || len(r.Children) != 2 {
		t.Fatalf("root = %+v", r)
	}
	if r.Children[0].Name != "a" || r.Children[1].Name != "b" {
		t.Errorf("children = %+v", r.Children)
	}
	if len(r.Children[0].Children) != 1 || r.Children[0].Children[0].Name != "a.a" {
		t.Errorf("grandchildren = %+v", r.Children[0].Children)
	}
	if snap[1].Name != "second" {
		t.Errorf("second root = %+v", snap[1])
	}
}

func TestSpanDurationsAndIdempotentEnd(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("timed")
	time.Sleep(2 * time.Millisecond)
	d1 := s.End()
	if d1 < time.Millisecond {
		t.Errorf("duration %v too short", d1)
	}
	if d2 := s.End(); d2 != d1 {
		t.Errorf("second End changed duration: %v != %v", d2, d1)
	}
	snap := tr.Snapshot()
	if snap[0].WallMS <= 0 {
		t.Errorf("snapshot wall_ms = %v", snap[0].WallMS)
	}
}

func TestSpanOutOfOrderEnd(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("a")
	b := tr.Start("b")
	a.End() // out of order: b still open
	c := tr.Start("c")
	c.End()
	b.End()
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Name != "a" {
		t.Fatalf("snapshot = %+v", snap)
	}
	// c opened while b was the innermost active span.
	if len(snap[0].Children) != 1 || snap[0].Children[0].Name != "b" {
		t.Fatalf("a's children = %+v", snap[0].Children)
	}
	if len(snap[0].Children[0].Children) != 1 || snap[0].Children[0].Children[0].Name != "c" {
		t.Errorf("b's children = %+v", snap[0].Children[0].Children)
	}
}

func TestTracerResetAndNilSafety(t *testing.T) {
	tr := NewTracer()
	tr.Start("x").End()
	tr.Reset()
	if len(tr.Snapshot()) != 0 {
		t.Error("snapshot non-empty after reset")
	}

	var nilTracer *Tracer
	sp := nilTracer.Start("nothing")
	sp.End()
	if nilTracer.Snapshot() != nil {
		t.Error("nil tracer returned spans")
	}
	nilTracer.Reset()
}

func TestUnendedSpanReportsRunningDuration(t *testing.T) {
	tr := NewTracer()
	tr.Start("open")
	time.Sleep(time.Millisecond)
	snap := tr.Snapshot()
	if snap[0].WallMS <= 0 {
		t.Errorf("open span wall_ms = %v, want > 0", snap[0].WallMS)
	}
}

package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Level orders log severities. The gaps leave room for intermediate
// levels, mirroring log/slog's numbering.
type Level int8

// Severity levels, lowest (most verbose) first.
const (
	LevelTrace Level = -8
	LevelDebug Level = -4
	LevelInfo  Level = 0
	LevelWarn  Level = 4
	LevelError Level = 8
)

// String returns the lower-case level name.
func (l Level) String() string {
	switch {
	case l <= LevelTrace:
		return "trace"
	case l <= LevelDebug:
		return "debug"
	case l <= LevelInfo:
		return "info"
	case l <= LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// Logger is a leveled, key-value structured logger. Log calls carry a
// message plus alternating key-value pairs:
//
//	log.Info("dataset generated", "rows", 4960, "samples", 310)
//
// A nil *Logger is a valid nop logger: every method is safe and free.
type Logger struct {
	h     *handler
	attrs []any // bound pairs from With, prepended to every record
}

// handler owns the output writer; derived loggers (With) share it.
type handler struct {
	mu    sync.Mutex
	w     io.Writer
	json  bool
	level Level
	buf   []byte
}

// New returns a logger writing records at or above level to w, as JSON
// objects when jsonFormat is set and as aligned text lines otherwise.
func New(w io.Writer, level Level, jsonFormat bool) *Logger {
	return &Logger{h: &handler{w: w, level: level, json: jsonFormat}}
}

// Nop returns the disabled logger.
func Nop() *Logger { return nil }

// Enabled reports whether records at the given level are emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && l.h != nil && lv >= l.h.level
}

// With returns a logger that adds the given key-value pairs to every
// record.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || l.h == nil {
		return l
	}
	attrs := make([]any, 0, len(l.attrs)+len(kv))
	attrs = append(attrs, l.attrs...)
	attrs = append(attrs, kv...)
	return &Logger{h: l.h, attrs: attrs}
}

// Trace logs at LevelTrace.
func (l *Logger) Trace(msg string, kv ...any) { l.log(LevelTrace, msg, kv) }

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	h := l.h
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buf = h.buf[:0]
	if h.json {
		h.buf = append(h.buf, `{"level":"`...)
		h.buf = append(h.buf, lv.String()...)
		h.buf = append(h.buf, `","msg":`...)
		h.buf = appendJSONString(h.buf, msg)
		h.buf = appendPairsJSON(h.buf, l.attrs)
		h.buf = appendPairsJSON(h.buf, kv)
		h.buf = append(h.buf, '}', '\n')
	} else {
		h.buf = append(h.buf, lv.String()...)
		for n := len(lv.String()); n < 5; n++ {
			h.buf = append(h.buf, ' ')
		}
		h.buf = append(h.buf, ' ')
		h.buf = append(h.buf, msg...)
		h.buf = appendPairsText(h.buf, l.attrs)
		h.buf = appendPairsText(h.buf, kv)
		h.buf = append(h.buf, '\n')
	}
	h.w.Write(h.buf)
}

func pairKey(v any) string {
	if s, ok := v.(string); ok && s != "" {
		return s
	}
	return "!BADKEY"
}

func appendPairsText(buf []byte, kv []any) []byte {
	for i := 0; i+1 < len(kv); i += 2 {
		buf = append(buf, ' ')
		buf = append(buf, pairKey(kv[i])...)
		buf = append(buf, '=')
		buf = appendValueText(buf, kv[i+1])
	}
	if len(kv)%2 == 1 {
		buf = append(buf, " !EXTRA="...)
		buf = appendValueText(buf, kv[len(kv)-1])
	}
	return buf
}

func appendPairsJSON(buf []byte, kv []any) []byte {
	for i := 0; i+1 < len(kv); i += 2 {
		buf = append(buf, ',')
		buf = appendJSONString(buf, pairKey(kv[i]))
		buf = append(buf, ':')
		buf = appendValueJSON(buf, kv[i+1])
	}
	if len(kv)%2 == 1 {
		buf = append(buf, `,"!EXTRA":`...)
		buf = appendValueJSON(buf, kv[len(kv)-1])
	}
	return buf
}

// appendValueText formats one value. Common concrete types are encoded
// with strconv so the argument slice never escapes to the heap, keeping
// disabled-logger call sites allocation-free.
func appendValueText(buf []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		if needsQuoting(x) {
			return strconv.AppendQuote(buf, x)
		}
		return append(buf, x...)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(buf, x)
	case time.Duration:
		return append(buf, x.String()...)
	default:
		return fmt.Appendf(buf, "%v", v)
	}
}

func appendValueJSON(buf []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendJSONString(buf, x)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case float64:
		// NaN/Inf are not valid JSON numbers; quote them.
		if x != x || x > 1.7976931348623157e308 || x < -1.7976931348623157e308 {
			return appendJSONString(buf, strconv.FormatFloat(x, 'g', -1, 64))
		}
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(buf, x)
	case time.Duration:
		return appendJSONString(buf, x.String())
	default:
		return appendJSONString(buf, fmt.Sprintf("%v", v))
	}
}

func needsQuoting(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c >= 0x7f {
			return true
		}
	}
	return len(s) == 0
}

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes and control characters.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c < 0x20:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

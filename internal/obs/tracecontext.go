package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"sync/atomic"
)

// TraceContext is the propagatable identity of one request-scoped trace:
// a 128-bit trace id shared by every span of the request across process
// boundaries, the 64-bit id of the caller's span, and the W3C trace
// flags. It parses from and formats to the W3C Trace Context
// `traceparent` header (version 00), so fleet endpoints, load generators
// and the ingest service join their latency observations on one id.
type TraceContext struct {
	// TraceHi and TraceLo are the high and low halves of the 128-bit
	// trace id. A zero trace id is invalid per the W3C spec.
	TraceHi, TraceLo uint64
	// Span is the caller's 64-bit span id (the parent of the first span
	// the receiver opens). Zero is invalid.
	Span uint64
	// Flags carries the W3C trace flags; bit 0 is "sampled".
	Flags uint8
}

// FlagSampled is the W3C sampled trace flag: the caller recorded this
// trace and asks downstream services to record it too.
const FlagSampled uint8 = 0x01

// Valid reports whether the context carries a usable (non-zero) trace
// and span id.
func (tc TraceContext) Valid() bool {
	return (tc.TraceHi != 0 || tc.TraceLo != 0) && tc.Span != 0
}

// Sampled reports the sampled flag.
func (tc TraceContext) Sampled() bool { return tc.Flags&FlagSampled != 0 }

// TraceID renders the 128-bit trace id as 32 lowercase hex digits.
func (tc TraceContext) TraceID() string {
	var b [32]byte
	putHex(b[:16], tc.TraceHi)
	putHex(b[16:], tc.TraceLo)
	return string(b[:])
}

// Traceparent renders the context in the W3C traceparent header format:
// version 00, `00-<32 hex trace id>-<16 hex span id>-<2 hex flags>`.
func (tc TraceContext) Traceparent() string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	putHex(b[3:19], tc.TraceHi)
	putHex(b[19:35], tc.TraceLo)
	b[35] = '-'
	putHex(b[36:52], tc.Span)
	b[52] = '-'
	const hexdigits = "0123456789abcdef"
	b[53] = hexdigits[tc.Flags>>4]
	b[54] = hexdigits[tc.Flags&0xf]
	return string(b[:])
}

// ParseTraceparent parses a W3C traceparent header. It returns ok=false
// for anything malformed — wrong length, bad separators, non-lowercase
// hex, the forbidden version ff, or all-zero trace/span ids — so callers
// fall back to a fresh root trace instead of rejecting the request: a
// broken tracing header must never 400 an otherwise valid ingest.
func ParseTraceparent(h string) (TraceContext, bool) {
	// version-format: 2 hex version, 32 hex trace id, 16 hex span id,
	// 2 hex flags, dash-separated. Exactly 55 bytes for version 00;
	// future versions may append fields after another dash.
	if len(h) < 55 {
		return TraceContext{}, false
	}
	ver, ok := parseHex(h[0:2])
	if !ok || ver == 0xff {
		return TraceContext{}, false
	}
	if len(h) > 55 {
		// Version 00 is exactly 55 bytes; higher versions may be longer
		// only when the extra data starts with a separator.
		if ver == 0 || h[55] != '-' {
			return TraceContext{}, false
		}
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	hi, ok1 := parseHex(h[3:19])
	lo, ok2 := parseHex(h[19:35])
	span, ok3 := parseHex(h[36:52])
	flags, ok4 := parseHex(h[53:55])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceHi: hi, TraceLo: lo, Span: span, Flags: uint8(flags)}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// NewTraceContext mints a fresh sampled root context with random trace
// and span ids — what a client (fleetgen) stamps on outbound requests.
func NewTraceContext() TraceContext {
	return TraceContext{TraceHi: nextID(), TraceLo: nextID(),
		Span: nextID(), Flags: FlagSampled}
}

// idState seeds the lock-free id generator from the OS entropy pool once
// at process start; ids then advance by atomic increment + mixing, so
// minting an id never allocates and never blocks on entropy.
var idState = func() *atomic.Uint64 {
	var seed [8]byte
	var s atomic.Uint64
	if _, err := crand.Read(seed[:]); err == nil {
		s.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		s.Store(0x9e3779b97f4a7c15)
	}
	return &s
}()

// nextID returns a non-zero pseudo-random 64-bit id (splitmix64 over an
// atomic counter: unique per process, well-mixed, allocation-free).
func nextID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// putHex writes v as len(dst) lowercase hex digits (dst is 16 bytes for
// a full uint64).
func putHex(dst []byte, v uint64) {
	const hexdigits = "0123456789abcdef"
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i] = hexdigits[v&0xf]
		v >>= 4
	}
}

// parseHex parses strictly lowercase hex (the W3C grammar) into a
// uint64. At most 16 digits.
func parseHex(s string) (uint64, bool) {
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

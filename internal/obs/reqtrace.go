package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Metric names published by the request tracer.
const (
	// ReqTraceStartedMetric counts traces that passed sampling and began
	// recording spans.
	ReqTraceStartedMetric = "reqtrace.started"
	// ReqTraceRetainedMetric counts completed traces committed to the ring.
	ReqTraceRetainedMetric = "reqtrace.retained"
	// ReqTraceEvictedMetric counts traces dropped from the ring to stay
	// inside the byte/count budget.
	ReqTraceEvictedMetric = "reqtrace.evicted"
	// ReqTraceBytesMetric gauges the ring's current retained byte estimate.
	ReqTraceBytesMetric = "reqtrace.bytes"
)

// ReqAttr is one numeric span attribute (queue depth, batch size, ...).
// Attributes are numeric only so span storage stays compact and the
// waterfall JSON stays schema-free.
type ReqAttr struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// ReqSpan is one completed stage of a request trace.
type ReqSpan struct {
	Name string `json:"name"`
	// StartUnixUS is the span's start time, microseconds since the epoch.
	StartUnixUS int64 `json:"start_us"`
	// DurUS is the span's duration in microseconds.
	DurUS int64     `json:"dur_us"`
	Attrs []ReqAttr `json:"attrs,omitempty"`
}

// ReqTraceSnapshot is one completed request trace: the root identity plus
// the flat span waterfall, ordered as recorded.
type ReqTraceSnapshot struct {
	// TraceID is the 128-bit W3C trace id as 32 lowercase hex digits.
	TraceID string `json:"trace_id"`
	// ParentSpanID is the caller's span id (16 hex digits) when the trace
	// was joined from an incoming traceparent header; empty for fresh
	// roots minted by this process.
	ParentSpanID string `json:"parent_span_id,omitempty"`
	Name         string `json:"name"`
	Tenant       string `json:"tenant,omitempty"`
	StartUnixUS  int64  `json:"start_us"`
	// DurMS is the root duration in milliseconds: first span start to the
	// last observed span end (for ingest, the last verdict of the batch).
	DurMS float64 `json:"dur_ms"`
	Error string  `json:"error,omitempty"`
	// KeepReason is why the tail sampler protects this trace from
	// eviction ("slow", "error", "alarm", ...); empty for traces retained
	// only by head sampling, which evict first under memory pressure.
	KeepReason string `json:"keep_reason,omitempty"`
	// DroppedSpans counts spans discarded past the per-trace cap.
	DroppedSpans int       `json:"dropped_spans,omitempty"`
	Spans        []ReqSpan `json:"spans"`
}

// ReqTraceSummary is the list-endpoint view of a retained trace: identity
// and headline numbers without the span payload.
type ReqTraceSummary struct {
	TraceID     string  `json:"trace_id"`
	Name        string  `json:"name"`
	Tenant      string  `json:"tenant,omitempty"`
	StartUnixUS int64   `json:"start_us"`
	DurMS       float64 `json:"dur_ms"`
	Error       string  `json:"error,omitempty"`
	KeepReason  string  `json:"keep_reason,omitempty"`
	Spans       int     `json:"spans"`
}

// ReqTraceFilter selects traces for ReqTracer.List. Zero values match
// everything.
type ReqTraceFilter struct {
	Tenant    string
	MinDurMS  float64
	ErrorOnly bool
	// Limit caps the number of returned summaries (newest first);
	// <= 0 means no cap.
	Limit int
}

// ReqTraceStats summarizes the tracer's lifetime activity and current
// ring occupancy.
type ReqTraceStats struct {
	Started  int64 `json:"started"`
	Retained int64 `json:"retained"`
	Evicted  int64 `json:"evicted"`
	Traces   int   `json:"traces"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// ReqTracerConfig configures sampling and retention. The zero value is
// usable: no head sampling (only explicitly-sampled traceparents record),
// 100 ms slow threshold, 4 MiB ring.
type ReqTracerConfig struct {
	// HeadRatio is the default per-request head-sampling probability in
	// [0,1] for requests that arrive without a sampled traceparent.
	HeadRatio float64
	// TenantRatio overrides HeadRatio per tenant id.
	TenantRatio map[string]float64
	// SlowThreshold marks a completed trace as tail-kept ("slow") when
	// its root duration reaches it. 0 means the 100 ms default; negative
	// disables the slow rule.
	SlowThreshold time.Duration
	// MaxBytes bounds the estimated retained bytes (default 4 MiB).
	MaxBytes int64
	// MaxTraces bounds the retained trace count (default 1024).
	MaxTraces int
	// MaxSpans bounds spans per trace (default 256); excess spans are
	// counted in DroppedSpans rather than stored.
	MaxSpans int
	// Registry receives the reqtrace.* metrics when non-nil.
	Registry *Registry
}

// ReqTracer records request-scoped traces into a bounded drop-oldest
// ring. Sampling is two-layered: a cheap head decision at request entry
// (explicit W3C sampled flag, else a per-tenant coin flip) picks which
// requests record spans at all, and tail keep rules — slow, errored, or
// explicitly kept (alarm-coincident) — decide which completed traces the
// ring protects when evicting to stay inside its byte budget.
//
// All methods are nil-safe: a nil *ReqTracer samples nothing, so callers
// thread it unconditionally and the untraced hot path stays branch-cheap
// and allocation-free.
type ReqTracer struct {
	slowNS    int64
	defThresh uint64            // head-sample threshold in [0, MaxUint64]
	tenThresh map[string]uint64 // per-tenant overrides
	maxBytes  int64
	maxTraces int
	maxSpans  int

	mu    sync.Mutex
	ring  []*ringEntry // oldest first
	bytes int64

	started  atomic.Int64
	retained atomic.Int64
	evicted  atomic.Int64

	cStarted  *Counter
	cRetained *Counter
	cEvicted  *Counter
	gBytes    *Gauge
}

type ringEntry struct {
	snap  ReqTraceSnapshot
	bytes int64
	kept  bool
}

// NewReqTracer builds a tracer from cfg (see ReqTracerConfig for the
// zero-value defaults).
func NewReqTracer(cfg ReqTracerConfig) *ReqTracer {
	rt := &ReqTracer{
		slowNS:    int64(cfg.SlowThreshold),
		defThresh: headThreshold(cfg.HeadRatio),
		maxBytes:  cfg.MaxBytes,
		maxTraces: cfg.MaxTraces,
		maxSpans:  cfg.MaxSpans,
	}
	if rt.slowNS == 0 {
		rt.slowNS = int64(100 * time.Millisecond)
	}
	if rt.maxBytes <= 0 {
		rt.maxBytes = 4 << 20
	}
	if rt.maxTraces <= 0 {
		rt.maxTraces = 1024
	}
	if rt.maxSpans <= 0 {
		rt.maxSpans = 256
	}
	if len(cfg.TenantRatio) > 0 {
		rt.tenThresh = make(map[string]uint64, len(cfg.TenantRatio))
		for t, r := range cfg.TenantRatio {
			rt.tenThresh[t] = headThreshold(r)
		}
	}
	if cfg.Registry != nil {
		rt.cStarted = cfg.Registry.Counter(ReqTraceStartedMetric)
		rt.cRetained = cfg.Registry.Counter(ReqTraceRetainedMetric)
		rt.cEvicted = cfg.Registry.Counter(ReqTraceEvictedMetric)
		rt.gBytes = cfg.Registry.Gauge(ReqTraceBytesMetric)
	}
	return rt
}

// headThreshold maps a probability onto the uint64 comparison threshold
// used against the id generator's uniform output.
func headThreshold(ratio float64) uint64 {
	if ratio <= 0 {
		return 0
	}
	if ratio >= 1 {
		return ^uint64(0)
	}
	return uint64(ratio * float64(1<<63) * 2)
}

// Sample makes the head-sampling decision for one incoming request and,
// when it records, opens the root trace. tc is the parsed traceparent
// (zero value when the request carried none): a valid sampled context
// always records and joins the caller's trace id; otherwise the
// per-tenant head ratio decides on a fresh root. Returns nil when the
// request is not recorded — every ActiveTrace method is nil-safe, so the
// caller threads the pointer through unconditionally.
func (rt *ReqTracer) Sample(tc TraceContext, name, tenant string, startNS int64) *ActiveTrace {
	if rt == nil {
		return nil
	}
	join := tc.Valid()
	record := join && tc.Sampled()
	if !record {
		th := rt.defThresh
		if rt.tenThresh != nil {
			if t, ok := rt.tenThresh[tenant]; ok {
				th = t
			}
		}
		record = th != 0 && nextID() <= th
	}
	if !record {
		return nil
	}
	at := &ActiveTrace{tracer: rt, name: name, tenant: tenant, startNS: startNS, endNS: startNS}
	if join {
		at.tc = TraceContext{TraceHi: tc.TraceHi, TraceLo: tc.TraceLo,
			Span: nextID(), Flags: tc.Flags | FlagSampled}
		at.parent = tc.Span
	} else {
		at.tc = NewTraceContext()
	}
	at.id = at.tc.TraceID()
	rt.started.Add(1)
	rt.cStarted.Inc()
	return at
}

// Get returns the retained trace with the given 32-hex id.
func (rt *ReqTracer) Get(id string) (ReqTraceSnapshot, bool) {
	if rt == nil {
		return ReqTraceSnapshot{}, false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i := len(rt.ring) - 1; i >= 0; i-- {
		if rt.ring[i].snap.TraceID == id {
			return rt.ring[i].snap, true
		}
	}
	return ReqTraceSnapshot{}, false
}

// List returns summaries of retained traces matching f, newest first.
func (rt *ReqTracer) List(f ReqTraceFilter) []ReqTraceSummary {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]ReqTraceSummary, 0, len(rt.ring))
	for i := len(rt.ring) - 1; i >= 0; i-- {
		s := &rt.ring[i].snap
		if f.Tenant != "" && s.Tenant != f.Tenant {
			continue
		}
		if s.DurMS < f.MinDurMS {
			continue
		}
		if f.ErrorOnly && s.Error == "" {
			continue
		}
		out = append(out, ReqTraceSummary{
			TraceID:     s.TraceID,
			Name:        s.Name,
			Tenant:      s.Tenant,
			StartUnixUS: s.StartUnixUS,
			DurMS:       s.DurMS,
			Error:       s.Error,
			KeepReason:  s.KeepReason,
			Spans:       len(s.Spans),
		})
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// LastKept returns the most recently retained trace whose KeepReason
// matches reason (any tail-kept trace when reason is empty) — the hook
// the flight recorder uses to embed the trace that coincided with an
// alarm in its incident dump.
func (rt *ReqTracer) LastKept(reason string) (ReqTraceSnapshot, bool) {
	if rt == nil {
		return ReqTraceSnapshot{}, false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i := len(rt.ring) - 1; i >= 0; i-- {
		s := &rt.ring[i].snap
		if s.KeepReason == "" {
			continue
		}
		if reason == "" || s.KeepReason == reason {
			return *s, true
		}
	}
	return ReqTraceSnapshot{}, false
}

// Stats reports lifetime counters and current ring occupancy.
func (rt *ReqTracer) Stats() ReqTraceStats {
	if rt == nil {
		return ReqTraceStats{}
	}
	rt.mu.Lock()
	traces, bytes := len(rt.ring), rt.bytes
	rt.mu.Unlock()
	return ReqTraceStats{
		Started:  rt.started.Load(),
		Retained: rt.retained.Load(),
		Evicted:  rt.evicted.Load(),
		Traces:   traces,
		Bytes:    bytes,
		MaxBytes: rt.maxBytes,
	}
}

// retain commits one completed trace, evicting oldest traces — non-kept
// before tail-kept — until the ring fits its count and byte budgets.
func (rt *ReqTracer) retain(snap ReqTraceSnapshot, kept bool) {
	e := &ringEntry{snap: snap, kept: kept, bytes: estimateTraceBytes(&snap)}
	rt.mu.Lock()
	rt.ring = append(rt.ring, e)
	rt.bytes += e.bytes
	var evicted int64
	for len(rt.ring) > 1 && (rt.bytes > rt.maxBytes || len(rt.ring) > rt.maxTraces) {
		drop := -1
		for i, r := range rt.ring {
			if !r.kept {
				drop = i
				break
			}
		}
		if drop < 0 {
			drop = 0 // every retained trace is tail-kept: sacrifice the oldest
		}
		rt.bytes -= rt.ring[drop].bytes
		rt.ring = append(rt.ring[:drop], rt.ring[drop+1:]...)
		evicted++
	}
	bytes := rt.bytes
	rt.mu.Unlock()
	rt.retained.Add(1)
	rt.cRetained.Inc()
	if evicted > 0 {
		rt.evicted.Add(evicted)
		rt.cEvicted.Add(evicted)
	}
	rt.gBytes.Set(float64(bytes))
}

// estimateTraceBytes approximates a snapshot's retained footprint for the
// ring budget: struct headers plus string payloads.
func estimateTraceBytes(s *ReqTraceSnapshot) int64 {
	n := 160 + len(s.TraceID) + len(s.ParentSpanID) + len(s.Name) +
		len(s.Tenant) + len(s.Error) + len(s.KeepReason)
	for i := range s.Spans {
		n += 56 + len(s.Spans[i].Name)
		for j := range s.Spans[i].Attrs {
			n += 32 + len(s.Spans[i].Attrs[j].Key)
		}
	}
	return int64(n)
}

// ActiveTrace is one in-flight request trace. The HTTP layer creates it
// via ReqTracer.Sample, stages append spans as they complete, and the
// trace commits to the ring once both the request handler has released it
// (End) and every enqueued window has reported its verdict
// (FinishPending). All methods are safe for concurrent use from the
// accept and drain goroutines and are nil-safe, so untraced requests pay
// only a nil check.
type ActiveTrace struct {
	tracer *ReqTracer
	tc     TraceContext
	parent uint64
	id     string

	mu           sync.Mutex
	name         string
	tenant       string
	startNS      int64
	endNS        int64 // max span end observed
	pending      int64
	released     bool
	committed    bool
	errMsg       string
	keep         string
	spans        []ReqSpan
	droppedSpans int
}

// Context returns the trace's outgoing context (fresh root span id, same
// trace id as the caller when joined) for response headers.
func (at *ActiveTrace) Context() TraceContext {
	if at == nil {
		return TraceContext{}
	}
	return at.tc
}

// TraceID returns the 32-hex trace id ("" for nil).
func (at *ActiveTrace) TraceID() string {
	if at == nil {
		return ""
	}
	return at.id
}

// AddSpan records one completed stage [startNS, endNS] (unix nanos) with
// optional attributes. Spans past the per-trace cap are counted, not
// stored.
func (at *ActiveTrace) AddSpan(name string, startNS, endNS int64, attrs ...ReqAttr) {
	if at == nil {
		return
	}
	at.mu.Lock()
	if endNS > at.endNS {
		at.endNS = endNS
	}
	if len(at.spans) >= at.tracer.maxSpans {
		at.droppedSpans++
		at.mu.Unlock()
		return
	}
	at.spans = append(at.spans, ReqSpan{
		Name:        name,
		StartUnixUS: startNS / 1e3,
		DurUS:       (endNS - startNS) / 1e3,
		Attrs:       attrs,
	})
	at.mu.Unlock()
}

// SetError marks the trace errored (tail rule: errored traces are kept).
// The first message wins.
func (at *ActiveTrace) SetError(msg string) {
	if at == nil {
		return
	}
	at.mu.Lock()
	if at.errMsg == "" {
		at.errMsg = msg
	}
	at.mu.Unlock()
}

// Keep pins the trace against eviction with the given reason (e.g.
// "alarm" when a verdict inside it tripped the online detector). The
// first reason wins; later slow/error rules do not override it.
func (at *ActiveTrace) Keep(reason string) {
	if at == nil {
		return
	}
	at.mu.Lock()
	if at.keep == "" {
		at.keep = reason
	}
	at.mu.Unlock()
}

// AddPending registers n asynchronous completions (enqueued windows) the
// trace must wait for before committing.
func (at *ActiveTrace) AddPending(n int) {
	if at == nil || n <= 0 {
		return
	}
	at.mu.Lock()
	at.pending += int64(n)
	at.mu.Unlock()
}

// FinishPending reports n completions observed at endNS (unix nanos). The
// trace commits when the handler has released it and the pending count
// reaches zero.
func (at *ActiveTrace) FinishPending(n int, endNS int64) {
	if at == nil || n <= 0 {
		return
	}
	at.mu.Lock()
	at.pending -= int64(n)
	if endNS > at.endNS {
		at.endNS = endNS
	}
	at.commitLocked()
	at.mu.Unlock()
}

// End releases the trace from the request handler at endNS (unix nanos).
// With no pending windows it commits immediately; otherwise the last
// FinishPending commits.
func (at *ActiveTrace) End(endNS int64) {
	if at == nil {
		return
	}
	at.mu.Lock()
	at.released = true
	if endNS > at.endNS {
		at.endNS = endNS
	}
	at.commitLocked()
	at.mu.Unlock()
}

// commitLocked freezes and retains the trace once released with nothing
// pending. Caller holds at.mu.
func (at *ActiveTrace) commitLocked() {
	if at.committed || !at.released || at.pending > 0 {
		return
	}
	at.committed = true
	durNS := at.endNS - at.startNS
	keep := at.keep
	if keep == "" && at.errMsg != "" {
		keep = "error"
	}
	if keep == "" && at.tracer.slowNS > 0 && durNS >= at.tracer.slowNS {
		keep = "slow"
	}
	snap := ReqTraceSnapshot{
		TraceID:      at.id,
		Name:         at.name,
		Tenant:       at.tenant,
		StartUnixUS:  at.startNS / 1e3,
		DurMS:        roundMS(time.Duration(durNS)),
		Error:        at.errMsg,
		KeepReason:   keep,
		DroppedSpans: at.droppedSpans,
		Spans:        at.spans,
	}
	if at.parent != 0 {
		var b [16]byte
		putHex(b[:], at.parent)
		snap.ParentSpanID = string(b[:])
	}
	at.tracer.retain(snap, keep != "")
}

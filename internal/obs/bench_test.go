package obs

import (
	"io"
	"testing"
)

// BenchmarkNopLogger proves the disabled-logger hot path is free: the
// instrumented per-window simulation loop must cost nothing when no
// logger is installed. The acceptance bar is 0 allocs/op.
func BenchmarkNopLogger(b *testing.B) {
	l := Nop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Debug("window simulated", "window", 12, "slices", 10, "class", "rootkit")
	}
}

// BenchmarkLevelFilteredLogger is the same bar for an installed logger
// whose level filters the record out.
func BenchmarkLevelFilteredLogger(b *testing.B) {
	l := New(io.Discard, LevelInfo, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Debug("window simulated", "window", 12, "slices", 10, "class", "rootkit")
	}
}

func BenchmarkTextLogger(b *testing.B) {
	l := New(io.Discard, LevelDebug, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Debug("window simulated", "window", 12, "slices", 10, "class", "rootkit")
	}
}

func BenchmarkJSONLogger(b *testing.B) {
	l := New(io.Discard, LevelDebug, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Debug("window simulated", "window", 12, "slices", 10, "class", "rootkit")
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkBusPublishUnsubscribed is the event-bus twin of the nop-logger
// bar: publishing detection events with no stream attached must cost
// nothing (0 allocs/op), so online monitoring can publish every window.
func BenchmarkBusPublishUnsubscribed(b *testing.B) {
	bus := NewBus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(Event{Type: "window", Sample: "rootkit_001", Class: "rootkit", Window: i, Value: 1})
	}
}

// BenchmarkBusPublishSubscribed is the attached-stream cost: one
// subscriber with a draining reader.
func BenchmarkBusPublishSubscribed(b *testing.B) {
	bus := NewBus()
	sub := bus.Subscribe(1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.Events() {
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(Event{Type: "window", Window: i, Value: 1})
	}
	b.StopTimer()
	sub.Close()
	<-done
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench", TimeBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 0.001)
	}
}

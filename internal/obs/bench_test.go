package obs

import (
	"io"
	"testing"
)

// BenchmarkNopLogger proves the disabled-logger hot path is free: the
// instrumented per-window simulation loop must cost nothing when no
// logger is installed. The acceptance bar is 0 allocs/op.
func BenchmarkNopLogger(b *testing.B) {
	l := Nop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Debug("window simulated", "window", 12, "slices", 10, "class", "rootkit")
	}
}

// BenchmarkLevelFilteredLogger is the same bar for an installed logger
// whose level filters the record out.
func BenchmarkLevelFilteredLogger(b *testing.B) {
	l := New(io.Discard, LevelInfo, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Debug("window simulated", "window", 12, "slices", 10, "class", "rootkit")
	}
}

func BenchmarkTextLogger(b *testing.B) {
	l := New(io.Discard, LevelDebug, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Debug("window simulated", "window", 12, "slices", 10, "class", "rootkit")
	}
}

func BenchmarkJSONLogger(b *testing.B) {
	l := New(io.Discard, LevelDebug, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Debug("window simulated", "window", 12, "slices", 10, "class", "rootkit")
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench", TimeBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 0.001)
	}
}

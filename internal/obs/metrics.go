package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and safe on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric. All methods are safe for concurrent
// use and safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds delta to the gauge (compare-and-swap loop), so
// concurrent workers can publish a live level — e.g. busy worker counts.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Bucket i counts observations
// v <= Bounds[i] (and greater than the previous bound); one implicit
// overflow bucket counts everything above the last bound.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1, last = overflow
	count  int64
	sum    float64
	min    float64
	max    float64
	// exemplars holds the most recent trace-linked observation per bucket
	// (len(bounds)+1); allocated lazily on the first ObserveExemplar so
	// plain histograms pay nothing.
	exemplars []Exemplar
}

// Exemplar links one recorded observation to the trace that produced it,
// in the OpenMetrics sense: scraping `/metrics` with an OpenMetrics
// Accept header renders it as `# {trace_id="..."} value timestamp` after
// the matching bucket line, letting dashboards jump from a latency
// histogram straight to the trace waterfall.
type Exemplar struct {
	// Bucket indexes the histogram bucket the observation landed in
	// (len(Buckets) = the +Inf overflow bucket).
	Bucket     int     `json:"bucket"`
	Value      float64 `json:"value"`
	TraceID    string  `json:"trace_id"`
	TimeUnixMS int64   `json:"time_unix_ms"`
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64{}, bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// ObserveExemplar records one value like Observe and additionally stamps
// it as the bucket's current exemplar, linking the observation to the
// trace that produced it. nowUnixMS is the observation's wall-clock
// timestamp (passed in so hot paths reuse an already-taken timestamp).
// Only call this on traced observations: the exemplar slot table is
// allocated on first use and each call retains the trace id string.
func (h *Histogram) ObserveExemplar(v float64, traceID string, nowUnixMS int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.exemplars == nil {
		h.exemplars = make([]Exemplar, len(h.bounds)+1)
	}
	h.exemplars[i] = Exemplar{Bucket: i, Value: v, TraceID: traceID, TimeUnixMS: nowUnixMS}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Buckets: append([]float64{}, h.bounds...),
		Counts:  append([]int64{}, h.counts...),
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
	}
	for _, e := range h.exemplars {
		if e.TraceID != "" {
			s.Exemplars = append(s.Exemplars, e)
		}
	}
	return s
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls ignore buckets).
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(buckets)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric while keeping the metric objects
// alive, so packages that cached instrument pointers at init keep
// recording into the registry after a per-run reset.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.mu.Lock()
		for i := range h.counts {
			h.counts[i] = 0
		}
		h.count, h.sum, h.min, h.max = 0, 0, 0, 0
		h.exemplars = nil
		h.mu.Unlock()
	}
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	// Buckets holds the upper bounds; Counts has one extra entry for the
	// overflow bucket.
	Buckets []float64 `json:"buckets"`
	Counts  []int64   `json:"counts"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	// Exemplars holds at most one trace-linked observation per bucket,
	// in bucket order; omitted entirely for histograms that never saw
	// ObserveExemplar, keeping pre-exemplar snapshot JSON byte-stable.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within buckets, clamped to the observed [Min, Max]. Returns NaN when the
// histogram is empty.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lo := h.Min
			if i > 0 {
				lo = math.Max(h.Buckets[i-1], h.Min)
			}
			hi := h.Max
			if i < len(h.Buckets) {
				hi = math.Min(h.Buckets[i], h.Max)
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.Max
}

// Snapshot is the frozen state of a registry. Maps serialize with sorted
// keys under encoding/json, so snapshots of the same run are byte-stable.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]struct {
		name string
		c    *Counter
	}, 0, len(r.counters))
	for n, c := range r.counters {
		counters = append(counters, struct {
			name string
			c    *Counter
		}{n, c})
	}
	gauges := make([]struct {
		name string
		g    *Gauge
	}, 0, len(r.gauges))
	for n, g := range r.gauges {
		gauges = append(gauges, struct {
			name string
			g    *Gauge
		}{n, g})
	}
	hists := make([]struct {
		name string
		h    *Histogram
	}, 0, len(r.hists))
	for n, h := range r.hists {
		hists = append(hists, struct {
			name string
			h    *Histogram
		}{n, h})
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for _, e := range counters {
		s.Counters[e.name] = e.c.Value()
	}
	for _, e := range gauges {
		s.Gauges[e.name] = e.g.Value()
	}
	for _, e := range hists {
		s.Histograms[e.name] = e.h.snapshot()
	}
	return s
}

// RunSnapshot bundles a metrics snapshot with the span timing tree — the
// payload behind the CLI's -metrics-out flag.
type RunSnapshot struct {
	Snapshot
	Spans []SpanSnapshot `json:"spans,omitempty"`
}

// CaptureRun snapshots the default registry and tracer.
func CaptureRun() RunSnapshot {
	return RunSnapshot{
		Snapshot: DefaultRegistry.Snapshot(),
		Spans:    DefaultTracer.Snapshot(),
	}
}

// WriteRunSnapshot writes CaptureRun() to w as indented JSON.
func WriteRunSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(CaptureRun())
}

package obs

import (
	"testing"
	"time"
)

// endTrace finishes a trace whose root ran [startNS, endNS].
func endTrace(at *ActiveTrace, endNS int64) { at.End(endNS) }

func TestReqTracerHeadSampling(t *testing.T) {
	// Ratio 0: only explicitly-sampled traceparents record.
	rt := NewReqTracer(ReqTracerConfig{})
	if at := rt.Sample(TraceContext{}, "ingest", "acme", 0); at != nil {
		t.Fatal("ratio 0 sampled a request without a traceparent")
	}
	unsampled := TraceContext{TraceHi: 1, TraceLo: 2, Span: 3}
	if at := rt.Sample(unsampled, "ingest", "acme", 0); at != nil {
		t.Fatal("ratio 0 sampled an unsampled traceparent")
	}
	caller := NewTraceContext()
	at := rt.Sample(caller, "ingest", "acme", 0)
	if at == nil {
		t.Fatal("sampled traceparent not recorded")
	}
	// Joining keeps the caller's trace id but mints a fresh span id.
	if at.TraceID() != caller.TraceID() {
		t.Fatalf("joined trace id %s != caller %s", at.TraceID(), caller.TraceID())
	}
	if at.Context().Span == caller.Span || at.Context().Span == 0 {
		t.Fatalf("joined span id %x not fresh (caller %x)", at.Context().Span, caller.Span)
	}
	endTrace(at, int64(time.Millisecond))
	snap, ok := rt.Get(caller.TraceID())
	if !ok {
		t.Fatal("committed trace not retained")
	}
	// The caller's span becomes the parent, so the two sides join.
	if snap.ParentSpanID == "" {
		t.Fatal("joined trace lost its parent span id")
	}

	// Ratio 1: every request records a fresh root.
	all := NewReqTracer(ReqTracerConfig{HeadRatio: 1})
	for i := 0; i < 32; i++ {
		if all.Sample(TraceContext{}, "ingest", "acme", 0) == nil {
			t.Fatal("ratio 1 skipped a request")
		}
	}

	// Per-tenant override beats the default.
	per := NewReqTracer(ReqTracerConfig{HeadRatio: 1,
		TenantRatio: map[string]float64{"quiet": 0}})
	if per.Sample(TraceContext{}, "ingest", "quiet", 0) != nil {
		t.Fatal("tenant override ratio 0 still sampled")
	}
	if per.Sample(TraceContext{}, "ingest", "loud", 0) == nil {
		t.Fatal("non-overridden tenant lost the default ratio")
	}
}

func TestReqTracerTailKeepRules(t *testing.T) {
	rt := NewReqTracer(ReqTracerConfig{HeadRatio: 1, SlowThreshold: 10 * time.Millisecond})

	fast := rt.Sample(TraceContext{}, "ingest", "a", 0)
	endTrace(fast, int64(time.Millisecond))

	slow := rt.Sample(TraceContext{}, "ingest", "b", 0)
	endTrace(slow, int64(50*time.Millisecond))

	errored := rt.Sample(TraceContext{}, "ingest", "c", 0)
	errored.SetError("queue full")
	endTrace(errored, int64(time.Millisecond))

	alarm := rt.Sample(TraceContext{}, "ingest", "d", 0)
	alarm.Keep("alarm")
	alarm.SetError("also failed") // explicit keep wins over the error rule
	endTrace(alarm, int64(time.Millisecond))

	want := map[string]string{
		fast.TraceID():    "",
		slow.TraceID():    "slow",
		errored.TraceID(): "error",
		alarm.TraceID():   "alarm",
	}
	for id, reason := range want {
		snap, ok := rt.Get(id)
		if !ok {
			t.Fatalf("trace %s not retained", id)
		}
		if snap.KeepReason != reason {
			t.Errorf("trace %s keep reason = %q, want %q", id, snap.KeepReason, reason)
		}
	}
	if snap, ok := rt.LastKept("alarm"); !ok || snap.TraceID != alarm.TraceID() {
		t.Fatalf("LastKept(alarm) = %+v, %v", snap, ok)
	}
	if _, ok := rt.LastKept(""); !ok {
		t.Fatal("LastKept(any) found nothing despite three kept traces")
	}

	// A negative threshold disables the slow rule entirely.
	noSlow := NewReqTracer(ReqTracerConfig{HeadRatio: 1, SlowThreshold: -1})
	at := noSlow.Sample(TraceContext{}, "ingest", "a", 0)
	endTrace(at, int64(time.Hour))
	if snap, _ := noSlow.Get(at.TraceID()); snap.KeepReason != "" {
		t.Fatalf("disabled slow rule still kept: %q", snap.KeepReason)
	}
}

func TestReqTracerPendingProtocol(t *testing.T) {
	rt := NewReqTracer(ReqTracerConfig{HeadRatio: 1})
	at := rt.Sample(TraceContext{}, "ingest", "acme", 0)
	at.AddPending(3)
	at.End(int64(time.Millisecond)) // handler returned; verdicts still owed
	if _, ok := rt.Get(at.TraceID()); ok {
		t.Fatal("trace committed with pending windows")
	}
	at.FinishPending(2, int64(2*time.Millisecond))
	if _, ok := rt.Get(at.TraceID()); ok {
		t.Fatal("trace committed with one window still pending")
	}
	at.FinishPending(1, int64(200*time.Millisecond))
	snap, ok := rt.Get(at.TraceID())
	if !ok {
		t.Fatal("trace did not commit after the last verdict")
	}
	// Duration extends to the last verdict, not the HTTP return.
	if snap.DurMS < 199 {
		t.Fatalf("DurMS = %v, want >= the last verdict at 200ms", snap.DurMS)
	}
	if snap.KeepReason != "slow" {
		t.Fatalf("keep reason = %q, want slow (default 100ms threshold)", snap.KeepReason)
	}
}

func TestReqTracerEviction(t *testing.T) {
	reg := NewRegistry()
	rt := NewReqTracer(ReqTracerConfig{HeadRatio: 1, MaxTraces: 4, Registry: reg})
	var keptID string
	for i := 0; i < 12; i++ {
		at := rt.Sample(TraceContext{}, "ingest", "acme", 0)
		if i == 0 {
			at.Keep("alarm")
			keptID = at.TraceID()
		}
		at.AddSpan("stage", 0, int64(time.Millisecond))
		endTrace(at, int64(time.Millisecond))
	}
	st := rt.Stats()
	if st.Traces > 4 {
		t.Fatalf("ring holds %d traces, cap 4", st.Traces)
	}
	if st.Evicted != 8 {
		t.Fatalf("evicted = %d, want 8", st.Evicted)
	}
	if st.Started != 12 || st.Retained != 12 {
		t.Fatalf("stats = %+v", st)
	}
	// The tail-kept trace survives while unprotected newer ones evict.
	if _, ok := rt.Get(keptID); !ok {
		t.Fatal("tail-kept trace was evicted before unkept ones")
	}
	if got := reg.Snapshot().Counters[ReqTraceEvictedMetric]; got != 8 {
		t.Fatalf("%s = %v, want 8", ReqTraceEvictedMetric, got)
	}

	// Byte budget alone also bounds the ring.
	small := NewReqTracer(ReqTracerConfig{HeadRatio: 1, MaxBytes: 2048})
	for i := 0; i < 256; i++ {
		at := small.Sample(TraceContext{}, "ingest", "acme", 0)
		for j := 0; j < 8; j++ {
			at.AddSpan("stage", 0, 1, ReqAttr{Key: "windows", Value: 1})
		}
		endTrace(at, 1)
	}
	if st := small.Stats(); st.Bytes > st.MaxBytes || st.Evicted == 0 {
		t.Fatalf("byte budget not enforced: %+v", st)
	}
}

func TestReqTracerSpanCapAndList(t *testing.T) {
	rt := NewReqTracer(ReqTracerConfig{HeadRatio: 1, MaxSpans: 4})
	at := rt.Sample(TraceContext{}, "ingest", "acme", 0)
	for i := 0; i < 10; i++ {
		at.AddSpan("stage", 0, 1)
	}
	at.SetError("boom")
	endTrace(at, int64(time.Millisecond))
	snap, _ := rt.Get(at.TraceID())
	if len(snap.Spans) != 4 || snap.DroppedSpans != 6 {
		t.Fatalf("spans = %d dropped = %d, want 4/6", len(snap.Spans), snap.DroppedSpans)
	}

	other := rt.Sample(TraceContext{}, "replay", "beta", 0)
	endTrace(other, int64(time.Second))

	if l := rt.List(ReqTraceFilter{Tenant: "acme"}); len(l) != 1 || l[0].Tenant != "acme" {
		t.Fatalf("tenant filter: %+v", l)
	}
	if l := rt.List(ReqTraceFilter{ErrorOnly: true}); len(l) != 1 || l[0].Error == "" {
		t.Fatalf("error filter: %+v", l)
	}
	if l := rt.List(ReqTraceFilter{MinDurMS: 500}); len(l) != 1 || l[0].Tenant != "beta" {
		t.Fatalf("duration filter: %+v", l)
	}
	if l := rt.List(ReqTraceFilter{Limit: 1}); len(l) != 1 || l[0].Tenant != "beta" {
		t.Fatalf("limit should keep the newest: %+v", l)
	}
}

// TestReqTracerNilSafe pins the contract the ingest hot path relies on:
// a nil tracer and a nil active trace absorb every call without
// allocating or panicking.
func TestReqTracerNilSafe(t *testing.T) {
	var rt *ReqTracer
	at := rt.Sample(NewTraceContext(), "ingest", "acme", 0)
	if at != nil {
		t.Fatal("nil tracer sampled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		at.AddSpan("x", 0, 1)
		at.AddPending(1)
		at.FinishPending(1, 1)
		at.SetError("x")
		at.Keep("x")
		at.End(1)
		_ = at.TraceID()
		_ = at.Context()
	})
	if allocs != 0 {
		t.Fatalf("nil ActiveTrace allocated %v per run", allocs)
	}
	if _, ok := rt.Get("x"); ok {
		t.Fatal("nil tracer returned a trace")
	}
	if rt.List(ReqTraceFilter{}) != nil || rt.Stats() != (ReqTraceStats{}) {
		t.Fatal("nil tracer returned data")
	}
}

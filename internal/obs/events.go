package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one detection-pipeline occurrence — an online-detector alarm,
// a window classification, an experiment stage completing — published to
// a Bus and streamed live over the telemetry server's /events endpoint.
//
// The struct is flat (no maps, no pointers) so that constructing one on
// the publisher's stack costs nothing: Publish on a bus with no
// subscribers is a single atomic load and zero allocations, which keeps
// the per-window monitoring loop free when nobody is watching.
type Event struct {
	// TimeUnixMS is stamped by Publish (milliseconds since the epoch).
	TimeUnixMS int64 `json:"t_ms"`
	// Type names the event kind ("alarm", "window", "stage", ...).
	Type string `json:"type"`
	// Sample is the monitored application sample, when applicable.
	Sample string `json:"sample,omitempty"`
	// Class is the sample's workload class, when applicable.
	Class string `json:"class,omitempty"`
	// Window is the 0-based sampling-window index, when applicable.
	Window int `json:"window,omitempty"`
	// Value carries the event's headline number (per-window verdict,
	// alarm latency in seconds, stage completion fraction, ...).
	Value float64 `json:"value,omitempty"`
	// Msg is free-form detail.
	Msg string `json:"msg,omitempty"`
}

// Bus is a bounded, drop-oldest event fan-out. Publishers never block:
// when a subscriber's buffer is full its oldest undelivered event is
// discarded (and counted) to make room for the new one, so a slow or
// stalled stream consumer can never stall the detection pipeline.
//
// All methods are safe for concurrent use and safe on a nil receiver.
type Bus struct {
	mu   sync.Mutex
	subs []*Subscription
	// nsubs mirrors len(subs) so Publish can bail without the lock.
	nsubs     atomic.Int32
	published atomic.Int64
	dropped   atomic.Int64

	// Registry mirrors installed by AttachMetrics (nil until then).
	// Counter and Gauge methods are nil-safe, so Publish needs no check.
	mPublished *Counter
	mDropped   *Counter
	gSubs      *Gauge
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// DefaultBus is the process-wide event bus. The online detector publishes
// alarm and window-classification events here; the telemetry server's
// /events endpoint subscribes to it.
var DefaultBus = NewBus()

func init() {
	// Make the default bus's drop-oldest accounting a first-class metric:
	// scrapers of any exposition of DefaultRegistry see drops instead of
	// losing events invisibly.
	DefaultBus.AttachMetrics(DefaultRegistry)
}

// Registry metric names published by AttachMetrics.
const (
	EventsPublishedMetric   = "obs.events_published"
	EventsDroppedMetric     = "obs.events_dropped"
	EventsSubscribersMetric = "obs.events_subscribers"
)

// AttachMetrics mirrors the bus's delivery accounting into a metrics
// registry: events delivered and events discarded by drop-oldest
// backpressure become counters (per-run, subject to Registry.Reset) and
// the live subscriber count a gauge. DefaultBus is attached to
// DefaultRegistry at init; attaching again (e.g. to a private registry in
// tests) replaces the previous mirror.
func (b *Bus) AttachMetrics(r *Registry) {
	if b == nil || r == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mPublished = r.Counter(EventsPublishedMetric)
	b.mDropped = r.Counter(EventsDroppedMetric)
	b.gSubs = r.Gauge(EventsSubscribersMetric)
	b.gSubs.Set(float64(len(b.subs)))
}

// PublishEvent publishes e on the default bus.
func PublishEvent(e Event) { DefaultBus.Publish(e) }

// Active reports whether the bus currently has any subscriber. Hot paths
// may use it to skip building expensive event payloads, though Publish
// itself is already near-free without subscribers.
func (b *Bus) Active() bool { return b != nil && b.nsubs.Load() > 0 }

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	return int(b.nsubs.Load())
}

// Published returns the number of events delivered to at least one
// subscriber; Dropped the number discarded by drop-oldest backpressure.
func (b *Bus) Published() int64 {
	if b == nil {
		return 0
	}
	return b.published.Load()
}

// Dropped returns the total events discarded across all subscribers.
func (b *Bus) Dropped() int64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Publish stamps e's time and offers it to every subscriber, dropping
// each subscriber's oldest buffered event on overflow. With no
// subscribers it returns immediately without allocating.
func (b *Bus) Publish(e Event) {
	if b == nil || b.nsubs.Load() == 0 {
		return
	}
	if e.TimeUnixMS == 0 {
		e.TimeUnixMS = time.Now().UnixMilli()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) == 0 {
		return
	}
	b.published.Add(1)
	b.mPublished.Inc()
	for _, s := range b.subs {
		for {
			select {
			case s.ch <- e:
			default:
				// Buffer full: discard the oldest and retry. The bus lock
				// excludes other senders, so this terminates.
				select {
				case <-s.ch:
					s.dropped.Add(1)
					b.dropped.Add(1)
					b.mDropped.Inc()
				default:
				}
				continue
			}
			break
		}
	}
}

// Subscribe registers a new subscriber with the given buffer capacity
// (minimum 1; values < 1 get a default of 64). Close the subscription to
// unregister; its channel is closed once unregistered.
func (b *Bus) Subscribe(buffer int) *Subscription {
	if b == nil {
		return nil
	}
	if buffer < 1 {
		buffer = 64
	}
	s := &Subscription{bus: b, ch: make(chan Event, buffer)}
	b.mu.Lock()
	b.subs = append(b.subs, s)
	b.nsubs.Store(int32(len(b.subs)))
	b.gSubs.Set(float64(len(b.subs)))
	b.mu.Unlock()
	return s
}

// Subscription is one bus listener. Receive from Events; Close when done.
type Subscription struct {
	bus     *Bus
	ch      chan Event
	dropped atomic.Int64
	closed  bool
}

// Events returns the subscription's receive channel. It is closed by
// Close (after which Dropped is final).
func (s *Subscription) Events() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped returns how many events this subscriber lost to backpressure.
func (s *Subscription) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close unregisters the subscription and closes its channel. Safe to call
// more than once.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for i, sub := range b.subs {
		if sub == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.nsubs.Store(int32(len(b.subs)))
	b.gSubs.Set(float64(len(b.subs)))
	// Publish sends only under b.mu, so closing here cannot race a send.
	close(s.ch)
}

package obs

import (
	"math"
	"sync"
	"time"
)

// Tracer assembles spans into a per-run timing tree. Spans opened while
// another span is active become its children; spans opened at top level
// become roots. The tracer is mutex-protected, but the nesting model is
// call-stack shaped: open nested spans from the sequential pipeline
// driver, not from worker goroutines (workers should record into
// counters/histograms instead).
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
	stack []*Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span is one timed region of a run. End it exactly once; End is
// idempotent and nil-safe.
type Span struct {
	name   string
	start  time.Time
	dur    time.Duration
	ended  bool
	child  []*Span
	tracer *Tracer
}

// Start opens a span as a child of the innermost active span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{name: name, start: time.Now(), tracer: t}
	if n := len(t.stack); n > 0 {
		top := t.stack[n-1]
		top.child = append(top.child, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.stack = append(t.stack, sp)
	return sp
}

// End closes the span, recording its wall duration, and returns it.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return s.dur
	}
	s.dur = time.Since(s.start)
	s.ended = true
	// Remove s from the active stack wherever it sits, tolerating
	// out-of-order ends.
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
	return s.dur
}

// SpanSnapshot is the frozen form of a span subtree.
type SpanSnapshot struct {
	Name string `json:"name"`
	// WallMS is the span's wall-clock duration in milliseconds. Spans not
	// yet ended report their running duration.
	WallMS   float64        `json:"wall_ms"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot freezes the current span tree.
func (t *Tracer) Snapshot() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return snapshotSpans(t.roots)
}

func snapshotSpans(spans []*Span) []SpanSnapshot {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		d := s.dur
		if !s.ended {
			d = time.Since(s.start)
		}
		out[i] = SpanSnapshot{
			Name:     s.name,
			WallMS:   roundMS(d),
			Children: snapshotSpans(s.child),
		}
	}
	return out
}

// Reset discards all recorded spans and the active stack.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roots, t.stack = nil, nil
}

// roundMS converts a duration to milliseconds with microsecond precision,
// keeping snapshot JSON compact.
func roundMS(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Microsecond)) / 1000
}

package obs

import (
	"math"
	"sync"
	"time"
)

// Tracer assembles spans into a per-run timing tree. Spans opened while
// another span is active become its children; spans opened at top level
// become roots. Every span carries a tracer-unique ID and its parent's ID
// so snapshots can be exported flat (Chrome trace events) as well as
// nested.
//
// The implicit Start nesting is call-stack shaped: open nested spans from
// the sequential pipeline driver. Worker goroutines that want their own
// spans must use Span.Child, which attaches to an explicit parent and
// never touches the shared stack, making it safe to call from any
// goroutine.
// Retention: the tracer keeps at most a bounded number of spans
// (DefaultSpanLimit unless SetLimit overrides it). When a new span would
// exceed the cap, whole ended root subtrees are dropped oldest-first and
// counted — long-running daemons like `hpcmal serve` trace every replay
// round for the life of the process, and unbounded retention was a slow
// leak. Active (un-ended) spans are never dropped.
type Tracer struct {
	mu      sync.Mutex
	roots   []*Span
	stack   []*Span
	lastID  uint64
	size    int // spans currently retained (all subtrees)
	limit   int // 0 = DefaultSpanLimit, <0 = unbounded
	dropped int64
	mDrops  *Counter // optional registry mirror, set via AttachMetrics
}

// DefaultSpanLimit is the default cap on retained spans per tracer.
const DefaultSpanLimit = 8192

// SpansDroppedMetric counts spans evicted from a tracer's retention cap
// (mirrored into a registry by AttachMetrics).
const SpansDroppedMetric = "obs.spans_dropped"

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// SetLimit caps the number of retained spans; n < 0 removes the cap and
// n == 0 restores DefaultSpanLimit.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.limit = n
	t.evictLocked()
	t.mu.Unlock()
}

// Dropped returns the number of spans evicted so far.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// AttachMetrics mirrors the tracer's eviction count into r as the
// obs.spans_dropped counter.
func (t *Tracer) AttachMetrics(r *Registry) {
	if t == nil || r == nil {
		return
	}
	c := r.Counter(SpansDroppedMetric)
	t.mu.Lock()
	t.mDrops = c
	t.mu.Unlock()
	c.Add(t.Dropped())
}

// evictLocked drops the oldest fully-ended root subtrees until the span
// count fits the limit. Roots still running (or with running children on
// the active stack) are skipped: dropping them would orphan live spans.
func (t *Tracer) evictLocked() {
	limit := t.limit
	if limit == 0 {
		limit = DefaultSpanLimit
	}
	if limit < 0 {
		return
	}
	i := 0
	for t.size > limit && i < len(t.roots) {
		if !subtreeEnded(t.roots[i]) {
			i++
			continue
		}
		n := subtreeSize(t.roots[i])
		t.roots = append(t.roots[:i], t.roots[i+1:]...)
		t.size -= n
		t.dropped += int64(n)
		t.mDrops.Add(int64(n))
	}
}

func subtreeEnded(s *Span) bool {
	if !s.ended {
		return false
	}
	for _, c := range s.child {
		if !subtreeEnded(c) {
			return false
		}
	}
	return true
}

func subtreeSize(s *Span) int {
	n := 1
	for _, c := range s.child {
		n += subtreeSize(c)
	}
	return n
}

// Span is one timed region of a run. End it exactly once; End is
// idempotent and nil-safe.
type Span struct {
	name   string
	id     uint64
	parent uint64
	start  time.Time
	dur    time.Duration
	ended  bool
	child  []*Span
	tracer *Tracer
}

// ID returns the span's tracer-unique ID (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Start opens a span as a child of the innermost active span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lastID++
	sp := &Span{name: name, id: t.lastID, start: time.Now(), tracer: t}
	if n := len(t.stack); n > 0 {
		top := t.stack[n-1]
		sp.parent = top.id
		top.child = append(top.child, sp)
	} else {
		t.roots = append(t.roots, sp)
	}
	t.stack = append(t.stack, sp)
	t.size++
	t.evictLocked()
	return sp
}

// Child opens a span as an explicit child of s without consulting or
// joining the tracer's active stack. Unlike Start, Child is safe to call
// from worker goroutines running concurrently with the pipeline driver:
// the parent is named, not inferred, so parallel children can never
// corrupt the nesting.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lastID++
	sp := &Span{name: name, id: t.lastID, parent: s.id, start: time.Now(), tracer: t}
	s.child = append(s.child, sp)
	t.size++
	t.evictLocked()
	return sp
}

// End closes the span, recording its wall duration, and returns it.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return s.dur
	}
	s.dur = time.Since(s.start)
	s.ended = true
	// Remove s from the active stack wherever it sits, tolerating
	// out-of-order ends. Detached children (Span.Child) are never on the
	// stack, so the loop simply misses.
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
	t.evictLocked()
	return s.dur
}

// SpanSnapshot is the frozen form of a span subtree.
type SpanSnapshot struct {
	Name string `json:"name"`
	// ID is the span's tracer-unique ID; ParentID is 0 for roots.
	ID       uint64 `json:"id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	// StartUnixUS is the span's start time, microseconds since the epoch.
	StartUnixUS int64 `json:"start_us"`
	// WallMS is the span's wall-clock duration in milliseconds. Spans not
	// yet ended report their running duration.
	WallMS   float64        `json:"wall_ms"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot freezes the current span tree.
func (t *Tracer) Snapshot() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return snapshotSpans(t.roots)
}

func snapshotSpans(spans []*Span) []SpanSnapshot {
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		d := s.dur
		if !s.ended {
			d = time.Since(s.start)
		}
		out[i] = SpanSnapshot{
			Name:        s.name,
			ID:          s.id,
			ParentID:    s.parent,
			StartUnixUS: s.start.UnixMicro(),
			WallMS:      roundMS(d),
			Children:    snapshotSpans(s.child),
		}
	}
	return out
}

// Reset discards all recorded spans and the active stack.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roots, t.stack, t.lastID, t.size = nil, nil, 0, 0
}

// roundMS converts a duration to milliseconds with microsecond precision,
// keeping snapshot JSON compact.
func roundMS(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Microsecond)) / 1000
}

package obs

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := TraceContext{TraceHi: 0x0123456789abcdef, TraceLo: 0xfedcba9876543210,
		Span: 0x00f067aa0ba902b7, Flags: FlagSampled}
	h := tc.Traceparent()
	if want := "00-0123456789abcdeffedcba9876543210-00f067aa0ba902b7-01"; h != want {
		t.Fatalf("Traceparent() = %q, want %q", h, want)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != tc {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v; want %+v", h, got, ok, tc)
	}
}

func TestNewTraceContext(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		tc := NewTraceContext()
		if !tc.Valid() || !tc.Sampled() {
			t.Fatalf("fresh context invalid or unsampled: %+v", tc)
		}
		id := tc.TraceID()
		if len(id) != 32 {
			t.Fatalf("trace id %q is not 32 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q after %d draws", id, i)
		}
		seen[id] = true
		// Round-trip through the wire form.
		back, ok := ParseTraceparent(tc.Traceparent())
		if !ok || back != tc {
			t.Fatalf("round trip lost %+v (got %+v, ok=%v)", tc, back, ok)
		}
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-0123456789abcdeffedcba9876543210-00f067aa0ba902b7-01"
	cases := []string{
		"",
		"garbage",
		valid[:54],                        // truncated
		strings.ToUpper(valid),            // uppercase hex is invalid per spec
		"ff-0123456789abcdeffedcba9876543210-00f067aa0ba902b7-01", // version ff forbidden
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-0123456789abcdeffedcba9876543210-0000000000000000-01", // zero span id
		"00x0123456789abcdeffedcba9876543210-00f067aa0ba902b7-01", // bad dash
		"00-0123456789abcdeffedcba987654321g-00f067aa0ba902b7-01", // non-hex digit
		valid + "-extra", // version 00 must be exactly 55 bytes
		valid + "x",      // trailing junk without a dash
	}
	for _, c := range cases {
		if tc, ok := ParseTraceparent(c); ok {
			t.Errorf("ParseTraceparent(%q) accepted as %+v, want reject", c, tc)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Higher versions may append fields after the flags; version 00 data
	// must still parse from the known prefix.
	h := "cc-0123456789abcdeffedcba9876543210-00f067aa0ba902b7-01-what-ever"
	tc, ok := ParseTraceparent(h)
	if !ok || !tc.Valid() || !tc.Sampled() {
		t.Fatalf("future-version traceparent rejected: %+v, ok=%v", tc, ok)
	}
}

// FuzzParseTraceparent is the graceful-degradation property behind the
// ingest handler: any header value either parses to a valid context or
// is rejected — no panics, and accepted values survive a re-render
// round trip. Malformed inputs therefore degrade to a fresh root trace
// rather than a 400.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-0123456789abcdeffedcba9876543210-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-more")
	f.Add("")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add(strings.Repeat("0-", 40))
	f.Fuzz(func(t *testing.T, h string) {
		tc, ok := ParseTraceparent(h)
		if !ok {
			if tc != (TraceContext{}) {
				t.Fatalf("rejected input %q returned non-zero context %+v", h, tc)
			}
			return
		}
		if !tc.Valid() {
			t.Fatalf("accepted input %q produced invalid context %+v", h, tc)
		}
		back, ok2 := ParseTraceparent(tc.Traceparent())
		if !ok2 || back != tc {
			t.Fatalf("re-render of %q did not round-trip: %+v vs %+v", h, tc, back)
		}
	})
}

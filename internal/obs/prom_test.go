package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact text exposition: name
// sanitization, the counter `_total` convention, gauge formatting, and
// cumulative histogram buckets ending in +Inf.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("trace.windows_simulated").Add(42)
	r.Counter("online.alarms").Add(3)
	r.Gauge("parallel.online.monitor.workers").Set(8)
	h := r.Histogram("online.alarm_latency_windows", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(100)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE online_alarms_total counter
online_alarms_total 3
# TYPE trace_windows_simulated_total counter
trace_windows_simulated_total 42
# TYPE parallel_online_monitor_workers gauge
parallel_online_monitor_workers 8
# TYPE online_alarm_latency_windows histogram
online_alarm_latency_windows_bucket{le="1"} 1
online_alarm_latency_windows_bucket{le="2"} 2
online_alarm_latency_windows_bucket{le="4"} 3
online_alarm_latency_windows_bucket{le="+Inf"} 4
online_alarm_latency_windows_sum 105
online_alarm_latency_windows_count 4
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"trace.windows_simulated": "trace_windows_simulated",
		"9lives":                  "_lives",
		"a:b-c d9":                "a:b_c_d9",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestQuoteLabel(t *testing.T) {
	cases := map[string]string{
		"":              `""`,
		"v1.2.3":        `"v1.2.3"`,
		`C:\path`:       `"C:\\path"`,
		`say "hi"`:      `"say \"hi\""`,
		"line1\nline2":  `"line1\nline2"`,
		"tab\tand é ok": "\"tab\tand é ok\"", // only \ " \n are escaped
	}
	for in, want := range cases {
		if got := QuoteLabel(in); got != want {
			t.Errorf("QuoteLabel(%q) = %s, want %s", in, got, want)
		}
	}
}

// unquoteLabel reverses QuoteLabel the way a Prometheus text parser
// would, for the fuzz round-trip property below.
func unquoteLabel(t *testing.T, s string) string {
	t.Helper()
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		t.Fatalf("not a quoted label: %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c == '"' {
			t.Fatalf("unescaped quote inside label body of %q", s)
		}
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			t.Fatalf("dangling backslash in %q", s)
		}
		switch body[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			t.Fatalf("invalid escape \\%c in %q", body[i], s)
		}
	}
	return b.String()
}

// FuzzQuoteLabel checks the exposition-format invariants for arbitrary
// label values: the quoted form has no raw newline, every interior quote
// and backslash is escaped, and a Prometheus-style unescape round-trips
// to the original value. Quotes, backslashes and newlines in label
// values (e.g. a VCS revision or a sample name) must never corrupt the
// line-oriented /metrics output.
func FuzzQuoteLabel(f *testing.F) {
	for _, seed := range []string{
		"", "plain", `back\slash`, `"quoted"`, "new\nline", `mix\"ed` + "\n",
		"unicode é 漢", "\x00control", strings.Repeat(`\`, 7), `trailing\`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v string) {
		q := QuoteLabel(v)
		if strings.ContainsRune(q, '\n') {
			t.Fatalf("QuoteLabel(%q) contains a raw newline: %q", v, q)
		}
		if got := unquoteLabel(t, q); got != v {
			t.Fatalf("round trip: QuoteLabel(%q) = %q unescapes to %q", v, q, got)
		}
	})
}

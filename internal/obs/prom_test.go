package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exact text exposition: name
// sanitization, the counter `_total` convention, gauge formatting, and
// cumulative histogram buckets ending in +Inf.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("trace.windows_simulated").Add(42)
	r.Counter("online.alarms").Add(3)
	r.Gauge("parallel.online.monitor.workers").Set(8)
	h := r.Histogram("online.alarm_latency_windows", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(100)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE online_alarms_total counter
online_alarms_total 3
# TYPE trace_windows_simulated_total counter
trace_windows_simulated_total 42
# TYPE parallel_online_monitor_workers gauge
parallel_online_monitor_workers 8
# TYPE online_alarm_latency_windows histogram
online_alarm_latency_windows_bucket{le="1"} 1
online_alarm_latency_windows_bucket{le="2"} 2
online_alarm_latency_windows_bucket{le="4"} 3
online_alarm_latency_windows_bucket{le="+Inf"} 4
online_alarm_latency_windows_sum 105
online_alarm_latency_windows_count 4
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"trace.windows_simulated": "trace_windows_simulated",
		"9lives":                  "_lives",
		"a:b-c d9":                "a:b_c_d9",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): counters gain the conventional
// `_total` suffix, histograms expose cumulative `_bucket{le="..."}`
// series plus `_sum` and `_count`, and dots in registry names become
// underscores. Families are emitted in sorted name order (counters, then
// gauges, then histograms), so the output of a frozen snapshot is
// byte-stable — which is what the exposition golden test pins.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[n]))
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		// The registry stores per-bucket counts; Prometheus buckets are
		// cumulative, ending in the catch-all +Inf bucket.
		var cum int64
		for i, bound := range h.Buckets {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%s} %d\n", pn, QuoteLabel(promFloat(bound)), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps a registry metric name onto the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* by replacing every other rune with '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// QuoteLabel renders a label value as a double-quoted Prometheus string.
// The text exposition format escapes exactly three characters inside
// label values — backslash, double-quote and line feed — which is NOT
// the Go %q escaping (Go would also escape control characters and
// non-ASCII runes, producing values a Prometheus parser reads back
// differently than they were recorded).
func QuoteLabel(v string) string {
	var b strings.Builder
	b.Grow(len(v) + 2)
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

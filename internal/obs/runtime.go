package obs

import (
	"math"
	"runtime/metrics"
	"strings"
)

// RuntimeCollector samples the Go runtime's own instrumentation
// (runtime/metrics) into registry gauges, so GC pauses, scheduler
// latency, heap levels, and goroutine counts become time series like
// any detector metric: scraped into the tsdb every second, rendered on
// /metrics, range-queryable at /api/v1/query_range, and usable in alert
// rules ("page when runtime.gc_pause_p99_ms > 50").
//
// Update is allocation-free after construction: the sample slice is
// preallocated, gauges are resolved once, and histogram quantiles are
// computed in place from runtime/metrics' bucket counts (the runtime
// reuses the Float64Histogram buffers it hands back). That matters
// because the tsdb scraper calls Update at 1 Hz from the hot path of a
// daemon whose whole point is near-zero observer overhead.
type RuntimeCollector struct {
	samples []metrics.Sample
	entries []runtimeEntry
}

// runtimeEntry maps one runtime/metrics sample to its gauge(s).
type runtimeEntry struct {
	idx   int
	scale float64
	g     *Gauge // scalar kinds
	gP50  *Gauge // histogram kinds
	gP99  *Gauge
}

// runtimeMetrics is the fixed table of runtime/metrics keys exported as
// gauges. Keys missing from the running toolchain are skipped at
// construction (metrics.Read reports them as KindBad), so the collector
// degrades gracefully across Go versions.
var runtimeMetrics = []struct {
	key   string
	name  string  // gauge name; histograms get _p50/_p99 suffixes
	scale float64 // multiplier applied to the sampled value
}{
	{"/sched/goroutines:goroutines", "runtime.goroutines", 1},
	{"/sched/latencies:seconds", "runtime.sched_latency", 1e3}, // -> ms
	{"/gc/pauses:seconds", "runtime.gc_pause", 1e3},            // -> ms
	{"/gc/cycles/total:gc-cycles", "runtime.gc_cycles", 1},
	{"/gc/heap/allocs:bytes", "runtime.heap_allocs_bytes", 1},
	{"/gc/heap/goal:bytes", "runtime.gc_heap_goal_bytes", 1},
	{"/memory/classes/heap/objects:bytes", "runtime.heap_objects_bytes", 1},
	{"/memory/classes/total:bytes", "runtime.mem_total_bytes", 1},
	{"/sync/mutex/wait/total:seconds", "runtime.mutex_wait_seconds", 1},
}

// NewRuntimeCollector builds a collector publishing into r (nil: the
// default registry) and takes one warm-up read so the runtime's
// histogram buffers are allocated before the first hot-path Update.
func NewRuntimeCollector(r *Registry) *RuntimeCollector {
	if r == nil {
		r = DefaultRegistry
	}
	rc := &RuntimeCollector{}
	probe := make([]metrics.Sample, len(runtimeMetrics))
	for i, m := range runtimeMetrics {
		probe[i].Name = m.key
	}
	metrics.Read(probe)
	for i, m := range runtimeMetrics {
		switch probe[i].Value.Kind() {
		case metrics.KindBad:
			continue
		case metrics.KindFloat64Histogram:
			rc.entries = append(rc.entries, runtimeEntry{
				idx:   len(rc.samples),
				scale: m.scale,
				gP50:  r.Gauge(m.name + "_p50_ms"),
				gP99:  r.Gauge(m.name + "_p99_ms"),
			})
		default:
			rc.entries = append(rc.entries, runtimeEntry{
				idx:   len(rc.samples),
				scale: m.scale,
				g:     r.Gauge(m.name),
			})
		}
		rc.samples = append(rc.samples, metrics.Sample{Name: m.key})
	}
	// Warm up: the first Read into the kept slice allocates histogram
	// value buffers; subsequent Updates reuse them.
	metrics.Read(rc.samples)
	return rc
}

// Update re-reads every tracked runtime metric into its gauge. Safe on
// a nil receiver; not safe for concurrent use with itself (the tsdb
// scraper and profiler both call it, but gauge writes are atomic and
// the sample buffer tolerates interleaved reads of identical keys).
func (rc *RuntimeCollector) Update() {
	if rc == nil {
		return
	}
	metrics.Read(rc.samples)
	for _, e := range rc.entries {
		v := rc.samples[e.idx].Value
		switch v.Kind() {
		case metrics.KindUint64:
			e.g.Set(float64(v.Uint64()) * e.scale)
		case metrics.KindFloat64:
			e.g.Set(v.Float64() * e.scale)
		case metrics.KindFloat64Histogram:
			h := v.Float64Histogram()
			e.gP50.Set(histQuantile(h, 0.5) * e.scale)
			e.gP99.Set(histQuantile(h, 0.99) * e.scale)
		}
	}
}

// MetricNames returns the gauge names this collector publishes, sorted
// as registered — used by docs and tests, not hot paths.
func (rc *RuntimeCollector) MetricNames() []string {
	if rc == nil {
		return nil
	}
	var names []string
	for _, m := range runtimeMetrics {
		if strings.HasSuffix(m.key, ":seconds") && m.scale == 1e3 {
			names = append(names, m.name+"_p50_ms", m.name+"_p99_ms")
		} else {
			names = append(names, m.name)
		}
	}
	return names
}

// histQuantile estimates the q-quantile of a runtime/metrics histogram.
// Counts[i] counts observations in [Buckets[i], Buckets[i+1]); the
// outermost buckets may be infinite, in which case the finite edge is
// used. Returns 0 for an empty histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if math.IsInf(lo, -1) {
				lo = hi
			}
			if math.IsInf(hi, 1) {
				hi = lo
			}
			// Midpoint of the winning bucket: stable, and avoids
			// over-reporting tails from sparse wide buckets.
			return (lo + hi) / 2
		}
	}
	return 0
}

package obs

import (
	"fmt"
	"strings"
)

// HistogramAggregates lists the ":"-suffix aggregates a metric reference
// may select on a histogram (see Snapshot.Lookup).
var HistogramAggregates = []string{"count", "sum", "mean", "min", "max", "p50", "p90", "p95", "p99"}

// SplitAggregate splits a metric reference of the form "name:agg" into
// its metric name and aggregate selector. References without a ":" come
// back with an empty aggregate; only the last ":" splits, so metric
// names containing colons keep working as long as the final segment is
// the selector.
func SplitAggregate(metric string) (name, agg string) {
	if i := strings.LastIndex(metric, ":"); i >= 0 {
		return metric[:i], metric[i+1:]
	}
	return metric, ""
}

// Lookup resolves a metric reference against the snapshot and reports
// whether it named anything. Counters and gauges resolve by name;
// histograms take a ":" suffix selecting an aggregate — count, sum,
// mean, min, max, p50, p90, p95 or p99 — and a bare histogram name
// defaults to mean.
//
// Empty-histogram contract: every aggregate of a histogram with zero
// observations resolves to 0 (found=true). HistogramSnapshot.Quantile
// itself returns NaN on an empty histogram — the honest primitive
// answer — but a metric *reference* is used for thresholds, alert rules
// and time series, where NaN poisons every comparison and JSON
// encoding; 0 is the single documented coercion, applied here and
// nowhere else.
func (s Snapshot) Lookup(metric string) (float64, bool) {
	if v, ok := s.Counters[metric]; ok {
		return float64(v), true
	}
	if v, ok := s.Gauges[metric]; ok {
		return v, true
	}
	name, agg := SplitAggregate(metric)
	if agg == "" {
		name, agg = metric, "mean"
	}
	h, ok := s.Histograms[name]
	if !ok {
		return 0, false
	}
	switch agg {
	case "count":
		return float64(h.Count), true
	case "sum":
		return h.Sum, true
	case "min":
		return h.Min, true
	case "max":
		return h.Max, true
	case "mean":
		if h.Count == 0 {
			return 0, true
		}
		return h.Sum / float64(h.Count), true
	case "p50", "p90", "p95", "p99":
		var q float64
		fmt.Sscanf(agg, "p%f", &q)
		v := h.Quantile(q / 100)
		if v != v { // NaN: empty histogram
			return 0, true
		}
		return v, true
	}
	return 0, false
}

package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteChromeTrace checks the exported JSON is what Perfetto accepts:
// a traceEvents array of complete "X" events with trace-relative
// microsecond timestamps and span/parent IDs in args.
func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("experiment.fig13")
	child := tr.Start("dataset.generate")
	worker := child.Child("fold.train")
	worker.End()
	child.End()
	root.End()

	var b strings.Builder
	if err := WriteChromeTrace(&b, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	if len(out.TraceEvents) != 3 || out.DisplayTimeUnit != "ms" {
		t.Fatalf("events = %d, unit = %q", len(out.TraceEvents), out.DisplayTimeUnit)
	}
	byName := map[string]int{}
	for i, ev := range out.TraceEvents {
		if ev.Phase != "X" || ev.PID != 1 || ev.TID != 1 {
			t.Errorf("event %q: ph=%q pid=%d tid=%d", ev.Name, ev.Phase, ev.PID, ev.TID)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %q: ts=%v dur=%v", ev.Name, ev.TS, ev.Dur)
		}
		byName[ev.Name] = i
	}
	rootEv := out.TraceEvents[byName["experiment.fig13"]]
	childEv := out.TraceEvents[byName["dataset.generate"]]
	workerEv := out.TraceEvents[byName["fold.train"]]
	if rootEv.TS != 0 {
		t.Errorf("root ts = %v, want 0 (rebased)", rootEv.TS)
	}
	if _, hasParent := rootEv.Args["parent_id"]; hasParent {
		t.Error("root event carries a parent_id")
	}
	if childEv.Args["parent_id"] != rootEv.Args["id"] {
		t.Errorf("child parent_id = %v, want root id %v", childEv.Args["parent_id"], rootEv.Args["id"])
	}
	if workerEv.Args["parent_id"] != childEv.Args["id"] {
		t.Errorf("worker parent_id = %v, want child id %v", workerEv.Args["parent_id"], childEv.Args["id"])
	}
}

// TestWriteChromeTraceEmpty keeps the no-span export a valid document.
func TestWriteChromeTraceEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeTrace(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"traceEvents": []`) {
		t.Errorf("empty export = %s", b.String())
	}
}

// TestSpanChildConcurrent proves explicit-parent children are safe from
// worker goroutines while the driver keeps using the implicit stack.
func TestSpanChildConcurrent(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("pool.run")
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				root.Child("task").End()
			}
		}()
	}
	// The driver's own nested span stays correctly stacked meanwhile.
	inner := tr.Start("driver.step")
	inner.End()
	for w := 0; w < 8; w++ {
		<-done
	}
	root.End()
	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("roots = %d, want 1", len(snap))
	}
	tasks := 0
	for _, c := range snap[0].Children {
		if c.Name == "task" {
			tasks++
			if c.ParentID != snap[0].ID {
				t.Fatalf("task parent = %d, want %d", c.ParentID, snap[0].ID)
			}
		}
	}
	if tasks != 400 {
		t.Fatalf("task children = %d, want 400", tasks)
	}
}

// Package obs is the reproduction's observability substrate: a leveled
// key-value structured logger (text and JSON encoders), a metrics
// registry (counters, gauges, fixed-bucket histograms) with deterministic
// JSON snapshots and Prometheus text exposition (WritePrometheus),
// lightweight spans that assemble a per-run timing tree exportable as
// Chrome trace-event JSON (WriteChromeTrace), a bounded drop-oldest
// detection-event bus (Bus) for live streaming, build identity
// (BuildInfo), and run manifests that make every generated artifact
// auditable.
//
// The package is dependency-free (stdlib only) and nop-by-default: the
// default logger is disabled until a front end installs one, and a
// disabled logger costs zero allocations per call, so instrumented hot
// paths (the per-window simulation loop, per-fold training) pay nothing
// when observability is off.
//
// Pipeline packages register their instruments once at init time:
//
//	var windows = obs.GetCounter("trace.windows_simulated")
//
// and the CLI snapshots everything at the end of a run:
//
//	obs.WriteRunSnapshot(f) // counters + gauges + histograms + span tree
package obs

import "sync/atomic"

// DefaultRegistry is the process-wide metrics registry used by
// GetCounter, GetGauge and GetHistogram. Pipeline packages register their
// instruments here; the CLI snapshots and resets it per run.
var DefaultRegistry = NewRegistry()

// DefaultTracer is the process-wide span tracer used by StartSpan.
var DefaultTracer = NewTracer()

var defaultLogger atomic.Pointer[Logger]

// SetLogger installs the process-wide logger returned by Log. Passing
// Nop() (or a nil logger) disables logging again.
func SetLogger(l *Logger) { defaultLogger.Store(l) }

// Log returns the process-wide logger. The zero state is a nop logger:
// every method is safe to call and does nothing.
func Log() *Logger { return defaultLogger.Load() }

// GetCounter returns (creating if needed) the named counter on the
// default registry.
func GetCounter(name string) *Counter { return DefaultRegistry.Counter(name) }

// GetGauge returns (creating if needed) the named gauge on the default
// registry.
func GetGauge(name string) *Gauge { return DefaultRegistry.Gauge(name) }

// GetHistogram returns (creating if needed) the named histogram on the
// default registry. Buckets apply only on first creation.
func GetHistogram(name string, buckets []float64) *Histogram {
	return DefaultRegistry.Histogram(name, buckets)
}

// StartSpan opens a span on the default tracer. The returned span must be
// closed with End; spans opened while another is active become its
// children, building the per-run timing tree.
func StartSpan(name string) *Span { return DefaultTracer.Start(name) }

// TimeBuckets are histogram bounds (seconds) suited to stage and training
// wall times: 100 µs to 30 s.
var TimeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// WindowBuckets are histogram bounds counted in 10 ms sampling windows,
// suited to online detection latency.
var WindowBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

package obs

import (
	"math"
	"testing"
)

func TestSplitAggregate(t *testing.T) {
	cases := []struct{ in, name, agg string }{
		{"lat:p99", "lat", "p99"},
		{"lat", "lat", ""},
		{"ns:sub:count", "ns:sub", "count"},
	}
	for _, c := range cases {
		name, agg := SplitAggregate(c.in)
		if name != c.name || agg != c.agg {
			t.Errorf("SplitAggregate(%q) = %q, %q, want %q, %q", c.in, name, agg, c.name, c.agg)
		}
	}
}

func TestSnapshotLookup(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(2.5)
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 2, 3, 50} {
		h.Observe(v)
	}
	snap := r.Snapshot()

	cases := map[string]float64{
		"c":         7,
		"g":         2.5,
		"lat:count": 4,
		"lat:sum":   55.5,
		"lat:min":   0.5,
		"lat:max":   50,
		"lat:mean":  55.5 / 4,
		"lat":       55.5 / 4, // bare histogram name defaults to mean
	}
	for metric, want := range cases {
		got, ok := snap.Lookup(metric)
		if !ok || got != want {
			t.Errorf("Lookup(%q) = %v ok=%v, want %v", metric, got, ok, want)
		}
	}
	if p99, ok := snap.Lookup("lat:p99"); !ok || p99 <= 0 {
		t.Errorf("p99 = %v ok=%v", p99, ok)
	}
	if _, ok := snap.Lookup("lat:p12345"); ok {
		t.Error("accepted unknown aggregate")
	}
	if _, ok := snap.Lookup("nope"); ok {
		t.Error("resolved a missing metric")
	}
	if _, ok := snap.Lookup("nope:p99"); ok {
		t.Error("resolved an aggregate of a missing histogram")
	}
}

// TestEmptyHistogramContract pins the two halves of the empty-histogram
// behavior: the raw Quantile primitive answers NaN, while every metric
// reference resolved through Lookup coerces to 0.
func TestEmptyHistogramContract(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty", []float64{1, 2})
	snap := r.Snapshot()

	if q := snap.Histograms["empty"].Quantile(0.99); !math.IsNaN(q) {
		t.Errorf("empty Quantile = %v, want NaN", q)
	}
	for _, agg := range HistogramAggregates {
		v, ok := snap.Lookup("empty:" + agg)
		if !ok || v != 0 {
			t.Errorf("Lookup(empty:%s) = %v ok=%v, want 0, true", agg, v, ok)
		}
	}
	if v, ok := snap.Lookup("empty"); !ok || v != 0 {
		t.Errorf("Lookup(empty) = %v ok=%v, want 0, true", v, ok)
	}
}

package obs

import (
	"path/filepath"
	"testing"
	"time"
)

func TestManifestWriteAndRead(t *testing.T) {
	m := NewManifest("hpcmal", "gen")
	m.Seed = 42
	m.Scale = 0.1
	m.Rows = 4960
	m.Samples = 310
	m.Config["out"] = "dataset.csv"
	m.Outputs = append(m.Outputs, "dataset.csv")
	m.AddStage("dataset.generate", 1500*time.Millisecond)
	m.StagesFromSpans([]SpanSnapshot{{Name: "write", WallMS: 250}})

	path := filepath.Join(t.TempDir(), "dataset.manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "hpcmal" || got.Command != "gen" || got.Seed != 42 || got.Scale != 0.1 {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	if got.Rows != 4960 || got.Samples != 310 {
		t.Errorf("rows/samples = %d/%d", got.Rows, got.Samples)
	}
	if len(got.Stages) != 2 || got.Stages[0].WallSeconds != 1.5 || got.Stages[1].WallSeconds != 0.25 {
		t.Errorf("stages = %+v", got.Stages)
	}
	if got.WallSeconds < 0 || got.StartedAt == "" || got.GoVersion == "" {
		t.Errorf("metadata missing: %+v", got)
	}
}

func TestManifestPathFor(t *testing.T) {
	cases := map[string]string{
		"dataset.csv":      "dataset.manifest.json",
		"out/d.arff":       "out/d.manifest.json",
		"trace-dir":        "trace-dir.manifest.json",
		"metrics.json":     "metrics.manifest.json",
		"a/b.c.d/file.csv": "a/b.c.d/file.manifest.json",
	}
	for in, want := range cases {
		if got := ManifestPathFor(in); got != filepath.FromSlash(want) && got != want {
			t.Errorf("ManifestPathFor(%q) = %q, want %q", in, got, want)
		}
	}
}

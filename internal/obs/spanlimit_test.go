package obs

import "testing"

func flatCount(spans []SpanSnapshot) int {
	n := 0
	for _, s := range spans {
		n += 1 + flatCount(s.Children)
	}
	return n
}

// TestTracerSpanLimit pins the retention cap on the span tracer: a
// long-lived daemon can no longer grow the retained slice without
// bound — the oldest fully-ended root subtrees are evicted and counted.
func TestTracerSpanLimit(t *testing.T) {
	tr := NewTracer()
	reg := NewRegistry()
	tr.AttachMetrics(reg)

	// A live root subtree must survive any cap, even one smaller than
	// the subtree itself: evicting it would orphan running spans.
	live := tr.Start("live")
	liveChild := live.Child("child")
	tr.SetLimit(1)
	if tr.Dropped() != 0 {
		t.Fatalf("un-ended root evicted (%d spans dropped)", tr.Dropped())
	}
	if len(tr.Snapshot()) != 1 || tr.Snapshot()[0].Name != "live" {
		t.Fatalf("live root missing from snapshot: %+v", tr.Snapshot())
	}

	// Once ended, it is ordinary history: driver-style rounds pile up
	// ended roots and the oldest are dropped to hold the cap.
	liveChild.End()
	live.End()
	tr.SetLimit(8)
	for i := 0; i < 20; i++ {
		sp := tr.Start("burst")
		sp.Child("leaf").End()
		sp.End()
	}
	snap := tr.Snapshot()
	if n := flatCount(snap); n > 8 {
		t.Fatalf("retained %d spans, cap 8", n)
	}
	for _, s := range snap {
		if s.Name == "live" {
			t.Fatal("oldest ended root survived eviction pressure")
		}
	}
	if tr.Dropped() == 0 {
		t.Fatal("no spans counted as dropped")
	}
	if got := reg.Snapshot().Counters[SpansDroppedMetric]; got != tr.Dropped() {
		t.Fatalf("%s = %d, tracer reports %d", SpansDroppedMetric, got, tr.Dropped())
	}

	// SetLimit(-1) removes the cap entirely.
	tr.Reset()
	tr.SetLimit(-1)
	for i := 0; i < 100; i++ {
		tr.Start("unbounded").End()
	}
	if got := len(tr.Snapshot()); got != 100 {
		t.Fatalf("uncapped tracer retained %d of 100 spans", got)
	}
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// OpenMetricsContentType is the content type for the OpenMetrics 1.0 text
// exposition format, negotiated by scrapers via the Accept header.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders a metrics snapshot in the OpenMetrics 1.0 text
// format. The family layout mirrors WritePrometheus (sorted counters,
// gauges, then histograms, byte-stable for a frozen snapshot); what
// OpenMetrics adds is exemplars — bucket lines whose histogram recorded a
// trace-linked observation carry `# {trace_id="..."} value timestamp`, so
// a scraper can jump from a latency bucket to the exact trace behind it.
//
// The caller owns the terminating `# EOF` line: the telemetry server
// appends its synthetic build-info/uptime families first, then
// terminates the exposition.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s_total %d\n", pn, pn, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[n]))
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		// Index exemplars by bucket for the cumulative walk below.
		var ex map[int]Exemplar
		if len(h.Exemplars) > 0 {
			ex = make(map[int]Exemplar, len(h.Exemplars))
			for _, e := range h.Exemplars {
				ex[e.Bucket] = e
			}
		}
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		var cum int64
		for i, bound := range h.Buckets {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%s} %d", pn, QuoteLabel(promFloat(bound)), cum)
			writeExemplar(&b, ex, i)
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d", pn, h.Count)
		writeExemplar(&b, ex, len(h.Buckets))
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writeExemplar appends the OpenMetrics exemplar clause for bucket i when
// one was recorded: ` # {trace_id="..."} value timestamp-seconds`.
func writeExemplar(b *strings.Builder, ex map[int]Exemplar, i int) {
	e, ok := ex[i]
	if !ok || e.TraceID == "" {
		return
	}
	fmt.Fprintf(b, " # {trace_id=%s} %s %s", QuoteLabel(e.TraceID),
		promFloat(e.Value), promFloat(float64(e.TimeUnixMS)/1000))
}

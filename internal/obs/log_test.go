package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestLoggerLevelFiltering(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelInfo, false)
	l.Trace("t")
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	out := b.String()
	for _, absent := range []string{"trace", "debug"} {
		if strings.Contains(out, absent) {
			t.Errorf("level %s leaked through an info-level logger:\n%s", absent, out)
		}
	}
	for _, present := range []string{"info  i", "warn  w", "error e"} {
		if !strings.Contains(out, present) {
			t.Errorf("missing %q in:\n%s", present, out)
		}
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelDebug) {
		t.Error("Enabled disagrees with the configured level")
	}
}

func TestLoggerTextEncoding(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelDebug, false)
	l.Info("generated", "rows", 4960, "frac", 0.5, "name", "two words", "ok", true,
		"dur", 1500*time.Millisecond)
	got := b.String()
	want := `info  generated rows=4960 frac=0.5 name="two words" ok=true dur=1.5s` + "\n"
	if got != want {
		t.Errorf("text line\n got %q\nwant %q", got, want)
	}
}

func TestLoggerJSONEncoding(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelDebug, true).With("stage", "gen")
	l.Warn("odd \"msg\"\n", "rows", 42, "bad")
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("log line is not valid JSON: %v\n%s", err, b.String())
	}
	if rec["level"] != "warn" || rec["msg"] != "odd \"msg\"\n" {
		t.Errorf("bad level/msg: %v", rec)
	}
	if rec["stage"] != "gen" {
		t.Errorf("bound attr missing: %v", rec)
	}
	if rec["rows"] != float64(42) {
		t.Errorf("rows = %v", rec["rows"])
	}
	if _, ok := rec["!EXTRA"]; !ok {
		t.Errorf("dangling value not flagged: %v", rec)
	}
}

func TestNopLoggerIsSafe(t *testing.T) {
	l := Nop()
	l.Info("nothing", "k", 1)
	if l.With("a", 1) != nil {
		t.Error("With on nop logger should stay nop")
	}
	if l.Enabled(LevelError) {
		t.Error("nop logger claims to be enabled")
	}
	// The package default starts disabled.
	Log().Debug("also nothing")
}

func TestLoggerBadKey(t *testing.T) {
	var b strings.Builder
	l := New(&b, LevelDebug, false)
	l.Info("m", 17, "v")
	if !strings.Contains(b.String(), "!BADKEY=v") {
		t.Errorf("non-string key not flagged: %s", b.String())
	}
}

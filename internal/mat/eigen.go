package mat

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. It returns the eigenvalues in
// descending order and the corresponding eigenvectors as the columns of the
// returned matrix (vectors[:, k] pairs with values[k]).
//
// The input must be square and symmetric to within a small tolerance;
// EigenSym returns an error otherwise. Jacobi iteration is unconditionally
// stable for symmetric input and converges quadratically, which is more
// than enough for the <=64-dimensional covariance matrices used by PCA.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	n := a.Rows
	if n != a.Cols {
		return nil, nil, fmt.Errorf("mat: EigenSym on non-square %dx%d matrix", a.Rows, a.Cols)
	}
	// Symmetry check with a tolerance proportional to the matrix scale.
	scale := 0.0
	for _, v := range a.Data {
		scale = math.Max(scale, math.Abs(v))
	}
	tol := 1e-9 * math.Max(scale, 1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > tol {
				return nil, nil, fmt.Errorf("mat: EigenSym on asymmetric matrix: a[%d,%d]=%g a[%d,%d]=%g",
					i, j, a.At(i, j), j, i, a.At(j, i))
			}
		}
	}

	w := a.Clone() // working copy, driven to diagonal form
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*math.Max(scale, 1) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Compute the rotation that zeroes w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := range values {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	// Fix sign convention: largest-magnitude component of each vector is
	// positive, so results are reproducible across runs and platforms.
	for col := 0; col < n; col++ {
		maxAbs, maxVal := 0.0, 0.0
		for r := 0; r < n; r++ {
			x := sortedVecs.At(r, col)
			if math.Abs(x) > maxAbs {
				maxAbs = math.Abs(x)
				maxVal = x
			}
		}
		if maxVal < 0 {
			for r := 0; r < n; r++ {
				sortedVecs.Set(r, col, -sortedVecs.At(r, col))
			}
		}
	}
	return sortedVals, sortedVecs, nil
}

// rotate applies a Jacobi rotation in the (p, q) plane to w and accumulates
// it into the eigenvector matrix v.
func rotate(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for k := 0; k < n; k++ {
		wkp := w.At(k, p)
		wkq := w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk := w.At(p, k)
		wqk := w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

package mat

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSVDReconstruction(t *testing.T) {
	src := rng.New(1)
	a := NewMatrix(20, 5)
	for i := range a.Data {
		a.Data[i] = src.Normal(0, 2)
	}
	r, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild A = U S V^T and compare.
	us := NewMatrix(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			us.Set(i, j, r.U.At(i, j)*r.S[j])
		}
	}
	rebuilt := us.Mul(r.V.T())
	for i := range a.Data {
		if math.Abs(rebuilt.Data[i]-a.Data[i]) > 1e-6 {
			t.Fatalf("reconstruction error at %d: %v vs %v", i, rebuilt.Data[i], a.Data[i])
		}
	}
	// Singular values descending, non-negative.
	for i := range r.S {
		if r.S[i] < 0 {
			t.Fatal("negative singular value")
		}
		if i > 0 && r.S[i] > r.S[i-1]+1e-12 {
			t.Fatal("singular values not descending")
		}
	}
	// U columns orthonormal (full rank case).
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < a.Cols; j++ {
			d := Dot(r.U.Col(i), r.U.Col(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > 1e-8 {
				t.Fatalf("U columns %d,%d not orthonormal: %v", i, j, d)
			}
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// Diagonal matrix: singular values are the absolute diagonal entries.
	a := FromRows([][]float64{{3, 0}, {0, -4}})
	r, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.S[0]-4) > 1e-9 || math.Abs(r.S[1]-3) > 1e-9 {
		t.Fatalf("singular values %v, want [4 3]", r.S)
	}
}

func TestSVDRankAndEnergy(t *testing.T) {
	// Rank-1 matrix.
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	r, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rank(0) != 1 {
		t.Fatalf("rank %d, want 1", r.Rank(0))
	}
	if e := r.EnergyFraction(1); math.Abs(e-1) > 1e-9 {
		t.Fatalf("rank-1 energy %v, want 1", e)
	}
	if r.EnergyFraction(0) != 0 {
		t.Fatal("EnergyFraction(0) != 0")
	}
	if e := r.EnergyFraction(99); math.Abs(e-1) > 1e-9 {
		t.Fatal("clamped energy != 1")
	}
}

func TestSVDEmpty(t *testing.T) {
	if _, err := SVD(NewMatrix(0, 0)); err == nil {
		t.Fatal("accepted empty matrix")
	}
}

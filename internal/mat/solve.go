package mat

import (
	"fmt"
	"math"
)

// Inverse returns the inverse of a square matrix via Gauss-Jordan
// elimination with partial pivoting. It returns an error when the matrix
// is singular to working precision.
func Inverse(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, fmt.Errorf("mat: Inverse of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	// Augmented [A | I], reduced in place.
	w := a.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("mat: singular matrix (pivot %d ~ %g)", col, best)
		}
		if pivot != col {
			swapRows(w, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize pivot row.
		p := w.At(col, col)
		Scale(1/p, w.Row(col))
		Scale(1/p, inv.Row(col))
		// Eliminate the column elsewhere.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := w.At(r, col)
			if f == 0 {
				continue
			}
			AXPY(-f, w.Row(col), w.Row(r))
			AXPY(-f, inv.Row(col), inv.Row(r))
		}
	}
	return inv, nil
}

// InverseRidge returns (A + lambda*I)^-1, the ridge-regularized inverse
// used when A is a possibly ill-conditioned covariance matrix.
func InverseRidge(a *Matrix, lambda float64) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: InverseRidge of non-square matrix")
	}
	w := a.Clone()
	for i := 0; i < w.Rows; i++ {
		w.Set(i, i, w.At(i, i)+lambda)
	}
	return Inverse(w)
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

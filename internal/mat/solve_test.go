package mat

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestInverseKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	for i := range want.Data {
		if math.Abs(inv.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("inverse mismatch:\n%v", inv)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	src := rng.New(1)
	n := 6
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = src.Normal(0, 1)
	}
	// Diagonal dominance keeps it well-conditioned.
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+5)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-9 {
				t.Fatalf("A*A^-1 != I at (%d,%d): %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(a); err == nil {
		t.Fatal("accepted singular matrix")
	}
	if _, err := Inverse(NewMatrix(2, 3)); err == nil {
		t.Fatal("accepted non-square matrix")
	}
}

func TestInverseRidgeRegularizes(t *testing.T) {
	// Singular without ridge, invertible with it.
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	inv, err := InverseRidge(a, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// (A + lambda I) * inv == I.
	reg := a.Clone()
	reg.Set(0, 0, reg.At(0, 0)+0.1)
	reg.Set(1, 1, reg.At(1, 1)+0.1)
	prod := reg.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-9 {
				t.Fatal("ridge inverse wrong")
			}
		}
	}
	if _, err := InverseRidge(NewMatrix(2, 3), 0.1); err == nil {
		t.Fatal("accepted non-square matrix")
	}
}

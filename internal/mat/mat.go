// Package mat implements the small dense linear-algebra kernel needed by the
// detection pipeline: matrices, vectors, covariance, standardization, and a
// Jacobi eigendecomposition for symmetric matrices (the heart of PCA).
//
// The package is self-contained (stdlib only) and favors clarity over raw
// throughput; the matrices in this project are at most a few tens of columns
// wide, so O(n^3) algorithms with good constants are entirely adequate.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged row %d: len %d != %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of bounds %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic("mat: row index out of bounds")
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.Cols {
		panic("mat: column index out of bounds")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d",
			m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns m * v as a new vector.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("mat: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ColMeans returns the per-column means of m.
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.Cols)
	if m.Rows == 0 {
		return means
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(m.Rows)
	for j := range means {
		means[j] *= inv
	}
	return means
}

// ColStddevs returns the per-column sample standard deviations of m
// (denominator n-1). Columns with zero variance report 0.
func (m *Matrix) ColStddevs() []float64 {
	sd := make([]float64, m.Cols)
	if m.Rows < 2 {
		return sd
	}
	means := m.ColMeans()
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			d := v - means[j]
			sd[j] += d * d
		}
	}
	inv := 1 / float64(m.Rows-1)
	for j := range sd {
		sd[j] = math.Sqrt(sd[j] * inv)
	}
	return sd
}

// Standardize returns a copy of m with each column shifted to zero mean and
// scaled to unit variance, along with the means and stddevs used. Columns
// with zero variance are centered but left unscaled.
func (m *Matrix) Standardize() (z *Matrix, means, stddevs []float64) {
	means = m.ColMeans()
	stddevs = m.ColStddevs()
	z = NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := z.Row(i)
		for j, v := range src {
			d := v - means[j]
			if stddevs[j] > 0 {
				d /= stddevs[j]
			}
			dst[j] = d
		}
	}
	return z, means, stddevs
}

// Covariance returns the sample covariance matrix (denominator n-1) of the
// columns of m. The result is Cols x Cols and symmetric.
func (m *Matrix) Covariance() *Matrix {
	c := NewMatrix(m.Cols, m.Cols)
	if m.Rows < 2 {
		return c
	}
	means := m.ColMeans()
	centered := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range centered {
			centered[j] = row[j] - means[j]
		}
		for a := 0; a < m.Cols; a++ {
			ca := centered[a]
			if ca == 0 {
				continue
			}
			base := a * m.Cols
			for b := a; b < m.Cols; b++ {
				c.Data[base+b] += ca * centered[b]
			}
		}
	}
	inv := 1 / float64(m.Rows-1)
	for a := 0; a < m.Cols; a++ {
		for b := a; b < m.Cols; b++ {
			v := c.Data[a*m.Cols+b] * inv
			c.Data[a*m.Cols+b] = v
			c.Data[b*m.Cols+a] = v
		}
	}
	return c
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

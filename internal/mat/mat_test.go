package mat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAtSetRoundTrip(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(2, 3, 7.5)
	if m.At(2, 3) != 7.5 {
		t.Fatalf("At(2,3) = %v, want 7.5", m.At(2, 3))
	}
	if m.At(0, 0) != 0 {
		t.Fatal("fresh matrix not zeroed")
	}
}

func TestFromRowsAndRowCol(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("bad shape %dx%d", m.Rows, m.Cols)
	}
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 || c[2] != 6 {
		t.Fatalf("Col(1) = %v", c)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", mt.Rows, mt.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul mismatch at (%d,%d): got %v want %v", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	r := rng.New(1)
	a := NewMatrix(5, 5)
	for i := range a.Data {
		a.Data[i] = r.Normal(0, 1)
	}
	p := a.Mul(Identity(5))
	for i := range a.Data {
		if !approx(p.Data[i], a.Data[i], 1e-12) {
			t.Fatal("A * I != A")
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	v := a.MulVec([]float64{1, 2, 3})
	if v[0] != 7 || v[1] != 6 {
		t.Fatalf("MulVec = %v", v)
	}
}

func TestColMeansStddevs(t *testing.T) {
	m := FromRows([][]float64{{1, 10}, {2, 10}, {3, 10}})
	means := m.ColMeans()
	if !approx(means[0], 2, 1e-12) || !approx(means[1], 10, 1e-12) {
		t.Fatalf("means = %v", means)
	}
	sd := m.ColStddevs()
	if !approx(sd[0], 1, 1e-12) {
		t.Fatalf("stddev[0] = %v, want 1", sd[0])
	}
	if sd[1] != 0 {
		t.Fatalf("constant column stddev = %v, want 0", sd[1])
	}
}

func TestStandardize(t *testing.T) {
	r := rng.New(2)
	m := NewMatrix(200, 3)
	for i := 0; i < 200; i++ {
		m.Set(i, 0, r.Normal(5, 2))
		m.Set(i, 1, r.Normal(-3, 0.5))
		m.Set(i, 2, 42) // constant column
	}
	z, _, _ := m.Standardize()
	means := z.ColMeans()
	sd := z.ColStddevs()
	for j := 0; j < 2; j++ {
		if !approx(means[j], 0, 1e-9) {
			t.Fatalf("standardized mean[%d] = %v", j, means[j])
		}
		if !approx(sd[j], 1, 1e-9) {
			t.Fatalf("standardized stddev[%d] = %v", j, sd[j])
		}
	}
	if !approx(means[2], 0, 1e-9) || sd[2] != 0 {
		t.Fatalf("constant column not centered: mean=%v sd=%v", means[2], sd[2])
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Perfectly correlated columns: cov = var.
	m := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	c := m.Covariance()
	if !approx(c.At(0, 0), 1, 1e-12) {
		t.Fatalf("var(x) = %v, want 1", c.At(0, 0))
	}
	if !approx(c.At(1, 1), 4, 1e-12) {
		t.Fatalf("var(y) = %v, want 4", c.At(1, 1))
	}
	if !approx(c.At(0, 1), 2, 1e-12) || !approx(c.At(1, 0), 2, 1e-12) {
		t.Fatalf("cov(x,y) = %v/%v, want 2", c.At(0, 1), c.At(1, 0))
	}
}

func TestCovarianceSymmetric(t *testing.T) {
	r := rng.New(3)
	m := NewMatrix(100, 6)
	for i := range m.Data {
		m.Data[i] = r.Normal(0, 3)
	}
	c := m.Covariance()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if !approx(c.At(i, j), c.At(j, i), 1e-12) {
				t.Fatal("covariance not symmetric")
			}
		}
		if c.At(i, i) < 0 {
			t.Fatal("negative variance on diagonal")
		}
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if !approx(vals[i], w, 1e-10) {
			t.Fatalf("eigenvalue[%d] = %v, want %v", i, vals[i], w)
		}
	}
	// Each eigenvector must be a unit basis vector here.
	for col := 0; col < 3; col++ {
		nrm := 0.0
		for r := 0; r < 3; r++ {
			nrm += vecs.At(r, col) * vecs.At(r, col)
		}
		if !approx(nrm, 1, 1e-10) {
			t.Fatalf("eigenvector %d not unit norm: %v", col, nrm)
		}
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(vals[0], 3, 1e-10) || !approx(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// Leading eigenvector is (1,1)/sqrt(2) up to sign; sign convention
	// makes the largest component positive.
	s := 1 / math.Sqrt(2)
	if !approx(vecs.At(0, 0), s, 1e-9) || !approx(vecs.At(1, 0), s, 1e-9) {
		t.Fatalf("leading eigenvector = (%v,%v)", vecs.At(0, 0), vecs.At(1, 0))
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	r := rng.New(5)
	n := 8
	// Build a random symmetric matrix.
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.Normal(0, 1)
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	// Check A*v = lambda*v for each eigenpair.
	for col := 0; col < n; col++ {
		v := vecs.Col(col)
		av := a.MulVec(v)
		for i := 0; i < n; i++ {
			if !approx(av[i], vals[col]*v[i], 1e-7) {
				t.Fatalf("A*v != lambda*v for pair %d: %v vs %v", col, av[i], vals[col]*v[i])
			}
		}
	}
	// Eigenvalues must be sorted descending.
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
	// Eigenvectors must be orthonormal.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := Dot(vecs.Col(i), vecs.Col(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if !approx(d, want, 1e-8) {
				t.Fatalf("eigenvectors %d,%d not orthonormal: dot=%v", i, j, d)
			}
		}
	}
}

func TestEigenSymTraceInvariant(t *testing.T) {
	r := rng.New(7)
	n := 10
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.Normal(0, 2)
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	vals, _, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	trace, sum := 0.0, 0.0
	for i := 0; i < n; i++ {
		trace += a.At(i, i)
		sum += vals[i]
	}
	if !approx(trace, sum, 1e-8) {
		t.Fatalf("trace %v != eigenvalue sum %v", trace, sum)
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, _, err := EigenSym(a); err == nil {
		t.Fatal("EigenSym accepted asymmetric matrix")
	}
}

func TestEigenSymRejectsNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, _, err := EigenSym(a); err == nil {
		t.Fatal("EigenSym accepted non-square matrix")
	}
}

func TestDotNormAxpyScale(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if !approx(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2(3,4) != 5")
	}
	y := []float64{1, 1, 1}
	AXPY(2, a, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Fatalf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 || y[1] != 2.5 || y[2] != 3.5 {
		t.Fatalf("Scale = %v", y)
	}
}

// Property: covariance matrices of random data are always PSD (all Jacobi
// eigenvalues >= -epsilon).
func TestCovariancePSDProperty(t *testing.T) {
	r := rng.New(11)
	f := func(seed uint16) bool {
		src := rng.New(uint64(seed) + 1)
		m := NewMatrix(30, 4)
		for i := range m.Data {
			m.Data[i] = src.Normal(0, 1+float64(seed%5))
		}
		vals, _, err := EigenSym(m.Covariance())
		if err != nil {
			return false
		}
		for _, v := range vals {
			if v < -1e-8 {
				return false
			}
		}
		return true
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A^T)^T == A.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed uint16) bool {
		src := rng.New(uint64(seed))
		rows := int(seed%5) + 1
		cols := int(seed%7) + 1
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = src.Normal(0, 1)
		}
		tt := m.T().T()
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

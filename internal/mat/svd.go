package mat

import (
	"fmt"
	"math"
)

// SVDResult holds a thin singular value decomposition A = U S V^T.
type SVDResult struct {
	// S holds the singular values in descending order.
	S []float64
	// V holds the right singular vectors as columns (attributes space).
	V *Matrix
	// U holds the left singular vectors as columns (instances space),
	// one column per nonzero singular value.
	U *Matrix
}

// SVD computes the thin singular value decomposition of a (rows >= 1,
// cols >= 1) via the eigendecomposition of the Gram matrix A^T A — exact
// for the small attribute counts this repository uses, and the approach
// HPCMalHunter-style feature selection (thesis reference [2]) takes on
// HPC vector streams.
func SVD(a *Matrix) (*SVDResult, error) {
	if a.Rows < 1 || a.Cols < 1 {
		return nil, fmt.Errorf("mat: SVD of empty matrix")
	}
	gram := a.T().Mul(a) // cols x cols, symmetric PSD
	vals, vecs, err := EigenSym(gram)
	if err != nil {
		return nil, fmt.Errorf("mat: SVD eigen step: %w", err)
	}
	s := make([]float64, len(vals))
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		s[i] = math.Sqrt(v)
	}
	// U = A V S^-1 for nonzero singular values.
	u := NewMatrix(a.Rows, a.Cols)
	av := a.Mul(vecs)
	for j := 0; j < a.Cols; j++ {
		if s[j] <= 1e-12 {
			continue
		}
		for i := 0; i < a.Rows; i++ {
			u.Set(i, j, av.At(i, j)/s[j])
		}
	}
	return &SVDResult{S: s, V: vecs, U: u}, nil
}

// Rank returns the numerical rank at the given relative tolerance
// (fraction of the largest singular value; 0 means 1e-10).
func (r *SVDResult) Rank(relTol float64) int {
	if relTol <= 0 {
		relTol = 1e-10
	}
	if len(r.S) == 0 || r.S[0] == 0 {
		return 0
	}
	cut := r.S[0] * relTol
	n := 0
	for _, v := range r.S {
		if v > cut {
			n++
		}
	}
	return n
}

// EnergyFraction returns the fraction of squared Frobenius norm captured
// by the first k singular values.
func (r *SVDResult) EnergyFraction(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(r.S) {
		k = len(r.S)
	}
	total, head := 0.0, 0.0
	for i, v := range r.S {
		e := v * v
		total += e
		if i < k {
			head += e
		}
	}
	if total == 0 {
		return 0
	}
	return head / total
}

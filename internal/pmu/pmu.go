// Package pmu models a Haswell-class Performance Monitoring Unit: a
// catalog of 52 hardware events, 8 physical counter registers, and the
// round-robin time multiplexing (with occupancy scaling) that Linux perf
// applies when more events are programmed than counters exist.
//
// The paper's platform — an Intel Core i5-4590 — exposes 52 hardware
// events multiplexed onto 8 programmable counters and is read by perf at a
// 10 ms sampling period. This package reproduces that measurement channel,
// including the extrapolation error multiplexing introduces, because that
// error is part of the data the classifiers in the paper were trained on.
package pmu

import (
	"fmt"
	"sort"

	"repro/internal/micro"
	"repro/internal/obs"
)

// Multiplexing instruments: how often the virtual PMU measured a window
// and how many counter-group rotations the round-robin scheduler made —
// the mechanism behind the extrapolation error the classifiers train on.
var (
	mMeasurements = obs.GetCounter("pmu.measurements")
	mRotations    = obs.GetCounter("pmu.multiplex_rotations")
)

// NumCounters is the number of physical programmable counters on the
// modelled PMU (Haswell has 4 programmable + 4 fixed; perf exposes 8
// usable slots, which is what the paper reports).
const NumCounters = 8

// Event is a named hardware event whose value is derived from the raw
// microarchitectural counts of a measurement slice.
type Event struct {
	Name string
	// Derive computes the event value from raw counts.
	Derive func(*micro.Counts) float64
}

// catalog is the full 52-event list. The first 30 are raw events read
// straight from the simulated core; the remainder are derived events that
// real PMUs expose (prefetcher, uop and stall counts), modelled as
// deterministic functions of the raw activity so they carry the same
// signal structure real counters would.
var catalog []Event

// raw returns an Event that reads a perf-named raw counter.
func raw(name string) Event {
	return Event{Name: name, Derive: func(c *micro.Counts) float64 {
		v, ok := c.Get(name)
		if !ok {
			panic("pmu: unknown raw event " + name)
		}
		return float64(v)
	}}
}

func derived(name string, f func(*micro.Counts) float64) Event {
	return Event{Name: name, Derive: f}
}

func init() {
	fc := func(v uint64) float64 { return float64(v) }
	catalog = []Event{
		raw("instructions"),
		raw("cpu-cycles"),
		raw("ref-cycles"),
		raw("bus-cycles"),
		raw("branch-instructions"),
		raw("branch-misses"),
		raw("branch-loads"),
		raw("branch-load-misses"),
		raw("L1-dcache-loads"),
		raw("L1-dcache-load-misses"),
		raw("L1-dcache-stores"),
		raw("L1-dcache-store-misses"),
		raw("L1-icache-loads"),
		raw("L1-icache-load-misses"),
		raw("LLC-loads"),
		raw("LLC-load-misses"),
		raw("LLC-stores"),
		raw("LLC-store-misses"),
		raw("cache-references"),
		raw("cache-misses"),
		raw("L1-dcache-prefetches"),
		raw("L1-dcache-prefetch-misses"),
		raw("LLC-prefetches"),
		raw("LLC-prefetch-misses"),
		raw("dTLB-loads"),
		raw("dTLB-load-misses"),
		raw("dTLB-stores"),
		raw("dTLB-store-misses"),
		raw("iTLB-loads"),
		raw("iTLB-load-misses"),
		raw("node-loads"),
		raw("node-stores"),
		raw("node-load-misses"),
		raw("node-store-misses"),

		// Derived events (modelled PMU extensions).
		derived("stalled-cycles-frontend", func(c *micro.Counts) float64 {
			return 10*fc(c.L1ICacheLoadMisses) + 30*fc(c.ITLBLoadMisses)
		}),
		derived("stalled-cycles-backend", func(c *micro.Counts) float64 {
			return 10*fc(c.L1DCacheLoadMisses+c.L1DCacheStoreMiss) +
				180*fc(c.CacheMisses) + 30*fc(c.DTLBLoadMisses+c.DTLBStoreMiss)
		}),
		derived("uops-issued", func(c *micro.Counts) float64 { return 1.18 * fc(c.Instructions) }),
		derived("uops-retired", func(c *micro.Counts) float64 { return 1.12 * fc(c.Instructions) }),
		derived("uops-executed", func(c *micro.Counts) float64 { return 1.15 * fc(c.Instructions) }),
		derived("idq-uops-not-delivered", func(c *micro.Counts) float64 {
			return 4 * (10*fc(c.L1ICacheLoadMisses) + 16*fc(c.BranchMisses))
		}),
		derived("resource-stalls", func(c *micro.Counts) float64 {
			return 8 * fc(c.CacheMisses+c.L1DCacheLoadMisses/4)
		}),
		derived("cycle-activity-stalls-total", func(c *micro.Counts) float64 {
			return 10*fc(c.L1DCacheLoadMisses) + 180*fc(c.CacheMisses)
		}),
		derived("arith-divider-active", func(c *micro.Counts) float64 {
			return 0.002 * fc(c.Instructions)
		}),
		derived("lsd-uops", func(c *micro.Counts) float64 {
			return 0.3 * fc(c.Instructions)
		}),
		derived("dsb-uops", func(c *micro.Counts) float64 {
			return 0.5 * fc(c.Instructions)
		}),
		derived("mite-uops", func(c *micro.Counts) float64 {
			return 0.38*fc(c.Instructions) + 4*fc(c.L1ICacheLoadMisses)
		}),
		derived("mem-loads", func(c *micro.Counts) float64 { return fc(c.L1DCacheLoads) }),
		derived("mem-stores", func(c *micro.Counts) float64 { return fc(c.L1DCacheStores) }),
		// TLB/node prefetch events remain modelled (no dedicated
		// prefetcher exists for them in the simulator).
		derived("dTLB-prefetches", func(c *micro.Counts) float64 {
			return 0.4 * fc(c.DTLBLoadMisses)
		}),
		derived("dTLB-prefetch-misses", func(c *micro.Counts) float64 {
			return 0.2 * fc(c.DTLBLoadMisses)
		}),
		derived("node-prefetches", func(c *micro.Counts) float64 {
			return 0.5 * fc(c.NodeLoads)
		}),
		derived("node-prefetch-misses", func(c *micro.Counts) float64 {
			return 0.25 * fc(c.NodeLoads)
		}),
	}
	if len(catalog) != 52 {
		panic(fmt.Sprintf("pmu: catalog has %d events, want 52", len(catalog)))
	}
}

// Catalog returns the names of all 52 supported hardware events in a
// stable order.
func Catalog() []string {
	names := make([]string, len(catalog))
	for i, e := range catalog {
		names[i] = e.Name
	}
	return names
}

// Lookup returns the event with the given name.
func Lookup(name string) (Event, error) {
	for _, e := range catalog {
		if e.Name == name {
			return e, nil
		}
	}
	return Event{}, fmt.Errorf("pmu: unknown event %q", name)
}

// PaperFeatures returns the 16 HPC events used as classifier features in
// the paper (the attribute list visible in its WEKA PCA screenshot),
// in the paper's column order.
func PaperFeatures() []string {
	return []string{
		"branch-instructions",
		"branch-misses",
		"branch-loads",
		"branch-load-misses",
		"cache-references",
		"cache-misses",
		"L1-dcache-loads",
		"L1-dcache-stores",
		"L1-dcache-load-misses",
		"L1-icache-load-misses",
		"LLC-loads",
		"LLC-load-misses",
		"iTLB-load-misses",
		"node-loads",
		"node-stores",
		"bus-cycles",
	}
}

// Reading is one event's measured value over a sampling window.
type Reading struct {
	Name string
	// Value is the (possibly multiplex-extrapolated) count.
	Value float64
	// TimeRunningFrac is the fraction of the window during which the
	// event actually occupied a physical counter (1.0 = no multiplexing).
	TimeRunningFrac float64
}

// PMU is a programmed performance monitoring unit: a set of events to
// measure with a fixed number of physical counters.
type PMU struct {
	events      []Event
	counters    int
	multiplexOn bool
}

// Option configures a PMU.
type Option func(*PMU)

// WithCounters overrides the physical counter budget (default 8).
func WithCounters(n int) Option {
	return func(p *PMU) { p.counters = n }
}

// WithoutMultiplexing disables multiplexing: all programmed events are
// measured exactly, as if the PMU had unlimited counters. Used by the
// multiplexing ablation experiment.
func WithoutMultiplexing() Option {
	return func(p *PMU) { p.multiplexOn = false }
}

// New programs a PMU with the named events.
func New(eventNames []string, opts ...Option) (*PMU, error) {
	if len(eventNames) == 0 {
		return nil, fmt.Errorf("pmu: no events programmed")
	}
	seen := make(map[string]bool, len(eventNames))
	p := &PMU{counters: NumCounters, multiplexOn: true}
	for _, n := range eventNames {
		if seen[n] {
			return nil, fmt.Errorf("pmu: duplicate event %q", n)
		}
		seen[n] = true
		e, err := Lookup(n)
		if err != nil {
			return nil, err
		}
		p.events = append(p.events, e)
	}
	for _, o := range opts {
		o(p)
	}
	if p.counters <= 0 {
		return nil, fmt.Errorf("pmu: non-positive counter budget %d", p.counters)
	}
	return p, nil
}

// Groups returns the number of multiplex groups the programmed event set
// needs (1 = no multiplexing required).
func (p *PMU) Groups() int {
	g := (len(p.events) + p.counters - 1) / p.counters
	if g < 1 {
		g = 1
	}
	return g
}

// Measure reads the programmed events over a window that was executed as a
// series of equal-duration slices. When more events are programmed than
// physical counters, event groups rotate across slices round-robin — each
// group observes only its share of slices and its counts are extrapolated
// by the occupancy ratio, exactly as the perf kernel interface does
// (count * time_enabled / time_running). The returned readings are in
// programmed-event order.
//
// Measure returns an error if no slices are provided.
func (p *PMU) Measure(slices []micro.Counts) ([]Reading, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("pmu: no slices to measure")
	}
	groups := p.Groups()
	out := make([]Reading, len(p.events))
	mMeasurements.Inc()

	if !p.multiplexOn || groups == 1 {
		// Exact measurement: every event sees every slice.
		var total micro.Counts
		for i := range slices {
			total.Add(slices[i])
		}
		for i, e := range p.events {
			out[i] = Reading{Name: e.Name, Value: e.Derive(&total), TimeRunningFrac: 1}
		}
		return out, nil
	}

	// Multiplexed measurement: group g is live on slices s where
	// s mod groups == g. Each slice boundary rotates the live group.
	mRotations.Add(int64(len(slices)))
	for i, e := range p.events {
		group := i / p.counters
		var acc micro.Counts
		live := 0
		for s := range slices {
			if s%groups == group {
				acc.Add(slices[s])
				live++
			}
		}
		if live == 0 {
			// Fewer slices than groups: the event never got a counter.
			// perf reports 0 with time_running == 0; we do the same.
			out[i] = Reading{Name: e.Name, Value: 0, TimeRunningFrac: 0}
			continue
		}
		frac := float64(live) / float64(len(slices))
		out[i] = Reading{
			Name:            e.Name,
			Value:           e.Derive(&acc) / frac,
			TimeRunningFrac: frac,
		}
	}
	return out, nil
}

// EventNames returns the programmed event names in order.
func (p *PMU) EventNames() []string {
	names := make([]string, len(p.events))
	for i, e := range p.events {
		names[i] = e.Name
	}
	return names
}

// SortedCatalog returns the catalog names sorted alphabetically; useful
// for stable display in tools.
func SortedCatalog() []string {
	names := Catalog()
	sort.Strings(names)
	return names
}

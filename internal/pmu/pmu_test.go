package pmu

import (
	"math"
	"testing"

	"repro/internal/micro"
)

func TestCatalogHas52Events(t *testing.T) {
	names := Catalog()
	if len(names) != 52 {
		t.Fatalf("catalog has %d events, want 52", len(names))
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate catalog event %q", n)
		}
		seen[n] = true
	}
}

func TestPaperFeaturesAreInCatalog(t *testing.T) {
	feats := PaperFeatures()
	if len(feats) != 16 {
		t.Fatalf("paper feature set has %d events, want 16", len(feats))
	}
	for _, f := range feats {
		if _, err := Lookup(f); err != nil {
			t.Fatalf("paper feature %q not in catalog: %v", f, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("definitely-not-an-event"); err == nil {
		t.Fatal("Lookup accepted unknown event")
	}
}

func TestNewRejectsBadPrograms(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("accepted empty program")
	}
	if _, err := New([]string{"instructions", "instructions"}); err == nil {
		t.Fatal("accepted duplicate event")
	}
	if _, err := New([]string{"bogus"}); err == nil {
		t.Fatal("accepted unknown event")
	}
	if _, err := New([]string{"instructions"}, WithCounters(0)); err == nil {
		t.Fatal("accepted zero counters")
	}
}

func TestGroups(t *testing.T) {
	p, err := New(PaperFeatures()) // 16 events, 8 counters
	if err != nil {
		t.Fatal(err)
	}
	if p.Groups() != 2 {
		t.Fatalf("16 events on 8 counters: groups = %d, want 2", p.Groups())
	}
	p8, _ := New(PaperFeatures()[:8])
	if p8.Groups() != 1 {
		t.Fatalf("8 events on 8 counters: groups = %d, want 1", p8.Groups())
	}
}

// uniformSlices builds n identical slices with the given per-slice counts.
func uniformSlices(n int, c micro.Counts) []micro.Counts {
	out := make([]micro.Counts, n)
	for i := range out {
		out[i] = c
	}
	return out
}

func TestMeasureExactWhenNoMultiplexing(t *testing.T) {
	p, _ := New([]string{"instructions", "branch-misses"})
	slices := uniformSlices(10, micro.Counts{Instructions: 1000, BranchMisses: 50})
	rs, err := p.Measure(slices)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Value != 10000 || rs[0].TimeRunningFrac != 1 {
		t.Fatalf("instructions reading %+v", rs[0])
	}
	if rs[1].Value != 500 {
		t.Fatalf("branch-misses reading %+v", rs[1])
	}
}

func TestMeasureMultiplexedUniformIsExact(t *testing.T) {
	// With perfectly uniform slices, multiplex extrapolation is exact.
	p, _ := New(PaperFeatures())
	slices := uniformSlices(10, micro.Counts{
		Instructions: 1000, BranchInstructions: 200, BranchMisses: 20,
		CacheReferences: 100, CacheMisses: 10, L1DCacheLoads: 250,
	})
	rs, err := p.Measure(slices)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.TimeRunningFrac <= 0 || r.TimeRunningFrac >= 1 {
			t.Fatalf("multiplexed event %s has frac %v, want in (0,1)", r.Name, r.TimeRunningFrac)
		}
	}
	// branch-instructions: 200/slice * 10 slices = 2000 after scaling.
	for _, r := range rs {
		if r.Name == "branch-instructions" && math.Abs(r.Value-2000) > 1e-9 {
			t.Fatalf("branch-instructions = %v, want 2000", r.Value)
		}
	}
}

func TestMeasureMultiplexingIntroducesError(t *testing.T) {
	// Non-uniform slices: an event that observes only even slices will
	// extrapolate wrongly. Build slices where activity alternates.
	p, _ := New(PaperFeatures())
	slices := make([]micro.Counts, 10)
	for i := range slices {
		v := uint64(100)
		if i%2 == 1 {
			v = 300 // odd slices have 3x the branches
		}
		slices[i] = micro.Counts{BranchInstructions: v, Instructions: 1000}
	}
	rs, err := p.Measure(slices)
	if err != nil {
		t.Fatal(err)
	}
	trueTotal := 100.0*5 + 300.0*5
	var measured float64
	for _, r := range rs {
		if r.Name == "branch-instructions" {
			measured = r.Value
		}
	}
	if math.Abs(measured-trueTotal) < 1e-9 {
		t.Fatalf("alternating activity should produce extrapolation error, got exact %v", measured)
	}
	// But error must be bounded by the activity ratio.
	if measured < trueTotal/3 || measured > trueTotal*3 {
		t.Fatalf("extrapolation error implausibly large: %v vs %v", measured, trueTotal)
	}
}

func TestWithoutMultiplexingIsExact(t *testing.T) {
	p, _ := New(PaperFeatures(), WithoutMultiplexing())
	slices := make([]micro.Counts, 10)
	for i := range slices {
		v := uint64(100)
		if i%2 == 1 {
			v = 300
		}
		slices[i] = micro.Counts{BranchInstructions: v}
	}
	rs, err := p.Measure(slices)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Name == "branch-instructions" {
			if r.Value != 2000 {
				t.Fatalf("exact mode value %v, want 2000", r.Value)
			}
			if r.TimeRunningFrac != 1 {
				t.Fatalf("exact mode frac %v, want 1", r.TimeRunningFrac)
			}
		}
	}
}

func TestMeasureStarvedEvent(t *testing.T) {
	// 16 events in 2 groups but only 1 slice: group 1 never runs.
	p, _ := New(PaperFeatures())
	rs, err := p.Measure(uniformSlices(1, micro.Counts{Instructions: 100}))
	if err != nil {
		t.Fatal(err)
	}
	starved := 0
	for _, r := range rs {
		if r.TimeRunningFrac == 0 {
			if r.Value != 0 {
				t.Fatalf("starved event %s has nonzero value %v", r.Name, r.Value)
			}
			starved++
		}
	}
	if starved != 8 {
		t.Fatalf("%d starved events, want 8", starved)
	}
}

func TestMeasureNoSlices(t *testing.T) {
	p, _ := New([]string{"instructions"})
	if _, err := p.Measure(nil); err == nil {
		t.Fatal("Measure accepted empty slice list")
	}
}

func TestDerivedEventsRespondToActivity(t *testing.T) {
	quiet := micro.Counts{Instructions: 1000}
	busy := micro.Counts{Instructions: 1000, L1DCacheLoadMisses: 500, CacheMisses: 100,
		L1ICacheLoadMisses: 200, BranchMisses: 100, DTLBLoadMisses: 50,
		ITLBLoadMisses: 20, LLCLoadMisses: 80, NodeLoads: 80}
	for _, name := range []string{"stalled-cycles-frontend", "stalled-cycles-backend",
		"dTLB-prefetches", "node-prefetches", "resource-stalls"} {
		e, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if e.Derive(&busy) <= e.Derive(&quiet) {
			t.Fatalf("derived event %s does not respond to memory pressure", name)
		}
	}
}

func TestRawPrefetchEvents(t *testing.T) {
	// Prefetch events at L1D and LLC are raw counters now: they read the
	// simulator's next-line prefetcher directly.
	c := micro.Counts{L1DPrefetches: 7, L1DPrefetchMisses: 5,
		LLCPrefetches: 3, LLCPrefetchMisses: 2}
	for name, want := range map[string]float64{
		"L1-dcache-prefetches":      7,
		"L1-dcache-prefetch-misses": 5,
		"LLC-prefetches":            3,
		"LLC-prefetch-misses":       2,
	} {
		e, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Derive(&c); got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestEventNamesOrder(t *testing.T) {
	names := []string{"cache-misses", "instructions", "bus-cycles"}
	p, _ := New(names)
	got := p.EventNames()
	for i, n := range names {
		if got[i] != n {
			t.Fatalf("EventNames order mismatch: %v", got)
		}
	}
}

func TestSortedCatalog(t *testing.T) {
	s := SortedCatalog()
	if len(s) != 52 {
		t.Fatalf("sorted catalog has %d entries", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			t.Fatalf("catalog not sorted at %d: %s >= %s", i, s[i-1], s[i])
		}
	}
}

// Package rng provides a deterministic, seedable pseudo-random number
// generator and the sampling distributions used throughout the simulator.
//
// Every experiment in this repository must be reproducible from a single
// integer seed, so the package deliberately avoids math/rand's global state:
// each Source is an independent xoshiro256** stream whose state is derived
// from the seed with SplitMix64, following the reference initialization
// recommended by the xoshiro authors.
package rng

import "math"

// Source is a xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only to expand the user seed into the xoshiro state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state, which
	// xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives a new independent Source from r. The derived stream is
// decorrelated from r's future output, so subsystems can be given their own
// generators without consuming each other's sequences.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// modulo bias is negligible for the n values used in this project,
	// but we still reject to keep the distribution exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		low := v % bound
		if v-low <= ^uint64(0)-threshold {
			return int(low)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Range returns a uniform value in [lo, hi). It panics if hi < lo.
func (r *Source) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(N(mu, sigma)). mu and sigma parameterize the
// underlying normal, not the resulting distribution's mean.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exp returns an exponentially distributed value with the given rate
// (lambda). The mean of the distribution is 1/rate.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Poisson returns a Poisson-distributed count with the given mean.
// It uses Knuth's method for small means and a normal approximation with
// continuity correction for large ones.
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	limit := math.Exp(-mean)
	p := 1.0
	n := 0
	for {
		p *= r.Float64()
		if p <= limit {
			return n
		}
		n++
	}
}

// Zipf returns values in [1, n] with probability proportional to
// 1/rank^s, via inverse-CDF over a precomputed table. For repeated draws
// with the same parameters use NewZipf.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s > 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Draw returns a rank in [1, n].
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Dirichlet fills out with a draw from a Dirichlet distribution with the
// given concentration parameters. out and alpha must have equal length.
// The result sums to 1.
func (r *Source) Dirichlet(alpha []float64, out []float64) {
	if len(alpha) != len(out) {
		panic("rng: Dirichlet length mismatch")
	}
	sum := 0.0
	for i, a := range alpha {
		g := r.Gamma(a)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia-Tsang method
// (with Johnk-style boosting for shape < 1).
func (r *Source) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// boost: Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Categorical returns an index drawn with probability proportional to
// weights[i]. Weights must be non-negative with a positive sum.
func (r *Source) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Categorical with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical with non-positive weight sum")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	c := a.Split()
	// The split stream must not replay the parent stream.
	av := make([]uint64, 50)
	for i := range av {
		av[i] = a.Uint64()
	}
	matches := 0
	for i := 0; i < 50; i++ {
		v := c.Uint64()
		for _, x := range av {
			if v == x {
				matches++
			}
		}
	}
	if matches > 0 {
		t.Fatalf("split stream shares %d values with parent", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	seen := make(map[int]int)
	for i := 0; i < 60000; i++ {
		v := r.Intn(6)
		if v < 0 || v >= 6 {
			t.Fatalf("Intn(6) out of range: %d", v)
		}
		seen[v]++
	}
	for k := 0; k < 6; k++ {
		if seen[k] < 8000 || seen[k] > 12000 {
			t.Fatalf("Intn(6) bucket %d count %d outside [8000,12000]", k, seen[k])
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.03 {
		t.Fatalf("normal mean %v too far from 3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Fatalf("normal variance %v too far from 4", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(0.5)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("exponential mean %v too far from 2", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 30, 120} {
		r := New(17)
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			v := r.Poisson(lambda)
			if v < 0 {
				t.Fatalf("Poisson produced negative count %d", v)
			}
			sum += v
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean %v too far off", lambda, mean)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := New(1)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
	if v := r.Poisson(-1); v != 0 {
		t.Fatalf("Poisson(-1) = %d, want 0", v)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(19)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 101)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Draw()
		if v < 1 || v > 100 {
			t.Fatalf("Zipf draw out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[10] {
		t.Fatalf("Zipf counts not decreasing: c1=%d c2=%d c10=%d",
			counts[1], counts[2], counts[10])
	}
	if counts[1] < n/10 {
		t.Fatalf("Zipf rank-1 mass %d too small for s=1.2", counts[1])
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(23)
	alpha := []float64{1, 2, 3, 0.5}
	out := make([]float64, 4)
	for i := 0; i < 100; i++ {
		r.Dirichlet(alpha, out)
		sum := 0.0
		for _, v := range out {
			if v < 0 {
				t.Fatalf("Dirichlet produced negative component %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sum %v != 1", sum)
		}
	}
}

func TestGammaMean(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		r := New(29)
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Fatalf("Gamma(%v) mean %v too far from shape", shape, mean)
		}
	}
}

func TestCategoricalWeighting(t *testing.T) {
	r := New(31)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("category ratio %v too far from 3", ratio)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(41)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

// Property: Intn(n) always lies in [0, n) for any positive n.
func TestIntnProperty(t *testing.T) {
	r := New(43)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the same seed always produces the same first draw.
func TestSeedDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		return New(seed).Uint64() == New(seed).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

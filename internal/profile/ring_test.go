package profile

import (
	"fmt"
	"testing"
)

func mkCapture(id string, size int, pinned bool) *capture {
	return &capture{
		info: CaptureInfo{ID: id, Type: TypeCPU, Trigger: TriggerInterval,
			SizeBytes: size, Pinned: pinned},
		blob: make([]byte, size),
	}
}

// TestRingEvictsOldestFirst fills past the budget and asserts captures
// leave in insertion order.
func TestRingEvictsOldestFirst(t *testing.T) {
	r := ring{budget: 300}
	for i := 0; i < 3; i++ {
		if d := r.add(mkCapture(fmt.Sprintf("c%d", i), 100, false)); d != 0 {
			t.Fatalf("add %d: dropped %d before budget exceeded", i, d)
		}
	}
	if d := r.add(mkCapture("c3", 100, false)); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
	if r.get("c0") != nil {
		t.Fatal("c0 (oldest) should have been evicted")
	}
	if r.get("c1") == nil || r.get("c3") == nil {
		t.Fatal("newer captures must survive")
	}
	if r.bytes != 300 {
		t.Fatalf("bytes = %d, want 300", r.bytes)
	}
}

// TestRingPinnedSurvives interleaves pinned (incident-triggered) and
// unpinned captures: evictions must take every unpinned capture before
// touching a pinned one, regardless of age.
func TestRingPinnedSurvives(t *testing.T) {
	r := ring{budget: 300}
	r.add(mkCapture("pin0", 100, true)) // oldest, pinned
	r.add(mkCapture("int1", 100, false))
	r.add(mkCapture("int2", 100, false))
	// Over budget: int1 (oldest unpinned) must go, not pin0.
	if d := r.add(mkCapture("int3", 100, false)); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
	if r.get("pin0") == nil {
		t.Fatal("pinned capture evicted while unpinned captures remained")
	}
	if r.get("int1") != nil {
		t.Fatal("oldest unpinned capture should have been evicted")
	}
	// Again: int2 goes, pin0 still survives.
	r.add(mkCapture("int4", 100, false))
	if r.get("pin0") == nil || r.get("int2") != nil {
		t.Fatal("second eviction must take int2, keep pin0")
	}
}

// TestRingAllPinnedStaysBounded: when only pinned captures remain, the
// oldest pinned is evicted — the budget is a hard bound, triggers or not.
func TestRingAllPinnedStaysBounded(t *testing.T) {
	r := ring{budget: 300}
	for i := 0; i < 5; i++ {
		r.add(mkCapture(fmt.Sprintf("pin%d", i), 100, true))
	}
	if r.bytes > r.budget {
		t.Fatalf("bytes = %d exceeds budget %d with all-pinned ring", r.bytes, r.budget)
	}
	if r.get("pin0") != nil || r.get("pin1") != nil {
		t.Fatal("oldest pinned captures must be evicted once only pinned remain")
	}
	if r.get("pin4") == nil {
		t.Fatal("newest capture must always survive")
	}
}

// TestRingOversizeBlobLands: a single blob larger than the whole budget
// still lands (and flushes everything older) — the newest capture is
// never the victim.
func TestRingOversizeBlobLands(t *testing.T) {
	r := ring{budget: 300}
	r.add(mkCapture("small", 100, true))
	if d := r.add(mkCapture("huge", 1000, false)); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
	if r.get("huge") == nil {
		t.Fatal("oversize capture must land")
	}
	if len(r.caps) != 1 {
		t.Fatalf("ring holds %d captures, want 1", len(r.caps))
	}
}

// TestRingListFilters exercises the type/trigger/limit filters and the
// newest-first ordering behind GET /api/v1/profiles.
func TestRingListFilters(t *testing.T) {
	r := ring{budget: 1 << 20}
	add := func(id, typ, trigger string) {
		r.add(&capture{info: CaptureInfo{ID: id, Type: typ, Trigger: trigger}, blob: []byte{0}})
	}
	add("cpu1", TypeCPU, TriggerInterval)
	add("heap1", TypeHeap, TriggerInterval)
	add("cpu2", TypeCPU, "alert")
	add("cpu3", TypeCPU, TriggerInterval)

	all := r.list("", "", 0)
	if len(all) != 4 || all[0].ID != "cpu3" || all[3].ID != "cpu1" {
		t.Fatalf("list all = %+v, want newest-first cpu3..cpu1", all)
	}
	cpus := r.list(TypeCPU, "", 0)
	if len(cpus) != 3 {
		t.Fatalf("type filter: got %d, want 3", len(cpus))
	}
	alerts := r.list("", "alert", 0)
	if len(alerts) != 1 || alerts[0].ID != "cpu2" {
		t.Fatalf("trigger filter = %+v, want [cpu2]", alerts)
	}
	if lim := r.list(TypeCPU, "", 2); len(lim) != 2 || lim[0].ID != "cpu3" {
		t.Fatalf("limit filter = %+v", lim)
	}
}

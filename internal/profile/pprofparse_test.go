package profile

import (
	"bytes"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// ballast keeps a named allocation alive so the in-process heap profile
// used by the parser tests has a deterministic function to find.
var ballast [][]byte

//go:noinline
func allocateBallast() {
	for i := 0; i < 64; i++ {
		ballast = append(ballast, make([]byte, 64<<10))
	}
}

// TestParseHeapProfile runs the parser over a real runtime/pprof heap
// profile: the summary must rank by inuse_space and find the ballast
// allocator among the top functions.
func TestParseHeapProfile(t *testing.T) {
	ballast = nil
	allocateBallast()
	defer func() { ballast = nil }()

	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	sum, err := ParseSummary(buf.Bytes(), 20)
	if err != nil {
		t.Fatalf("ParseSummary: %v", err)
	}
	if sum.SampleType != "inuse_space" || sum.Unit != "bytes" {
		t.Fatalf("ranked by %s/%s, want inuse_space/bytes", sum.SampleType, sum.Unit)
	}
	if sum.Total <= 0 || sum.Samples == 0 || len(sum.Functions) == 0 {
		t.Fatalf("empty summary: %+v", sum)
	}
	found := false
	for _, f := range sum.Functions {
		if strings.Contains(f.Name, "allocateBallast") {
			found = true
			if f.Flat <= 0 || f.FlatPct <= 0 || f.Cum < f.Flat {
				t.Fatalf("ballast stats implausible: %+v", f)
			}
		}
		if f.FlatPct < 0 || f.FlatPct > 100.0001 || f.CumPct < f.FlatPct-0.0001 {
			t.Fatalf("percent invariants violated: %+v", f)
		}
	}
	if !found {
		t.Fatalf("allocateBallast not in top functions: %+v", sum.Functions)
	}
}

// TestParseCPUProfile parses a real CPU profile blob. Sample counts
// depend on scheduler luck, so assertions on content are lenient — the
// structural claims (parses, ranked by cpu, ordered by flat desc) are
// not.
func TestParseCPUProfile(t *testing.T) {
	var buf bytes.Buffer
	if !TryAcquireCPU() {
		t.Skip("cpu profile slot held elsewhere")
	}
	if err := pprof.StartCPUProfile(&buf); err != nil {
		ReleaseCPU()
		t.Fatal(err)
	}
	spinUntil(time.Now().Add(150 * time.Millisecond))
	pprof.StopCPUProfile()
	ReleaseCPU()

	sum, err := ParseSummary(buf.Bytes(), 10)
	if err != nil {
		t.Fatalf("ParseSummary: %v", err)
	}
	if sum.SampleType != "cpu" {
		t.Fatalf("ranked by %s, want cpu", sum.SampleType)
	}
	if sum.DurationMS <= 0 {
		t.Fatalf("duration = %v, want > 0", sum.DurationMS)
	}
	for i := 1; i < len(sum.Functions); i++ {
		if sum.Functions[i].Flat > sum.Functions[i-1].Flat {
			t.Fatalf("functions not ordered by flat desc: %+v", sum.Functions)
		}
	}
}

//go:noinline
func spinUntil(deadline time.Time) float64 {
	x := 1.0
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x = x*1.000000001 + 0.000001
		}
	}
	return x
}

// TestParseGarbageRejected: corrupt input errors instead of panicking.
func TestParseGarbageRejected(t *testing.T) {
	for _, blob := range [][]byte{
		[]byte("not a profile at all"),
		{0x1f, 0x8b, 0xff, 0x00}, // gzip magic, garbage body
		{0x08},                   // truncated varint field
	} {
		if _, err := ParseSummary(blob, 5); err == nil {
			t.Fatalf("ParseSummary(%q) = nil error, want failure", blob)
		}
	}
}

// ring.go is the profiler's byte-budgeted capture store. Captures are
// kept in insertion order and evicted oldest-first once the summed blob
// size crosses the budget, with one carve-out: captures pinned by a
// trigger (a firing alert, an alarm, a manual request) outlive interval
// captures, because the profile from the moment something went wrong is
// exactly the one worth keeping. If pinned captures alone exceed the
// budget the oldest pinned capture goes too — memory stays bounded no
// matter what the trigger rate is.
package profile

// capture is one stored profile: immutable metadata plus the raw
// (gzipped pprof) blob.
type capture struct {
	info CaptureInfo
	blob []byte
}

// CaptureInfo is the API-visible metadata of one capture.
type CaptureInfo struct {
	ID string `json:"id"`
	// Type is one of "cpu", "heap", "goroutine", "mutex", "block".
	Type string `json:"type"`
	// Trigger records why the capture happened: "interval" for the
	// background duty cycle, otherwise the bus event type ("alert",
	// "alarm") or "manual".
	Trigger    string `json:"trigger"`
	TimeUnixMS int64  `json:"t_ms"`
	SizeBytes  int    `json:"size_bytes"`
	// Pinned captures survive ring eviction ahead of interval captures.
	Pinned bool `json:"pinned,omitempty"`
	// Summary is the parsed top-N view; nil when parsing failed.
	Summary *Summary `json:"summary,omitempty"`
}

// ring holds captures oldest-first under the owning Profiler's mutex.
type ring struct {
	caps   []*capture
	bytes  int64
	budget int64
}

// add appends c and evicts until the ring fits the budget again,
// returning how many captures were dropped. The newest capture is never
// evicted: a single blob larger than the whole budget still lands (and
// flushes everything older).
func (r *ring) add(c *capture) (dropped int) {
	r.caps = append(r.caps, c)
	r.bytes += int64(len(c.blob))
	for r.bytes > r.budget && len(r.caps) > 1 {
		i := r.oldestEvictable()
		victim := r.caps[i]
		r.caps = append(r.caps[:i], r.caps[i+1:]...)
		r.bytes -= int64(len(victim.blob))
		dropped++
	}
	return dropped
}

// oldestEvictable returns the index of the oldest unpinned capture, or
// the oldest capture outright when everything (but the newest) is
// pinned. The newest entry is excluded so add never evicts what it just
// stored.
func (r *ring) oldestEvictable() int {
	for i := 0; i < len(r.caps)-1; i++ {
		if !r.caps[i].info.Pinned {
			return i
		}
	}
	return 0
}

// get returns the capture with the given id.
func (r *ring) get(id string) *capture {
	for _, c := range r.caps {
		if c.info.ID == id {
			return c
		}
	}
	return nil
}

// latest returns the newest capture of the given type.
func (r *ring) latest(typ string) *capture {
	for i := len(r.caps) - 1; i >= 0; i-- {
		if r.caps[i].info.Type == typ {
			return r.caps[i]
		}
	}
	return nil
}

// list returns capture metadata newest-first, filtered by type and
// trigger (empty string matches all) and capped at limit (<=0: all).
func (r *ring) list(typ, trigger string, limit int) []CaptureInfo {
	out := make([]CaptureInfo, 0, len(r.caps))
	for i := len(r.caps) - 1; i >= 0; i-- {
		info := r.caps[i].info
		if typ != "" && info.Type != typ {
			continue
		}
		if trigger != "" && info.Trigger != trigger {
			continue
		}
		out = append(out, info)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

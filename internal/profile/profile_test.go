package profile

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func testProfiler(t *testing.T, mutate func(*Config)) *Profiler {
	t.Helper()
	cfg := Config{
		Interval:        50 * time.Millisecond,
		Duty:            5 * time.Millisecond,
		TriggerCooldown: time.Nanosecond,
		Registry:        obs.NewRegistry(),
		Bus:             obs.NewBus(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg)
}

// TestCycleNowStoresAllTypes: one synchronous cycle yields a CPU capture
// plus every configured snapshot, all retrievable through List/Get/Latest.
func TestCycleNowStoresAllTypes(t *testing.T) {
	p := testProfiler(t, nil)
	p.CycleNow("")

	want := []string{TypeCPU, TypeHeap, TypeGoroutine, TypeMutex, TypeBlock}
	all := p.List("", "", 0)
	if len(all) != len(want) {
		t.Fatalf("captures = %+v, want %d types", all, len(want))
	}
	for _, typ := range want {
		info, ok := p.Latest(typ)
		if !ok {
			t.Fatalf("no %s capture after CycleNow", typ)
		}
		if info.Trigger != TriggerInterval || info.Pinned {
			t.Fatalf("%s capture = %+v, want unpinned interval", typ, info)
		}
		got, blob, ok := p.Get(info.ID)
		if !ok || got.ID != info.ID || len(blob) == 0 || len(blob) != info.SizeBytes {
			t.Fatalf("Get(%s) = %+v ok=%v len=%d", info.ID, got, ok, len(blob))
		}
	}
	// Snapshot types parse eagerly: heap must carry a summary.
	if info, _ := p.Latest(TypeHeap); info.Summary == nil || info.Summary.SampleType != "inuse_space" {
		t.Fatalf("heap summary = %+v, want parsed inuse_space", info.Summary)
	}

	s := p.Stats()
	if s.Captures != int64(len(want)) || s.RingCaptures != len(want) || s.RingBytes == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if len(s.ByCause) == 0 {
		t.Fatalf("stats.ByCause empty after captures")
	}
	for _, c := range s.ByCause {
		if c.Trigger != TriggerInterval || c.Count != 1 {
			t.Fatalf("by_cause cell = %+v, want one interval capture per type", c)
		}
	}
}

// TestBusEventTriggersPinnedCapture: an "alert" event on the bus makes
// the running sampler take an immediate capture pinned against eviction
// and attributed to the alert.
func TestBusEventTriggersPinnedCapture(t *testing.T) {
	bus := obs.NewBus()
	p := testProfiler(t, func(c *Config) {
		c.Interval = time.Hour // only the trigger path can produce extra captures
		c.Duty = 5 * time.Millisecond
		c.Bus = bus
	})
	stop := p.Start()
	defer stop()

	// Wait out the immediate first cycle so the trigger's captures are
	// distinguishable.
	waitFor(t, func() bool { return p.Stats().Captures >= 5 })

	bus.Publish(obs.Event{Type: "alert", Msg: "rule fired"})
	waitFor(t, func() bool { return len(p.List("", "alert", 0)) > 0 })

	info, ok := p.Latest(TypeCPU)
	if !ok {
		t.Fatal("no cpu capture after alert")
	}
	if info.Trigger != "alert" || !info.Pinned {
		t.Fatalf("cpu capture = %+v, want pinned alert-triggered", info)
	}
	// Unrelated event types must not trigger.
	before := p.Stats().Captures
	bus.Publish(obs.Event{Type: "window"})
	time.Sleep(30 * time.Millisecond)
	if got := p.Stats().Captures; got != before {
		t.Fatalf("captures %d -> %d after non-trigger event", before, got)
	}
}

// TestTriggerCooldown: a second trigger inside the cooldown window is
// refused, so an alarm storm cannot turn the sampler always-on.
func TestTriggerCooldown(t *testing.T) {
	p := testProfiler(t, func(c *Config) {
		c.TriggerCooldown = time.Hour
	})
	if !p.TriggerCapture("alert") {
		t.Fatal("first trigger refused")
	}
	if p.TriggerCapture("alert") {
		t.Fatal("second trigger inside cooldown accepted")
	}
}

// TestCPUGateSkips: while another caller holds the process-wide CPU
// slot, a cycle skips the CPU capture (counting an error) but still
// takes the snapshots.
func TestCPUGateSkips(t *testing.T) {
	if !TryAcquireCPU() {
		t.Skip("cpu profile slot held elsewhere")
	}
	defer ReleaseCPU()

	p := testProfiler(t, nil)
	p.CycleNow("")
	if _, ok := p.Latest(TypeCPU); ok {
		t.Fatal("cpu capture taken while gate was held")
	}
	if _, ok := p.Latest(TypeHeap); !ok {
		t.Fatal("snapshots must still run when the cpu slot is busy")
	}
	if s := p.Stats(); s.Errors == 0 {
		t.Fatalf("stats = %+v, want skipped cpu window counted as error", s)
	}
}

// funcSample is one (function, self-value) pair in a synthetic profile.
type funcSample struct {
	name string
	flat int64
}

// buildCPUBlob hand-encodes a minimal valid pprof protobuf (raw, not
// gzipped — ParseSummary accepts both) with one single-frame sample per
// function. It exists so tests can feed store() profiles with chosen
// function shares, which real runtime captures can't provide.
func buildCPUBlob(fns []funcSample) []byte {
	var varint func(b []byte, v uint64) []byte
	varint = func(b []byte, v uint64) []byte {
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		return append(b, byte(v))
	}
	field := func(b []byte, num int, msg []byte) []byte {
		b = varint(b, uint64(num)<<3|wireBytes)
		b = varint(b, uint64(len(msg)))
		return append(b, msg...)
	}
	vfield := func(b []byte, num int, v uint64) []byte {
		b = varint(b, uint64(num)<<3|wireVarint)
		return varint(b, v)
	}

	var out []byte
	// sample_type: ValueType{type: "cpu"(1), unit: "nanoseconds"(2)}
	out = field(out, 1, vfield(vfield(nil, 1, 1), 2, 2))
	for i, fn := range fns {
		id := uint64(i + 1)
		nameIdx := uint64(i + 3) // after "", "cpu", "nanoseconds"
		// sample: one leaf-only stack [locID] with value [flat]
		out = field(out, 2, append(
			field(nil, 1, varint(nil, id)),
			field(nil, 2, varint(nil, uint64(fn.flat)))...))
		// location: Location{id, line: Line{function_id}}
		out = field(out, 4, append(
			vfield(nil, 1, id),
			field(nil, 4, vfield(nil, 1, id))...))
		// function: Function{id, name}
		out = field(out, 5, vfield(vfield(nil, 1, id), 2, nameIdx))
	}
	for _, s := range append([]string{"", "cpu", "nanoseconds"},
		func() []string {
			names := make([]string, len(fns))
			for i, fn := range fns {
				names[i] = fn.name
			}
			return names
		}()...) {
		out = field(out, 6, []byte(s))
	}
	return out
}

// TestRegressionPublishesBusEvent drives two synthetic CPU captures
// through store: the second shows one function jumping from ~11% to
// ~56% flat share, which must publish exactly one profile.regression
// bus event and count in Stats.
func TestRegressionPublishesBusEvent(t *testing.T) {
	bus := obs.NewBus()
	p := testProfiler(t, func(c *Config) { c.Bus = bus })
	sub := bus.Subscribe(16)
	defer sub.Close()

	p.store(TypeCPU, TriggerInterval, false,
		buildCPUBlob([]funcSample{{"hot", 50}, {"steady", 400}}))
	p.store(TypeCPU, TriggerInterval, false,
		buildCPUBlob([]funcSample{{"hot", 500}, {"steady", 400}}))

	select {
	case e := <-sub.Events():
		if e.Type != EventRegression {
			t.Fatalf("event type = %q, want %q", e.Type, EventRegression)
		}
		if e.Value < 50 || e.Value > 60 { // hot is 500/900 ≈ 55.6%
			t.Fatalf("event value = %.1f, want hot's ~55.6%% share", e.Value)
		}
		if !strings.Contains(e.Msg, "hot") {
			t.Fatalf("event msg = %q, want the hot function named", e.Msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no profile.regression event published")
	}
	s := p.Stats()
	if s.Regressions != 1 {
		t.Fatalf("stats.Regressions = %d, want 1 (steady shrank, must not flag)", s.Regressions)
	}
	// The stored captures carry parsed summaries of the synthetic blobs.
	info, _ := p.Latest(TypeCPU)
	if info.Summary == nil || info.Summary.SampleType != "cpu" || info.Summary.Total != 900 {
		t.Fatalf("latest summary = %+v", info.Summary)
	}
}

// TestNilProfilerSafe: every method must be a no-op on nil, because
// commands wire the profiler unconditionally and leave it nil when
// -profile-interval 0 disables it.
func TestNilProfilerSafe(t *testing.T) {
	var p *Profiler
	stop := p.Start()
	stop()
	p.CycleNow("alert")
	if p.TriggerCapture("alert") {
		t.Fatal("nil TriggerCapture returned true")
	}
	if got := p.List("", "", 0); got != nil {
		t.Fatalf("nil List = %+v", got)
	}
	if _, _, ok := p.Get("x"); ok {
		t.Fatal("nil Get returned ok")
	}
	if _, ok := p.Latest(TypeCPU); ok {
		t.Fatal("nil Latest returned ok")
	}
	if s := p.Stats(); s.Captures != 0 {
		t.Fatalf("nil Stats = %+v", s)
	}
}

// TestStartStopIdempotent: stop returns promptly mid-duty and is safe to
// call twice.
func TestStartStopIdempotent(t *testing.T) {
	p := testProfiler(t, func(c *Config) {
		c.Interval = 50 * time.Millisecond
		c.Duty = 50 * time.Millisecond
	})
	stop := p.Start()
	time.Sleep(10 * time.Millisecond) // land inside the first duty window
	done := make(chan struct{})
	go func() { stop(); stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not return; quit must end the duty window early")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met within 10s")
}

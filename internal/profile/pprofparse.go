// pprofparse.go is a minimal reader for the gzipped protobuf profiles
// that runtime/pprof emits. The profiler stores every capture as the raw
// blob (so `go tool pprof` keeps working on downloads) but also needs a
// cheap in-process view — top-N functions by flat and cumulative value —
// for the API's ?summary=1 responses, the dashboard panel, and the
// regression diff engine. Pulling in github.com/google/pprof for that
// would add a dependency tree for what is ~five message types of
// proto2-compatible wire format, so this file decodes just the fields
// the summary needs: sample types, samples (location stacks + values),
// locations, lines, functions, and the string table.
package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// Summary is the parsed top-N view of one capture: per-function flat
// (self) and cumulative values for the profile's primary sample type.
type Summary struct {
	// SampleType / Unit name the value column the summary ranks by
	// (e.g. "cpu"/"nanoseconds", "inuse_space"/"bytes").
	SampleType string `json:"sample_type"`
	Unit       string `json:"unit"`
	// Total is the sum of the ranked value over all samples.
	Total int64 `json:"total"`
	// Samples is the number of sample records in the profile.
	Samples int `json:"samples"`
	// DurationMS is the profile's self-declared duration, when present.
	DurationMS float64 `json:"duration_ms,omitempty"`
	// Functions holds the top-N functions ordered by flat desc.
	Functions []FuncStat `json:"functions,omitempty"`
}

// FuncStat is one function's share of a profile.
type FuncStat struct {
	Name    string  `json:"name"`
	Flat    int64   `json:"flat"`
	FlatPct float64 `json:"flat_pct"`
	Cum     int64   `json:"cum"`
	CumPct  float64 `json:"cum_pct"`
}

// parsed is the decoded subset of a pprof profile.
type parsed struct {
	sampleTypes []valueType
	samples     []sample
	locFunc     map[uint64]int64 // location id -> leaf function name (string idx)
	locStack    map[uint64][]int64
	funcName    map[uint64]int64 // function id -> name string idx
	strings     []string
	durationNS  int64
}

type valueType struct{ typ, unit int64 } // string table indices

type sample struct {
	locs   []uint64
	values []int64
}

// ParseSummary decodes a pprof blob (gzipped or raw protobuf) and
// returns its top-N summary. The value column is chosen by preference:
// "cpu", then "inuse_space", then "delay", falling back to the last
// sample type (pprof convention for the default).
func ParseSummary(blob []byte, topN int) (*Summary, error) {
	p, err := parseProfile(blob)
	if err != nil {
		return nil, err
	}
	return p.summarize(topN), nil
}

func parseProfile(blob []byte) (*parsed, error) {
	data := blob
	if len(blob) >= 2 && blob[0] == 0x1f && blob[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("profile gunzip: %w", err)
		}
		data, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profile gunzip: %w", err)
		}
	}
	p := &parsed{
		locFunc:  map[uint64]int64{},
		locStack: map[uint64][]int64{},
		funcName: map[uint64]int64{},
	}
	err := eachField(data, func(field int, wire int, v uint64, msg []byte) error {
		switch field {
		case 1: // sample_type: ValueType
			vt, err := parseValueType(msg)
			if err != nil {
				return err
			}
			p.sampleTypes = append(p.sampleTypes, vt)
		case 2: // sample
			s, err := parseSample(msg)
			if err != nil {
				return err
			}
			p.samples = append(p.samples, s)
		case 4: // location
			return p.parseLocation(msg)
		case 5: // function
			return p.parseFunction(msg)
		case 6: // string_table
			p.strings = append(p.strings, string(msg))
		case 10: // duration_nanos
			p.durationNS = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Resolve each location to its leaf (innermost) function's name
	// index: the first Line entry holds the finest frame.
	for id, fns := range p.locStack {
		if len(fns) > 0 {
			p.locFunc[id] = p.funcName[uint64(fns[0])]
		}
	}
	return p, nil
}

func parseValueType(msg []byte) (valueType, error) {
	var vt valueType
	err := eachField(msg, func(field, wire int, v uint64, _ []byte) error {
		switch field {
		case 1:
			vt.typ = int64(v)
		case 2:
			vt.unit = int64(v)
		}
		return nil
	})
	return vt, err
}

func parseSample(msg []byte) (sample, error) {
	var s sample
	err := eachField(msg, func(field, wire int, v uint64, sub []byte) error {
		switch field {
		case 1: // location_id, usually packed
			if wire == wireBytes {
				return eachPacked(sub, func(u uint64) {
					s.locs = append(s.locs, u)
				})
			}
			s.locs = append(s.locs, v)
		case 2: // value, usually packed
			if wire == wireBytes {
				return eachPacked(sub, func(u uint64) {
					s.values = append(s.values, int64(u))
				})
			}
			s.values = append(s.values, int64(v))
		}
		return nil
	})
	return s, err
}

func (p *parsed) parseLocation(msg []byte) error {
	var id uint64
	var fns []int64
	err := eachField(msg, func(field, wire int, v uint64, sub []byte) error {
		switch field {
		case 1:
			id = v
		case 4: // Line { function_id = 1 }
			var fnID uint64
			if err := eachField(sub, func(f, _ int, lv uint64, _ []byte) error {
				if f == 1 {
					fnID = lv
				}
				return nil
			}); err != nil {
				return err
			}
			if fnID != 0 {
				fns = append(fns, int64(fnID))
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	stack := make([]int64, len(fns))
	copy(stack, fns)
	p.locStack[id] = stack
	return nil
}

func (p *parsed) parseFunction(msg []byte) error {
	var id uint64
	var name int64
	err := eachField(msg, func(field, wire int, v uint64, _ []byte) error {
		switch field {
		case 1:
			id = v
		case 2:
			name = int64(v)
		}
		return nil
	})
	if err != nil {
		return err
	}
	p.funcName[id] = name
	return nil
}

func (p *parsed) str(i int64) string {
	if i < 0 || int(i) >= len(p.strings) {
		return ""
	}
	return p.strings[i]
}

// valueIndex picks the value column the summary ranks by.
func (p *parsed) valueIndex() int {
	for _, want := range []string{"cpu", "inuse_space", "delay"} {
		for i, vt := range p.sampleTypes {
			if p.str(vt.typ) == want {
				return i
			}
		}
	}
	if n := len(p.sampleTypes); n > 0 {
		return n - 1
	}
	return 0
}

func (p *parsed) summarize(topN int) *Summary {
	if topN <= 0 {
		topN = 10
	}
	vi := p.valueIndex()
	s := &Summary{Samples: len(p.samples)}
	if vi < len(p.sampleTypes) {
		s.SampleType = p.str(p.sampleTypes[vi].typ)
		s.Unit = p.str(p.sampleTypes[vi].unit)
	}
	if p.durationNS > 0 {
		s.DurationMS = float64(p.durationNS) / 1e6
	}
	flat := map[string]int64{}
	cum := map[string]int64{}
	var onStack map[string]bool
	for _, sm := range p.samples {
		if vi >= len(sm.values) {
			continue
		}
		v := sm.values[vi]
		s.Total += v
		if v == 0 || len(sm.locs) == 0 {
			continue
		}
		// Flat: the leaf function of the innermost location. locs[0] is
		// the leaf in pprof's stack ordering.
		if nameIdx, ok := p.locFunc[sm.locs[0]]; ok {
			flat[p.str(nameIdx)] += v
		}
		// Cum: every distinct function anywhere on the stack (dedup so
		// recursion doesn't multi-count).
		if onStack == nil {
			onStack = map[string]bool{}
		} else {
			clear(onStack)
		}
		for _, loc := range sm.locs {
			for _, fnIdx := range p.locStack[loc] {
				name := p.str(p.funcName[uint64(fnIdx)])
				if name != "" && !onStack[name] {
					onStack[name] = true
					cum[name] += v
				}
			}
		}
	}
	names := make([]string, 0, len(cum))
	for name := range cum {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		fi, fj := flat[names[i]], flat[names[j]]
		if fi != fj {
			return fi > fj
		}
		ci, cj := cum[names[i]], cum[names[j]]
		if ci != cj {
			return ci > cj
		}
		return names[i] < names[j]
	})
	if len(names) > topN {
		names = names[:topN]
	}
	for _, name := range names {
		fs := FuncStat{Name: name, Flat: flat[name], Cum: cum[name]}
		if s.Total > 0 {
			fs.FlatPct = 100 * float64(fs.Flat) / float64(s.Total)
			fs.CumPct = 100 * float64(fs.Cum) / float64(s.Total)
		}
		s.Functions = append(s.Functions, fs)
	}
	return s
}

// --- protobuf wire format ---

const (
	wireVarint = 0
	wireI64    = 1
	wireBytes  = 2
	wireI32    = 5
)

// eachField walks one message's fields. For varint/fixed fields v holds
// the value; for length-delimited fields msg holds the payload.
func eachField(data []byte, fn func(field, wire int, v uint64, msg []byte) error) error {
	for len(data) > 0 {
		key, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("profile proto: bad field key")
		}
		data = data[n:]
		field := int(key >> 3)
		wire := int(key & 7)
		switch wire {
		case wireVarint:
			v, n := uvarint(data)
			if n <= 0 {
				return fmt.Errorf("profile proto: bad varint in field %d", field)
			}
			data = data[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case wireI64:
			if len(data) < 8 {
				return fmt.Errorf("profile proto: short i64 in field %d", field)
			}
			data = data[8:]
		case wireI32:
			if len(data) < 4 {
				return fmt.Errorf("profile proto: short i32 in field %d", field)
			}
			data = data[4:]
		case wireBytes:
			ln, n := uvarint(data)
			if n <= 0 || uint64(len(data)-n) < ln {
				return fmt.Errorf("profile proto: bad length in field %d", field)
			}
			payload := data[n : n+int(ln)]
			data = data[n+int(ln):]
			if err := fn(field, wire, 0, payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("profile proto: unsupported wire type %d", wire)
		}
	}
	return nil
}

func eachPacked(data []byte, fn func(uint64)) error {
	for len(data) > 0 {
		v, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("profile proto: bad packed varint")
		}
		fn(v)
		data = data[n:]
	}
	return nil
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

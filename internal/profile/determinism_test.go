// determinism_test.go asserts the profiler's zero-interference contract:
// running the continuous sampler next to the ingest/detect pipeline must
// not change a single output byte. The profiler only observes (pprof
// snapshots, runtime gauges) — if its presence ever perturbed verdicts
// or quality accounting, "always-on in production" would be a lie.
package profile_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/profile"
)

// thresholdClf is a deterministic stand-in detector: malware iff the
// first feature exceeds 0.5.
type thresholdClf struct{}

var _ ml.Classifier = thresholdClf{}

func (thresholdClf) Name() string                                  { return "threshold" }
func (thresholdClf) Train(x [][]float64, y []int, nc int) error    { return nil }
func (thresholdClf) Predict(f []float64) int {
	if f[0] > 0.5 {
		return 1
	}
	return 0
}

// qualityStream drives a fixed batch stream through a fresh ingest
// service — optionally with a hot continuous profiler cycling every
// 20 ms beside it — and returns each tenant's quality JSON.
func qualityStream(t *testing.T, shards int, withProfiler bool) map[string]string {
	t.Helper()
	reg, bus := obs.NewRegistry(), obs.NewBus()
	svc, err := ingest.New(ingest.Config{
		Classifier:  thresholdClf{},
		Events:      []string{"e0", "e1", "e2", "e3"},
		Shards:      shards,
		RotateEvery: 16,
		Registry:    reg,
		Bus:         bus,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc.Start(ctx)

	if withProfiler {
		p := profile.New(profile.Config{
			Interval: 20 * time.Millisecond,
			Duty:     5 * time.Millisecond,
			Registry: reg,
			Bus:      bus,
		})
		stop := p.Start()
		defer func() {
			stop()
			if caps := p.Stats().Captures; caps == 0 {
				t.Fatal("profiler took no captures; the on/off comparison proved nothing")
			}
		}()
	}

	h := svc.Handler()
	tenants := []string{"t-a", "t-b", "t-c"}
	for round := 0; round < 8; round++ {
		for ti, id := range tenants {
			var b ingest.Batch
			for k := 0; k < 11; k++ {
				lbl := (round + ti + k) % 2
				v := 0.1
				if lbl == 1 {
					v = 0.9
				}
				if (round+k)%5 == 0 { // mislabel some: non-trivial confusion matrix
					v = 1 - v
				}
				b.Windows = append(b.Windows, ingest.Window{
					Endpoint: fmt.Sprintf("ep%d", k%3),
					Label:    &lbl,
					Values:   []float64{v, 0.2, 0.3, 0.4},
				})
			}
			body, _ := json.Marshal(b)
			req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", bytes.NewReader(body))
			req.Header.Set(ingest.TenantHeader, id)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusAccepted {
				t.Fatalf("round %d tenant %s: %d %s", round, id, rec.Code, rec.Body.String())
			}
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for !svc.Drained() {
		if time.Now().After(deadline) {
			t.Fatal("ingest did not drain")
		}
		time.Sleep(time.Millisecond)
	}

	out := make(map[string]string, len(tenants))
	for _, id := range tenants {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/tenants/"+id+"/quality", nil))
		if rec.Code != 200 {
			t.Fatalf("quality %s: %d", id, rec.Code)
		}
		out[id] = rec.Body.String()
	}
	return out
}

// TestProfilerOffByteIdentical: per-tenant quality JSON is byte-identical
// with the profiler running hot vs absent, at 1 shard and at 8.
func TestProfilerOffByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full ingest streams")
	}
	for _, shards := range []int{1, 8} {
		off := qualityStream(t, shards, false)
		on := qualityStream(t, shards, true)
		for id, want := range off {
			if got := on[id]; got != want {
				t.Fatalf("shards=%d tenant %s: quality differs with profiler on:\n--- off\n%s\n--- on\n%s",
					shards, id, want, got)
			}
		}
	}
}
